package lacc

import (
	"lacc/internal/trace"
	"lacc/internal/workloads"
)

// Stream yields one core's access sequence to the simulator.
type Stream = trace.Stream

// GenFunc emits one core's trace through an Emitter; returning ends the
// stream. Generators run concurrently (one goroutine per core) and must not
// share mutable state.
type GenFunc = trace.GenFunc

// Emitter is the trace construction API handed to generators: Read, Write,
// Compute, Barrier, Lock and Unlock.
type Emitter = trace.Emitter

// WorkloadInfo describes one of the 21 built-in benchmarks (Table 2).
type WorkloadInfo struct {
	// Name is the canonical identifier accepted by RunWorkload.
	Name string
	// Label is the display label used in the paper's figures.
	Label string
	// Suite is the benchmark suite (SPLASH-2, PARSEC, ...).
	Suite string
	// PaperSize is the problem size the paper evaluated (Table 2).
	PaperSize string
	// DefaultSize is this reproduction's problem size at scale 1.0.
	DefaultSize string
}

// Workloads lists the built-in benchmarks in Table 2 order.
func Workloads() []WorkloadInfo {
	all := workloads.All()
	out := make([]WorkloadInfo, len(all))
	for i, w := range all {
		out[i] = WorkloadInfo{
			Name:        w.Name,
			Label:       w.Label,
			Suite:       w.Suite,
			PaperSize:   w.PaperSize,
			DefaultSize: w.DefaultSize,
		}
	}
	return out
}

// WorkloadStreams builds the named benchmark's per-core streams without
// running them (useful for inspecting or recording traces).
func WorkloadStreams(name string, cores int, scale float64, seed uint64) ([]Stream, bool) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, false
	}
	return w.Streams(workloads.Spec{Cores: cores, Scale: scale, Seed: seed}), true
}

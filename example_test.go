package lacc_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"lacc"
)

// Example runs one benchmark under the paper's default configuration and
// reports whether the adaptive protocol engaged.
func Example() {
	cfg := lacc.DefaultConfig()
	cfg.Cores = 16
	cfg.MeshWidth = 4
	cfg.MemControllers = 2

	res, err := lacc.RunWorkload(cfg, "streamcluster", 0.1, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", res.DataAccesses > 0)
	fmt.Println("protocol engaged:", res.WordReads+res.WordWrites > 0)
	// Output:
	// completed: true
	// protocol engaged: true
}

// ExampleRunGenerators builds a custom workload with the Emitter API: a
// tiny SPMD kernel with private reads and a barrier.
func ExampleRunGenerators() {
	cfg := lacc.DefaultConfig()
	cfg.Cores = 4
	cfg.MeshWidth = 2
	cfg.MemControllers = 2

	gens := make([]lacc.GenFunc, cfg.Cores)
	for c := range gens {
		c := c
		gens[c] = func(e *lacc.Emitter) {
			base := lacc.DataBase + lacc.Addr(c)*lacc.PageBytes
			for i := 0; i < 32; i++ {
				e.Read(base + lacc.Addr(i%4)*lacc.WordBytes)
				e.Compute(1)
			}
			e.Barrier(1)
		}
	}
	res, err := lacc.RunGenerators(cfg, gens)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("accesses:", res.DataAccesses)
	// Output:
	// accesses: 128
}

// ExampleStorageOverhead reproduces the paper's Section 3.6 arithmetic.
func ExampleStorageOverhead() {
	r := lacc.StorageOverhead(lacc.DefaultConfig())
	fmt.Printf("Limited3: %.0f KB/core\n", r.Limited3KB)
	fmt.Printf("Complete: %.0f KB/core\n", r.CompleteKB)
	fmt.Println("cheaper than full-map:", r.LimitedBeatsFullMap)
	// Output:
	// Limited3: 18 KB/core
	// Complete: 192 KB/core
	// cheaper than full-map: true
}

// ExampleNewExperimentSession shares one session across experiment
// calls: the second identical sweep schedules no simulations at all —
// every point is served from the session's result cache.
func ExampleNewExperimentSession() {
	opts := lacc.ExperimentOptions{
		Cores:      4,
		Scale:      0.05,
		Benchmarks: []string{"matmul"},
		Session:    lacc.NewExperimentSession(),
	}
	for i := 0; i < 2; i++ {
		if _, err := lacc.ExperimentPCTSweep(opts, []int{1, 2}); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	st := opts.Session.Stats()
	fmt.Println("simulations run:", st.Misses)
	fmt.Println("served from cache:", st.Hits)
	// Output:
	// simulations run: 2
	// served from cache: 2
}

// ExampleNewServerHandler embeds the lacc-serve handler and queries it
// the way an HTTP client would: one workload run as JSON.
func ExampleNewServerHandler() {
	srv := httptest.NewServer(lacc.NewServerHandler(lacc.ServeConfig{MaxInFlight: 2}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/run", "application/json",
		strings.NewReader(`{"workload":"matmul","cores":4,"scale":0.05}`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer resp.Body.Close()

	var res lacc.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("status:", resp.StatusCode)
	fmt.Println("protocol:", res.Protocol)
	fmt.Println("completed:", res.DataAccesses > 0)
	// Output:
	// status: 200
	// protocol: adaptive
	// completed: true
}

// ExampleWorkloads lists the first benchmarks of the Table 2 catalog.
func ExampleWorkloads() {
	for _, w := range lacc.Workloads()[:3] {
		fmt.Println(w.Suite, w.Name)
	}
	// Output:
	// SPLASH-2 radix
	// SPLASH-2 lu-nc
	// SPLASH-2 barnes
}

package lacc

import (
	"net/http"

	"lacc/internal/experiments"
	"lacc/internal/server"
)

// ServeConfig configures the embedded experiment-serving handler: the
// shared session, the admission bounds (max in-flight executions + queue
// depth, 429 beyond), per-execution simulation parallelism and the
// validation caps on requested machine size and problem scale. The zero
// value uses the documented defaults.
type ServeConfig = server.Config

// ServeStats is the /v1/stats response schema: request, coalescing and
// admission counters plus the session's cache effectiveness.
type ServeStats = server.Stats

// ExperimentSessionStats is a snapshot of an ExperimentSession's cache
// counters: memoized-result hits, in-flight coalescing and simulations
// actually scheduled.
type ExperimentSessionStats = experiments.SessionStats

// NewServerHandler returns the lacc-serve HTTP handler: the whole
// experiment surface (/v1/run, /v1/experiments/*, /v1/workloads,
// /v1/healthz, /v1/stats) served from one process-wide
// ExperimentSession, with single-flight coalescing of identical
// concurrent requests, bounded admission and SSE progress streams. The
// lacc-serve command wraps exactly this handler; embed it to serve
// experiments from your own process. See docs/API.md for the endpoint
// reference.
func NewServerHandler(cfg ServeConfig) http.Handler {
	return server.New(cfg)
}

package lacc

import (
	"net/http"

	"lacc/internal/cluster"
	"lacc/internal/experiments"
	"lacc/internal/server"
	"lacc/internal/store"
)

// ServeConfig configures the embedded experiment-serving handler: the
// shared session, the admission bounds (max in-flight executions + queue
// depth, 429 beyond), per-execution simulation parallelism and the
// validation caps on requested machine size and problem scale. The zero
// value uses the documented defaults.
type ServeConfig = server.Config

// ServeStats is the /v1/stats response schema: request, coalescing and
// admission counters plus the session's cache effectiveness.
type ServeStats = server.Stats

// ExperimentSessionStats is a snapshot of an ExperimentSession's cache
// counters: memoized-result hits, in-flight coalescing and simulations
// actually scheduled.
type ExperimentSessionStats = experiments.SessionStats

// NewServerHandler returns the lacc-serve HTTP handler: the whole
// experiment surface (/v1/run, /v1/experiments/*, /v1/workloads,
// /v1/healthz, /v1/stats) served from one process-wide
// ExperimentSession, with single-flight coalescing of identical
// concurrent requests, bounded admission and SSE progress streams. The
// lacc-serve command wraps exactly this handler; embed it to serve
// experiments from your own process. See docs/API.md for the endpoint
// reference.
func NewServerHandler(cfg ServeConfig) http.Handler {
	return server.New(cfg)
}

// ResultStore is a crash-safe, content-addressed store of simulation
// results: append-only checksummed segment files under one directory, an
// in-memory index rebuilt by recovery on every Open (torn tails truncated,
// corrupt segments quarantined), size-bounded by oldest-first segment
// eviction. It is a cache, not a system of record — every I/O failure is
// absorbed and surfaced through Stats, and a result the store cannot
// serve is simply recomputed. Attach one to a server via
// ServeConfig.Store, or to a standalone session with
// NewExperimentSessionWithStore; both leave the process restart-warm.
type ResultStore = store.Store

// ResultStoreOptions configures OpenResultStore: the directory, the
// on-disk footprint bound (MaxBytes, 0 = unbounded) and the segment
// rotation size. The zero value of everything but Dir is usable.
type ResultStoreOptions = store.Options

// ResultStoreStats is a ResultStore's observability snapshot: footprint
// (segments, bytes, entries), traffic (hits, misses, puts), absorbed
// failures (put/read errors, corrupt records, quarantined segments) and
// the last recovery outcome.
type ResultStoreStats = store.Stats

// OpenResultStore opens (creating if needed) the durable result store in
// opts.Dir and recovers its contents. Recovery never fails the open for
// data damage: a torn tail from a crash mid-write is truncated away and a
// segment corrupted mid-file is quarantined whole, in both cases
// degrading the affected results to recomputation. The caller owns the
// store and must Close it; sessions and servers sharing it never do.
func OpenResultStore(opts ResultStoreOptions) (*ResultStore, error) {
	return store.Open(opts)
}

// PeerCluster is the fault-tolerant peer result tier: a static membership
// of lacc-serve nodes consistent-hashed on result fingerprints, fetched
// from on local misses and replicated to behind fresh simulations, with
// per-peer circuit breakers, bounded retries and a hard per-fetch latency
// budget. Peers are an optimization tier exactly like the local disk:
// every failure is absorbed into a counter and a recomputation, never an
// error or unbounded delay for a client. Attach one to a server via
// ServeConfig.Cluster; the caller owns it and must Close it after the
// server's listener drains.
type PeerCluster = cluster.Cluster

// PeerClusterConfig configures NewPeerCluster: the node's own address,
// the full membership, the replication factor and the robustness knobs
// (budget, per-attempt timeout, retries, backoff, breaker thresholds).
// Zero values take documented defaults.
type PeerClusterConfig = cluster.Config

// PeerClusterStats is a PeerCluster's observability snapshot: fetch and
// replication traffic plus each member's breaker state.
type PeerClusterStats = cluster.Stats

// NewPeerCluster validates the membership and starts the peer tier's
// write-behind replication workers.
func NewPeerCluster(cfg PeerClusterConfig) (*PeerCluster, error) {
	return cluster.New(cfg)
}

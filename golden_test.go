package lacc_test

import (
	"testing"

	"lacc"
)

// TestGoldenRegression pins exact simulation outcomes for fixed seeds and
// configurations. The simulator is fully deterministic, so any drift in
// these numbers means a protocol, timing or workload change — which is
// fine when intentional (regenerate the table below by running the listed
// configuration), and a caught bug when not.
//
// The table covers all four benchmark families (SPLASH-2, PARSEC, Parallel
// MI Bench, UHPC) under the adaptive protocol, plus one row per family
// under each baseline (MESI, Dragon, DLS, Neat and the MESI/Dragon
// hybrid) so protocol drift is caught exactly like timing drift. The
// "activity" column is the protocol's signature event count: remote word
// accesses for adaptive and DLS, sharer word updates for Dragon and the
// hybrid, zero for MESI and Neat (whole-line transfers only).
func TestGoldenRegression(t *testing.T) {
	golden := []struct {
		workload   string
		protocol   lacc.ProtocolKind
		completion lacc.Cycle
		accesses   uint64
		activity   uint64
		linkFlits  uint64
	}{
		// Locality-aware adaptive protocol (the paper's), PCT 4, Limited-3.
		{"streamcluster", lacc.ProtocolAdaptive, 57920, 12512, 3677, 76548},
		{"matmul", lacc.ProtocolAdaptive, 929756, 350016, 31894, 956601},
		{"canneal", lacc.ProtocolAdaptive, 609206, 20540, 1106, 634342},
		{"radix", lacc.ProtocolAdaptive, 97899, 32764, 2020, 186044},
		{"lu-nc", lacc.ProtocolAdaptive, 60744, 30464, 0, 44906},
		{"blackscholes", lacc.ProtocolAdaptive, 283271, 39324, 341, 332317},
		{"dijkstra-ss", lacc.ProtocolAdaptive, 112328, 35600, 10775, 173792},
		{"susan", lacc.ProtocolAdaptive, 59350, 96240, 0, 61142},
		{"concomp", lacc.ProtocolAdaptive, 139809, 15324, 11479, 217882},
		{"community", lacc.ProtocolAdaptive, 98649, 66534, 7240, 212212},

		// Full-map MESI directory baseline.
		{"streamcluster", lacc.ProtocolMESI, 89605, 12512, 0, 175660},
		{"matmul", lacc.ProtocolMESI, 1148401, 350016, 0, 1992720},
		{"canneal", lacc.ProtocolMESI, 614449, 20540, 0, 649714},

		// Dragon write-update baseline.
		{"streamcluster", lacc.ProtocolDragon, 91441, 12512, 15035, 167586},
		{"matmul", lacc.ProtocolDragon, 1149359, 350016, 18, 1993145},
		{"canneal", lacc.ProtocolDragon, 618705, 20540, 753, 646420},

		// Directoryless shared-LLC baseline: every access is a remote word
		// access, so activity equals the access count.
		{"streamcluster", lacc.ProtocolDLS, 72431, 12512, 12512, 89305},
		{"matmul", lacc.ProtocolDLS, 997965, 350016, 350016, 1141221},
		{"canneal", lacc.ProtocolDLS, 521014, 20540, 20540, 359766},

		// Neat single-pointer self-invalidation baseline: whole-line
		// transfers only, so activity is zero like MESI.
		{"streamcluster", lacc.ProtocolNeat, 94470, 12512, 0, 183538},
		{"matmul", lacc.ProtocolNeat, 1148716, 350016, 0, 1995097},
		{"canneal", lacc.ProtocolNeat, 619952, 20540, 0, 670772},

		// Per-line MESI/Dragon hybrid: activity counts its update pushes.
		{"streamcluster", lacc.ProtocolHybrid, 99903, 12512, 268, 184923},
		{"matmul", lacc.ProtocolHybrid, 1150199, 350016, 4, 1993702},
		{"canneal", lacc.ProtocolHybrid, 616145, 20540, 676, 646271},
	}
	// goldenRow is the comparable shape of one table row. Comparing whole
	// rows (not field by field) makes a regression print the complete
	// got/want row, so a CI log alone is enough to see every drifted field
	// and to regenerate the table entry.
	type goldenRow struct {
		Protocol   string
		Completion lacc.Cycle
		Accesses   uint64
		Activity   uint64
		LinkFlits  uint64
	}
	for _, g := range golden {
		g := g
		t.Run(g.workload+"/"+string(g.protocol), func(t *testing.T) {
			t.Parallel()
			cfg := lacc.DefaultConfig()
			cfg.Cores = 16
			cfg.MeshWidth = 4
			cfg.MemControllers = 2
			cfg.ProtocolKind = g.protocol
			res, err := lacc.RunWorkload(cfg, g.workload, 0.1, 7)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenRow{
				Protocol:   res.Protocol,
				Completion: res.CompletionCycles,
				Accesses:   res.DataAccesses,
				Activity:   res.WordReads + res.WordWrites + res.UpdateWrites,
				LinkFlits:  res.LinkFlits,
			}
			want := goldenRow{
				Protocol:   string(g.protocol),
				Completion: g.completion,
				Accesses:   g.accesses,
				Activity:   g.activity,
				LinkFlits:  g.linkFlits,
			}
			if got != want {
				t.Errorf("golden row drifted for %s/%s:\n got: %+v\nwant: %+v",
					g.workload, g.protocol, got, want)
			}
		})
	}
}

// TestGoldenLargeMesh256 pins the tracked large-mesh scenario — the
// LargeMesh256 benchmark's machine: streamcluster at 256 cores on a 16x16
// mesh, four times the paper's core count — under the adaptive protocol
// and the full-map MESI baseline. Broadcast trees, run-queue depth and
// sharer vectors all scale with the mesh, so drift here can appear even
// when the 16-core rows above hold.
func TestGoldenLargeMesh256(t *testing.T) {
	golden := []struct {
		protocol   lacc.ProtocolKind
		completion lacc.Cycle
		accesses   uint64
		activity   uint64
		linkFlits  uint64
	}{
		{lacc.ProtocolAdaptive, 727493, 199712, 59917, 4746419},
		{lacc.ProtocolMESI, 1528735, 199712, 0, 12337408},
		{lacc.ProtocolHybrid, 1999181, 199712, 6011, 13079074},
	}
	for _, g := range golden {
		g := g
		t.Run(string(g.protocol), func(t *testing.T) {
			t.Parallel()
			cfg := lacc.DefaultConfig()
			cfg.Cores = 256
			cfg.MeshWidth = 16
			cfg.ProtocolKind = g.protocol
			runLargeMeshGolden(t, cfg, g.completion, g.accesses, g.activity, g.linkFlits)
		})
	}
}

// TestGoldenLargeMesh1024 pins a 1024-core 32x32 machine — sixteen times
// the paper's core count, the scale the sharded engine targets. The row is
// generated (and must be regenerated) on the sequential engine: sharded
// runs with more than one worker are not run-to-run deterministic, so the
// bit-exact pin stays sequential and the sharded engine is held to the
// bounded-divergence contract by internal/sim's differential tests.
func TestGoldenLargeMesh1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-core simulation is slow; skipped with -short")
	}
	golden := []struct {
		protocol   lacc.ProtocolKind
		completion lacc.Cycle
		accesses   uint64
		activity   uint64
		linkFlits  uint64
	}{
		{lacc.ProtocolAdaptive, 3042794, 798752, 244164, 37327169},
		{lacc.ProtocolMESI, 6814354, 798752, 0, 98979588},
	}
	for _, g := range golden {
		g := g
		t.Run(string(g.protocol), func(t *testing.T) {
			t.Parallel()
			cfg := lacc.DefaultConfig()
			cfg.Cores = 1024
			cfg.MeshWidth = 32
			cfg.ProtocolKind = g.protocol
			runLargeMeshGolden(t, cfg, g.completion, g.accesses, g.activity, g.linkFlits)
		})
	}
}

// runLargeMeshGolden runs streamcluster at scale 0.1, seed 7 under cfg and
// compares the signature counters against the pinned row.
func runLargeMeshGolden(t *testing.T, cfg lacc.Config, completion lacc.Cycle, accesses, activity, linkFlits uint64) {
	t.Helper()
	res, err := lacc.RunWorkload(cfg, "streamcluster", 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionCycles != completion || res.DataAccesses != accesses ||
		res.WordReads+res.WordWrites+res.UpdateWrites != activity ||
		res.LinkFlits != linkFlits {
		t.Errorf("large-mesh golden row drifted for %s:\n got: completion=%d accesses=%d activity=%d linkFlits=%d\nwant: completion=%d accesses=%d activity=%d linkFlits=%d",
			res.Protocol, res.CompletionCycles, res.DataAccesses,
			res.WordReads+res.WordWrites+res.UpdateWrites, res.LinkFlits,
			completion, accesses, activity, linkFlits)
	}
}

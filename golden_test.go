package lacc_test

import (
	"testing"

	"lacc"
)

// TestGoldenRegression pins exact simulation outcomes for fixed seeds and
// configurations. The simulator is fully deterministic, so any drift in
// these numbers means a protocol, timing or workload change — which is
// fine when intentional (regenerate the table below by running the listed
// configuration), and a caught bug when not.
func TestGoldenRegression(t *testing.T) {
	golden := []struct {
		workload   string
		completion lacc.Cycle
		accesses   uint64
		wordAccess uint64
		linkFlits  uint64
	}{
		{"streamcluster", 57920, 12512, 3677, 76548},
		{"matmul", 929756, 350016, 31894, 956601},
		{"canneal", 609206, 20540, 1106, 634342},
	}
	for _, g := range golden {
		g := g
		t.Run(g.workload, func(t *testing.T) {
			t.Parallel()
			cfg := lacc.DefaultConfig()
			cfg.Cores = 16
			cfg.MeshWidth = 4
			cfg.MemControllers = 2
			res, err := lacc.RunWorkload(cfg, g.workload, 0.1, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res.CompletionCycles != g.completion {
				t.Errorf("completion = %d, golden %d", res.CompletionCycles, g.completion)
			}
			if res.DataAccesses != g.accesses {
				t.Errorf("accesses = %d, golden %d", res.DataAccesses, g.accesses)
			}
			if got := res.WordReads + res.WordWrites; got != g.wordAccess {
				t.Errorf("word accesses = %d, golden %d", got, g.wordAccess)
			}
			if res.LinkFlits != g.linkFlits {
				t.Errorf("link flits = %d, golden %d", res.LinkFlits, g.linkFlits)
			}
		})
	}
}

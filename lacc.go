// Package lacc is a from-scratch reproduction of "The Locality-Aware
// Adaptive Cache Coherence Protocol" (Kurian, Khan, Devadas — ISCA 2013).
//
// The library simulates a tiled shared-memory multicore — private L1
// caches, a physically distributed shared L2 with Reactive-NUCA placement
// and an integrated ACKwise limited directory, a 2-D mesh network-on-chip
// and off-chip memory controllers — running the paper's locality-aware
// protocol: every (cache line, core) pair is classified at runtime as a
// private sharer (full line cached in L1) or a remote sharer (word-granular
// round trips to the shared L2), driven by measured per-line utilization
// against the Private Caching Threshold (PCT).
//
// Quick start:
//
//	cfg := lacc.DefaultConfig()          // Table 1: 64 cores, PCT 4, Limited3
//	res, err := lacc.RunWorkload(cfg, "streamcluster", 1.0, 0)
//	if err != nil { ... }
//	fmt.Println(res.CompletionCycles, res.Energy.Total())
//
// Custom workloads are ordinary Go functions emitting memory accesses:
//
//	gens := make([]lacc.GenFunc, cfg.Cores)
//	for c := range gens {
//		gens[c] = func(e *lacc.Emitter) {
//			e.Read(lacc.DataBase)
//			e.Barrier(1)
//		}
//	}
//	res, err := lacc.Run(cfg, lacc.NewStreams(gens))
//
// The experiments behind every figure and table of the paper's evaluation
// are available through the Experiment* functions and the lacc-bench tool,
// and as a long-running HTTP service (lacc-serve, or NewServerHandler for
// embedding) that caches and coalesces simulations across callers; see
// docs/API.md.
package lacc

import (
	"fmt"

	"lacc/internal/sim"
	"lacc/internal/trace"
	"lacc/internal/workloads"
)

// Run simulates one access stream per core against the machine described
// by cfg and returns the aggregated metrics. It consumes (and closes) the
// streams; build fresh streams for every run.
func Run(cfg Config, streams []Stream) (*Result, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(streams)
}

// RunWorkload builds the named benchmark at the given problem scale and
// runs it under cfg. Scale 1.0 is the reduced laptop-scale default; seed
// perturbs the deterministic pseudo-random choices of randomized kernels.
func RunWorkload(cfg Config, name string, scale float64, seed uint64) (*Result, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("lacc: unknown workload %q (see lacc.Workloads)", name)
	}
	return Run(cfg, w.Streams(workloads.Spec{Cores: cfg.Cores, Scale: scale, Seed: seed}))
}

// RunGenerators starts one lazily evaluated stream per generator and runs
// them under cfg (convenience composing NewStreams and Run).
func RunGenerators(cfg Config, gens []GenFunc) (*Result, error) {
	return Run(cfg, NewStreams(gens))
}

// NewStream starts gen in a goroutine and returns its lazily generated
// stream.
func NewStream(gen GenFunc) Stream { return trace.New(gen) }

// NewStreams starts one stream per generator.
func NewStreams(gens []GenFunc) []Stream {
	streams := make([]Stream, len(gens))
	for i, g := range gens {
		streams[i] = trace.New(g)
	}
	return streams
}

// StreamFromAccesses wraps a pre-built access slice as a Stream (useful for
// replaying recorded traces).
func StreamFromAccesses(accesses []Access) Stream { return trace.FromSlice(accesses) }

module lacc

go 1.22

package lacc_test

import (
	"strings"
	"testing"

	"lacc"
)

func smallConfig() lacc.Config {
	cfg := lacc.DefaultConfig()
	cfg.Cores = 16
	cfg.MeshWidth = 4
	cfg.MemControllers = 2
	return cfg
}

func TestRunWorkload(t *testing.T) {
	res, err := lacc.RunWorkload(smallConfig(), "tsp", 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataAccesses == 0 || res.CompletionCycles == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if got := res.Time.Total(); got <= 0 {
		t.Fatalf("time breakdown total = %v", got)
	}
}

func TestRunWorkloadUnknownName(t *testing.T) {
	_, err := lacc.RunWorkload(smallConfig(), "not-a-benchmark", 1, 0)
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Cores = 7 // not divisible by mesh width
	if _, err := lacc.RunWorkload(cfg, "tsp", 0.1, 0); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCustomGenerators(t *testing.T) {
	cfg := smallConfig()
	gens := make([]lacc.GenFunc, cfg.Cores)
	for c := range gens {
		c := c
		gens[c] = func(e *lacc.Emitter) {
			base := lacc.DataBase + lacc.Addr(c)*lacc.PageBytes
			for i := 0; i < 100; i++ {
				e.Read(base + lacc.Addr(i%4)*lacc.WordBytes)
				e.Compute(2)
			}
			e.Write(base)
			e.Barrier(1)
		}
	}
	res, err := lacc.RunGenerators(cfg, gens)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataAccesses != uint64(cfg.Cores)*101 {
		t.Fatalf("DataAccesses = %d, want %d", res.DataAccesses, cfg.Cores*101)
	}
	if res.Time.Sync <= 0 {
		t.Fatal("barrier produced no synchronization time")
	}
}

func TestStreamFromAccesses(t *testing.T) {
	cfg := smallConfig()
	streams := make([]lacc.Stream, cfg.Cores)
	for c := range streams {
		streams[c] = lacc.StreamFromAccesses([]lacc.Access{
			{Kind: lacc.Read, Addr: lacc.DataBase + lacc.Addr(c)*lacc.PageBytes},
			{Kind: lacc.Write, Addr: lacc.DataBase + lacc.Addr(c)*lacc.PageBytes, Gap: 3},
		})
	}
	res, err := lacc.Run(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataAccesses != uint64(2*cfg.Cores) {
		t.Fatalf("DataAccesses = %d", res.DataAccesses)
	}
}

func TestWorkloadsCatalog(t *testing.T) {
	ws := lacc.Workloads()
	if len(ws) != 21 {
		t.Fatalf("catalog lists %d workloads, want 21 (Table 2)", len(ws))
	}
	if ws[0].Name != "radix" || ws[0].Suite != "SPLASH-2" {
		t.Fatalf("catalog order wrong: %+v", ws[0])
	}
	for _, w := range ws {
		if w.Label == "" || w.PaperSize == "" || w.DefaultSize == "" {
			t.Errorf("%s: incomplete metadata", w.Name)
		}
	}
}

func TestWorkloadStreams(t *testing.T) {
	streams, ok := lacc.WorkloadStreams("matmul", 4, 0.1, 0)
	if !ok || len(streams) != 4 {
		t.Fatalf("WorkloadStreams = %d streams, ok=%v", len(streams), ok)
	}
	for _, s := range streams {
		s.Close()
	}
	if _, ok := lacc.WorkloadStreams("nope", 4, 1, 0); ok {
		t.Fatal("unknown workload accepted")
	}
}

func TestStorageOverheadExported(t *testing.T) {
	r := lacc.StorageOverhead(lacc.DefaultConfig())
	if r.Limited3KB != 18 {
		t.Fatalf("Limited3 storage = %v KB, want 18", r.Limited3KB)
	}
}

func TestGeoMean(t *testing.T) {
	if got := lacc.GeoMean([]float64{1, 4}); got != 2 {
		t.Fatalf("GeoMean(1,4) = %v, want 2", got)
	}
}

func TestExperimentSmoke(t *testing.T) {
	o := lacc.ExperimentOptions{
		Cores: 16, MeshWidth: 4, Scale: 0.1, Seed: 1,
		Benchmarks: []string{"streamcluster"},
	}
	sw, err := lacc.ExperimentPCTSweep(o, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	f := sw.Fig11()
	if len(f.Points) != 2 {
		t.Fatalf("fig11 points = %d", len(f.Points))
	}
}

package core

// ClassifierPool amortizes classifier allocation for the simulator's flat
// directory: a directory entry is created per resident L2 line, and with
// the map-based core every entry paid one to three heap allocations for its
// classifier (the dominant allocation source of a simulation). The pool
// carves classifiers out of fixed-size slabs — one bump allocation per
// slabSize classifiers — and recycles released classifiers through a free
// list after Reset, so steady-state directory churn allocates nothing.
//
// A pool is bound to one (cores, limitedK) geometry, matching one
// simulator; it is not safe for concurrent use.
type ClassifierPool struct {
	cores int
	k     int // <= 0 or >= cores selects the Complete classifier

	free []Classifier

	// Slab cursors for the two classifier shapes.
	completeSlab []complete
	limitedSlab  []limited
	stateSlab    []CoreState
	idSlab       []int16
}

// slabSize is the number of classifiers carved per slab allocation.
const slabSize = 256

// NewClassifierPool returns a pool producing the same classifiers as
// NewClassifier(cores, limitedK).
func NewClassifierPool(cores, limitedK int) *ClassifierPool {
	return &ClassifierPool{cores: cores, k: limitedK}
}

// Matches reports whether the pool's classifiers are interchangeable with
// NewClassifier(cores, limitedK)'s: same core count and same shape
// (limitedK values selecting the Complete classifier are equivalent).
// Simulator reuse keeps a pool across runs only when this holds.
func (p *ClassifierPool) Matches(cores, limitedK int) bool {
	if p.cores != cores {
		return false
	}
	pComplete := p.k <= 0 || p.k >= p.cores
	nComplete := limitedK <= 0 || limitedK >= cores
	if pComplete || nComplete {
		return pComplete == nComplete
	}
	return p.k == limitedK
}

// Get returns a pristine classifier, reusing a released one when available.
func (p *ClassifierPool) Get() Classifier {
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		return c
	}
	if p.k <= 0 || p.k >= p.cores {
		return p.newComplete()
	}
	return p.newLimited()
}

// Put releases a classifier back to the pool for reuse. The classifier must
// come from this pool (or share its geometry).
func (p *ClassifierPool) Put(c Classifier) {
	c.Reset()
	p.free = append(p.free, c)
}

func (p *ClassifierPool) newComplete() *complete {
	if len(p.completeSlab) == 0 {
		p.completeSlab = make([]complete, slabSize)
		p.stateSlab = make([]CoreState, slabSize*p.cores)
	}
	c := &p.completeSlab[0]
	p.completeSlab = p.completeSlab[1:]
	c.states = p.stateSlab[:p.cores:p.cores]
	p.stateSlab = p.stateSlab[p.cores:]
	for i := range c.states {
		c.states[i].Mode = ModePrivate
	}
	return c
}

func (p *ClassifierPool) newLimited() *limited {
	if len(p.limitedSlab) == 0 {
		p.limitedSlab = make([]limited, slabSize)
		p.stateSlab = make([]CoreState, slabSize*p.k)
		p.idSlab = make([]int16, slabSize*p.k)
	}
	l := &p.limitedSlab[0]
	p.limitedSlab = p.limitedSlab[1:]
	l.cores = p.cores
	l.st = p.stateSlab[:p.k:p.k]
	p.stateSlab = p.stateSlab[p.k:]
	l.ids = p.idSlab[:p.k:p.k]
	p.idSlab = p.idSlab[p.k:]
	for i := range l.ids {
		l.ids[i] = -1
	}
	return l
}

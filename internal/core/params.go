// Package core implements the paper's primary contribution: the
// locality-aware private/remote classification of (cache line, core) pairs
// (Section 3). It provides:
//
//   - the per-core classification state (mode, remote utilization counter,
//     RAT level) stored in each directory entry,
//   - the Private Caching Threshold (PCT) demotion rule applied when a
//     private copy is evicted or invalidated (Section 3.2),
//   - the Remote Access Threshold (RAT) ladder that approximates the
//     Timestamp check (Section 3.3),
//   - the Complete classifier (state for every core) and the Limited-k
//     classifier (state for k cores plus majority voting, Section 3.4),
//   - the simpler one-way transition variant Adapt1-way (Section 3.7).
package core

import "fmt"

// Mode is a core's sharer classification for one cache line.
type Mode uint8

// Sharer modes. Every core starts as a private sharer of every line
// (Figure 4, "Initial").
const (
	ModePrivate Mode = iota
	ModeRemote
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModePrivate {
		return "P"
	}
	return "R"
}

// Params are the protocol parameters of Table 1.
type Params struct {
	// PCT is the Private Caching Threshold: the utilization at or above
	// which a core is (or stays) a private sharer. PCT=1 disables demotion
	// entirely and reduces the protocol to the baseline directory protocol.
	PCT int
	// RATMax is the maximum remote access threshold (Table 1: 16).
	RATMax int
	// NRATLevels is the number of RAT levels (Table 1: 2).
	NRATLevels int
	// UseTimestamp selects the exact Timestamp-based classification of
	// Section 3.2 instead of the RAT approximation of Section 3.3.
	UseTimestamp bool
	// OneWay selects the Adapt1-way protocol of Section 3.7: cores demoted
	// to remote sharers are never promoted back.
	OneWay bool
}

// DefaultParams returns the paper's default protocol parameters (Table 1).
func DefaultParams() Params {
	return Params{PCT: 4, RATMax: 16, NRATLevels: 2}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.PCT < 1 {
		return fmt.Errorf("core: PCT must be >= 1, got %d", p.PCT)
	}
	if !p.UseTimestamp {
		if p.NRATLevels < 1 {
			return fmt.Errorf("core: nRATlevels must be >= 1, got %d", p.NRATLevels)
		}
		if p.RATMax < p.PCT {
			return fmt.Errorf("core: RATmax (%d) below PCT (%d)", p.RATMax, p.PCT)
		}
	}
	return nil
}

// RATThreshold returns the remote→private promotion threshold for a RAT
// level. RAT starts at PCT (level 0) and is additively increased in equal
// steps up to RATMax over NRATLevels-1 steps (Section 3.3).
func (p Params) RATThreshold(level uint8) int {
	if p.NRATLevels <= 1 {
		return p.PCT
	}
	maxLevel := p.NRATLevels - 1
	l := int(level)
	if l > maxLevel {
		l = maxLevel
	}
	// Round to nearest step so RATThreshold(maxLevel) == RATMax exactly.
	return p.PCT + (l*(p.RATMax-p.PCT)+maxLevel/2)/maxLevel
}

// MaxRATLevel returns the highest representable RAT level.
func (p Params) MaxRATLevel() uint8 {
	if p.NRATLevels <= 1 {
		return 0
	}
	return uint8(p.NRATLevels - 1)
}

// CoreState is the per-(line, core) classification state held in a
// directory entry (Figures 6 and 7): mode bit, remote utilization counter
// and RAT level, plus an activity bit used by the Limited-k replacement
// policy.
type CoreState struct {
	Mode       Mode
	RemoteUtil uint16
	RATLevel   uint8
	// Active marks the core as currently using the line: private sharers
	// are active while they hold a copy; remote sharers are active until
	// another core writes (Section 3.4 replacement policy).
	Active bool
}

// utilCap bounds the remote utilization counter; 4 bits suffice for the
// paper's RATmax of 16 but we keep headroom for sweeps.
const utilCap = 1 << 14

// RemoteAccess records one remote (word) access by a core and decides
// whether the core is promoted to a private sharer. tsPass is the outcome
// of the Timestamp check (meaningful only when p.UseTimestamp);
// hasInvalidWay reports a free way in the requester's L1 set, enabling the
// short-cut promotion at PCT (Section 3.3).
func RemoteAccess(p Params, st *CoreState, tsPass, hasInvalidWay bool) (promoted bool) {
	st.Active = true
	if p.UseTimestamp {
		// Exact scheme: increment on a passing check, else reset to 1; the
		// promotion threshold is PCT itself.
		if tsPass || hasInvalidWay {
			if st.RemoteUtil < utilCap {
				st.RemoteUtil++
			}
		} else {
			st.RemoteUtil = 1
		}
		promoted = int(st.RemoteUtil) >= p.PCT
	} else {
		if st.RemoteUtil < utilCap {
			st.RemoteUtil++
		}
		switch {
		case hasInvalidWay && int(st.RemoteUtil) >= p.PCT:
			// Short-cut: no pollution risk, promote at PCT.
			promoted = true
		case int(st.RemoteUtil) >= p.RATThreshold(st.RATLevel):
			promoted = true
		}
	}
	if p.OneWay {
		promoted = false
	}
	if promoted {
		st.Mode = ModePrivate
		st.RemoteUtil = 0
	}
	return promoted
}

// Classify applies the private-caching-threshold rule when a core's private
// copy leaves its L1 (eviction or invalidation): the core stays private iff
// private + remote utilization reaches PCT (Section 3.2). RAT level
// adjustments follow Section 3.3: an eviction that demotes raises the
// level, an invalidation that demotes leaves it, and a private
// classification resets it so the core can re-learn.
func Classify(p Params, st *CoreState, privateUtil uint32, eviction bool) {
	total := uint64(privateUtil) + uint64(st.RemoteUtil)
	if total >= uint64(p.PCT) {
		st.Mode = ModePrivate
		st.RATLevel = 0
	} else {
		st.Mode = ModeRemote
		if eviction && st.RATLevel < p.MaxRATLevel() {
			st.RATLevel++
		}
	}
	st.RemoteUtil = 0
	st.Active = false
}

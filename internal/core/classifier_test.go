package core

import (
	"testing"
	"testing/quick"
)

func TestNewClassifierSelection(t *testing.T) {
	if _, ok := NewClassifier(64, 0).(*complete); !ok {
		t.Fatal("k=0 must select the Complete classifier")
	}
	if _, ok := NewClassifier(64, 64).(*complete); !ok {
		t.Fatal("k=cores must select the Complete classifier")
	}
	if _, ok := NewClassifier(64, 3).(*limited); !ok {
		t.Fatal("k=3 must select the Limited classifier")
	}
}

func TestCompleteInitialModePrivate(t *testing.T) {
	c := NewClassifier(8, 0)
	for i := 0; i < 8; i++ {
		if c.ModeOf(i) != ModePrivate {
			t.Fatalf("core %d initial mode %v", i, c.ModeOf(i))
		}
	}
	n := 0
	c.ForEachTracked(func(int, *CoreState) { n++ })
	if n != 8 {
		t.Fatalf("tracked %d cores, want 8", n)
	}
}

func TestCompleteLookupIsStable(t *testing.T) {
	c := NewClassifier(4, 0)
	st := c.Lookup(2)
	st.Mode = ModeRemote
	st.RemoteUtil = 7
	again := c.Lookup(2)
	if again.Mode != ModeRemote || again.RemoteUtil != 7 {
		t.Fatal("Complete classifier lost state")
	}
}

func TestLimitedFreeEntryStartsPrivate(t *testing.T) {
	c := NewClassifier(64, 3)
	st := c.Lookup(10)
	if st.Mode != ModePrivate {
		t.Fatal("fresh entry must start private")
	}
	st.Mode = ModeRemote
	if c.ModeOf(10) != ModeRemote {
		t.Fatal("tracked state not visible via ModeOf")
	}
}

func TestLimitedMajorityVoteForUntracked(t *testing.T) {
	c := NewClassifier(64, 3)
	// Fill the three entries with remote, active sharers.
	for i := 0; i < 3; i++ {
		st := c.Lookup(i)
		st.Mode = ModeRemote
		st.Active = true
	}
	// Untracked core with no replacement candidate: majority vote = remote.
	if c.ModeOf(50) != ModeRemote {
		t.Fatal("untracked mode must be the majority vote")
	}
	st := c.Lookup(50)
	if st.Mode != ModeRemote {
		t.Fatal("ephemeral state must carry the majority mode")
	}
	// Mutations to the ephemeral state are dropped.
	st.RemoteUtil = 99
	if c.Lookup(50).RemoteUtil != 0 {
		t.Fatal("untracked counters must not persist")
	}
	// The tracked list is unchanged.
	tracked := map[int]bool{}
	c.ForEachTracked(func(core int, _ *CoreState) { tracked[core] = true })
	if len(tracked) != 3 || !tracked[0] || !tracked[1] || !tracked[2] {
		t.Fatalf("tracked set changed: %v", tracked)
	}
}

func TestLimitedReplacementOfInactiveSharer(t *testing.T) {
	c := NewClassifier(64, 3)
	for i := 0; i < 3; i++ {
		st := c.Lookup(i)
		st.Mode = ModeRemote
		st.Active = true
	}
	// Core 1 becomes inactive (e.g., invalidated): replaceable.
	c.Lookup(1).Active = false
	st := c.Lookup(40)
	if st.Mode != ModeRemote {
		t.Fatal("replacement must start in majority mode")
	}
	tracked := map[int]bool{}
	c.ForEachTracked(func(core int, _ *CoreState) { tracked[core] = true })
	if !tracked[40] || tracked[1] {
		t.Fatalf("replacement did not swap cores: %v", tracked)
	}
}

func TestLimitedMajorityTieFallsBackPrivate(t *testing.T) {
	c := NewClassifier(64, 2)
	a := c.Lookup(0)
	a.Mode = ModePrivate
	a.Active = true
	b := c.Lookup(1)
	b.Mode = ModeRemote
	b.Active = true
	if c.ModeOf(9) != ModePrivate {
		t.Fatal("tie must fall back to the initial private mode")
	}
}

func TestStorageBitsMatchesPaperArithmetic(t *testing.T) {
	p := DefaultParams() // PCT 4, RATmax 16, 2 levels
	// Section 3.6: Limited3 tracks 3 sharers, 12 bits each = 36 bits.
	if got := StorageBits(64, 3, p); got != 36 {
		t.Fatalf("Limited3 bits = %d, want 36", got)
	}
	// Complete: 64 cores x 6 bits = 384 bits.
	if got := StorageBits(64, 0, p); got != 384 {
		t.Fatalf("Complete bits = %d, want 384", got)
	}
}

// Property: Limited-k never tracks more than k cores, ModeOf always returns
// a valid mode, and tracked Lookups are stable pointers.
func TestLimitedInvariants(t *testing.T) {
	f := func(ops []uint8, k uint8) bool {
		kk := int(k%6) + 1
		c := newLimited(32, kk)
		for _, op := range ops {
			coreID := int(op % 32)
			st := c.Lookup(coreID)
			// Toggle activity/mode pseudo-randomly.
			st.Active = op&0x40 != 0
			if op&0x80 != 0 {
				st.Mode = ModeRemote
			}
			n := 0
			c.ForEachTracked(func(int, *CoreState) { n++ })
			if n > kk {
				return false
			}
			if m := c.ModeOf(coreID); m != ModePrivate && m != ModeRemote {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RATThreshold is monotone in level and bounded by [PCT, RATMax].
func TestRATThresholdProperties(t *testing.T) {
	f := func(pct, ratMax, levels uint8) bool {
		p := Params{
			PCT:        int(pct%16) + 1,
			NRATLevels: int(levels%8) + 1,
		}
		p.RATMax = p.PCT + int(ratMax%32)
		prev := 0
		for lvl := uint8(0); lvl <= p.MaxRATLevel(); lvl++ {
			thr := p.RATThreshold(lvl)
			if thr < p.PCT || thr > p.RATMax || thr < prev {
				return false
			}
			prev = thr
		}
		if p.NRATLevels > 1 && p.RATThreshold(p.MaxRATLevel()) != p.RATMax {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

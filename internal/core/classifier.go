package core

// Classifier tracks per-core classification state for one cache line. Two
// implementations exist: the Complete classifier (state for every core,
// Figure 6) and the Limited-k classifier (state for k cores plus majority
// voting, Figure 7 and Section 3.4).
type Classifier interface {
	// Lookup returns mutable state for core, allocating or replacing a
	// tracking entry as the policy allows. The returned state may be
	// ephemeral when the classifier cannot track the core (Limited-k with
	// no replacement candidate): mutations are then discarded, exactly as
	// the hardware would drop them.
	Lookup(core int) *CoreState
	// ModeOf returns the core's current classification without allocating.
	ModeOf(core int) Mode
	// ForEachTracked visits every tracked core's state.
	ForEachTracked(fn func(core int, st *CoreState))
	// DeactivateRemoteExcept resets the remote utilization and clears the
	// activity bit of every tracked remote sharer other than except: a
	// write by another core restarts their locality measurement (Sections
	// 3.2 and 3.4). It is a dedicated method — not a ForEachTracked
	// closure — because it sits on the write miss path, where a captured
	// closure would be the hot loop's only heap allocation.
	DeactivateRemoteExcept(except int)
	// Reset returns the classifier to its pristine state (all cores
	// private, no tracked entries), allowing pooled reuse across
	// directory entries.
	Reset()
}

// NewClassifier builds a classifier: limitedK <= 0 selects the Complete
// classifier, otherwise the Limited-k classifier with k entries.
func NewClassifier(cores, limitedK int) Classifier {
	if limitedK <= 0 || limitedK >= cores {
		return newComplete(cores)
	}
	return newLimited(cores, limitedK)
}

// Lookup is Classifier.Lookup with the dynamic dispatch peeled for the two
// built-in implementations. It sits on the protocol's per-transaction hot
// path, where the classifier is always one of the package's own types; the
// type switch turns the interface call into direct (and, for Complete,
// inlined) code while staying correct for external implementations.
func Lookup(c Classifier, core int) *CoreState {
	switch c := c.(type) {
	case *limited:
		return c.Lookup(core)
	case *complete:
		return &c.states[core]
	default:
		return c.Lookup(core)
	}
}

// complete tracks every core (Figure 6).
type complete struct {
	states []CoreState
}

func newComplete(cores int) *complete {
	c := &complete{states: make([]CoreState, cores)}
	// All cores start as private sharers (Figure 4, "Initial").
	for i := range c.states {
		c.states[i].Mode = ModePrivate
	}
	return c
}

func (c *complete) Lookup(core int) *CoreState { return &c.states[core] }
func (c *complete) ModeOf(core int) Mode       { return c.states[core].Mode }

func (c *complete) ForEachTracked(fn func(int, *CoreState)) {
	for i := range c.states {
		fn(i, &c.states[i])
	}
}

func (c *complete) DeactivateRemoteExcept(except int) {
	for i := range c.states {
		if i != except && c.states[i].Mode == ModeRemote {
			c.states[i].RemoteUtil = 0
			c.states[i].Active = false
		}
	}
}

func (c *complete) Reset() {
	for i := range c.states {
		c.states[i] = CoreState{Mode: ModePrivate}
	}
}

// limited tracks k cores; untracked cores are classified by majority vote
// of the tracked modes (Section 3.4).
type limited struct {
	cores int
	ids   []int16 // -1 marks a free entry
	st    []CoreState
	// scratch returned for untracked cores with no replacement candidate;
	// mutations are dropped, mirroring hardware without a tracking entry.
	scratch CoreState
}

func newLimited(cores, k int) *limited {
	l := &limited{cores: cores, ids: make([]int16, k), st: make([]CoreState, k)}
	for i := range l.ids {
		l.ids[i] = -1
	}
	return l
}

// majority returns the majority vote of tracked modes. Ties and an empty
// list fall back to private, the protocol's initial mode.
func (l *limited) majority() Mode {
	private, remote := 0, 0
	for i, id := range l.ids {
		if id < 0 {
			continue
		}
		if l.st[i].Mode == ModePrivate {
			private++
		} else {
			remote++
		}
	}
	if remote > private {
		return ModeRemote
	}
	return ModePrivate
}

func (l *limited) Lookup(core int) *CoreState {
	free := -1
	for i, id := range l.ids {
		if id == int16(core) {
			return &l.st[i]
		}
		if id < 0 && free < 0 {
			free = i
		}
	}
	if free >= 0 {
		// A free entry starts the core in the protocol's initial private
		// mode (Section 3.2 initialization).
		l.ids[free] = int16(core)
		l.st[free] = CoreState{Mode: ModePrivate}
		return &l.st[free]
	}
	// Look for a replacement candidate: an inactive sharer (Section 3.4).
	for i := range l.ids {
		if !l.st[i].Active {
			// The new core starts in the most probable mode: the majority
			// vote of the tracked cores.
			mode := l.majority()
			l.ids[i] = int16(core)
			l.st[i] = CoreState{Mode: mode}
			return &l.st[i]
		}
	}
	// No candidate: the list is unchanged and the requester operates with
	// the majority mode; its counters are not retained.
	l.scratch = CoreState{Mode: l.majority()}
	return &l.scratch
}

func (l *limited) ModeOf(core int) Mode {
	for i, id := range l.ids {
		if id == int16(core) {
			return l.st[i].Mode
		}
	}
	return l.majority()
}

func (l *limited) ForEachTracked(fn func(int, *CoreState)) {
	for i, id := range l.ids {
		if id >= 0 {
			fn(int(id), &l.st[i])
		}
	}
}

func (l *limited) DeactivateRemoteExcept(except int) {
	for i, id := range l.ids {
		if id >= 0 && int(id) != except && l.st[i].Mode == ModeRemote {
			l.st[i].RemoteUtil = 0
			l.st[i].Active = false
		}
	}
}

func (l *limited) Reset() {
	for i := range l.ids {
		l.ids[i] = -1
		l.st[i] = CoreState{}
	}
	l.scratch = CoreState{}
}

// StorageBits returns the per-directory-entry classifier storage in bits for
// a system with `cores` cores, reproducing the arithmetic of Section 3.6:
// per tracked core 1 mode bit, a remote-utilization counter sized by RATMax,
// a RAT-level field sized by NRATLevels, and (for Limited-k only) a core ID.
func StorageBits(cores, limitedK int, p Params) int {
	// A counter reaching RATMax needs bitsFor(RATMax-1) bits (the paper
	// stores 1..16 in 4 bits).
	utilBits := bitsFor(p.RATMax - 1)
	ratBits := bitsFor(p.NRATLevels - 1)
	if p.NRATLevels <= 1 {
		ratBits = 0
	}
	idBits := bitsFor(cores - 1)
	perCore := 1 + utilBits + ratBits
	if limitedK <= 0 || limitedK >= cores {
		return cores * perCore
	}
	return limitedK * (perCore + idBits)
}

func bitsFor(maxValue int) int {
	if maxValue <= 0 {
		return 0
	}
	bits := 0
	for v := maxValue; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

package core

import "testing"

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.PCT != 4 || p.RATMax != 16 || p.NRATLevels != 2 {
		t.Fatalf("defaults = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{PCT: 0, RATMax: 16, NRATLevels: 2},
		{PCT: 4, RATMax: 16, NRATLevels: 0},
		{PCT: 8, RATMax: 4, NRATLevels: 2},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("Validate(%+v) accepted bad params", p)
		}
	}
	// Timestamp mode ignores RAT fields.
	ok := Params{PCT: 4, UseTimestamp: true}
	if err := ok.Validate(); err != nil {
		t.Errorf("timestamp params rejected: %v", err)
	}
}

func TestRATThresholdLadder(t *testing.T) {
	// Table 1 defaults: PCT 4, RATmax 16, 2 levels -> thresholds {4, 16}.
	p := Params{PCT: 4, RATMax: 16, NRATLevels: 2}
	if got := p.RATThreshold(0); got != 4 {
		t.Errorf("level 0 = %d, want 4", got)
	}
	if got := p.RATThreshold(1); got != 16 {
		t.Errorf("level 1 = %d, want 16", got)
	}
	// Levels beyond the ladder clamp to RATMax.
	if got := p.RATThreshold(9); got != 16 {
		t.Errorf("clamped level = %d, want 16", got)
	}
	// Fig 12's L-4 T-16 configuration: 4 levels from 4 to 16.
	p4 := Params{PCT: 4, RATMax: 16, NRATLevels: 4}
	want := []int{4, 8, 12, 16}
	for lvl, w := range want {
		if got := p4.RATThreshold(uint8(lvl)); got != w {
			t.Errorf("L4: level %d = %d, want %d", lvl, got, w)
		}
	}
	// Single level: threshold stays at PCT.
	p1 := Params{PCT: 4, RATMax: 16, NRATLevels: 1}
	if got := p1.RATThreshold(0); got != 4 {
		t.Errorf("L1: threshold = %d, want 4", got)
	}
	if p1.MaxRATLevel() != 0 {
		t.Errorf("L1 max level = %d", p1.MaxRATLevel())
	}
	if p4.MaxRATLevel() != 3 {
		t.Errorf("L4 max level = %d", p4.MaxRATLevel())
	}
}

func TestRemoteAccessRATPromotion(t *testing.T) {
	p := Params{PCT: 4, RATMax: 16, NRATLevels: 2}
	st := &CoreState{Mode: ModeRemote}
	// Level 0 threshold is PCT=4: three accesses stay remote, the fourth
	// promotes.
	for i := 0; i < 3; i++ {
		if RemoteAccess(p, st, false, false) {
			t.Fatalf("promoted after %d accesses", i+1)
		}
	}
	if !RemoteAccess(p, st, false, false) {
		t.Fatal("not promoted at threshold")
	}
	if st.Mode != ModePrivate || st.RemoteUtil != 0 {
		t.Fatalf("post-promotion state: %+v", st)
	}
	if !st.Active {
		t.Fatal("promoted sharer must be active")
	}
}

func TestRemoteAccessHighRATLevel(t *testing.T) {
	p := Params{PCT: 4, RATMax: 16, NRATLevels: 2}
	st := &CoreState{Mode: ModeRemote, RATLevel: 1} // threshold 16
	for i := 0; i < 15; i++ {
		if RemoteAccess(p, st, false, false) {
			t.Fatalf("promoted at %d accesses under RAT 16", i+1)
		}
	}
	if !RemoteAccess(p, st, false, false) {
		t.Fatal("not promoted at RATmax accesses")
	}
}

func TestRemoteAccessInvalidWayShortcut(t *testing.T) {
	// Even at RAT level 1 (threshold 16), an invalid way in the L1 set
	// promotes at PCT (Section 3.3 short-cut).
	p := Params{PCT: 4, RATMax: 16, NRATLevels: 2}
	st := &CoreState{Mode: ModeRemote, RATLevel: 1}
	for i := 0; i < 3; i++ {
		if RemoteAccess(p, st, false, true) {
			t.Fatalf("promoted below PCT at access %d", i+1)
		}
	}
	if !RemoteAccess(p, st, false, true) {
		t.Fatal("shortcut did not promote at PCT")
	}
}

func TestRemoteAccessTimestampScheme(t *testing.T) {
	p := Params{PCT: 3, UseTimestamp: true}
	st := &CoreState{Mode: ModeRemote}
	// Failing checks keep resetting the counter to 1: never promotes.
	for i := 0; i < 10; i++ {
		if RemoteAccess(p, st, false, false) {
			t.Fatal("promoted despite failing timestamp checks")
		}
		if st.RemoteUtil != 1 {
			t.Fatalf("util = %d, want reset to 1", st.RemoteUtil)
		}
	}
	// Passing checks accumulate to PCT.
	RemoteAccess(p, st, true, false)
	if !RemoteAccess(p, st, true, false) {
		t.Fatal("not promoted after PCT passing accesses")
	}
}

func TestOneWayNeverPromotes(t *testing.T) {
	p := Params{PCT: 2, RATMax: 16, NRATLevels: 2, OneWay: true}
	st := &CoreState{Mode: ModeRemote}
	for i := 0; i < 100; i++ {
		if RemoteAccess(p, st, true, true) {
			t.Fatal("Adapt1-way promoted a remote sharer")
		}
	}
	if st.Mode != ModeRemote {
		t.Fatal("mode changed under one-way protocol")
	}
}

func TestClassifyDemotionAndRAT(t *testing.T) {
	p := Params{PCT: 4, RATMax: 16, NRATLevels: 2}
	st := &CoreState{Mode: ModePrivate, Active: true}

	// High utilization keeps the core private and resets the RAT ladder.
	st.RATLevel = 1
	Classify(p, st, 6, true)
	if st.Mode != ModePrivate || st.RATLevel != 0 {
		t.Fatalf("well-utilized eviction: %+v", st)
	}
	if st.Active {
		t.Fatal("classified sharer must become inactive")
	}

	// Low utilization on eviction demotes and raises the RAT level.
	Classify(p, st, 1, true)
	if st.Mode != ModeRemote || st.RATLevel != 1 {
		t.Fatalf("low-utilization eviction: %+v", st)
	}

	// Low utilization on invalidation demotes but leaves the RAT level.
	st2 := &CoreState{Mode: ModePrivate}
	Classify(p, st2, 1, false)
	if st2.Mode != ModeRemote || st2.RATLevel != 0 {
		t.Fatalf("invalidation demotion: %+v", st2)
	}

	// Remote utilization counts toward the classification (Section 3.2).
	st3 := &CoreState{Mode: ModePrivate, RemoteUtil: 3}
	Classify(p, st3, 1, true)
	if st3.Mode != ModePrivate {
		t.Fatal("private+remote utilization >= PCT must stay private")
	}
	if st3.RemoteUtil != 0 {
		t.Fatal("classification must reset the remote utilization")
	}
}

func TestClassifyRATLevelCaps(t *testing.T) {
	p := Params{PCT: 4, RATMax: 16, NRATLevels: 2}
	st := &CoreState{Mode: ModePrivate}
	for i := 0; i < 5; i++ {
		Classify(p, st, 0, true)
	}
	if st.RATLevel != 1 {
		t.Fatalf("RAT level = %d, want capped at 1", st.RATLevel)
	}
}

func TestModeString(t *testing.T) {
	if ModePrivate.String() != "P" || ModeRemote.String() != "R" {
		t.Fatal("mode strings wrong")
	}
}

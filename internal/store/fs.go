package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the store uses, factored into an interface
// so the fault-injection wrapper (FaultFS) can stand between the store and
// the real disk in tests. Production code always runs on osFS; the
// indirection costs one interface dispatch per I/O operation, which is
// noise next to the syscall behind it.
type FS interface {
	// OpenFile opens name with the given flags and permissions.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir lists the directory entries of name, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically moves oldpath to newpath (same directory here).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// MkdirAll creates the directory path and any missing parents.
	MkdirAll(name string, perm os.FileMode) error
	// Stat returns file metadata.
	Stat(name string) (os.FileInfo, error)
}

// File is the per-file surface the store needs: append writes on the
// active segment, random reads everywhere, fsync for the durability
// barriers.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production filesystem implementation.
func OSFS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

// syncDir fsyncs a directory so renames and removals inside it are
// durable. Best effort: some filesystems (and the fault wrapper, when so
// instructed) refuse to sync directories, and a lost directory sync
// degrades to "the rename replays after the next crash", which recovery
// handles anyway.
func syncDir(fs FS, dir string) {
	d, err := fs.OpenFile(filepath.Clean(dir), os.O_RDONLY, 0)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// keyOf derives a deterministic test key.
func keyOf(i int) Key {
	return Key(sha256.Sum256([]byte(fmt.Sprintf("key-%d", i))))
}

// valOf derives a deterministic test value, sized to make multi-segment
// layouts easy to provoke.
func valOf(i, size int) []byte {
	v := make([]byte, size)
	for j := range v {
		v[j] = byte(i + j)
	}
	return v
}

// open opens a store over dir with test-friendly defaults.
func open(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	opt.Dir = dir
	s, err := Open(opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// segFiles lists the segment files currently in dir.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if _, ok := parseSegName(e.Name()); ok {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	for i := 0; i < 32; i++ {
		if err := s.Put(keyOf(i), valOf(i, 100+i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := 0; i < 32; i++ {
		v, ok := s.Get(keyOf(i))
		if !ok {
			t.Fatalf("Get %d: miss", i)
		}
		if !bytes.Equal(v, valOf(i, 100+i)) {
			t.Fatalf("Get %d: wrong value", i)
		}
	}
	if _, ok := s.Get(keyOf(999)); ok {
		t.Fatal("Get of absent key reported a hit")
	}
	st := s.Stats()
	if st.Puts != 32 || st.Hits != 32 || st.Misses != 1 || st.Entries != 32 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if !s.Healthy() {
		t.Fatalf("store unhealthy after clean use: %+v", st)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(keyOf(i), valOf(i, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.RecoveredRecords != 10 {
		t.Fatalf("recovered %d records, want 10 (%s)", st.RecoveredRecords, st.LastRecovery)
	}
	if !strings.HasPrefix(st.LastRecovery, "clean") {
		t.Fatalf("recovery not clean: %q", st.LastRecovery)
	}
	for i := 0; i < 10; i++ {
		v, ok := s2.Get(keyOf(i))
		if !ok || !bytes.Equal(v, valOf(i, 50)) {
			t.Fatalf("Get %d after reopen: ok=%v", i, ok)
		}
	}
}

// TestLastPutWins pins the duplicate-key contract: re-putting a key
// serves the newest value, across rotations and reopens.
func TestLastPutWins(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 256})
	for round := 0; round < 5; round++ {
		if err := s.Put(keyOf(1), valOf(round, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := s.Get(keyOf(1)); !ok || !bytes.Equal(v, valOf(4, 100)) {
		t.Fatalf("latest value not served (ok=%v)", ok)
	}
	s.Close()
	s2 := open(t, dir, Options{SegmentBytes: 256})
	defer s2.Close()
	if v, ok := s2.Get(keyOf(1)); !ok || !bytes.Equal(v, valOf(4, 100)) {
		t.Fatalf("latest value not served after reopen (ok=%v)", ok)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(keyOf(i), valOf(i, 64)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: a partial frame at the tail of the
	// only populated segment.
	segs := segFiles(t, dir)
	if len(segs) == 0 {
		t.Fatal("no segment files on disk")
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendFrame(nil, keyOf(99), valOf(99, 64))
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := open(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.TruncatedTails != 1 {
		t.Fatalf("truncated %d tails, want 1 (%s)", st.TruncatedTails, st.LastRecovery)
	}
	if st.Quarantined != 0 {
		t.Fatalf("quarantined %d segments, want 0", st.Quarantined)
	}
	for i := 0; i < 5; i++ {
		if v, ok := s2.Get(keyOf(i)); !ok || !bytes.Equal(v, valOf(i, 64)) {
			t.Fatalf("record %d lost by tail truncation (ok=%v)", i, ok)
		}
	}
	if _, ok := s2.Get(keyOf(99)); ok {
		t.Fatal("torn record served")
	}
}

func TestMidFileCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(keyOf(i), valOf(i, 64)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip one payload byte in the middle of the segment: records after
	// it remain intact, so this must read as corruption, not a torn tail.
	segs := segFiles(t, dir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined %d segments, want 1 (%s)", st.Quarantined, st.LastRecovery)
	}
	// Degraded, not broken: everything misses (recompute) and new work
	// proceeds.
	for i := 0; i < 5; i++ {
		if _, ok := s2.Get(keyOf(i)); ok {
			t.Fatalf("record %d served from a quarantined segment", i)
		}
	}
	if err := s2.Put(keyOf(7), valOf(7, 64)); err != nil {
		t.Fatalf("Put after quarantine: %v", err)
	}
	if _, ok := s2.Get(keyOf(7)); !ok {
		t.Fatal("Get after quarantine miss")
	}
	if s2.Healthy() {
		t.Fatal("store claims healthy despite a quarantined segment")
	}
	// The damaged file is renamed aside, not deleted.
	ents, _ := os.ReadDir(dir)
	var quarantined int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".quarantined") {
			quarantined++
		}
	}
	if quarantined != 1 {
		t.Fatalf("%d .quarantined files, want 1", quarantined)
	}
}

func TestBitRotAtReadTime(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	defer s.Close()
	if err := s.Put(keyOf(1), valOf(1, 256)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the value bytes on disk behind the open store's back.
	segs := segFiles(t, dir)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(headerBytes+frameBytes+KeySize+10)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, ok := s.Get(keyOf(1)); ok {
		t.Fatal("checksum-mismatched record served")
	}
	st := s.Stats()
	if st.CorruptRecords != 1 {
		t.Fatalf("corrupt records %d, want 1", st.CorruptRecords)
	}
	// The entry is dropped: the next Get is a plain miss, and a re-Put
	// heals the key.
	if _, ok := s.Get(keyOf(1)); ok {
		t.Fatal("dropped record served on second read")
	}
	if err := s.Put(keyOf(1), valOf(1, 256)); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(keyOf(1)); !ok || !bytes.Equal(v, valOf(1, 256)) {
		t.Fatal("re-put after rot not served")
	}
}

func TestRotationAndEviction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 1 << 10, MaxBytes: 4 << 10})
	defer s.Close()
	for i := 0; i < 64; i++ {
		if err := s.Put(keyOf(i), valOf(i, 200)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.EvictedSegments == 0 {
		t.Fatalf("no segments evicted under a %d-byte cap: %+v", 4<<10, st)
	}
	// Eviction runs at rotation, so the footprint may exceed the cap by up
	// to one active segment's growth, never more.
	if st.Bytes > 4<<10+2<<10 {
		t.Fatalf("store size %d far exceeds the cap", st.Bytes)
	}
	// The newest keys survive; the oldest were evicted.
	if _, ok := s.Get(keyOf(63)); !ok {
		t.Fatal("newest key evicted")
	}
	if _, ok := s.Get(keyOf(0)); ok {
		t.Fatal("oldest key survived a cap 20x smaller than the data")
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 4 << 10})
	// Fill a few segments where most records are superseded re-puts of
	// the same keys: the stale majority is compaction's food.
	for round := 0; round < 40; round++ {
		for i := 0; i < 4; i++ {
			if err := s.Put(keyOf(i), valOf(round, 200)); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Stats()
	s.mu.Lock()
	s.compactLocked()
	s.mu.Unlock()
	after := s.Stats()
	if after.CompactedSegments == before.CompactedSegments {
		t.Fatalf("no compaction happened: before=%+v after=%+v", before, after)
	}
	if after.Bytes >= before.Bytes {
		t.Fatalf("compaction did not reclaim space: %d -> %d", before.Bytes, after.Bytes)
	}
	for i := 0; i < 4; i++ {
		v, ok := s.Get(keyOf(i))
		if !ok || !bytes.Equal(v, valOf(39, 200)) {
			t.Fatalf("key %d lost or stale after compaction (ok=%v)", i, ok)
		}
	}
	s.Close()
	// And the compacted layout recovers cleanly.
	s2 := open(t, dir, Options{SegmentBytes: 4 << 10})
	defer s2.Close()
	for i := 0; i < 4; i++ {
		v, ok := s2.Get(keyOf(i))
		if !ok || !bytes.Equal(v, valOf(39, 200)) {
			t.Fatalf("key %d lost after compaction+reopen (ok=%v)", i, ok)
		}
	}
}

func TestWriteFaultDegradesAndHeals(t *testing.T) {
	dir := t.TempDir()
	var failing bool
	var mu sync.Mutex
	ffs := &FaultFS{Hook: func(op Op, path string) error {
		mu.Lock()
		defer mu.Unlock()
		if failing && op == OpWrite {
			return errors.New("injected write error")
		}
		return nil
	}}
	s := open(t, dir, Options{FS: ffs})
	defer s.Close()
	if err := s.Put(keyOf(0), valOf(0, 64)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	failing = true
	mu.Unlock()
	if err := s.Put(keyOf(1), valOf(1, 64)); err == nil {
		t.Fatal("Put under injected write fault reported success")
	}
	// Reads keep working through the fault.
	if _, ok := s.Get(keyOf(0)); !ok {
		t.Fatal("read lost during write fault")
	}
	mu.Lock()
	failing = false
	mu.Unlock()
	// The store heals: the next Put rotates to a fresh segment.
	if err := s.Put(keyOf(2), valOf(2, 64)); err != nil {
		t.Fatalf("Put after fault cleared: %v", err)
	}
	if _, ok := s.Get(keyOf(2)); !ok {
		t.Fatal("healed record not served")
	}
	if s.Stats().PutErrors == 0 {
		t.Fatal("write fault not counted")
	}
}

func TestTornWriteRecoversOnReopen(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	s := open(t, dir, Options{FS: ffs})
	if err := s.Put(keyOf(0), valOf(0, 128)); err != nil {
		t.Fatal(err)
	}
	// Arm a budget that tears the next record roughly in half.
	ffs.TornWrites(frameSize(128) / 2)
	if err := s.Put(keyOf(1), valOf(1, 128)); err == nil {
		t.Fatal("torn write reported success")
	}
	ffs.DisarmTornWrites()
	s.Close()

	s2 := open(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.Quarantined != 0 {
		t.Fatalf("torn append quarantined a segment (%s)", st.LastRecovery)
	}
	if v, ok := s2.Get(keyOf(0)); !ok || !bytes.Equal(v, valOf(0, 128)) {
		t.Fatal("intact record lost to a later torn append")
	}
	if _, ok := s2.Get(keyOf(1)); ok {
		t.Fatal("torn record served")
	}
}

func TestSyncFaultAbsorbed(t *testing.T) {
	dir := t.TempDir()
	var failing bool
	var mu sync.Mutex
	ffs := &FaultFS{Hook: func(op Op, path string) error {
		mu.Lock()
		defer mu.Unlock()
		if failing && op == OpSync {
			return errors.New("injected sync error")
		}
		return nil
	}}
	s := open(t, dir, Options{FS: ffs})
	defer s.Close()
	mu.Lock()
	failing = true
	mu.Unlock()
	if err := s.Put(keyOf(0), valOf(0, 64)); err != nil {
		t.Fatalf("Put surfaced a sync error: %v", err)
	}
	if _, ok := s.Get(keyOf(0)); !ok {
		t.Fatal("record unreadable after absorbed sync error")
	}
	if s.Stats().PutErrors == 0 {
		t.Fatal("sync fault not counted")
	}
}

func TestReadFaultIsAMiss(t *testing.T) {
	dir := t.TempDir()
	var failing bool
	var mu sync.Mutex
	ffs := &FaultFS{Hook: func(op Op, path string) error {
		mu.Lock()
		defer mu.Unlock()
		if failing && op == OpReadAt {
			return errors.New("injected read error")
		}
		return nil
	}}
	s := open(t, dir, Options{FS: ffs})
	defer s.Close()
	if err := s.Put(keyOf(0), valOf(0, 64)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	failing = true
	mu.Unlock()
	if _, ok := s.Get(keyOf(0)); ok {
		t.Fatal("Get succeeded through an injected read error")
	}
	if s.Stats().ReadErrors == 0 {
		t.Fatal("read fault not counted")
	}
}

// TestQuarantinedStoreStillOpens is the degrade-never-fail contract for
// Open: a directory full of garbage must still yield a working store.
func TestQuarantinedStoreStillOpens(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(3)), []byte("complete garbage, not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(7)), append([]byte(segMagic), 0xDE, 0xAD), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	defer s.Close()
	if err := s.Put(keyOf(1), valOf(1, 32)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyOf(1)); !ok {
		t.Fatal("store not serving after opening over garbage")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir(), Options{SegmentBytes: 8 << 10, NoSync: true})
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := keyOf(w*1000 + i)
				if err := s.Put(k, valOf(i, 64)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if v, ok := s.Get(k); !ok || !bytes.Equal(v, valOf(i, 64)) {
					t.Errorf("Get after Put: ok=%v", ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Stats().Entries; got != 800 {
		t.Fatalf("entries %d, want 800", got)
	}
}

package store

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
)

// crashEnv points the helper-process re-execution at its store directory.
const crashEnv = "LACC_STORE_CRASH_DIR"

// TestCrashMidWriteRecovery proves durability the honest way: a child
// process (this test binary re-executed) appends records as fast as it
// can, acknowledging each successful Put on stdout, until the parent
// SIGKILLs it mid-stream. The parent then opens the same directory and
// requires every acknowledged record back, byte for byte. The kill almost
// certainly lands mid-append, so recovery's torn-tail truncation is
// exercised for real, not simulated.
func TestCrashMidWriteRecovery(t *testing.T) {
	if dir := os.Getenv(crashEnv); dir != "" {
		crashChild(dir) // never returns
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashMidWriteRecovery$")
	cmd.Env = append(os.Environ(), crashEnv+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Collect acknowledgements until enough records are durable, then
	// kill without warning.
	const wantAcked = 8
	var acked []int
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "acked ") {
			continue
		}
		i, err := strconv.Atoi(strings.TrimPrefix(line, "acked "))
		if err != nil {
			t.Fatalf("malformed ack %q", line)
		}
		acked = append(acked, i)
		if len(acked) >= wantAcked {
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	go func() {
		for sc.Scan() {
		}
	}()
	cmd.Wait() // the kill makes this an error by design

	s := open(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if st.Quarantined != 0 {
		t.Fatalf("a SIGKILL mid-append must never look like corruption, yet %d segments were quarantined (%s)",
			st.Quarantined, st.LastRecovery)
	}
	for _, i := range acked {
		v, ok := s.Get(keyOf(i))
		if !ok {
			t.Fatalf("acknowledged record %d lost to the crash (%s)", i, st.LastRecovery)
		}
		if !bytes.Equal(v, crashVal(i)) {
			t.Fatalf("acknowledged record %d came back with different bytes", i)
		}
	}
	t.Logf("recovered %d/%d acked records after SIGKILL: %s", len(acked), len(acked), st.LastRecovery)
}

// crashVal is the value the helper writes for record i; big enough that a
// random kill has a fair chance of landing inside a write.
func crashVal(i int) []byte { return valOf(i, 4096) }

// crashChild appends records forever, acking each durable Put, until the
// parent kills it.
func crashChild(dir string) {
	s, err := Open(Options{Dir: dir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child open: %v\n", err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		if err := s.Put(keyOf(i), crashVal(i)); err != nil {
			fmt.Fprintf(os.Stderr, "child put %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("acked %d\n", i)
	}
}

package store

import (
	"errors"
	"os"
	"sync"
)

// Op names one filesystem operation class for fault injection.
type Op string

// The injectable operation classes.
const (
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpReadAt   Op = "readat"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
	OpReadDir  Op = "readdir"
	OpMkdirAll Op = "mkdirall"
	OpStat     Op = "stat"
)

// FaultFS wraps another FS and injects failures, the I/O analogue of
// sim.Faults (PR 6's closed-loop precedent): every failure mode the store
// claims to survive is exercised through here by an injected-fault test
// rather than asserted in prose.
//
// Two knobs compose:
//
//   - Hook, consulted before every operation with the op class and path;
//     a non-nil return is injected as that operation's error (writes and
//     reads perform nothing first).
//   - TornWrites(n), which arms a byte budget: once cumulative written
//     bytes would exceed the budget, the offending write persists only
//     the bytes that fit and fails — exactly the torn-append shape a
//     crash or a full disk leaves behind.
//
// The zero Hook / unarmed budget passes everything through. Safe for
// concurrent use.
type FaultFS struct {
	// FS is the wrapped filesystem; nil means the real one.
	FS FS
	// Hook, when non-nil, may inject an error before any operation.
	Hook func(op Op, path string) error

	mu        sync.Mutex
	tornArmed bool
	tornLeft  int64
}

// TornWrites arms the torn-write budget: the next writes proceed until n
// cumulative bytes, then persist partially and fail.
func (f *FaultFS) TornWrites(n int64) {
	f.mu.Lock()
	f.tornArmed, f.tornLeft = true, n
	f.mu.Unlock()
}

// DisarmTornWrites restores full writes.
func (f *FaultFS) DisarmTornWrites() {
	f.mu.Lock()
	f.tornArmed = false
	f.mu.Unlock()
}

// inner returns the wrapped FS.
func (f *FaultFS) inner() FS {
	if f.FS == nil {
		return OSFS()
	}
	return f.FS
}

// inject consults the hook.
func (f *FaultFS) inject(op Op, path string) error {
	if f.Hook != nil {
		return f.Hook(op, path)
	}
	return nil
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.inject(OpOpen, name); err != nil {
		return nil, err
	}
	file, err := f.inner().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, path: name}, nil
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.inject(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.inner().ReadDir(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.inject(OpRename, oldpath); err != nil {
		return err
	}
	return f.inner().Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.inject(OpRemove, name); err != nil {
		return err
	}
	return f.inner().Remove(name)
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.inject(OpTruncate, name); err != nil {
		return err
	}
	return f.inner().Truncate(name, size)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(name string, perm os.FileMode) error {
	if err := f.inject(OpMkdirAll, name); err != nil {
		return err
	}
	return f.inner().MkdirAll(name, perm)
}

// Stat implements FS.
func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if err := f.inject(OpStat, name); err != nil {
		return nil, err
	}
	return f.inner().Stat(name)
}

// faultFile threads per-file operations back through the wrapper.
type faultFile struct {
	fs   *FaultFS
	f    File
	path string
}

// Write implements File, honoring the torn-write budget.
func (ff *faultFile) Write(p []byte) (int, error) {
	if err := ff.fs.inject(OpWrite, ff.path); err != nil {
		return 0, err
	}
	ff.fs.mu.Lock()
	armed, left := ff.fs.tornArmed, ff.fs.tornLeft
	if armed {
		if int64(len(p)) <= left {
			ff.fs.tornLeft -= int64(len(p))
		} else {
			ff.fs.tornLeft = 0
		}
	}
	ff.fs.mu.Unlock()
	if armed && int64(len(p)) > left {
		n, _ := ff.f.Write(p[:left])
		return n, errTorn
	}
	return ff.f.Write(p)
}

// errTorn marks a torn write injected by the budget.
var errTorn = errors.New("store: injected torn write")

// ReadAt implements File.
func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := ff.fs.inject(OpReadAt, ff.path); err != nil {
		return 0, err
	}
	return ff.f.ReadAt(p, off)
}

// Sync implements File.
func (ff *faultFile) Sync() error {
	if err := ff.fs.inject(OpSync, ff.path); err != nil {
		return err
	}
	return ff.f.Sync()
}

// Close implements File.
func (ff *faultFile) Close() error {
	if err := ff.fs.inject(OpClose, ff.path); err != nil {
		return err
	}
	return ff.f.Close()
}

// Package store implements a crash-safe, content-addressed, persistent
// result store: the durable tier under experiments.Session that lets a
// restarted (or freshly joined) lacc-serve replica serve previously
// computed sweeps without re-simulating anything.
//
// Values are canonical-JSON simulation results keyed by the session's
// (benchmark, workload spec, machine configuration) fingerprints, appended
// to numbered segment files as length- and CRC-32C-framed records. An
// in-memory index maps keys to record locations; it is rebuilt on every
// Open by a recovery scan that truncates torn tails (a crash mid-append)
// and quarantines segments with mid-file corruption (bit rot), so the
// store degrades to recomputation rather than serving damaged bytes or
// refusing to start. See DESIGN.md, "Durable results", for the format and
// the recovery algorithm; segment.go holds the framing.
//
// The store is a cache, not a system of record: every failure path —
// write errors, sync errors, unreadable segments, checksum mismatches —
// is absorbed (counted, logged through Options.Logf, and the affected
// records forgotten) because the simulator can always recompute a lost
// result. What the store guarantees is the converse: it never returns a
// value whose checksum does not match what Put stored.
//
// A Store is safe for concurrent use.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Options configures Open.
type Options struct {
	// Dir is the store directory, created if absent. Segment files, and
	// nothing else, live directly inside it.
	Dir string
	// MaxBytes caps the store's total on-disk size; when rotation pushes
	// the total past the cap, whole oldest segments are evicted (their
	// results recompute on demand). <= 0 means unbounded.
	MaxBytes int64
	// SegmentBytes is the rotation threshold for the active segment.
	// <= 0 means 8 MiB.
	SegmentBytes int64
	// NoSync skips the fsync barriers. Throughput for tests that do not
	// care about crash safety; never set it in a server.
	NoSync bool
	// FS is the filesystem implementation; nil means the real one. Tests
	// inject faults by wrapping it (FaultFS).
	FS FS
	// Logf, when non-nil, receives one line per absorbed I/O failure and
	// per notable recovery event. Nil discards them.
	Logf func(format string, args ...any)
}

// defaultSegmentBytes is the rotation threshold when Options leaves it 0.
const defaultSegmentBytes = 8 << 20

// loc is one record's location: the owning segment and the frame offset.
type loc struct {
	seg    uint64
	off    int64 // frame start
	valLen int
}

// segment is one open segment file.
type segment struct {
	id     uint64
	path   string
	f      File
	size   int64
	total  int  // records ever written into it
	live   int  // index entries currently pointing into it
	sealed bool // no further appends (write failure or rotation)
}

// Store is an open result store. Construct with Open.
type Store struct {
	fs   FS
	dir  string
	opt  Options
	logf func(format string, args ...any)

	mu       sync.Mutex
	index    map[Key]loc
	segs     map[uint64]*segment
	order    []uint64 // segment ids, ascending; last is the active one
	nextID   uint64
	total    int64 // bytes across all live segments
	closed   bool
	scratch  []byte // reusable frame-encode buffer (guarded by mu)
	counters counters
	recovery string // human-readable outcome of the Open scan
}

// counters aggregates the monotone event counts behind Stats. Guarded by
// Store.mu.
type counters struct {
	hits, misses, puts    uint64
	putErrors, readErrors uint64
	corruptRecords        uint64
	quarantined           uint64
	evictedSegments       uint64
	compactedSegments     uint64
	recoveredRecords      uint64
	truncatedTails        uint64
}

// Stats is a snapshot of the store's state and counters, served by
// /v1/stats and /v1/healthz so degraded-to-recompute operation is
// observable.
type Stats struct {
	// Dir is the store directory.
	Dir string `json:"dir"`
	// Segments and Bytes describe the current on-disk footprint; Entries
	// is the number of distinct keys servable right now.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	Entries  int   `json:"entries"`
	// Hits and Misses count Get outcomes; Puts counts records accepted.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
	// PutErrors and ReadErrors count absorbed I/O failures (the store
	// kept serving; the affected records recompute on demand).
	PutErrors  uint64 `json:"put_errors"`
	ReadErrors uint64 `json:"read_errors"`
	// CorruptRecords counts records dropped for checksum mismatches at
	// read time; Quarantined counts whole segments set aside by recovery.
	CorruptRecords uint64 `json:"corrupt_records"`
	Quarantined    uint64 `json:"quarantined"`
	// EvictedSegments and CompactedSegments count MaxBytes evictions and
	// compaction rewrites.
	EvictedSegments   uint64 `json:"evicted_segments"`
	CompactedSegments uint64 `json:"compacted_segments"`
	// RecoveredRecords and TruncatedTails describe the last Open scan;
	// LastRecovery is its one-line human-readable outcome.
	RecoveredRecords uint64 `json:"recovered_records"`
	TruncatedTails   uint64 `json:"truncated_tails"`
	LastRecovery     string `json:"last_recovery"`
}

// segName formats a segment filename; ids sort lexically because they are
// fixed-width.
func segName(id uint64) string { return fmt.Sprintf("seg-%016x.seg", id) }

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	var id uint64
	if _, err := fmt.Sscanf(name, "seg-%016x.seg", &id); err != nil {
		return 0, false
	}
	if segName(id) != name {
		return 0, false
	}
	return id, true
}

// Open opens (creating if necessary) the store in opt.Dir and rebuilds the
// index with a recovery scan: every segment is read and checksummed
// record by record; torn tails are truncated in place, segments with
// mid-file corruption are renamed aside (.quarantined) and their results
// forgotten. Open fails only when the directory itself is unusable —
// damaged contents degrade the store, they do not prevent it from
// serving.
func Open(opt Options) (*Store, error) {
	fs := opt.FS
	if fs == nil {
		fs = OSFS()
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegmentBytes
	}
	if opt.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if err := fs.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", opt.Dir, err)
	}
	s := &Store{
		fs:    fs,
		dir:   opt.Dir,
		opt:   opt,
		logf:  opt.Logf,
		index: map[Key]loc{},
		segs:  map[uint64]*segment{},
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	// Compact before opening the active segment: compaction allocates new
	// segment ids, and recovery's last-wins index rebuild is only correct
	// if every segment that can still receive appends has a higher id than
	// every compacted copy of older data.
	s.compactLocked()
	if err := s.openActive(); err != nil {
		return nil, fmt.Errorf("store: starting active segment: %w", err)
	}
	return s, nil
}

// recover scans the directory and rebuilds the index. Called once from
// Open, before any concurrent access exists.
func (s *Store) recover() error {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.dir, err)
	}
	var ids []uint64
	var preQuarantined int
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case filepath.Ext(name) == ".tmp":
			// A compaction that crashed before its rename; the original
			// segment is still intact, so the half-written copy is garbage.
			s.fs.Remove(filepath.Join(s.dir, name))
		case filepath.Ext(name) == ".quarantined":
			preQuarantined++
		default:
			if id, ok := parseSegName(name); ok {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var truncated, quarantined int
	for _, id := range ids {
		path := filepath.Join(s.dir, segName(id))
		outcome, err := s.recoverSegment(id, path)
		if err != nil {
			// An unreadable segment (I/O error, not corruption) is set
			// aside like a corrupt one: the store must come up.
			s.logf("store: recovery: %s unreadable (%v); quarantining", path, err)
			outcome = segCorrupt
		}
		switch outcome {
		case segTruncated:
			truncated++
		case segCorrupt:
			s.quarantine(id, path)
			quarantined++
		case segEmpty:
			s.fs.Remove(path)
			syncDir(s.fs, s.dir)
		}
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	s.counters.recoveredRecords = uint64(len(s.index))
	s.counters.truncatedTails = uint64(truncated)
	s.counters.quarantined = uint64(quarantined)
	switch {
	case truncated == 0 && quarantined == 0:
		s.recovery = fmt.Sprintf("clean: %d segments, %d results", len(s.segs), len(s.index))
	default:
		s.recovery = fmt.Sprintf("recovered %d results from %d segments (%d torn tails truncated, %d segments quarantined, %d quarantined earlier)",
			len(s.index), len(s.segs), truncated, quarantined, preQuarantined)
	}
	s.logf("store: %s", s.recovery)
	return nil
}

// segOutcome classifies one recovered segment.
type segOutcome int

const (
	segClean segOutcome = iota
	segTruncated
	segCorrupt
	segEmpty
)

// recoverSegment reads, scans and (if intact) registers one segment.
func (s *Store) recoverSegment(id uint64, path string) (segOutcome, error) {
	info, err := s.fs.Stat(path)
	if err != nil {
		return segCorrupt, err
	}
	f, err := s.fs.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return segCorrupt, err
	}
	size := info.Size()
	if size > maxSegmentImage {
		f.Close()
		return segCorrupt, fmt.Errorf("segment implausibly large (%d bytes)", size)
	}
	buf := make([]byte, size)
	if _, err := readFull(f, buf); err != nil {
		f.Close()
		return segCorrupt, err
	}
	recs, tail, corrupt := scanSegment(buf)
	if corrupt {
		f.Close()
		return segCorrupt, nil
	}
	outcome := segClean
	if int64(tail) < size {
		// Torn tail: a crash mid-append. Cut the file back to its last
		// intact record so future appends (by compaction) and scans start
		// from a clean boundary.
		if err := s.fs.Truncate(path, int64(tail)); err != nil {
			f.Close()
			return segCorrupt, err
		}
		if !s.opt.NoSync {
			f.Sync()
		}
		size = int64(tail)
		outcome = segTruncated
		s.logf("store: recovery: truncated torn tail of %s at %d bytes", path, tail)
	}
	if len(recs) == 0 {
		f.Close()
		if outcome == segClean {
			return segEmpty, nil
		}
		return outcome, nil
	}
	seg := &segment{id: id, path: path, f: f, size: size, total: len(recs), sealed: true}
	s.segs[id] = seg
	s.order = append(s.order, id)
	s.total += size
	for _, r := range recs {
		s.setIndex(r.key, loc{seg: id, off: int64(r.off), valLen: r.valLen})
	}
	return outcome, nil
}

// maxSegmentImage bounds how much recovery will read into memory for one
// segment: generously above any legal segment (rotation caps them) while
// refusing to inhale a corrupt multi-GB file.
const maxSegmentImage = 1 << 30

// readFull fills buf from f at offset 0.
func readFull(f File, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := f.ReadAt(buf[n:], int64(n))
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// setIndex points key at l, maintaining per-segment live counts.
func (s *Store) setIndex(k Key, l loc) {
	if old, ok := s.index[k]; ok {
		if seg := s.segs[old.seg]; seg != nil {
			seg.live--
		}
	}
	s.index[k] = l
	if seg := s.segs[l.seg]; seg != nil {
		seg.live++
	}
}

// dropIndex removes key's entry if it still points at l.
func (s *Store) dropIndex(k Key, l loc) {
	if cur, ok := s.index[k]; ok && cur == l {
		delete(s.index, k)
		if seg := s.segs[l.seg]; seg != nil {
			seg.live--
		}
	}
}

// quarantine renames a damaged segment aside so it stops participating in
// recovery but stays on disk for a post-mortem.
func (s *Store) quarantine(id uint64, path string) {
	q := path + ".quarantined"
	if err := s.fs.Rename(path, q); err != nil {
		// Renaming failed too; removal is the fallback so the next Open
		// does not re-scan the damage.
		s.logf("store: quarantine rename of %s failed (%v); removing", path, err)
		s.fs.Remove(path)
	}
	syncDir(s.fs, s.dir)
	s.logf("store: quarantined corrupt segment %s", path)
}

// openActive creates the next append segment. Callers hold no lock only
// during Open; rotate calls it with mu held.
func (s *Store) openActive() error {
	id := s.nextID
	s.nextID++
	path := filepath.Join(s.dir, segName(id))
	f, err := s.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		s.fs.Remove(path)
		return err
	}
	if !s.opt.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			s.fs.Remove(path)
			return err
		}
		syncDir(s.fs, s.dir)
	}
	seg := &segment{id: id, path: path, f: f, size: int64(headerBytes)}
	s.segs[id] = seg
	s.order = append(s.order, id)
	s.total += seg.size
	return nil
}

// active returns the append segment, or nil when the last one failed and
// has not been replaced yet.
func (s *Store) active() *segment {
	if len(s.order) == 0 {
		return nil
	}
	return s.segs[s.order[len(s.order)-1]]
}

// Put durably appends (key, value). Errors are returned for observability
// but the caller is expected to absorb them (the session logs and moves
// on): a failed Put loses nothing except future disk hits for this key.
func (s *Store) Put(key Key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if frameSize(len(val)) > maxRecordBytes {
		s.counters.putErrors++
		return fmt.Errorf("store: value of %d bytes exceeds the record limit", len(val))
	}
	seg := s.active()
	if seg == nil || seg.sealed || seg.size >= s.opt.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			s.counters.putErrors++
			s.logf("store: rotating segments: %v", err)
			return err
		}
		seg = s.active()
	}
	s.scratch = appendFrame(s.scratch[:0], key, val)
	n, err := seg.f.Write(s.scratch)
	if err != nil {
		// The segment now ends in a torn record; seal it (recovery-style
		// truncation would need the write offset to be trustworthy, which
		// it is not after a failed write) and let the next Put start a
		// fresh segment. The torn bytes are truncated by the next Open.
		s.counters.putErrors++
		seg.size += int64(n)
		s.total += int64(n)
		s.sealActiveLocked()
		s.logf("store: append of %s failed: %v", key, err)
		return err
	}
	if !s.opt.NoSync {
		if err := seg.f.Sync(); err != nil {
			// The data reached the page cache but maybe not the platter;
			// keep serving it (CRC guards reads) but count the failure.
			s.counters.putErrors++
			s.logf("store: fsync after %s failed: %v", key, err)
		}
	}
	off := seg.size
	seg.size += int64(len(s.scratch))
	s.total += int64(len(s.scratch))
	seg.total++
	s.setIndex(key, loc{seg: seg.id, off: off, valLen: len(val)})
	s.counters.puts++
	return nil
}

// sealActiveLocked retires the active segment from appending without
// creating a successor (the next Put does, so a persistent disk failure
// costs one rotation attempt per Put, not an unbounded pile of
// segments).
func (s *Store) sealActiveLocked() {
	if seg := s.active(); seg != nil {
		seg.sealed = true
	}
}

// Get returns the stored value for key. Every read re-verifies the
// record's checksum — a mismatch (bit rot since the write) drops the
// entry and reports a miss, never a damaged value.
func (s *Store) Get(key Key) ([]byte, bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	l, ok := s.index[key]
	if !ok {
		s.counters.misses++
		s.mu.Unlock()
		return nil, false
	}
	seg := s.segs[l.seg]
	f := seg.f
	s.mu.Unlock()

	buf := make([]byte, frameSize(l.valLen))
	_, err := f.ReadAt(buf, l.off)
	if err != nil {
		s.mu.Lock()
		s.counters.readErrors++
		s.counters.misses++
		s.dropIndex(key, l)
		s.mu.Unlock()
		s.logf("store: reading %s: %v", key, err)
		return nil, false
	}
	r, _, ok := decodeFrame(buf, 0)
	if !ok || r.key != key || r.valLen != l.valLen {
		s.mu.Lock()
		s.counters.corruptRecords++
		s.counters.misses++
		s.dropIndex(key, l)
		s.mu.Unlock()
		s.logf("store: record for %s failed its checksum; dropped", key)
		return nil, false
	}
	s.mu.Lock()
	s.counters.hits++
	s.mu.Unlock()
	return buf[frameBytes+KeySize:], true
}

// Contains reports whether key is currently servable (no I/O).
func (s *Store) Contains(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// rotateLocked seals the active segment, compacts under-utilized sealed
// segments, opens the successor and evicts oldest segments beyond
// MaxBytes. Compaction runs before openActive for the same id-ordering
// reason as in Open: the fresh active must outrank any compacted copy.
func (s *Store) rotateLocked() error {
	if seg := s.active(); seg != nil && !s.opt.NoSync {
		seg.f.Sync()
	}
	s.sealActiveLocked()
	s.compactLocked()
	if err := s.openActive(); err != nil {
		return err
	}
	s.evictLocked()
	return nil
}

// evictLocked removes whole oldest segments until the store fits
// MaxBytes. The active segment is never evicted.
func (s *Store) evictLocked() {
	if s.opt.MaxBytes <= 0 {
		return
	}
	for s.total > s.opt.MaxBytes && len(s.order) > 1 {
		id := s.order[0]
		seg := s.segs[id]
		s.order = s.order[1:]
		delete(s.segs, id)
		s.total -= seg.size
		for k, l := range s.index {
			if l.seg == id {
				delete(s.index, k)
			}
		}
		seg.f.Close()
		s.fs.Remove(seg.path)
		syncDir(s.fs, s.dir)
		s.counters.evictedSegments++
		s.logf("store: evicted %s (%d bytes) to respect the %d-byte cap", seg.path, seg.size, s.opt.MaxBytes)
	}
}

// compactLocked rewrites sealed segments whose records are mostly
// superseded (live < half of total): the surviving records are copied
// into a fresh segment written beside the store and atomically renamed
// into place, then the original is removed. Compaction is pure
// space-reclamation — every live record stays servable throughout, and a
// crash at any point leaves either the original or the complete copy
// (half-written .tmp files are swept by recovery).
func (s *Store) compactLocked() {
	for _, id := range append([]uint64(nil), s.order...) {
		seg := s.segs[id]
		if seg == nil || !seg.sealed || seg.live*2 >= seg.total {
			continue
		}
		if err := s.compactSegment(seg); err != nil {
			s.logf("store: compacting %s: %v", seg.path, err)
		}
	}
}

// compactSegment copies seg's live records into a new segment file.
func (s *Store) compactSegment(seg *segment) error {
	// Collect the live records (key order is irrelevant; offsets are).
	type liveRec struct {
		key Key
		l   loc
	}
	var live []liveRec
	for k, l := range s.index {
		if l.seg == seg.id {
			live = append(live, liveRec{k, l})
		}
	}
	if len(live) == 0 {
		// Nothing worth keeping: drop the segment outright.
		s.removeSegment(seg)
		s.counters.compactedSegments++
		return nil
	}
	sort.Slice(live, func(i, j int) bool { return live[i].l.off < live[j].l.off })

	newID := s.nextID
	s.nextID++
	finalPath := filepath.Join(s.dir, segName(newID))
	tmpPath := finalPath + ".tmp"
	f, err := s.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		f.Close()
		s.fs.Remove(tmpPath)
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		return abort(err)
	}
	newLocs := make([]loc, len(live))
	dropped := make([]bool, len(live))
	off := int64(headerBytes)
	for i, lr := range live {
		buf := make([]byte, frameSize(lr.l.valLen))
		if _, err := seg.f.ReadAt(buf, lr.l.off); err != nil {
			return abort(err)
		}
		if r, _, ok := decodeFrame(buf, 0); !ok || r.key != lr.key {
			// The source record rotted since recovery scanned it; drop it
			// rather than copying damage forward.
			s.counters.corruptRecords++
			s.dropIndex(lr.key, lr.l)
			dropped[i] = true
			continue
		}
		if _, err := f.Write(buf); err != nil {
			return abort(err)
		}
		newLocs[i] = loc{seg: newID, off: off, valLen: lr.l.valLen}
		off += int64(len(buf))
	}
	if !s.opt.NoSync {
		if err := f.Sync(); err != nil {
			return abort(err)
		}
	}
	if err := s.fs.Rename(tmpPath, finalPath); err != nil {
		return abort(err)
	}
	syncDir(s.fs, s.dir)

	// Publish: register the new segment in the old one's age slot (so it
	// is not mistaken for the active append target and keeps its place in
	// eviction order), repoint the index, drop the old.
	ns := &segment{id: newID, path: finalPath, f: f, size: off, sealed: true}
	s.segs[newID] = ns
	for i, id := range s.order {
		if id == seg.id {
			s.order[i] = newID
			break
		}
	}
	s.total += ns.size
	for i, lr := range live {
		if dropped[i] {
			continue
		}
		if cur, ok := s.index[lr.key]; ok && cur == lr.l {
			s.setIndex(lr.key, newLocs[i])
			ns.total++
		}
	}
	s.removeSegment(seg)
	s.counters.compactedSegments++
	s.logf("store: compacted %s -> %s (%d live records)", seg.path, finalPath, ns.live)
	return nil
}

// removeSegment closes and deletes a sealed segment, dropping any index
// entries still pointing into it.
func (s *Store) removeSegment(seg *segment) {
	for i, id := range s.order {
		if id == seg.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	delete(s.segs, seg.id)
	s.total -= seg.size
	for k, l := range s.index {
		if l.seg == seg.id {
			delete(s.index, k)
		}
	}
	seg.f.Close()
	s.fs.Remove(seg.path)
	syncDir(s.fs, s.dir)
}

// Sync forces an fsync of the active segment (useful with NoSync stores
// at checkpoints; redundant otherwise, Put syncs as it goes).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if seg := s.active(); seg != nil {
		return seg.f.Sync()
	}
	return nil
}

// Close syncs and closes every segment. The store refuses further use.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, id := range s.order {
		seg := s.segs[id]
		if !s.opt.NoSync {
			if err := seg.f.Sync(); err != nil && first == nil {
				first = err
			}
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a consistent snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dir:               s.dir,
		Segments:          len(s.order),
		Bytes:             s.total,
		Entries:           len(s.index),
		Hits:              s.counters.hits,
		Misses:            s.counters.misses,
		Puts:              s.counters.puts,
		PutErrors:         s.counters.putErrors,
		ReadErrors:        s.counters.readErrors,
		CorruptRecords:    s.counters.corruptRecords,
		Quarantined:       s.counters.quarantined,
		EvictedSegments:   s.counters.evictedSegments,
		CompactedSegments: s.counters.compactedSegments,
		RecoveredRecords:  s.counters.recoveredRecords,
		TruncatedTails:    s.counters.truncatedTails,
		LastRecovery:      s.recovery,
	}
}

// Healthy reports whether the store has seen no absorbed failures: false
// means it is (or was) degraded — still serving, with recomputation
// covering the losses.
func (s *Store) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters
	return c.putErrors == 0 && c.readErrors == 0 && c.corruptRecords == 0 && c.quarantined == 0
}

package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk format (all integers little-endian):
//
//	segment := header record*
//	header  := "LACCSEG1"                      (8 bytes)
//	record  := magic(u32) length(u32) crc(u32) payload
//	payload := key(32 bytes) value(length-32 bytes)
//
// length is the payload size (key + value); crc is CRC-32C (Castagnoli)
// over the payload. The per-record magic exists purely for recovery: a
// length-prefixed stream cannot be re-synchronized after a corrupt frame
// without a marker to search for, and the distinction between "corruption
// followed by more valid data" (a bit-flip — quarantine the segment) and
// "corruption extending to EOF" (a torn write — truncate the tail) is
// exactly a search for a later valid frame.
//
// DESIGN.md ("Durable results") documents the format and the recovery
// algorithm normatively.

const (
	segMagic = "LACCSEG1"

	recMagic    = uint32(0x4C414343) // "LACC" read as LE bytes 43 43 41 4C
	frameBytes  = 12                 // magic + length + crc
	headerBytes = len(segMagic)

	// KeySize is the content-address width: a SHA-256 fingerprint.
	KeySize = 32

	// maxRecordBytes bounds one payload. Real values are canonical-JSON
	// simulation results (tens of KB to a few MB for large meshes); the
	// bound exists so a corrupt length field cannot make recovery or Get
	// attempt a absurd allocation.
	maxRecordBytes = 64 << 20
)

// Key is a content-addressed record key: the SHA-256 fingerprint of the
// canonical-JSON simulation identity (benchmark, workload spec, machine
// configuration — see experiments' fingerprint derivation).
type Key [KeySize]byte

// String renders the key in hex for logs.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the framed record for (key, val) to dst.
func appendFrame(dst []byte, key Key, val []byte) []byte {
	payloadLen := KeySize + len(val)
	var hdr [frameBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], recMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(payloadLen))
	crc := crc32.Update(0, castagnoli, key[:])
	crc = crc32.Update(crc, castagnoli, val)
	binary.LittleEndian.PutUint32(hdr[8:12], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, key[:]...)
	return append(dst, val...)
}

// frameSize returns the on-disk size of a record holding a value of n
// bytes.
func frameSize(n int) int64 { return int64(frameBytes + KeySize + n) }

// rec is one decoded record location within a segment buffer.
type rec struct {
	key    Key
	off    int // frame start offset within the segment
	valOff int // value start offset within the segment
	valLen int
}

// decodeFrame decodes the record at buf[off:]. ok=false means the bytes at
// off are not a complete, checksummed record: either a torn/corrupt frame
// or a clean EOF (off == len(buf)).
func decodeFrame(buf []byte, off int) (r rec, next int, ok bool) {
	if off < 0 || off > len(buf)-frameBytes {
		return rec{}, 0, false
	}
	if binary.LittleEndian.Uint32(buf[off:]) != recMagic {
		return rec{}, 0, false
	}
	payloadLen := int(binary.LittleEndian.Uint32(buf[off+4:]))
	if payloadLen < KeySize || payloadLen > maxRecordBytes {
		return rec{}, 0, false
	}
	end := off + frameBytes + payloadLen
	if end < 0 || end > len(buf) {
		return rec{}, 0, false
	}
	payload := buf[off+frameBytes : end]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[off+8:]) {
		return rec{}, 0, false
	}
	r.off = off
	copy(r.key[:], payload[:KeySize])
	r.valOff = off + frameBytes + KeySize
	r.valLen = payloadLen - KeySize
	return r, end, true
}

// scanSegment walks a whole segment image and classifies it:
//
//   - recs: every intact record, in file order.
//   - tail: the offset where intact data ends. tail == len(buf) means the
//     segment parsed cleanly to EOF; anything shorter is a torn tail the
//     store truncates away.
//   - corrupt: a damaged frame is followed by at least one intact record,
//     i.e. the damage sits in the middle of the file (a bit-flip, not a
//     torn append). Such a segment cannot be trusted record-by-record —
//     the intact-looking suffix may itself be displaced — so the store
//     quarantines the whole file and recomputes its results on demand.
//
// A buffer without the segment header is corrupt unless it is a prefix of
// the header (a segment torn before the header finished writing), which
// reports tail 0.
//
// scanSegment never panics, whatever the input: it is the fuzzed surface
// (FuzzScanSegment) behind crash recovery.
func scanSegment(buf []byte) (recs []rec, tail int, corrupt bool) {
	if len(buf) < headerBytes {
		if string(buf) == segMagic[:len(buf)] {
			return nil, 0, false // torn mid-header
		}
		return nil, 0, len(buf) > 0
	}
	if string(buf[:headerBytes]) != segMagic {
		return nil, 0, true
	}
	off := headerBytes
	for off < len(buf) {
		r, next, ok := decodeFrame(buf, off)
		if !ok {
			if resync(buf, off) {
				return recs, off, true
			}
			return recs, off, false
		}
		recs = append(recs, r)
		off = next
	}
	return recs, off, false
}

// resync reports whether any intact record exists after a damaged frame at
// off — the test separating mid-file corruption from a torn tail.
func resync(buf []byte, off int) bool {
	for i := off + 1; i <= len(buf)-frameBytes; i++ {
		if binary.LittleEndian.Uint32(buf[i:]) != recMagic {
			continue
		}
		if _, _, ok := decodeFrame(buf, i); ok {
			return true
		}
	}
	return false
}

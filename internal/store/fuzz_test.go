package store

import (
	"bytes"
	"testing"
)

// FuzzScanSegment is the recovery scanner's safety net: whatever bytes a
// crash, a torn write or bit rot left in a segment file, scanning must
// never panic, and every record it accepts must independently re-verify —
// correct magic, in-bounds payload, matching CRC — at the offset the
// scanner reported. A wrong-checksum record leaking out of recovery would
// violate the store's one hard guarantee.
func FuzzScanSegment(f *testing.F) {
	// Seed the interesting shapes: empty, torn header, valid segments of
	// one and several records, a torn tail, and a mid-file bit-flip.
	f.Add([]byte{})
	f.Add([]byte(segMagic[:4]))
	f.Add([]byte(segMagic))

	one := appendFrame([]byte(segMagic), Key{1, 2, 3}, []byte("hello"))
	f.Add(one)

	multi := []byte(segMagic)
	for i := 0; i < 4; i++ {
		multi = appendFrame(multi, Key{byte(i)}, bytes.Repeat([]byte{byte(i)}, 40+i))
	}
	f.Add(multi)
	f.Add(multi[:len(multi)-7]) // torn tail

	flipped := append([]byte(nil), multi...)
	flipped[len(flipped)/2] ^= 0x01 // mid-file corruption
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, buf []byte) {
		recs, tail, corrupt := scanSegment(buf)
		if tail < 0 || tail > len(buf) {
			t.Fatalf("tail %d outside [0, %d]", tail, len(buf))
		}
		prevEnd := headerBytes
		for i, r := range recs {
			rr, next, ok := decodeFrame(buf, r.off)
			if !ok {
				t.Fatalf("record %d at %d does not re-verify", i, r.off)
			}
			if rr.key != r.key || rr.valOff != r.valOff || rr.valLen != r.valLen {
				t.Fatalf("record %d decodes differently on re-verify", i)
			}
			if r.off != prevEnd {
				t.Fatalf("record %d starts at %d, want contiguous %d", i, r.off, prevEnd)
			}
			if next > tail {
				t.Fatalf("record %d ends at %d beyond tail %d", i, next, tail)
			}
			prevEnd = next
		}
		if len(recs) > 0 && !corrupt && tail != len(buf) && prevEnd != tail {
			t.Fatalf("truncation point %d does not sit at the last record's end %d", tail, prevEnd)
		}
	})
}

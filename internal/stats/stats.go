// Package stats provides the counters, latency/energy breakdowns and
// aggregation helpers used to report the paper's evaluation metrics
// (Section 4.4: completion time breakdown, miss-type breakdown, energy
// breakdown).
package stats

import "math"

// TimeBreakdown decomposes completion time into the paper's six components
// (Section 4.4). All values are in cycles, summed across the accounted cores.
type TimeBreakdown struct {
	Compute   float64 // pipeline compute cycles
	L1ToL2    float64 // L1 miss round trip to home L2 incl. first L2 access
	L2Waiting float64 // serialization queueing on the home line
	L2Sharers float64 // invalidation / synchronous write-back round trips
	OffChip   float64 // DRAM access incl. controller queueing
	Sync      float64 // barrier + lock waiting
}

// Total returns the sum of all components.
func (b TimeBreakdown) Total() float64 {
	return b.Compute + b.L1ToL2 + b.L2Waiting + b.L2Sharers + b.OffChip + b.Sync
}

// Add accumulates o into b.
func (b *TimeBreakdown) Add(o TimeBreakdown) {
	b.Compute += o.Compute
	b.L1ToL2 += o.L1ToL2
	b.L2Waiting += o.L2Waiting
	b.L2Sharers += o.L2Sharers
	b.OffChip += o.OffChip
	b.Sync += o.Sync
}

// Scale returns b with every component multiplied by f.
func (b TimeBreakdown) Scale(f float64) TimeBreakdown {
	return TimeBreakdown{
		Compute:   b.Compute * f,
		L1ToL2:    b.L1ToL2 * f,
		L2Waiting: b.L2Waiting * f,
		L2Sharers: b.L2Sharers * f,
		OffChip:   b.OffChip * f,
		Sync:      b.Sync * f,
	}
}

// EnergyBreakdown decomposes dynamic energy by component (Figure 8). Units
// are picojoules.
type EnergyBreakdown struct {
	L1I       float64
	L1D       float64
	L2        float64
	Directory float64
	Router    float64
	Link      float64
}

// Total returns the sum of all components.
func (e EnergyBreakdown) Total() float64 {
	return e.L1I + e.L1D + e.L2 + e.Directory + e.Router + e.Link
}

// Add accumulates o into e.
func (e *EnergyBreakdown) Add(o EnergyBreakdown) {
	e.L1I += o.L1I
	e.L1D += o.L1D
	e.L2 += o.L2
	e.Directory += o.Directory
	e.Router += o.Router
	e.Link += o.Link
}

// Scale returns e with every component multiplied by f.
func (e EnergyBreakdown) Scale(f float64) EnergyBreakdown {
	return EnergyBreakdown{
		L1I: e.L1I * f, L1D: e.L1D * f, L2: e.L2 * f,
		Directory: e.Directory * f, Router: e.Router * f, Link: e.Link * f,
	}
}

// MissKind classifies L1 data cache misses per Section 4.4.
type MissKind uint8

// Miss types. Word misses are misses serviced as remote word accesses at the
// shared L2 home.
const (
	MissCold MissKind = iota
	MissCapacity
	MissUpgrade
	MissSharing
	MissWord
	numMissKinds
)

// String implements fmt.Stringer.
func (k MissKind) String() string {
	switch k {
	case MissCold:
		return "cold"
	case MissCapacity:
		return "capacity"
	case MissUpgrade:
		return "upgrade"
	case MissSharing:
		return "sharing"
	case MissWord:
		return "word"
	default:
		return "unknown"
	}
}

// MissStats accumulates L1-D access outcomes.
type MissStats struct {
	Hits   uint64
	Misses [int(numMissKinds)]uint64
}

// Record counts one miss of kind k.
func (m *MissStats) Record(k MissKind) { m.Misses[k]++ }

// TotalMisses returns the number of misses of any kind.
func (m *MissStats) TotalMisses() uint64 {
	var t uint64
	for _, v := range m.Misses {
		t += v
	}
	return t
}

// Accesses returns hits + misses.
func (m *MissStats) Accesses() uint64 { return m.Hits + m.TotalMisses() }

// Rate returns the overall miss rate in percent.
func (m *MissStats) Rate() float64 {
	a := m.Accesses()
	if a == 0 {
		return 0
	}
	return 100 * float64(m.TotalMisses()) / float64(a)
}

// RateOf returns the miss rate of a single kind in percent of all accesses.
func (m *MissStats) RateOf(k MissKind) float64 {
	a := m.Accesses()
	if a == 0 {
		return 0
	}
	return 100 * float64(m.Misses[k]) / float64(a)
}

// Add accumulates o into m.
func (m *MissStats) Add(o MissStats) {
	m.Hits += o.Hits
	for i := range m.Misses {
		m.Misses[i] += o.Misses[i]
	}
}

// UtilizationHistogram buckets cache-line utilization at
// eviction/invalidation time into the paper's Figure 1/2 bins:
// 1, 2–3, 4–5, 6–7, >=8.
type UtilizationHistogram struct {
	Buckets [5]uint64
}

// BucketLabels are the paper's bin labels for Figures 1 and 2.
var BucketLabels = [5]string{"1", "2,3", "4,5", "6,7", ">=8"}

// Record adds one sample with the given utilization count.
func (h *UtilizationHistogram) Record(utilization uint32) {
	switch {
	case utilization <= 1:
		h.Buckets[0]++
	case utilization <= 3:
		h.Buckets[1]++
	case utilization <= 5:
		h.Buckets[2]++
	case utilization <= 7:
		h.Buckets[3]++
	default:
		h.Buckets[4]++
	}
}

// Total returns the number of recorded samples.
func (h *UtilizationHistogram) Total() uint64 {
	var t uint64
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Percent returns the share of each bucket in percent (zeros when empty).
func (h *UtilizationHistogram) Percent() [5]float64 {
	var out [5]float64
	t := h.Total()
	if t == 0 {
		return out
	}
	for i, b := range h.Buckets {
		out[i] = 100 * float64(b) / float64(t)
	}
	return out
}

// Add accumulates o into h.
func (h *UtilizationHistogram) Add(o UtilizationHistogram) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
// It returns 0 when no positive values exist.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

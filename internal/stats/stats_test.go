package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeBreakdownTotalAndAdd(t *testing.T) {
	a := TimeBreakdown{Compute: 1, L1ToL2: 2, L2Waiting: 3, L2Sharers: 4, OffChip: 5, Sync: 6}
	if got := a.Total(); got != 21 {
		t.Fatalf("Total = %v, want 21", got)
	}
	b := a
	b.Add(a)
	if got := b.Total(); got != 42 {
		t.Fatalf("after Add, Total = %v, want 42", got)
	}
	s := a.Scale(2)
	if s.Compute != 2 || s.Sync != 12 {
		t.Fatalf("Scale wrong: %+v", s)
	}
}

func TestEnergyBreakdown(t *testing.T) {
	e := EnergyBreakdown{L1I: 1, L1D: 2, L2: 3, Directory: 4, Router: 5, Link: 6}
	if e.Total() != 21 {
		t.Fatalf("Total = %v", e.Total())
	}
	e.Add(e)
	if e.Total() != 42 {
		t.Fatalf("Total after add = %v", e.Total())
	}
	if got := e.Scale(0.5).Total(); got != 21 {
		t.Fatalf("Scale(0.5).Total = %v", got)
	}
}

func TestMissStats(t *testing.T) {
	var m MissStats
	m.Hits = 90
	m.Record(MissCold)
	m.Record(MissCapacity)
	m.Record(MissCapacity)
	m.Record(MissWord)
	m.Record(MissSharing)
	m.Record(MissUpgrade)
	m.Record(MissWord)
	m.Record(MissWord)
	m.Record(MissWord)
	m.Record(MissWord)
	if got := m.TotalMisses(); got != 10 {
		t.Fatalf("TotalMisses = %d, want 10", got)
	}
	if got := m.Rate(); got != 10 {
		t.Fatalf("Rate = %v, want 10", got)
	}
	if got := m.RateOf(MissWord); got != 5 {
		t.Fatalf("RateOf(word) = %v, want 5", got)
	}
	var o MissStats
	o.Add(m)
	o.Add(m)
	if o.TotalMisses() != 20 || o.Hits != 180 {
		t.Fatalf("Add broken: %+v", o)
	}
}

func TestMissKindString(t *testing.T) {
	want := map[MissKind]string{
		MissCold: "cold", MissCapacity: "capacity", MissUpgrade: "upgrade",
		MissSharing: "sharing", MissWord: "word", MissKind(42): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(k), k.String(), s)
		}
	}
}

func TestUtilizationHistogramBuckets(t *testing.T) {
	var h UtilizationHistogram
	samples := map[uint32]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 3, 8: 4, 100: 4}
	for u, want := range samples {
		var g UtilizationHistogram
		g.Record(u)
		for i := range g.Buckets {
			wantCount := uint64(0)
			if i == want {
				wantCount = 1
			}
			if g.Buckets[i] != wantCount {
				t.Errorf("Record(%d): bucket %d = %d, want %d", u, i, g.Buckets[i], wantCount)
			}
		}
		h.Record(u)
	}
	if h.Total() != uint64(len(samples)) {
		t.Fatalf("Total = %d", h.Total())
	}
	p := h.Percent()
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("percentages sum to %v", sum)
	}
}

func TestUtilizationHistogramEmptyPercent(t *testing.T) {
	var h UtilizationHistogram
	for _, v := range h.Percent() {
		if v != 0 {
			t.Fatal("empty histogram must report zeros")
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{0, -1}); got != 0 {
		t.Fatalf("GeoMean(non-positive) = %v", got)
	}
	// Non-positive values are ignored, not zeroing the result.
	if got := GeoMean([]float64{0, 4}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(0,4) = %v, want 4", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

// Property: GeoMean of a single positive value is that value; GeoMean is
// scale-multiplicative.
func TestGeoMeanProperties(t *testing.T) {
	single := func(x float64) bool {
		x = math.Abs(x)
		if x < 1e-300 || x > 1e300 || math.IsNaN(x) {
			return true // exp(log(x)) loses precision at the float64 extremes
		}
		return math.Abs(GeoMean([]float64{x})-x) < 1e-9*x
	}
	if err := quick.Check(single, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram Total equals number of Records.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(us []uint32) bool {
		var h UtilizationHistogram
		for _, u := range us {
			h.Record(u)
		}
		return h.Total() == uint64(len(us))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package energy models the dynamic energy of the memory system (L1-I,
// L1-D, L2 + integrated directory) and the interconnect (routers and links),
// the quantities the paper evaluates with McPAT and DSENT at the 11 nm node
// (Section 4.2).
//
// McPAT/DSENT are not available here, so the model uses per-event energy
// constants chosen to preserve the orderings the paper reports:
//
//   - network links consume more energy than routers at 11 nm (wires scale
//     worse than transistors; Section 5.1.1),
//   - the directory's energy is negligible next to caches and network,
//   - the L2 is word-addressable, so a word access is substantially cheaper
//     than a full line access (Section 4.2),
//   - L1 accesses are cheaper than L2 accesses.
//
// Only relative energies matter for the paper's figures (all results are
// normalized); the constants are documented in DESIGN.md.
package energy

import "lacc/internal/stats"

// Params holds per-event dynamic energies in picojoules.
type Params struct {
	L1IAccess   float64 // per instruction fetch
	L1DRead     float64
	L1DWrite    float64
	L2WordRead  float64 // word-addressable access by a remote sharer
	L2WordWrite float64
	L2LineRead  float64 // full 64-byte line read (fill or write-back)
	L2LineWrite float64
	DirLookup   float64 // directory tag/state read
	DirUpdate   float64 // directory state/classifier update
	RouterFlit  float64 // per flit per router traversed
	LinkFlit    float64 // per flit per link traversed
}

// DefaultParams returns the 11 nm model constants. Ratios follow published
// McPAT/DSENT characterizations: a full line access moves 8x the bits of a
// word access but amortizes decode, giving ~4x the energy; links cost ~2x
// routers per flit at 11 nm.
func DefaultParams() Params {
	return Params{
		L1IAccess:   2.2,
		L1DRead:     4.4,
		L1DWrite:    4.9,
		L2WordRead:  9.5,
		L2WordWrite: 10.5,
		L2LineRead:  38.0,
		L2LineWrite: 42.0,
		DirLookup:   0.7,
		DirUpdate:   0.8,
		RouterFlit:  1.1,
		LinkFlit:    2.3,
	}
}

// Meter counts energy events. The zero value is ready to use.
type Meter struct {
	L1IAccesses  uint64
	L1DReads     uint64
	L1DWrites    uint64
	L2WordReads  uint64
	L2WordWrites uint64
	L2LineReads  uint64
	L2LineWrites uint64
	DirLookups   uint64
	DirUpdates   uint64
	RouterFlits  uint64
	LinkFlits    uint64
}

// Add accumulates o into m.
func (m *Meter) Add(o Meter) {
	m.L1IAccesses += o.L1IAccesses
	m.L1DReads += o.L1DReads
	m.L1DWrites += o.L1DWrites
	m.L2WordReads += o.L2WordReads
	m.L2WordWrites += o.L2WordWrites
	m.L2LineReads += o.L2LineReads
	m.L2LineWrites += o.L2LineWrites
	m.DirLookups += o.DirLookups
	m.DirUpdates += o.DirUpdates
	m.RouterFlits += o.RouterFlits
	m.LinkFlits += o.LinkFlits
}

// Breakdown converts the counted events into the paper's Figure 8 energy
// components using the per-event params.
func (m *Meter) Breakdown(p Params) stats.EnergyBreakdown {
	return stats.EnergyBreakdown{
		L1I: float64(m.L1IAccesses) * p.L1IAccess,
		L1D: float64(m.L1DReads)*p.L1DRead + float64(m.L1DWrites)*p.L1DWrite,
		L2: float64(m.L2WordReads)*p.L2WordRead +
			float64(m.L2WordWrites)*p.L2WordWrite +
			float64(m.L2LineReads)*p.L2LineRead +
			float64(m.L2LineWrites)*p.L2LineWrite,
		Directory: float64(m.DirLookups)*p.DirLookup + float64(m.DirUpdates)*p.DirUpdate,
		Router:    float64(m.RouterFlits) * p.RouterFlit,
		Link:      float64(m.LinkFlits) * p.LinkFlit,
	}
}

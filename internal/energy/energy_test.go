package energy

import (
	"testing"
	"testing/quick"
)

func TestDefaultParamOrderings(t *testing.T) {
	p := DefaultParams()
	// Link > router per flit at 11 nm (Section 5.1.1).
	if p.LinkFlit <= p.RouterFlit {
		t.Error("link energy must exceed router energy at 11 nm")
	}
	// Directory energy negligible versus caches.
	if p.DirLookup >= p.L1DRead || p.DirUpdate >= p.L1DRead {
		t.Error("directory energy must be far below cache energy")
	}
	// Word access substantially cheaper than line access.
	if p.L2WordRead*2 >= p.L2LineRead {
		t.Error("L2 word access not sufficiently cheaper than line access")
	}
	// L1 cheaper than L2.
	if p.L1DRead >= p.L2WordRead {
		t.Error("L1 access must be cheaper than L2 access")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	p := Params{
		L1IAccess: 1, L1DRead: 2, L1DWrite: 3,
		L2WordRead: 4, L2WordWrite: 5, L2LineRead: 6, L2LineWrite: 7,
		DirLookup: 8, DirUpdate: 9, RouterFlit: 10, LinkFlit: 11,
	}
	m := Meter{
		L1IAccesses: 1, L1DReads: 1, L1DWrites: 1,
		L2WordReads: 1, L2WordWrites: 1, L2LineReads: 1, L2LineWrites: 1,
		DirLookups: 1, DirUpdates: 1, RouterFlits: 1, LinkFlits: 1,
	}
	b := m.Breakdown(p)
	if b.L1I != 1 || b.L1D != 5 || b.L2 != 22 || b.Directory != 17 ||
		b.Router != 10 || b.Link != 11 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.Total() != 66 {
		t.Fatalf("total = %v", b.Total())
	}
}

func TestMeterAdd(t *testing.T) {
	a := Meter{L1IAccesses: 1, L2LineReads: 2, LinkFlits: 3}
	b := Meter{L1IAccesses: 10, L2LineReads: 20, LinkFlits: 30, DirUpdates: 1}
	a.Add(b)
	if a.L1IAccesses != 11 || a.L2LineReads != 22 || a.LinkFlits != 33 || a.DirUpdates != 1 {
		t.Fatalf("after add: %+v", a)
	}
}

// Property: Breakdown is linear in the meter counts.
func TestBreakdownLinearity(t *testing.T) {
	p := DefaultParams()
	f := func(n uint8) bool {
		m := Meter{
			L1IAccesses: uint64(n), L1DReads: uint64(n), L1DWrites: uint64(n),
			L2WordReads: uint64(n), L2LineWrites: uint64(n),
			RouterFlits: uint64(n), LinkFlits: uint64(n),
		}
		double := m
		double.Add(m)
		a := m.Breakdown(p).Total()
		b := double.Breakdown(p).Total()
		diff := b - 2*a
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

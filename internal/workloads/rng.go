package workloads

// rng is a small deterministic pseudo-random generator (splitmix64). The
// kernels use it instead of math/rand so that traces are identical across Go
// releases; determinism is part of the package contract.
type rng struct {
	state uint64
}

// newRNG returns a generator seeded from the workload seed and a stream
// discriminator (typically the core id), so per-core sequences are
// independent yet reproducible.
func newRNG(seed, stream uint64) *rng {
	r := &rng{state: seed*0x9e3779b97f4a7c15 + stream + 0x2545f4914f6cdd1d}
	r.next() // decorrelate trivially related seeds
	return r
}

// next returns the next 64-bit value.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("workloads: intn of non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *rng) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

package workloads

import "lacc/internal/trace"

// The two UHPC graph benchmarks modeling social-network analytics:
// connected components and community detection.

func init() {
	register(Workload{
		Name:        "concomp",
		Label:       "CONCOMP",
		Suite:       "UHPC",
		PaperSize:   "Graph with 2^18 nodes",
		DefaultSize: "32K nodes, 1K edges/core/round, 4 rounds",
		build:       buildConcomp,
	})
	register(Workload{
		Name:        "community",
		Label:       "COMMUNITY",
		Suite:       "UHPC",
		PaperSize:   "Graph with 2^16 nodes",
		DefaultSize: "8K nodes, 5 rounds",
		build:       buildCommunity,
	})
}

// buildConcomp is label-propagation connected components over a large
// random graph: each round every core sweeps its edge stripe, reading the
// labels of both endpoints — uniformly scattered single-use reads over a
// label array far larger than the L1 — and writing back the minimum when it
// improves. The paper reports ~50% miss rate and notes that the protocol
// converts capacity misses into an almost equal number of word misses,
// improving completion time without improving cache utilization.
func buildConcomp(s Spec) []trace.GenFunc {
	nodes := s.scaled(32768, 64*s.Cores)
	edgesPerCore := s.scaled(1024, 64)
	const rounds = 4

	r := newRNG(s.Seed, 0xcc0)
	g := newGraph(nodes, 2, r)

	a := newArena()
	labels := a.region(nodes)

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		rr := newRNG(s.Seed, uint64(c)+0xcc1)
		for round := 0; round < rounds; round++ {
			for i := 0; i < edgesPerCore; i++ {
				u := rr.intn(nodes)
				v := g.adjOf[u][rr.intn(len(g.adjOf[u]))]
				e.Read(labels.w(u))
				e.Read(labels.w(v))
				e.Compute(1)
				// Label improvements become rarer as components merge.
				if rr.intn(10) < 5-round {
					e.Write(labels.w(v))
				}
			}
			b.sync(e)
		}
	})
}

// buildCommunity is label-propagation community detection: nodes adopt the
// most frequent label among their neighbors. Unlike concomp the graph has
// locality — most neighbors are drawn from a nearby window, and each node's
// own label is written by a fixed owner core — so the label array shows a
// mix of reusable and ping-pong lines.
func buildCommunity(s Spec) []trace.GenFunc {
	nodes := s.scaled(8192, 16*s.Cores)
	const degree = 5
	const rounds = 5
	const window = 512 // locality window for neighbor selection

	// Host-side graph: 70% of edges stay inside the window.
	hr := newRNG(s.Seed, 0xc03)
	adjOf := make([][]int, nodes)
	for u := 0; u < nodes; u++ {
		adj := make([]int, degree)
		for i := range adj {
			if hr.intn(10) < 7 {
				adj[i] = (u + hr.intn(window) - window/2 + nodes) % nodes
			} else {
				adj[i] = hr.intn(nodes)
			}
		}
		adjOf[u] = adj
	}

	a := newArena()
	labels := a.region(nodes)
	hist := a.perCore(s.Cores, 64) // private label-frequency scratch

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		lo, hi := stripe(nodes, s.Cores, c)
		rr := newRNG(s.Seed, uint64(c)+0xc04)
		for round := 0; round < rounds; round++ {
			for u := lo; u < hi; u++ {
				// Count neighbor labels in the private histogram.
				for i, v := range adjOf[u] {
					e.Read(labels.w(v))
					slot := (v + i) % hist[c].Words()
					e.Read(hist[c].w(slot))
					e.Write(hist[c].w(slot))
					e.Compute(1)
				}
				// Adopt the majority label when it changes; communities
				// settle quickly, so the late rounds are read-only.
				e.Read(labels.w(u))
				if rr.intn(10) < 6-2*round {
					e.Write(labels.w(u))
				}
			}
			b.sync(e)
		}
	})
}

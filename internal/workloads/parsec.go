package workloads

import "lacc/internal/trace"

// The PARSEC kernels (Bienia et al., PACT 2008) used by the paper:
// blackscholes, streamcluster, dedup, bodytrack, fluidanimate and canneal.

func init() {
	register(Workload{
		Name:        "blackscholes",
		Label:       "BLACKSCH.",
		Suite:       "PARSEC",
		PaperSize:   "64K options",
		DefaultSize: "64K options, 3 rounds",
		build:       buildBlackscholes,
	})
	register(Workload{
		Name:        "streamcluster",
		Label:       "STREAMCLUS.",
		Suite:       "PARSEC",
		PaperSize:   "8192 points per block, 1 block",
		DefaultSize: "64 points/core, 16 candidate rounds",
		build:       buildStreamcluster,
	})
	register(Workload{
		Name:        "dedup",
		Label:       "DEDUP",
		Suite:       "PARSEC",
		PaperSize:   "31 MB data",
		DefaultSize: "256 chunks/core, 4K-entry hash table",
		build:       buildDedup,
	})
	register(Workload{
		Name:        "bodytrack",
		Label:       "BODYTRACK",
		Suite:       "PARSEC",
		PaperSize:   "2 frames, 2000 particles",
		DefaultSize: "2 frames, 2000 particles, 1 MB image",
		build:       buildBodytrack,
	})
	register(Workload{
		Name:        "fluidanimate",
		Label:       "FLUIDANIM.",
		Suite:       "PARSEC",
		PaperSize:   "5 frames, 100,000 particles",
		DefaultSize: "3 frames, 64x16 cell grid",
		build:       buildFluidanimate,
	})
	register(Workload{
		Name:        "canneal",
		Label:       "CANNEAL",
		Suite:       "PARSEC",
		PaperSize:   "200,000 elements",
		DefaultSize: "64K elements, 1K swaps/core",
		build:       buildCanneal,
	})
}

// buildBlackscholes is the embarrassingly parallel option pricer: each core
// streams over its stripe of option records — each record padded to its own
// cache line, read once per pricing round — and writes the result into a
// packed output array. The input stream is far larger than the L1, so under
// the baseline every record line is installed, used once and evicted: the
// single-use pattern whose capacity misses the protocol converts to word
// misses from PCT 2 on (Section 5.1.1).
func buildBlackscholes(s Spec) []trace.GenFunc {
	// The per-core stripe must exceed the 32 KB L1 so that record lines are
	// evicted between pricing rounds, as the paper's 64K-option run does.
	n := s.scaled(65536, 16*s.Cores)
	const rounds = 3

	a := newArena()
	options := a.region(n * 8) // one line per option record
	prices := a.region(n)      // packed results, 8 per line

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		lo, hi := stripe(n, s.Cores, c)
		for round := 0; round < rounds; round++ {
			for i := lo; i < hi; i++ {
				e.Read(options.w(i * 8)) // the record's packed parameters
				e.Compute(8)             // CNDF evaluation
				e.Write(prices.w(i))
			}
			b.sync(e)
		}
	})
}

// buildStreamcluster is the k-median clustering kernel. Each candidate
// round every core scans its private point stripe (high-locality streaming)
// against the candidate center (hot shared read) and publishes its gain
// into a cores-interleaved shared gain table — the classic streamcluster
// pattern where a line holds entries of eight different cores and
// ping-pongs between writers with utilization 1. The candidate's owner then
// reads the whole gain table and updates the center, invalidating every
// reader. The paper singles streamcluster out for converting these sharing
// misses into word accesses and collapsing the L2 waiting time.
func buildStreamcluster(s Spec) []trace.GenFunc {
	perCore := s.scaled(48, 8)
	rounds := s.scaled(20, 4)
	const dims = 8      // one line per point
	const subGains = 32 // lower-bound entries per core per round

	a := newArena()
	points := a.perCore(s.Cores, perCore*dims)
	centers := a.region(rounds * dims)   // candidate centers, one line each
	work := a.region(subGains * s.Cores) // cores-interleaved lower-bound table
	totals := a.region(s.Cores)          // per-core gain subtotals, interleaved

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		own := points[c]
		for round := 0; round < rounds; round++ {
			// Distance of every local point to the candidate center.
			for p := 0; p < perCore; p++ {
				for d := 0; d < dims; d++ {
					e.Read(own.w(p*dims + d))
					e.Read(centers.w(round*dims + d))
				}
				e.Compute(4)
			}
			// Publish the per-candidate lower bounds into the interleaved
			// work table: entry (sub, c) shares its line with seven other
			// cores' entries, so each read-modify-write invalidates copies
			// that saw at most a couple of accesses — streamcluster's
			// signature utilization-1 ping-pong (Figure 1).
			for sub := 0; sub < subGains; sub++ {
				slot := sub*s.Cores + c
				e.Read(work.w(slot))
				e.Write(work.w(slot))
				e.Compute(1)
			}
			// Fold the local bounds into the per-core subtotal (also a
			// cores-interleaved ping-pong line, like the original's
			// per-thread partial sums).
			e.Read(totals.w(c))
			e.Write(totals.w(c))
			b.sync(e)
			// The candidate's owner sums the per-core subtotals and
			// opens/closes the facility, writing the center line.
			if round%s.Cores == c {
				readSpan(e, totals, 0, s.Cores)
				writeSpan(e, centers, round*dims, round*dims+dims)
				e.Compute(8)
			}
			b.sync(e)
		}
	})
}

// buildDedup is the deduplication pipeline's hash-join stage: each core
// reads a private input chunk (streaming), computes its fingerprint, then
// probes a shared lock-protected hash table — a pointer chase over
// low-reuse bucket lines — and inserts the chunk on a miss. Bucket lines
// are the migratory shared data; the input stream is single-use private
// data.
func buildDedup(s Spec) []trace.GenFunc {
	chunksPerCore := s.scaled(256, 16)
	const chunkLines = 4
	const tableEntries = 4096
	const nLocks = 32

	a := newArena()
	input := a.perCore(s.Cores, chunksPerCore*chunkLines*8)
	output := a.perCore(s.Cores, 1024) // compressed output streams
	headers := a.region(tableEntries)  // bucket header words
	entries := a.region(tableEntries * 2)

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		r := newRNG(s.Seed, uint64(c)+0xded)
		own := input[c]
		out := output[c]
		written := 0
		for ch := 0; ch < chunksPerCore; ch++ {
			// Stage 1 — chunking: read the payload (4 words per line) and
			// run the rolling-hash anchoring.
			for l := 0; l < chunkLines; l++ {
				base := (ch*chunkLines + l) * 8
				for w := 0; w < 4; w++ {
					e.Read(own.w(base + w))
				}
				e.Compute(3)
			}
			// Stage 2 — deduplicate: probe the shared hash table under the
			// bucket's lock.
			bucket := r.intn(tableEntries)
			lock := uint64(100 + bucket%nLocks)
			unique := r.intn(2) == 0
			e.Lock(lock)
			e.Read(headers.w(bucket))
			chain := r.intn(3)
			for i := 0; i < chain; i++ {
				slot := (bucket + i*17) % tableEntries
				e.Read(entries.w(slot * 2))
				e.Read(entries.w(slot*2 + 1))
			}
			if unique { // unique chunk: insert
				slot := (bucket + chain*17) % tableEntries
				e.Write(entries.w(slot * 2))
				e.Write(entries.w(slot*2 + 1))
				e.Write(headers.w(bucket))
			}
			e.Unlock(lock)
			// Stage 3 — compress unique chunks (compute-heavy) and append
			// to the private output stream; duplicates emit a reference.
			if unique {
				e.Compute(24)
				for w := 0; w < chunkLines; w++ {
					e.Write(out.w((written + w) % out.Words()))
				}
				written = (written + chunkLines) % out.Words()
			} else {
				e.Write(out.w(written % out.Words()))
				written = (written + 1) % out.Words()
			}
			e.Compute(2)
		}
		b.sync(e)
	})
}

// buildBodytrack is the particle-filter body tracker: per frame every core
// evaluates the likelihood of its particle stripe by sampling random lines
// of the shared edge-map image (single-use shared reads — the capacity
// misses the protocol converts to word misses), then refines the best
// candidates by scanning a dense image window (heavy reuse of exactly the
// lines the sampling phase demoted — the phase change that makes bodytrack
// 3.3x worse under the promotion-free Adapt1-way protocol, Figure 14), and
// finally the per-core weights are reduced by core 0 before resampling.
func buildBodytrack(s Spec) []trace.GenFunc {
	particles := s.scaled(2000, 4*s.Cores)
	const frames = 2
	const samplesPerParticle = 32
	const refinePasses = 6
	imageLines := s.scaled(16384, 1024)

	a := newArena()
	image := a.region(imageLines * 8)
	state := a.region(particles * 4) // particle pose vectors
	weights := a.region(particles)

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		lo, hi := stripe(particles, s.Cores, c)
		window := imageLines / s.Cores // dense refinement window per core
		for f := 0; f < frames; f++ {
			r := newRNG(s.Seed+uint64(f), uint64(c)+0xb0d)
			// Likelihood: scattered single-use samples of the edge map.
			for i := lo; i < hi; i++ {
				readSpan(e, state, i*4, i*4+4)
				for k := 0; k < samplesPerParticle; k++ {
					e.Read(image.w(r.intn(imageLines) * 8))
					e.Compute(1)
				}
				e.Write(weights.w(i))
			}
			b.sync(e)
			// Local refinement: dense repeated scans over the core's image
			// window. Under Adapt2-way the window lines are promoted back to
			// private after a few accesses; under Adapt1-way every read
			// stays a remote round trip.
			w0 := c * window
			for pass := 0; pass < refinePasses; pass++ {
				for l := 0; l < window; l++ {
					for k := 0; k < 8; k++ { // dense: every pixel word
						e.Read(image.w((w0+l)*8 + k))
					}
					e.Compute(2)
				}
			}
			b.sync(e)
			// Core 0 normalizes weights and broadcasts resampling choices.
			if c == 0 {
				readSpan(e, weights, 0, particles)
				e.Compute(16)
			}
			b.sync(e)
			// Resample: copy pose vectors of surviving particles (reads of
			// other cores' stripes, writes of the own stripe).
			for i := lo; i < hi; i++ {
				src := r.intn(particles)
				readSpan(e, state, src*4, src*4+4)
				writeSpan(e, state, i*4, i*4+4)
				e.Compute(2)
			}
			b.sync(e)
		}
	})
}

// buildFluidanimate simulates SPH fluid over a grid of cells banded one
// cell-row per core: density and force computation read the particles of
// the cell and its neighbors; rows above/below belong to adjacent cores, so
// every boundary interaction is a producer/consumer exchange guarded by the
// per-cell locks the original uses.
func buildFluidanimate(s Spec) []trace.GenFunc {
	const cols = 16
	rows := s.Cores // one cell-row per core
	frames := s.scaled(3, 1)
	const perCell = 8
	const pWords = 4

	a := newArena()
	cellRows := a.perCore(rows, cols*perCell*pWords)
	cellWords := perCell * pWords

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		own := cellRows[c]
		r := newRNG(s.Seed, uint64(c)+0xf1d)
		for f := 0; f < frames; f++ {
			// Phase 1: rebuild the grid — particles that crossed a cell
			// boundary move between cells; cross-row moves touch the
			// neighbor's row under its lock.
			for col := 0; col < cols; col++ {
				base := col * cellWords
				e.Read(own.w(base)) // cell header
				if r.intn(8) == 0 && c+1 < rows {
					lockID := uint64(280 + c*cols + col)
					e.Lock(lockID)
					e.Read(cellRows[c+1].w(base))
					e.Write(cellRows[c+1].w(base))
					e.Unlock(lockID)
				}
			}
			b.sync(e)
			// Phase 2+3: densities then forces, both reading the cell and
			// its neighbors. Vertical neighbors live in adjacent cores'
			// rows: lock the cell pair in a global order.
			for col := 0; col < cols; col++ {
				base := col * cellWords
				// Intra-cell pair interactions.
				for i := 0; i < perCell; i++ {
					e.Read(own.w(base + i*pWords))
					e.Compute(2)
				}
				// Horizontal neighbor (same core, no lock needed).
				if col+1 < cols {
					nb := (col + 1) * cellWords
					for i := 0; i < perCell; i++ {
						e.Read(own.w(nb + i*pWords))
						e.Compute(1)
					}
				}
				for _, dr := range []int{-1, 1} {
					nr := c + dr
					if nr < 0 || nr >= rows {
						continue
					}
					lockID := uint64(200 + min(c, nr)*cols + col)
					e.Lock(lockID)
					nb := cellRows[nr]
					for i := 0; i < perCell; i++ {
						e.Read(nb.w(base + i*pWords))
					}
					e.Write(own.w(base + 2))
					e.Unlock(lockID)
					e.Compute(2)
				}
			}
			b.sync(e)
			// Phase 4+5: collision handling and advancing the particles —
			// purely private updates with floating-point work.
			for col := 0; col < cols; col++ {
				base := col * cellWords
				for i := 0; i < perCell; i++ {
					e.Read(own.w(base + i*pWords))
					e.Compute(3)
					e.Write(own.w(base + i*pWords))
				}
			}
			b.sync(e)
		}
	})
}

// buildCanneal is simulated annealing over a netlist: each move picks two
// pseudo-random elements, reads their location and the locations of their
// net neighbors — uniformly scattered single-use reads over a multi-
// megabyte shared array, the lowest-locality pattern in the suite — and
// swaps the pair if the move is accepted. The paper's canneal is the
// high-miss-rate benchmark whose energy is dominated by the network; word
// misses pay off almost immediately (PCT 2).
func buildCanneal(s Spec) []trace.GenFunc {
	elements := s.scaled(65536, 4096)
	swapsPerCore := s.scaled(1024, 64)
	const neighbors = 4

	a := newArena()
	netlist := a.region(elements * 8) // one line per element

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		r := newRNG(s.Seed, uint64(c)+0xca1)
		for sw := 0; sw < swapsPerCore; sw++ {
			ei, ej := r.intn(elements), r.intn(elements)
			for _, el := range []int{ei, ej} {
				e.Read(netlist.w(el * 8))   // element location
				e.Read(netlist.w(el*8 + 1)) // net pointer
				for k := 0; k < neighbors; k++ {
					nb := r.intn(elements)
					e.Read(netlist.w(nb * 8))
				}
			}
			e.Compute(4) // delta routing cost
			if r.intn(10) < 3 {
				e.Write(netlist.w(ei * 8))
				e.Write(netlist.w(ej * 8))
			}
		}
		b.sync(e)
	})
}

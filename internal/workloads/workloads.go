// Package workloads implements the 21 parallel benchmarks of the paper's
// Table 2 as deterministic trace-generating kernels. Each kernel is a real
// algorithm written against the trace.Emitter API: it allocates data
// structures in the simulated address space, runs the computation in SPMD
// style (one generator per core) and emits the resulting reads, writes,
// compute gaps and synchronization operations.
//
// The paper runs SPLASH-2, PARSEC, Parallel-MI-Bench, two UHPC graph
// benchmarks and three hand-written kernels on the Graphite simulator. The
// originals are pthread binaries; here each benchmark is re-implemented so
// that it reproduces the access and sharing pattern the coherence protocol
// reacts to: streaming vs reuse (spatio-temporal locality per cache line),
// private vs shared data, degree of sharing, invalidation ping-pong,
// migratory objects and synchronization structure. Problem sizes are scaled
// down from Table 2 so a full PCT sweep runs on a laptop; the Scale knob
// restores larger sizes.
//
// All kernels are deterministic: given the same Spec they emit exactly the
// same per-core streams, so simulations are reproducible bit-for-bit.
package workloads

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"lacc/internal/trace"
)

// Spec parameterizes a workload build.
type Spec struct {
	// Cores is the number of generator streams to build (one per core).
	Cores int
	// Scale multiplies the default (reduced) problem size; 1.0 is the
	// default, larger values approach the paper's Table 2 sizes.
	Scale float64
	// Seed perturbs the deterministic pseudo-random choices of kernels that
	// use randomness (e.g. canneal's swap selection). Zero is a valid seed.
	Seed uint64
}

// normalize applies defaults.
func (s Spec) normalize() Spec {
	if s.Cores <= 0 {
		s.Cores = 64
	}
	if s.Scale <= 0 {
		s.Scale = 1
	}
	return s
}

// scaled returns max(lo, round(base*Scale)).
func (s Spec) scaled(base, lo int) int {
	n := int(float64(base)*s.Scale + 0.5)
	if n < lo {
		n = lo
	}
	return n
}

// Workload is one registered benchmark.
type Workload struct {
	// Name is the canonical lower-case identifier (e.g. "streamcluster").
	Name string
	// Label is the display label used in the paper's figures
	// (e.g. "STREAMCLUS.").
	Label string
	// Suite is the benchmark suite of Table 2.
	Suite string
	// PaperSize is the problem size the paper used (Table 2), for reference.
	PaperSize string
	// DefaultSize describes the reduced problem size at Scale=1.
	DefaultSize string

	build func(Spec) []trace.GenFunc
}

// Build returns one trace generator per core for the given spec.
func (w Workload) Build(s Spec) []trace.GenFunc {
	return w.build(s.normalize())
}

// Streams builds the workload and starts one lazily generated stream per
// core.
func (w Workload) Streams(s Spec) []trace.Stream {
	gens := w.Build(s)
	streams := make([]trace.Stream, len(gens))
	for i, g := range gens {
		streams[i] = trace.New(g)
	}
	return streams
}

// corpusKey identifies one materialized trace: a workload's output is a
// pure function of (name, cores, scale, seed).
type corpusKey struct {
	name  string
	cores int
	scale float64
	seed  uint64
}

// corpusEntry is one cache slot. The once gate makes concurrent requesters
// of the same key share a single build; src is valid once once completes.
// done is closed when src is final, so FlushCorpora can distinguish
// completed builds (whose spill files it owns) from in-flight ones (whose
// handles the builder's caller is about to use) without blocking them.
type corpusEntry struct {
	once sync.Once
	done chan struct{}
	src  trace.Source
}

// corpusCache memoizes materialized traces per process, so a sweep
// generates each (workload, spec) trace exactly once no matter how many
// configuration variants replay it.
var corpusCache = struct {
	sync.Mutex
	m map[corpusKey]*corpusEntry
}{m: map[corpusKey]*corpusEntry{}}

// corpusBuilds counts generator executions through the corpus path — the
// experiment layer's exactly-once guarantee is asserted against it.
var corpusBuilds atomic.Uint64

// CorpusBuilds returns the number of corpus builds this process performed.
func CorpusBuilds() uint64 { return corpusBuilds.Load() }

// spillPolicy is the optional spill-to-disk configuration (see
// SetCorpusSpill).
var spillPolicy struct {
	sync.Mutex
	dir string
	min uint64
}

// spillSeq makes every spill filename unique within the process.
var spillSeq atomic.Uint64

// SetCorpusSpill enables spilling built corpora whose total access count
// reaches minAccesses to files under dir (in the binary trace format):
// large-Scale sweeps then replay from disk with one chunk buffer per core
// instead of the whole trace resident. With spilling active, builds
// stream straight to disk — peak build memory is one core's sequence, not
// the whole trace — and only corpora that turn out smaller than the
// threshold are re-materialized in memory. An empty dir disables spilling
// (the default). Affects corpora built after the call. The directory is
// created if absent; a directory that cannot be created or written falls
// back to in-memory builds, so enable spilling only with a usable dir (the
// returned error reports creation failures).
func SetCorpusSpill(dir string, minAccesses uint64) error {
	var err error
	if dir != "" {
		err = os.MkdirAll(dir, 0o755)
	}
	spillPolicy.Lock()
	spillPolicy.dir, spillPolicy.min = dir, minAccesses
	spillPolicy.Unlock()
	return err
}

// Corpus returns the materialized trace for this workload at s, building
// it at most once per process per (name, cores, scale, seed). The result
// is safe for concurrent replay.
func (w Workload) Corpus(s Spec) trace.Source {
	s = s.normalize()
	key := corpusKey{name: w.Name, cores: s.Cores, scale: s.Scale, seed: s.Seed}
	corpusCache.Lock()
	e := corpusCache.m[key]
	if e == nil {
		e = &corpusEntry{done: make(chan struct{})}
		corpusCache.m[key] = e
	}
	corpusCache.Unlock()
	e.once.Do(func() {
		defer close(e.done)
		corpusBuilds.Add(1)
		spillPolicy.Lock()
		dir, min := spillPolicy.dir, spillPolicy.min
		spillPolicy.Unlock()
		if dir == "" {
			e.src = trace.BuildCorpus(w.Build(s))
			return
		}
		// Spilling enabled: stream the build to disk so the whole trace is
		// never resident — this is the only way a trace larger than memory
		// can be built at all. The filename carries the pid (concurrent
		// processes sharing a spill dir never truncate each other's files)
		// and a build sequence number (a rebuild after FlushCorpora never
		// truncates a flushed-but-still-replaying predecessor).
		name := fmt.Sprintf("%s-c%d-s%g-r%d-p%d-n%d.lacctrc",
			w.Name, s.Cores, s.Scale, s.Seed, os.Getpid(), spillSeq.Add(1))
		sc, err := trace.BuildSpilledCorpus(w.Build(s), filepath.Join(dir, name))
		if err != nil {
			// Spill failure (unwritable dir, full disk): correctness first,
			// fall back to the in-memory build.
			e.src = trace.BuildCorpus(w.Build(s))
			return
		}
		if sc.Total() < min {
			// Below the threshold: read the just-written file back into an
			// arena (cheaper than re-running the generators) for RAM-speed
			// replay, then drop the file.
			e.src = sc
			if f, err := os.Open(sc.Path()); err == nil {
				seqs, rerr := trace.ReadFile(f)
				f.Close()
				if rerr == nil {
					e.src = trace.CorpusFromSlices(seqs)
					sc.Remove()
				}
			}
			return
		}
		e.src = sc
	})
	return e.src
}

// FlushCorpora drops every cached corpus, deleting the spill files of
// completed builds, so long-lived processes can bound trace memory
// between experiment batches. A build in flight keeps its file — its
// caller is about to replay it — and merely becomes untracked: the file
// lives until the process exits rather than being yanked mid-use.
func FlushCorpora() {
	corpusCache.Lock()
	old := corpusCache.m
	corpusCache.m = map[corpusKey]*corpusEntry{}
	corpusCache.Unlock()
	for _, e := range old {
		select {
		case <-e.done:
			if sc, ok := e.src.(*trace.SpilledCorpus); ok {
				sc.Remove()
			}
		default:
			// In flight (or never requested): leave it to its builder.
		}
	}
}

// registry holds all workloads keyed by Name.
var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate registration of %q", w.Name))
	}
	registry[w.Name] = w
}

// All returns every registered workload in the paper's Table 2 order
// (suite by suite, then the order within the suite).
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, name := range Names() {
		out = append(out, registry[name])
	}
	return out
}

// tableOrder is the paper's Table 2 ordering.
var tableOrder = []string{
	// SPLASH-2
	"radix", "lu-nc", "barnes", "ocean-nc", "water-sp", "raytrace",
	// PARSEC
	"blackscholes", "streamcluster", "dedup", "bodytrack", "fluidanimate", "canneal",
	// Parallel MI Bench
	"dijkstra-ss", "dijkstra-ap", "patricia", "susan",
	// UHPC
	"concomp", "community",
	// Others
	"tsp", "dfs", "matmul",
}

// Names returns the canonical workload names in Table 2 order, followed by
// any extra registrations in lexical order.
func Names() []string {
	seen := make(map[string]bool, len(registry))
	out := make([]string, 0, len(registry))
	for _, n := range tableOrder {
		if _, ok := registry[n]; ok {
			out = append(out, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range registry {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// ByName looks a workload up by its canonical name.
func ByName(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// MustByName is ByName but panics on unknown names (for internal tables).
func MustByName(name string) Workload {
	w, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("workloads: unknown workload %q", name))
	}
	return w
}

// Package workloads implements the 21 parallel benchmarks of the paper's
// Table 2 as deterministic trace-generating kernels. Each kernel is a real
// algorithm written against the trace.Emitter API: it allocates data
// structures in the simulated address space, runs the computation in SPMD
// style (one generator per core) and emits the resulting reads, writes,
// compute gaps and synchronization operations.
//
// The paper runs SPLASH-2, PARSEC, Parallel-MI-Bench, two UHPC graph
// benchmarks and three hand-written kernels on the Graphite simulator. The
// originals are pthread binaries; here each benchmark is re-implemented so
// that it reproduces the access and sharing pattern the coherence protocol
// reacts to: streaming vs reuse (spatio-temporal locality per cache line),
// private vs shared data, degree of sharing, invalidation ping-pong,
// migratory objects and synchronization structure. Problem sizes are scaled
// down from Table 2 so a full PCT sweep runs on a laptop; the Scale knob
// restores larger sizes.
//
// All kernels are deterministic: given the same Spec they emit exactly the
// same per-core streams, so simulations are reproducible bit-for-bit.
package workloads

import (
	"fmt"
	"sort"

	"lacc/internal/trace"
)

// Spec parameterizes a workload build.
type Spec struct {
	// Cores is the number of generator streams to build (one per core).
	Cores int
	// Scale multiplies the default (reduced) problem size; 1.0 is the
	// default, larger values approach the paper's Table 2 sizes.
	Scale float64
	// Seed perturbs the deterministic pseudo-random choices of kernels that
	// use randomness (e.g. canneal's swap selection). Zero is a valid seed.
	Seed uint64
}

// normalize applies defaults.
func (s Spec) normalize() Spec {
	if s.Cores <= 0 {
		s.Cores = 64
	}
	if s.Scale <= 0 {
		s.Scale = 1
	}
	return s
}

// scaled returns max(lo, round(base*Scale)).
func (s Spec) scaled(base, lo int) int {
	n := int(float64(base)*s.Scale + 0.5)
	if n < lo {
		n = lo
	}
	return n
}

// Workload is one registered benchmark.
type Workload struct {
	// Name is the canonical lower-case identifier (e.g. "streamcluster").
	Name string
	// Label is the display label used in the paper's figures
	// (e.g. "STREAMCLUS.").
	Label string
	// Suite is the benchmark suite of Table 2.
	Suite string
	// PaperSize is the problem size the paper used (Table 2), for reference.
	PaperSize string
	// DefaultSize describes the reduced problem size at Scale=1.
	DefaultSize string

	build func(Spec) []trace.GenFunc
}

// Build returns one trace generator per core for the given spec.
func (w Workload) Build(s Spec) []trace.GenFunc {
	return w.build(s.normalize())
}

// Streams builds the workload and starts one lazily generated stream per
// core.
func (w Workload) Streams(s Spec) []trace.Stream {
	gens := w.Build(s)
	streams := make([]trace.Stream, len(gens))
	for i, g := range gens {
		streams[i] = trace.New(g)
	}
	return streams
}

// registry holds all workloads keyed by Name.
var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate registration of %q", w.Name))
	}
	registry[w.Name] = w
}

// All returns every registered workload in the paper's Table 2 order
// (suite by suite, then the order within the suite).
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, name := range Names() {
		out = append(out, registry[name])
	}
	return out
}

// tableOrder is the paper's Table 2 ordering.
var tableOrder = []string{
	// SPLASH-2
	"radix", "lu-nc", "barnes", "ocean-nc", "water-sp", "raytrace",
	// PARSEC
	"blackscholes", "streamcluster", "dedup", "bodytrack", "fluidanimate", "canneal",
	// Parallel MI Bench
	"dijkstra-ss", "dijkstra-ap", "patricia", "susan",
	// UHPC
	"concomp", "community",
	// Others
	"tsp", "dfs", "matmul",
}

// Names returns the canonical workload names in Table 2 order, followed by
// any extra registrations in lexical order.
func Names() []string {
	seen := make(map[string]bool, len(registry))
	out := make([]string, 0, len(registry))
	for _, n := range tableOrder {
		if _, ok := registry[n]; ok {
			out = append(out, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range registry {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// ByName looks a workload up by its canonical name.
func ByName(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// MustByName is ByName but panics on unknown names (for internal tables).
func MustByName(name string) Workload {
	w, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("workloads: unknown workload %q", name))
	}
	return w
}

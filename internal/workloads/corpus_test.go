package workloads

import (
	"sync"
	"testing"

	"lacc/internal/trace"
)

// TestCorpusReplayMatchesLiveStreams is the workload-level mode-equivalence
// guarantee: for every registered benchmark, replaying the materialized
// corpus must deliver exactly the access sequence the live goroutine/channel
// pipeline delivers, core by core. The experiment layer simulates from
// corpora while the public API simulates live, so this test is what keeps
// the two worlds bit-identical.
func TestCorpusReplayMatchesLiveStreams(t *testing.T) {
	spec := Spec{Cores: 4, Scale: 0.05, Seed: 3}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			corpus := w.Corpus(spec)
			if corpus.Cores() != spec.Cores {
				t.Fatalf("corpus has %d cores, want %d", corpus.Cores(), spec.Cores)
			}
			live := w.Streams(spec)
			replay := corpus.Streams()
			for c := 0; c < spec.Cores; c++ {
				want := drain(t, live[c])
				got := drain(t, replay[c])
				if len(got) != len(want) {
					t.Fatalf("core %d: corpus %d accesses, live %d", c, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("core %d access %d: corpus %+v, live %+v", c, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestCorpusBuiltExactlyOnce pins the cache contract: concurrent and
// repeated Corpus calls for one (name, cores, scale, seed) run the
// generators exactly once, and a different key builds separately.
func TestCorpusBuiltExactlyOnce(t *testing.T) {
	w := MustByName("streamcluster")
	spec := Spec{Cores: 4, Scale: 0.04, Seed: 991} // unique key for this test
	before := CorpusBuilds()

	var wg sync.WaitGroup
	srcs := make([]trace.Source, 8)
	for i := range srcs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			srcs[i] = w.Corpus(spec)
		}()
	}
	wg.Wait()
	if got := CorpusBuilds() - before; got != 1 {
		t.Fatalf("8 concurrent Corpus calls performed %d builds, want 1", got)
	}
	for i := 1; i < len(srcs); i++ {
		if srcs[i] != srcs[0] {
			t.Fatalf("Corpus call %d returned a different source", i)
		}
	}
	if w.Corpus(spec) != srcs[0] {
		t.Fatal("repeat Corpus call rebuilt the trace")
	}
	other := spec
	other.Seed++
	if w.Corpus(other) == srcs[0] {
		t.Fatal("different seed shared a corpus")
	}
	if got := CorpusBuilds() - before; got != 2 {
		t.Fatalf("two distinct keys performed %d builds, want 2", got)
	}
}

// TestCorpusSpillPolicy checks the large-trace spill path: above the
// threshold the cache hands out an on-disk source whose replay matches the
// live streams; below it the corpus stays in memory.
func TestCorpusSpillPolicy(t *testing.T) {
	dir := t.TempDir()
	if err := SetCorpusSpill(dir, 1); err != nil { // spill everything
		t.Fatal(err)
	}
	defer SetCorpusSpill("", 0)

	w := MustByName("matmul")
	spec := Spec{Cores: 4, Scale: 0.03, Seed: 877} // unique key
	src := w.Corpus(spec)
	sc, ok := src.(*trace.SpilledCorpus)
	if !ok {
		t.Fatalf("corpus not spilled: %T", src)
	}
	live := w.Streams(spec)
	replay := sc.Streams()
	for c := 0; c < spec.Cores; c++ {
		want := drain(t, live[c])
		got := drain(t, replay[c])
		if len(got) != len(want) {
			t.Fatalf("core %d: spilled %d accesses, live %d", c, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("core %d access %d: spilled %+v, live %+v", c, i, got[i], want[i])
			}
		}
	}

	SetCorpusSpill(dir, 1<<40) // threshold never reached
	spec.Seed++
	if _, spilled := w.Corpus(spec).(*trace.SpilledCorpus); spilled {
		t.Fatal("small corpus spilled below the threshold")
	}
}

// TestFlushDuringBuildKeepsSpillFile pins the flush-vs-inflight contract:
// a FlushCorpora racing an in-flight spilled build must not delete the
// file out from under the builder — the returned source must still
// replay. (Deterministically exercised by flushing between the claim and
// the build via a second goroutine hammering FlushCorpora.)
func TestFlushDuringBuildKeepsSpillFile(t *testing.T) {
	dir := t.TempDir()
	SetCorpusSpill(dir, 1)
	defer SetCorpusSpill("", 0)

	w := MustByName("susan")
	stop := make(chan struct{})
	donestop := make(chan struct{})
	go func() {
		defer close(donestop)
		for {
			select {
			case <-stop:
				return
			default:
				FlushCorpora()
			}
		}
	}()
	for i := 0; i < 20; i++ {
		spec := Spec{Cores: 2, Scale: 0.02, Seed: 5000 + uint64(i)}
		src := w.Corpus(spec)
		// Whatever the race outcome, the handle must replay fully.
		for _, s := range src.Streams() {
			for {
				if _, ok := s.Next(); !ok {
					break
				}
			}
			s.Close()
		}
	}
	close(stop)
	<-donestop
}

// TestFlushCorpora checks that flushing forces a rebuild.
func TestFlushCorpora(t *testing.T) {
	w := MustByName("dfs")
	spec := Spec{Cores: 4, Scale: 0.05, Seed: 1234} // unique key
	first := w.Corpus(spec)
	before := CorpusBuilds()
	FlushCorpora()
	second := w.Corpus(spec)
	if second == first {
		t.Fatal("flush did not drop the cached corpus")
	}
	if got := CorpusBuilds() - before; got != 1 {
		t.Fatalf("rebuild after flush performed %d builds, want 1", got)
	}
}

package workloads

import (
	"testing"

	"lacc/internal/mem"
	"lacc/internal/trace"
)

// testSpec is a small, fast spec used across the tests.
func testSpec() Spec { return Spec{Cores: 8, Scale: 0.1, Seed: 7} }

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != len(tableOrder) {
		t.Fatalf("registry has %d workloads, Table 2 lists %d", len(names), len(tableOrder))
	}
	for i, want := range tableOrder {
		if names[i] != want {
			t.Fatalf("Names()[%d] = %q, want %q (Table 2 order)", i, names[i], want)
		}
	}
	for _, w := range All() {
		if w.Label == "" || w.Suite == "" || w.PaperSize == "" || w.DefaultSize == "" {
			t.Errorf("%s: incomplete metadata %+v", w.Name, w)
		}
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("streamcluster")
	if !ok || w.Name != "streamcluster" {
		t.Fatalf("ByName(streamcluster) = %v, %v", w, ok)
	}
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName did not panic on unknown name")
		}
	}()
	MustByName("no-such-benchmark")
}

// drain consumes a stream fully, returning its accesses.
func drain(t *testing.T, s trace.Stream) []mem.Access {
	t.Helper()
	var out []mem.Access
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	s.Close()
	return out
}

// TestEveryWorkloadEmits checks, for every registered workload, that every
// core emits a non-empty stream of well-formed operations: data addresses
// inside the data segment, matched lock/unlock pairs, and identical barrier
// sequences across cores.
func TestEveryWorkloadEmits(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			spec := testSpec()
			gens := w.Build(spec)
			if len(gens) != spec.Cores {
				t.Fatalf("Build returned %d generators for %d cores", len(gens), spec.Cores)
			}
			var barrierSeqs [][]mem.Addr
			for c, g := range gens {
				accs := drain(t, trace.New(g))
				if len(accs) == 0 {
					t.Fatalf("core %d emitted no accesses", c)
				}
				held := map[mem.Addr]bool{}
				var barSeq []mem.Addr
				data := 0
				for i, a := range accs {
					switch a.Kind {
					case mem.Read, mem.Write:
						data++
						if a.Addr < dataBase {
							t.Fatalf("core %d access %d: address %#x below data segment", c, i, a.Addr)
						}
					case mem.Barrier:
						barSeq = append(barSeq, a.Addr)
					case mem.Lock:
						if held[a.Addr] {
							t.Fatalf("core %d: recursive lock %d", c, a.Addr)
						}
						held[a.Addr] = true
					case mem.Unlock:
						if !held[a.Addr] {
							t.Fatalf("core %d: unlock of lock %d not held", c, a.Addr)
						}
						delete(held, a.Addr)
					default:
						t.Fatalf("core %d access %d: unknown kind %v", c, i, a.Kind)
					}
				}
				if len(held) != 0 {
					t.Fatalf("core %d finished holding %d locks", c, len(held))
				}
				if data == 0 {
					t.Fatalf("core %d emitted no data accesses", c)
				}
				barrierSeqs = append(barrierSeqs, barSeq)
			}
			for c := 1; c < len(barrierSeqs); c++ {
				if len(barrierSeqs[c]) != len(barrierSeqs[0]) {
					t.Fatalf("core %d emits %d barriers, core 0 emits %d",
						c, len(barrierSeqs[c]), len(barrierSeqs[0]))
				}
				for i := range barrierSeqs[c] {
					if barrierSeqs[c][i] != barrierSeqs[0][i] {
						t.Fatalf("core %d barrier %d id %d != core 0 id %d",
							c, i, barrierSeqs[c][i], barrierSeqs[0][i])
					}
				}
			}
		})
	}
}

// TestDeterminism re-builds each workload twice with identical specs and
// requires bit-identical streams.
func TestDeterminism(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			spec := testSpec()
			g1 := w.Build(spec)
			g2 := w.Build(spec)
			for c := range g1 {
				a1 := drain(t, trace.New(g1[c]))
				a2 := drain(t, trace.New(g2[c]))
				if len(a1) != len(a2) {
					t.Fatalf("core %d: %d vs %d accesses across builds", c, len(a1), len(a2))
				}
				for i := range a1 {
					if a1[i] != a2[i] {
						t.Fatalf("core %d access %d differs: %+v vs %+v", c, i, a1[i], a2[i])
					}
				}
			}
		})
	}
}

// TestSeedChangesRandomizedWorkloads checks that the Seed knob actually
// perturbs kernels that advertise randomness.
func TestSeedChangesRandomizedWorkloads(t *testing.T) {
	for _, name := range []string{"canneal", "raytrace", "dedup"} {
		w := MustByName(name)
		a := drain(t, trace.New(w.Build(Spec{Cores: 4, Scale: 0.1, Seed: 1})[0]))
		b := drain(t, trace.New(w.Build(Spec{Cores: 4, Scale: 0.1, Seed: 2})[0]))
		same := len(a) == len(b)
		if same {
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produced identical traces", name)
		}
	}
}

// TestScaleGrowsProblem checks the Scale knob increases trace volume.
func TestScaleGrowsProblem(t *testing.T) {
	w := MustByName("blackscholes")
	small := drain(t, trace.New(w.Build(Spec{Cores: 4, Scale: 0.1, Seed: 0})[0]))
	large := drain(t, trace.New(w.Build(Spec{Cores: 4, Scale: 0.5, Seed: 0})[0]))
	if len(large) <= len(small) {
		t.Fatalf("scale 0.5 trace (%d) not larger than scale 0.1 trace (%d)",
			len(large), len(small))
	}
}

func TestSpecNormalize(t *testing.T) {
	n := Spec{}.normalize()
	if n.Cores != 64 || n.Scale != 1 {
		t.Fatalf("normalize() = %+v, want 64 cores scale 1", n)
	}
	if got := (Spec{Scale: 1}).scaled(100, 8); got != 100 {
		t.Fatalf("scaled(100) at scale 1 = %d", got)
	}
	if got := (Spec{Scale: 0.01}.normalize()).scaled(100, 8); got != 8 {
		t.Fatalf("scaled floor = %d, want 8", got)
	}
}

func TestStripeCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 100} {
		for _, cores := range []int{1, 3, 8, 64} {
			covered := 0
			prevHi := 0
			for c := 0; c < cores; c++ {
				lo, hi := stripe(n, cores, c)
				if lo != prevHi {
					t.Fatalf("stripe(%d,%d,%d) lo=%d, want %d", n, cores, c, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("stripe(%d,%d,%d) inverted [%d,%d)", n, cores, c, lo, hi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("stripe over n=%d cores=%d covered %d ending %d", n, cores, covered, prevHi)
			}
		}
	}
}

func TestArenaRegionsDisjointAndPageAligned(t *testing.T) {
	a := newArena()
	r1 := a.region(10)
	r2 := a.region(4096)
	r3 := a.region(1)
	regions := []region{r1, r2, r3}
	for i, r := range regions {
		if r.base%mem.PageBytes != 0 {
			t.Fatalf("region %d base %#x not page aligned", i, r.base)
		}
		for j, o := range regions {
			if i == j {
				continue
			}
			if r.contains(o.base) || o.contains(r.base) {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
	if r1.Lines() != 2 || r2.Lines() != 512 {
		t.Fatalf("Lines() = %d, %d; want 2, 512", r1.Lines(), r2.Lines())
	}
}

func TestRegionBoundsChecks(t *testing.T) {
	a := newArena()
	r := a.region(8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds word access did not panic")
		}
	}()
	r.w(8)
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a, b := newRNG(1, 2), newRNG(1, 2)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("identical seeds diverged")
		}
	}
	c := newRNG(1, 3)
	diff := false
	for i := 0; i < 10; i++ {
		if a.next() != c.next() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different streams produced identical outputs")
	}
	r := newRNG(9, 9)
	for i := 0; i < 1000; i++ {
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
		if f := r.float(); f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
	}
	p := r.perm(16)
	seen := make([]bool, 16)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("perm repeated %d", v)
		}
		seen[v] = true
	}
}

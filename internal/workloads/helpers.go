package workloads

import "lacc/internal/trace"

// stripe returns the half-open range [lo, hi) of the items owned by core c
// when n items are block-partitioned over `cores` cores. Remainders go to
// the leading cores, matching how the pthread originals split loops.
func stripe(n, cores, c int) (lo, hi int) {
	per := n / cores
	rem := n % cores
	lo = c*per + min(c, rem)
	hi = lo + per
	if c < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// readSpan emits reads of words [lo, hi) of r in order.
func readSpan(e *trace.Emitter, r region, lo, hi int) {
	for i := lo; i < hi; i++ {
		e.Read(r.w(i))
	}
}

// writeSpan emits writes of words [lo, hi) of r in order.
func writeSpan(e *trace.Emitter, r region, lo, hi int) {
	for i := lo; i < hi; i++ {
		e.Write(r.w(i))
	}
}

// barriers hands out the globally agreed barrier identifier sequence. Every
// core creates its own barriers value and calls next at the same program
// points, so all cores emit identical identifier sequences, which the
// simulator checks.
type barriers struct {
	next uint64
}

func (b *barriers) sync(e *trace.Emitter) {
	e.Barrier(b.next)
	b.next++
}

// spmd builds one generator per core from a kernel body parameterized by
// core id. Each body receives its own barriers sequence (identical across
// cores) so kernels just call b.sync(e) at collective points.
func spmd(cores int, body func(e *trace.Emitter, core int, b *barriers)) []trace.GenFunc {
	gens := make([]trace.GenFunc, cores)
	for c := 0; c < cores; c++ {
		c := c
		gens[c] = func(e *trace.Emitter) {
			var b barriers
			body(e, c, &b)
		}
	}
	return gens
}

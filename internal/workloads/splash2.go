package workloads

import "lacc/internal/trace"

// The SPLASH-2 kernels (Woo et al., ISCA 1995) used by the paper: radix,
// lu-nc, barnes, ocean-nc, water-sp and raytrace. Each is re-implemented as
// a trace-generating SPMD kernel that performs the benchmark's actual
// algorithmic steps over the simulated address space.

func init() {
	register(Workload{
		Name:        "radix",
		Label:       "RADIX",
		Suite:       "SPLASH-2",
		PaperSize:   "1M Integers, radix 1024",
		DefaultSize: "16K integers, radix 32, 2 passes",
		build:       buildRadix,
	})
	register(Workload{
		Name:        "lu-nc",
		Label:       "LU-NC",
		Suite:       "SPLASH-2",
		PaperSize:   "512x512 matrix, 16x16 blocks",
		DefaultSize: "96x96 matrix, 8x8 blocks",
		build:       buildLU,
	})
	register(Workload{
		Name:        "barnes",
		Label:       "BARNES",
		Suite:       "SPLASH-2",
		PaperSize:   "16K particles",
		DefaultSize: "2K particles, 2 timesteps",
		build:       buildBarnes,
	})
	register(Workload{
		Name:        "ocean-nc",
		Label:       "OCEAN-NC",
		Suite:       "SPLASH-2",
		PaperSize:   "258x258 ocean",
		DefaultSize: "192x96 grid, 5 sweeps",
		build:       buildOcean,
	})
	register(Workload{
		Name:        "water-sp",
		Label:       "WATER-SP",
		Suite:       "SPLASH-2",
		PaperSize:   "512 molecules",
		DefaultSize: "512 molecules, 16 timesteps",
		build:       buildWaterSp,
	})
	register(Workload{
		Name:        "raytrace",
		Label:       "RAYTRACE",
		Suite:       "SPLASH-2",
		PaperSize:   "car",
		DefaultSize: "16K rays, 4K-node BVH",
		build:       buildRaytrace,
	})
}

// buildRadix is the SPLASH-2 parallel radix sort: per digit pass every core
// histograms its private key chunk, the per-core histograms are combined
// into global scatter offsets (all-to-all reads of the shared histogram
// array), and the keys are scattered to a destination array at positions
// owned by no particular core — the scattered shared writes with single-use
// lines are radix's signature coherence load.
func buildRadix(s Spec) []trace.GenFunc {
	const radix = 32
	n := s.scaled(16384, 4*s.Cores)
	passes := 2

	// Host-side sort to derive the exact scatter destinations per pass.
	keys := make([]int, n)
	r := newRNG(s.Seed, 0xad1)
	for i := range keys {
		keys[i] = r.intn(radix * radix)
	}
	// dest[p][i] is where key index i of pass p's input lands in the output;
	// digits[p][i] is its bucket, used for the histogram access pattern.
	dest := make([][]int, passes)
	digits := make([][]int, passes)
	cur := append([]int(nil), keys...)
	for p := 0; p < passes; p++ {
		digit := func(k int) int {
			d := k
			for q := 0; q < p; q++ {
				d /= radix
			}
			return d % radix
		}
		var count [radix]int
		for _, k := range cur {
			count[digit(k)]++
		}
		var start [radix]int
		for d := 1; d < radix; d++ {
			start[d] = start[d-1] + count[d-1]
		}
		dest[p] = make([]int, n)
		digits[p] = make([]int, n)
		next := start
		out := make([]int, n)
		for i, k := range cur {
			d := digit(k)
			pos := next[d]
			next[d]++
			dest[p][i] = pos
			digits[p][i] = d
			out[pos] = k
		}
		cur = out
	}

	a := newArena()
	src := a.region(n) // pass input keys
	dst := a.region(n) // pass output keys
	hist := a.region(s.Cores * radix)

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		lo, hi := stripe(n, s.Cores, c)
		for p := 0; p < passes; p++ {
			in, out := src, dst
			if p%2 == 1 {
				in, out = dst, src
			}
			// Phase 1: local histogram over the private key chunk.
			for i := lo; i < hi; i++ {
				e.Read(in.w(i))
				slot := c*radix + digits[p][i]
				e.Read(hist.w(slot))
				e.Write(hist.w(slot))
				e.Compute(1)
			}
			b.sync(e)
			// Phase 2: global prefix — every core reads all histograms.
			for d := 0; d < radix; d++ {
				for other := 0; other < s.Cores; other++ {
					e.Read(hist.w(other*radix + d))
				}
				e.Compute(1)
			}
			b.sync(e)
			// Phase 3: permute keys to their scatter destinations.
			for i := lo; i < hi; i++ {
				e.Read(in.w(i))
				e.Write(out.w(dest[p][i]))
				e.Compute(1)
			}
			b.sync(e)
		}
	})
}

// buildLU is the SPLASH-2 non-contiguous blocked LU factorization: blocks
// are separately allocated (hence "non-contiguous") and owned round-robin.
// Each step factors the diagonal block, updates the pivot row and column
// (owners read the freshly written diagonal block — producer/consumer
// sharing), then performs the trailing-submatrix update in which every
// owner reads two remote pivot blocks and updates its own block with good
// temporal locality.
func buildLU(s Spec) []trace.GenFunc {
	const bdim = 8 // block is bdim x bdim words
	nblk := s.scaled(12, 4)
	blockWords := bdim * bdim

	a := newArena()
	blocks := make([]region, nblk*nblk)
	for i := range blocks {
		blocks[i] = a.region(blockWords)
	}
	owner := func(bi, bj int) int { return (bi*nblk + bj) % s.Cores }
	blk := func(bi, bj int) region { return blocks[bi*nblk+bj] }

	// gemmUpdate emits C -= A*B over bdim x bdim blocks: for each output
	// element, a row of A and a column of B are read and C is updated.
	gemmUpdate := func(e *trace.Emitter, A, B, C region) {
		for i := 0; i < bdim; i++ {
			for j := 0; j < bdim; j++ {
				for k := 0; k < bdim; k++ {
					e.Read(A.w(i*bdim + k))
					e.Read(B.w(k*bdim + j))
				}
				e.Read(C.w(i*bdim + j))
				e.Write(C.w(i*bdim + j))
				e.Compute(2)
			}
		}
	}

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		for k := 0; k < nblk; k++ {
			// Factor the diagonal block (its owner only).
			if owner(k, k) == c {
				d := blk(k, k)
				for i := 0; i < bdim; i++ {
					for j := 0; j < bdim; j++ {
						e.Read(d.w(i*bdim + j))
						e.Write(d.w(i*bdim + j))
						e.Compute(1)
					}
				}
			}
			b.sync(e)
			// Update pivot row and column blocks against the diagonal.
			d := blk(k, k)
			for t := k + 1; t < nblk; t++ {
				if owner(k, t) == c { // row block
					gemmUpdate(e, d, blk(k, t), blk(k, t))
				}
				if owner(t, k) == c { // column block
					gemmUpdate(e, blk(t, k), d, blk(t, k))
				}
			}
			b.sync(e)
			// Trailing submatrix update.
			for bi := k + 1; bi < nblk; bi++ {
				for bj := k + 1; bj < nblk; bj++ {
					if owner(bi, bj) == c {
						gemmUpdate(e, blk(bi, k), blk(k, bj), blk(bi, bj))
					}
				}
			}
			b.sync(e)
		}
	})
}

// buildBarnes is a Barnes-Hut N-body step: particles live in a 2-D grid of
// cells with a shallow quadtree above them. Each timestep every core
// computes forces on its particles — walking the tree's root-to-cell path
// (hot shared reads) and reading the positions of particles in the 3x3
// neighborhood of cells (moderate-reuse shared reads) — then writes its
// particles' updated state (private), and cell summaries are rebuilt by
// their owning cores (writes that invalidate all readers of the cell).
func buildBarnes(s Spec) []trace.GenFunc {
	n := s.scaled(2048, 4*s.Cores)
	const grid = 16 // grid x grid leaf cells
	const steps = 2
	cells := grid * grid

	// Host-side deterministic particle placement.
	r := newRNG(s.Seed, 0xba21)
	cellOf := make([]int, n) // particle -> cell
	members := make([][]int, cells)
	for i := 0; i < n; i++ {
		cl := r.intn(cells)
		cellOf[i] = cl
		members[cl] = append(members[cl], i)
	}

	a := newArena()
	pos := a.region(n * 2)         // particle positions (x, y)
	vel := a.region(n * 2)         // particle velocities, private to the owner
	cellSum := a.region(cells * 8) // one line per cell: center of mass + bounds
	treePath := a.region(64)       // root + internal levels, hot shared lines

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		lo, hi := stripe(n, s.Cores, c)
		for step := 0; step < steps; step++ {
			// Force computation over the core's particles.
			for i := lo; i < hi; i++ {
				e.Read(pos.w(2 * i))
				e.Read(pos.w(2*i + 1))
				// Root-to-leaf tree walk: 4 hot internal levels, each with
				// up to 16 nodes; the path is determined by the cell index.
				for lvl := 0; lvl < 4; lvl++ {
					e.Read(treePath.w(lvl*16 + (cellOf[i]>>(2*lvl))%16))
				}
				// 3x3 cell neighborhood: summaries plus member particles.
				cx, cy := cellOf[i]%grid, cellOf[i]/grid
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny := cx+dx, cy+dy
						if nx < 0 || nx >= grid || ny < 0 || ny >= grid {
							continue
						}
						cl := ny*grid + nx
						e.Read(cellSum.w(cl * 8))
						if dx == 0 && dy == 0 {
							for _, j := range members[cl] {
								if j != i {
									e.Read(pos.w(2 * j))
								}
							}
						}
						e.Compute(2)
					}
				}
				// Integrate: private velocity and position update.
				e.Read(vel.w(2 * i))
				e.Read(vel.w(2*i + 1))
				e.Write(vel.w(2 * i))
				e.Write(vel.w(2*i + 1))
				e.Write(pos.w(2 * i))
				e.Write(pos.w(2*i + 1))
				e.Compute(4)
			}
			b.sync(e)
			// Rebuild cell summaries: cells are partitioned over cores; the
			// owner reads its members' positions and writes the summary line.
			cl0, cl1 := stripe(cells, s.Cores, c)
			for cl := cl0; cl < cl1; cl++ {
				for _, j := range members[cl] {
					e.Read(pos.w(2 * j))
				}
				writeSpan(e, cellSum, cl*8, cl*8+4)
				e.Compute(2)
			}
			b.sync(e)
		}
	})
}

// buildOcean is the SPLASH-2 ocean simulation's red-black successive
// over-relaxation core: the grid is partitioned into bands of rows per
// core; each sweep reads the 5-point stencil and writes the center. Rows
// interior to a band have pure private reuse; band-boundary rows are
// written by one core and read by its neighbor every sweep — the
// nearest-neighbor producer/consumer sharing ocean is known for.
func buildOcean(s Spec) []trace.GenFunc {
	cols := 96
	rows := s.scaled(192, 2*s.Cores)
	const sweeps = 5

	a := newArena()
	grid := a.region(rows * cols)
	errs := a.perCore(s.Cores, 8) // per-core residual accumulators
	conv := a.region(8)           // global convergence flag line
	at := func(r, c int) int { return r*cols + c }

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		r0, r1 := stripe(rows, s.Cores, c)
		for sweep := 0; sweep < sweeps; sweep++ {
			// Red-black successive over-relaxation.
			for color := 0; color < 2; color++ {
				for r := max(r0, 1); r < min(r1, rows-1); r++ {
					for col := 1 + (r+color)%2; col < cols-1; col += 2 {
						e.Read(grid.w(at(r-1, col)))
						e.Read(grid.w(at(r+1, col)))
						e.Read(grid.w(at(r, col-1)))
						e.Read(grid.w(at(r, col+1)))
						e.Read(grid.w(at(r, col)))
						e.Write(grid.w(at(r, col)))
						e.Compute(2)
					}
				}
				b.sync(e)
			}
			// Residual: sample the band and accumulate the local error
			// (private), then fold it into the global convergence test
			// under a lock, as the original's multi-grid driver does.
			for r := max(r0, 1); r < min(r1, rows-1); r += 2 {
				for col := 1; col < cols-1; col += 8 {
					e.Read(grid.w(at(r, col)))
					e.Read(errs[c].w(0))
					e.Write(errs[c].w(0))
					e.Compute(1)
				}
			}
			e.Lock(600)
			e.Read(conv.w(0))
			e.Write(conv.w(0))
			e.Unlock(600)
			b.sync(e)
		}
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildWaterSp is the SPLASH-2 spatial water simulation: molecules are
// binned into cells, one cell per core at the default geometry. Forces are
// dominated by intra-cell pair interactions over a tiny per-core working
// set with heavy floating-point compute, so the L1 miss rate is very low —
// the paper uses water-sp as the benchmark whose energy is almost entirely
// L1 (Section 5.1.1). A small fraction of reads cross into neighbor cells.
func buildWaterSp(s Spec) []trace.GenFunc {
	const perCell = 16
	steps := s.scaled(16, 8)
	const molWords = 8 // one line per molecule: position, velocity, forces

	a := newArena()
	cells := a.perCore(s.Cores, perCell*molWords)

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		own := cells[c]
		east := cells[(c+1)%s.Cores]
		for step := 0; step < steps; step++ {
			// Intra-cell pair forces: O(perCell^2) interactions over one
			// resident cell; each interaction is compute-heavy. This loop
			// dominates, which is what gives water-sp its ~0.2% miss rate.
			for i := 0; i < perCell; i++ {
				for j := i + 1; j < perCell; j++ {
					e.Read(own.w(i * molWords))
					e.Read(own.w(j * molWords))
					e.Compute(12)
					e.Write(own.w(i*molWords + 4))
					e.Write(own.w(j*molWords + 4))
				}
			}
			// Occasional boundary interaction with a few molecules of the
			// east neighbor cell (cutoff-radius crossings are rare).
			if step%4 == 0 {
				for i := 0; i < 4; i++ {
					e.Read(east.w(i * molWords))
					e.Read(own.w(i * molWords))
					e.Compute(12)
					e.Write(own.w(i*molWords + 4))
				}
			}
			// Integrate positions (private).
			for i := 0; i < perCell; i++ {
				e.Read(own.w(i*molWords + 4))
				e.Write(own.w(i * molWords))
				e.Compute(6)
			}
			b.sync(e)
		}
	})
}

// buildRaytrace is the SPLASH-2 ray tracer: a shared read-only BVH and
// triangle soup, a lock-protected global tile queue (the migratory line
// every core bounces through), and a private framebuffer tile per work
// unit. BVH roots are hot in every L1; deep nodes and triangles have low
// per-line reuse.
func buildRaytrace(s Spec) []trace.GenFunc {
	rays := s.scaled(16384, 16*s.Cores)
	const tile = 64 // rays per queue grab
	const bvhNodes = 4096
	const tris = 2048

	a := newArena()
	bvh := a.region(bvhNodes * 8) // one line per node
	geom := a.region(tris * 8)    // one line per triangle
	queue := a.region(8)          // head index + padding
	frame := a.region(rays)       // framebuffer, one word per ray

	tiles := (rays + tile - 1) / tile
	// Host-side deterministic tile handout: round-robin keeps every core
	// busy and is how a FIFO queue behaves under symmetric load.
	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		r := newRNG(s.Seed, uint64(c)+0x4a7)
		for t := c; t < tiles; t += s.Cores {
			// Grab a tile from the shared queue.
			e.Lock(1)
			e.Read(queue.w(0))
			e.Write(queue.w(0))
			e.Unlock(1)
			lo := t * tile
			hi := min(lo+tile, rays)
			for ray := lo; ray < hi; ray++ {
				// Traverse: 4 hot top levels, then a pseudo-random deep path.
				node := 0
				for lvl := 0; lvl < 12; lvl++ {
					e.Read(bvh.w(node * 8))
					e.Compute(2)
					if lvl < 3 {
						node = node*2 + 1 + r.intn(2)
					} else {
						node = r.intn(bvhNodes)
					}
				}
				// Intersect two candidate triangles.
				for k := 0; k < 2; k++ {
					tri := r.intn(tris)
					e.Read(geom.w(tri * 8))
					e.Read(geom.w(tri*8 + 1))
					e.Compute(4)
				}
				e.Write(frame.w(ray))
			}
		}
		b.sync(e)
	})
}

package workloads

import (
	"fmt"

	"lacc/internal/mem"
)

// dataBase is the start of the simulated data segment. It leaves the low
// address space free (guards against accidental zero addresses) and stays
// far below the simulator's synthetic code segment at 1<<40.
const dataBase mem.Addr = 1 << 22

// arena is a page-granular bump allocator over the simulated address space.
// Every region starts on a fresh page so that R-NUCA's page-level
// classification never sees false sharing between logically distinct
// structures (matching how the original benchmarks mmap their arrays).
type arena struct {
	next mem.Addr
}

func newArena() *arena {
	return &arena{next: dataBase}
}

// region allocates space for `words` 64-bit words, page aligned.
func (a *arena) region(words int) region {
	if words <= 0 {
		panic(fmt.Sprintf("workloads: region of %d words", words))
	}
	r := region{base: a.next, nwords: words}
	bytes := mem.Addr(words) * mem.WordBytes
	pages := (bytes + mem.PageBytes - 1) / mem.PageBytes
	a.next += pages * mem.PageBytes
	return r
}

// perCore allocates one region of `words` words per core, each starting on
// its own page, so first-touch classifies each core's slice as private.
func (a *arena) perCore(cores, words int) []region {
	out := make([]region, cores)
	for i := range out {
		out[i] = a.region(words)
	}
	return out
}

// region is a contiguous run of 64-bit words in the simulated address space.
type region struct {
	base   mem.Addr
	nwords int
}

// Words returns the region length in words.
func (r region) Words() int { return r.nwords }

// Lines returns the region length in cache lines (rounded up).
func (r region) Lines() int {
	return (r.nwords + mem.WordsPerLine - 1) / mem.WordsPerLine
}

// w returns the address of word i, bounds-checked.
func (r region) w(i int) mem.Addr {
	if i < 0 || i >= r.nwords {
		panic(fmt.Sprintf("workloads: word %d out of region of %d words", i, r.nwords))
	}
	return r.base + mem.Addr(i)*mem.WordBytes
}

// line returns the address of the first word of cache line i of the region.
func (r region) line(i int) mem.Addr {
	n := r.Lines()
	if i < 0 || i >= n {
		panic(fmt.Sprintf("workloads: line %d out of region of %d lines", i, n))
	}
	return r.base + mem.Addr(i)*mem.LineBytes
}

// contains reports whether addr falls inside the region (test helper).
func (r region) contains(addr mem.Addr) bool {
	return addr >= r.base && addr < r.base+mem.Addr(r.nwords)*mem.WordBytes
}

package workloads

import "lacc/internal/trace"

// The Parallel-MI-Bench kernels (Iqbal et al., CAL 2010) used by the paper:
// dijkstra (single-source and all-pairs), patricia and susan.

func init() {
	register(Workload{
		Name:        "dijkstra-ss",
		Label:       "DIJKSTRA-SS",
		Suite:       "Parallel MI Bench",
		PaperSize:   "Graph with 4096 nodes",
		DefaultSize: "4096 nodes, degree 4, 6 rounds",
		build:       buildDijkstraSS,
	})
	register(Workload{
		Name:        "dijkstra-ap",
		Label:       "DIJKSTRA-AP",
		Suite:       "Parallel MI Bench",
		PaperSize:   "Graph with 512 nodes",
		DefaultSize: "128 nodes, one source per core",
		build:       buildDijkstraAP,
	})
	register(Workload{
		Name:        "patricia",
		Label:       "PATRICIA",
		Suite:       "Parallel MI Bench",
		PaperSize:   "5000 IP address queries",
		DefaultSize: "512 queries/core over a 2K-node trie",
		build:       buildPatricia,
	})
	register(Workload{
		Name:        "susan",
		Label:       "SUSAN",
		Suite:       "Parallel MI Bench",
		PaperSize:   "PGM picture 2.8 MB",
		DefaultSize: "2 rows x 128 cols per core, 3 passes",
		build:       buildSusan,
	})
}

// graph is a deterministic random directed graph in CSR form, built on the
// host and shared read-only by the generator closures.
type graph struct {
	nodes int
	adjOf [][]int
}

func newGraph(nodes, degree int, r *rng) *graph {
	g := &graph{nodes: nodes, adjOf: make([][]int, nodes)}
	for u := 0; u < nodes; u++ {
		adj := make([]int, degree)
		for i := range adj {
			adj[i] = r.intn(nodes)
		}
		g.adjOf[u] = adj
	}
	return g
}

// buildDijkstraSS is the parallel single-source shortest path: the edge set
// is striped over cores and relaxed in Bellman-Ford rounds. Every
// relaxation reads the shared distance array at two scattered nodes and
// improvements write it under a node-bucket lock — the write-shared
// distance array is the low-utilization ping-pong data the paper credits
// with dijkstra-ss's large L2-waiting-time reduction.
func buildDijkstraSS(s Spec) []trace.GenFunc {
	nodes := s.scaled(4096, 16*s.Cores)
	const degree = 4
	const rounds = 7
	const nLocks = 64

	r := newRNG(s.Seed, 0xd55)
	g := newGraph(nodes, degree, r)

	a := newArena()
	dist := a.region(nodes)
	adj := a.region(nodes * degree)

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		lo, hi := stripe(nodes, s.Cores, c)
		rr := newRNG(s.Seed, uint64(c)+0xd56)
		for round := 0; round < rounds; round++ {
			for u := lo; u < hi; u++ {
				e.Read(dist.w(u))
				for i, v := range g.adjOf[u] {
					e.Read(adj.w(u*degree + i)) // edge weight
					e.Read(dist.w(v))
					e.Compute(1)
					// Improvement probability decays to zero as distances
					// settle, like real Bellman-Ford: the late rounds are
					// read-only, which is where remote-to-private promotion
					// pays off (and why Adapt1-way loses badly here).
					if rr.intn(10) < 4-round {
						lock := uint64(300 + v%nLocks)
						e.Lock(lock)
						e.Read(dist.w(v))
						e.Write(dist.w(v))
						e.Unlock(lock)
					}
				}
			}
			b.sync(e)
		}
		// Result pass: every core scans the whole settled distance vector
		// (shortest-path statistics). The dense re-reads of lines demoted
		// during relaxation are where remote-to-private promotion pays off —
		// and where the promotion-free Adapt1-way protocol loses badly
		// (Figure 14 reports 2.3x for dijkstra-ss).
		for v := 0; v < nodes; v++ {
			e.Read(dist.w(v))
			e.Compute(1)
		}
		b.sync(e)
	})
}

// buildDijkstraAP is the all-pairs variant: every core runs an independent
// O(n^2) Dijkstra from its own source over the shared read-only graph with
// a private distance/visited array. The private arrays have excellent
// locality; the shared adjacency matrix is read-mostly.
func buildDijkstraAP(s Spec) []trace.GenFunc {
	nodes := s.scaled(128, 32)
	const degree = 8

	r := newRNG(s.Seed, 0xdab)
	g := newGraph(nodes, degree, r)

	a := newArena()
	adj := a.region(nodes * degree)
	local := a.perCore(s.Cores, 2*nodes) // dist ++ visited per core

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		mine := local[c]
		// Initialize the private arrays.
		writeSpan(e, mine, 0, 2*nodes)
		// Host-side mirror of the visited set drives the control flow; the
		// emitted accesses are the algorithm's real reads and writes.
		visited := make([]bool, nodes)
		for settled := 0; settled < nodes; settled++ {
			// Linear min-scan over the private distance array.
			best := -1
			for v := 0; v < nodes; v++ {
				e.Read(mine.w(v))         // dist[v]
				e.Read(mine.w(nodes + v)) // visited[v]
				if !visited[v] && best < 0 {
					best = v
				}
			}
			if best < 0 {
				break
			}
			visited[best] = true
			e.Write(mine.w(nodes + best))
			// Relax the settled node's out-edges.
			for i, v := range g.adjOf[best] {
				e.Read(adj.w(best*degree + i))
				e.Read(mine.w(v))
				e.Write(mine.w(v))
				e.Compute(1)
			}
		}
		b.sync(e)
	})
}

// trieNode is a host-side Patricia trie node.
type trieNode struct {
	left, right int // child indices, -1 for none
	leaf        bool
}

// buildPatricia performs IP route lookups over a shared Patricia trie: each
// query walks a root-to-leaf pointer chain whose top levels are hot in
// every L1 and whose leaves are touched once or twice, plus occasional
// lock-protected inserts that invalidate the walked path in every reader.
func buildPatricia(s Spec) []trace.GenFunc {
	const prefixes = 1024
	queriesPerCore := s.scaled(512, 32)

	// Host-side trie over random prefixes.
	hr := newRNG(s.Seed, 0x9a7)
	nodes := []trieNode{{left: -1, right: -1}}
	insert := func(key uint32, depth int) {
		cur := 0
		for d := 0; d < depth; d++ {
			bit := (key >> (31 - d)) & 1
			var next *int
			if bit == 0 {
				next = &nodes[cur].left
			} else {
				next = &nodes[cur].right
			}
			if *next < 0 {
				nodes = append(nodes, trieNode{left: -1, right: -1})
				*next = len(nodes) - 1
			}
			cur = *next
		}
		nodes[cur].leaf = true
	}
	keys := make([]uint32, prefixes)
	for i := range keys {
		keys[i] = uint32(hr.next())
		insert(keys[i], 8+hr.intn(8))
	}

	a := newArena()
	trie := a.region(len(nodes) * 8) // one line per node

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		qr := newRNG(s.Seed, uint64(c)+0x9a8)
		for q := 0; q < queriesPerCore; q++ {
			key := keys[qr.intn(prefixes)] ^ uint32(qr.intn(16)) // near-miss traffic
			cur := 0
			for d := 0; d < 31 && cur >= 0; d++ {
				e.Read(trie.w(cur * 8))
				e.Compute(1)
				if (key>>(31-d))&1 == 0 {
					cur = nodes[cur].left
				} else {
					cur = nodes[cur].right
				}
			}
			// 5% of operations are route updates: re-walk and patch a node.
			if qr.intn(20) == 0 {
				e.Lock(400)
				target := qr.intn(len(nodes))
				e.Read(trie.w(target * 8))
				e.Write(trie.w(target * 8))
				e.Unlock(400)
			}
		}
		b.sync(e)
	})
}

// buildSusan is the SUSAN image-smoothing kernel: each core owns a band of
// image rows and convolves a 5x5 USAN brightness mask over it. The working
// set per core is a handful of rows with dense spatial reuse (25 mask
// reads per pixel), giving the near-zero miss rate the paper reports
// (susan's energy is ~95% L1).
func buildSusan(s Spec) []trace.GenFunc {
	const cols = 64
	rowsPerCore := s.scaled(2, 2)
	passes := s.scaled(3, 2)
	rows := rowsPerCore * s.Cores

	a := newArena()
	img := a.region(rows * cols)
	out := a.perCore(s.Cores, rowsPerCore*cols)

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		r0 := c * rowsPerCore
		for pass := 0; pass < passes; pass++ {
			for dr := 0; dr < rowsPerCore; dr++ {
				row := r0 + dr
				for col := 2; col < cols-2; col++ {
					for mr := row - 2; mr <= row+2; mr++ {
						if mr < 0 || mr >= rows {
							continue
						}
						for mc := col - 2; mc <= col+2; mc++ {
							e.Read(img.w(mr*cols + mc))
						}
					}
					e.Compute(8)
					e.Write(out[c].w(dr*cols + col))
				}
			}
			b.sync(e)
		}
	})
}

package workloads

import "lacc/internal/trace"

// The three remaining benchmarks of Table 2: travelling salesman (tsp),
// depth-first search (dfs) and matrix multiply (matmul).

func init() {
	register(Workload{
		Name:        "tsp",
		Label:       "TSP",
		Suite:       "Others",
		PaperSize:   "16 cities",
		DefaultSize: "16 cities, 128 tours/core",
		build:       buildTSP,
	})
	register(Workload{
		Name:        "dfs",
		Label:       "DFS",
		Suite:       "Others",
		PaperSize:   "Graph with 876800 nodes",
		DefaultSize: "64K nodes, 1K expansions/core",
		build:       buildDFS,
	})
	register(Workload{
		Name:        "matmul",
		Label:       "MATMUL",
		Suite:       "Others",
		PaperSize:   "512 x 512 matrix",
		DefaultSize: "520x520, 6x6 C tile/core",
		build:       buildMatmul,
	})
}

// buildTSP is branch-and-bound travelling salesman: partial tours migrate
// through a lock-protected work queue (the migratory lines every core
// bounces through with only a couple of accesses per visit — the sharing
// misses the protocol converts to cheap word accesses), the distance matrix
// is small and hot in every L1, and the global best bound is read on every
// expansion and improved rarely under a lock.
func buildTSP(s Spec) []trace.GenFunc {
	const cities = 16
	toursPerCore := s.scaled(128, 8)

	a := newArena()
	distMat := a.region(cities * cities)          // hot shared read-only
	queue := a.region(8)                          // head index line
	tours := a.region(s.Cores * toursPerCore * 2) // tour records, 4 per line
	bound := a.region(8)                          // global best bound line

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		r := newRNG(s.Seed, uint64(c)+0x75b)
		for t := 0; t < toursPerCore; t++ {
			// Dequeue a partial tour: the queue head and the record were
			// last written by whichever core produced them.
			e.Lock(500)
			e.Read(queue.w(0))
			rec := (r.intn(s.Cores)*toursPerCore + t) * 2
			e.Read(tours.w(rec))
			e.Read(tours.w(rec + 1))
			e.Write(queue.w(0))
			e.Unlock(500)
			// Expand: walk remaining cities reading the hot distance matrix
			// and checking the global bound.
			for depth := 0; depth < cities-2; depth++ {
				i, j := r.intn(cities), r.intn(cities)
				e.Read(distMat.w(i*cities + j))
				e.Read(distMat.w(j*cities + i))
				e.Compute(2)
				if depth%4 == 0 {
					e.Read(bound.w(0)) // prune check
				}
			}
			// Publish a child tour for someone else to consume.
			child := (c*toursPerCore + t) * 2
			e.Write(tours.w(child))
			e.Write(tours.w(child + 1))
			// Rare bound improvement.
			if r.intn(50) == 0 {
				e.Lock(501)
				e.Read(bound.w(0))
				e.Write(bound.w(0))
				e.Unlock(501)
			}
		}
		b.sync(e)
	})
}

// buildDFS is parallel depth-first search with a private stack per core and
// a shared visited array: node expansions read the scattered visited words
// of their neighbors (single-use lines over a large array) and mark newly
// discovered nodes. The private stacks have perfect locality.
func buildDFS(s Spec) []trace.GenFunc {
	nodes := s.scaled(65536, 128*s.Cores)
	expansionsPerCore := s.scaled(1024, 64)
	const degree = 2

	r := newRNG(s.Seed, 0xdf5)
	g := newGraph(nodes, degree, r)

	a := newArena()
	visited := a.region(nodes)
	stacks := a.perCore(s.Cores, 256)

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		rr := newRNG(s.Seed, uint64(c)+0xdf6)
		own := stacks[c]
		sp := 0
		for n := 0; n < expansionsPerCore; n++ {
			// Pop (private stack).
			if sp > 0 {
				sp--
			}
			e.Read(own.w(sp % own.Words()))
			u := rr.intn(nodes)
			for _, v := range g.adjOf[u] {
				e.Read(visited.w(v))
				e.Compute(1)
				if rr.intn(2) == 0 { // undiscovered: mark and push
					e.Write(visited.w(v))
					e.Write(own.w(sp % own.Words()))
					sp++
				}
			}
		}
		b.sync(e)
	})
}

// buildMatmul is the naive (unblocked) matrix multiply of the paper's
// hand-written kernel set: every core computes a tile of C — six rows by
// six consecutive columns — as full dot products. Per column, the B walk
// installs one single-use line per matrix row; the row length is an odd
// number of cache lines, so the column's footprint sweeps every L1 set and
// flushes the A rows the next column would have reused. Once PCT >= 2
// demotes the utilization-1 B lines, they are serviced as remote words and
// stop polluting: the A tile becomes L1-resident and matmul's miss rate
// drops sharply, exactly the Figure 10 behaviour the paper describes.
func buildMatmul(s Spec) []trace.GenFunc {
	// 520 words/row = 65 lines: coprime with the 128 L1 sets, so a column
	// walk floods all sets; the 6x65-line A tile alone fits the 512-line L1.
	const n = 520
	const tileRows = 6
	const tileCols = 6

	a := newArena()
	A := a.region(n * n)
	B := a.region(n * n)
	C := a.region(s.Cores * tileRows * tileCols)

	return spmd(s.Cores, func(e *trace.Emitter, c int, b *barriers) {
		r := newRNG(s.Seed, uint64(c)+0x3a7)
		i0 := (c * tileRows) % n
		col0 := 8 * r.intn(n/8) // line-aligned column group
		for d := 0; d < tileCols; d++ {
			col := col0 + d
			for k := 0; k < n; k++ {
				for i := 0; i < tileRows; i++ {
					e.Read(A.w((i0+i)*n + k)) // row-major streams, reused per column
				}
				e.Read(B.w(k*n + col)) // column walk, one word per line
				e.Compute(1)
			}
			for i := 0; i < tileRows; i++ {
				e.Write(C.w((c*tileRows+i)*tileCols + d))
			}
		}
		b.sync(e)
	})
}

package sim

import (
	"strings"
	"testing"

	"lacc/internal/coherence"
	"lacc/internal/mem"
	"lacc/internal/trace"
)

// runTiny executes a two-access trace on a 2-core machine and returns the
// simulator for white-box inspection.
func runTiny(t *testing.T) *Simulator {
	t.Helper()
	cfg := Default()
	cfg.Cores = 2
	cfg.MeshWidth = 2
	cfg.MemControllers = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const base mem.Addr = 1 << 22
	_, err = s.Run([]trace.Stream{
		trace.FromSlice([]mem.Access{{Kind: mem.Read, Addr: base}}),
		trace.FromSlice([]mem.Access{{Kind: mem.Read, Addr: base + mem.PageBytes}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// corrupt locates the first directory entry and applies fn to it.
func corrupt(t *testing.T, s *Simulator, fn func(la mem.Addr, e *dirEntry)) {
	t.Helper()
	done := false
	for i := range s.tiles {
		s.tiles[i].dir.forEach(func(la mem.Addr, e *dirEntry) {
			if done {
				return
			}
			fn(la, e)
			done = true
		})
		if done {
			return
		}
	}
	t.Fatal("no directory entries to corrupt")
}

func TestAuditDetectsPhantomSharer(t *testing.T) {
	s := runTiny(t)
	if err := s.Audit(); err != nil {
		t.Fatalf("clean state failed audit: %v", err)
	}
	corrupt(t, s, func(la mem.Addr, e *dirEntry) {
		// Claim a sharer that holds no copy.
		e.state = coherence.SharedState
		e.owner = -1
		e.sharers.Clear()
		e.sharers.Add(0)
		e.sharers.Add(1)
	})
	err := s.Audit()
	if err == nil || !strings.Contains(err.Error(), "audit") {
		t.Fatalf("phantom sharer not detected: %v", err)
	}
}

func TestAuditDetectsWrongOwner(t *testing.T) {
	s := runTiny(t)
	corrupt(t, s, func(la mem.Addr, e *dirEntry) {
		if e.state == coherence.ExclusiveState {
			e.owner = 1 - e.owner // flip to the non-holding core
		} else {
			e.state = coherence.ModifiedState
			e.owner = 1
		}
	})
	if err := s.Audit(); err == nil {
		t.Fatal("wrong owner not detected")
	}
}

func TestAuditDetectsMissingL2Line(t *testing.T) {
	s := runTiny(t)
	var victim mem.Addr
	var tile int
	for i := range s.tiles {
		i := i
		s.tiles[i].dir.forEach(func(la mem.Addr, _ *dirEntry) {
			victim, tile = la, i
		})
	}
	s.tiles[tile].l2.Invalidate(victim)
	err := s.Audit()
	if err == nil || !strings.Contains(err.Error(), "without L2 line") {
		t.Fatalf("missing L2 line not detected: %v", err)
	}
}

package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/core"
	"lacc/internal/mem"
)

// hybridProtocol is a per-line MESI/Dragon switching baseline: a full-map
// directory whose entries carry the locality classifier, used here to pick
// the write policy per sharer instead of a caching mode. A write to a
// shared line pushes Dragon word updates to private-mode sharers (their
// reuse since the last write earned the update) and MESI-invalidates
// remote-mode sharers (their copies were not worth refreshing). Each
// update push samples the sharer's utilization since the previous write
// and reclassifies it against the PCT, so a line's sharers migrate between
// update and invalidate treatment as their reuse changes — the
// update-vs-invalidate trade-off decided dynamically, but without the
// adaptive protocol's remote-word mode: every reader still caches the
// whole line.
//
// Model notes: reads behave exactly like MESI/Dragon reads; when a write's
// update fan-out reaches nobody (all other sharers were remote-mode and
// invalidated), the write degenerates to the MESI transaction, taking the
// line Modified. Shared lines are write-through at the home on the update
// path, so S copies stay clean, as under Dragon.
type hybridProtocol struct {
	fullMapDirectory
	updates uint64 // per-sharer word updates pushed
}

func init() {
	RegisterProtocol(ProtocolHybrid, func(s *Simulator) Protocol {
		// Simulator.Reset keeps a shape-compatible pool (with its slabs and
		// reclaimed classifiers) across runs; build one only when absent.
		if s.clsPool == nil || !s.clsPool.Matches(s.cfg.Cores, s.cfg.ClassifierK) {
			s.clsPool = core.NewClassifierPool(s.cfg.Cores, s.cfg.ClassifierK)
		}
		return &hybridProtocol{fullMapDirectory: fullMapDirectory{s}}
	})
}

// Name implements Protocol.
func (p *hybridProtocol) Name() string { return string(ProtocolHybrid) }

// Finalize implements Protocol.
func (p *hybridProtocol) Finalize(r *Result) { r.UpdateWrites = p.updates }

// initDirEntry completes a freshly inserted directory entry with a pristine
// classifier (all cores initially private, so a fresh line starts under
// pure Dragon update semantics). The fast core draws classifiers from the
// slab pool; the reference core allocates fresh ones.
func (p *hybridProtocol) initDirEntry(e *dirEntry) {
	e.owner = -1
	if p.reference {
		e.cls = core.NewClassifier(p.cfg.Cores, p.cfg.ClassifierK)
	} else if p.sh != nil {
		p.sh.poolMu.Lock()
		e.cls = p.clsPool.Get()
		p.sh.poolMu.Unlock()
	} else {
		e.cls = p.clsPool.Get()
	}
}

// DataAccess executes one data read or write. Reads hit in any state and
// writes hit on an E or M copy; a write to an S copy walks the
// classifier-partitioned update/invalidate transaction at the home.
func (p *hybridProtocol) DataAccess(c *coreState, kind mem.AccessKind, addr mem.Addr) {
	p.dataAccess(p, c, kind, addr)
}

// missPath handles an L1 miss or a shared-write transaction. Reads behave
// exactly like MESI; writes partition the other sharers by classification.
func (p *hybridProtocol) missPath(c *coreState, kind mem.AccessKind, addr mem.Addr, upgrade bool) {
	la := mem.LineOf(addr)
	t0 := c.now
	if kind == mem.Write {
		p.meter.L1DWrites++
	} else {
		p.meter.L1DReads++
	}

	// L1 tag probe detected the miss (or the S state of the written copy).
	t := t0 + mem.Cycle(p.cfg.L1DLatency)
	var l1l2, wait, sharersLat, offchip mem.Cycle
	l1l2 = t - t0

	home, recl := p.dataHome(addr, c.id)
	if recl != nil {
		p.PageMove(recl, t)
		t += mem.Cycle(p.cfg.PageMoveLatency)
		offchip += mem.Cycle(p.cfg.PageMoveLatency)
	}

	// The written word travels with the request (header + word); reads are
	// address-only.
	reqFlits := 1
	if kind == mem.Write {
		reqFlits = 2
	}
	tArr := p.mesh.Unicast(c.id, home, reqFlits, t)
	l1l2 += tArr - t
	t = tArr

	// The whole home-side transaction — directory walk, sharer round
	// trips, grant — runs under the home tile's lock.
	p.lockHome(home)
	entry, l2line, tDir, wait, fill := p.lookupEntry(p, c, home, la, t)
	offchip += fill
	l1l2 += mem.Cycle(p.cfg.L2Latency)
	t = tDir

	outcome := p.missOutcome(c, la, upgrade)

	var tEnd mem.Cycle
	if kind == mem.Read {
		tWB := p.fetchOwnerForRead(home, la, entry, l2line, t)
		sharersLat += tWB - t
		t = tWB
		p.tiles[home].l2.Touch(l2line, t)
		entry.busyUntil = t
		tEnd = p.grantReadLine(c, la, home, entry, l2line, t)
		l1l2 += tEnd - t
	} else {
		var shLat mem.Cycle
		tEnd, shLat = p.writePath(c, la, home, entry, l2line, upgrade, t)
		sharersLat += shLat
		l1l2 += tEnd - t - shLat
	}
	// The requester is an active private sharer; the activity bit drives
	// the Limited-k replacement policy.
	core.Lookup(entry.cls, c.id).Active = true
	p.unlockHome(home)
	p.setHistory(c.id, la, hCached)

	c.l1d.Record(outcome)
	c.bd.L1ToL2 += float64(l1l2)
	c.bd.L2Waiting += float64(wait)
	c.bd.L2Sharers += float64(sharersLat)
	c.bd.OffChip += float64(offchip)
	if p.cfg.CheckValues {
		if sum := l1l2 + wait + sharersLat + offchip; sum != tEnd-t0 {
			panic(fmt.Sprintf("sim: latency components %d != total %d", sum, tEnd-t0))
		}
	}
	c.now = tEnd
}

// grantReadLine hands a shared (or first-reader Exclusive) copy to the
// requester, exactly as MESI would.
func (p *hybridProtocol) grantReadLine(c *coreState, la mem.Addr, home int,
	entry *dirEntry, l2line *cache.Line, t mem.Cycle) mem.Cycle {

	p.grantRead(c, entry)
	p.meter.L2LineReads++
	tEnd := p.mesh.Unicast(home, c.id, 9, t)
	p.lockL1(c.id)
	line := p.installLine(p, c, la, home, l2line, false, tEnd)
	line.Util++
	p.tiles[c.id].l1d.Touch(line, tEnd)
	if entry.state == coherence.ExclusiveState {
		line.State = lineE
	} else {
		line.State = lineS
	}
	p.unlockL1(c.id)
	if p.cfg.CheckValues {
		p.checkVersion("private fill read", la, line.Version)
	}
	return tEnd
}

// writePath commits one write at the home. Unshared lines behave exactly
// like MESI; a write to a shared line fans out per sharer by
// classification: Dragon word updates to private-mode sharers,
// invalidations to remote-mode sharers. If no update reaches anybody the
// transaction degenerates to MESI and the requester takes the line
// Modified. Returns the time the reply reaches the requester and the
// fan-out latency (charged to the L2-to-sharers component).
func (p *hybridProtocol) writePath(c *coreState, la mem.Addr, home int,
	entry *dirEntry, l2line *cache.Line, upgrade bool, t mem.Cycle) (tEnd, sharersLat mem.Cycle) {

	// An E/M owner elsewhere first flushes to the home and becomes a
	// sharer; the write then proceeds against it. The owner cannot be the
	// requester (its write would have hit in the L1).
	if entry.state == coherence.ExclusiveState || entry.state == coherence.ModifiedState {
		tWB := p.fetchOwnerForRead(home, la, entry, l2line, t)
		sharersLat += tWB - t
		t = tWB
	}

	if entry.state == coherence.Uncached {
		// Sole copy anywhere: a plain Modified fill.
		p.tiles[home].l2.Touch(l2line, t)
		entry.busyUntil = t
		return p.grantModifiedFill(p, c, la, home, entry, l2line, t), sharersLat
	}

	if upgrade && entry.sharers.Count() == 1 {
		// The requester is the last remaining sharer: promote its copy to
		// Modified and write locally from now on.
		if !p.relaxed() || entry.sharers.Contains(c.id) {
			entry.sharers.Remove(c.id)
		} else {
			// The lone registration is a phantom left by a deferred
			// eviction; the requester's copy is real but unregistered.
			entry.sharers.Clear()
		}
		entry.state = coherence.ModifiedState
		entry.owner = int16(c.id)
		p.meter.DirUpdates++
		p.tiles[home].l2.Touch(l2line, t)
		entry.busyUntil = t
		tEnd = p.mesh.Unicast(home, c.id, 1, t)
		p.lockL1(c.id)
		line := p.tiles[c.id].l1d.Probe(la)
		if line == nil {
			p.unlockL1(c.id)
			if !p.relaxed() {
				panic("sim: update upgrade without an L1 copy")
			}
			// Displaced concurrently; keep the timing, skip the mutation.
			return tEnd, sharersLat
		}
		line.Util++
		p.tiles[c.id].l1d.Touch(line, tEnd)
		line.State = lineM
		line.Dirty = true
		line.Version = p.goldenWrite(la)
		p.unlockL1(c.id)
		return tEnd, sharersLat
	}

	// Mixed fan-out over the other sharers. The golden version advances
	// exactly once per write: on the first update push when the write stays
	// an update transaction, or at the Modified grant when it degenerates
	// to MESI.
	latest := t
	pushes := 0
	var ver uint64
	ids := p.borrowIDs(entry.sharers.Identified())
	for _, id16 := range ids {
		id := int(id16)
		if id == c.id {
			continue
		}
		if core.Lookup(entry.cls, id).Mode == core.ModeRemote {
			// Low-reuse sharer: invalidate, MESI-style.
			tReq := p.mesh.Unicast(home, id, 1, t)
			tAck := p.invalSharer(home, la, id, entry, l2line, tReq)
			if tAck > latest {
				latest = tAck
			}
			entry.sharers.Remove(id)
			continue
		}
		// High-reuse sharer: push the word, Dragon-style (header + word).
		if pushes == 0 {
			ver = p.goldenWrite(la)
		}
		pushes++
		tU := p.mesh.Unicast(home, id, 2, t)
		tU += mem.Cycle(p.cfg.L1DLatency)
		p.lockL1(id)
		ol := p.tiles[id].l1d.Probe(la)
		if ol == nil {
			p.unlockL1(id)
			if !p.relaxed() {
				panic(fmt.Sprintf("sim: update to absent copy %#x at tile %d", la, id))
			}
			// Displaced concurrently; ack without applying the update.
			tAck := p.mesh.Unicast(id, home, 1, tU)
			if tAck > latest {
				latest = tAck
			}
			continue
		}
		if !p.faults.DropUpdates {
			// Seeded data-value defect (Faults): the pushed word is lost
			// and the sharer's copy keeps its stale version.
			ol.Version = ver
		}
		// The utilization since the last write decides whether the next
		// write still updates this sharer; the counter restarts for the
		// new inter-write window.
		util := ol.Util
		ol.Util = 0
		p.unlockL1(id)
		p.meter.L1DWrites++
		p.updates++
		p.classify(entry, id, util, false)
		tAck := p.mesh.Unicast(id, home, 1, tU)
		if tAck > latest {
			latest = tAck
		}
	}
	p.returnIDs(ids)
	sharersLat += latest - t
	t = latest

	if pushes > 0 {
		// Update transaction: commit the word at the home (write-through,
		// so every surviving S copy stays clean).
		l2line.Version = ver
		l2line.Dirty = true
		p.meter.L2WordWrites++
		p.meter.DirUpdates++
		p.tiles[home].l2.Touch(l2line, t)
		entry.busyUntil = t

		if upgrade {
			// The requester's own S copy absorbs the word; the home's ack
			// is a single flit.
			tEnd = p.mesh.Unicast(home, c.id, 1, t)
			p.lockL1(c.id)
			line := p.tiles[c.id].l1d.Probe(la)
			if line == nil {
				p.unlockL1(c.id)
				if !p.relaxed() {
					panic("sim: update upgrade without an L1 copy")
				}
				// Displaced concurrently; keep the timing, skip the
				// mutation.
				return tEnd, sharersLat
			}
			line.Util++
			line.Version = ver
			p.tiles[c.id].l1d.Touch(line, tEnd)
			p.unlockL1(c.id)
			return tEnd, sharersLat
		}
		// Write miss to a shared line: the requester joins the sharers
		// with a full line fill carrying the committed word.
		if !p.relaxed() || !entry.sharers.Contains(c.id) {
			entry.sharers.Add(c.id)
		}
		p.meter.DirUpdates++
		p.meter.L2LineReads++
		tEnd = p.mesh.Unicast(home, c.id, 9, t)
		p.lockL1(c.id)
		line := p.installLine(p, c, la, home, l2line, false, tEnd)
		line.Util++
		p.tiles[c.id].l1d.Touch(line, tEnd)
		line.State = lineS
		p.unlockL1(c.id)
		return tEnd, sharersLat
	}

	// Every other sharer was remote-mode and has been invalidated: the
	// write degenerates to the MESI transaction.
	if upgrade {
		if entry.sharers.Contains(c.id) {
			entry.sharers.Remove(c.id)
		}
		if entry.sharers.Count() != 0 {
			if !p.relaxed() {
				panic(fmt.Sprintf("sim: write grant with %d live sharers", entry.sharers.Count()))
			}
			// Phantom registrations whose copies vanished under deferred
			// eviction; their acks were already collected.
			entry.sharers.Clear()
		}
		entry.state = coherence.ModifiedState
		entry.owner = int16(c.id)
		p.meter.DirUpdates++
		p.tiles[home].l2.Touch(l2line, t)
		entry.busyUntil = t
		tEnd = p.mesh.Unicast(home, c.id, 1, t)
		p.lockL1(c.id)
		line := p.tiles[c.id].l1d.Probe(la)
		if line == nil {
			p.unlockL1(c.id)
			if !p.relaxed() {
				panic("sim: upgrade without an L1 copy")
			}
			return tEnd, sharersLat
		}
		line.Util++
		p.tiles[c.id].l1d.Touch(line, tEnd)
		line.State = lineM
		line.Dirty = true
		line.Version = p.goldenWrite(la)
		p.unlockL1(c.id)
		return tEnd, sharersLat
	}
	if entry.sharers.Count() != 0 {
		if !p.relaxed() {
			panic(fmt.Sprintf("sim: write grant with %d live sharers", entry.sharers.Count()))
		}
		entry.sharers.Clear()
	}
	p.tiles[home].l2.Touch(l2line, t)
	entry.busyUntil = t
	return p.grantModifiedFill(p, c, la, home, entry, l2line, t), sharersLat
}

// invalSharer invalidates one remote-mode sharer's L1 copy at its arrival
// time, folding dirty data back into the home line and reclassifying the
// core on its observed utilization. Returns when the acknowledgement
// reaches home.
func (p *hybridProtocol) invalSharer(home int, la mem.Addr, id int, entry *dirEntry,
	l2line *cache.Line, tArr mem.Cycle) mem.Cycle {

	if p.faults.DropInvalidations {
		// Seeded SWMR defect (Faults): the request is lost, the sharer's
		// copy survives, yet the caller still deregisters it at home.
		return tArr
	}
	tArr += mem.Cycle(p.cfg.L1DLatency)
	p.lockL1(id)
	line, ok := p.tiles[id].l1d.Invalidate(la)
	if !ok {
		p.unlockL1(id)
		if !p.relaxed() {
			panic(fmt.Sprintf("sim: invalidation of absent line %#x at tile %d", la, id))
		}
		// Displaced concurrently (deferred eviction in flight): acknowledge
		// without data; the eviction notification accounts the removal.
		return p.mesh.Unicast(id, home, 1, tArr)
	}
	p.cores[id].history.set(la, hInvalidated)
	p.unlockL1(id)
	flits := 1
	if line.Dirty {
		flits = 9
		l2line.Version = line.Version
		l2line.Dirty = true
		p.meter.L2LineWrites++
	}
	tAck := p.mesh.Unicast(id, home, flits, tArr)
	p.classify(entry, id, line.Util, false)
	if p.cfg.TrackUtilization {
		p.invalHist.Record(line.Util)
	}
	p.invalidations++
	return tAck
}

// classify applies the PCT classification to one core's observed
// utilization and counts mode transitions in both directions.
func (p *hybridProtocol) classify(entry *dirEntry, id int, util uint32, eviction bool) {
	st := core.Lookup(entry.cls, id)
	was := st.Mode
	core.Classify(p.cfg.Protocol, st, util, eviction)
	if was == core.ModePrivate && st.Mode == core.ModeRemote {
		p.demotions++
	} else if was == core.ModeRemote && st.Mode == core.ModePrivate {
		p.promotions++
	}
	p.meter.DirUpdates++
}

// L1Evict sends the eviction notification for a displaced L1 line: dirty
// data folds back into the home line, the directory releases the
// sharership and the departing core is reclassified on the victim's
// utilization.
func (p *hybridProtocol) L1Evict(c *coreState, victim cache.Line, t mem.Cycle) {
	la := victim.Addr
	home := int(victim.Home)
	flits := 1
	if victim.Dirty {
		flits = 9
	}
	p.mesh.Unicast(c.id, home, flits, t)

	ht := &p.tiles[home]
	entry := ht.dir.probe(la)
	if entry == nil {
		if p.relaxed() {
			// Torn down by a concurrent L2 eviction or page move; the
			// back-invalidation already accounted the removal.
			return
		}
		panic(fmt.Sprintf("sim: eviction of line %#x without directory entry", la))
	}
	l2line := ht.l2.Probe(la)
	if l2line == nil {
		if p.relaxed() {
			return
		}
		panic(fmt.Sprintf("sim: eviction of line %#x absent from inclusive L2", la))
	}
	if victim.Dirty {
		l2line.Version = victim.Version
		l2line.Dirty = true
		p.meter.L2LineWrites++
	}
	if entry.owner == int16(c.id) {
		entry.state = coherence.Uncached
		entry.owner = -1
	} else if !p.relaxed() || entry.sharers.Contains(c.id) {
		entry.sharers.Remove(c.id)
		if entry.sharers.Count() == 0 && entry.state == coherence.SharedState {
			entry.state = coherence.Uncached
		}
	}
	p.classify(entry, c.id, victim.Util, true)
	if p.cfg.TrackUtilization {
		p.evictHist.Record(victim.Util)
	}
	p.setHistory(c.id, la, hEvicted)
}

// Package sim is the multicore simulator: it executes per-core access
// streams against the full model stack (private L1s, R-NUCA shared L2 with
// integrated ACKwise directory, the locality-aware adaptive coherence
// protocol, 2-D mesh NoC and DRAM controllers) and reports the paper's
// evaluation metrics.
//
// The simulator is lax in the Graphite sense: cores advance their own
// clocks; the globally earliest core executes its next operation as one
// atomic transaction that walks the whole protocol path and returns a
// latency decomposed into the paper's completion-time components. Shared
// resources (mesh links, DRAM controllers, home-line serialization) are
// modeled with next-free-time queues, and a golden versioned store checks
// functional correctness of every read.
package sim

import (
	"fmt"

	"lacc/internal/core"
	"lacc/internal/energy"
)

// Config assembles the architectural parameters of Table 1 plus protocol
// and workload-independent modelling knobs.
type Config struct {
	// Cores is the number of tiles; MeshWidth is the mesh X dimension and
	// must divide Cores.
	Cores     int
	MeshWidth int

	// L1/L2 cache geometry and access latency (cycles).
	L1ISizeKB, L1IWays, L1ILatency int
	L1DSizeKB, L1DWays, L1DLatency int
	L2SizeKB, L2Ways, L2Latency    int

	// AckwisePointers is the ACKwise-p pointer count; values >= Cores give
	// a full-map directory.
	AckwisePointers int

	// Off-chip memory (Table 1: 8 controllers, 5 GBps each, 100 ns).
	MemControllers    int
	DRAMLatencyCycles int
	DRAMBytesPerCycle float64

	// HopLatency is the mesh per-hop latency (Table 1: 2 cycles).
	HopLatency int

	// ProtocolKind selects the coherence protocol implementation from the
	// registry: ProtocolAdaptive (the paper's locality-aware protocol,
	// also the empty-string default), ProtocolMESI (full-map MESI
	// directory baseline), ProtocolDragon (write-update baseline),
	// ProtocolDLS (directoryless shared-LLC remote access),
	// ProtocolNeat (single-pointer directory with self-invalidation) or
	// ProtocolHybrid (per-line MESI/Dragon switching).
	ProtocolKind ProtocolKind

	// Protocol holds the locality-aware protocol parameters; ClassifierK
	// selects the Limited-k classifier (<= 0 means Complete). Both are
	// consulted only by ProtocolAdaptive.
	Protocol    core.Params
	ClassifierK int

	// Energy holds the per-event dynamic energy constants.
	Energy energy.Params

	// CodeLines is the instruction footprint per workload in cache lines;
	// FetchPerOp is the number of instruction fetches charged per trace
	// operation in addition to one per compute-gap cycle.
	CodeLines  int
	FetchPerOp float64

	// Synchronization costs: a barrier release and a lock grant each add a
	// fixed latency approximating their round trips.
	BarrierLatency int
	LockLatency    int

	// PageMoveLatency is charged (off-chip component) when R-NUCA
	// reclassifies a page from private to shared and its lines migrate out
	// of the old home slice.
	PageMoveLatency int

	// VictimReplication enables the Victim Replication baseline (Zhang &
	// Asanovic, Section 2.1 of the paper): clean Shared-state L1 victims
	// are replicated into the local L2 slice (displacing only other
	// replicas or free ways) and L1 misses are serviced from the local
	// replica when present. The paper's critique — victims are replicated
	// irrespective of their reuse — is what the comparison experiment
	// demonstrates. Usually combined with PCT 1.
	VictimReplication bool

	// CheckValues enables the golden-store functional checker.
	CheckValues bool

	// TrackUtilization enables the Figure 1/2 eviction/invalidation
	// utilization histograms.
	TrackUtilization bool

	// Shards selects the parallel execution engine: the mesh is partitioned
	// into Shards contiguous tile groups, each drained by its own worker
	// goroutine, synchronized on epoch barriers (see shard.go). 0 or 1 run
	// the sequential engine. Values above 1 engage the relaxed parallel
	// engine, which is incompatible with CheckValues and VictimReplication
	// and falls back to sequential execution for those configurations.
	Shards int

	// EpochCycles is the epoch length of the sharded engine: shards run
	// freely while their cores stay below the global epoch horizon and
	// rendezvous to advance it. 0 selects the default (8192 cycles).
	// Smaller epochs tighten cross-shard timing divergence at the cost of
	// more rendezvous.
	EpochCycles int
}

// MaxCores is the largest supported core count. Tile identities are packed
// into int16 fields throughout the hot structures (cache.Line.Home,
// directory owner and sharer pointers), so core counts must stay below
// 1<<15; Validate rejects anything larger with a LimitError instead of
// letting the narrowing conversions truncate silently.
const MaxCores = 1<<15 - 1

// LimitError reports a configuration field exceeding a structural limit of
// the engine's packed representations.
type LimitError struct {
	Field string
	Value int
	Max   int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("sim: %s=%d exceeds the supported maximum %d", e.Field, e.Value, e.Max)
}

// FeatureError reports a configuration feature enabled under a protocol
// kind that does not support it. Like LimitError it is a typed rejection:
// callers (the server's config override layer, the experiment sweepers)
// can distinguish an unsupported combination from a malformed value.
type FeatureError struct {
	Feature  string
	Protocol ProtocolKind
}

func (e *FeatureError) Error() string {
	return fmt.Sprintf("sim: %s is not supported under protocol %q", e.Feature, e.Protocol)
}

// Default returns the paper's Table 1 configuration with the protocol
// defaults (PCT 4, RATmax 16, 2 RAT levels, Limited-3 classifier).
func Default() Config {
	return Config{
		Cores:     64,
		MeshWidth: 8,

		L1ISizeKB: 16, L1IWays: 4, L1ILatency: 1,
		L1DSizeKB: 32, L1DWays: 4, L1DLatency: 1,
		L2SizeKB: 256, L2Ways: 8, L2Latency: 7,

		AckwisePointers: 4,

		MemControllers:    8,
		DRAMLatencyCycles: 100,
		DRAMBytesPerCycle: 5,

		HopLatency: 2,

		ProtocolKind: ProtocolAdaptive,
		Protocol:     core.DefaultParams(),
		ClassifierK:  3,

		Energy: energy.DefaultParams(),

		CodeLines:  96,
		FetchPerOp: 2,

		BarrierLatency:  100,
		LockLatency:     50,
		PageMoveLatency: 300,

		CheckValues:      true,
		TrackUtilization: true,
	}
}

// protocolKind returns the configured protocol kind, defaulting the empty
// string to the adaptive protocol so the zero Config keeps its historical
// meaning.
func (c Config) protocolKind() ProtocolKind {
	if c.ProtocolKind == "" {
		return ProtocolAdaptive
	}
	return c.ProtocolKind
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.MeshWidth <= 0 || c.Cores%c.MeshWidth != 0 {
		return fmt.Errorf("sim: bad mesh geometry cores=%d width=%d", c.Cores, c.MeshWidth)
	}
	if c.Cores > MaxCores {
		return &LimitError{Field: "Cores", Value: c.Cores, Max: MaxCores}
	}
	if c.Shards < 0 {
		return fmt.Errorf("sim: negative shard count %d", c.Shards)
	}
	if c.Shards > c.Cores {
		return &LimitError{Field: "Shards", Value: c.Shards, Max: c.Cores}
	}
	if c.EpochCycles < 0 {
		return fmt.Errorf("sim: negative epoch length %d", c.EpochCycles)
	}
	if _, ok := protocolFactories[c.protocolKind()]; !ok {
		return fmt.Errorf("sim: unknown protocol %q (registered: %v)", c.ProtocolKind, ProtocolKinds())
	}
	if c.VictimReplication && c.protocolKind() != ProtocolAdaptive {
		return &FeatureError{Feature: "victim replication", Protocol: c.protocolKind()}
	}
	if c.L1ISizeKB <= 0 || c.L1DSizeKB <= 0 || c.L2SizeKB <= 0 {
		return fmt.Errorf("sim: cache sizes must be positive")
	}
	if c.L1IWays <= 0 || c.L1DWays <= 0 || c.L2Ways <= 0 {
		return fmt.Errorf("sim: associativities must be positive")
	}
	if c.AckwisePointers <= 0 {
		return fmt.Errorf("sim: ACKwise pointer count must be positive")
	}
	if c.MemControllers <= 0 || c.MemControllers > c.Cores {
		return fmt.Errorf("sim: %d memory controllers for %d cores", c.MemControllers, c.Cores)
	}
	if c.DRAMBytesPerCycle <= 0 {
		return fmt.Errorf("sim: DRAM bandwidth must be positive")
	}
	if c.CodeLines <= 0 {
		return fmt.Errorf("sim: code footprint must be positive")
	}
	if err := c.Protocol.Validate(); err != nil {
		return err
	}
	return nil
}

package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/mem"
)

// mesiProtocol is the classic full-map MESI directory baseline: every miss
// transfers a whole cache line, every write invalidates all other copies,
// and the directory tracks an exact sharer vector (one pointer per core —
// no ACKwise overflow, no broadcasts). There is no locality classification
// and no remote-word mode; Config.Protocol and Config.ClassifierK are
// ignored. This is the "keep private caching for everything" end of the
// paper's design space, against which the adaptive protocol is judged.
type mesiProtocol struct {
	fullMapDirectory
}

func init() {
	RegisterProtocol(ProtocolMESI, func(s *Simulator) Protocol {
		return &mesiProtocol{fullMapDirectory{s}}
	})
}

// Name implements Protocol.
func (p *mesiProtocol) Name() string { return string(ProtocolMESI) }

// Finalize implements Protocol. Invalidation counts live on the Simulator
// and are already collected.
func (p *mesiProtocol) Finalize(r *Result) {}

// DataAccess executes one data read or write: reads hit in any state,
// writes hit on an E or M copy (E upgrades to M silently), and everything
// else — including the upgrade of an S copy — walks the directory at the
// home slice.
func (p *mesiProtocol) DataAccess(c *coreState, kind mem.AccessKind, addr mem.Addr) {
	p.dataAccess(p, c, kind, addr)
}

// missPath handles an L1 miss (or upgrade): it consults R-NUCA for the
// home slice and walks the MESI directory there. Every miss ends with a
// private copy in the requester's L1.
func (p *mesiProtocol) missPath(c *coreState, kind mem.AccessKind, addr mem.Addr, upgrade bool) {
	la := mem.LineOf(addr)
	t0 := c.now
	if kind == mem.Write {
		p.meter.L1DWrites++
	} else {
		p.meter.L1DReads++
	}

	// L1 tag probe detected the miss.
	t := t0 + mem.Cycle(p.cfg.L1DLatency)
	var l1l2, wait, sharersLat, offchip mem.Cycle
	l1l2 = t - t0

	home, recl := p.dataHome(addr, c.id)
	if recl != nil {
		p.PageMove(recl, t)
		t += mem.Cycle(p.cfg.PageMoveLatency)
		offchip += mem.Cycle(p.cfg.PageMoveLatency)
	}

	// MESI requests are address-only: the written data stays in the L1
	// until write-back, so the request is a single header flit.
	tArr := p.mesh.Unicast(c.id, home, 1, t)
	l1l2 += tArr - t
	t = tArr

	// The whole home-side transaction — directory walk, sharer round
	// trips, grant — runs under the home tile's lock.
	p.lockHome(home)
	entry, l2line, tDir, wait, fill := p.lookupEntry(p, c, home, la, t)
	offchip += fill
	l1l2 += mem.Cycle(p.cfg.L2Latency)
	t = tDir

	outcome := p.missOutcome(c, la, upgrade)

	if kind == mem.Read {
		// The most recent data must be at the home before a read fill.
		tWB := p.fetchOwnerForRead(home, la, entry, l2line, t)
		sharersLat += tWB - t
		t = tWB
	} else {
		// Write: every other private copy is invalidated.
		tInv := p.invalidateSharers(home, la, entry, l2line, c.id, t)
		sharersLat += tInv - t
		t = tInv
	}

	p.tiles[home].l2.Touch(l2line, t)
	entry.busyUntil = t

	tEnd := p.grantLine(c, kind, la, home, entry, l2line, upgrade, t)
	p.unlockHome(home)
	l1l2 += tEnd - t
	p.setHistory(c.id, la, hCached)

	c.l1d.Record(outcome)
	c.bd.L1ToL2 += float64(l1l2)
	c.bd.L2Waiting += float64(wait)
	c.bd.L2Sharers += float64(sharersLat)
	c.bd.OffChip += float64(offchip)
	if p.cfg.CheckValues {
		if sum := l1l2 + wait + sharersLat + offchip; sum != tEnd-t0 {
			panic(fmt.Sprintf("sim: latency components %d != total %d", sum, tEnd-t0))
		}
	}
	c.now = tEnd
}

// grantLine hands a private copy (or upgraded write permission) to the
// requester and installs it in the L1, evicting as needed. It returns the
// time the reply (tail flit) reaches the requester.
func (p *mesiProtocol) grantLine(c *coreState, kind mem.AccessKind, la mem.Addr, home int,
	entry *dirEntry, l2line *cache.Line, upgrade bool, t mem.Cycle) mem.Cycle {

	if kind == mem.Write && !upgrade {
		// invalidateSharers left the line uncached: a plain Modified fill.
		if entry.sharers.Count() != 0 {
			if !p.relaxed() {
				panic(fmt.Sprintf("sim: write grant with %d live sharers", entry.sharers.Count()))
			}
			// Phantom registrations whose copies vanished under deferred
			// eviction; their acks were already collected.
			entry.sharers.Clear()
		}
		return p.grantModifiedFill(p, c, la, home, entry, l2line, t)
	}

	replyFlits := 9 // header + 8 line flits
	if upgrade {
		replyFlits = 1 // permission only; data already in the L1
	} else {
		p.meter.L2LineReads++
	}

	if kind == mem.Read {
		p.grantRead(c, entry)
	} else {
		// Upgrade: the requester sheds its own sharership and takes the
		// line Modified.
		if entry.sharers.Contains(c.id) {
			entry.sharers.Remove(c.id)
		}
		if entry.sharers.Count() != 0 {
			if !p.relaxed() {
				panic(fmt.Sprintf("sim: write grant with %d live sharers", entry.sharers.Count()))
			}
			entry.sharers.Clear()
		}
		entry.state = coherence.ModifiedState
		entry.owner = int16(c.id)
		p.meter.DirUpdates++
	}

	tEnd := p.mesh.Unicast(home, c.id, replyFlits, t)
	p.lockL1(c.id)
	line := p.installLine(p, c, la, home, l2line, upgrade, tEnd)

	line.Util++
	p.tiles[c.id].l1d.Touch(line, tEnd)
	switch {
	case kind == mem.Write:
		line.State = lineM
		line.Dirty = true
		line.Version = p.goldenWrite(la)
	case entry.state == coherence.ExclusiveState:
		line.State = lineE
	default:
		line.State = lineS
	}
	p.unlockL1(c.id)
	if kind == mem.Read && p.cfg.CheckValues {
		p.checkVersion("private fill read", la, line.Version)
	}
	return tEnd
}

package sim

import (
	"lacc/internal/energy"
	"lacc/internal/mem"
	"lacc/internal/stats"
)

// Result is the outcome of one simulation run.
type Result struct {
	// Protocol names the coherence protocol that produced this result
	// (the registered ProtocolKind).
	Protocol string
	// CompletionCycles is the parallel-region completion time: the maximum
	// finish time over all cores.
	CompletionCycles mem.Cycle
	// Time is the completion-time breakdown summed over all cores
	// (normalize by Cores for per-core averages).
	Time stats.TimeBreakdown
	// Energy is the dynamic energy breakdown of caches, directory and
	// network.
	Energy stats.EnergyBreakdown
	// Meter holds the raw energy event counts behind Energy.
	Meter energy.Meter

	// L1D aggregates data-cache access outcomes over all cores.
	L1D stats.MissStats
	// L1IHits and L1IMisses count instruction fetch line probes.
	L1IHits, L1IMisses uint64

	// InvalidationUtil and EvictionUtil are the Figure 1/2 histograms.
	InvalidationUtil stats.UtilizationHistogram
	EvictionUtil     stats.UtilizationHistogram

	// Protocol activity counters.
	Promotions             uint64 // remote -> private transitions
	Demotions              uint64 // private -> remote transitions
	WordReads              uint64 // reads serviced as remote word accesses
	WordWrites             uint64 // writes serviced as remote word accesses
	Invalidations          uint64
	BroadcastInvalidations uint64
	// UpdateWrites counts per-sharer word updates pushed by a write-update
	// protocol (zero under invalidation-based protocols).
	UpdateWrites uint64
	// SelfInvalidations counts shared copies a core dropped from its own
	// L1 at synchronization points under a self-invalidating protocol
	// (zero otherwise).
	SelfInvalidations uint64

	// Network and DRAM activity.
	RouterFlits, LinkFlits, Messages uint64
	DRAMReads, DRAMWrites            uint64
	DRAMQueueCycles                  uint64

	// R-NUCA activity.
	PrivatePages, SharedPages, Reclassifications uint64

	// Victim-replication activity (zero unless Config.VictimReplication).
	ReplicaHits, ReplicaInserts, ReplicaEvictions uint64

	// DataAccesses counts all L1-D accesses (hits + misses).
	DataAccesses uint64

	// PerCore holds each core's individual statistics (index = core id).
	PerCore []CoreStats
}

// CoreStats is one core's slice of the run statistics.
type CoreStats struct {
	// Finish is the core's local clock when its stream ended.
	Finish mem.Cycle
	// Time is the core's completion-time breakdown.
	Time stats.TimeBreakdown
	// L1D is the core's data-cache outcome mix.
	L1D stats.MissStats
	// L1IHits and L1IMisses count the core's instruction fetch probes.
	L1IHits, L1IMisses uint64
}

// Imbalance returns max/mean core finish time, a load-balance figure of
// merit (1.0 = perfectly balanced).
func (r *Result) Imbalance() float64 {
	if len(r.PerCore) == 0 {
		return 1
	}
	var sum, maxF float64
	for i := range r.PerCore {
		f := float64(r.PerCore[i].Finish)
		sum += f
		if f > maxF {
			maxF = f
		}
	}
	if sum == 0 {
		return 1
	}
	return maxF / (sum / float64(len(r.PerCore)))
}

// PerCoreTime returns the average per-core time breakdown.
func (r *Result) PerCoreTime(cores int) stats.TimeBreakdown {
	if cores <= 0 {
		return r.Time
	}
	return r.Time.Scale(1 / float64(cores))
}

// L1DMissRate returns the L1-D miss rate in percent.
func (r *Result) L1DMissRate() float64 { return r.L1D.Rate() }

package sim

// Flat, allocation-free line-metadata storage for the simulation hot path.
//
// The original core kept every per-line structure in Go maps — the
// directory (map[mem.Addr]*dirEntry per tile), the per-core miss-history
// (map[mem.Addr]uint8) and the golden/DRAM version stores
// (map[mem.Addr]uint64) — plus a freshly allocated sharer list and
// classifier per directory entry. Each data access therefore paid several
// hash-map walks and each new resident line several heap allocations.
//
// This file replaces them with open-addressed tables (linear probing,
// power-of-two capacity, fibonacci hashing of mem.LineKey) whose values
// live inline in the slot array, and with a per-table identity arena that
// backs every directory slot's sharer set. The directory table is
// specialized here (it needs tombstones and the arena); the plain
// key-value stores share internal/flatmap. The map-based layout survives
// unchanged behind the same accessors as the reference core (newReference),
// which the differential tests replay against the flat core to prove
// bit-identical behavior.

import (
	"fmt"
	"math/bits"

	"lacc/internal/coherence"
	"lacc/internal/flatmap"
	"lacc/internal/mem"
)

// hashKey maps a line key to a table index via fibonacci (multiplicative)
// hashing: line keys are near-sequential, and taking the high bits of the
// product spreads consecutive keys across the table.
func hashKey(key uint64, shift uint) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> shift
}

// Directory slot states. Removal leaves a tombstone (dirSlotDead) so probe
// chains stay intact; tombstones are reclaimed by the next grow.
const (
	dirSlotEmpty uint8 = iota
	dirSlotLive
	dirSlotDead
)

type dirSlot struct {
	key   uint64 // mem.LineKey of the line, meaningful when live
	state uint8
	entry dirEntry
}

// dirTable is the flat per-tile directory: an open-addressed table of
// packed dirEntry values. Each slot owns a fixed p-pointer segment of the
// table's identity arena, handed to the slot's sharer set at insert, so a
// directory entry's whole footprint — entry, sharer identities — is two
// flat arrays with no per-entry allocation.
//
// Pointer stability: pointers returned by probe/insert remain valid until
// the next insert (which may grow and relocate the table); remove only
// tombstones a slot and never relocates entries. The protocol layer
// performs at most one insert per transaction (in lookupEntry), before any
// entry pointer is retained.
type dirTable struct {
	slots []dirSlot
	arena []int16 // len(slots) * p sharer identities
	p     int     // sharer pointers per entry
	mask  uint64
	shift uint
	live  int
	dead  int
}

// dirTableInitialSlots matches the old map's size hint.
const dirTableInitialSlots = 1024

func newDirTable(p int) *dirTable {
	d := &dirTable{p: p}
	d.alloc(dirTableInitialSlots)
	return d
}

func (d *dirTable) alloc(capacity int) {
	d.slots = make([]dirSlot, capacity)
	d.arena = make([]int16, capacity*d.p)
	d.mask = uint64(capacity - 1)
	d.shift = uint(64 - bits.TrailingZeros(uint(capacity)))
	d.live, d.dead = 0, 0
}

// backing returns slot i's segment of the identity arena, zero-length with
// capacity p.
func (d *dirTable) backing(i uint64) []int16 {
	base := int(i) * d.p
	return d.arena[base : base : base+d.p]
}

func (d *dirTable) probe(la mem.Addr) *dirEntry {
	key := mem.LineKey(la)
	i := hashKey(key, d.shift)
	for {
		s := &d.slots[i]
		if s.state == dirSlotLive && s.key == key {
			return &s.entry
		}
		if s.state == dirSlotEmpty {
			return nil
		}
		i = (i + 1) & d.mask
	}
}

// insert claims a slot for la and returns its entry, zeroed except for the
// arena-backed sharer set. The line must not be present.
func (d *dirTable) insert(la mem.Addr) *dirEntry {
	if (d.live+d.dead+1)*4 > len(d.slots)*3 {
		d.grow()
	}
	key := mem.LineKey(la)
	i := hashKey(key, d.shift)
	target := -1 // first tombstone on the probe path, reusable
	for {
		s := &d.slots[i]
		if s.state == dirSlotEmpty {
			if target < 0 {
				target = int(i)
			}
			break
		}
		if s.state == dirSlotLive {
			if s.key == key {
				panic(fmt.Sprintf("sim: directory insert of resident line %#x", la))
			}
		} else if target < 0 {
			target = int(i)
		}
		i = (i + 1) & d.mask
	}
	s := &d.slots[target]
	if s.state == dirSlotDead {
		d.dead--
	}
	s.key = key
	s.state = dirSlotLive
	s.entry = dirEntry{sharers: coherence.NewSharerSetBacked(d.p, d.backing(uint64(target)))}
	d.live++
	return &s.entry
}

// remove tombstones la's slot. The line must be present.
func (d *dirTable) remove(la mem.Addr) {
	key := mem.LineKey(la)
	i := hashKey(key, d.shift)
	for {
		s := &d.slots[i]
		if s.state == dirSlotLive && s.key == key {
			s.entry = dirEntry{}
			s.key = 0
			s.state = dirSlotDead
			d.live--
			d.dead++
			return
		}
		if s.state == dirSlotEmpty {
			panic(fmt.Sprintf("sim: directory remove of absent line %#x", la))
		}
		i = (i + 1) & d.mask
	}
}

// grow rehashes into a table sized for the live population (doubling when
// genuinely full, merely dropping tombstones otherwise), rebinding every
// entry's sharer identities into the new arena.
func (d *dirTable) grow() {
	capacity := len(d.slots)
	if (d.live+1)*2 >= capacity {
		capacity *= 2
	}
	old := d.slots
	d.alloc(capacity)
	for oi := range old {
		s := &old[oi]
		if s.state != dirSlotLive {
			continue
		}
		i := hashKey(s.key, d.shift)
		for d.slots[i].state == dirSlotLive {
			i = (i + 1) & d.mask
		}
		ns := &d.slots[i]
		ns.key = s.key
		ns.state = dirSlotLive
		ns.entry = s.entry
		ns.entry.sharers.Rebind(d.backing(i))
		d.live++
	}
}

// clearAll empties the table, keeping its grown capacity. Sharer-identity
// arena contents need no wiping: every insert rebinds the slot's segment as
// a zero-length set.
func (d *dirTable) clearAll() {
	clear(d.slots)
	d.live, d.dead = 0, 0
}

func (d *dirTable) forEach(fn func(la mem.Addr, e *dirEntry)) {
	for i := range d.slots {
		if d.slots[i].state == dirSlotLive {
			fn(mem.Addr((d.slots[i].key-1)<<mem.LineShift), &d.slots[i].entry)
		}
	}
}

// tileDir is the per-tile directory handle: the flat table in the fast
// core, a plain Go map in the reference core. Exactly one of the two
// representations is active.
type tileDir struct {
	flat *dirTable
	ref  map[mem.Addr]*dirEntry
	p    int
}

func newTileDir(p int, reference bool) tileDir {
	if reference {
		return tileDir{ref: make(map[mem.Addr]*dirEntry, dirTableInitialSlots), p: p}
	}
	return tileDir{flat: newDirTable(p), p: p}
}

func (d *tileDir) probe(la mem.Addr) *dirEntry {
	if d.ref != nil {
		return d.ref[la]
	}
	return d.flat.probe(la)
}

func (d *tileDir) insert(la mem.Addr) *dirEntry {
	if d.ref != nil {
		e := &dirEntry{sharers: coherence.NewSharerSet(d.p)}
		d.ref[la] = e
		return e
	}
	return d.flat.insert(la)
}

func (d *tileDir) remove(la mem.Addr) {
	if d.ref != nil {
		delete(d.ref, la)
		return
	}
	d.flat.remove(la)
}

func (d *tileDir) forEach(fn func(la mem.Addr, e *dirEntry)) {
	if d.ref != nil {
		for la, e := range d.ref {
			fn(la, e)
		}
		return
	}
	d.flat.forEach(fn)
}

func (d *tileDir) size() int {
	if d.ref != nil {
		return len(d.ref)
	}
	return d.flat.live
}

// clear empties the directory for simulator reuse (Simulator.Reset).
func (d *tileDir) clear() {
	if d.ref != nil {
		clear(d.ref)
		return
	}
	d.flat.clearAll()
}

// The per-core miss-classification history and the golden/DRAM version
// stores are flatmap.Tables keyed by mem.LineKey: absent lines read as the
// zero value, matching the reference maps' semantics.

// histInitialSlots matches the old per-core history map's size hint.
const histInitialSlots = 4096

const verInitialSlots = 4096

// histStore is the per-core history handle: flat table or reference map.
type histStore struct {
	flat *flatmap.Table[uint8]
	ref  map[mem.Addr]uint8
}

func newHistStore(reference bool) histStore {
	if reference {
		return histStore{ref: make(map[mem.Addr]uint8, histInitialSlots)}
	}
	return histStore{flat: flatmap.New[uint8](histInitialSlots)}
}

func (h *histStore) get(la mem.Addr) uint8 {
	if h.ref != nil {
		return h.ref[la]
	}
	v, _ := h.flat.Get(mem.LineKey(la))
	return v
}

func (h *histStore) set(la mem.Addr, v uint8) {
	if h.ref != nil {
		h.ref[la] = v
		return
	}
	*h.flat.Slot(mem.LineKey(la)) = v
}

// clear empties the history for core-state reuse across runs.
func (h *histStore) clear() {
	if h.ref != nil {
		clear(h.ref)
		return
	}
	h.flat.Clear()
}

// verStore is a version-store handle: flat table or reference map.
type verStore struct {
	flat *flatmap.Table[uint64]
	ref  map[mem.Addr]uint64
}

func newVerStore(reference bool) verStore {
	if reference {
		return verStore{ref: make(map[mem.Addr]uint64)}
	}
	return verStore{flat: flatmap.New[uint64](verInitialSlots)}
}

func (v *verStore) get(la mem.Addr) uint64 {
	if v.ref != nil {
		return v.ref[la]
	}
	val, _ := v.flat.Get(mem.LineKey(la))
	return val
}

func (v *verStore) set(la mem.Addr, val uint64) {
	if v.ref != nil {
		v.ref[la] = val
		return
	}
	*v.flat.Slot(mem.LineKey(la)) = val
}

// clear empties the store for simulator reuse (Simulator.Reset).
func (v *verStore) clear() {
	if v.ref != nil {
		clear(v.ref)
		return
	}
	v.flat.Clear()
}

// bump increments la's version and returns the new value.
func (v *verStore) bump(la mem.Addr) uint64 {
	if v.ref != nil {
		v.ref[la]++
		return v.ref[la]
	}
	p := v.flat.Slot(mem.LineKey(la))
	*p++
	return *p
}

// forEach visits every line with a non-zero recorded version (test and
// differential-snapshot helper; zero-version entries created by Slot are
// indistinguishable from absent lines, matching map semantics where reads
// never materialize entries).
func (v *verStore) forEach(fn func(la mem.Addr, val uint64)) {
	if v.ref != nil {
		for la, val := range v.ref {
			if val != 0 {
				fn(la, val)
			}
		}
		return
	}
	v.flat.ForEach(func(key uint64, val uint64) {
		if val != 0 {
			fn(mem.Addr((key-1)<<mem.LineShift), val)
		}
	})
}

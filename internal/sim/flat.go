package sim

// Flat, allocation-free line-metadata storage for the simulation hot path.
//
// The original core kept every per-line structure in Go maps — the
// directory (map[mem.Addr]*dirEntry per tile), the per-core miss-history
// (map[mem.Addr]uint8) and the golden/DRAM version stores
// (map[mem.Addr]uint64) — plus a freshly allocated sharer list and
// classifier per directory entry. Each data access therefore paid several
// hash-map walks and each new resident line several heap allocations.
//
// This file replaces them with open-addressed tables (linear probing,
// power-of-two capacity, fibonacci hashing of mem.LineKey) whose values
// live inline in the slot array, and with a per-table identity arena that
// backs every directory slot's sharer set. The directory table is
// specialized here (it needs tombstones and the arena); the plain
// key-value stores share internal/flatmap. The map-based layout survives
// unchanged behind the same accessors as the reference core (newReference),
// which the differential tests replay against the flat core to prove
// bit-identical behavior.

import (
	"fmt"
	"math/bits"

	"lacc/internal/coherence"
	"lacc/internal/flatmap"
	"lacc/internal/mem"
)

// hashKey maps a line key to a table index via fibonacci (multiplicative)
// hashing: line keys are near-sequential, and taking the high bits of the
// product spreads consecutive keys across the table.
func hashKey(key uint64, shift uint) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> shift
}

// Directory key sentinels. A slot's key word is authoritative for its
// state: 0 is a free slot, all-ones a tombstone (removal leaves one so
// probe chains stay intact; tombstones are reclaimed by the next grow) and
// anything else the mem.LineKey of the resident line. Neither sentinel
// collides with a real key: LineKey is index+1 (never 0) of a 48-bit
// address (never 2^64-1).
const (
	dirKeyEmpty = uint64(0)
	dirKeyDead  = ^uint64(0)
)

// dirTable is the flat per-tile directory: an open-addressed table whose
// keys and entries live in parallel arrays — probe chains scan the packed
// 8-byte key array (several slots per hardware cache line) and touch an
// 80-byte dirEntry record only on the final hit, mirroring the cache
// package's packed tag arrays. Each slot owns a fixed p-pointer segment of
// the table's identity arena, handed to the slot's sharer set at insert,
// so a directory entry's whole footprint — entry, sharer identities — is
// flat arrays with no per-entry allocation. Because the key array is
// authoritative, wholesale clearing only wipes keys: entry records behind
// free slots are unreachable and re-initialized on insertion.
//
// Pointer stability: pointers returned by probe/insert remain valid until
// the next insert (which may grow and relocate the table); remove only
// tombstones a slot and never relocates entries. The protocol layer
// performs at most one insert per transaction (in lookupEntry), before any
// entry pointer is retained.
type dirTable struct {
	keys    []uint64   // dirKeyEmpty, dirKeyDead, or mem.LineKey
	entries []dirEntry // parallel to keys
	arena   []int16    // len(keys) * p sharer identities
	p       int        // sharer pointers per entry
	mask    uint64
	shift   uint
	live    int
	dead    int
	// epoch counts array reallocations (grow, reshape). Probe hints held
	// outside the table (coreState.dirHint*) carry the epoch they were
	// taken under and die when it moves on, so they can never index into
	// an abandoned array.
	epoch uint32
}

// dirTableInitialSlots matches the old map's size hint.
const dirTableInitialSlots = 1024

func newDirTable(p int) *dirTable {
	d := &dirTable{p: p}
	d.alloc(dirTableInitialSlots)
	return d
}

func (d *dirTable) alloc(capacity int) {
	d.keys = make([]uint64, capacity)
	d.entries = make([]dirEntry, capacity)
	d.arena = make([]int16, capacity*d.p)
	d.mask = uint64(capacity - 1)
	d.shift = uint(64 - bits.TrailingZeros(uint(capacity)))
	d.live, d.dead = 0, 0
	d.epoch++
}

// backing returns slot i's segment of the identity arena, zero-length with
// capacity p.
func (d *dirTable) backing(i uint64) []int16 {
	base := int(i) * d.p
	return d.arena[base : base : base+d.p]
}

func (d *dirTable) probe(la mem.Addr) *dirEntry {
	if i := d.probeIdx(la); i >= 0 {
		return &d.entries[i]
	}
	return nil
}

// probeIdx returns la's live slot index, or -1. Exposed (package-
// internally) so lookupEntry can keep an epoch-guarded index hint per
// core. Tombstoned keys match nothing and keep the chain walking.
func (d *dirTable) probeIdx(la mem.Addr) int {
	key := mem.LineKey(la)
	i := hashKey(key, d.shift)
	for {
		switch d.keys[i] {
		case key:
			return int(i)
		case dirKeyEmpty:
			return -1
		}
		i = (i + 1) & d.mask
	}
}

// insert claims a slot for la and returns its entry, zeroed except for the
// arena-backed sharer set. The line must not be present.
func (d *dirTable) insert(la mem.Addr) *dirEntry {
	if (d.live+d.dead+1)*4 > len(d.keys)*3 {
		d.grow()
	}
	key := mem.LineKey(la)
	i := hashKey(key, d.shift)
	target := -1 // first tombstone on the probe path, reusable
	for {
		switch d.keys[i] {
		case key:
			panic(fmt.Sprintf("sim: directory insert of resident line %#x", la))
		case dirKeyEmpty:
			if target < 0 {
				target = int(i)
			}
		case dirKeyDead:
			if target < 0 {
				target = int(i)
			}
			i = (i + 1) & d.mask
			continue
		default:
			i = (i + 1) & d.mask
			continue
		}
		break
	}
	if d.keys[target] == dirKeyDead {
		d.dead--
	}
	d.keys[target] = key
	d.entries[target] = dirEntry{sharers: coherence.NewSharerSetBacked(d.p, d.backing(uint64(target)))}
	d.live++
	return &d.entries[target]
}

// remove tombstones la's slot. The line must be present.
func (d *dirTable) remove(la mem.Addr) {
	i := d.probeIdx(la)
	if i < 0 {
		panic(fmt.Sprintf("sim: directory remove of absent line %#x", la))
	}
	d.entries[i] = dirEntry{}
	d.keys[i] = dirKeyDead
	d.live--
	d.dead++
}

// grow rehashes into a table sized for the live population (doubling when
// genuinely full, merely dropping tombstones otherwise), rebinding every
// entry's sharer identities into the new arena.
func (d *dirTable) grow() {
	capacity := len(d.keys)
	if (d.live+1)*2 >= capacity {
		capacity *= 2
	}
	oldKeys, oldEntries := d.keys, d.entries
	d.alloc(capacity)
	for oi, key := range oldKeys {
		if key == dirKeyEmpty || key == dirKeyDead {
			continue
		}
		i := hashKey(key, d.shift)
		for d.keys[i] != dirKeyEmpty {
			i = (i + 1) & d.mask
		}
		d.keys[i] = key
		d.entries[i] = oldEntries[oi]
		d.entries[i].sharers.Rebind(d.backing(i))
		d.live++
	}
}

// clearAll empties the table, keeping its grown capacity. Only the key
// array is wiped: entry records behind freed slots are unreachable (probe,
// forEach and insert all gate on keys) and re-initialized on insertion,
// and the sharer-identity arena needs no wiping either — every insert
// rebinds the slot's segment as a zero-length set.
func (d *dirTable) clearAll() {
	if d.live == 0 && d.dead == 0 {
		return
	}
	clear(d.keys)
	d.live, d.dead = 0, 0
}

// reshape empties the table and re-carves its identity arena for a new
// per-entry pointer count, reusing the slot array (whose capacity is the
// dominant allocation). Sweeps that flip between ACKwise-p and full-map
// variants reshape instead of rebuilding.
func (d *dirTable) reshape(p int) {
	d.clearAll()
	if p == d.p {
		return
	}
	d.p = p
	if need := len(d.keys) * p; cap(d.arena) >= need {
		d.arena = d.arena[:need]
	} else {
		d.arena = make([]int16, need)
	}
}

func (d *dirTable) forEach(fn func(la mem.Addr, e *dirEntry)) {
	for i, key := range d.keys {
		if key != dirKeyEmpty && key != dirKeyDead {
			fn(mem.Addr((key-1)<<mem.LineShift), &d.entries[i])
		}
	}
}

// tileDir is the per-tile directory handle: the flat table in the fast
// core, a plain Go map in the reference core. Exactly one of the two
// representations is active.
type tileDir struct {
	flat *dirTable
	ref  map[mem.Addr]*dirEntry
	p    int
}

func newTileDir(p int, reference bool) tileDir {
	if reference {
		return tileDir{ref: make(map[mem.Addr]*dirEntry, dirTableInitialSlots), p: p}
	}
	return tileDir{flat: newDirTable(p), p: p}
}

func (d *tileDir) probe(la mem.Addr) *dirEntry {
	if d.ref != nil {
		return d.ref[la]
	}
	return d.flat.probe(la)
}

func (d *tileDir) insert(la mem.Addr) *dirEntry {
	if d.ref != nil {
		e := &dirEntry{sharers: coherence.NewSharerSet(d.p)}
		d.ref[la] = e
		return e
	}
	return d.flat.insert(la)
}

func (d *tileDir) remove(la mem.Addr) {
	if d.ref != nil {
		delete(d.ref, la)
		return
	}
	d.flat.remove(la)
}

func (d *tileDir) forEach(fn func(la mem.Addr, e *dirEntry)) {
	if d.ref != nil {
		for la, e := range d.ref {
			fn(la, e)
		}
		return
	}
	d.flat.forEach(fn)
}

func (d *tileDir) size() int {
	if d.ref != nil {
		return len(d.ref)
	}
	return d.flat.live
}

// clear empties the directory for simulator reuse (Simulator.Reset).
func (d *tileDir) clear() {
	if d.ref != nil {
		clear(d.ref)
		return
	}
	d.flat.clearAll()
}

// reshape empties the directory and adopts a new per-entry pointer count,
// reusing storage where the representation allows (see dirTable.reshape).
func (d *tileDir) reshape(p int) {
	d.p = p
	if d.ref != nil {
		clear(d.ref)
		return
	}
	d.flat.reshape(p)
}

// The per-core miss-classification history and the golden/DRAM version
// stores are flatmap.Tables keyed by mem.LineKey: absent lines read as the
// zero value, matching the reference maps' semantics.

// histInitialSlots matches the old per-core history map's size hint.
const histInitialSlots = 4096

const verInitialSlots = 4096

// histStore is the per-core history handle: flat table or reference map.
type histStore struct {
	flat *flatmap.Table[uint8]
	ref  map[mem.Addr]uint8
}

func newHistStore(reference bool) histStore {
	if reference {
		return histStore{ref: make(map[mem.Addr]uint8, histInitialSlots)}
	}
	return histStore{flat: flatmap.New[uint8](histInitialSlots)}
}

func (h *histStore) get(la mem.Addr) uint8 {
	if h.ref != nil {
		return h.ref[la]
	}
	v, _ := h.flat.Get(mem.LineKey(la))
	return v
}

func (h *histStore) set(la mem.Addr, v uint8) {
	if h.ref != nil {
		h.ref[la] = v
		return
	}
	*h.flat.Slot(mem.LineKey(la)) = v
}

// clear empties the history for core-state reuse across runs.
func (h *histStore) clear() {
	if h.ref != nil {
		clear(h.ref)
		return
	}
	h.flat.Clear()
}

// verStore is a version-store handle: flat table or reference map.
type verStore struct {
	flat *flatmap.Table[uint64]
	ref  map[mem.Addr]uint64
}

func newVerStore(reference bool) verStore {
	if reference {
		return verStore{ref: make(map[mem.Addr]uint64)}
	}
	return verStore{flat: flatmap.New[uint64](verInitialSlots)}
}

func (v *verStore) get(la mem.Addr) uint64 {
	if v.ref != nil {
		return v.ref[la]
	}
	val, _ := v.flat.Get(mem.LineKey(la))
	return val
}

func (v *verStore) set(la mem.Addr, val uint64) {
	if v.ref != nil {
		v.ref[la] = val
		return
	}
	*v.flat.Slot(mem.LineKey(la)) = val
}

// clear empties the store for simulator reuse (Simulator.Reset).
func (v *verStore) clear() {
	if v.ref != nil {
		clear(v.ref)
		return
	}
	v.flat.Clear()
}

// bump increments la's version and returns the new value.
func (v *verStore) bump(la mem.Addr) uint64 {
	if v.ref != nil {
		v.ref[la]++
		return v.ref[la]
	}
	p := v.flat.Slot(mem.LineKey(la))
	*p++
	return *p
}

// forEach visits every line with a non-zero recorded version (test and
// differential-snapshot helper; zero-version entries created by Slot are
// indistinguishable from absent lines, matching map semantics where reads
// never materialize entries).
func (v *verStore) forEach(fn func(la mem.Addr, val uint64)) {
	if v.ref != nil {
		for la, val := range v.ref {
			if val != 0 {
				fn(la, val)
			}
		}
		return
	}
	v.flat.ForEach(func(key uint64, val uint64) {
		if val != 0 {
			fn(mem.Addr((key-1)<<mem.LineShift), val)
		}
	})
}

package sim_test

import (
	"testing"

	"lacc/internal/mem"
	"lacc/internal/sim"
	"lacc/internal/trace"
	"lacc/internal/workloads"
)

// vrConfig returns a small machine with Victim Replication enabled on the
// baseline protocol (PCT 1), the configuration the Section 2.1 comparison
// uses.
func vrConfig(cores, width int) sim.Config {
	cfg := testConfig(cores, width)
	cfg.VictimReplication = true
	cfg.Protocol.PCT = 1
	return cfg
}

// TestVictimReplicationRoundTrip drives the full replica life cycle on a
// 2-core machine: core 0's shared lines are evicted by set conflicts,
// replicated into its local L2 slice, and re-reads are serviced from the
// replicas without touching the home.
func TestVictimReplicationRoundTrip(t *testing.T) {
	cfg := vrConfig(2, 2)
	addrs := conflictAddrs(6)

	// Core 1 touches every page first so none of the lines are homed by
	// first-touch at core 0 (replication to the home slice is pointless and
	// skipped).
	var prime []mem.Access
	for _, a := range addrs {
		prime = append(prime, rd(a+64))
	}
	// Core 0 then walks the conflict set three times: pass 1 installs and
	// evicts (replicating), passes 2-3 hit the replicas.
	var ops []mem.Access
	for pass := 0; pass < 3; pass++ {
		for _, a := range addrs {
			gap := uint32(0)
			if pass == 0 {
				gap = 1000 // let core 1's first touches win the pages
			}
			ops = append(ops, mem.Access{Kind: mem.Read, Addr: a, Gap: gap})
		}
	}
	res := run(t, cfg, accs(ops...), accs(prime...))
	if res.ReplicaInserts == 0 {
		t.Fatal("no replicas were created by conflict evictions")
	}
	if res.ReplicaHits == 0 {
		t.Fatal("re-reads never hit the local replicas")
	}
	if res.WordReads != 0 {
		t.Fatalf("VR at PCT 1 produced %d word reads", res.WordReads)
	}
}

// TestVictimReplicationWriteInvalidatesReplicas checks coherence: a write
// by another core must invalidate replicas exactly like L1 copies (the
// golden-store checker would catch a stale replica read).
func TestVictimReplicationWriteInvalidatesReplicas(t *testing.T) {
	cfg := vrConfig(2, 2)
	addrs := conflictAddrs(6)
	target := addrs[0]

	// Core 1 first-touches every page so core 0's lines are remotely homed
	// (locally homed lines are never replicated).
	var core1 []mem.Access
	for _, a := range addrs {
		core1 = append(core1, rd(a+64))
	}
	core1 = append(core1, mem.Access{Kind: mem.Write, Addr: target, Gap: 30000})

	var core0 []mem.Access
	// Install and conflict-evict target so a replica exists.
	for _, a := range addrs {
		core0 = append(core0, mem.Access{Kind: mem.Read, Addr: a, Gap: 1000})
	}
	// Re-read after core 1's write: must observe the fresh version.
	core0 = append(core0, mem.Access{Kind: mem.Read, Addr: target, Gap: 60000})

	res := run(t, cfg, accs(core0...), accs(core1...))
	if res.Invalidations == 0 {
		t.Fatal("the write invalidated nothing")
	}
	// The golden checker ran (CheckValues is on in testConfig): reaching
	// here means the re-read observed the committed write.
	if res.ReplicaInserts == 0 {
		t.Fatal("scenario never created a replica")
	}
}

// TestVictimReplicationReducesTraffic pins VR's selling point on a
// re-read-after-evict workload over *shared* data (R-NUCA already homes
// private pages locally, so VR only matters for shared pages): matmul's
// single-use B column lines are re-read by the next column and VR services
// them from local replicas, cutting network flits versus the baseline.
func TestVictimReplicationReducesTraffic(t *testing.T) {
	spec := workloads.Spec{Cores: 16, Scale: 0.25, Seed: 1}
	w := workloads.MustByName("matmul")

	base := testConfig(16, 4)
	base.Protocol.PCT = 1
	baseRes := run(t, base, w.Streams(spec)...)

	vr := vrConfig(16, 4)
	vrRes := run(t, vr, w.Streams(spec)...)

	if vrRes.ReplicaHits == 0 {
		t.Fatal("VR produced no replica hits on a streaming re-read workload")
	}
	if vrRes.LinkFlits >= baseRes.LinkFlits {
		t.Errorf("VR link flits %d not below baseline %d", vrRes.LinkFlits, baseRes.LinkFlits)
	}
	if vrRes.CompletionCycles >= baseRes.CompletionCycles {
		t.Errorf("VR completion %d not below baseline %d on its best-case workload",
			vrRes.CompletionCycles, baseRes.CompletionCycles)
	}
}

// TestVictimReplicationAllWorkloads runs every benchmark under VR with the
// golden-store checker on — the functional correctness argument for the
// variant protocol.
func TestVictimReplicationAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("VR workload sweep skipped in -short mode")
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cfg := vrConfig(16, 4)
			res := run(t, cfg, w.Streams(workloads.Spec{Cores: 16, Scale: 0.1, Seed: 2})...)
			if res.DataAccesses == 0 {
				t.Fatal("no data accesses simulated")
			}
		})
	}
}

// TestVictimReplicationWithAdaptiveProtocol checks VR composes with the
// locality-aware protocol (PCT 4) without violating coherence.
func TestVictimReplicationWithAdaptiveProtocol(t *testing.T) {
	cfg := vrConfig(16, 4)
	cfg.Protocol.PCT = 4
	w := workloads.MustByName("streamcluster")
	res := run(t, cfg, w.Streams(workloads.Spec{Cores: 16, Scale: 0.15, Seed: 1})...)
	if res.WordReads == 0 && res.WordWrites == 0 {
		t.Fatal("adaptive protocol inactive under VR")
	}
}

// TestReplicaEvictionNotifiesHome forces replica displacement (tiny L2) and
// verifies the directory bookkeeping survives (exactness is enforced by
// the simulator's panics on absent lines).
func TestReplicaEvictionNotifiesHome(t *testing.T) {
	cfg := vrConfig(4, 2)
	cfg.L2SizeKB = 4 // 64-line slices: replicas are displaced quickly
	cfg.L1DSizeKB = 1
	w := workloads.MustByName("canneal")
	res := run(t, cfg, w.Streams(workloads.Spec{Cores: 4, Scale: 0.1, Seed: 3})...)
	if res.ReplicaInserts == 0 {
		t.Skip("no replicas created at this configuration")
	}
	// With 64-line slices, insertions inevitably displace replicas.
	if res.ReplicaEvictions == 0 {
		t.Error("replicas were never displaced from the tiny L2 slices")
	}
}

// TestVRStreamIsolation makes sure VR never replicates lines homed at the
// local slice (the data is already there).
func TestVRStreamIsolation(t *testing.T) {
	cfg := vrConfig(1, 1)
	addrs := conflictAddrs(6)
	var ops []mem.Access
	for pass := 0; pass < 2; pass++ {
		for _, a := range addrs {
			ops = append(ops, rd(a))
		}
	}
	res := run(t, cfg, accs(ops...))
	// Single core: every page is private and homed locally.
	if res.ReplicaInserts != 0 {
		t.Fatalf("replicated %d locally-homed lines", res.ReplicaInserts)
	}
}

var _ = trace.FromSlice // keep the import for helpers above

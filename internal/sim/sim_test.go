package sim_test

import (
	"strings"
	"testing"

	"lacc/internal/mem"
	"lacc/internal/sim"
	"lacc/internal/stats"
	"lacc/internal/trace"
	"lacc/internal/workloads"
)

// testConfig returns a small machine: `cores` tiles on a `width`-wide mesh
// with Table 1 cache geometry and the protocol defaults.
func testConfig(cores, width int) sim.Config {
	cfg := sim.Default()
	cfg.Cores = cores
	cfg.MeshWidth = width
	cfg.MemControllers = 1
	if cores >= 2 {
		cfg.MemControllers = 2
	}
	return cfg
}

// run executes streams (padded with empty streams to the core count) and
// fails the test on error.
func run(t *testing.T, cfg sim.Config, streams ...trace.Stream) *sim.Result {
	t.Helper()
	for len(streams) < cfg.Cores {
		streams = append(streams, trace.FromSlice(nil))
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run(streams)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// accs builds a slice stream from (kind, addr) pairs.
func accs(ops ...mem.Access) trace.Stream { return trace.FromSlice(ops) }

func rd(a mem.Addr) mem.Access { return mem.Access{Kind: mem.Read, Addr: a} }
func wr(a mem.Addr) mem.Access { return mem.Access{Kind: mem.Write, Addr: a} }

// base is a data address away from page 0.
const base mem.Addr = 1 << 22

func TestSingleCoreReadAfterWrite(t *testing.T) {
	res := run(t, testConfig(1, 1), accs(wr(base), rd(base), rd(base+8)))
	if res.DataAccesses != 3 {
		t.Fatalf("DataAccesses = %d, want 3", res.DataAccesses)
	}
	// The write cold-misses; both reads hit the installed M line.
	if res.L1D.Hits != 2 || res.L1D.TotalMisses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", res.L1D.Hits, res.L1D.TotalMisses())
	}
	if res.L1D.Misses[0] != 1 { // cold
		t.Fatalf("miss breakdown = %v, want one cold miss", res.L1D.Misses)
	}
	if res.CompletionCycles == 0 {
		t.Fatal("zero completion time")
	}
}

func TestBaselinePCT1NeverDemotes(t *testing.T) {
	cfg := testConfig(16, 4)
	cfg.Protocol.PCT = 1
	w := workloads.MustByName("streamcluster")
	res := run(t, cfg, w.Streams(workloads.Spec{Cores: 16, Scale: 0.1, Seed: 3})...)
	if res.WordReads != 0 || res.WordWrites != 0 {
		t.Fatalf("PCT 1 produced word accesses: %d reads, %d writes", res.WordReads, res.WordWrites)
	}
	if res.Demotions != 0 || res.Promotions != 0 {
		t.Fatalf("PCT 1 produced transitions: %d demotions, %d promotions", res.Demotions, res.Promotions)
	}
}

// conflictAddrs returns n addresses mapping to the same L1-D set within one
// page, for the Table 1 geometry (32 KB, 4-way: 128 sets, 8 KB stride is
// too large for a page, so we use distinct pages — one address per page is
// still one line per set way).
func conflictAddrs(n int) []mem.Addr {
	// 128 sets x 64 B = 8192 B stride keeps the set index constant.
	out := make([]mem.Addr, n)
	for i := range out {
		out[i] = base + mem.Addr(i)*128*64
	}
	return out
}

func TestEvictionDemotesAndConvertsToWordMisses(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.Protocol.PCT = 4
	addrs := conflictAddrs(6) // 6 lines into a 4-way set: evictions guaranteed

	// Three passes over the conflict set: pass 1 installs (cold) and evicts
	// with utilization 1, demoting every line; pass 2 misses again
	// (capacity) and is serviced remotely; pass 3 stays remote (word).
	var ops []mem.Access
	for pass := 0; pass < 3; pass++ {
		for _, a := range addrs {
			ops = append(ops, rd(a))
		}
	}
	res := run(t, cfg, accs(ops...))
	if res.Demotions == 0 {
		t.Fatal("no demotions after single-use evictions")
	}
	if res.WordReads == 0 {
		t.Fatal("no remote word reads after demotion")
	}
	if res.L1D.Misses[4] == 0 { // word misses
		t.Fatalf("miss breakdown %v has no word misses", res.L1D.Misses)
	}
	if res.EvictionUtil.Total() == 0 {
		t.Fatal("eviction utilization histogram empty")
	}
	if res.EvictionUtil.Buckets[0] == 0 {
		t.Fatalf("eviction histogram %v: expected utilization-1 entries", res.EvictionUtil.Buckets)
	}
}

func TestHighUtilizationStaysPrivate(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.Protocol.PCT = 4
	addrs := conflictAddrs(6)
	// Each line is read 8 times before moving on: utilization 8 >= PCT, so
	// evictions classify the core private and no word misses appear.
	var ops []mem.Access
	for pass := 0; pass < 3; pass++ {
		for _, a := range addrs {
			for k := 0; k < 8; k++ {
				ops = append(ops, rd(a))
			}
		}
	}
	res := run(t, cfg, accs(ops...))
	if res.WordReads != 0 {
		t.Fatalf("well-utilized lines were serviced remotely: %d word reads", res.WordReads)
	}
	if res.Demotions != 0 {
		t.Fatalf("well-utilized lines demoted %d times", res.Demotions)
	}
}

func TestWriteInvalidatesAllSharers(t *testing.T) {
	cfg := testConfig(4, 2)
	line := base
	// Cores 0..2 read the line; core 3 writes it afterwards (gaps order the
	// accesses), invalidating three private sharers.
	streams := []trace.Stream{
		accs(rd(line)),
		accs(mem.Access{Kind: mem.Read, Addr: line, Gap: 100}),
		accs(mem.Access{Kind: mem.Read, Addr: line, Gap: 200}),
		accs(mem.Access{Kind: mem.Write, Addr: line, Gap: 10000}),
	}
	res := run(t, cfg, streams...)
	if res.Invalidations != 3 {
		t.Fatalf("Invalidations = %d, want 3", res.Invalidations)
	}
	if res.InvalidationUtil.Total() != 3 {
		t.Fatalf("invalidation histogram total = %d, want 3", res.InvalidationUtil.Total())
	}
}

func TestSharingMissClassification(t *testing.T) {
	cfg := testConfig(2, 2)
	line := base
	streams := []trace.Stream{
		// Core 0: read, then (after the invalidation) read again.
		accs(rd(line), mem.Access{Kind: mem.Read, Addr: line, Gap: 20000}),
		// Core 1: write in between.
		accs(mem.Access{Kind: mem.Write, Addr: line, Gap: 5000}),
	}
	res := run(t, cfg, streams...)
	if res.L1D.Misses[3] != 1 { // sharing
		t.Fatalf("miss breakdown %v, want exactly one sharing miss", res.L1D.Misses)
	}
}

func TestUpgradeMiss(t *testing.T) {
	cfg := testConfig(2, 2)
	line := base + 128
	streams := []trace.Stream{
		// Core 0 first touches the page, core 1's touch reclassifies it to
		// shared (invalidating core 0's first line via the page move). Both
		// cores then read `line` (Shared), and core 0's write upgrades its S
		// copy, invalidating the other sharer.
		accs(rd(base),
			mem.Access{Kind: mem.Read, Addr: line, Gap: 10000},
			mem.Access{Kind: mem.Write, Addr: line, Gap: 20000}),
		accs(mem.Access{Kind: mem.Read, Addr: base + 64, Gap: 5000},
			mem.Access{Kind: mem.Read, Addr: line, Gap: 10000}),
	}
	res := run(t, cfg, streams...)
	if res.L1D.Misses[2] != 1 { // upgrade
		t.Fatalf("miss breakdown %v, want exactly one upgrade miss", res.L1D.Misses)
	}
	// Two invalidations: core 0's first line during the page move, and core
	// 1's S copy on the upgrade.
	if res.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want 2", res.Invalidations)
	}
}

func TestAckwiseOverflowBroadcasts(t *testing.T) {
	cfg := testConfig(8, 4)
	cfg.AckwisePointers = 2
	line := base
	streams := make([]trace.Stream, 8)
	for c := 0; c < 7; c++ {
		streams[c] = accs(mem.Access{Kind: mem.Read, Addr: line, Gap: uint32(100 * (c + 1))})
	}
	streams[7] = accs(mem.Access{Kind: mem.Write, Addr: line, Gap: 50000})
	res := run(t, cfg, streams...)
	if res.BroadcastInvalidations == 0 {
		t.Fatal("7 sharers on 2 pointers did not broadcast")
	}
	if res.Invalidations != 7 {
		t.Fatalf("Invalidations = %d, want 7 acknowledgements", res.Invalidations)
	}
}

func TestFullMapMatchesAckwise(t *testing.T) {
	spec := workloads.Spec{Cores: 16, Scale: 0.1, Seed: 5}
	w := workloads.MustByName("dijkstra-ss")
	limited := testConfig(16, 4)
	limited.AckwisePointers = 4
	fullmap := testConfig(16, 4)
	fullmap.AckwisePointers = 16
	a := run(t, limited, w.Streams(spec)...)
	b := run(t, fullmap, w.Streams(spec)...)
	ra := float64(a.CompletionCycles)
	rb := float64(b.CompletionCycles)
	if diff := (ra - rb) / rb; diff < -0.05 || diff > 0.05 {
		t.Fatalf("ACKwise4 vs full-map completion differs by %.1f%% (paper: ~1%%)", 100*diff)
	}
}

func TestOneWayNeverPromotes(t *testing.T) {
	cfg := testConfig(16, 4)
	cfg.Protocol.OneWay = true
	w := workloads.MustByName("streamcluster")
	res := run(t, cfg, w.Streams(workloads.Spec{Cores: 16, Scale: 0.1, Seed: 3})...)
	if res.Promotions != 0 {
		t.Fatalf("Adapt1-way promoted %d times", res.Promotions)
	}
	if res.Demotions == 0 {
		t.Fatal("Adapt1-way never demoted (test workload too small?)")
	}
}

func TestTimestampModeRuns(t *testing.T) {
	cfg := testConfig(16, 4)
	cfg.Protocol.UseTimestamp = true
	w := workloads.MustByName("blackscholes")
	res := run(t, cfg, w.Streams(workloads.Spec{Cores: 16, Scale: 0.1, Seed: 3})...)
	if res.WordReads == 0 {
		t.Fatal("timestamp mode produced no word reads on a streaming workload")
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := testConfig(16, 4)
	w := workloads.MustByName("radix")
	spec := workloads.Spec{Cores: 16, Scale: 0.1, Seed: 9}
	a := run(t, cfg, w.Streams(spec)...)
	b := run(t, cfg, w.Streams(spec)...)
	if a.CompletionCycles != b.CompletionCycles {
		t.Fatalf("completion differs across identical runs: %d vs %d",
			a.CompletionCycles, b.CompletionCycles)
	}
	if a.Energy != b.Energy {
		t.Fatalf("energy differs across identical runs: %+v vs %+v", a.Energy, b.Energy)
	}
	if a.LinkFlits != b.LinkFlits || a.DRAMReads != b.DRAMReads {
		t.Fatal("network/DRAM activity differs across identical runs")
	}
}

func TestBarrierAlignsCores(t *testing.T) {
	cfg := testConfig(2, 2)
	streams := []trace.Stream{
		accs(mem.Access{Kind: mem.Barrier, Addr: 1}, rd(base)),
		accs(mem.Access{Kind: mem.Barrier, Addr: 1, Gap: 5000}, rd(base+mem.PageBytes)),
	}
	res := run(t, cfg, streams...)
	if res.Time.Sync <= 0 {
		t.Fatalf("Sync = %v, want > 0 (core 0 waited)", res.Time.Sync)
	}
	// Core 0 waited about 5000 cycles plus the barrier release latency.
	if res.Time.Sync < 5000 {
		t.Fatalf("Sync = %v, want >= 5000", res.Time.Sync)
	}
}

func TestBarrierMismatchPanics(t *testing.T) {
	cfg := testConfig(2, 2)
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mismatched barrier ids did not panic")
		}
		if !strings.Contains(r.(string), "barrier mismatch") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	s.Run([]trace.Stream{
		accs(mem.Access{Kind: mem.Barrier, Addr: 1}),
		accs(mem.Access{Kind: mem.Barrier, Addr: 2, Gap: 100}),
	})
}

func TestLeakedLockFailsRun(t *testing.T) {
	cfg := testConfig(1, 1)
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run([]trace.Stream{accs(mem.Access{Kind: mem.Lock, Addr: 7}, rd(base))})
	if err == nil || !strings.Contains(err.Error(), "deadlock") && !strings.Contains(err.Error(), "leaked") {
		t.Fatalf("leaked lock not reported, err = %v", err)
	}
}

func TestLockSerializesAndIsFIFO(t *testing.T) {
	cfg := testConfig(4, 2)
	streams := make([]trace.Stream, 4)
	for c := 0; c < 4; c++ {
		streams[c] = accs(
			mem.Access{Kind: mem.Lock, Addr: 9, Gap: uint32(10 * c)},
			rd(base+mem.Addr(c)*mem.PageBytes),
			mem.Access{Kind: mem.Unlock, Addr: 9},
		)
	}
	res := run(t, cfg, streams...)
	if res.Time.Sync <= 0 {
		t.Fatal("lock contention produced no synchronization time")
	}
}

func TestPageReclassification(t *testing.T) {
	cfg := testConfig(2, 2)
	streams := []trace.Stream{
		accs(rd(base)),
		accs(mem.Access{Kind: mem.Read, Addr: base + 64, Gap: 5000}),
	}
	res := run(t, cfg, streams...)
	if res.Reclassifications != 1 {
		t.Fatalf("Reclassifications = %d, want 1", res.Reclassifications)
	}
	if res.SharedPages != 1 {
		t.Fatalf("SharedPages = %d, want 1", res.SharedPages)
	}
}

func TestL2EvictionBackInvalidates(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.L2SizeKB = 4 // 64 lines: tiny L2 forces slice evictions
	cfg.L1DSizeKB = 1
	var ops []mem.Access
	// Touch many distinct pages so the single home slice overflows; the
	// inclusive hierarchy must back-invalidate without tripping the checker.
	for i := 0; i < 512; i++ {
		ops = append(ops, wr(base+mem.Addr(i)*mem.PageBytes))
	}
	for i := 0; i < 512; i++ {
		ops = append(ops, rd(base+mem.Addr(i)*mem.PageBytes))
	}
	res := run(t, cfg, accs(ops...))
	if res.DRAMWrites == 0 {
		t.Fatal("dirty L2 evictions never wrote back to DRAM")
	}
}

func TestInstructionStreamAccounted(t *testing.T) {
	cfg := testConfig(1, 1)
	var ops []mem.Access
	for i := 0; i < 200; i++ {
		ops = append(ops, mem.Access{Kind: mem.Read, Addr: base + mem.Addr(8*i), Gap: 4})
	}
	res := run(t, cfg, accs(ops...))
	if res.L1IHits+res.L1IMisses == 0 {
		t.Fatal("no instruction fetches simulated")
	}
	if res.Meter.L1IAccesses == 0 {
		t.Fatal("no L1-I energy accounted")
	}
	if res.L1IMisses == 0 {
		t.Fatal("instruction working set never missed (cold misses expected)")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*sim.Config){
		func(c *sim.Config) { c.Cores = 0 },
		func(c *sim.Config) { c.Cores = 10; c.MeshWidth = 4 },
		func(c *sim.Config) { c.L1DSizeKB = 0 },
		func(c *sim.Config) { c.L2Ways = 0 },
		func(c *sim.Config) { c.AckwisePointers = 0 },
		func(c *sim.Config) { c.MemControllers = 0 },
		func(c *sim.Config) { c.MemControllers = 128 },
		func(c *sim.Config) { c.DRAMBytesPerCycle = 0 },
		func(c *sim.Config) { c.CodeLines = 0 },
		func(c *sim.Config) { c.Protocol.PCT = 0 },
		func(c *sim.Config) { c.Protocol.RATMax = 1 },
	}
	for i, mutate := range bad {
		cfg := sim.Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := sim.Default().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestStreamCountMismatch(t *testing.T) {
	s, err := sim.New(testConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]trace.Stream{accs(rd(base))}); err == nil {
		t.Fatal("stream/core count mismatch accepted")
	}
}

func TestPerCoreTimeScaling(t *testing.T) {
	res := run(t, testConfig(4, 2),
		accs(mem.Access{Kind: mem.Read, Addr: base, Gap: 100}),
		accs(mem.Access{Kind: mem.Read, Addr: base + mem.PageBytes, Gap: 100}),
		accs(mem.Access{Kind: mem.Read, Addr: base + 2*mem.PageBytes, Gap: 100}),
		accs(mem.Access{Kind: mem.Read, Addr: base + 3*mem.PageBytes, Gap: 100}),
	)
	per := res.PerCoreTime(4)
	if per.Compute != res.Time.Compute/4 {
		t.Fatalf("PerCoreTime Compute = %v, want %v", per.Compute, res.Time.Compute/4)
	}
	if res.L1DMissRate() != 100 {
		t.Fatalf("miss rate = %v, want 100 (all cold)", res.L1DMissRate())
	}
}

// TestLimitedClassifierStaleCopyRegression reproduces the scenario where the
// Limited-k classifier loses a live private sharer's entry and later
// majority-votes the core remote while its stale S copy is still resident:
// the remote word write must invalidate that copy. Before the fix, the
// golden-store checker caught a stale read on this canneal configuration.
func TestLimitedClassifierStaleCopyRegression(t *testing.T) {
	cfg := testConfig(16, 4)
	cfg.ClassifierK = 1
	cfg.Protocol.PCT = 4
	w := workloads.MustByName("canneal")
	res := run(t, cfg, w.Streams(workloads.Spec{Cores: 16, Scale: 0.15, Seed: 1})...)
	if res.WordWrites == 0 {
		t.Fatal("regression scenario produced no remote word writes")
	}
}

// TestAdaptiveBeatsBaseline is the headline shape check at test scale: for
// protocol-friendly workloads, PCT 4 must improve both energy and
// completion time over the PCT 1 baseline.
func TestAdaptiveBeatsBaseline(t *testing.T) {
	for _, name := range []string{"streamcluster", "blackscholes", "matmul", "dijkstra-ss"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := workloads.MustByName(name)
			spec := workloads.Spec{Cores: 16, Scale: 0.25, Seed: 1}
			baseCfg := testConfig(16, 4)
			baseCfg.Protocol.PCT = 1
			adaptCfg := testConfig(16, 4)
			adaptCfg.Protocol.PCT = 4
			baseRes := run(t, baseCfg, w.Streams(spec)...)
			adaptRes := run(t, adaptCfg, w.Streams(spec)...)
			if adaptRes.Energy.Total() >= baseRes.Energy.Total() {
				t.Errorf("energy at PCT 4 (%.0f) not below PCT 1 (%.0f)",
					adaptRes.Energy.Total(), baseRes.Energy.Total())
			}
			if adaptRes.CompletionCycles > baseRes.CompletionCycles {
				t.Errorf("completion at PCT 4 (%d) above PCT 1 (%d)",
					adaptRes.CompletionCycles, baseRes.CompletionCycles)
			}
		})
	}
}

// TestAllWorkloadsCompleteUnderChecker runs every registered workload at the
// default protocol with the golden-store checker enabled — the analog of the
// paper's "21 benchmarks run to completion" functional correctness argument.
func TestAllWorkloadsCompleteUnderChecker(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep skipped in -short mode")
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(16, 4)
			res := run(t, cfg, w.Streams(workloads.Spec{Cores: 16, Scale: 0.1, Seed: 2})...)
			if res.DataAccesses == 0 {
				t.Fatal("no data accesses simulated")
			}
			if res.Energy.Total() <= 0 {
				t.Fatal("no energy accounted")
			}
		})
	}
}

func TestPerCoreStats(t *testing.T) {
	cfg := testConfig(4, 2)
	streams := []trace.Stream{
		accs(rd(base)),
		accs(mem.Access{Kind: mem.Read, Addr: base + mem.PageBytes, Gap: 1000}),
		accs(rd(base + 2*mem.PageBytes)),
		accs(rd(base + 3*mem.PageBytes)),
	}
	res := run(t, cfg, streams...)
	if len(res.PerCore) != 4 {
		t.Fatalf("PerCore has %d entries, want 4", len(res.PerCore))
	}
	var sum stats.TimeBreakdown
	var finMax mem.Cycle
	for i := range res.PerCore {
		sum.Add(res.PerCore[i].Time)
		if res.PerCore[i].Finish > finMax {
			finMax = res.PerCore[i].Finish
		}
	}
	if sum != res.Time {
		t.Fatalf("per-core breakdowns (%+v) do not sum to aggregate (%+v)", sum, res.Time)
	}
	if finMax != res.CompletionCycles {
		t.Fatalf("max finish %d != completion %d", finMax, res.CompletionCycles)
	}
	if imb := res.Imbalance(); imb < 1 {
		t.Fatalf("Imbalance() = %v, want >= 1", imb)
	}
	// Core 1's 1000-cycle gap makes the run imbalanced.
	if imb := res.Imbalance(); imb < 1.2 {
		t.Fatalf("Imbalance() = %v, want > 1.2 for the skewed trace", imb)
	}
}

// closeCountingStream records Close calls; the stream-leak regression test
// below uses it to observe Run's error paths.
type closeCountingStream struct {
	closed int
}

func (s *closeCountingStream) Next() (mem.Access, bool) { return mem.Access{}, false }
func (s *closeCountingStream) Close()                   { s.closed++ }

// TestRunClosesStreamsOnArityError pins the stream-ownership contract: Run
// closes the streams it was handed on every exit path, including the
// stream-count validation error. Before the fix, the arity check returned
// ahead of the deferred close, leaking the streams (and, for spilled
// corpora, their file-descriptor refcounts).
func TestRunClosesStreamsOnArityError(t *testing.T) {
	cfg := sim.Default()
	cfg.Cores = 4
	cfg.MeshWidth = 2
	cfg.MemControllers = 2
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streams := []trace.Stream{&closeCountingStream{}, &closeCountingStream{}}
	if _, err := s.Run(streams); err == nil {
		t.Fatal("Run accepted 2 streams for 4 cores")
	}
	for i, st := range streams {
		if st.(*closeCountingStream).closed == 0 {
			t.Errorf("stream %d leaked: never closed on the arity-error path", i)
		}
	}
}

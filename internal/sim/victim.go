package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/mem"
	"lacc/internal/stats"
)

// Victim Replication (Zhang & Asanovic, ISCA 2005) is the hybrid LLC
// baseline the paper discusses in Section 2.1: clean Shared-state L1
// victims are replicated into the local L2 slice so a future miss can be
// serviced without crossing the mesh. The replica's tile remains a
// registered sharer at the line's home directory, so writes invalidate
// replicas exactly like L1 copies and the golden-store checker verifies
// freshness. The paper's critique — every victim is replicated,
// irrespective of whether it will be reused — is observable here as local
// L2 slice pressure and replica evictions.
//
// Victim replication rides on the adaptive protocol's directory walk
// (Config.Validate rejects it under other protocols), so these helpers are
// adaptiveProtocol methods.

// isReplica approves only replica lines for displacement: replicas must
// never evict home lines.
func isReplica(l *cache.Line) bool { return l.State == lineReplica }

// tryReplicate attempts to place a clean Shared L1 victim into the local
// L2 slice. On success the home directory is left untouched (the tile is
// still a sharer) and no message is sent. It reports whether the victim
// was absorbed.
func (s *adaptiveProtocol) tryReplicate(c *coreState, victim cache.Line, t mem.Cycle) bool {
	if victim.Dirty || (victim.State != lineS && victim.State != lineE) {
		return false // only clean data is replicated
	}
	if int(victim.Home) == c.id {
		return false // the local slice is the home: the line is already here
	}
	l2 := s.tiles[c.id].l2
	line, old, evicted := l2.TryInsert(victim.Addr, isReplica)
	if line == nil {
		return false // set full of home lines: drop the victim normally
	}
	if evicted {
		s.replicaEvictions++
		s.notifyReplicaEviction(c.id, old, t)
	}
	line.State = lineReplica
	line.Util = victim.Util
	line.Version = victim.Version
	line.Home = victim.Home
	l2.Touch(line, t)
	s.meter.L2LineWrites++
	s.replicaInserts++
	return true
}

// replicaRead services an L1 read miss from a local replica, if present:
// the line moves back into the L1 (the replica way is freed) at local L2
// cost, with no network traffic. It reports whether the miss was absorbed.
func (s *adaptiveProtocol) replicaRead(c *coreState, addr mem.Addr) bool {
	la := mem.LineOf(addr)
	l2 := s.tiles[c.id].l2
	rl := l2.Probe(la)
	if rl == nil || rl.State != lineReplica {
		return false
	}
	replica, _ := l2.Invalidate(la)
	s.replicaHits++
	s.meter.L1DReads++
	s.meter.L2LineReads++

	t := c.now + mem.Cycle(s.cfg.L1DLatency) + mem.Cycle(s.cfg.L2Latency)
	l1 := s.tiles[c.id].l1d
	line, victim, evicted := l1.Insert(la)
	if evicted {
		s.l1EvictNotify(s, c, victim, t)
	}
	s.meter.L1DWrites++ // line fill
	line.State = lineS
	line.Home = replica.Home
	line.Version = replica.Version
	line.Util = replica.Util + 1 // the replica continues the private residency
	l1.Touch(line, t)

	if s.cfg.CheckValues {
		s.checkVersion("replica read", la, line.Version)
	}
	c.l1d.Record(stats.MissCapacity) // a miss the replica made cheap
	c.bd.L1ToL2 += float64(t - c.now)
	c.history.set(la, hCached)
	c.now = t
	return true
}

// dropOwnReplica invalidates the requester's local replica on a write miss
// (the write request carries the drop to the home, costing no extra
// message) and returns its frozen utilization counter.
func (s *adaptiveProtocol) dropOwnReplica(c *coreState, la mem.Addr) (util uint32, had bool) {
	if !s.cfg.VictimReplication {
		return 0, false
	}
	l2 := s.tiles[c.id].l2
	rl := l2.Probe(la)
	if rl == nil || rl.State != lineReplica {
		return 0, false
	}
	replica, _ := l2.Invalidate(la)
	return replica.Util, true
}

// dropSharershipAtHome applies a replica drop at the home directory: the
// tile stops being a sharer (or, for a clean-Exclusive replica, stops
// being the registered owner) and its frozen utilization classifies it.
func (s *adaptiveProtocol) dropSharershipAtHome(entry *dirEntry, tile int, util uint32) {
	if (entry.state == coherence.ExclusiveState || entry.state == coherence.ModifiedState) &&
		int(entry.owner) == tile {
		entry.state = coherence.Uncached
		entry.owner = -1
	} else {
		entry.sharers.Remove(tile)
		if entry.sharers.Count() == 0 && entry.state == coherence.SharedState {
			entry.state = coherence.Uncached
		}
	}
	s.classifyRemoval(entry, tile, util, true)
	if s.cfg.TrackUtilization {
		s.evictHist.Record(util)
	}
}

// notifyReplicaEviction tells the home directory a replica was displaced:
// the tile stops being a sharer and the frozen utilization classifies the
// core, exactly as an L1 eviction notification would (replicas are always
// clean, so the message is a single flit).
func (s *adaptiveProtocol) notifyReplicaEviction(tile int, victim cache.Line, t mem.Cycle) {
	la := victim.Addr
	home := int(victim.Home)
	s.mesh.Unicast(tile, home, 1, t)

	ht := &s.tiles[home]
	entry := ht.dir.probe(la)
	if entry == nil {
		panic(fmt.Sprintf("sim: replica eviction of line %#x without directory entry", la))
	}
	s.dropSharershipAtHome(entry, tile, victim.Util)
	s.cores[tile].history.set(la, hEvicted)
}

// invalidateTileCopy removes a tile's copy of a line wherever it lives —
// the L1 or, under victim replication, the local L2 replica — returning
// the removed line. It reports failure instead of panicking so the sharded
// engine's relaxed mode can tolerate copies displaced by deferred
// evictions; sequential callers treat false as a protocol invariant
// violation (the directory's sharer bookkeeping is exact there).
func (s *Simulator) invalidateTileCopy(tile int, la mem.Addr) (cache.Line, bool) {
	if line, ok := s.tiles[tile].l1d.Invalidate(la); ok {
		return line, true
	}
	if s.cfg.VictimReplication {
		l2 := s.tiles[tile].l2
		if rl := l2.Probe(la); rl != nil && rl.State == lineReplica {
			line, _ := l2.Invalidate(la)
			return line, true
		}
	}
	return cache.Line{}, false
}

package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/core"
	"lacc/internal/dram"
	"lacc/internal/energy"
	"lacc/internal/mem"
	"lacc/internal/network"
	"lacc/internal/nuca"
	"lacc/internal/stats"
	"lacc/internal/trace"
)

// L1 line coherence states (cache.Line.State).
const (
	lineS uint8 = iota + 1
	lineE
	lineM
	// lineReplica marks a victim-replication replica in a local L2 slice
	// (Section 2.1's Victim Replication baseline, enabled by
	// Config.VictimReplication). Replicas are read-only copies whose tile
	// remains a registered sharer at the line's home directory.
	lineReplica
)

// Per-(core, line) history used for the paper's miss-type classification
// (Section 4.4). The zero value means the line was never seen.
const (
	hNever uint8 = iota
	hCached
	hEvicted
	hInvalidated
	hRemote
)

// codeBase places the synthetic instruction region far from any data the
// workload allocators hand out.
const codeBase mem.Addr = 1 << 40

// dirEntry is a directory entry integrated with an L2 line: MESI state,
// ACKwise sharer list and the locality classifier of the paper. Entries are
// stored by value inside the flat directory table (see flat.go); only the
// adaptive protocol populates cls, drawing from the simulator's classifier
// pool.
type dirEntry struct {
	state     coherence.State
	sharers   coherence.SharerSet
	owner     int16
	busyUntil mem.Cycle
	cls       core.Classifier
}

// tile is one core's slice of the machine.
type tile struct {
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache
	dir tileDir
}

// coreState is one core's simulation context.
type coreState struct {
	id     int
	now    mem.Cycle
	stream trace.Stream
	// chunks is stream's batch interface when supported; buf/bufIdx hold
	// the in-flight chunk so the run loop consumes accesses with a slice
	// index instead of a dynamic dispatch each.
	chunks trace.ChunkStream
	buf    []mem.Access
	bufIdx int
	bd     stats.TimeBreakdown
	l1d    stats.MissStats

	// lastL1D is the engine's MRU hint: the L1-D line the core's previous
	// data access resolved to. Word-granular traces touch the same 64B
	// line repeatedly, so validating the hint (cache.Holds) skips the tag
	// scan on those runs. Purely an access-path shortcut — Probe has no
	// side effects, and a stale hint fails validation and re-probes — so
	// behavior is bit-identical with or without it.
	lastL1D *cache.Line

	// Home-side MRU hints for lookupEntry: the directory slot index
	// (epoch-guarded, fast core only) and home L2 line the core's previous
	// miss transaction resolved to. See lookupEntry.
	dirHintIdx   int32
	dirHintEpoch uint32
	dirHintTile  int32
	l2Hint       *cache.Line
	l2HintTile   int32

	l1iHits   uint64
	l1iMisses uint64

	history histStore

	done bool

	// Synthetic instruction stream state. The fixed-point accumulators
	// (fetch64, energy8) carry the fetch walk when Simulator.fetch8 >= 0;
	// the float pair is the fallback formulation (see ifetch.go).
	pc        int
	fetchAcc  float64 // pending instruction-line fetches
	energyAcc float64 // pending fractional L1I energy events
	fetch64   int64   // pending line fetches, in 64ths of a line
	energy8   int64   // pending energy events, in 8ths of an instruction
	// l1iResident counts resident code lines; once it reaches
	// Config.CodeLines the L1-I can no longer miss (l1iWarm) and the fetch
	// walk short-circuits to hit counting.
	l1iResident int
	l1iWarm     bool

	// Synchronization state.
	waitingBarrier bool
	barrierArrive  mem.Cycle
}

type lockWaiter struct {
	core    int
	arrival mem.Cycle
}

type lockState struct {
	held  bool
	owner int
	queue []lockWaiter
}

// Simulator executes per-core access streams against the modeled machine.
// Construct with New; a Simulator runs one workload per Run. To run
// another workload, call Reset(cfg) first — it restores the
// freshly-constructed state while reusing the allocated tables, so a
// pooled Simulator amortizes its arenas across many runs.
type Simulator struct {
	cfg   Config
	proto Protocol
	mesh  *network.Mesh
	dram  *dram.Model
	nuca  *nuca.Placement
	tiles []tile
	cores []coreState

	// reference selects the map-backed storage layout (the pre-flat core)
	// instead of the open-addressed tables and arenas of flat.go. The two
	// layouts are behaviorally identical; the reference core exists so
	// differential tests can replay identical streams through both and
	// compare every result bit (see differential_test.go).
	reference bool

	// forceGeneric pins the run engine to the generic interface-dispatch
	// loop even on the fast storage layout. The differential tests use it
	// to prove the horizon-batched monomorphic loops (engine.go) execute
	// bit-identically to the reference formulation, isolated from the
	// storage-layout axis. The reference core always runs generic.
	forceGeneric bool

	// forceSharded pins the run engine to the sharded scheduler (shard.go)
	// regardless of shardCount's gating, so the differential tests can
	// replay the single-worker sharded engine — which must be bit-exact —
	// against the generic one under every configuration.
	forceSharded bool

	// sh is the shard runtime while a sharded run is in flight (nil
	// otherwise); shardIdx is this clone's worker index. pendEvict buffers
	// deferred L1 eviction notifications and reclScratch the worker-private
	// R-NUCA reclassification copy (see shard.go).
	sh          *shardRuntime
	shardIdx    int
	pendEvict   []pendingEvict
	reclScratch nuca.Reclassification

	// faults are the seeded protocol defects for checker self-tests
	// (machine.go). Deliberately outside Config — experiment fingerprints
	// never observe them — and preserved across Reset.
	faults Faults

	golden  verStore // committed version per line
	dramVer verStore // version resident in DRAM

	// fetch8 is Config.FetchPerOp in eighths of an instruction when the
	// fixed-point instruction-fetch mode applies, -1 otherwise (ifetch.go).
	fetch8 int64

	locks     map[uint64]*lockState
	barrierID mem.Addr
	barrierN  int

	meter     energy.Meter
	invalHist stats.UtilizationHistogram
	evictHist stats.UtilizationHistogram

	promotions    uint64
	demotions     uint64
	wordReads     uint64
	wordWrites    uint64
	invalidations uint64
	bcastInvals   uint64
	selfInvals    uint64

	replicaHits      uint64
	replicaInserts   uint64
	replicaEvictions uint64

	// clsPool recycles per-entry classifiers in the fast core (adaptive
	// protocol only); the reference core allocates fresh ones like the old
	// implementation did, so a broken Reset would show up differentially.
	clsPool *core.ClassifierPool

	// Transaction scratch, reused to keep the hot path allocation-free:
	// idScratch is a free-list of sharer-identity snapshots taken before
	// mutating multicast loops; the broadcast buffers hold per-tile arrival
	// times for the two (non-nesting) broadcast sites.
	idScratch  [][]int16
	bcastInval []mem.Cycle
	bcastEvict []mem.Cycle

	runQ coreQueue
}

// New builds a simulator for cfg.
func New(cfg Config) (*Simulator, error) {
	return newSimulator(cfg, false)
}

// newReference builds a simulator using the legacy map-backed storage
// layout. It exists for the differential tests only.
func newReference(cfg Config) (*Simulator, error) {
	return newSimulator(cfg, true)
}

func newSimulator(cfg Config, reference bool) (*Simulator, error) {
	s := &Simulator{reference: reference}
	if err := s.Reset(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// dirPointersFor returns the per-entry sharer pointer count the directory
// tables are built with: ACKwise-p for the adaptive protocol, a single
// pointer for Neat's deliberately starved sharer metadata, and a full-map
// vector for the remaining protocols regardless of AckwisePointers.
func dirPointersFor(cfg Config) int {
	switch cfg.protocolKind() {
	case ProtocolAdaptive:
		return cfg.AckwisePointers
	case ProtocolNeat:
		return 1
	default:
		return cfg.Cores
	}
}

// Reset re-initializes the simulator for cfg so the next Run behaves
// exactly as on a freshly constructed Simulator — same results bit for bit
// — while reusing the allocated storage wherever the old and new
// configurations agree: the flat directory/history/version tables, cache
// tag arrays, classifier slabs, mesh and DRAM queues are cleared in place
// instead of reallocated. Components whose geometry changed are rebuilt.
// The experiment layer's worker pool calls this between jobs; sweeps
// differ only in protocol parameters, so steady-state job turnover
// allocates almost nothing.
func (s *Simulator) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	old := s.cfg
	fresh := s.tiles == nil

	meshCfg := network.Config{
		Width:      cfg.MeshWidth,
		Height:     cfg.Cores / cfg.MeshWidth,
		HopLatency: cfg.HopLatency,
	}
	if s.mesh != nil && s.mesh.Matches(meshCfg) {
		s.mesh.Reset()
	} else {
		s.mesh = network.New(meshCfg)
	}

	if s.nuca != nil && s.nuca.Matches(cfg.Cores, cfg.MeshWidth) {
		s.nuca.Reset()
	} else {
		s.nuca = nuca.New(cfg.Cores, cfg.MeshWidth)
	}

	dramCfg := dram.Config{
		Controllers:   cfg.MemControllers,
		LatencyCycles: cfg.DRAMLatencyCycles,
		BytesPerCycle: cfg.DRAMBytesPerCycle,
		Tiles:         dram.DefaultTiles(cfg.MemControllers, cfg.MeshWidth, cfg.Cores/cfg.MeshWidth),
	}
	if s.dram != nil && s.dram.Matches(dramCfg) {
		s.dram.Reset()
	} else {
		s.dram = dram.New(dramCfg)
	}

	if s.golden.flat == nil && s.golden.ref == nil {
		s.golden = newVerStore(s.reference)
		s.dramVer = newVerStore(s.reference)
	} else {
		s.golden.clear()
		s.dramVer.clear()
	}

	// The classifier pool survives a reset when a classifying protocol
	// (adaptive or hybrid) keeps the same (cores, k) shape; outstanding
	// classifiers are reclaimed from the old directory entries below, so
	// slabs are never re-carved.
	keepPool := !s.reference && s.clsPool != nil &&
		(cfg.protocolKind() == ProtocolAdaptive || cfg.protocolKind() == ProtocolHybrid) &&
		s.clsPool.Matches(cfg.Cores, cfg.ClassifierK)
	if keepPool && !fresh {
		for i := range s.tiles {
			s.tiles[i].dir.forEach(func(_ mem.Addr, e *dirEntry) {
				if e.cls != nil {
					s.clsPool.Put(e.cls)
					e.cls = nil
				}
			})
		}
	}
	if !keepPool {
		s.clsPool = nil // the adaptive factory rebuilds it on demand
	}

	// The cache arrays and the directory tables have independent reuse
	// conditions: a sweep flipping between ACKwise-p and full-map variants
	// changes only the per-entry sharer pointer width, so the (much
	// larger) tag arrays are kept and only the directories are recarved.
	dirPointers := dirPointersFor(cfg)
	sameCaches := !fresh && len(s.tiles) == cfg.Cores &&
		old.L1ISizeKB == cfg.L1ISizeKB && old.L1IWays == cfg.L1IWays &&
		old.L1DSizeKB == cfg.L1DSizeKB && old.L1DWays == cfg.L1DWays &&
		old.L2SizeKB == cfg.L2SizeKB && old.L2Ways == cfg.L2Ways
	sameDir := sameCaches && dirPointersFor(old) == dirPointers
	if sameCaches {
		for i := range s.tiles {
			t := &s.tiles[i]
			t.l1i.Reset()
			t.l1d.Reset()
			t.l2.Reset()
			if sameDir {
				t.dir.clear()
			} else {
				t.dir.reshape(dirPointers)
			}
		}
	} else {
		s.tiles = make([]tile, cfg.Cores)
		for i := range s.tiles {
			s.tiles[i] = tile{
				l1i: cache.New(cfg.L1ISizeKB*1024, cfg.L1IWays),
				l1d: cache.New(cfg.L1DSizeKB*1024, cfg.L1DWays),
				l2:  cache.New(cfg.L2SizeKB*1024, cfg.L2Ways),
				dir: newTileDir(dirPointers, s.reference),
			}
		}
	}

	if s.locks == nil {
		s.locks = make(map[uint64]*lockState)
	} else {
		clear(s.locks)
	}
	s.barrierID, s.barrierN = 0, 0

	s.meter = energy.Meter{}
	s.invalHist = stats.UtilizationHistogram{}
	s.evictHist = stats.UtilizationHistogram{}
	s.promotions, s.demotions = 0, 0
	s.wordReads, s.wordWrites = 0, 0
	s.invalidations, s.bcastInvals, s.selfInvals = 0, 0, 0
	s.replicaHits, s.replicaInserts, s.replicaEvictions = 0, 0, 0

	s.pendEvict = s.pendEvict[:0]

	s.cfg = cfg
	s.fetch8 = fetchFixedPoint(cfg.FetchPerOp)
	s.proto = newProtocol(s)
	return nil
}

// Run executes one stream per core to completion and returns the aggregated
// result. The streams are closed before returning. Run may be called again
// only after Reset.
func (s *Simulator) Run(streams []trace.Stream) (*Result, error) {
	// Close the streams on every exit path, including the arity error
	// below: spilled-corpus streams pin refcounted file descriptors that
	// would otherwise leak when a caller miscounts cores.
	defer func() {
		for _, st := range streams {
			st.Close()
		}
	}()
	if len(streams) != s.cfg.Cores {
		return nil, fmt.Errorf("sim: %d streams for %d cores", len(streams), s.cfg.Cores)
	}
	if len(s.cores) != s.cfg.Cores {
		s.cores = make([]coreState, s.cfg.Cores)
		for i := range s.cores {
			s.cores[i] = coreState{history: newHistStore(s.reference)}
		}
	}
	for i := range s.cores {
		// Reuse the core's history table (cleared) across Reset cycles; the
		// per-core flat table is one of the larger per-run allocations.
		h := s.cores[i].history
		h.clear()
		s.cores[i] = coreState{
			id:      i,
			stream:  streams[i],
			history: h,
		}
		if cs, ok := streams[i].(trace.ChunkStream); ok {
			s.cores[i].chunks = cs
		}
	}
	if cap(s.runQ.q) >= s.cfg.Cores {
		s.runQ.q = s.runQ.q[:0]
	} else {
		s.runQ.q = make([]queuedCore, 0, s.cfg.Cores)
	}
	for i := range s.cores {
		s.runQ.push(s.cores[i].now, int32(i))
	}

	if err := s.runEngine(); err != nil {
		return nil, err
	}
	if err := s.checkQuiescence(); err != nil {
		return nil, err
	}
	if s.cfg.CheckValues {
		if err := s.Audit(); err != nil {
			return nil, err
		}
	}
	return s.collect(), nil
}

// next returns the core's next trace operation, consuming whole chunks
// from batch-capable streams. The engine's monomorphic loops inline the
// buffered fast path and fall back to refill directly.
func (c *coreState) next() (mem.Access, bool) {
	if c.bufIdx < len(c.buf) {
		a := c.buf[c.bufIdx]
		c.bufIdx++
		return a, true
	}
	return c.refill()
}

// refill is the slow half of next: it fetches the next chunk from a
// batch-capable stream, or one access from a plain stream.
func (c *coreState) refill() (mem.Access, bool) {
	if c.chunks != nil {
		chunk, ok := c.chunks.NextChunk()
		if !ok {
			return mem.Access{}, false
		}
		c.buf, c.bufIdx = chunk, 1
		return chunk[0], true
	}
	return c.stream.Next()
}

// checkQuiescence verifies every core terminated (catches workload bugs
// such as unmatched barriers or leaked locks).
func (s *Simulator) checkQuiescence() error {
	for i := range s.cores {
		if !s.cores[i].done {
			return fmt.Errorf("sim: core %d deadlocked (barrier wait=%v)", i, s.cores[i].waitingBarrier)
		}
	}
	for id, l := range s.locks {
		if l.held || len(l.queue) > 0 {
			return fmt.Errorf("sim: lock %d leaked (held=%v, %d waiters)", id, l.held, len(l.queue))
		}
	}
	return nil
}

// barrierArrive parks a core at a barrier, releasing everyone when the last
// active core arrives. All cores must agree on the barrier identifier.
func (s *Simulator) barrierArrive(c *coreState, id mem.Addr) {
	if s.barrierN == 0 {
		s.barrierID = id
	} else if s.barrierID != id {
		panic(fmt.Sprintf("sim: barrier mismatch: core %d at %d, barrier %d in progress",
			c.id, id, s.barrierID))
	}
	c.waitingBarrier = true
	c.barrierArrive = c.now
	s.barrierN++
	s.maybeReleaseBarrier()
}

func (s *Simulator) activeCores() int {
	n := 0
	for i := range s.cores {
		if !s.cores[i].done {
			n++
		}
	}
	return n
}

func (s *Simulator) maybeReleaseBarrier() {
	if s.barrierN == 0 || s.barrierN < s.activeCores() {
		return
	}
	var latest mem.Cycle
	for i := range s.cores {
		if s.cores[i].waitingBarrier && s.cores[i].barrierArrive > latest {
			latest = s.cores[i].barrierArrive
		}
	}
	release := latest + mem.Cycle(s.cfg.BarrierLatency)
	for i := range s.cores {
		c := &s.cores[i]
		if !c.waitingBarrier {
			continue
		}
		c.bd.Sync += float64(release - c.barrierArrive)
		c.now = release
		c.waitingBarrier = false
		s.enqueueRunnable(c.now, int32(i))
	}
	s.barrierN = 0
}

// lockAcquire grants a free lock immediately (charging the acquisition
// round trip) or parks the core in the lock's FIFO queue.
func (s *Simulator) lockAcquire(c *coreState, id uint64) {
	l := s.locks[id]
	if l == nil {
		l = &lockState{}
		s.locks[id] = l
	}
	if !l.held {
		l.held = true
		l.owner = c.id
		lat := mem.Cycle(s.cfg.LockLatency)
		c.bd.Sync += float64(lat)
		c.now += lat
		s.enqueueRunnable(c.now, int32(c.id))
		return
	}
	l.queue = append(l.queue, lockWaiter{core: c.id, arrival: c.now})
}

// lockRelease hands the lock to the next waiter (FIFO) or frees it.
func (s *Simulator) lockRelease(c *coreState, id uint64) {
	l := s.locks[id]
	if l == nil || !l.held || l.owner != c.id {
		panic(fmt.Sprintf("sim: core %d released lock %d it does not hold", c.id, id))
	}
	c.now++ // the releasing store
	if len(l.queue) == 0 {
		l.held = false
		return
	}
	w := l.queue[0]
	l.queue = l.queue[1:]
	l.owner = w.core
	grant := c.now
	if w.arrival > grant {
		grant = w.arrival
	}
	grant += mem.Cycle(s.cfg.LockLatency)
	wc := &s.cores[w.core]
	wc.bd.Sync += float64(grant - w.arrival)
	wc.now = grant
	s.enqueueRunnable(wc.now, int32(w.core))
}

// collect aggregates per-core statistics into a Result.
func (s *Simulator) collect() *Result {
	r := &Result{
		Protocol:               s.proto.Name(),
		Promotions:             s.promotions,
		Demotions:              s.demotions,
		WordReads:              s.wordReads,
		WordWrites:             s.wordWrites,
		Invalidations:          s.invalidations,
		BroadcastInvalidations: s.bcastInvals,
		SelfInvalidations:      s.selfInvals,
		InvalidationUtil:       s.invalHist,
		EvictionUtil:           s.evictHist,
		RouterFlits:            s.mesh.RouterFlits,
		LinkFlits:              s.mesh.LinkFlits,
		Messages:               s.mesh.Messages,
		DRAMReads:              s.dram.Reads,
		DRAMWrites:             s.dram.Writes,
		DRAMQueueCycles:        s.dram.QueueCycles,
		PrivatePages:           s.nuca.PrivatePages,
		SharedPages:            s.nuca.SharedPages,
		Reclassifications:      s.nuca.Reclassifications,
		ReplicaHits:            s.replicaHits,
		ReplicaInserts:         s.replicaInserts,
		ReplicaEvictions:       s.replicaEvictions,
	}
	r.PerCore = make([]CoreStats, len(s.cores))
	for i := range s.cores {
		c := &s.cores[i]
		if c.now > r.CompletionCycles {
			r.CompletionCycles = c.now
		}
		r.Time.Add(c.bd)
		r.L1D.Add(c.l1d)
		r.L1IHits += c.l1iHits
		r.L1IMisses += c.l1iMisses
		r.PerCore[i] = CoreStats{
			Finish:  c.now,
			Time:    c.bd,
			L1D:     c.l1d,
			L1IHits: c.l1iHits, L1IMisses: c.l1iMisses,
		}
	}
	r.DataAccesses = r.L1D.Accesses()
	s.meter.RouterFlits = s.mesh.RouterFlits
	s.meter.LinkFlits = s.mesh.LinkFlits
	r.Meter = s.meter
	r.Energy = s.meter.Breakdown(s.cfg.Energy)
	s.proto.Finalize(r)
	return r
}

// goldenWrite commits a write to the golden store and returns the new
// version. The golden and DRAM version stores exist purely for the
// functional checker (checkVersion and the Audit): versions never feed
// timing, traffic, energy or any Result field, so when the checker is off
// the stores are bypassed entirely — saving a hash-table update on every
// store and every write-back in the hot path. TestCheckValuesNeutral pins
// the bit-identity of results across the two modes.
func (s *Simulator) goldenWrite(la mem.Addr) uint64 {
	if !s.cfg.CheckValues {
		return 0
	}
	return s.golden.bump(la)
}

// dramVerSet records the version written back to DRAM (checker state only;
// see goldenWrite).
func (s *Simulator) dramVerSet(la mem.Addr, ver uint64) {
	if s.cfg.CheckValues {
		s.dramVer.set(la, ver)
	}
}

// dramVerGet returns the version resident in DRAM (checker state only; see
// goldenWrite).
func (s *Simulator) dramVerGet(la mem.Addr) uint64 {
	if !s.cfg.CheckValues {
		return 0
	}
	return s.dramVer.get(la)
}

// checkVersion asserts a read observed the latest committed write.
func (s *Simulator) checkVersion(ctx string, la mem.Addr, ver uint64) {
	if want := s.golden.get(la); ver != want {
		panic(fmt.Sprintf("sim: coherence violation at %s: line %#x version %d, golden %d",
			ctx, la, ver, want))
	}
}

// removeDirEntry releases la's directory entry at its home tile, recycling
// the entry's classifier through the pool in the fast core.
func (s *Simulator) removeDirEntry(home int, la mem.Addr, e *dirEntry) {
	if e.cls != nil {
		if !s.reference {
			if s.sh != nil {
				s.sh.poolMu.Lock()
				s.clsPool.Put(e.cls)
				s.sh.poolMu.Unlock()
			} else {
				s.clsPool.Put(e.cls)
			}
		}
		e.cls = nil
	}
	s.tiles[home].dir.remove(la)
}

// borrowIDs returns a reusable copy of src, so mutating multicast loops can
// iterate a stable snapshot of a sharer list without allocating. Pair with
// returnIDs. The free-list (rather than a single buffer) keeps accidental
// nesting safe.
func (s *Simulator) borrowIDs(src []int16) []int16 {
	var buf []int16
	if n := len(s.idScratch); n > 0 {
		buf = s.idScratch[n-1]
		s.idScratch = s.idScratch[:n-1]
	}
	return append(buf[:0], src...)
}

func (s *Simulator) returnIDs(buf []int16) {
	s.idScratch = append(s.idScratch, buf)
}

// queuedCore is one run-queue entry: a core and the local time at which it
// became runnable. A core's clock is final when pushed, so the key is a
// snapshot, and keys are unique (a core is queued at most once; id breaks
// time ties), making pop order fully deterministic.
type queuedCore struct {
	now mem.Cycle
	id  int32
}

// coreQueue is a binary min-heap of runnable cores ordered by (local time,
// core id). It replaces container/heap: the interface-based comparator and
// its pointer chase into the core array was the hottest single symbol of
// the simulation loop.
type coreQueue struct {
	q []queuedCore
}

func (k queuedCore) less(o queuedCore) bool {
	return k.now < o.now || (k.now == o.now && k.id < o.id)
}

func (q *coreQueue) push(now mem.Cycle, id int32) {
	q.q = append(q.q, queuedCore{now: now, id: id})
	i := len(q.q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.q[i].less(q.q[parent]) {
			break
		}
		q.q[i], q.q[parent] = q.q[parent], q.q[i]
		i = parent
	}
}

// top returns the earliest core without removing it.
func (q *coreQueue) top() int { return int(q.q[0].id) }

// horizonSentinel is the +inf heap key: no core's (time, id) key ever
// reaches it (clocks stay far below 2^64-1), so a root core compared
// against it always stays below the horizon.
var horizonSentinel = queuedCore{now: ^mem.Cycle(0), id: 1<<31 - 1}

// horizon returns the smallest key among the non-root entries — the root
// core's safe horizon. The heap invariant puts the second-smallest key at
// one of the root's children, so this is two comparisons, not a scan.
// While the root core's advancing (time, id) key stays strictly below the
// horizon it remains the global minimum, and the engine may retire its
// accesses with zero heap operations (see engine.go); keys are unique, so
// strictly-below is exactly the condition under which the pop/push
// formulation would pick the same core again.
func (q *coreQueue) horizon() queuedCore {
	h := horizonSentinel
	if len(q.q) > 1 && q.q[1].less(h) {
		h = q.q[1]
	}
	if len(q.q) > 2 && q.q[2].less(h) {
		h = q.q[2]
	}
	return h
}

// replaceTop re-keys the root core at its advanced clock.
func (q *coreQueue) replaceTop(now mem.Cycle, id int32) {
	q.q[0] = queuedCore{now: now, id: id}
	q.siftDown()
}

// popTop removes the root core.
func (q *coreQueue) popTop() {
	last := len(q.q) - 1
	q.q[0] = q.q[last]
	q.q = q.q[:last]
	if last > 0 {
		q.siftDown()
	}
}

func (q *coreQueue) siftDown() {
	n := len(q.q)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.q[l].less(q.q[smallest]) {
			smallest = l
		}
		if r < n && q.q[r].less(q.q[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.q[i], q.q[smallest] = q.q[smallest], q.q[i]
		i = smallest
	}
}

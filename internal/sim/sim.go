package sim

import (
	"container/heap"
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/core"
	"lacc/internal/dram"
	"lacc/internal/energy"
	"lacc/internal/mem"
	"lacc/internal/network"
	"lacc/internal/nuca"
	"lacc/internal/stats"
	"lacc/internal/trace"
)

// L1 line coherence states (cache.Line.State).
const (
	lineS uint8 = iota + 1
	lineE
	lineM
	// lineReplica marks a victim-replication replica in a local L2 slice
	// (Section 2.1's Victim Replication baseline, enabled by
	// Config.VictimReplication). Replicas are read-only copies whose tile
	// remains a registered sharer at the line's home directory.
	lineReplica
)

// Per-(core, line) history used for the paper's miss-type classification
// (Section 4.4). The zero value means the line was never seen.
const (
	hNever uint8 = iota
	hCached
	hEvicted
	hInvalidated
	hRemote
)

// codeBase places the synthetic instruction region far from any data the
// workload allocators hand out.
const codeBase mem.Addr = 1 << 40

// dirEntry is a directory entry integrated with an L2 line: MESI state,
// ACKwise sharer list and the locality classifier of the paper.
type dirEntry struct {
	state     coherence.State
	sharers   coherence.SharerSet
	owner     int16
	busyUntil mem.Cycle
	cls       core.Classifier
}

// tile is one core's slice of the machine.
type tile struct {
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache
	dir map[mem.Addr]*dirEntry
}

// coreState is one core's simulation context.
type coreState struct {
	id     int
	now    mem.Cycle
	stream trace.Stream
	bd     stats.TimeBreakdown
	l1d    stats.MissStats

	l1iHits   uint64
	l1iMisses uint64

	history map[mem.Addr]uint8

	done bool

	// Synthetic instruction stream state.
	pc        int
	fetchAcc  float64 // pending instruction-line fetches
	energyAcc float64 // pending fractional L1I energy events

	// Synchronization state.
	waitingBarrier bool
	barrierArrive  mem.Cycle
}

type lockWaiter struct {
	core    int
	arrival mem.Cycle
}

type lockState struct {
	held  bool
	owner int
	queue []lockWaiter
}

// Simulator executes per-core access streams against the modeled machine.
// Construct with New; a Simulator runs one workload (use a fresh Simulator
// per run).
type Simulator struct {
	cfg   Config
	proto Protocol
	mesh  *network.Mesh
	dram  *dram.Model
	nuca  *nuca.Placement
	tiles []tile
	cores []coreState

	golden  map[mem.Addr]uint64 // committed version per line
	dramVer map[mem.Addr]uint64 // version resident in DRAM

	locks     map[uint64]*lockState
	barrierID mem.Addr
	barrierN  int

	meter     energy.Meter
	invalHist stats.UtilizationHistogram
	evictHist stats.UtilizationHistogram

	promotions    uint64
	demotions     uint64
	wordReads     uint64
	wordWrites    uint64
	invalidations uint64
	bcastInvals   uint64

	replicaHits      uint64
	replicaInserts   uint64
	replicaEvictions uint64

	runQ coreQueue
}

// New builds a simulator for cfg.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg: cfg,
		mesh: network.New(network.Config{
			Width:      cfg.MeshWidth,
			Height:     cfg.Cores / cfg.MeshWidth,
			HopLatency: cfg.HopLatency,
		}),
		nuca:    nuca.New(cfg.Cores, cfg.MeshWidth),
		golden:  make(map[mem.Addr]uint64),
		dramVer: make(map[mem.Addr]uint64),
		locks:   make(map[uint64]*lockState),
	}
	s.dram = dram.New(dram.Config{
		Controllers:   cfg.MemControllers,
		LatencyCycles: cfg.DRAMLatencyCycles,
		BytesPerCycle: cfg.DRAMBytesPerCycle,
		Tiles:         dram.DefaultTiles(cfg.MemControllers, cfg.MeshWidth, cfg.Cores/cfg.MeshWidth),
	})
	s.tiles = make([]tile, cfg.Cores)
	for i := range s.tiles {
		s.tiles[i] = tile{
			l1i: cache.New(cfg.L1ISizeKB*1024, cfg.L1IWays),
			l1d: cache.New(cfg.L1DSizeKB*1024, cfg.L1DWays),
			l2:  cache.New(cfg.L2SizeKB*1024, cfg.L2Ways),
			dir: make(map[mem.Addr]*dirEntry, 1024),
		}
	}
	s.proto = newProtocol(s)
	return s, nil
}

// Run executes one stream per core to completion and returns the aggregated
// result. The streams are closed before returning.
func (s *Simulator) Run(streams []trace.Stream) (*Result, error) {
	if len(streams) != s.cfg.Cores {
		return nil, fmt.Errorf("sim: %d streams for %d cores", len(streams), s.cfg.Cores)
	}
	defer func() {
		for _, st := range streams {
			st.Close()
		}
	}()
	s.cores = make([]coreState, s.cfg.Cores)
	for i := range s.cores {
		s.cores[i] = coreState{
			id:      i,
			stream:  streams[i],
			history: make(map[mem.Addr]uint8, 4096),
		}
	}
	s.runQ = coreQueue{sim: s}
	for i := range s.cores {
		heap.Push(&s.runQ, i)
	}

	for s.runQ.Len() > 0 {
		id := heap.Pop(&s.runQ).(int)
		c := &s.cores[id]
		a, ok := c.stream.Next()
		if !ok {
			c.done = true
			s.maybeReleaseBarrier()
			continue
		}
		if a.Gap > 0 {
			c.now += mem.Cycle(a.Gap)
			c.bd.Compute += float64(a.Gap)
		}
		switch a.Kind {
		case mem.Read, mem.Write:
			s.instrFetch(c, a.Gap)
			s.proto.DataAccess(c, a.Kind, a.Addr)
			heap.Push(&s.runQ, id)
		case mem.Barrier:
			s.barrierArrive(c, a.Addr)
		case mem.Lock:
			s.lockAcquire(c, uint64(a.Addr))
		case mem.Unlock:
			s.lockRelease(c, uint64(a.Addr))
			heap.Push(&s.runQ, id)
		default:
			return nil, fmt.Errorf("sim: core %d emitted unknown op %v", id, a.Kind)
		}
	}
	if err := s.checkQuiescence(); err != nil {
		return nil, err
	}
	if s.cfg.CheckValues {
		if err := s.Audit(); err != nil {
			return nil, err
		}
	}
	return s.collect(), nil
}

// checkQuiescence verifies every core terminated (catches workload bugs
// such as unmatched barriers or leaked locks).
func (s *Simulator) checkQuiescence() error {
	for i := range s.cores {
		if !s.cores[i].done {
			return fmt.Errorf("sim: core %d deadlocked (barrier wait=%v)", i, s.cores[i].waitingBarrier)
		}
	}
	for id, l := range s.locks {
		if l.held || len(l.queue) > 0 {
			return fmt.Errorf("sim: lock %d leaked (held=%v, %d waiters)", id, l.held, len(l.queue))
		}
	}
	return nil
}

// barrierArrive parks a core at a barrier, releasing everyone when the last
// active core arrives. All cores must agree on the barrier identifier.
func (s *Simulator) barrierArrive(c *coreState, id mem.Addr) {
	if s.barrierN == 0 {
		s.barrierID = id
	} else if s.barrierID != id {
		panic(fmt.Sprintf("sim: barrier mismatch: core %d at %d, barrier %d in progress",
			c.id, id, s.barrierID))
	}
	c.waitingBarrier = true
	c.barrierArrive = c.now
	s.barrierN++
	s.maybeReleaseBarrier()
}

func (s *Simulator) activeCores() int {
	n := 0
	for i := range s.cores {
		if !s.cores[i].done {
			n++
		}
	}
	return n
}

func (s *Simulator) maybeReleaseBarrier() {
	if s.barrierN == 0 || s.barrierN < s.activeCores() {
		return
	}
	var latest mem.Cycle
	for i := range s.cores {
		if s.cores[i].waitingBarrier && s.cores[i].barrierArrive > latest {
			latest = s.cores[i].barrierArrive
		}
	}
	release := latest + mem.Cycle(s.cfg.BarrierLatency)
	for i := range s.cores {
		c := &s.cores[i]
		if !c.waitingBarrier {
			continue
		}
		c.bd.Sync += float64(release - c.barrierArrive)
		c.now = release
		c.waitingBarrier = false
		heap.Push(&s.runQ, i)
	}
	s.barrierN = 0
}

// lockAcquire grants a free lock immediately (charging the acquisition
// round trip) or parks the core in the lock's FIFO queue.
func (s *Simulator) lockAcquire(c *coreState, id uint64) {
	l := s.locks[id]
	if l == nil {
		l = &lockState{}
		s.locks[id] = l
	}
	if !l.held {
		l.held = true
		l.owner = c.id
		lat := mem.Cycle(s.cfg.LockLatency)
		c.bd.Sync += float64(lat)
		c.now += lat
		heap.Push(&s.runQ, c.id)
		return
	}
	l.queue = append(l.queue, lockWaiter{core: c.id, arrival: c.now})
}

// lockRelease hands the lock to the next waiter (FIFO) or frees it.
func (s *Simulator) lockRelease(c *coreState, id uint64) {
	l := s.locks[id]
	if l == nil || !l.held || l.owner != c.id {
		panic(fmt.Sprintf("sim: core %d released lock %d it does not hold", c.id, id))
	}
	c.now++ // the releasing store
	if len(l.queue) == 0 {
		l.held = false
		return
	}
	w := l.queue[0]
	l.queue = l.queue[1:]
	l.owner = w.core
	grant := c.now
	if w.arrival > grant {
		grant = w.arrival
	}
	grant += mem.Cycle(s.cfg.LockLatency)
	wc := &s.cores[w.core]
	wc.bd.Sync += float64(grant - w.arrival)
	wc.now = grant
	heap.Push(&s.runQ, w.core)
}

// collect aggregates per-core statistics into a Result.
func (s *Simulator) collect() *Result {
	r := &Result{
		Protocol:               s.proto.Name(),
		Promotions:             s.promotions,
		Demotions:              s.demotions,
		WordReads:              s.wordReads,
		WordWrites:             s.wordWrites,
		Invalidations:          s.invalidations,
		BroadcastInvalidations: s.bcastInvals,
		InvalidationUtil:       s.invalHist,
		EvictionUtil:           s.evictHist,
		RouterFlits:            s.mesh.RouterFlits,
		LinkFlits:              s.mesh.LinkFlits,
		Messages:               s.mesh.Messages,
		DRAMReads:              s.dram.Reads,
		DRAMWrites:             s.dram.Writes,
		DRAMQueueCycles:        s.dram.QueueCycles,
		PrivatePages:           s.nuca.PrivatePages,
		SharedPages:            s.nuca.SharedPages,
		Reclassifications:      s.nuca.Reclassifications,
		ReplicaHits:            s.replicaHits,
		ReplicaInserts:         s.replicaInserts,
		ReplicaEvictions:       s.replicaEvictions,
	}
	r.PerCore = make([]CoreStats, len(s.cores))
	for i := range s.cores {
		c := &s.cores[i]
		if c.now > r.CompletionCycles {
			r.CompletionCycles = c.now
		}
		r.Time.Add(c.bd)
		r.L1D.Add(c.l1d)
		r.L1IHits += c.l1iHits
		r.L1IMisses += c.l1iMisses
		r.PerCore[i] = CoreStats{
			Finish:  c.now,
			Time:    c.bd,
			L1D:     c.l1d,
			L1IHits: c.l1iHits, L1IMisses: c.l1iMisses,
		}
	}
	r.DataAccesses = r.L1D.Accesses()
	s.meter.RouterFlits = s.mesh.RouterFlits
	s.meter.LinkFlits = s.mesh.LinkFlits
	r.Meter = s.meter
	r.Energy = s.meter.Breakdown(s.cfg.Energy)
	s.proto.Finalize(r)
	return r
}

// goldenWrite commits a write to the golden store and returns the new
// version.
func (s *Simulator) goldenWrite(la mem.Addr) uint64 {
	s.golden[la]++
	return s.golden[la]
}

// checkVersion asserts a read observed the latest committed write.
func (s *Simulator) checkVersion(ctx string, la mem.Addr, ver uint64) {
	if want := s.golden[la]; ver != want {
		panic(fmt.Sprintf("sim: coherence violation at %s: line %#x version %d, golden %d",
			ctx, la, ver, want))
	}
}

// coreQueue is a min-heap of runnable core ids ordered by local time with
// core id as the deterministic tiebreak.
type coreQueue struct {
	sim *Simulator
	ids []int
}

func (q *coreQueue) Len() int { return len(q.ids) }

func (q *coreQueue) Less(i, j int) bool {
	a, b := &q.sim.cores[q.ids[i]], &q.sim.cores[q.ids[j]]
	if a.now != b.now {
		return a.now < b.now
	}
	return a.id < b.id
}

func (q *coreQueue) Swap(i, j int) { q.ids[i], q.ids[j] = q.ids[j], q.ids[i] }

func (q *coreQueue) Push(x any) { q.ids = append(q.ids, x.(int)) }

func (q *coreQueue) Pop() any {
	old := q.ids
	n := len(old)
	x := old[n-1]
	q.ids = old[:n-1]
	return x
}

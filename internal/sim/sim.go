package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/core"
	"lacc/internal/dram"
	"lacc/internal/energy"
	"lacc/internal/mem"
	"lacc/internal/network"
	"lacc/internal/nuca"
	"lacc/internal/stats"
	"lacc/internal/trace"
)

// L1 line coherence states (cache.Line.State).
const (
	lineS uint8 = iota + 1
	lineE
	lineM
	// lineReplica marks a victim-replication replica in a local L2 slice
	// (Section 2.1's Victim Replication baseline, enabled by
	// Config.VictimReplication). Replicas are read-only copies whose tile
	// remains a registered sharer at the line's home directory.
	lineReplica
)

// Per-(core, line) history used for the paper's miss-type classification
// (Section 4.4). The zero value means the line was never seen.
const (
	hNever uint8 = iota
	hCached
	hEvicted
	hInvalidated
	hRemote
)

// codeBase places the synthetic instruction region far from any data the
// workload allocators hand out.
const codeBase mem.Addr = 1 << 40

// dirEntry is a directory entry integrated with an L2 line: MESI state,
// ACKwise sharer list and the locality classifier of the paper. Entries are
// stored by value inside the flat directory table (see flat.go); only the
// adaptive protocol populates cls, drawing from the simulator's classifier
// pool.
type dirEntry struct {
	state     coherence.State
	sharers   coherence.SharerSet
	owner     int16
	busyUntil mem.Cycle
	cls       core.Classifier
}

// tile is one core's slice of the machine.
type tile struct {
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache
	dir tileDir
}

// coreState is one core's simulation context.
type coreState struct {
	id     int
	now    mem.Cycle
	stream trace.Stream
	// chunks is stream's batch interface when supported; buf/bufIdx hold
	// the in-flight chunk so the run loop consumes accesses with a slice
	// index instead of a dynamic dispatch each.
	chunks trace.ChunkStream
	buf    []mem.Access
	bufIdx int
	bd     stats.TimeBreakdown
	l1d    stats.MissStats

	l1iHits   uint64
	l1iMisses uint64

	history histStore

	done bool

	// Synthetic instruction stream state.
	pc        int
	fetchAcc  float64 // pending instruction-line fetches
	energyAcc float64 // pending fractional L1I energy events
	// l1iResident counts resident code lines; once it reaches
	// Config.CodeLines the L1-I can no longer miss (l1iWarm) and the fetch
	// walk short-circuits to hit counting.
	l1iResident int
	l1iWarm     bool

	// Synchronization state.
	waitingBarrier bool
	barrierArrive  mem.Cycle
}

type lockWaiter struct {
	core    int
	arrival mem.Cycle
}

type lockState struct {
	held  bool
	owner int
	queue []lockWaiter
}

// Simulator executes per-core access streams against the modeled machine.
// Construct with New; a Simulator runs one workload per Run. To run
// another workload, call Reset(cfg) first — it restores the
// freshly-constructed state while reusing the allocated tables, so a
// pooled Simulator amortizes its arenas across many runs.
type Simulator struct {
	cfg   Config
	proto Protocol
	mesh  *network.Mesh
	dram  *dram.Model
	nuca  *nuca.Placement
	tiles []tile
	cores []coreState

	// reference selects the map-backed storage layout (the pre-flat core)
	// instead of the open-addressed tables and arenas of flat.go. The two
	// layouts are behaviorally identical; the reference core exists so
	// differential tests can replay identical streams through both and
	// compare every result bit (see differential_test.go).
	reference bool

	golden  verStore // committed version per line
	dramVer verStore // version resident in DRAM

	locks     map[uint64]*lockState
	barrierID mem.Addr
	barrierN  int

	meter     energy.Meter
	invalHist stats.UtilizationHistogram
	evictHist stats.UtilizationHistogram

	promotions    uint64
	demotions     uint64
	wordReads     uint64
	wordWrites    uint64
	invalidations uint64
	bcastInvals   uint64

	replicaHits      uint64
	replicaInserts   uint64
	replicaEvictions uint64

	// clsPool recycles per-entry classifiers in the fast core (adaptive
	// protocol only); the reference core allocates fresh ones like the old
	// implementation did, so a broken Reset would show up differentially.
	clsPool *core.ClassifierPool

	// Transaction scratch, reused to keep the hot path allocation-free:
	// idScratch is a free-list of sharer-identity snapshots taken before
	// mutating multicast loops; the broadcast buffers hold per-tile arrival
	// times for the two (non-nesting) broadcast sites.
	idScratch  [][]int16
	bcastInval []mem.Cycle
	bcastEvict []mem.Cycle

	runQ coreQueue
}

// New builds a simulator for cfg.
func New(cfg Config) (*Simulator, error) {
	return newSimulator(cfg, false)
}

// newReference builds a simulator using the legacy map-backed storage
// layout. It exists for the differential tests only.
func newReference(cfg Config) (*Simulator, error) {
	return newSimulator(cfg, true)
}

func newSimulator(cfg Config, reference bool) (*Simulator, error) {
	s := &Simulator{reference: reference}
	if err := s.Reset(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// dirPointersFor returns the per-entry sharer pointer count the directory
// tables are built with: ACKwise-p for the adaptive protocol, a full-map
// vector for the baselines regardless of AckwisePointers.
func dirPointersFor(cfg Config) int {
	if cfg.protocolKind() != ProtocolAdaptive {
		return cfg.Cores
	}
	return cfg.AckwisePointers
}

// Reset re-initializes the simulator for cfg so the next Run behaves
// exactly as on a freshly constructed Simulator — same results bit for bit
// — while reusing the allocated storage wherever the old and new
// configurations agree: the flat directory/history/version tables, cache
// tag arrays, classifier slabs, mesh and DRAM queues are cleared in place
// instead of reallocated. Components whose geometry changed are rebuilt.
// The experiment layer's worker pool calls this between jobs; sweeps
// differ only in protocol parameters, so steady-state job turnover
// allocates almost nothing.
func (s *Simulator) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	old := s.cfg
	fresh := s.tiles == nil

	meshCfg := network.Config{
		Width:      cfg.MeshWidth,
		Height:     cfg.Cores / cfg.MeshWidth,
		HopLatency: cfg.HopLatency,
	}
	if s.mesh != nil && s.mesh.Matches(meshCfg) {
		s.mesh.Reset()
	} else {
		s.mesh = network.New(meshCfg)
	}

	if s.nuca != nil && s.nuca.Matches(cfg.Cores, cfg.MeshWidth) {
		s.nuca.Reset()
	} else {
		s.nuca = nuca.New(cfg.Cores, cfg.MeshWidth)
	}

	dramCfg := dram.Config{
		Controllers:   cfg.MemControllers,
		LatencyCycles: cfg.DRAMLatencyCycles,
		BytesPerCycle: cfg.DRAMBytesPerCycle,
		Tiles:         dram.DefaultTiles(cfg.MemControllers, cfg.MeshWidth, cfg.Cores/cfg.MeshWidth),
	}
	if s.dram != nil && s.dram.Matches(dramCfg) {
		s.dram.Reset()
	} else {
		s.dram = dram.New(dramCfg)
	}

	if s.golden.flat == nil && s.golden.ref == nil {
		s.golden = newVerStore(s.reference)
		s.dramVer = newVerStore(s.reference)
	} else {
		s.golden.clear()
		s.dramVer.clear()
	}

	// The classifier pool survives a reset when the adaptive protocol keeps
	// the same (cores, k) shape; outstanding classifiers are reclaimed from
	// the old directory entries below, so slabs are never re-carved.
	keepPool := !s.reference && s.clsPool != nil &&
		cfg.protocolKind() == ProtocolAdaptive &&
		s.clsPool.Matches(cfg.Cores, cfg.ClassifierK)
	if keepPool && !fresh {
		for i := range s.tiles {
			s.tiles[i].dir.forEach(func(_ mem.Addr, e *dirEntry) {
				if e.cls != nil {
					s.clsPool.Put(e.cls)
					e.cls = nil
				}
			})
		}
	}
	if !keepPool {
		s.clsPool = nil // the adaptive factory rebuilds it on demand
	}

	sameTiles := !fresh && len(s.tiles) == cfg.Cores &&
		old.L1ISizeKB == cfg.L1ISizeKB && old.L1IWays == cfg.L1IWays &&
		old.L1DSizeKB == cfg.L1DSizeKB && old.L1DWays == cfg.L1DWays &&
		old.L2SizeKB == cfg.L2SizeKB && old.L2Ways == cfg.L2Ways &&
		dirPointersFor(old) == dirPointersFor(cfg)
	if sameTiles {
		for i := range s.tiles {
			t := &s.tiles[i]
			t.l1i.Reset()
			t.l1d.Reset()
			t.l2.Reset()
			t.dir.clear()
		}
	} else {
		dirPointers := dirPointersFor(cfg)
		s.tiles = make([]tile, cfg.Cores)
		for i := range s.tiles {
			s.tiles[i] = tile{
				l1i: cache.New(cfg.L1ISizeKB*1024, cfg.L1IWays),
				l1d: cache.New(cfg.L1DSizeKB*1024, cfg.L1DWays),
				l2:  cache.New(cfg.L2SizeKB*1024, cfg.L2Ways),
				dir: newTileDir(dirPointers, s.reference),
			}
		}
	}

	if s.locks == nil {
		s.locks = make(map[uint64]*lockState)
	} else {
		clear(s.locks)
	}
	s.barrierID, s.barrierN = 0, 0

	s.meter = energy.Meter{}
	s.invalHist = stats.UtilizationHistogram{}
	s.evictHist = stats.UtilizationHistogram{}
	s.promotions, s.demotions = 0, 0
	s.wordReads, s.wordWrites = 0, 0
	s.invalidations, s.bcastInvals = 0, 0
	s.replicaHits, s.replicaInserts, s.replicaEvictions = 0, 0, 0

	s.cfg = cfg
	s.proto = newProtocol(s)
	return nil
}

// Run executes one stream per core to completion and returns the aggregated
// result. The streams are closed before returning. Run may be called again
// only after Reset.
func (s *Simulator) Run(streams []trace.Stream) (*Result, error) {
	if len(streams) != s.cfg.Cores {
		return nil, fmt.Errorf("sim: %d streams for %d cores", len(streams), s.cfg.Cores)
	}
	defer func() {
		for _, st := range streams {
			st.Close()
		}
	}()
	if len(s.cores) != s.cfg.Cores {
		s.cores = make([]coreState, s.cfg.Cores)
		for i := range s.cores {
			s.cores[i] = coreState{history: newHistStore(s.reference)}
		}
	}
	for i := range s.cores {
		// Reuse the core's history table (cleared) across Reset cycles; the
		// per-core flat table is one of the larger per-run allocations.
		h := s.cores[i].history
		h.clear()
		s.cores[i] = coreState{
			id:      i,
			stream:  streams[i],
			history: h,
		}
		if cs, ok := streams[i].(trace.ChunkStream); ok {
			s.cores[i].chunks = cs
		}
	}
	if cap(s.runQ.q) >= s.cfg.Cores {
		s.runQ.q = s.runQ.q[:0]
	} else {
		s.runQ.q = make([]queuedCore, 0, s.cfg.Cores)
	}
	for i := range s.cores {
		s.runQ.push(s.cores[i].now, int32(i))
	}

	// The globally earliest core executes one operation as an atomic
	// transaction, then is re-keyed at its advanced clock. The core stays
	// at the heap root while it executes (nothing else touches the queue
	// mid-transaction), so the requeue is a replaceTop — a single
	// sift-down that degenerates to two comparisons in the common case of
	// a core staying earliest across consecutive L1 hits — instead of a
	// full pop+push cycle. Keys are unique ((time, id) with ids distinct),
	// so the execution order is identical to the pop+push formulation.
	for len(s.runQ.q) > 0 {
		id := s.runQ.top()
		c := &s.cores[id]
		a, ok := c.next()
		if !ok {
			c.done = true
			s.runQ.popTop()
			s.maybeReleaseBarrier()
			continue
		}
		if a.Gap > 0 {
			c.now += mem.Cycle(a.Gap)
			c.bd.Compute += float64(a.Gap)
		}
		switch a.Kind {
		case mem.Read, mem.Write:
			s.instrFetch(c, a.Gap)
			s.proto.DataAccess(c, a.Kind, a.Addr)
			s.runQ.replaceTop(c.now, int32(id))
		case mem.Barrier:
			s.runQ.popTop()
			s.barrierArrive(c, a.Addr)
		case mem.Lock:
			s.runQ.popTop() // lockAcquire re-queues the core when granted
			s.lockAcquire(c, uint64(a.Addr))
		case mem.Unlock:
			s.lockRelease(c, uint64(a.Addr))
			s.runQ.replaceTop(c.now, int32(id))
		default:
			return nil, fmt.Errorf("sim: core %d emitted unknown op %v", id, a.Kind)
		}
	}
	if err := s.checkQuiescence(); err != nil {
		return nil, err
	}
	if s.cfg.CheckValues {
		if err := s.Audit(); err != nil {
			return nil, err
		}
	}
	return s.collect(), nil
}

// next returns the core's next trace operation, consuming whole chunks
// from batch-capable streams.
func (c *coreState) next() (mem.Access, bool) {
	if c.bufIdx < len(c.buf) {
		a := c.buf[c.bufIdx]
		c.bufIdx++
		return a, true
	}
	if c.chunks != nil {
		chunk, ok := c.chunks.NextChunk()
		if !ok {
			return mem.Access{}, false
		}
		c.buf, c.bufIdx = chunk, 1
		return chunk[0], true
	}
	return c.stream.Next()
}

// checkQuiescence verifies every core terminated (catches workload bugs
// such as unmatched barriers or leaked locks).
func (s *Simulator) checkQuiescence() error {
	for i := range s.cores {
		if !s.cores[i].done {
			return fmt.Errorf("sim: core %d deadlocked (barrier wait=%v)", i, s.cores[i].waitingBarrier)
		}
	}
	for id, l := range s.locks {
		if l.held || len(l.queue) > 0 {
			return fmt.Errorf("sim: lock %d leaked (held=%v, %d waiters)", id, l.held, len(l.queue))
		}
	}
	return nil
}

// barrierArrive parks a core at a barrier, releasing everyone when the last
// active core arrives. All cores must agree on the barrier identifier.
func (s *Simulator) barrierArrive(c *coreState, id mem.Addr) {
	if s.barrierN == 0 {
		s.barrierID = id
	} else if s.barrierID != id {
		panic(fmt.Sprintf("sim: barrier mismatch: core %d at %d, barrier %d in progress",
			c.id, id, s.barrierID))
	}
	c.waitingBarrier = true
	c.barrierArrive = c.now
	s.barrierN++
	s.maybeReleaseBarrier()
}

func (s *Simulator) activeCores() int {
	n := 0
	for i := range s.cores {
		if !s.cores[i].done {
			n++
		}
	}
	return n
}

func (s *Simulator) maybeReleaseBarrier() {
	if s.barrierN == 0 || s.barrierN < s.activeCores() {
		return
	}
	var latest mem.Cycle
	for i := range s.cores {
		if s.cores[i].waitingBarrier && s.cores[i].barrierArrive > latest {
			latest = s.cores[i].barrierArrive
		}
	}
	release := latest + mem.Cycle(s.cfg.BarrierLatency)
	for i := range s.cores {
		c := &s.cores[i]
		if !c.waitingBarrier {
			continue
		}
		c.bd.Sync += float64(release - c.barrierArrive)
		c.now = release
		c.waitingBarrier = false
		s.runQ.push(c.now, int32(i))
	}
	s.barrierN = 0
}

// lockAcquire grants a free lock immediately (charging the acquisition
// round trip) or parks the core in the lock's FIFO queue.
func (s *Simulator) lockAcquire(c *coreState, id uint64) {
	l := s.locks[id]
	if l == nil {
		l = &lockState{}
		s.locks[id] = l
	}
	if !l.held {
		l.held = true
		l.owner = c.id
		lat := mem.Cycle(s.cfg.LockLatency)
		c.bd.Sync += float64(lat)
		c.now += lat
		s.runQ.push(c.now, int32(c.id))
		return
	}
	l.queue = append(l.queue, lockWaiter{core: c.id, arrival: c.now})
}

// lockRelease hands the lock to the next waiter (FIFO) or frees it.
func (s *Simulator) lockRelease(c *coreState, id uint64) {
	l := s.locks[id]
	if l == nil || !l.held || l.owner != c.id {
		panic(fmt.Sprintf("sim: core %d released lock %d it does not hold", c.id, id))
	}
	c.now++ // the releasing store
	if len(l.queue) == 0 {
		l.held = false
		return
	}
	w := l.queue[0]
	l.queue = l.queue[1:]
	l.owner = w.core
	grant := c.now
	if w.arrival > grant {
		grant = w.arrival
	}
	grant += mem.Cycle(s.cfg.LockLatency)
	wc := &s.cores[w.core]
	wc.bd.Sync += float64(grant - w.arrival)
	wc.now = grant
	s.runQ.push(wc.now, int32(w.core))
}

// collect aggregates per-core statistics into a Result.
func (s *Simulator) collect() *Result {
	r := &Result{
		Protocol:               s.proto.Name(),
		Promotions:             s.promotions,
		Demotions:              s.demotions,
		WordReads:              s.wordReads,
		WordWrites:             s.wordWrites,
		Invalidations:          s.invalidations,
		BroadcastInvalidations: s.bcastInvals,
		InvalidationUtil:       s.invalHist,
		EvictionUtil:           s.evictHist,
		RouterFlits:            s.mesh.RouterFlits,
		LinkFlits:              s.mesh.LinkFlits,
		Messages:               s.mesh.Messages,
		DRAMReads:              s.dram.Reads,
		DRAMWrites:             s.dram.Writes,
		DRAMQueueCycles:        s.dram.QueueCycles,
		PrivatePages:           s.nuca.PrivatePages,
		SharedPages:            s.nuca.SharedPages,
		Reclassifications:      s.nuca.Reclassifications,
		ReplicaHits:            s.replicaHits,
		ReplicaInserts:         s.replicaInserts,
		ReplicaEvictions:       s.replicaEvictions,
	}
	r.PerCore = make([]CoreStats, len(s.cores))
	for i := range s.cores {
		c := &s.cores[i]
		if c.now > r.CompletionCycles {
			r.CompletionCycles = c.now
		}
		r.Time.Add(c.bd)
		r.L1D.Add(c.l1d)
		r.L1IHits += c.l1iHits
		r.L1IMisses += c.l1iMisses
		r.PerCore[i] = CoreStats{
			Finish:  c.now,
			Time:    c.bd,
			L1D:     c.l1d,
			L1IHits: c.l1iHits, L1IMisses: c.l1iMisses,
		}
	}
	r.DataAccesses = r.L1D.Accesses()
	s.meter.RouterFlits = s.mesh.RouterFlits
	s.meter.LinkFlits = s.mesh.LinkFlits
	r.Meter = s.meter
	r.Energy = s.meter.Breakdown(s.cfg.Energy)
	s.proto.Finalize(r)
	return r
}

// goldenWrite commits a write to the golden store and returns the new
// version.
func (s *Simulator) goldenWrite(la mem.Addr) uint64 {
	return s.golden.bump(la)
}

// checkVersion asserts a read observed the latest committed write.
func (s *Simulator) checkVersion(ctx string, la mem.Addr, ver uint64) {
	if want := s.golden.get(la); ver != want {
		panic(fmt.Sprintf("sim: coherence violation at %s: line %#x version %d, golden %d",
			ctx, la, ver, want))
	}
}

// removeDirEntry releases la's directory entry at its home tile, recycling
// the entry's classifier through the pool in the fast core.
func (s *Simulator) removeDirEntry(home int, la mem.Addr, e *dirEntry) {
	if e.cls != nil {
		if !s.reference {
			s.clsPool.Put(e.cls)
		}
		e.cls = nil
	}
	s.tiles[home].dir.remove(la)
}

// borrowIDs returns a reusable copy of src, so mutating multicast loops can
// iterate a stable snapshot of a sharer list without allocating. Pair with
// returnIDs. The free-list (rather than a single buffer) keeps accidental
// nesting safe.
func (s *Simulator) borrowIDs(src []int16) []int16 {
	var buf []int16
	if n := len(s.idScratch); n > 0 {
		buf = s.idScratch[n-1]
		s.idScratch = s.idScratch[:n-1]
	}
	return append(buf[:0], src...)
}

func (s *Simulator) returnIDs(buf []int16) {
	s.idScratch = append(s.idScratch, buf)
}

// queuedCore is one run-queue entry: a core and the local time at which it
// became runnable. A core's clock is final when pushed, so the key is a
// snapshot, and keys are unique (a core is queued at most once; id breaks
// time ties), making pop order fully deterministic.
type queuedCore struct {
	now mem.Cycle
	id  int32
}

// coreQueue is a binary min-heap of runnable cores ordered by (local time,
// core id). It replaces container/heap: the interface-based comparator and
// its pointer chase into the core array was the hottest single symbol of
// the simulation loop.
type coreQueue struct {
	q []queuedCore
}

func (k queuedCore) less(o queuedCore) bool {
	return k.now < o.now || (k.now == o.now && k.id < o.id)
}

func (q *coreQueue) push(now mem.Cycle, id int32) {
	q.q = append(q.q, queuedCore{now: now, id: id})
	i := len(q.q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.q[i].less(q.q[parent]) {
			break
		}
		q.q[i], q.q[parent] = q.q[parent], q.q[i]
		i = parent
	}
}

// top returns the earliest core without removing it.
func (q *coreQueue) top() int { return int(q.q[0].id) }

// replaceTop re-keys the root core at its advanced clock.
func (q *coreQueue) replaceTop(now mem.Cycle, id int32) {
	q.q[0] = queuedCore{now: now, id: id}
	q.siftDown()
}

// popTop removes the root core.
func (q *coreQueue) popTop() {
	last := len(q.q) - 1
	q.q[0] = q.q[last]
	q.q = q.q[:last]
	if last > 0 {
		q.siftDown()
	}
}

func (q *coreQueue) siftDown() {
	n := len(q.q)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.q[l].less(q.q[smallest]) {
			smallest = l
		}
		if r < n && q.q[r].less(q.q[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.q[i], q.q[smallest] = q.q[smallest], q.q[i]
		i = smallest
	}
}

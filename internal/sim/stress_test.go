package sim_test

import (
	"testing"
	"testing/quick"

	"lacc/internal/mem"
	"lacc/internal/sim"
	"lacc/internal/trace"
)

// TestRandomTracesUpholdCoherence is a property-based stress test: random
// multi-core read/write traces over a small shared footprint must complete
// with the golden-store checker silent, under the adaptive protocol, the
// Limited-1 classifier (the most error-prone configuration) and victim
// replication all at once. The checker panics on any stale read, so
// completion is the property.
func TestRandomTracesUpholdCoherence(t *testing.T) {
	const cores = 4
	run := func(seed uint64, pct uint8, vr bool) bool {
		cfg := sim.Default()
		cfg.Cores = cores
		cfg.MeshWidth = 2
		cfg.MemControllers = 2
		cfg.L1DSizeKB = 1 // tiny caches maximize evictions and conflicts
		cfg.L1ISizeKB = 1
		cfg.L2SizeKB = 8
		cfg.ClassifierK = 1
		cfg.Protocol.PCT = int(pct%8) + 1
		cfg.VictimReplication = vr

		// Deterministic pseudo-random traces over 64 shared lines across 4
		// pages, with barriers aligning the cores occasionally.
		state := seed
		next := func() uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return state >> 33
		}
		streams := make([]trace.Stream, cores)
		for c := 0; c < cores; c++ {
			var ops []mem.Access
			for i := 0; i < 400; i++ {
				r := next()
				addr := base + mem.Addr(r%256)*64 // 256 lines over 4 pages
				kind := mem.Read
				if r%5 == 0 {
					kind = mem.Write
				}
				ops = append(ops, mem.Access{Kind: kind, Addr: addr, Gap: uint32(r % 7)})
				if i%100 == 99 {
					ops = append(ops, mem.Access{Kind: mem.Barrier, Addr: mem.Addr(i / 100)})
				}
			}
			streams[c] = trace.FromSlice(ops)
		}
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := s.Run(streams)
		if err != nil {
			t.Fatalf("Run(seed=%d): %v", seed, err)
		}
		return res.DataAccesses == uint64(cores*400)
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomTracesUpholdCoherenceAllProtocols repeats the random-trace
// stress under every registered protocol with tiny caches (maximizing
// evictions, back-invalidations and write races). The golden-store checker
// validates every read and the final audit cross-checks directory and
// cache state, so completion is the property.
func TestRandomTracesUpholdCoherenceAllProtocols(t *testing.T) {
	const cores = 4
	for _, kind := range sim.ProtocolKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			run := func(seed uint64) bool {
				cfg := sim.Default()
				cfg.Cores = cores
				cfg.MeshWidth = 2
				cfg.MemControllers = 2
				cfg.L1DSizeKB = 1
				cfg.L1ISizeKB = 1
				cfg.L2SizeKB = 8
				cfg.ProtocolKind = kind

				state := seed
				next := func() uint64 {
					state = state*6364136223846793005 + 1442695040888963407
					return state >> 33
				}
				streams := make([]trace.Stream, cores)
				for c := 0; c < cores; c++ {
					var ops []mem.Access
					for i := 0; i < 400; i++ {
						r := next()
						addr := base + mem.Addr(r%256)*64
						kindOp := mem.Read
						if r%5 == 0 {
							kindOp = mem.Write
						}
						ops = append(ops, mem.Access{Kind: kindOp, Addr: addr, Gap: uint32(r % 7)})
						if i%100 == 99 {
							ops = append(ops, mem.Access{Kind: mem.Barrier, Addr: mem.Addr(i / 100)})
						}
					}
					streams[c] = trace.FromSlice(ops)
				}
				s, err := sim.New(cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				res, err := s.Run(streams)
				if err != nil {
					t.Fatalf("Run(seed=%d): %v", seed, err)
				}
				return res.DataAccesses == uint64(cores*400)
			}
			if err := quick.Check(run, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestResultHelperEdgeCases(t *testing.T) {
	var r sim.Result
	if got := r.Imbalance(); got != 1 {
		t.Fatalf("empty Imbalance = %v, want 1", got)
	}
	r.Time.Compute = 10
	if got := r.PerCoreTime(0); got != r.Time {
		t.Fatalf("PerCoreTime(0) = %+v, want unscaled", got)
	}
	r.PerCore = []sim.CoreStats{{Finish: 0}, {Finish: 0}}
	if got := r.Imbalance(); got != 1 {
		t.Fatalf("all-zero Imbalance = %v, want 1", got)
	}
}

package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/mem"
	"lacc/internal/nuca"
)

// neatProtocol is a low-complexity coherence baseline (after the Neat
// proposal, arXiv:2107.05453): MESI semantics on the access path, but with
// deliberately bounded sharer metadata — a single sharer pointer plus an
// overflow count instead of MESI's full map — and self-invalidation of
// shared copies at synchronization points. A core arriving at a barrier or
// acquiring a lock drops every Shared line from its L1 and deregisters at
// the homes, which is what lets the directory stay tiny: most sharer sets
// never outlive a synchronization epoch, and the rare overflowed set falls
// back to a broadcast exactly like ACKwise.
//
// Model notes: writes invalidate like MESI (data-race-free programs are
// coherent without waiting for the self-invalidation, so SWMR holds under
// the model checker, which steps only reads and writes); self-invalidated
// copies are clean by construction (S copies are never dirty), so the
// notification is a single header flit and the core does not wait on it.
type neatProtocol struct {
	fullMapDirectory
	selfScratch []cache.Line // victims collected by syncSelfInvalidate
}

func init() {
	RegisterProtocol(ProtocolNeat, func(s *Simulator) Protocol {
		return &neatProtocol{fullMapDirectory: fullMapDirectory{s}}
	})
}

// Name implements Protocol.
func (p *neatProtocol) Name() string { return string(ProtocolNeat) }

// Finalize implements Protocol. The self-invalidation count lives on the
// Simulator and is already collected.
func (p *neatProtocol) Finalize(r *Result) {}

// DataAccess executes one data read or write: reads hit in any state,
// writes hit on an E or M copy, and everything else walks the bounded
// directory at the home slice, exactly as MESI would.
func (p *neatProtocol) DataAccess(c *coreState, kind mem.AccessKind, addr mem.Addr) {
	p.dataAccess(p, c, kind, addr)
}

// missPath handles an L1 miss (or upgrade): it consults R-NUCA for the
// home slice and walks the bounded directory there. Every miss ends with a
// private copy in the requester's L1.
func (p *neatProtocol) missPath(c *coreState, kind mem.AccessKind, addr mem.Addr, upgrade bool) {
	la := mem.LineOf(addr)
	t0 := c.now
	if kind == mem.Write {
		p.meter.L1DWrites++
	} else {
		p.meter.L1DReads++
	}

	// L1 tag probe detected the miss.
	t := t0 + mem.Cycle(p.cfg.L1DLatency)
	var l1l2, wait, sharersLat, offchip mem.Cycle
	l1l2 = t - t0

	home, recl := p.dataHome(addr, c.id)
	if recl != nil {
		p.PageMove(recl, t)
		t += mem.Cycle(p.cfg.PageMoveLatency)
		offchip += mem.Cycle(p.cfg.PageMoveLatency)
	}

	// Requests are address-only: the written data stays in the L1 until
	// write-back, so the request is a single header flit.
	tArr := p.mesh.Unicast(c.id, home, 1, t)
	l1l2 += tArr - t
	t = tArr

	// The whole home-side transaction — directory walk, sharer round
	// trips, grant — runs under the home tile's lock.
	p.lockHome(home)
	entry, l2line, tDir, wait, fill := p.lookupEntry(p, c, home, la, t)
	offchip += fill
	l1l2 += mem.Cycle(p.cfg.L2Latency)
	t = tDir

	outcome := p.missOutcome(c, la, upgrade)

	if kind == mem.Read {
		// The most recent data must be at the home before a read fill.
		tWB := p.fetchOwnerForRead(home, la, entry, l2line, t)
		sharersLat += tWB - t
		t = tWB
	} else {
		// Write: every other private copy is invalidated.
		tInv := p.invalidateSharers(home, la, entry, l2line, c.id, t)
		sharersLat += tInv - t
		t = tInv
	}

	p.tiles[home].l2.Touch(l2line, t)
	entry.busyUntil = t

	tEnd := p.grantLine(c, kind, la, home, entry, l2line, upgrade, t)
	p.unlockHome(home)
	l1l2 += tEnd - t
	p.setHistory(c.id, la, hCached)

	c.l1d.Record(outcome)
	c.bd.L1ToL2 += float64(l1l2)
	c.bd.L2Waiting += float64(wait)
	c.bd.L2Sharers += float64(sharersLat)
	c.bd.OffChip += float64(offchip)
	if p.cfg.CheckValues {
		if sum := l1l2 + wait + sharersLat + offchip; sum != tEnd-t0 {
			panic(fmt.Sprintf("sim: latency components %d != total %d", sum, tEnd-t0))
		}
	}
	c.now = tEnd
}

// grantLine hands a private copy (or upgraded write permission) to the
// requester and installs it in the L1, evicting as needed. It returns the
// time the reply (tail flit) reaches the requester.
func (p *neatProtocol) grantLine(c *coreState, kind mem.AccessKind, la mem.Addr, home int,
	entry *dirEntry, l2line *cache.Line, upgrade bool, t mem.Cycle) mem.Cycle {

	if kind == mem.Write && !upgrade {
		// invalidateSharers left the line uncached: a plain Modified fill.
		if entry.sharers.Count() != 0 {
			if !p.relaxed() {
				panic(fmt.Sprintf("sim: write grant with %d live sharers", entry.sharers.Count()))
			}
			// Phantom registrations whose copies vanished under deferred
			// eviction; their acks were already collected.
			entry.sharers.Clear()
		}
		return p.grantModifiedFill(p, c, la, home, entry, l2line, t)
	}

	replyFlits := 9 // header + 8 line flits
	if upgrade {
		replyFlits = 1 // permission only; data already in the L1
	} else {
		p.meter.L2LineReads++
	}

	if kind == mem.Read {
		p.grantRead(c, entry)
	} else {
		// Upgrade: invalidateSharers left the requester as the sole
		// registered sharer (the overflow broadcast re-identifies it); it
		// sheds that sharership and takes the line Modified.
		if entry.sharers.Contains(c.id) {
			entry.sharers.Remove(c.id)
		}
		if entry.sharers.Count() != 0 {
			if !p.relaxed() {
				panic(fmt.Sprintf("sim: write grant with %d live sharers", entry.sharers.Count()))
			}
			entry.sharers.Clear()
		}
		entry.state = coherence.ModifiedState
		entry.owner = int16(c.id)
		p.meter.DirUpdates++
	}

	tEnd := p.mesh.Unicast(home, c.id, replyFlits, t)
	p.lockL1(c.id)
	line := p.installLine(p, c, la, home, l2line, upgrade, tEnd)

	line.Util++
	p.tiles[c.id].l1d.Touch(line, tEnd)
	switch {
	case kind == mem.Write:
		line.State = lineM
		line.Dirty = true
		line.Version = p.goldenWrite(la)
	case entry.state == coherence.ExclusiveState:
		line.State = lineE
	default:
		line.State = lineS
	}
	p.unlockL1(c.id)
	if kind == mem.Read && p.cfg.CheckValues {
		p.checkVersion("private fill read", la, line.Version)
	}
	return tEnd
}

// invalidateSharers invalidates every private copy except the requester's
// (`except`, -1 for none). The bounded pointer overflows as soon as a
// second sharer registers, in which case the invalidation broadcasts and
// holders are discovered by probing, exactly like ACKwise; otherwise the
// single identified sharer gets a unicast. Returns the time the last
// acknowledgement reaches home.
func (p *neatProtocol) invalidateSharers(home int, la mem.Addr, entry *dirEntry,
	l2line *cache.Line, except int, t mem.Cycle) mem.Cycle {

	switch entry.state {
	case coherence.Uncached:
		return t
	case coherence.ExclusiveState, coherence.ModifiedState:
		owner := int(entry.owner)
		if owner == except {
			return t
		}
		tReq := p.mesh.Unicast(home, owner, 1, t)
		tEnd := p.invalCopy(home, la, owner, l2line, tReq)
		entry.state = coherence.Uncached
		entry.owner = -1
		return tEnd
	}

	latest := t
	if entry.sharers.Overflowed() {
		p.bcastInvals++
		arrivals := p.mesh.BroadcastInto(p.bcastInval, home, 1, t)
		p.bcastInval = arrivals
		for id := range p.tiles {
			if id == except || !p.tileHasCopy(id, la) {
				continue
			}
			tEnd := p.invalCopy(home, la, id, l2line, arrivals[id])
			if tEnd > latest {
				latest = tEnd
			}
		}
		keep := except >= 0 && p.tileHasCopy(except, la)
		entry.sharers.Clear()
		if keep {
			entry.sharers.Add(except)
		}
	} else {
		ids := p.borrowIDs(entry.sharers.Identified())
		for _, id16 := range ids {
			id := int(id16)
			if id == except {
				continue
			}
			tReq := p.mesh.Unicast(home, id, 1, t)
			tEnd := p.invalCopy(home, la, id, l2line, tReq)
			if tEnd > latest {
				latest = tEnd
			}
			entry.sharers.Remove(id)
		}
		p.returnIDs(ids)
	}
	if entry.sharers.Count() == 0 {
		entry.state = coherence.Uncached
	}
	return latest
}

// syncSelfInvalidate drops every Shared line from the core's L1 when it
// reaches a synchronization point (barrier arrival or lock acquisition)
// and deregisters the copies at their homes. S copies are clean by
// construction, so each notification is a fire-and-forget header flit the
// core does not wait on; owned (E/M) lines stay put — the owner's writes
// are already globally visible through the directory.
func (p *neatProtocol) syncSelfInvalidate(c *coreState) {
	p.selfScratch = p.selfScratch[:0]
	p.lockL1(c.id)
	l1 := p.tiles[c.id].l1d
	l1.ForEach(func(l *cache.Line) {
		if l.State == lineS {
			p.selfScratch = append(p.selfScratch, *l)
		}
	})
	for i := range p.selfScratch {
		l1.Invalidate(p.selfScratch[i].Addr)
		c.history.set(p.selfScratch[i].Addr, hInvalidated)
	}
	p.unlockL1(c.id)

	for i := range p.selfScratch {
		v := &p.selfScratch[i]
		la, home := v.Addr, int(v.Home)
		p.mesh.Unicast(c.id, home, 1, c.now)
		p.lockHome(home)
		entry := p.tiles[home].dir.probe(la)
		if entry != nil && entry.state == coherence.SharedState {
			// The overflow count stands in for unidentified sharers, so the
			// relaxed guard must ask MaybeSharer, not Contains.
			if !p.relaxed() || entry.sharers.MaybeSharer(c.id) {
				entry.sharers.Remove(c.id)
			}
			if entry.sharers.Count() == 0 {
				entry.state = coherence.Uncached
			}
			p.meter.DirUpdates++
		} else if entry == nil && !p.relaxed() {
			panic(fmt.Sprintf("sim: self-invalidation of line %#x without directory entry", la))
		}
		p.unlockHome(home)
		p.selfInvals++
	}
}

// L1Evict sends the eviction notification for a displaced L1 line: dirty
// data folds back into the home line and the directory releases the
// sharership. Unlike the full-map baselines, the sharer may be an
// unidentified member of an overflowed set, so the relaxed guard asks
// MaybeSharer (a strict-mode Remove decrements the overflow count).
func (p *neatProtocol) L1Evict(c *coreState, victim cache.Line, t mem.Cycle) {
	la := victim.Addr
	home := int(victim.Home)
	flits := 1
	if victim.Dirty {
		flits = 9
	}
	p.mesh.Unicast(c.id, home, flits, t)

	ht := &p.tiles[home]
	entry := ht.dir.probe(la)
	if entry == nil {
		if p.relaxed() {
			// Torn down by a concurrent L2 eviction or page move; the
			// back-invalidation already accounted the removal.
			return
		}
		panic(fmt.Sprintf("sim: eviction of line %#x without directory entry", la))
	}
	l2line := ht.l2.Probe(la)
	if l2line == nil {
		if p.relaxed() {
			return
		}
		panic(fmt.Sprintf("sim: eviction of line %#x absent from inclusive L2", la))
	}
	if victim.Dirty {
		l2line.Version = victim.Version
		l2line.Dirty = true
		p.meter.L2LineWrites++
	}
	if entry.owner == int16(c.id) {
		entry.state = coherence.Uncached
		entry.owner = -1
	} else if !p.relaxed() || entry.sharers.MaybeSharer(c.id) {
		entry.sharers.Remove(c.id)
		if entry.sharers.Count() == 0 && entry.state == coherence.SharedState {
			entry.state = coherence.Uncached
		}
	}
	p.meter.DirUpdates++
	if p.cfg.TrackUtilization {
		p.evictHist.Record(victim.Util)
	}
	p.setHistory(c.id, la, hEvicted)
}

// L2Evict back-invalidates every private copy of a displaced home line and
// writes dirty data back to DRAM. An overflowed sharer set broadcasts and
// probes for holders, like ACKwise; instruction lines have no directory
// entry and are dropped.
func (p *neatProtocol) L2Evict(home int, victim cache.Line, t mem.Cycle) {
	la := victim.Addr
	ht := &p.tiles[home]
	entry := ht.dir.probe(la)
	if entry == nil {
		return // read-only instruction replica
	}
	version := victim.Version
	dirty := victim.Dirty

	backInval := func(id int) {
		tReq := p.mesh.Unicast(home, id, 1, t)
		tReq += mem.Cycle(p.cfg.L1DLatency)
		p.lockL1(id)
		line, ok := p.tiles[id].l1d.Invalidate(la)
		if !ok {
			p.unlockL1(id)
			if !p.relaxed() {
				panic(fmt.Sprintf("sim: back-invalidation of absent line %#x at tile %d", la, id))
			}
			// Displaced concurrently; ack without data.
			p.mesh.Unicast(id, home, 1, tReq)
			return
		}
		p.cores[id].history.set(la, hEvicted)
		p.unlockL1(id)
		flits := 1
		if line.Dirty {
			flits = 9
			dirty = true
			if line.Version > version {
				version = line.Version
			}
		}
		p.mesh.Unicast(id, home, flits, tReq)
		if p.cfg.TrackUtilization {
			p.evictHist.Record(line.Util)
		}
	}

	switch entry.state {
	case coherence.ExclusiveState, coherence.ModifiedState:
		backInval(int(entry.owner))
	case coherence.SharedState:
		if entry.sharers.Overflowed() {
			p.bcastEvict = p.mesh.BroadcastInto(p.bcastEvict, home, 1, t)
			p.bcastInvals++
			for id := range p.tiles {
				if p.tileHasCopy(id, la) {
					backInval(id)
				}
			}
		} else {
			ids := p.borrowIDs(entry.sharers.Identified())
			for _, id := range ids {
				backInval(int(id))
			}
			p.returnIDs(ids)
		}
	}
	if dirty {
		ctrl := p.dram.ControllerOf(la)
		mc := p.dram.TileOf(ctrl)
		p.mesh.Unicast(home, mc, 9, t)
		p.dram.Write(ctrl, mem.LineBytes, t)
		p.dramVerSet(la, version)
		p.meter.L2LineReads++
	}
	p.removeDirEntry(home, la, entry)
}

// PageMove applies the R-NUCA private→shared reclassification through the
// overflow-aware invalidation path (the embedded full-map PageMove would
// miss unidentified sharers of an overflowed set).
func (p *neatProtocol) PageMove(recl *nuca.Reclassification, t mem.Cycle) {
	oldHome := recl.OldHome
	// Callers invoke PageMove before taking the new home's lock, so the old
	// home's lock nests inside nothing here.
	p.lockHome(oldHome)
	defer p.unlockHome(oldHome)
	ht := &p.tiles[oldHome]
	for i := 0; i < mem.PageBytes/mem.LineBytes; i++ {
		la := recl.Page + mem.Addr(i*mem.LineBytes)
		l2line := ht.l2.Probe(la)
		if l2line == nil {
			continue
		}
		entry := ht.dir.probe(la)
		if entry != nil {
			p.invalidateSharers(oldHome, la, entry, l2line, -1, t)
			p.removeDirEntry(oldHome, la, entry)
		}
		old, _ := ht.l2.Invalidate(la)
		ctrl := p.dram.ControllerOf(la)
		if old.Dirty {
			p.dram.Write(ctrl, mem.LineBytes, t)
			p.dramVerSet(la, old.Version)
			p.mesh.Unicast(oldHome, p.dram.TileOf(ctrl), 9, t)
		}
		p.meter.L2LineReads++
	}
}

package sim

import (
	"fmt"
	"sort"

	"lacc/internal/cache"
	"lacc/internal/mem"
	"lacc/internal/nuca"
	"lacc/internal/stats"
)

// Protocol is the pluggable coherence protocol. A Protocol owns the entire
// L1 data path — hits, the full miss/transaction walk through the home
// directory, and the directory state transitions — plus the reaction to
// cache displacement at both levels and to R-NUCA page migration. The
// simulator core provides the substrate (tiles, mesh, DRAM, golden store,
// energy meter) and is protocol-agnostic.
//
// Implementations register themselves with RegisterProtocol under a
// ProtocolKind; Config.ProtocolKind selects one per simulation. Six
// implementations ship in this package:
//
//   - ProtocolAdaptive — the paper's locality-aware adaptive protocol
//     (ACKwise directory, private/remote classification, remote word
//     accesses), in adaptive.go,
//   - ProtocolMESI — a classic full-map MESI directory baseline (whole-line
//     transfers only, exact sharer vector), in mesi.go,
//   - ProtocolDragon — a Dragon-style write-update directory baseline
//     (writes to shared lines update all copies instead of invalidating
//     them), in dragon.go,
//   - ProtocolDLS — a directoryless shared-LLC baseline (every data access
//     is a remote word access at the home slice; no private caching, no
//     directory state), in dls.go,
//   - ProtocolNeat — a low-complexity coherence baseline with bounded
//     sharer metadata (one pointer plus an overflow count) and
//     self-invalidation of shared copies at synchronization points, in
//     neat.go,
//   - ProtocolHybrid — per-line MESI/Dragon switching driven by the
//     locality classifier (private-mode sharers receive Dragon word
//     updates, remote-mode sharers are MESI-invalidated), in hybrid.go.
type Protocol interface {
	// Name returns the registered kind string for reports and results.
	Name() string
	// DataAccess executes one data read or write for core c, advancing the
	// core's clock and accounting latency, energy and traffic.
	DataAccess(c *coreState, kind mem.AccessKind, addr mem.Addr)
	// L1Evict handles a line displaced from a core's L1 at time t: the
	// eviction notification, write-back and directory release. The core
	// does not wait on it.
	L1Evict(c *coreState, victim cache.Line, t mem.Cycle)
	// L2Evict handles a home L2 slice eviction at time t: the inclusive
	// hierarchy back-invalidates all private copies and writes dirty data
	// back to DRAM.
	L2Evict(home int, victim cache.Line, t mem.Cycle)
	// PageMove applies an R-NUCA private->shared page reclassification:
	// the page's lines migrate out of the old home slice.
	PageMove(recl *nuca.Reclassification, t mem.Cycle)
	// Finalize merges protocol-specific counters into the run result.
	Finalize(r *Result)
}

// ProtocolKind names a registered coherence protocol implementation.
type ProtocolKind string

// Registered protocol kinds. The empty string selects ProtocolAdaptive.
const (
	ProtocolAdaptive ProtocolKind = "adaptive"
	ProtocolMESI     ProtocolKind = "mesi"
	ProtocolDragon   ProtocolKind = "dragon"
	ProtocolDLS      ProtocolKind = "dls"
	ProtocolNeat     ProtocolKind = "neat"
	ProtocolHybrid   ProtocolKind = "hybrid"
)

// protocolFactories maps registered kinds to constructors. Protocols are
// built per simulation: a factory receives the Simulator and returns a
// Protocol bound to it.
var protocolFactories = map[ProtocolKind]func(*Simulator) Protocol{}

// RegisterProtocol adds a protocol implementation to the registry. It
// panics on duplicate registration (registration happens in init funcs).
func RegisterProtocol(kind ProtocolKind, factory func(*Simulator) Protocol) {
	if kind == "" {
		panic("sim: RegisterProtocol with empty kind")
	}
	if _, dup := protocolFactories[kind]; dup {
		panic(fmt.Sprintf("sim: protocol %q registered twice", kind))
	}
	protocolFactories[kind] = factory
}

// ProtocolKinds returns the registered protocol kinds, sorted.
func ProtocolKinds() []ProtocolKind {
	kinds := make([]ProtocolKind, 0, len(protocolFactories))
	for k := range protocolFactories {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// newProtocol instantiates the configured protocol for s. Config.Validate
// has already checked the kind is registered.
func newProtocol(s *Simulator) Protocol {
	return protocolFactories[s.cfg.protocolKind()](s)
}

// Shared protocol-neutral machinery. The helpers below are used by every
// protocol implementation (and the instruction-fetch path); they touch no
// protocol-specific state.

// protocolCore is the slice of a protocol implementation the shared
// helpers call back into: the protocol's miss/transaction walk and its
// directory-entry initializer (classifier-bearing for adaptive,
// classifier-free full-map for the baselines). initDirEntry receives a
// zeroed entry whose sharer set is already bound to the directory's
// identity arena.
type protocolCore interface {
	missPath(c *coreState, kind mem.AccessKind, addr mem.Addr, upgrade bool)
	initDirEntry(e *dirEntry)
}

// dataAccess executes the protocol-neutral L1 hit path — reads hit in any
// state, writes hit on an E or M copy (E upgrades to M silently) — and
// hands everything else to the protocol's miss path: a plain miss, or a
// write to an S copy (an upgrade under invalidation protocols, an update
// transaction under Dragon). The engine's monomorphic loops (engine.go)
// inline this dispatch; the shared l1DataHit epilogue keeps the two paths
// bit-identical by construction.
func (s *Simulator) dataAccess(p protocolCore, c *coreState, kind mem.AccessKind, addr mem.Addr) {
	la := mem.LineOf(addr)
	// The requester's own L1 array is mutated by remote invalidations in
	// the sharded engine, so even the hit path probes under the L1 lock
	// (no-op when sequential).
	s.lockL1(c.id)
	if line := s.tiles[c.id].l1d.Probe(la); line != nil {
		if kind == mem.Read || line.State != lineS {
			s.l1DataHit(c, line, kind, la)
			s.unlockL1(c.id)
			return
		}
		s.unlockL1(c.id)
		p.missPath(c, kind, addr, true)
		return
	}
	s.unlockL1(c.id)
	p.missPath(c, kind, addr, false)
}

// l1DataHit completes a data access that hits in the requester's L1:
// statistics, LRU touch, the silent E-to-M upgrade on writes and the L1
// access latency. line is the requester's own L1-D line for la.
func (s *Simulator) l1DataHit(c *coreState, line *cache.Line, kind mem.AccessKind, la mem.Addr) {
	c.l1d.Hits++
	line.Util++
	s.tiles[c.id].l1d.Touch(line, c.now)
	if kind == mem.Write {
		s.meter.L1DWrites++
		line.State = lineM
		line.Dirty = true
		line.Version = s.goldenWrite(la)
	} else {
		s.meter.L1DReads++
		if s.cfg.CheckValues {
			s.checkVersion("L1 read hit", la, line.Version)
		}
	}
	c.now += mem.Cycle(s.cfg.L1DLatency)
}

// lookupEntry walks the home slice for la at time t for requester c: it
// fills the L2 from DRAM when absent (allocating a directory entry through
// the protocol), serializes on the line's busy window, and charges the L2
// access. It returns the entry, the line, the advanced time and the
// wait/off-chip latency components.
//
// Both home-side lookups are accelerated by per-core MRU hints: a core
// performing word-granular remote accesses walks the same (home, line)
// transaction back to back, so the directory slot (epoch-guarded against
// table reallocation, see dirTable.epoch) and the home L2 line
// (cache.Holds) usually validate without a probe. Hints are probe results
// only — validation failure falls back to the full probes — so behavior is
// bit-identical with or without them.
func (s *Simulator) lookupEntry(p protocolCore, c *coreState, home int, la mem.Addr, t mem.Cycle) (
	entry *dirEntry, l2line *cache.Line, tOut, wait, offchip mem.Cycle) {

	ht := &s.tiles[home]
	if d := ht.dir.flat; d != nil {
		// An epoch match guarantees dirHintIdx was taken against the
		// current arrays, so the bounds and the key comparison are sound;
		// removal tombstones and wholesale clears rewrite the key word, so
		// a stale hint can never validate.
		if c.dirHintTile == int32(home) && c.dirHintEpoch == d.epoch &&
			d.keys[c.dirHintIdx] == mem.LineKey(la) {
			entry = &d.entries[c.dirHintIdx]
		} else if i := d.probeIdx(la); i >= 0 {
			entry = &d.entries[i]
			c.dirHintIdx, c.dirHintEpoch, c.dirHintTile = int32(i), d.epoch, int32(home)
		}
	} else {
		entry = ht.dir.probe(la)
	}
	if hl := c.l2Hint; c.l2HintTile == int32(home) && ht.l2.Holds(hl, la) {
		l2line = hl
	} else if l2line = ht.l2.Probe(la); l2line != nil {
		c.l2Hint, c.l2HintTile = l2line, int32(home)
	}
	if l2line == nil {
		if entry != nil {
			panic(fmt.Sprintf("sim: directory entry without L2 line %#x", la))
		}
		var fillDone mem.Cycle
		l2line, fillDone = s.l2Fill(home, la, t)
		offchip = fillDone - t
		t = fillDone
		entry = ht.dir.insert(la)
		p.initDirEntry(entry)
	} else if entry == nil {
		panic(fmt.Sprintf("sim: data access to instruction line %#x", la))
	}

	if entry.busyUntil > t {
		wait = entry.busyUntil - t
		t += wait
	}
	t += mem.Cycle(s.cfg.L2Latency)
	s.meter.DirLookups++
	return entry, l2line, t, wait, offchip
}

// missOutcome classifies a miss per Section 4.4 from the core's history
// with the line.
func (s *Simulator) missOutcome(c *coreState, la mem.Addr, upgrade bool) stats.MissKind {
	if upgrade {
		return stats.MissUpgrade
	}
	s.lockL1(c.id)
	h := c.history.get(la)
	s.unlockL1(c.id)
	switch h {
	case hNever:
		return stats.MissCold
	case hEvicted, hCached:
		return stats.MissCapacity
	case hInvalidated:
		return stats.MissSharing
	default:
		return stats.MissWord
	}
}

// tileHasCopy reports whether a tile holds the line privately — in its L1
// or, under victim replication, as a local L2 replica.
func (s *Simulator) tileHasCopy(id int, la mem.Addr) bool {
	s.lockL1(id)
	defer s.unlockL1(id)
	if s.tiles[id].l1d.Probe(la) != nil {
		return true
	}
	if s.cfg.VictimReplication {
		if rl := s.tiles[id].l2.Probe(la); rl != nil && rl.State == lineReplica {
			return true
		}
	}
	return false
}

// l2Fill brings a line into the home L2 slice from DRAM and returns the new
// line and the time the fill completes at home. A displaced L2 victim is
// handed to the protocol's back-invalidation path.
func (s *Simulator) l2Fill(home int, la mem.Addr, t mem.Cycle) (*cache.Line, mem.Cycle) {
	ctrl := s.dram.ControllerOf(la)
	mc := s.dram.TileOf(ctrl)
	t1 := s.mesh.Unicast(home, mc, 1, t)
	t2 := s.dram.Read(ctrl, mem.LineBytes, t1)
	t3 := s.mesh.Unicast(mc, home, 9, t2)

	line, victim, evicted := s.tiles[home].l2.Insert(la)
	if evicted {
		s.proto.L2Evict(home, victim, t)
	}
	line.Version = s.dramVerGet(la)
	if s.cfg.CheckValues {
		s.checkVersion("DRAM fill", la, line.Version)
	}
	s.meter.L2LineWrites++
	return line, t3
}

package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/mem"
	"lacc/internal/nuca"
)

// fullMapDirectory is the directory substrate shared by the non-adaptive
// baseline protocols (MESI and Dragon): a full-map sharer vector — one
// pointer per core, so the set never overflows and invalidations or
// updates always multicast to exact identities — with no locality
// classifier and whole-line transfers only. Each baseline embeds it and
// supplies its own write policy (invalidate vs update).
type fullMapDirectory struct {
	*Simulator
}

// initDirEntry completes a freshly inserted classifier-free full-map
// directory entry (the sharer vector is already bound by the directory).
func (d *fullMapDirectory) initDirEntry(e *dirEntry) {
	e.owner = -1
}

// fetchOwnerForRead performs the synchronous write-back/downgrade of an E
// or M owner so the home observes the latest data. The owner keeps an S
// copy and becomes the sole registered sharer. Returns the time the data
// reaches home.
func (d *fullMapDirectory) fetchOwnerForRead(home int, la mem.Addr, entry *dirEntry,
	l2line *cache.Line, t mem.Cycle) mem.Cycle {

	if entry.state != coherence.ExclusiveState && entry.state != coherence.ModifiedState {
		return t
	}
	owner := int(entry.owner)
	tReq := d.mesh.Unicast(home, owner, 1, t)
	tReq += mem.Cycle(d.cfg.L1DLatency)
	d.lockL1(owner)
	ol := d.tiles[owner].l1d.Probe(la)
	if ol == nil {
		d.unlockL1(owner)
		if d.relaxed() {
			// The owner's copy was displaced concurrently (deferred eviction
			// in flight): downgrade collapses to a clean single-flit ack; the
			// eviction's Contains-guarded deregistration cleans up the
			// phantom sharer registration.
			tAck := d.mesh.Unicast(owner, home, 1, tReq)
			entry.state = coherence.SharedState
			entry.owner = -1
			entry.sharers.Clear()
			entry.sharers.Add(owner)
			d.meter.DirUpdates++
			return tAck
		}
		panic(fmt.Sprintf("sim: owner %d lost line %#x", owner, la))
	}
	flits := 1
	if ol.Dirty {
		flits = 9
		l2line.Version = ol.Version
		l2line.Dirty = true
		ol.Dirty = false
		d.meter.L2LineWrites++
	}
	ol.State = lineS
	d.unlockL1(owner)
	tAck := d.mesh.Unicast(owner, home, flits, tReq)
	entry.state = coherence.SharedState
	entry.owner = -1
	entry.sharers.Clear()
	entry.sharers.Add(owner)
	d.meter.DirUpdates++
	return tAck
}

// invalidateSharers invalidates every private copy except the requester's
// (`except`, -1 for none). The full-map vector never overflows, so the
// invalidations always multicast to exact identities. Returns the time the
// last acknowledgement reaches home.
func (d *fullMapDirectory) invalidateSharers(home int, la mem.Addr, entry *dirEntry,
	l2line *cache.Line, except int, t mem.Cycle) mem.Cycle {

	switch entry.state {
	case coherence.Uncached:
		return t
	case coherence.ExclusiveState, coherence.ModifiedState:
		owner := int(entry.owner)
		if owner == except {
			return t
		}
		tReq := d.mesh.Unicast(home, owner, 1, t)
		tEnd := d.invalCopy(home, la, owner, l2line, tReq)
		entry.state = coherence.Uncached
		entry.owner = -1
		return tEnd
	}

	latest := t
	ids := d.borrowIDs(entry.sharers.Identified())
	for _, id16 := range ids {
		id := int(id16)
		if id == except {
			continue
		}
		tReq := d.mesh.Unicast(home, id, 1, t)
		tEnd := d.invalCopy(home, la, id, l2line, tReq)
		if tEnd > latest {
			latest = tEnd
		}
		entry.sharers.Remove(id)
	}
	d.returnIDs(ids)
	if entry.sharers.Count() == 0 {
		entry.state = coherence.Uncached
	}
	return latest
}

// invalCopy invalidates one tile's L1 copy at its arrival time, folding
// dirty data back into the home line, and returns when the acknowledgement
// reaches home.
func (d *fullMapDirectory) invalCopy(home int, la mem.Addr, id int,
	l2line *cache.Line, tArr mem.Cycle) mem.Cycle {

	if d.faults.DropInvalidations {
		// Seeded SWMR defect (Faults): the request is lost, the sharer's
		// copy survives, yet the caller still deregisters it at home.
		return tArr
	}
	tArr += mem.Cycle(d.cfg.L1DLatency)
	d.lockL1(id)
	line, ok := d.tiles[id].l1d.Invalidate(la)
	if !ok {
		d.unlockL1(id)
		if !d.relaxed() {
			panic(fmt.Sprintf("sim: invalidation of absent line %#x at tile %d", la, id))
		}
		// Displaced concurrently (deferred eviction in flight): acknowledge
		// without data; the eviction notification accounts the removal.
		return d.mesh.Unicast(id, home, 1, tArr)
	}
	d.cores[id].history.set(la, hInvalidated)
	d.unlockL1(id)
	flits := 1
	if line.Dirty {
		flits = 9
		l2line.Version = line.Version
		l2line.Dirty = true
		d.meter.L2LineWrites++
	}
	tAck := d.mesh.Unicast(id, home, flits, tArr)
	if d.cfg.TrackUtilization {
		d.invalHist.Record(line.Util)
	}
	d.invalidations++
	d.meter.DirUpdates++
	return tAck
}

// grantRead registers the requester at the home for a read fill: the first
// reader takes the line Exclusive, later readers join the sharer vector
// (any E/M owner was downgraded beforehand).
func (d *fullMapDirectory) grantRead(c *coreState, entry *dirEntry) {
	if entry.state == coherence.Uncached {
		entry.state = coherence.ExclusiveState
		entry.owner = int16(c.id)
	} else {
		if entry.state != coherence.SharedState {
			panic(fmt.Sprintf("sim: read grant in state %v", entry.state))
		}
		if !d.relaxed() || !entry.sharers.Contains(c.id) {
			entry.sharers.Add(c.id)
		}
	}
	d.meter.DirUpdates++
}

// installLine places a granted line into the requester's L1 (evicting
// through the protocol's eviction path), marks the fill and returns the
// line. For upgrades the resident copy is returned instead. Callers in the
// sharded engine hold the requester's L1 lock across the call and the
// subsequent line mutations.
func (d *fullMapDirectory) installLine(p Protocol, c *coreState, la mem.Addr, home int,
	l2line *cache.Line, upgrade bool, tEnd mem.Cycle) *cache.Line {

	l1 := d.tiles[c.id].l1d
	if upgrade {
		if line := l1.Probe(la); line != nil {
			return line
		}
		if !d.relaxed() {
			panic("sim: upgrade without an L1 copy")
		}
		// Displaced concurrently: fall through to a fresh fill.
	}
	line, victim, evicted := l1.Insert(la)
	if evicted {
		d.l1EvictNotify(p, c, victim, tEnd)
	}
	d.meter.L1DWrites++ // line fill write
	line.Home = int16(home)
	line.Util = 0
	line.Version = l2line.Version
	return line
}

// grantModifiedFill hands the requester a Modified copy of a line no one
// else holds: directory to Modified/owner, 9-flit line reply, L1 install,
// local dirty write. Callers touch the home line and set the busy window
// beforehand. Returns the time the reply reaches the requester.
func (d *fullMapDirectory) grantModifiedFill(p Protocol, c *coreState, la mem.Addr, home int,
	entry *dirEntry, l2line *cache.Line, t mem.Cycle) mem.Cycle {

	entry.state = coherence.ModifiedState
	entry.owner = int16(c.id)
	d.meter.DirUpdates++
	d.meter.L2LineReads++
	tEnd := d.mesh.Unicast(home, c.id, 9, t)
	d.lockL1(c.id)
	line := d.installLine(p, c, la, home, l2line, false, tEnd)
	line.Util++
	d.tiles[c.id].l1d.Touch(line, tEnd)
	line.State = lineM
	line.Dirty = true
	line.Version = d.goldenWrite(la)
	d.unlockL1(c.id)
	return tEnd
}

// L1Evict sends the eviction notification for a displaced L1 line: dirty
// data folds back into the home line and the directory releases the
// sharership. The core does not wait on it.
func (d *fullMapDirectory) L1Evict(c *coreState, victim cache.Line, t mem.Cycle) {
	la := victim.Addr
	home := int(victim.Home)
	flits := 1
	if victim.Dirty {
		flits = 9
	}
	d.mesh.Unicast(c.id, home, flits, t)

	ht := &d.tiles[home]
	entry := ht.dir.probe(la)
	if entry == nil {
		if d.relaxed() {
			// Torn down by a concurrent L2 eviction or page move; the
			// back-invalidation already accounted the removal.
			return
		}
		panic(fmt.Sprintf("sim: eviction of line %#x without directory entry", la))
	}
	l2line := ht.l2.Probe(la)
	if l2line == nil {
		if d.relaxed() {
			return
		}
		panic(fmt.Sprintf("sim: eviction of line %#x absent from inclusive L2", la))
	}
	if victim.Dirty {
		l2line.Version = victim.Version
		l2line.Dirty = true
		d.meter.L2LineWrites++
	}
	if entry.owner == int16(c.id) {
		entry.state = coherence.Uncached
		entry.owner = -1
	} else if !d.relaxed() || entry.sharers.Contains(c.id) {
		entry.sharers.Remove(c.id)
		if entry.sharers.Count() == 0 && entry.state == coherence.SharedState {
			entry.state = coherence.Uncached
		}
	}
	d.meter.DirUpdates++
	if d.cfg.TrackUtilization {
		d.evictHist.Record(victim.Util)
	}
	d.setHistory(c.id, la, hEvicted)
}

// L2Evict back-invalidates every private copy of a displaced home line
// (the inclusive hierarchy requires it) and writes dirty data back to
// DRAM. Instruction lines have no directory entry and are dropped.
func (d *fullMapDirectory) L2Evict(home int, victim cache.Line, t mem.Cycle) {
	la := victim.Addr
	ht := &d.tiles[home]
	entry := ht.dir.probe(la)
	if entry == nil {
		return // read-only instruction replica
	}
	version := victim.Version
	dirty := victim.Dirty

	backInval := func(id int) {
		tReq := d.mesh.Unicast(home, id, 1, t)
		tReq += mem.Cycle(d.cfg.L1DLatency)
		d.lockL1(id)
		line, ok := d.tiles[id].l1d.Invalidate(la)
		if !ok {
			d.unlockL1(id)
			if !d.relaxed() {
				panic(fmt.Sprintf("sim: back-invalidation of absent line %#x at tile %d", la, id))
			}
			// Displaced concurrently; ack without data.
			d.mesh.Unicast(id, home, 1, tReq)
			return
		}
		d.cores[id].history.set(la, hEvicted)
		d.unlockL1(id)
		flits := 1
		if line.Dirty {
			flits = 9
			dirty = true
			if line.Version > version {
				version = line.Version
			}
		}
		d.mesh.Unicast(id, home, flits, tReq)
		if d.cfg.TrackUtilization {
			d.evictHist.Record(line.Util)
		}
	}

	switch entry.state {
	case coherence.ExclusiveState, coherence.ModifiedState:
		backInval(int(entry.owner))
	case coherence.SharedState:
		ids := d.borrowIDs(entry.sharers.Identified())
		for _, id := range ids {
			backInval(int(id))
		}
		d.returnIDs(ids)
	}
	if dirty {
		ctrl := d.dram.ControllerOf(la)
		mc := d.dram.TileOf(ctrl)
		d.mesh.Unicast(home, mc, 9, t)
		d.dram.Write(ctrl, mem.LineBytes, t)
		d.dramVerSet(la, version)
		d.meter.L2LineReads++
	}
	d.removeDirEntry(home, la, entry)
}

// PageMove applies the R-NUCA private→shared reclassification: every copy
// of the page's lines is invalidated and the lines migrate out of the old
// home slice (dirty ones via DRAM).
func (d *fullMapDirectory) PageMove(recl *nuca.Reclassification, t mem.Cycle) {
	oldHome := recl.OldHome
	// Callers invoke PageMove before taking the new home's lock, so the old
	// home's lock nests inside nothing here.
	d.lockHome(oldHome)
	defer d.unlockHome(oldHome)
	ht := &d.tiles[oldHome]
	for i := 0; i < mem.PageBytes/mem.LineBytes; i++ {
		la := recl.Page + mem.Addr(i*mem.LineBytes)
		l2line := ht.l2.Probe(la)
		if l2line == nil {
			continue
		}
		entry := ht.dir.probe(la)
		if entry != nil {
			d.invalidateSharers(oldHome, la, entry, l2line, -1, t)
			d.removeDirEntry(oldHome, la, entry)
		}
		old, _ := ht.l2.Invalidate(la)
		ctrl := d.dram.ControllerOf(la)
		if old.Dirty {
			d.dram.Write(ctrl, mem.LineBytes, t)
			d.dramVerSet(la, old.Version)
			d.mesh.Unicast(oldHome, d.dram.TileOf(ctrl), 9, t)
		}
		d.meter.L2LineReads++
	}
}

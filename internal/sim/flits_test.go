package sim_test

import (
	"testing"

	"lacc/internal/mem"
)

// TestFlitLayoutArithmetic pins the Section 3.6 message-size argument: an
// invalidation acknowledgement carrying the private utilization counter
// fits one 64-bit flit, so the locality-aware protocol adds no flits to
// invalidation traffic.
func TestFlitLayoutArithmetic(t *testing.T) {
	const (
		flitBits     = 64
		physAddrBits = 48                           // Table 1
		lineAddrBits = physAddrBits - mem.LineShift // 42: line-aligned address
		coreIDBits   = 6                            // 64 cores
		srcDstBits   = 2 * coreIDBits               // 12: sender + receiver
		utilBits     = 2                            // PCT 4 fits in 2 bits
	)
	used := lineAddrBits + srcDstBits + utilBits
	msgTypeBits := flitBits - used
	if msgTypeBits != 8 {
		t.Fatalf("message type field = %d bits, paper says 8 remain", msgTypeBits)
	}
	if used+msgTypeBits != flitBits {
		t.Fatalf("header does not fill the flit: %d bits", used+msgTypeBits)
	}
}

// TestMessageFlitCounts pins the word/line message sizes the simulator
// charges (Section 3.6: word = 1 flit payload, line = 8 flits payload).
func TestMessageFlitCounts(t *testing.T) {
	if mem.WordBytes*8 != 64 {
		t.Fatalf("word is %d bits, want 64 (one flit)", mem.WordBytes*8)
	}
	if mem.LineBytes/mem.WordBytes != 8 {
		t.Fatalf("line is %d flits, want 8", mem.LineBytes/mem.WordBytes)
	}
	if mem.WordsPerLine != 8 {
		t.Fatalf("WordsPerLine = %d", mem.WordsPerLine)
	}
}

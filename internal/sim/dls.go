package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/mem"
	"lacc/internal/nuca"
)

// dlsProtocol is a directoryless shared-LLC baseline (after the DLS
// proposal, arXiv:1206.4753): no private data caching and no directory
// state at all. Every data access is a word-granular round trip to the
// line's home L2 slice — the "remote access everything" end of the
// paper's design space, the dual of MESI's "privately cache everything".
// Sharing misses, invalidations and directory storage disappear entirely;
// the price is a network round trip on every single access, which is
// exactly the trade-off the adaptive protocol's PCT navigates per line.
//
// Model notes: the L1-D never holds data lines (every access takes the
// miss path by construction), so L1Evict is unreachable and the home L2
// is the single point of coherence — reads and writes commit there in
// home-arrival order. Writes carry the word with the request and
// write-allocate at the home; there are no directory entries, so L2
// evictions and page moves are pure write-backs with no back-invalidation
// fan-out.
type dlsProtocol struct {
	*Simulator
}

func init() {
	RegisterProtocol(ProtocolDLS, func(s *Simulator) Protocol {
		return &dlsProtocol{s}
	})
}

// Name implements Protocol.
func (p *dlsProtocol) Name() string { return string(ProtocolDLS) }

// Finalize implements Protocol. The word-access counters live on the
// Simulator and are already collected.
func (p *dlsProtocol) Finalize(r *Result) {}

// initDirEntry implements protocolCore. DLS never walks lookupEntry, so no
// directory entry can ever be allocated on its behalf.
func (p *dlsProtocol) initDirEntry(e *dirEntry) {
	panic("sim: dls allocates no directory entries")
}

// DataAccess executes one data read or write. The L1 probe in the shared
// hit path never matches (DLS installs no data lines), so every access
// walks missPath as a remote word transaction at the home slice.
func (p *dlsProtocol) DataAccess(c *coreState, kind mem.AccessKind, addr mem.Addr) {
	p.dataAccess(p, c, kind, addr)
}

// missPath performs the word-granular access at the home L2 slice: fill
// from DRAM if absent, then read the word or commit the written word
// in place. No directory entry exists and none is created.
func (p *dlsProtocol) missPath(c *coreState, kind mem.AccessKind, addr mem.Addr, upgrade bool) {
	la := mem.LineOf(addr)
	t0 := c.now
	if kind == mem.Write {
		p.meter.L1DWrites++
	} else {
		p.meter.L1DReads++
	}

	// L1 tag probe detected the miss (always: DLS installs no data lines).
	t := t0 + mem.Cycle(p.cfg.L1DLatency)
	var l1l2, offchip mem.Cycle
	l1l2 = t - t0

	home, recl := p.dataHome(addr, c.id)
	if recl != nil {
		p.PageMove(recl, t)
		t += mem.Cycle(p.cfg.PageMoveLatency)
		offchip += mem.Cycle(p.cfg.PageMoveLatency)
	}

	// The written word travels with the request (header + word); reads are
	// address-only.
	reqFlits := 1
	if kind == mem.Write {
		reqFlits = 2
	}
	tArr := p.mesh.Unicast(c.id, home, reqFlits, t)
	l1l2 += tArr - t
	t = tArr

	// The whole home-side transaction runs under the home tile's lock.
	// There is no directory entry and hence no busy window: the lock's
	// serialization is the only ordering the single point of coherence
	// needs.
	p.lockHome(home)
	ht := &p.tiles[home]
	var l2line *cache.Line
	if hl := c.l2Hint; c.l2HintTile == int32(home) && ht.l2.Holds(hl, la) {
		l2line = hl
	} else if l2line = ht.l2.Probe(la); l2line != nil {
		c.l2Hint, c.l2HintTile = l2line, int32(home)
	}
	if l2line == nil {
		var fillDone mem.Cycle
		l2line, fillDone = p.l2Fill(home, la, t)
		offchip += fillDone - t
		t = fillDone
	}
	t += mem.Cycle(p.cfg.L2Latency)
	l1l2 += mem.Cycle(p.cfg.L2Latency)

	outcome := p.missOutcome(c, la, upgrade)

	replyFlits := 1
	if kind == mem.Read {
		p.wordReads++
		p.meter.L2WordReads++
		if p.cfg.CheckValues {
			p.checkVersion("remote word read", la, l2line.Version)
		}
		replyFlits = 2 // header + word
	} else {
		p.wordWrites++
		p.meter.L2WordWrites++
		ver := p.goldenWrite(la)
		if !p.faults.DropWordWrites {
			// Seeded data-value defect (Faults): the word is lost at the
			// home and the line keeps its stale version.
			l2line.Version = ver
		}
		l2line.Dirty = true
	}

	ht.l2.Touch(l2line, t)
	tEnd := p.mesh.Unicast(home, c.id, replyFlits, t)
	p.unlockHome(home)
	l1l2 += tEnd - t
	p.setHistory(c.id, la, hRemote)

	c.l1d.Record(outcome)
	c.bd.L1ToL2 += float64(l1l2)
	c.bd.OffChip += float64(offchip)
	if p.cfg.CheckValues {
		if sum := l1l2 + offchip; sum != tEnd-t0 {
			panic(fmt.Sprintf("sim: latency components %d != total %d", sum, tEnd-t0))
		}
	}
	c.now = tEnd
}

// L1Evict implements Protocol. The L1-D never holds data lines under DLS
// (instruction victims are dropped by the fetch path without notifying the
// protocol), so displacement notifications cannot occur.
func (p *dlsProtocol) L1Evict(c *coreState, victim cache.Line, t mem.Cycle) {
	panic("sim: dls caches no private lines")
}

// L2Evict implements Protocol: with no private copies anywhere there is
// nothing to back-invalidate — a dirty victim writes back to DRAM and a
// clean one (data or instruction replica) is dropped.
func (p *dlsProtocol) L2Evict(home int, victim cache.Line, t mem.Cycle) {
	if !victim.Dirty {
		return
	}
	la := victim.Addr
	ctrl := p.dram.ControllerOf(la)
	p.mesh.Unicast(home, p.dram.TileOf(ctrl), 9, t)
	p.dram.Write(ctrl, mem.LineBytes, t)
	p.dramVerSet(la, victim.Version)
	p.meter.L2LineReads++
}

// PageMove applies the R-NUCA private→shared reclassification: the page's
// lines migrate out of the old home slice (dirty ones via DRAM). With no
// directory and no private copies there is no invalidation fan-out.
func (p *dlsProtocol) PageMove(recl *nuca.Reclassification, t mem.Cycle) {
	oldHome := recl.OldHome
	// Callers invoke PageMove before taking the new home's lock, so the old
	// home's lock nests inside nothing here.
	p.lockHome(oldHome)
	defer p.unlockHome(oldHome)
	ht := &p.tiles[oldHome]
	for i := 0; i < mem.PageBytes/mem.LineBytes; i++ {
		la := recl.Page + mem.Addr(i*mem.LineBytes)
		if ht.l2.Probe(la) == nil {
			continue
		}
		old, _ := ht.l2.Invalidate(la)
		ctrl := p.dram.ControllerOf(la)
		if old.Dirty {
			p.dram.Write(ctrl, mem.LineBytes, t)
			p.dramVerSet(la, old.Version)
			p.mesh.Unicast(oldHome, p.dram.TileOf(ctrl), 9, t)
		}
		p.meter.L2LineReads++
	}
}

package sim

// Machine is the model checker's stepping adapter: it exposes the
// simulator one data access at a time, under the checker's control,
// instead of draining trace streams through the run-queue engine. A step
// executes exactly the per-operation body of the generic engine loop
// (gap advance, instruction fetch, Protocol.DataAccess), so a sequence of
// Step calls is behaviorally identical to an engine run that selects the
// same cores in the same order — which is what lets a checker
// counterexample be re-encoded as a trace whose replay through Run
// reproduces the violating interleaving (see internal/check).
//
// Snapshot exposes the coherence-relevant machine state (golden/DRAM
// versions, the home L2 line, the directory entry with its classifier,
// and every private copy) through exported value types, so the checker
// can canonicalize and hash states without reaching into simulator
// internals.

import (
	"sort"

	"lacc/internal/coherence"
	"lacc/internal/core"
	"lacc/internal/mem"
	"lacc/internal/nuca"
)

// Faults selects deliberately seeded protocol defects. They exist for the
// model checker's self-tests: a seeded fault must produce an invariant
// violation, and the resulting counterexample trace must fail when
// replayed through a simulator carrying the same fault. Faults live on
// the Simulator — not in Config — so experiment fingerprints and result
// caches never observe them; Reset preserves the setting.
type Faults struct {
	// DropInvalidations loses every invalidation request on the way to
	// the sharer: the target's L1 copy survives while the home still
	// deregisters it — the canonical SWMR bug. Affects the adaptive and
	// full-map (MESI/Dragon) invalidation paths.
	DropInvalidations bool

	// DropUpdates loses Dragon's write-update word pushes: the home L2
	// commits the write but the other sharers' copies keep their stale
	// version — a pure data-value bug with intact directory structure.
	DropUpdates bool

	// DropWordWrites loses DLS remote word writes at the home slice: the
	// golden store advances but the home L2 keeps the stale version — the
	// directoryless analogue of a lost store, caught by the data-value
	// invariant on the home line.
	DropWordWrites bool
}

// NewWithFaults builds a simulator with seeded protocol defects. It
// exists for checker self-tests and counterexample replay; experiments
// never construct faulty simulators.
func NewWithFaults(cfg Config, f Faults) (*Simulator, error) {
	s, err := newSimulator(cfg, false)
	if err != nil {
		return nil, err
	}
	s.faults = f
	return s, nil
}

// Machine wraps a Simulator for single-stepped, checker-driven execution.
type Machine struct {
	s *Simulator
}

// NewMachine builds a stepping machine for cfg.
func NewMachine(cfg Config) (*Machine, error) {
	return NewMachineWithFaults(cfg, Faults{})
}

// NewMachineWithFaults builds a stepping machine with seeded protocol
// defects (see Faults).
func NewMachineWithFaults(cfg Config, f Faults) (*Machine, error) {
	s, err := NewWithFaults(cfg, f)
	if err != nil {
		return nil, err
	}
	m := &Machine{s: s}
	m.initCores()
	return m, nil
}

// initCores builds the per-core contexts exactly as Run does, minus the
// trace streams: the checker feeds accesses through Step instead.
func (m *Machine) initCores() {
	s := m.s
	if len(s.cores) != s.cfg.Cores {
		s.cores = make([]coreState, s.cfg.Cores)
		for i := range s.cores {
			s.cores[i] = coreState{history: newHistStore(s.reference)}
		}
	}
	for i := range s.cores {
		h := s.cores[i].history
		h.clear()
		s.cores[i] = coreState{id: i, history: h}
	}
}

// Reset restores the machine to its initial state (same configuration and
// faults), bit-identical to a fresh NewMachineWithFaults.
func (m *Machine) Reset() error {
	if err := m.s.Reset(m.s.cfg); err != nil {
		return err
	}
	m.initCores()
	return nil
}

// Cores returns the configured core count.
func (m *Machine) Cores() int { return m.s.cfg.Cores }

// Protocol returns the name of the protocol under test.
func (m *Machine) Protocol() string { return m.s.proto.Name() }

// Clock returns the core's local clock — the completion time of its last
// step, which is exactly the run-queue key the engine would re-queue it
// at. The counterexample encoder reads it to compute trace gaps.
func (m *Machine) Clock(coreID int) mem.Cycle { return m.s.cores[coreID].now }

// Step executes one data access on the given core as an atomic protocol
// transaction, mirroring the generic engine's per-operation body: the gap
// advances the core's clock before the access, the instruction fetch walk
// runs, then the protocol path. Kind must be mem.Read or mem.Write —
// synchronization operations reshape the run queue and are not steppable.
func (m *Machine) Step(coreID int, kind mem.AccessKind, addr mem.Addr, gap uint32) {
	s := m.s
	c := &s.cores[coreID]
	if gap > 0 {
		c.now += mem.Cycle(gap)
		c.bd.Compute += float64(gap)
	}
	s.instrFetch(c, gap)
	s.proto.DataAccess(c, kind, addr)
}

// Audit runs the structural and data-value invariant checks on the
// current state (see Simulator.Audit).
func (m *Machine) Audit() error { return m.s.Audit() }

// CopyState is the coherence state of one private copy, exported for the
// checker. Values mirror the internal L1 line states.
type CopyState uint8

const (
	CopyShared CopyState = iota + 1
	CopyExclusive
	CopyModified
	// CopyReplica is a victim-replication replica in a tile's local L2
	// slice: a read-only copy whose tile remains a registered sharer.
	CopyReplica
)

// String implements fmt.Stringer for checker diagnostics.
func (cs CopyState) String() string {
	switch cs {
	case CopyShared:
		return "S"
	case CopyExclusive:
		return "E"
	case CopyModified:
		return "M"
	case CopyReplica:
		return "R"
	}
	return "?"
}

// CopySnapshot is one tile's private copy of a line.
type CopySnapshot struct {
	Core    int
	State   CopyState
	Dirty   bool
	Version uint64
	Util    uint32
}

// SharerClass is one tracked core's locality classification at a
// directory entry (adaptive protocol only). The slice order in
// DirSnapshot.Classifier is the classifier's internal slot order, which
// is behaviorally significant for the Limited-k replacement policy.
type SharerClass struct {
	Core       int
	Mode       core.Mode
	RemoteUtil uint16
	RATLevel   uint8
	Active     bool
}

// DirSnapshot is a line's directory entry at its home tile.
type DirSnapshot struct {
	Home       int
	State      coherence.State
	Owner      int
	Sharers    []int // identified sharers, ascending
	Unknown    int   // unidentified sharers (ACKwise overflow)
	Overflowed bool
	Classifier []SharerClass // nil for classifier-free protocols
}

// L2Snapshot is a line's home L2 copy.
type L2Snapshot struct {
	Home    int
	Version uint64
	Dirty   bool
}

// LineSnapshot is the complete coherence-relevant state of one line:
// golden and DRAM versions, R-NUCA page classification, home L2 line,
// directory entry and every private copy (L1 copies and VR replicas).
type LineSnapshot struct {
	Addr   mem.Addr
	Golden uint64
	DRAM   uint64

	// R-NUCA page classification of the line's page: PageKnown is false
	// until first touch; PageOwner is the owning tile for private pages
	// and -1 otherwise.
	PageKnown  bool
	PageShared bool
	PageOwner  int

	L2     *L2Snapshot
	Dir    *DirSnapshot
	Copies []CopySnapshot // sorted by (core, state)
}

// Snapshot captures the coherence state of the given lines. It is a pure
// read: every accessor it uses (version stores, cache probes, directory
// probes, R-NUCA peeks) is side-effect free, so snapshotting never
// perturbs the machine.
func (m *Machine) Snapshot(lines []mem.Addr) []LineSnapshot {
	s := m.s
	out := make([]LineSnapshot, len(lines))
	for i, a := range lines {
		la := mem.LineOf(a)
		ls := LineSnapshot{Addr: la, PageOwner: -1}
		if s.cfg.CheckValues {
			ls.Golden = s.golden.get(la)
			ls.DRAM = s.dramVer.get(la)
		}
		if cls, known := s.nuca.ClassOf(la); known {
			ls.PageKnown = true
			ls.PageShared = cls == nuca.PageShared
			if !ls.PageShared {
				ls.PageOwner = s.nuca.PeekDataHome(la, -1)
			}
		}
		for home := range s.tiles {
			ht := &s.tiles[home]
			if l2 := ht.l2.Probe(la); l2 != nil {
				if l2.State == lineReplica {
					ls.Copies = append(ls.Copies, CopySnapshot{
						Core: home, State: CopyReplica,
						Dirty: l2.Dirty, Version: l2.Version, Util: l2.Util,
					})
				} else {
					ls.L2 = &L2Snapshot{Home: home, Version: l2.Version, Dirty: l2.Dirty}
				}
			}
			if e := ht.dir.probe(la); e != nil {
				d := &DirSnapshot{
					Home:       home,
					State:      e.state,
					Owner:      int(e.owner),
					Overflowed: e.sharers.Overflowed(),
				}
				ids := e.sharers.Identified()
				d.Sharers = make([]int, len(ids))
				for j, id := range ids {
					d.Sharers[j] = int(id)
				}
				sort.Ints(d.Sharers)
				d.Unknown = e.sharers.Count() - len(ids)
				if e.cls != nil {
					e.cls.ForEachTracked(func(id int, st *core.CoreState) {
						d.Classifier = append(d.Classifier, SharerClass{
							Core: id, Mode: st.Mode,
							RemoteUtil: st.RemoteUtil, RATLevel: st.RATLevel,
							Active: st.Active,
						})
					})
				}
				ls.Dir = d
			}
		}
		for id := range s.tiles {
			if l := s.tiles[id].l1d.Probe(la); l != nil {
				ls.Copies = append(ls.Copies, CopySnapshot{
					Core: id, State: CopyState(l.State),
					Dirty: l.Dirty, Version: l.Version, Util: l.Util,
				})
			}
		}
		sort.Slice(ls.Copies, func(x, y int) bool {
			cx, cy := ls.Copies[x], ls.Copies[y]
			return cx.Core < cy.Core || (cx.Core == cy.Core && cx.State < cy.State)
		})
		out[i] = ls
	}
	return out
}

package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/mem"
)

// dragonProtocol is a Dragon-style write-update directory baseline
// (McCreight's Dragon adapted from its snooping-bus origin to this
// directory/NoC substrate): a write to a line with other sharers never
// invalidates them — instead the written word is committed at the home L2
// and pushed to every sharer's L1 copy. Sharing misses therefore all but
// disappear, at the price of per-write update traffic that the workload
// may never read — the classic update-vs-invalidate trade-off the paper's
// adaptive protocol navigates dynamically.
//
// Model notes: shared lines are write-through at the home (the home copy
// is always current, so sharer copies stay clean and evictions of S copies
// are silent single-flit notifications); a sole-sharer write upgrades to
// Modified and subsequent writes stay local, exactly as in MESI. The
// directory uses the shared full-map vector (updates need exact sharer
// identities).
type dragonProtocol struct {
	fullMapDirectory
	updates uint64 // per-sharer word updates pushed
}

func init() {
	RegisterProtocol(ProtocolDragon, func(s *Simulator) Protocol {
		return &dragonProtocol{fullMapDirectory: fullMapDirectory{s}}
	})
}

// Name implements Protocol.
func (p *dragonProtocol) Name() string { return string(ProtocolDragon) }

// Finalize implements Protocol.
func (p *dragonProtocol) Finalize(r *Result) { r.UpdateWrites = p.updates }

// DataAccess executes one data read or write. Reads hit in any state and
// writes hit on an E or M copy; a write to an S copy is the update
// transaction — the line stays put, but the write must commit at the home
// and propagate to the other sharers.
func (p *dragonProtocol) DataAccess(c *coreState, kind mem.AccessKind, addr mem.Addr) {
	p.dataAccess(p, c, kind, addr)
}

// missPath handles an L1 miss or a shared-write update transaction. Reads
// behave exactly like MESI; writes never invalidate other copies.
func (p *dragonProtocol) missPath(c *coreState, kind mem.AccessKind, addr mem.Addr, upgrade bool) {
	la := mem.LineOf(addr)
	t0 := c.now
	if kind == mem.Write {
		p.meter.L1DWrites++
	} else {
		p.meter.L1DReads++
	}

	// L1 tag probe detected the miss (or the S state of the written copy).
	t := t0 + mem.Cycle(p.cfg.L1DLatency)
	var l1l2, wait, sharersLat, offchip mem.Cycle
	l1l2 = t - t0

	home, recl := p.dataHome(addr, c.id)
	if recl != nil {
		p.PageMove(recl, t)
		t += mem.Cycle(p.cfg.PageMoveLatency)
		offchip += mem.Cycle(p.cfg.PageMoveLatency)
	}

	// The written word travels with the request (header + word); reads are
	// address-only.
	reqFlits := 1
	if kind == mem.Write {
		reqFlits = 2
	}
	tArr := p.mesh.Unicast(c.id, home, reqFlits, t)
	l1l2 += tArr - t
	t = tArr

	// The whole home-side transaction — directory walk, sharer round
	// trips, grant — runs under the home tile's lock.
	p.lockHome(home)
	entry, l2line, tDir, wait, fill := p.lookupEntry(p, c, home, la, t)
	offchip += fill
	l1l2 += mem.Cycle(p.cfg.L2Latency)
	t = tDir

	outcome := p.missOutcome(c, la, upgrade)

	var tEnd mem.Cycle
	if kind == mem.Read {
		tWB := p.fetchOwnerForRead(home, la, entry, l2line, t)
		sharersLat += tWB - t
		t = tWB
		p.tiles[home].l2.Touch(l2line, t)
		entry.busyUntil = t
		tEnd = p.grantReadLine(c, la, home, entry, l2line, t)
		l1l2 += tEnd - t
	} else {
		var shLat mem.Cycle
		tEnd, shLat = p.writePath(c, la, home, entry, l2line, upgrade, t)
		sharersLat += shLat
		l1l2 += tEnd - t - shLat
	}
	p.unlockHome(home)
	p.setHistory(c.id, la, hCached)

	c.l1d.Record(outcome)
	c.bd.L1ToL2 += float64(l1l2)
	c.bd.L2Waiting += float64(wait)
	c.bd.L2Sharers += float64(sharersLat)
	c.bd.OffChip += float64(offchip)
	if p.cfg.CheckValues {
		if sum := l1l2 + wait + sharersLat + offchip; sum != tEnd-t0 {
			panic(fmt.Sprintf("sim: latency components %d != total %d", sum, tEnd-t0))
		}
	}
	c.now = tEnd
}

// grantReadLine hands a shared (or first-reader Exclusive) copy to the
// requester, exactly as MESI would.
func (p *dragonProtocol) grantReadLine(c *coreState, la mem.Addr, home int,
	entry *dirEntry, l2line *cache.Line, t mem.Cycle) mem.Cycle {

	p.grantRead(c, entry)
	p.meter.L2LineReads++
	tEnd := p.mesh.Unicast(home, c.id, 9, t)
	p.lockL1(c.id)
	line := p.installLine(p, c, la, home, l2line, false, tEnd)
	line.Util++
	p.tiles[c.id].l1d.Touch(line, tEnd)
	if entry.state == coherence.ExclusiveState {
		line.State = lineE
	} else {
		line.State = lineS
	}
	p.unlockL1(c.id)
	if p.cfg.CheckValues {
		p.checkVersion("private fill read", la, line.Version)
	}
	return tEnd
}

// writePath commits one write at the home. A write to an unshared line
// takes (or keeps) the line Modified like MESI; a write to a shared line
// is the update transaction: the word commits at the home L2 (the home
// copy stays current) and is pushed to every other sharer's L1 copy. It
// returns the time the reply reaches the requester and the update fan-out
// latency (charged to the L2-to-sharers component).
func (p *dragonProtocol) writePath(c *coreState, la mem.Addr, home int,
	entry *dirEntry, l2line *cache.Line, upgrade bool, t mem.Cycle) (tEnd, sharersLat mem.Cycle) {

	// An E/M owner elsewhere first flushes to the home and becomes a
	// sharer; the write then proceeds as an update to it. The owner cannot
	// be the requester (its write would have hit in the L1).
	if entry.state == coherence.ExclusiveState || entry.state == coherence.ModifiedState {
		tWB := p.fetchOwnerForRead(home, la, entry, l2line, t)
		sharersLat += tWB - t
		t = tWB
	}

	switch {
	case entry.state == coherence.Uncached:
		// Sole copy anywhere: a plain Modified fill.
		p.tiles[home].l2.Touch(l2line, t)
		entry.busyUntil = t
		return p.grantModifiedFill(p, c, la, home, entry, l2line, t), sharersLat

	case upgrade && entry.sharers.Count() == 1:
		// The requester is the last remaining sharer: promote its copy to
		// Modified and write locally from now on (Dragon's Sm -> M when
		// the update would reach nobody).
		if !p.relaxed() || entry.sharers.Contains(c.id) {
			entry.sharers.Remove(c.id)
		} else {
			// The lone registration is a phantom left by a deferred
			// eviction; the requester's copy is real but unregistered.
			entry.sharers.Clear()
		}
		entry.state = coherence.ModifiedState
		entry.owner = int16(c.id)
		p.meter.DirUpdates++
		p.tiles[home].l2.Touch(l2line, t)
		entry.busyUntil = t
		tEnd = p.mesh.Unicast(home, c.id, 1, t)
		p.lockL1(c.id)
		line := p.tiles[c.id].l1d.Probe(la)
		if line == nil {
			p.unlockL1(c.id)
			if !p.relaxed() {
				panic("sim: update upgrade without an L1 copy")
			}
			// Displaced concurrently; keep the timing, skip the mutation.
			return tEnd, sharersLat
		}
		line.Util++
		p.tiles[c.id].l1d.Touch(line, tEnd)
		line.State = lineM
		line.Dirty = true
		line.Version = p.goldenWrite(la)
		p.unlockL1(c.id)
		return tEnd, sharersLat

	default:
		// Update transaction: commit the word at the home (write-through,
		// so every S copy stays clean) and push it to the other sharers.
		ver := p.goldenWrite(la)
		l2line.Version = ver
		l2line.Dirty = true
		p.meter.L2WordWrites++
		latest := t
		for _, id16 := range entry.sharers.Identified() {
			id := int(id16)
			if id == c.id {
				continue
			}
			tU := p.mesh.Unicast(home, id, 2, t) // header + word
			tU += mem.Cycle(p.cfg.L1DLatency)
			p.lockL1(id)
			ol := p.tiles[id].l1d.Probe(la)
			if ol == nil {
				p.unlockL1(id)
				if !p.relaxed() {
					panic(fmt.Sprintf("sim: update to absent copy %#x at tile %d", la, id))
				}
				// Displaced concurrently; ack without applying the update.
				tAck := p.mesh.Unicast(id, home, 1, tU)
				if tAck > latest {
					latest = tAck
				}
				continue
			}
			if !p.faults.DropUpdates {
				// Seeded data-value defect (Faults): the pushed word is
				// lost and the sharer's copy keeps its stale version.
				ol.Version = ver
			}
			p.unlockL1(id)
			p.meter.L1DWrites++
			p.updates++
			tAck := p.mesh.Unicast(id, home, 1, tU)
			if tAck > latest {
				latest = tAck
			}
		}
		sharersLat += latest - t
		t = latest
		p.meter.DirUpdates++
		p.tiles[home].l2.Touch(l2line, t)
		entry.busyUntil = t

		if upgrade {
			// The requester's own S copy absorbs the word; the home's ack
			// is a single flit.
			tEnd = p.mesh.Unicast(home, c.id, 1, t)
			p.lockL1(c.id)
			line := p.tiles[c.id].l1d.Probe(la)
			if line == nil {
				p.unlockL1(c.id)
				if !p.relaxed() {
					panic("sim: update upgrade without an L1 copy")
				}
				// Displaced concurrently; keep the timing, skip the
				// mutation.
				return tEnd, sharersLat
			}
			line.Util++
			line.Version = ver
			p.tiles[c.id].l1d.Touch(line, tEnd)
			p.unlockL1(c.id)
			return tEnd, sharersLat
		}
		// Write miss to a shared line: the requester joins the sharers
		// with a full line fill carrying the committed word.
		if !p.relaxed() || !entry.sharers.Contains(c.id) {
			entry.sharers.Add(c.id)
		}
		p.meter.DirUpdates++
		p.meter.L2LineReads++
		tEnd = p.mesh.Unicast(home, c.id, 9, t)
		p.lockL1(c.id)
		line := p.installLine(p, c, la, home, l2line, false, tEnd)
		line.Util++
		p.tiles[c.id].l1d.Touch(line, tEnd)
		line.State = lineS
		p.unlockL1(c.id)
		return tEnd, sharersLat
	}
}

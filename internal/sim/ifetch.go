package sim

import (
	"fmt"
	"math"

	"lacc/internal/mem"
)

// maxProbesPerOp bounds instruction-cache work per trace operation; long
// compute gaps re-execute loop bodies whose lines are already resident, so
// capping probes loses no fidelity worth its cost.
const maxProbesPerOp = 8

// The instruction-fetch accumulators run in one of two arithmetically
// identical modes. The original formulation keeps two float64 accumulators
// (pending fetch energy in instructions, pending line fetches in lines)
// fed FetchPerOp + gap per operation. When FetchPerOp is a multiple of
// 1/8 — every shipped configuration; Default uses 2 — every value those
// floats ever take is an exact multiple of 2^-6 far below 2^50, so all
// additions, the /8 scale, the per-probe decrements and the floor
// conversions are exact, and the whole trajectory can be tracked in
// integer 64ths of a cache line instead: same emitted energy events, same
// probe counts, same program-counter walk, bit for bit, without the
// float<->int conversions on the hottest call in the simulator. Reset
// precomputes fetch8 = FetchPerOp*8 when the fixed-point mode applies
// (fetch8 < 0 selects the float fallback for exotic configurations).

// fetchFixedPoint returns FetchPerOp scaled to eighths of an instruction
// when that is exactly an integer, or -1 when the float fallback must run.
func fetchFixedPoint(fetchPerOp float64) int64 {
	f8 := fetchPerOp * 8
	if f8 >= 0 && f8 < 1<<40 && f8 == math.Trunc(f8) {
		return int64(f8)
	}
	return -1
}

// instrFetch models the instruction stream for one trace operation: it
// charges L1-I fetch energy for the executed instructions (FetchPerOp per
// operation plus one per compute-gap cycle) and walks the core's program
// counter over the workload's code footprint, simulating an L1-I probe per
// consumed instruction line. Instruction lines live in the R-NUCA
// per-cluster replica slices; fetch hits are overlapped by the in-order
// pipeline and cost no time, misses stall the core.
//
// Once the whole code footprint is resident in the L1-I (l1iWarm) every
// probe is a hit by construction — no insertions means no evictions, so
// residency is permanent — and the walk reduces to counting: same hit
// totals and program-counter trajectory, no tag-array traffic.
func (s *Simulator) instrFetch(c *coreState, gap uint32) {
	if s.fetch8 < 0 {
		s.instrFetchFloat(c, gap)
		return
	}
	// Fixed-point mode: instrs8 is the executed instruction count in
	// eighths; energy8 accumulates it in eighths of an instruction,
	// fetch64 in 64ths of a cache line (one line = 8 instructions).
	instrs8 := s.fetch8 + int64(gap)<<3
	c.energy8 += instrs8
	s.meter.L1IAccesses += uint64(c.energy8 >> 3)
	c.energy8 &= 7

	c.fetch64 += instrs8
	probes := 0
	if c.l1iWarm {
		if probes = int(c.fetch64 >> 6); probes > maxProbesPerOp {
			probes = maxProbesPerOp
		}
		c.fetch64 -= int64(probes) << 6
		c.pc += probes
		for c.pc >= s.cfg.CodeLines {
			c.pc -= s.cfg.CodeLines
		}
		c.l1iHits += uint64(probes)
	} else {
		l1i := s.tiles[c.id].l1i
		for c.fetch64 >= 64 && probes < maxProbesPerOp {
			c.fetch64 -= 64
			probes++
			c.pc++
			if c.pc >= s.cfg.CodeLines {
				c.pc = 0
			}
			addr := codeBase + mem.Addr(c.pc)*mem.LineBytes
			if line := l1i.Probe(addr); line != nil {
				c.l1iHits++
				l1i.Touch(line, c.now)
				continue
			}
			c.l1iMisses++
			s.instrMiss(c, addr)
		}
	}
	if c.fetch64 > maxProbesPerOp<<6 {
		c.fetch64 = maxProbesPerOp << 6
	}
}

// instrFetchFloat is the float-accumulator formulation, retained for
// configurations whose FetchPerOp is not a multiple of 1/8 (and as the
// executable specification the fixed-point mode mirrors).
func (s *Simulator) instrFetchFloat(c *coreState, gap uint32) {
	instrs := s.cfg.FetchPerOp + float64(gap)
	c.energyAcc += instrs
	whole := uint64(c.energyAcc)
	s.meter.L1IAccesses += whole
	c.energyAcc -= float64(whole)

	// One instruction line holds 8 instructions (64 B / 8 B encoding).
	// Multiplying by 0.125 is exact (a power-of-two scale), so the
	// accumulator trajectory is bit-identical to dividing by 8.
	c.fetchAcc += instrs * 0.125
	probes := 0
	if c.l1iWarm {
		// Warm walk, closed form: every probe is a hit, so the loop reduces
		// to arithmetic. Decrementing the accumulator by the whole probe
		// count is exact (subtracting small integers from these magnitudes
		// loses no significand bits), and the program counter advances by
		// probes modulo the code footprint — with probes capped at
		// maxProbesPerOp (8) and CodeLines >= 1, one conditional wrap
		// suffices unless the footprint is smaller than the cap.
		if probes = int(c.fetchAcc); probes > maxProbesPerOp {
			probes = maxProbesPerOp
		}
		c.fetchAcc -= float64(probes)
		c.pc += probes
		for c.pc >= s.cfg.CodeLines {
			c.pc -= s.cfg.CodeLines
		}
		c.l1iHits += uint64(probes)
	} else {
		l1i := s.tiles[c.id].l1i
		for c.fetchAcc >= 1 && probes < maxProbesPerOp {
			c.fetchAcc--
			probes++
			c.pc++
			if c.pc >= s.cfg.CodeLines {
				c.pc = 0
			}
			addr := codeBase + mem.Addr(c.pc)*mem.LineBytes
			if line := l1i.Probe(addr); line != nil {
				c.l1iHits++
				l1i.Touch(line, c.now)
				continue
			}
			c.l1iMisses++
			s.instrMiss(c, addr)
		}
	}
	if c.fetchAcc > float64(maxProbesPerOp) {
		c.fetchAcc = float64(maxProbesPerOp)
	}
}

// instrMiss fetches an instruction line from the requester's cluster
// replica slice (R-NUCA rotational interleaving), going to DRAM when the
// replica slice misses. Instructions are read-only: no directory entry or
// classifier state is maintained for them.
func (s *Simulator) instrMiss(c *coreState, addr mem.Addr) {
	la := mem.LineOf(addr)
	t0 := c.now
	home := s.nuca.InstrHome(la, c.id)

	t := t0 + mem.Cycle(s.cfg.L1ILatency)
	var l1l2, offchip mem.Cycle
	l1l2 = t - t0

	tArr := s.mesh.Unicast(c.id, home, 1, t)
	l1l2 += tArr - t
	t = tArr

	// The replica-slice probe, fill and touch run under the slice's home
	// lock (instruction fills can displace data lines, whose
	// back-invalidation walks the same tile's directory).
	s.lockHome(home)
	ht := &s.tiles[home]
	l2line := ht.l2.Probe(la)
	if l2line == nil {
		var fillDone mem.Cycle
		l2line, fillDone = s.l2Fill(home, la, t)
		offchip += fillDone - t
		t = fillDone
		// No directory entry: replicas are read-only.
	}
	t += mem.Cycle(s.cfg.L2Latency)
	l1l2 += mem.Cycle(s.cfg.L2Latency)
	ht.l2.Touch(l2line, t)
	s.meter.L2LineReads++
	s.unlockHome(home)

	tEnd := s.mesh.Unicast(home, c.id, 9, t)
	l1l2 += tEnd - t

	l1i := s.tiles[c.id].l1i
	line, _, evicted := l1i.Insert(la) // instruction victims are clean; drop silently
	if evicted {
		c.l1iResident-- // the victim was a resident code line
	}
	c.l1iResident++
	if c.l1iResident == s.cfg.CodeLines {
		c.l1iWarm = true
	}
	line.State = lineS
	line.Home = int16(home)
	l1i.Touch(line, tEnd)

	c.bd.L1ToL2 += float64(l1l2)
	c.bd.OffChip += float64(offchip)
	if s.cfg.CheckValues {
		if sum := l1l2 + offchip; sum != tEnd-t0 {
			panic(fmt.Sprintf("sim: ifetch components %d != total %d", sum, tEnd-t0))
		}
	}
	c.now = tEnd
}

package sim

import (
	"fmt"

	"lacc/internal/mem"
)

// maxProbesPerOp bounds instruction-cache work per trace operation; long
// compute gaps re-execute loop bodies whose lines are already resident, so
// capping probes loses no fidelity worth its cost.
const maxProbesPerOp = 8

// instrFetch models the instruction stream for one trace operation: it
// charges L1-I fetch energy for the executed instructions (FetchPerOp per
// operation plus one per compute-gap cycle) and walks the core's program
// counter over the workload's code footprint, simulating an L1-I probe per
// consumed instruction line. Instruction lines live in the R-NUCA
// per-cluster replica slices; fetch hits are overlapped by the in-order
// pipeline and cost no time, misses stall the core.
//
// Once the whole code footprint is resident in the L1-I (l1iWarm) every
// probe is a hit by construction — no insertions means no evictions, so
// residency is permanent — and the walk reduces to counting: same hit
// totals and program-counter trajectory, no tag-array traffic. The
// accumulator is still decremented one probe at a time so its floating-
// point trajectory stays bit-identical to the probing path.
func (s *Simulator) instrFetch(c *coreState, gap uint32) {
	instrs := s.cfg.FetchPerOp + float64(gap)
	c.energyAcc += instrs
	whole := uint64(c.energyAcc)
	s.meter.L1IAccesses += whole
	c.energyAcc -= float64(whole)

	// One instruction line holds 8 instructions (64 B / 8 B encoding).
	c.fetchAcc += instrs / 8
	probes := 0
	if c.l1iWarm {
		for c.fetchAcc >= 1 && probes < maxProbesPerOp {
			c.fetchAcc--
			probes++
			c.pc++
			if c.pc >= s.cfg.CodeLines {
				c.pc = 0
			}
		}
		c.l1iHits += uint64(probes)
	} else {
		l1i := s.tiles[c.id].l1i
		for c.fetchAcc >= 1 && probes < maxProbesPerOp {
			c.fetchAcc--
			probes++
			c.pc++
			if c.pc >= s.cfg.CodeLines {
				c.pc = 0
			}
			addr := codeBase + mem.Addr(c.pc)*mem.LineBytes
			if line := l1i.Probe(addr); line != nil {
				c.l1iHits++
				l1i.Touch(line, c.now)
				continue
			}
			c.l1iMisses++
			s.instrMiss(c, addr)
		}
	}
	if c.fetchAcc > float64(maxProbesPerOp) {
		c.fetchAcc = float64(maxProbesPerOp)
	}
}

// instrMiss fetches an instruction line from the requester's cluster
// replica slice (R-NUCA rotational interleaving), going to DRAM when the
// replica slice misses. Instructions are read-only: no directory entry or
// classifier state is maintained for them.
func (s *Simulator) instrMiss(c *coreState, addr mem.Addr) {
	la := mem.LineOf(addr)
	t0 := c.now
	home := s.nuca.InstrHome(la, c.id)

	t := t0 + mem.Cycle(s.cfg.L1ILatency)
	var l1l2, offchip mem.Cycle
	l1l2 = t - t0

	tArr := s.mesh.Unicast(c.id, home, 1, t)
	l1l2 += tArr - t
	t = tArr

	ht := &s.tiles[home]
	l2line := ht.l2.Probe(la)
	if l2line == nil {
		var fillDone mem.Cycle
		l2line, fillDone = s.l2Fill(home, la, t)
		offchip += fillDone - t
		t = fillDone
		// No directory entry: replicas are read-only.
	}
	t += mem.Cycle(s.cfg.L2Latency)
	l1l2 += mem.Cycle(s.cfg.L2Latency)
	ht.l2.Touch(l2line, t)
	s.meter.L2LineReads++

	tEnd := s.mesh.Unicast(home, c.id, 9, t)
	l1l2 += tEnd - t

	l1i := s.tiles[c.id].l1i
	line, _, evicted := l1i.Insert(la) // instruction victims are clean; drop silently
	if evicted {
		c.l1iResident-- // the victim was a resident code line
	}
	c.l1iResident++
	if c.l1iResident == s.cfg.CodeLines {
		c.l1iWarm = true
	}
	line.State = lineS
	line.Home = int16(home)
	l1i.Touch(line, tEnd)

	c.bd.L1ToL2 += float64(l1l2)
	c.bd.OffChip += float64(offchip)
	if s.cfg.CheckValues {
		if sum := l1l2 + offchip; sum != tEnd-t0 {
			panic(fmt.Sprintf("sim: ifetch components %d != total %d", sum, tEnd-t0))
		}
	}
	c.now = tEnd
}

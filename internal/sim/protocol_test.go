package sim_test

import (
	"errors"
	"strings"
	"testing"

	"lacc/internal/mem"
	"lacc/internal/sim"
	"lacc/internal/stats"
	"lacc/internal/trace"
)

func TestProtocolKindsRegistered(t *testing.T) {
	kinds := sim.ProtocolKinds()
	want := []sim.ProtocolKind{
		sim.ProtocolAdaptive, sim.ProtocolDLS, sim.ProtocolDragon,
		sim.ProtocolHybrid, sim.ProtocolMESI, sim.ProtocolNeat,
	}
	if len(kinds) != len(want) {
		t.Fatalf("ProtocolKinds() = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("ProtocolKinds() = %v, want %v (sorted)", kinds, want)
		}
	}
}

func TestValidateRejectsUnknownProtocol(t *testing.T) {
	cfg := sim.Default()
	cfg.ProtocolKind = "token-coherence"
	if _, err := sim.New(cfg); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("New with unknown protocol: err = %v, want unknown-protocol error", err)
	}
}

func TestValidateEmptyKindMeansAdaptive(t *testing.T) {
	cfg := protoConfig(sim.ProtocolKind(""))
	res := runPingPong(t, cfg, 50)
	if res.Protocol != string(sim.ProtocolAdaptive) {
		t.Fatalf("empty ProtocolKind ran %q, want adaptive", res.Protocol)
	}
}

func TestValidateRejectsVictimReplicationOffAdaptive(t *testing.T) {
	for _, kind := range []sim.ProtocolKind{
		sim.ProtocolMESI, sim.ProtocolDragon,
		sim.ProtocolDLS, sim.ProtocolNeat, sim.ProtocolHybrid,
	} {
		cfg := sim.Default()
		cfg.ProtocolKind = kind
		cfg.VictimReplication = true
		_, err := sim.New(cfg)
		if err == nil || !strings.Contains(err.Error(), "victim replication") {
			t.Errorf("%s + victim replication: err = %v, want rejection", kind, err)
			continue
		}
		var fe *sim.FeatureError
		if !errors.As(err, &fe) {
			t.Errorf("%s + victim replication: err type %T, want *sim.FeatureError", kind, err)
		} else if fe.Protocol != kind {
			t.Errorf("%s + victim replication: FeatureError.Protocol = %q", kind, fe.Protocol)
		}
	}
	cfg := sim.Default()
	cfg.ProtocolKind = sim.ProtocolAdaptive
	cfg.VictimReplication = true
	if _, err := sim.New(cfg); err != nil {
		t.Errorf("adaptive + victim replication rejected: %v", err)
	}
}

// protoConfig returns a small 4-core machine with the full checker stack
// (golden store + audit) enabled.
func protoConfig(kind sim.ProtocolKind) sim.Config {
	cfg := sim.Default()
	cfg.Cores = 4
	cfg.MeshWidth = 2
	cfg.MemControllers = 2
	cfg.ProtocolKind = kind
	return cfg
}

// pingPongStreams builds a two-core ping-pong on one line: core 0 writes,
// core 1 reads the fresh value, rounds times, with barriers enforcing the
// order so the golden-store checker validates every handoff.
func pingPongStreams(cores, rounds int) []trace.Stream {
	const line = mem.Addr(1 << 22)
	streams := make([]trace.Stream, cores)
	for c := 0; c < cores; c++ {
		var ops []mem.Access
		for r := 0; r < rounds; r++ {
			if c == 0 {
				ops = append(ops, mem.Access{Kind: mem.Write, Addr: line})
			}
			ops = append(ops, mem.Access{Kind: mem.Barrier, Addr: mem.Addr(2 * r)})
			if c != 0 {
				ops = append(ops, mem.Access{Kind: mem.Read, Addr: line})
			}
			ops = append(ops, mem.Access{Kind: mem.Barrier, Addr: mem.Addr(2*r + 1)})
		}
		streams[c] = trace.FromSlice(ops)
	}
	return streams
}

func runPingPong(t *testing.T, cfg sim.Config, rounds int) *sim.Result {
	t.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(pingPongStreams(cfg.Cores, rounds))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestProtocolsServeFreshData runs the producer-consumer ping-pong under
// every registered protocol with the golden-store checker and the final
// audit enabled: any stale read or directory/cache inconsistency fails the
// run.
func TestProtocolsServeFreshData(t *testing.T) {
	for _, kind := range sim.ProtocolKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			res := runPingPong(t, protoConfig(kind), 200)
			if res.Protocol != string(kind) {
				t.Errorf("Result.Protocol = %q, want %q", res.Protocol, kind)
			}
			if res.DataAccesses == 0 {
				t.Error("no data accesses recorded")
			}
		})
	}
}

// TestProtocolWritePolicies pins the qualitative signatures that tell the
// three protocols apart on the same sharing-heavy trace: MESI invalidates
// and never updates or word-accesses; Dragon updates instead of
// invalidating; the adaptive protocol (at its default PCT) services
// low-locality sharers with word accesses.
func TestProtocolWritePolicies(t *testing.T) {
	results := map[sim.ProtocolKind]*sim.Result{}
	for _, kind := range sim.ProtocolKinds() {
		results[kind] = runPingPong(t, protoConfig(kind), 200)
	}

	mesi := results[sim.ProtocolMESI]
	if mesi.WordReads+mesi.WordWrites != 0 {
		t.Errorf("MESI word accesses = %d, want 0", mesi.WordReads+mesi.WordWrites)
	}
	if mesi.UpdateWrites != 0 {
		t.Errorf("MESI update writes = %d, want 0", mesi.UpdateWrites)
	}
	if mesi.Promotions+mesi.Demotions != 0 {
		t.Errorf("MESI classifier transitions = %d, want 0", mesi.Promotions+mesi.Demotions)
	}
	if mesi.BroadcastInvalidations != 0 {
		t.Errorf("full-map MESI broadcast invalidations = %d, want 0", mesi.BroadcastInvalidations)
	}
	if mesi.Invalidations == 0 {
		t.Error("MESI ping-pong produced no invalidations")
	}

	dragon := results[sim.ProtocolDragon]
	if dragon.UpdateWrites == 0 {
		t.Error("Dragon ping-pong produced no update writes")
	}
	if dragon.WordReads+dragon.WordWrites != 0 {
		t.Errorf("Dragon word accesses = %d, want 0", dragon.WordReads+dragon.WordWrites)
	}
	// Updates replace invalidations: the only invalidations left come from
	// one-time R-NUCA page moves, far below MESI's per-write count.
	if dragon.Invalidations >= mesi.Invalidations/4 {
		t.Errorf("Dragon invalidations = %d, want far below MESI's %d",
			dragon.Invalidations, mesi.Invalidations)
	}
	dragonSharing := dragon.L1D.Misses[stats.MissSharing]
	mesiSharing := mesi.L1D.Misses[stats.MissSharing]
	if dragonSharing >= mesiSharing/4 {
		t.Errorf("Dragon sharing misses = %d, want far below MESI's %d",
			dragonSharing, mesiSharing)
	}

	adaptive := results[sim.ProtocolAdaptive]
	if adaptive.WordReads+adaptive.WordWrites == 0 {
		t.Error("adaptive ping-pong produced no remote word accesses")
	}
	if adaptive.UpdateWrites != 0 {
		t.Errorf("adaptive update writes = %d, want 0", adaptive.UpdateWrites)
	}

	// DLS caches nothing privately: every data access is a remote word
	// access, and with no private copies there is nothing to invalidate
	// or update.
	dls := results[sim.ProtocolDLS]
	if dls.WordReads+dls.WordWrites != dls.DataAccesses {
		t.Errorf("DLS word accesses = %d, want every access (%d)",
			dls.WordReads+dls.WordWrites, dls.DataAccesses)
	}
	if dls.Invalidations+dls.UpdateWrites != 0 {
		t.Errorf("DLS invalidations+updates = %d, want 0",
			dls.Invalidations+dls.UpdateWrites)
	}

	// Neat invalidates like MESI but drops shared copies at barriers too.
	neat := results[sim.ProtocolNeat]
	if neat.WordReads+neat.WordWrites+neat.UpdateWrites != 0 {
		t.Errorf("Neat word/update accesses = %d, want 0",
			neat.WordReads+neat.WordWrites+neat.UpdateWrites)
	}
	if neat.SelfInvalidations == 0 {
		t.Error("Neat barrier-heavy ping-pong produced no self-invalidations")
	}

	// Hybrid pushes updates to private-mode sharers instead of remote
	// word accesses.
	hybrid := results[sim.ProtocolHybrid]
	if hybrid.UpdateWrites == 0 {
		t.Error("hybrid ping-pong produced no update writes")
	}
	if hybrid.WordReads+hybrid.WordWrites != 0 {
		t.Errorf("hybrid word accesses = %d, want 0", hybrid.WordReads+hybrid.WordWrites)
	}
	for _, kind := range []sim.ProtocolKind{
		sim.ProtocolMESI, sim.ProtocolDragon, sim.ProtocolAdaptive, sim.ProtocolDLS,
	} {
		if n := results[kind].SelfInvalidations; n != 0 {
			t.Errorf("%s self-invalidations = %d, want 0", kind, n)
		}
	}
}

// TestProtocolsDeterministic pins that re-running the same trace under the
// same protocol reproduces identical results (the golden-test contract
// extended to the new protocols).
func TestProtocolsDeterministic(t *testing.T) {
	for _, kind := range sim.ProtocolKinds() {
		a := runPingPong(t, protoConfig(kind), 100)
		b := runPingPong(t, protoConfig(kind), 100)
		if a.CompletionCycles != b.CompletionCycles || a.LinkFlits != b.LinkFlits {
			t.Errorf("%s: completion %d/%d flits %d/%d across identical runs",
				kind, a.CompletionCycles, b.CompletionCycles, a.LinkFlits, b.LinkFlits)
		}
	}
}

package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/mem"
)

// Audit verifies the structural invariants of the final machine state and
// returns the first violation found. It runs automatically at the end of
// every simulation when CheckValues is enabled, complementing the golden
// store's data checks with directory/cache cross-validation:
//
//   - every directory entry's home L2 slice still holds the line
//     (the directory is integrated with the L2 tags),
//   - an Uncached entry has no private copies anywhere,
//   - a Shared entry's exact sharer count equals the number of tiles
//     holding the line (L1 copy or, under victim replication, a replica),
//     and every identified sharer actually holds it,
//   - an Exclusive/Modified entry has exactly one copy, held by the
//     registered owner (possibly as a clean replica under VR),
//   - inclusivity: every valid L1-D line has a directory entry at its
//     recorded home.
//
// When CheckValues is on, Audit also enforces the data-value invariant at
// quiescence: every valid L1-D copy carries the latest committed version,
// and an Uncached or Shared home line is current in the L2 (Exclusive is
// exempt — a silent E→M upgrade leaves the home stale by design until the
// owner is fetched). These checks complement checkVersion, which fires
// only when a stale value is actually read; Audit catches stale copies
// that a short run never touches again, which is what lets model-checker
// counterexamples fail deterministically when replayed as traces.
func (s *Simulator) Audit() error {
	// Directory-side checks.
	for home := range s.tiles {
		ht := &s.tiles[home]
		var fail error
		ht.dir.forEach(func(la mem.Addr, entry *dirEntry) {
			if fail != nil {
				return
			}
			fail = s.auditEntry(home, la, entry)
		})
		if fail != nil {
			return fail
		}
	}
	// Cache-side inclusivity checks.
	for id := range s.tiles {
		if err := s.auditL1(id); err != nil {
			return err
		}
	}
	// Dirless home lines (DLS): an L2 data line with no directory entry is
	// the single authoritative copy and must be current. Inert for the
	// directory protocols, where every data line in an L2 slice has an
	// integrated directory entry.
	if s.cfg.CheckValues {
		for home := range s.tiles {
			if err := s.auditDirlessL2(home); err != nil {
				return err
			}
		}
	}
	return nil
}

// auditDirlessL2 enforces the data-value invariant on home L2 lines that
// have no directory entry (the DLS single point of coherence).
func (s *Simulator) auditDirlessL2(home int) error {
	ht := &s.tiles[home]
	var fail error
	ht.l2.ForEach(func(l *cache.Line) {
		if fail != nil || l.Addr >= codeBase || l.State == lineReplica {
			return
		}
		if ht.dir.probe(l.Addr) != nil {
			return
		}
		if want := s.golden.get(l.Addr); l.Version != want {
			fail = fmt.Errorf("sim: audit: dirless home line %#x at tile %d version %d, golden %d",
				l.Addr, home, l.Version, want)
		}
	})
	return fail
}

// auditEntry checks one directory entry against the caches.
func (s *Simulator) auditEntry(home int, la mem.Addr, entry *dirEntry) error {
	l2line := s.tiles[home].l2.Probe(la)
	if l2line == nil {
		return fmt.Errorf("sim: audit: directory entry %#x at tile %d without L2 line", la, home)
	}
	if s.cfg.CheckValues &&
		(entry.state == coherence.Uncached || entry.state == coherence.SharedState) {
		if want := s.golden.get(la); l2line.Version != want {
			return fmt.Errorf("sim: audit: %v home line %#x at tile %d version %d, golden %d",
				entry.state, la, home, l2line.Version, want)
		}
	}
	holders := 0
	for id := range s.tiles {
		if s.tileHasCopy(id, la) {
			holders++
		}
	}
	switch entry.state {
	case coherence.Uncached:
		if holders != 0 {
			return fmt.Errorf("sim: audit: uncached line %#x has %d copies", la, holders)
		}
	case coherence.SharedState:
		if holders != entry.sharers.Count() {
			return fmt.Errorf("sim: audit: line %#x tracks %d sharers, found %d copies",
				la, entry.sharers.Count(), holders)
		}
		for _, id := range entry.sharers.Identified() {
			if !s.tileHasCopy(int(id), la) {
				return fmt.Errorf("sim: audit: line %#x lists sharer %d without a copy", la, id)
			}
		}
	case coherence.ExclusiveState, coherence.ModifiedState:
		if holders != 1 {
			return fmt.Errorf("sim: audit: owned line %#x has %d copies", la, holders)
		}
		if !s.tileHasCopy(int(entry.owner), la) {
			return fmt.Errorf("sim: audit: line %#x owner %d holds no copy", la, entry.owner)
		}
	default:
		return fmt.Errorf("sim: audit: line %#x in unknown state %v", la, entry.state)
	}
	return nil
}

// auditL1 checks every valid L1-D line against its home directory.
func (s *Simulator) auditL1(id int) error {
	var fail error
	s.tiles[id].l1d.ForEach(func(l *cache.Line) {
		if fail != nil {
			return
		}
		entry := s.tiles[l.Home].dir.probe(l.Addr)
		if entry == nil {
			fail = fmt.Errorf("sim: audit: L1 line %#x at core %d has no directory entry at home %d",
				l.Addr, id, l.Home)
			return
		}
		if s.cfg.CheckValues {
			if want := s.golden.get(l.Addr); l.Version != want {
				fail = fmt.Errorf("sim: audit: L1 copy of %#x at core %d version %d, golden %d",
					l.Addr, id, l.Version, want)
				return
			}
		}
		switch l.State {
		case lineS:
			if entry.state != coherence.SharedState &&
				entry.state != coherence.ExclusiveState { // clean-E reinstall under VR
				fail = fmt.Errorf("sim: audit: L1 S copy of %#x at core %d but home state %v",
					l.Addr, id, entry.state)
			}
		case lineE, lineM:
			if entry.state != coherence.ExclusiveState && entry.state != coherence.ModifiedState {
				fail = fmt.Errorf("sim: audit: L1 %d copy of %#x at core %d but home state %v",
					l.State, l.Addr, id, entry.state)
			} else if int(entry.owner) != id {
				fail = fmt.Errorf("sim: audit: L1 owned copy of %#x at core %d but registered owner %d",
					l.Addr, id, entry.owner)
			}
		}
	})
	return fail
}

package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lacc/internal/mem"
)

// runProgramSharded executes prog on a fast-layout simulator pinned to the
// shard-parallel engine with the requested worker count (forceSharded
// bypasses shardCount's CheckValues/VictimReplication gate, so the
// deterministic single-worker configuration can be differentially compared
// with full value checking on).
func runProgramSharded(t *testing.T, cfg Config, shards int, prog [][]mem.Access) (*Simulator, *Result) {
	t.Helper()
	cfg.Shards = shards
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.forceSharded = true
	res, err := s.Run(sliceStreams(prog))
	if err != nil {
		t.Fatalf("sharded engine (%d shards): %v", shards, err)
	}
	return s, res
}

// TestEngineShardedVsGeneric is the sharded engine's equivalence property:
// with a single worker the shard scheduler — epoch barriers, the inbox
// FIFO for sync grants, deferred L1 eviction drains and the per-structure
// locking — must reproduce the generic engine bit for bit, for every
// protocol, geometry and workload shape. One worker makes the epoch
// machinery's scheduling decisions deterministic (the worker's run queue
// is the global queue), so any divergence is a real reordering or a
// tolerant path misfiring, not scheduler noise.
func TestEngineShardedVsGeneric(t *testing.T) {
	protocols := []struct {
		name string
		mut  func(*Config)
	}{
		{"adaptive", func(c *Config) {}},
		{"adaptive-timestamp", func(c *Config) { c.Protocol.UseTimestamp = true }},
		{"adaptive-victim-replication", func(c *Config) { c.VictimReplication = true }},
		{"mesi", func(c *Config) { c.ProtocolKind = ProtocolMESI }},
		{"dragon", func(c *Config) { c.ProtocolKind = ProtocolDragon }},
		{"dls", func(c *Config) { c.ProtocolKind = ProtocolDLS }},
		{"neat", func(c *Config) { c.ProtocolKind = ProtocolNeat }},
		{"hybrid", func(c *Config) { c.ProtocolKind = ProtocolHybrid }},
	}
	geometries := []struct {
		name string
		mut  func(*Config)
	}{
		{"4core-2x2", func(c *Config) {}},
		{"8core-4x2", func(c *Config) {
			c.Cores, c.MeshWidth, c.MemControllers = 8, 4, 4
		}},
		{"2core-2x1", func(c *Config) {
			c.Cores, c.MeshWidth, c.MemControllers = 2, 2, 2
		}},
	}
	programs := []struct {
		name  string
		build func(*rand.Rand, int) [][]mem.Access
	}{
		{"mixed", buildRandomProgram},
		{"lock-heavy", buildLockHeavyProgram},
		{"barrier-heavy", buildBarrierHeavyProgram},
	}
	for _, p := range protocols {
		for _, g := range geometries {
			for _, w := range programs {
				p, g, w := p, g, w
				t.Run(p.name+"/"+g.name+"/"+w.name, func(t *testing.T) {
					t.Parallel()
					cfg := diffConfig()
					g.mut(&cfg)
					p.mut(&cfg)
					prog := w.build(rand.New(rand.NewSource(11)), cfg.Cores)

					shardedSim, shardedRes := runProgramSharded(t, cfg, 1, prog)
					genericSim, genericRes := runProgramGeneric(t, cfg, prog)
					compareStates(t, "sharded vs generic", shardedSim, shardedRes, genericSim, genericRes)
				})
			}
		}
	}
}

// TestEngineShardedEpochLengths pins that the epoch length is a pure
// scheduling knob: with one worker, any epoch granularity — including a
// pathological 1-cycle epoch that forces an advance per operation — still
// reproduces the generic engine exactly.
func TestEngineShardedEpochLengths(t *testing.T) {
	for _, epoch := range []int{1, 64, 1 << 20} {
		epoch := epoch
		t.Run(fmt.Sprintf("epoch%d", epoch), func(t *testing.T) {
			t.Parallel()
			cfg := diffConfig()
			cfg.EpochCycles = epoch
			prog := buildRandomProgram(rand.New(rand.NewSource(17)), cfg.Cores)

			shardedSim, shardedRes := runProgramSharded(t, cfg, 1, prog)
			genericSim, genericRes := runProgramGeneric(t, cfg, prog)
			compareStates(t, "sharded vs generic", shardedSim, shardedRes, genericSim, genericRes)
		})
	}
}

// TestEngineShardedParallel exercises the genuinely concurrent
// configuration (relaxed mode). Multi-worker runs are not bit-exact — home
// transactions from different shards serialize in lock-acquisition order,
// which perturbs timing — so this test asserts the bounded-divergence
// contract instead:
//
//   - the run completes without error under every protocol,
//   - program-determined counts are exact: every data access retires
//     exactly once, and instruction-fetch outcomes (per-core L1I state is
//     never shared) match the sequential run,
//   - timing and traffic stay within a generous band of the sequential
//     run (they measure the same program through the same machine; only
//     transaction interleaving differs).
//
// Run with -race in CI: this is also the data-race proof for the shard
// runtime's locking discipline.
func TestEngineShardedParallel(t *testing.T) {
	protocols := []struct {
		name string
		mut  func(*Config)
	}{
		{"adaptive", func(c *Config) {}},
		{"adaptive-timestamp", func(c *Config) { c.Protocol.UseTimestamp = true }},
		{"mesi", func(c *Config) { c.ProtocolKind = ProtocolMESI }},
		{"dragon", func(c *Config) { c.ProtocolKind = ProtocolDragon }},
		{"dls", func(c *Config) { c.ProtocolKind = ProtocolDLS }},
		{"neat", func(c *Config) { c.ProtocolKind = ProtocolNeat }},
		{"hybrid", func(c *Config) { c.ProtocolKind = ProtocolHybrid }},
	}
	programs := []struct {
		name  string
		build func(*rand.Rand, int) [][]mem.Access
	}{
		{"mixed", buildRandomProgram},
		{"lock-heavy", buildLockHeavyProgram},
		{"barrier-heavy", buildBarrierHeavyProgram},
	}
	for _, p := range protocols {
		for _, w := range programs {
			for _, shards := range []int{2, 4} {
				p, w, shards := p, w, shards
				t.Run(fmt.Sprintf("%s/%s/%dshards", p.name, w.name, shards), func(t *testing.T) {
					t.Parallel()
					cfg := diffConfig()
					cfg.Cores, cfg.MeshWidth, cfg.MemControllers = 8, 4, 4
					p.mut(&cfg)
					// Relaxed mode never runs the value checker (stale data
					// reads are expected divergence, not defects).
					cfg.CheckValues = false
					prog := w.build(rand.New(rand.NewSource(23)), cfg.Cores)

					_, seqRes := runProgram(t, cfg, false, prog)
					_, shRes := runProgramSharded(t, cfg, shards, prog)

					if shRes.DataAccesses != seqRes.DataAccesses {
						t.Errorf("DataAccesses diverged: sharded %d, sequential %d",
							shRes.DataAccesses, seqRes.DataAccesses)
					}
					if shRes.L1IHits != seqRes.L1IHits || shRes.L1IMisses != seqRes.L1IMisses {
						t.Errorf("L1I outcomes diverged: sharded %d/%d, sequential %d/%d",
							shRes.L1IHits, shRes.L1IMisses, seqRes.L1IHits, seqRes.L1IMisses)
					}
					inBand := func(name string, got, want uint64) {
						if want == 0 {
							return
						}
						if got*2 < want || got > want*2 {
							t.Errorf("%s outside divergence band: sharded %d, sequential %d",
								name, got, want)
						}
					}
					inBand("CompletionCycles", uint64(shRes.CompletionCycles), uint64(seqRes.CompletionCycles))
					inBand("LinkFlits", shRes.LinkFlits, seqRes.LinkFlits)
					inBand("DRAMReads", shRes.DRAMReads, seqRes.DRAMReads)
				})
			}
		}
	}
}

// TestShardedResetReuse pins that a simulator that ran sharded can be
// Reset and reused — sequentially or sharded again — without residue from
// the worker clones (merged counters, drained inboxes, cleared pending
// evictions).
func TestShardedResetReuse(t *testing.T) {
	cfg := diffConfig()
	prog := buildRandomProgram(rand.New(rand.NewSource(29)), cfg.Cores)

	freshSim, freshRes := runProgram(t, cfg, false, prog)

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.forceSharded = true
	cfgSharded := cfg
	cfgSharded.Shards = 1
	if err := s.Reset(cfgSharded); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(sliceStreams(prog)); err != nil {
		t.Fatal(err)
	}

	// Back to the sequential engine: bit-identical to a fresh simulator.
	s.forceSharded = false
	if err := s.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(sliceStreams(prog))
	if err != nil {
		t.Fatal(err)
	}
	compareStates(t, "reset after sharded run", s, res, freshSim, freshRes)
}

// TestConfigLimits is the table-driven boundary test for the packed-width
// validation: core counts must fit the int16 tile ids used by directory
// owner/sharer state (and the int32 run-queue ids), shard counts must stay
// within [0, Cores], and epoch lengths must be non-negative.
func TestConfigLimits(t *testing.T) {
	valid := func(cores, width, mcs int) Config {
		cfg := Default()
		cfg.Cores, cfg.MeshWidth, cfg.MemControllers = cores, width, mcs
		return cfg
	}
	tests := []struct {
		name      string
		mut       func(*Config)
		wantErr   bool
		wantLimit bool
	}{
		// 32767 = 7 * 31 * 151, so MeshWidth 7 satisfies divisibility at the
		// exact MaxCores boundary; one more core overflows the int16 tile
		// ids packed through the directory and cache lines.
		{"max-cores-ok", func(c *Config) { *c = valid(1<<15-1, 7, 7) }, false, false},
		{"cores-overflow", func(c *Config) { *c = valid(1<<15, 8, 8) }, true, true},
		{"shards-negative", func(c *Config) { c.Shards = -1 }, true, false},
		{"shards-exceed-cores", func(c *Config) { c.Shards = c.Cores + 1 }, true, true},
		{"shards-equal-cores", func(c *Config) { c.Shards = c.Cores }, false, false},
		{"epoch-negative", func(c *Config) { c.EpochCycles = -1 }, true, false},
		{"epoch-zero-default", func(c *Config) { c.EpochCycles = 0 }, false, false},
		{"shards-with-checkvalues", func(c *Config) {
			// Accepted: the value checker forces the sequential engine, it
			// does not reject the config.
			c.Shards = 4
			c.CheckValues = true
		}, false, false},
		// Unsupported feature combos reject through the typed FeatureError
		// path (not LimitError): victim replication is adaptive-only.
		{"victim-replication-dls", func(c *Config) {
			c.ProtocolKind = ProtocolDLS
			c.VictimReplication = true
		}, true, false},
		{"victim-replication-neat", func(c *Config) {
			c.ProtocolKind = ProtocolNeat
			c.VictimReplication = true
		}, true, false},
		{"victim-replication-hybrid", func(c *Config) {
			c.ProtocolKind = ProtocolHybrid
			c.VictimReplication = true
		}, true, false},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.wantErr && err == nil {
				t.Fatal("Validate accepted an out-of-range config")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("Validate rejected a valid config: %v", err)
			}
			var le *LimitError
			if got := errors.As(err, &le); got != tc.wantLimit {
				t.Fatalf("LimitError presence = %v, want %v (err: %v)", got, tc.wantLimit, err)
			}
			if le != nil && le.Error() == "" {
				t.Fatal("empty LimitError message")
			}
		})
	}
}

// TestShardOfPartition pins the contiguous tile-group partition: every
// core maps to exactly one shard, shards are contiguous, non-empty and
// balanced to within one core.
func TestShardOfPartition(t *testing.T) {
	for _, tc := range []struct{ cores, shards int }{
		{4, 2}, {8, 3}, {16, 4}, {7, 7}, {256, 16}, {5, 2},
	} {
		sh := &shardRuntime{n: tc.shards, cores: tc.cores}
		counts := make([]int, tc.shards)
		last := 0
		for id := 0; id < tc.cores; id++ {
			g := sh.shardOf(id)
			if g < 0 || g >= tc.shards {
				t.Fatalf("%d cores/%d shards: core %d mapped to %d", tc.cores, tc.shards, id, g)
			}
			if g < last {
				t.Fatalf("%d cores/%d shards: non-contiguous partition at core %d", tc.cores, tc.shards, id)
			}
			last = g
			counts[g]++
		}
		min, max := tc.cores, 0
		for g, n := range counts {
			if n == 0 {
				t.Fatalf("%d cores/%d shards: shard %d empty", tc.cores, tc.shards, g)
			}
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
			_ = g
		}
		if max-min > 1 {
			t.Fatalf("%d cores/%d shards: unbalanced partition %v", tc.cores, tc.shards, counts)
		}
	}
}

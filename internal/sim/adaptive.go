package sim

import (
	"fmt"

	"lacc/internal/cache"
	"lacc/internal/coherence"
	"lacc/internal/core"
	"lacc/internal/mem"
	"lacc/internal/nuca"
)

// adaptiveProtocol is the paper's locality-aware adaptive coherence
// protocol: an ACKwise limited directory whose entries classify every
// (line, core) pair as a private sharer (full line cached in the L1) or a
// remote sharer (word-granular round trips to the shared L2), driven by
// measured utilization against the Private Caching Threshold. It embeds
// the Simulator and drives the protocol-neutral substrate directly.
type adaptiveProtocol struct {
	*Simulator
}

func init() {
	RegisterProtocol(ProtocolAdaptive, func(s *Simulator) Protocol {
		// Simulator.Reset keeps a shape-compatible pool (with its slabs and
		// reclaimed classifiers) across runs; build one only when absent.
		if s.clsPool == nil || !s.clsPool.Matches(s.cfg.Cores, s.cfg.ClassifierK) {
			s.clsPool = core.NewClassifierPool(s.cfg.Cores, s.cfg.ClassifierK)
		}
		return &adaptiveProtocol{s}
	})
}

// Name implements Protocol.
func (s *adaptiveProtocol) Name() string { return string(ProtocolAdaptive) }

// Finalize implements Protocol. The adaptive counters (promotions, word
// accesses, invalidations, replica activity) live on the Simulator and are
// already collected; nothing protocol-private remains.
func (s *adaptiveProtocol) Finalize(r *Result) {}

// initDirEntry completes a freshly inserted directory entry with a pristine
// classifier (all cores initially private, Figure 4). The fast core draws
// classifiers from the slab pool; the reference core allocates like the old
// implementation, so a defective classifier Reset would surface as a
// differential mismatch.
func (s *adaptiveProtocol) initDirEntry(e *dirEntry) {
	e.owner = -1
	if s.reference {
		e.cls = core.NewClassifier(s.cfg.Cores, s.cfg.ClassifierK)
	} else if s.sh != nil {
		s.sh.poolMu.Lock()
		e.cls = s.clsPool.Get()
		s.sh.poolMu.Unlock()
	} else {
		e.cls = s.clsPool.Get()
	}
}

// DataAccess executes one data read or write, including the full protocol
// path on a miss. It advances the core's clock and accounts the latency
// into the paper's completion-time components.
func (s *adaptiveProtocol) DataAccess(c *coreState, kind mem.AccessKind, addr mem.Addr) {
	s.dataAccess(s, c, kind, addr)
}

// missPath handles an L1 miss (or upgrade): it consults R-NUCA for the home
// slice, walks the directory protocol there, and either installs a private
// copy or performs a remote word access, per the locality classification.
func (s *adaptiveProtocol) missPath(c *coreState, kind mem.AccessKind, addr mem.Addr, upgrade bool) {
	la := mem.LineOf(addr)

	// Victim replication: a read miss with a local replica never leaves
	// the tile; a write miss drops the local replica and carries the
	// sharership release to the home inside the request.
	if s.cfg.VictimReplication && kind == mem.Read && s.replicaRead(c, addr) {
		return
	}
	replicaUtil, hadReplica := uint32(0), false
	if kind == mem.Write {
		replicaUtil, hadReplica = s.dropOwnReplica(c, la)
	}

	t0 := c.now
	if kind == mem.Write {
		s.meter.L1DWrites++
	} else {
		s.meter.L1DReads++
	}

	// L1 tag probe detected the miss.
	t := t0 + mem.Cycle(s.cfg.L1DLatency)
	var l1l2, wait, sharersLat, offchip mem.Cycle
	l1l2 = t - t0

	home, recl := s.dataHome(addr, c.id)
	if recl != nil {
		s.PageMove(recl, t)
		t += mem.Cycle(s.cfg.PageMoveLatency)
		offchip += mem.Cycle(s.cfg.PageMoveLatency)
	}

	// Request message: header flit, plus the data word on writes
	// (Section 3.6: the word to be written travels with the request).
	reqFlits := 1
	if kind == mem.Write {
		reqFlits = 2
	}
	tArr := s.mesh.Unicast(c.id, home, reqFlits, t)
	l1l2 += tArr - t
	t = tArr

	// The whole home-side transaction — directory walk, sharer round
	// trips, grant — runs under the home tile's lock.
	s.lockHome(home)
	entry, l2line, tDir, wait, fill := s.lookupEntry(s, c, home, la, t)
	offchip += fill
	l1l2 += mem.Cycle(s.cfg.L2Latency)
	t = tDir
	ht := &s.tiles[home]

	if hadReplica {
		// The write request announced the requester's replica drop.
		s.dropSharershipAtHome(entry, c.id, replicaUtil)
	}

	// Classifier inputs are computed before this access touches the line.
	st := core.Lookup(entry.cls, c.id)
	s.lockL1(c.id)
	var minLA mem.Cycle
	var full bool
	if s.cfg.Protocol.UseTimestamp {
		minLA, full = s.tiles[c.id].l1d.MinLastAccess(la)
	}
	hasInv := s.tiles[c.id].l1d.HasInvalidWay(la)
	s.unlockL1(c.id)
	tsPass := false
	if s.cfg.Protocol.UseTimestamp {
		tsPass = !full || l2line.LastAccess > minLA
	}

	outcome := s.missOutcome(c, la, upgrade)

	grant := false
	replyFlits := 1
	if kind == mem.Read {
		if st.Mode == core.ModePrivate {
			grant = true
		} else {
			// The most recent data must be at the L2 before a word read.
			tWB := s.fetchOwnerForRead(home, la, entry, l2line, t)
			sharersLat += tWB - t
			t = tWB
			if core.RemoteAccess(s.cfg.Protocol, st, tsPass, hasInv) {
				grant = true
				s.promotions++
			} else {
				s.wordReads++
				s.meter.L2WordReads++
				s.meter.DirUpdates++
				if s.cfg.CheckValues {
					s.checkVersion("remote word read", la, l2line.Version)
				}
				replyFlits = 2 // header + word
			}
		}
		if grant {
			// A private read fill also needs the owner's data.
			tWB := s.fetchOwnerForRead(home, la, entry, l2line, t)
			sharersLat += tWB - t
			t = tWB
		}
	} else {
		// Write: all private copies except the requester's are invalidated
		// regardless of the requester's mode (Section 3.2).
		tInv := s.invalidateSharers(home, la, entry, l2line, c.id, t)
		sharersLat += tInv - t
		t = tInv
		// Remote utilization of every other remote sharer resets to 0.
		entry.cls.DeactivateRemoteExcept(c.id)
		s.meter.DirUpdates++
		if st.Mode == core.ModePrivate {
			grant = true
		} else if core.RemoteAccess(s.cfg.Protocol, st, tsPass, hasInv) {
			grant = true
			s.promotions++
		} else {
			// Remote word write commits at the L2. If the requester still
			// holds an S copy from when it was a private sharer (possible
			// when the Limited-k classifier lost its entry and the majority
			// vote says remote), that stale copy is invalidated by the
			// reply; the drop is local and costs no extra message.
			if upgrade {
				s.dropRequesterCopy(c, la, entry)
			}
			s.wordWrites++
			s.meter.L2WordWrites++
			s.meter.DirUpdates++
			l2line.Version = s.goldenWrite(la)
			l2line.Dirty = true
			replyFlits = 1 // ack
		}
	}
	if grant {
		// The requester is (now) an active private sharer; the activity bit
		// drives the Limited-k replacement policy (Section 3.4).
		st.Active = true
	}

	ht.l2.Touch(l2line, t)
	entry.busyUntil = t

	var tEnd mem.Cycle
	if grant {
		tEnd = s.grantLine(c, kind, la, home, entry, l2line, upgrade, t)
		s.unlockHome(home)
		l1l2 += tEnd - t
		s.setHistory(c.id, la, hCached)
	} else {
		tEnd = s.mesh.Unicast(home, c.id, replyFlits, t)
		s.unlockHome(home)
		l1l2 += tEnd - t
		s.setHistory(c.id, la, hRemote)
	}

	c.l1d.Record(outcome)
	c.bd.L1ToL2 += float64(l1l2)
	c.bd.L2Waiting += float64(wait)
	c.bd.L2Sharers += float64(sharersLat)
	c.bd.OffChip += float64(offchip)
	if s.cfg.CheckValues {
		if sum := l1l2 + wait + sharersLat + offchip; sum != tEnd-t0 {
			panic(fmt.Sprintf("sim: latency components %d != total %d", sum, tEnd-t0))
		}
	}
	c.now = tEnd
}

// grantLine hands a private copy (or upgraded write permission) to the
// requester and installs it in the L1, evicting as needed. It returns the
// time the reply (tail flit) reaches the requester.
func (s *adaptiveProtocol) grantLine(c *coreState, kind mem.AccessKind, la mem.Addr, home int,
	entry *dirEntry, l2line *cache.Line, upgrade bool, t mem.Cycle) mem.Cycle {

	replyFlits := 9 // header + 8 line flits
	if upgrade {
		replyFlits = 1 // permission only; data already in the L1
	} else {
		s.meter.L2LineReads++
	}

	if kind == mem.Read {
		if entry.state == coherence.Uncached {
			entry.state = coherence.ExclusiveState
			entry.owner = int16(c.id)
		} else {
			// fetchOwnerForRead downgraded any E/M owner to Shared.
			if entry.state != coherence.SharedState {
				panic(fmt.Sprintf("sim: read grant in state %v", entry.state))
			}
			if !s.relaxed() || !entry.sharers.Contains(c.id) {
				entry.sharers.Add(c.id)
			}
		}
	} else {
		if upgrade && entry.sharers.Contains(c.id) {
			// Under victim replication the requester's S copy can descend
			// from a clean-Exclusive replica reinstall, in which case the
			// home still records it as the owner rather than a sharer.
			entry.sharers.Remove(c.id)
		}
		if entry.sharers.Count() != 0 {
			if !s.relaxed() {
				panic(fmt.Sprintf("sim: write grant with %d live sharers", entry.sharers.Count()))
			}
			// Phantom registrations whose copies vanished under deferred
			// eviction; their acks were already collected.
			entry.sharers.Clear()
		}
		entry.state = coherence.ModifiedState
		entry.owner = int16(c.id)
	}
	s.meter.DirUpdates++

	tEnd := s.mesh.Unicast(home, c.id, replyFlits, t)

	s.lockL1(c.id)
	l1 := s.tiles[c.id].l1d
	var line *cache.Line
	if upgrade {
		line = l1.Probe(la)
		if line == nil && !s.relaxed() {
			panic("sim: upgrade without an L1 copy")
		}
	}
	if line == nil {
		var victim cache.Line
		var evicted bool
		line, victim, evicted = l1.Insert(la)
		if evicted {
			s.l1EvictNotify(s, c, victim, tEnd)
		}
		s.meter.L1DWrites++ // line fill write
		line.Home = int16(home)
		line.Util = 0
		line.Version = l2line.Version
	}

	line.Util++
	l1.Touch(line, tEnd)
	switch {
	case kind == mem.Write:
		line.State = lineM
		line.Dirty = true
		line.Version = s.goldenWrite(la)
	case entry.state == coherence.ExclusiveState:
		line.State = lineE
	default:
		line.State = lineS
	}
	s.unlockL1(c.id)
	if kind == mem.Read && s.cfg.CheckValues {
		s.checkVersion("private fill read", la, line.Version)
	}
	return tEnd
}

// fetchOwnerForRead performs the synchronous write-back/downgrade of an E
// or M owner so a read (private fill or remote word) observes the latest
// data. The owner keeps an S copy. Returns the time the data reaches home.
func (s *adaptiveProtocol) fetchOwnerForRead(home int, la mem.Addr, entry *dirEntry,
	l2line *cache.Line, t mem.Cycle) mem.Cycle {

	if entry.state != coherence.ExclusiveState && entry.state != coherence.ModifiedState {
		return t
	}
	owner := int(entry.owner)
	tReq := s.mesh.Unicast(home, owner, 1, t)
	tReq += mem.Cycle(s.cfg.L1DLatency)
	s.lockL1(owner)
	ol := s.tiles[owner].l1d.Probe(la)
	if ol == nil {
		s.unlockL1(owner)
		if s.cfg.VictimReplication {
			if rl := s.tiles[owner].l2.Probe(la); rl != nil && rl.State == lineReplica {
				// The clean-Exclusive owner's copy lives on as a local
				// replica: the home data is current, so the downgrade is a
				// single-flit acknowledgement and the replica persists as a
				// shared copy.
				tAck := s.mesh.Unicast(owner, home, 1, tReq)
				entry.state = coherence.SharedState
				entry.owner = -1
				entry.sharers.Clear()
				entry.sharers.Add(owner)
				s.meter.DirUpdates++
				return tAck
			}
		}
		if s.relaxed() {
			// The owner's copy was displaced concurrently and its deferred
			// eviction notification has not reached this home yet. Treat the
			// downgrade as a clean single-flit acknowledgement; the phantom
			// sharer registration is cleaned up by the eviction's
			// Contains-guarded deregistration when it drains.
			tAck := s.mesh.Unicast(owner, home, 1, tReq)
			entry.state = coherence.SharedState
			entry.owner = -1
			entry.sharers.Clear()
			entry.sharers.Add(owner)
			s.meter.DirUpdates++
			return tAck
		}
		panic(fmt.Sprintf("sim: owner %d lost line %#x", owner, la))
	}
	flits := 1
	if ol.Dirty {
		flits = 9
		l2line.Version = ol.Version
		l2line.Dirty = true
		ol.Dirty = false
		s.meter.L2LineWrites++
	}
	ol.State = lineS
	s.unlockL1(owner)
	tAck := s.mesh.Unicast(owner, home, flits, tReq)
	entry.state = coherence.SharedState
	entry.owner = -1
	entry.sharers.Clear()
	entry.sharers.Add(owner)
	s.meter.DirUpdates++
	return tAck
}

// invalidateSharers invalidates every private copy except the requester's
// (`except`, -1 for none), collecting utilization counters with the acks
// and classifying each invalidated core. Returns the time the last ack
// reaches home.
func (s *adaptiveProtocol) invalidateSharers(home int, la mem.Addr, entry *dirEntry,
	l2line *cache.Line, except int, t mem.Cycle) mem.Cycle {

	switch entry.state {
	case coherence.Uncached:
		return t
	case coherence.ExclusiveState, coherence.ModifiedState:
		owner := int(entry.owner)
		if owner == except {
			return t
		}
		tReq := s.mesh.Unicast(home, owner, 1, t)
		tEnd := s.invalAck(home, la, owner, entry, l2line, tReq)
		entry.state = coherence.Uncached
		entry.owner = -1
		return tEnd
	}

	// Shared state: multicast to identified sharers or broadcast on
	// ACKwise overflow.
	latest := t
	if entry.sharers.Overflowed() {
		s.bcastInvals++
		arrivals := s.mesh.BroadcastInto(s.bcastInval, home, 1, t)
		s.bcastInval = arrivals
		for id := range s.tiles {
			if id == except || !s.tileHasCopy(id, la) {
				continue
			}
			tEnd := s.invalAck(home, la, id, entry, l2line, arrivals[id])
			if tEnd > latest {
				latest = tEnd
			}
		}
		keep := except >= 0 && s.tileHasCopy(except, la)
		entry.sharers.Clear()
		if keep {
			entry.sharers.Add(except)
		}
	} else {
		ids := s.borrowIDs(entry.sharers.Identified())
		for _, id16 := range ids {
			id := int(id16)
			if id == except {
				continue
			}
			tReq := s.mesh.Unicast(home, id, 1, t)
			tEnd := s.invalAck(home, la, id, entry, l2line, tReq)
			if tEnd > latest {
				latest = tEnd
			}
			entry.sharers.Remove(id)
		}
		s.returnIDs(ids)
	}
	if entry.sharers.Count() == 0 {
		entry.state = coherence.Uncached
	}
	return latest
}

// invalAck invalidates one sharer's L1 copy at its arrival time and returns
// when the acknowledgement (carrying the private utilization counter,
// Section 3.6) reaches home.
func (s *adaptiveProtocol) invalAck(home int, la mem.Addr, id int, entry *dirEntry,
	l2line *cache.Line, tArr mem.Cycle) mem.Cycle {

	if s.faults.DropInvalidations {
		// Seeded SWMR defect (Faults): the request is lost, the sharer's
		// copy survives, yet the caller still deregisters it at home.
		return tArr
	}
	tArr += mem.Cycle(s.cfg.L1DLatency)
	s.lockL1(id)
	line, ok := s.invalidateTileCopy(id, la)
	if !ok {
		s.unlockL1(id)
		if !s.relaxed() {
			panic(fmt.Sprintf("sim: invalidation of absent copy at core %d line %#x", id, la))
		}
		// The copy was displaced concurrently (deferred eviction still in
		// flight): acknowledge without data and leave classification to the
		// eviction notification that displaced it.
		return s.mesh.Unicast(id, home, 1, tArr)
	}
	s.cores[id].history.set(la, hInvalidated)
	s.unlockL1(id)
	flits := 1
	if line.Dirty {
		flits = 9
		l2line.Version = line.Version
		l2line.Dirty = true
		s.meter.L2LineWrites++
	}
	tAck := s.mesh.Unicast(id, home, flits, tArr)
	s.classifyRemoval(entry, id, line.Util, false)
	if s.cfg.TrackUtilization {
		s.invalHist.Record(line.Util)
	}
	s.invalidations++
	return tAck
}

// dropRequesterCopy invalidates the requester's own stale S copy when its
// write is serviced as a remote word access, updating directory state and
// classification exactly as a remote invalidation would.
func (s *adaptiveProtocol) dropRequesterCopy(c *coreState, la mem.Addr, entry *dirEntry) {
	s.lockL1(c.id)
	line, ok := s.tiles[c.id].l1d.Invalidate(la)
	s.unlockL1(c.id)
	if !ok {
		if s.relaxed() {
			// The stale S copy was displaced concurrently; the deferred
			// eviction carries the deregistration.
			return
		}
		panic(fmt.Sprintf("sim: upgrade without an L1 copy at core %d line %#x", c.id, la))
	}
	if !s.relaxed() || entry.sharers.Contains(c.id) {
		entry.sharers.Remove(c.id)
	}
	if entry.sharers.Count() == 0 && entry.state == coherence.SharedState {
		entry.state = coherence.Uncached
	}
	s.classifyRemoval(entry, c.id, line.Util, false)
	if s.cfg.TrackUtilization {
		s.invalHist.Record(line.Util)
	}
	s.invalidations++
}

// classifyRemoval applies the PCT classification when a core's private copy
// leaves its L1 (Section 3.2) and counts demotions.
func (s *adaptiveProtocol) classifyRemoval(entry *dirEntry, id int, util uint32, eviction bool) {
	st := core.Lookup(entry.cls, id)
	was := st.Mode
	core.Classify(s.cfg.Protocol, st, util, eviction)
	if was == core.ModePrivate && st.Mode == core.ModeRemote {
		s.demotions++
	}
	s.meter.DirUpdates++
}

// L1Evict sends the eviction notification (with the utilization counter and
// dirty data) for a displaced L1 line. The requester does not wait on it;
// network occupancy and directory state are updated at the eviction time.
func (s *adaptiveProtocol) L1Evict(c *coreState, victim cache.Line, t mem.Cycle) {
	la := victim.Addr
	home := int(victim.Home)
	if s.cfg.VictimReplication && s.tryReplicate(c, victim, t) {
		// The victim lives on as a local replica; the tile remains a
		// sharer at home and no notification is sent.
		return
	}
	flits := 1
	if victim.Dirty {
		flits = 9
	}
	s.mesh.Unicast(c.id, home, flits, t)

	ht := &s.tiles[home]
	entry := ht.dir.probe(la)
	if entry == nil {
		if s.relaxed() {
			// The home entry was torn down (L2 eviction or page move) after
			// this eviction was deferred; the back-invalidation already
			// accounted the removal.
			return
		}
		panic(fmt.Sprintf("sim: eviction of line %#x without directory entry", la))
	}
	l2line := ht.l2.Probe(la)
	if l2line == nil {
		if s.relaxed() {
			return
		}
		panic(fmt.Sprintf("sim: eviction of line %#x absent from inclusive L2", la))
	}
	if victim.Dirty {
		l2line.Version = victim.Version
		l2line.Dirty = true
		s.meter.L2LineWrites++
	}
	if entry.owner == int16(c.id) {
		entry.state = coherence.Uncached
		entry.owner = -1
	} else if !s.relaxed() || entry.sharers.Contains(c.id) {
		entry.sharers.Remove(c.id)
		if entry.sharers.Count() == 0 && entry.state == coherence.SharedState {
			entry.state = coherence.Uncached
		}
	}
	s.classifyRemoval(entry, c.id, victim.Util, true)
	if s.cfg.TrackUtilization {
		s.evictHist.Record(victim.Util)
	}
	s.setHistory(c.id, la, hEvicted)
}

// L2Evict handles an L2 slice eviction: the inclusive hierarchy
// back-invalidates all private copies (their round trips overlap the DRAM
// fill and are not charged to the requester), then writes dirty data back
// to DRAM. Instruction lines have no directory entry and are dropped.
func (s *adaptiveProtocol) L2Evict(home int, victim cache.Line, t mem.Cycle) {
	la := victim.Addr
	if victim.State == lineReplica {
		// A home-line fill displaced a victim-replication replica: the
		// home directory of the replicated line must drop this tile's
		// sharership.
		s.replicaEvictions++
		s.notifyReplicaEviction(home, victim, t)
		return
	}
	ht := &s.tiles[home]
	entry := ht.dir.probe(la)
	if entry == nil {
		return // read-only instruction replica
	}
	version := victim.Version
	dirty := victim.Dirty

	backInval := func(id int) {
		tReq := s.mesh.Unicast(home, id, 1, t)
		tReq += mem.Cycle(s.cfg.L1DLatency)
		s.lockL1(id)
		line, ok := s.invalidateTileCopy(id, la)
		if !ok {
			s.unlockL1(id)
			if !s.relaxed() {
				panic(fmt.Sprintf("sim: back-invalidation of absent copy at core %d line %#x", id, la))
			}
			// Displaced concurrently; ack without data.
			s.mesh.Unicast(id, home, 1, tReq)
			return
		}
		s.cores[id].history.set(la, hEvicted)
		s.unlockL1(id)
		flits := 1
		if line.Dirty {
			flits = 9
			dirty = true
			if line.Version > version {
				version = line.Version
			}
		}
		s.mesh.Unicast(id, home, flits, tReq)
		s.classifyRemoval(entry, id, line.Util, true)
		if s.cfg.TrackUtilization {
			s.evictHist.Record(line.Util)
		}
	}

	switch entry.state {
	case coherence.ExclusiveState, coherence.ModifiedState:
		backInval(int(entry.owner))
	case coherence.SharedState:
		if entry.sharers.Overflowed() {
			s.bcastEvict = s.mesh.BroadcastInto(s.bcastEvict, home, 1, t)
			s.bcastInvals++
			for id := range s.tiles {
				if s.tileHasCopy(id, la) {
					backInval(id)
				}
			}
		} else {
			ids := s.borrowIDs(entry.sharers.Identified())
			for _, id := range ids {
				backInval(int(id))
			}
			s.returnIDs(ids)
		}
	}
	if dirty {
		ctrl := s.dram.ControllerOf(la)
		mc := s.dram.TileOf(ctrl)
		s.mesh.Unicast(home, mc, 9, t)
		s.dram.Write(ctrl, mem.LineBytes, t)
		s.dramVerSet(la, version)
		s.meter.L2LineReads++
	}
	s.removeDirEntry(home, la, entry)
}

// PageMove implements the R-NUCA private→shared reclassification: the
// page's lines migrate out of the old home slice (dirty ones via DRAM).
// Protocol state changes are immediate; the triggering access is charged
// PageMoveLatency by the caller.
func (s *adaptiveProtocol) PageMove(recl *nuca.Reclassification, t mem.Cycle) {
	oldHome := recl.OldHome
	// Callers invoke PageMove before taking the new home's lock, so the old
	// home's lock nests inside nothing here.
	s.lockHome(oldHome)
	defer s.unlockHome(oldHome)
	ht := &s.tiles[oldHome]
	for i := 0; i < mem.PageBytes/mem.LineBytes; i++ {
		la := recl.Page + mem.Addr(i*mem.LineBytes)
		l2line := ht.l2.Probe(la)
		if l2line == nil {
			continue
		}
		entry := ht.dir.probe(la)
		if entry != nil {
			s.invalidateSharers(oldHome, la, entry, l2line, -1, t)
			s.removeDirEntry(oldHome, la, entry)
		}
		old, _ := ht.l2.Invalidate(la)
		ctrl := s.dram.ControllerOf(la)
		if old.Dirty {
			s.dram.Write(ctrl, mem.LineBytes, t)
			s.dramVerSet(la, old.Version)
			s.mesh.Unicast(oldHome, s.dram.TileOf(ctrl), 9, t)
		}
		s.meter.L2LineReads++
	}
}

package sim

// The execution engine: the run loop that drains the per-core run queue.
//
// Two formulations coexist. runGeneric is the reference: one operation per
// heap touch, protocol dispatch through the Protocol interface — the loop
// as originally written, kept verbatim as the semantic baseline the
// differential tests replay against (TestEngineBatchedVsGeneric).
//
// The fast engine (runAdaptive/runMESI/runDragon/runDLS/runNeat/runHybrid)
// applies two transforms that leave the execution order provably unchanged:
//
//   - Horizon batching. The outer loop snapshots the run queue's second
//     smallest key (coreQueue.horizon). While the root core's re-keyed
//     (time, id) stays strictly below that horizon it is still the global
//     minimum — nothing else touches the queue during data accesses, so
//     the other keys are frozen — and the pop/push formulation would pick
//     it again. The inner loop therefore retires an entire run of the root
//     core's accesses with zero heap operations, re-keying once when the
//     core crosses the horizon. Synchronization operations (barrier, lock,
//     unlock) and stream exhaustion reshape the heap, so they end the
//     batch and fall back to the shared slow-path helpers.
//
//   - Monomorphic dispatch. Run type-switches once on the configured
//     protocol and enters a loop specialized to its concrete type, so the
//     per-access Protocol.DataAccess interface call (and the nested
//     protocolCore.missPath dispatch) become direct calls. The L1-hit fast
//     path — tag probe via the core's MRU line hint, then the shared
//     protocol-neutral hit epilogue — is inlined into the loop body;
//     anything else falls into the protocol's full missPath transaction.
//
// The six monomorphic loops are intentionally identical source text
// modulo the protocol type; keep them in sync with each other and with
// runGeneric + dataAccess (protocol.go). Externally registered protocols
// and the reference core run the generic loop.

import (
	"fmt"

	"lacc/internal/mem"
)

// runEngine drains the run queue, dispatching to the engine matching the
// configured protocol.
func (s *Simulator) runEngine() error {
	if s.forceSharded {
		n := s.cfg.Shards
		if n < 1 {
			n = 1
		}
		if n > s.cfg.Cores {
			n = s.cfg.Cores
		}
		return s.runSharded(n)
	}
	if n := s.shardCount(); n > 1 {
		return s.runSharded(n)
	}
	if s.reference || s.forceGeneric {
		return s.runGeneric()
	}
	switch p := s.proto.(type) {
	case *adaptiveProtocol:
		return s.runAdaptive(p)
	case *mesiProtocol:
		return s.runMESI(p)
	case *dragonProtocol:
		return s.runDragon(p)
	case *dlsProtocol:
		return s.runDLS(p)
	case *neatProtocol:
		return s.runNeat(p)
	case *hybridProtocol:
		return s.runHybrid(p)
	default:
		return s.runGeneric()
	}
}

// runGeneric is the reference engine: the globally earliest core executes
// one operation as an atomic transaction, then is re-keyed at its advanced
// clock. The core stays at the heap root while it executes (nothing else
// touches the queue mid-transaction), so the requeue is a replaceTop — a
// single sift-down that degenerates to two comparisons in the common case
// of a core staying earliest across consecutive L1 hits — instead of a
// full pop+push cycle. Keys are unique ((time, id) with ids distinct), so
// the execution order is identical to the pop+push formulation.
func (s *Simulator) runGeneric() error {
	for len(s.runQ.q) > 0 {
		id := s.runQ.top()
		c := &s.cores[id]
		a, ok := c.next()
		if !ok {
			s.retireTop(c)
			continue
		}
		if a.Gap > 0 {
			c.now += mem.Cycle(a.Gap)
			c.bd.Compute += float64(a.Gap)
		}
		switch a.Kind {
		case mem.Read, mem.Write:
			s.instrFetch(c, a.Gap)
			s.proto.DataAccess(c, a.Kind, a.Addr)
			s.runQ.replaceTop(c.now, int32(id))
		default:
			if err := s.syncOp(c, a); err != nil {
				return err
			}
		}
	}
	return nil
}

// retireTop marks the heap-root core's stream exhausted and removes it,
// releasing a barrier its exit may complete.
func (s *Simulator) retireTop(c *coreState) {
	c.done = true
	s.runQ.popTop()
	s.maybeReleaseBarrier()
}

// syncSelfInvalidator is implemented by protocols that react to a core
// reaching a synchronization point (barrier arrival or lock acquisition)
// by shedding cached state — Neat's self-invalidation. The hook runs
// before the synchronization primitive, in both the sequential and the
// sharded engines, so the reaction is ordered at the core's arrival time.
type syncSelfInvalidator interface {
	syncSelfInvalidate(c *coreState)
}

// syncOp executes a non-data operation for the heap-root core. All of them
// may reshape the run queue (parking, granting or releasing cores), so the
// batched loops end their batch after calling it.
func (s *Simulator) syncOp(c *coreState, a mem.Access) error {
	if a.Kind == mem.Barrier || a.Kind == mem.Lock {
		if si, ok := s.proto.(syncSelfInvalidator); ok {
			si.syncSelfInvalidate(c)
		}
	}
	switch a.Kind {
	case mem.Barrier:
		s.runQ.popTop()
		s.barrierArrive(c, a.Addr)
	case mem.Lock:
		s.runQ.popTop() // lockAcquire re-queues the core when granted
		s.lockAcquire(c, uint64(a.Addr))
	case mem.Unlock:
		s.lockRelease(c, uint64(a.Addr))
		s.runQ.replaceTop(c.now, int32(c.id))
	default:
		return fmt.Errorf("sim: core %d emitted unknown op %v", c.id, a.Kind)
	}
	return nil
}

// runAdaptive is the monomorphic horizon-batched engine for the paper's
// locality-aware adaptive protocol. See the package comment above for the
// invariants; the body must stay in lock-step with runMESI and runDragon.
func (s *Simulator) runAdaptive(p *adaptiveProtocol) error {
	for len(s.runQ.q) > 0 {
		id := s.runQ.q[0].id
		c := &s.cores[id]
		hz := s.runQ.horizon()
		l1 := s.tiles[id].l1d
		for {
			var a mem.Access
			if c.bufIdx < len(c.buf) {
				a = c.buf[c.bufIdx]
				c.bufIdx++
			} else {
				var ok bool
				if a, ok = c.refill(); !ok {
					s.retireTop(c)
					break
				}
			}
			if a.Gap > 0 {
				c.now += mem.Cycle(a.Gap)
				c.bd.Compute += float64(a.Gap)
			}
			if !a.Kind.IsData() {
				if err := s.syncOp(c, a); err != nil {
					return err
				}
				break
			}
			s.instrFetch(c, a.Gap)
			la := mem.LineOf(a.Addr)
			line := c.lastL1D
			if !l1.Holds(line, la) {
				line = l1.Probe(la)
			}
			if line != nil && (a.Kind == mem.Read || line.State != lineS) {
				// Inlined l1DataHit (protocol.go): the epilogue is above the
				// compiler's inlining budget, and this is the single hottest
				// block of a simulation. Keep the two in lock-step.
				c.lastL1D = line
				c.l1d.Hits++
				line.Util++
				l1.Touch(line, c.now)
				if a.Kind == mem.Write {
					s.meter.L1DWrites++
					line.State = lineM
					line.Dirty = true
					line.Version = s.goldenWrite(la)
				} else {
					s.meter.L1DReads++
					if s.cfg.CheckValues {
						s.checkVersion("L1 read hit", la, line.Version)
					}
				}
				c.now += mem.Cycle(s.cfg.L1DLatency)
			} else {
				p.missPath(c, a.Kind, a.Addr, line != nil)
			}
			if c.now < hz.now || (c.now == hz.now && id < hz.id) {
				continue
			}
			s.runQ.replaceTop(c.now, id)
			break
		}
	}
	return nil
}

// runMESI is the monomorphic horizon-batched engine for the full-map MESI
// baseline; lock-step copy of runAdaptive.
func (s *Simulator) runMESI(p *mesiProtocol) error {
	for len(s.runQ.q) > 0 {
		id := s.runQ.q[0].id
		c := &s.cores[id]
		hz := s.runQ.horizon()
		l1 := s.tiles[id].l1d
		for {
			var a mem.Access
			if c.bufIdx < len(c.buf) {
				a = c.buf[c.bufIdx]
				c.bufIdx++
			} else {
				var ok bool
				if a, ok = c.refill(); !ok {
					s.retireTop(c)
					break
				}
			}
			if a.Gap > 0 {
				c.now += mem.Cycle(a.Gap)
				c.bd.Compute += float64(a.Gap)
			}
			if !a.Kind.IsData() {
				if err := s.syncOp(c, a); err != nil {
					return err
				}
				break
			}
			s.instrFetch(c, a.Gap)
			la := mem.LineOf(a.Addr)
			line := c.lastL1D
			if !l1.Holds(line, la) {
				line = l1.Probe(la)
			}
			if line != nil && (a.Kind == mem.Read || line.State != lineS) {
				// Inlined l1DataHit (protocol.go): the epilogue is above the
				// compiler's inlining budget, and this is the single hottest
				// block of a simulation. Keep the two in lock-step.
				c.lastL1D = line
				c.l1d.Hits++
				line.Util++
				l1.Touch(line, c.now)
				if a.Kind == mem.Write {
					s.meter.L1DWrites++
					line.State = lineM
					line.Dirty = true
					line.Version = s.goldenWrite(la)
				} else {
					s.meter.L1DReads++
					if s.cfg.CheckValues {
						s.checkVersion("L1 read hit", la, line.Version)
					}
				}
				c.now += mem.Cycle(s.cfg.L1DLatency)
			} else {
				p.missPath(c, a.Kind, a.Addr, line != nil)
			}
			if c.now < hz.now || (c.now == hz.now && id < hz.id) {
				continue
			}
			s.runQ.replaceTop(c.now, id)
			break
		}
	}
	return nil
}

// runDLS is the monomorphic horizon-batched engine for the directoryless
// shared-LLC baseline; lock-step copy of runAdaptive. The L1 hit block is
// dead under DLS (no data line is ever installed), but stays verbatim so
// the loops remain textually identical.
func (s *Simulator) runDLS(p *dlsProtocol) error {
	for len(s.runQ.q) > 0 {
		id := s.runQ.q[0].id
		c := &s.cores[id]
		hz := s.runQ.horizon()
		l1 := s.tiles[id].l1d
		for {
			var a mem.Access
			if c.bufIdx < len(c.buf) {
				a = c.buf[c.bufIdx]
				c.bufIdx++
			} else {
				var ok bool
				if a, ok = c.refill(); !ok {
					s.retireTop(c)
					break
				}
			}
			if a.Gap > 0 {
				c.now += mem.Cycle(a.Gap)
				c.bd.Compute += float64(a.Gap)
			}
			if !a.Kind.IsData() {
				if err := s.syncOp(c, a); err != nil {
					return err
				}
				break
			}
			s.instrFetch(c, a.Gap)
			la := mem.LineOf(a.Addr)
			line := c.lastL1D
			if !l1.Holds(line, la) {
				line = l1.Probe(la)
			}
			if line != nil && (a.Kind == mem.Read || line.State != lineS) {
				// Inlined l1DataHit (protocol.go): the epilogue is above the
				// compiler's inlining budget, and this is the single hottest
				// block of a simulation. Keep the two in lock-step.
				c.lastL1D = line
				c.l1d.Hits++
				line.Util++
				l1.Touch(line, c.now)
				if a.Kind == mem.Write {
					s.meter.L1DWrites++
					line.State = lineM
					line.Dirty = true
					line.Version = s.goldenWrite(la)
				} else {
					s.meter.L1DReads++
					if s.cfg.CheckValues {
						s.checkVersion("L1 read hit", la, line.Version)
					}
				}
				c.now += mem.Cycle(s.cfg.L1DLatency)
			} else {
				p.missPath(c, a.Kind, a.Addr, line != nil)
			}
			if c.now < hz.now || (c.now == hz.now && id < hz.id) {
				continue
			}
			s.runQ.replaceTop(c.now, id)
			break
		}
	}
	return nil
}

// runNeat is the monomorphic horizon-batched engine for the Neat bounded
// self-invalidation baseline; lock-step copy of runAdaptive. The
// self-invalidation hook lives in syncOp, which already ends every batch.
func (s *Simulator) runNeat(p *neatProtocol) error {
	for len(s.runQ.q) > 0 {
		id := s.runQ.q[0].id
		c := &s.cores[id]
		hz := s.runQ.horizon()
		l1 := s.tiles[id].l1d
		for {
			var a mem.Access
			if c.bufIdx < len(c.buf) {
				a = c.buf[c.bufIdx]
				c.bufIdx++
			} else {
				var ok bool
				if a, ok = c.refill(); !ok {
					s.retireTop(c)
					break
				}
			}
			if a.Gap > 0 {
				c.now += mem.Cycle(a.Gap)
				c.bd.Compute += float64(a.Gap)
			}
			if !a.Kind.IsData() {
				if err := s.syncOp(c, a); err != nil {
					return err
				}
				break
			}
			s.instrFetch(c, a.Gap)
			la := mem.LineOf(a.Addr)
			line := c.lastL1D
			if !l1.Holds(line, la) {
				line = l1.Probe(la)
			}
			if line != nil && (a.Kind == mem.Read || line.State != lineS) {
				// Inlined l1DataHit (protocol.go): the epilogue is above the
				// compiler's inlining budget, and this is the single hottest
				// block of a simulation. Keep the two in lock-step.
				c.lastL1D = line
				c.l1d.Hits++
				line.Util++
				l1.Touch(line, c.now)
				if a.Kind == mem.Write {
					s.meter.L1DWrites++
					line.State = lineM
					line.Dirty = true
					line.Version = s.goldenWrite(la)
				} else {
					s.meter.L1DReads++
					if s.cfg.CheckValues {
						s.checkVersion("L1 read hit", la, line.Version)
					}
				}
				c.now += mem.Cycle(s.cfg.L1DLatency)
			} else {
				p.missPath(c, a.Kind, a.Addr, line != nil)
			}
			if c.now < hz.now || (c.now == hz.now && id < hz.id) {
				continue
			}
			s.runQ.replaceTop(c.now, id)
			break
		}
	}
	return nil
}

// runHybrid is the monomorphic horizon-batched engine for the MESI/Dragon
// switching baseline; lock-step copy of runAdaptive.
func (s *Simulator) runHybrid(p *hybridProtocol) error {
	for len(s.runQ.q) > 0 {
		id := s.runQ.q[0].id
		c := &s.cores[id]
		hz := s.runQ.horizon()
		l1 := s.tiles[id].l1d
		for {
			var a mem.Access
			if c.bufIdx < len(c.buf) {
				a = c.buf[c.bufIdx]
				c.bufIdx++
			} else {
				var ok bool
				if a, ok = c.refill(); !ok {
					s.retireTop(c)
					break
				}
			}
			if a.Gap > 0 {
				c.now += mem.Cycle(a.Gap)
				c.bd.Compute += float64(a.Gap)
			}
			if !a.Kind.IsData() {
				if err := s.syncOp(c, a); err != nil {
					return err
				}
				break
			}
			s.instrFetch(c, a.Gap)
			la := mem.LineOf(a.Addr)
			line := c.lastL1D
			if !l1.Holds(line, la) {
				line = l1.Probe(la)
			}
			if line != nil && (a.Kind == mem.Read || line.State != lineS) {
				// Inlined l1DataHit (protocol.go): the epilogue is above the
				// compiler's inlining budget, and this is the single hottest
				// block of a simulation. Keep the two in lock-step.
				c.lastL1D = line
				c.l1d.Hits++
				line.Util++
				l1.Touch(line, c.now)
				if a.Kind == mem.Write {
					s.meter.L1DWrites++
					line.State = lineM
					line.Dirty = true
					line.Version = s.goldenWrite(la)
				} else {
					s.meter.L1DReads++
					if s.cfg.CheckValues {
						s.checkVersion("L1 read hit", la, line.Version)
					}
				}
				c.now += mem.Cycle(s.cfg.L1DLatency)
			} else {
				p.missPath(c, a.Kind, a.Addr, line != nil)
			}
			if c.now < hz.now || (c.now == hz.now && id < hz.id) {
				continue
			}
			s.runQ.replaceTop(c.now, id)
			break
		}
	}
	return nil
}

// runDragon is the monomorphic horizon-batched engine for the Dragon
// write-update baseline; lock-step copy of runAdaptive.
func (s *Simulator) runDragon(p *dragonProtocol) error {
	for len(s.runQ.q) > 0 {
		id := s.runQ.q[0].id
		c := &s.cores[id]
		hz := s.runQ.horizon()
		l1 := s.tiles[id].l1d
		for {
			var a mem.Access
			if c.bufIdx < len(c.buf) {
				a = c.buf[c.bufIdx]
				c.bufIdx++
			} else {
				var ok bool
				if a, ok = c.refill(); !ok {
					s.retireTop(c)
					break
				}
			}
			if a.Gap > 0 {
				c.now += mem.Cycle(a.Gap)
				c.bd.Compute += float64(a.Gap)
			}
			if !a.Kind.IsData() {
				if err := s.syncOp(c, a); err != nil {
					return err
				}
				break
			}
			s.instrFetch(c, a.Gap)
			la := mem.LineOf(a.Addr)
			line := c.lastL1D
			if !l1.Holds(line, la) {
				line = l1.Probe(la)
			}
			if line != nil && (a.Kind == mem.Read || line.State != lineS) {
				// Inlined l1DataHit (protocol.go): the epilogue is above the
				// compiler's inlining budget, and this is the single hottest
				// block of a simulation. Keep the two in lock-step.
				c.lastL1D = line
				c.l1d.Hits++
				line.Util++
				l1.Touch(line, c.now)
				if a.Kind == mem.Write {
					s.meter.L1DWrites++
					line.State = lineM
					line.Dirty = true
					line.Version = s.goldenWrite(la)
				} else {
					s.meter.L1DReads++
					if s.cfg.CheckValues {
						s.checkVersion("L1 read hit", la, line.Version)
					}
				}
				c.now += mem.Cycle(s.cfg.L1DLatency)
			} else {
				p.missPath(c, a.Kind, a.Addr, line != nil)
			}
			if c.now < hz.now || (c.now == hz.now && id < hz.id) {
				continue
			}
			s.runQ.replaceTop(c.now, id)
			break
		}
	}
	return nil
}

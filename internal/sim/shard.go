package sim

// Shard-parallel execution engine (Config.Shards > 1): the mesh is
// partitioned into contiguous tile groups ("shards"), each drained by its
// own worker goroutine against a private run queue, with cross-shard
// scheduling traffic (barrier releases and lock grants) flowing through
// bounded per-shard FIFOs and global time kept coherent by epoch barriers
// derived from the sequential engine's horizon machinery.
//
// Execution model. Each worker owns the cores of its shard and executes
// them in local (time, id) order, exactly like the generic engine, but only
// while the earliest core stays below the global epoch horizon `epochEnd`.
// A worker whose shard has drained up to the horizon parks; when all
// workers are parked the last one advances the epoch to
// min(all runnable keys) + epochLen and wakes everyone. Synchronization
// operations (barrier, lock, unlock) are executed on the primary simulator
// under the scheduler lock, and the cores they make runnable are routed to
// the owning shard's inbox FIFO; a worker drains its inbox into its run
// queue before every scheduling decision. The FIFOs are bounded by
// construction: a core is enqueued at most once (grants only target parked
// cores, and a granted core cannot reach another sync point before its
// worker drains it), so capacity = shard size can never overflow.
//
// Shared-state discipline. Protocol transactions remain synchronous — a
// miss walks the directory at the line's home tile under that tile's
// homeMu, touching remote L1s under their per-tile l1Mu (a strict leaf:
// nothing is acquired while an l1Mu is held, and at most one homeMu is held
// at a time, so the homeMu -> l1Mu order is cycle-free). The R-NUCA page
// table is guarded by nucaMu, the classifier pool by poolMu, and all
// scheduling state (inboxes, epoch, sync primitives) by mu. The mesh link
// and DRAM queue arrays are shared between workers through atomic
// read-max-write updates (network.Mesh.Clone, dram.Model.Clone) so every
// worker observes every other's contention; traffic counters, energy
// meters and histograms are worker-private and merged after the run.
//
// Exactness. With a single worker the engine is bit-exact with the generic
// engine: the inbox round trip preserves the run queue's key set, so the
// (time, id) pop order is identical, and the deferred L1-eviction drain
// (see l1EvictNotify) runs before the next operation of the same core with
// no other core interleaved. With Shards > 1 execution is explicitly
// RELAXED: operations whose local clocks fall in the same epoch may
// interleave in wall-clock order rather than simulated-time order, so
// timing-dependent results (completion cycles, link occupancy, LRU-driven
// eviction choices) can diverge run to run within an epoch-bounded window.
// Program-determined quantities — every core's data-access count, hit or
// miss resolution of the instruction stream once warm — remain exact; the
// bounded-divergence test pins this. Relaxed mode is therefore gated: it is
// never used when CheckValues or VictimReplication is on (shardCount falls
// back to the sequential engine), and golden-table rows are always produced
// sequentially.
//
// The relaxed interleavings admit one genuinely new protocol situation: a
// core's L1 insert evicts a victim whose home-side deregistration is
// deferred, so a concurrent transaction at that home can observe a
// registered sharer whose copy is already gone. The protocol paths that
// probe remote copies tolerate exactly this (gated by Simulator.relaxed):
// an absent copy acknowledges with a clean single-flit ack and the deferred
// eviction later deregisters it guarded by a Contains check.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lacc/internal/cache"
	"lacc/internal/energy"
	"lacc/internal/mem"
	"lacc/internal/nuca"
	"lacc/internal/stats"
)

// defaultEpochCycles is the epoch length when Config.EpochCycles is 0.
const defaultEpochCycles = 8192

// paddedMutex spaces the per-tile locks across cache lines so neighboring
// tiles' locks do not false-share.
type paddedMutex struct {
	sync.Mutex
	_ [40]byte
}

// pendingEvict is an L1 eviction whose home-side notification is deferred
// until the current operation's transaction releases its home lock.
type pendingEvict struct {
	victim cache.Line
	t      mem.Cycle
}

// shardFIFO is a bounded ring of runnable-core keys: one producer side
// (any worker executing a sync op under the scheduler lock) and one
// consumer (the owning worker draining into its run queue). Capacity is
// the shard's core count; see the boundedness argument in the package
// comment. Overflow panics — it would mean a core was enqueued twice.
type shardFIFO struct {
	buf  []queuedCore
	head int
	size int
}

func (f *shardFIFO) init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	f.buf = make([]queuedCore, capacity)
	f.head, f.size = 0, 0
}

func (f *shardFIFO) push(qc queuedCore) {
	if f.size == len(f.buf) {
		panic("sim: shard inbox overflow")
	}
	f.buf[(f.head+f.size)%len(f.buf)] = qc
	f.size++
}

func (f *shardFIFO) pop() (queuedCore, bool) {
	if f.size == 0 {
		return queuedCore{}, false
	}
	qc := f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.size--
	return qc, true
}

// minKey returns the smallest (time, id) key currently buffered.
func (f *shardFIFO) minKey() (queuedCore, bool) {
	if f.size == 0 {
		return queuedCore{}, false
	}
	min := f.buf[f.head]
	for i := 1; i < f.size; i++ {
		if k := f.buf[(f.head+i)%len(f.buf)]; k.less(min) {
			min = k
		}
	}
	return min, true
}

// shardRuntime is the shared state of one sharded run. It exists only for
// the duration of runSharded; the primary simulator and every worker clone
// point at it through Simulator.sh.
type shardRuntime struct {
	prim  *Simulator
	n     int // worker count
	cores int

	// Per-tile protocol locks: homeMu serializes directory + home-L2-slice
	// transactions at a tile, l1Mu guards a tile's L1-D array and its
	// core's miss-history table (both can grow or be mutated by remote
	// invalidations). l1Mu is a strict leaf.
	homeMu []paddedMutex
	l1Mu   []paddedMutex

	// nucaMu guards the R-NUCA page table; poolMu the classifier pool.
	nucaMu sync.Mutex
	poolMu sync.Mutex

	// mu guards everything below: the inboxes, the epoch state and the
	// synchronization primitives (barrier and lock state on prim).
	mu       sync.Mutex
	cond     *sync.Cond
	inbox    []shardFIFO
	parked   int
	gen      uint64
	epochEnd mem.Cycle
	finished bool
	err      error

	workers  []*Simulator
	epochLen mem.Cycle
	relaxed  bool

	// aborted lets workers mid-epoch notice a sibling's failure without
	// taking mu on the hot path.
	aborted atomic.Bool
}

// shardOf maps a core id to its owning shard (contiguous groups).
func (sh *shardRuntime) shardOf(id int) int { return id * sh.n / sh.cores }

// fail records the first error and wakes every worker. Must not be called
// with mu held.
func (sh *shardRuntime) fail(err error) {
	sh.aborted.Store(true)
	sh.mu.Lock()
	if sh.err == nil {
		sh.err = err
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// advanceLocked moves the epoch horizon to min(all runnable keys) +
// epochLen, or marks the run finished when no core is runnable anywhere.
// Caller holds mu with every worker parked; the advance releases the whole
// rendezvous, so parked resets to zero here — waiters must not decrement
// it again on a generation change (see runWorker).
func (sh *shardRuntime) advanceLocked() {
	sh.parked = 0
	min := horizonSentinel
	for i, w := range sh.workers {
		if len(w.runQ.q) > 0 && w.runQ.q[0].less(min) {
			min = w.runQ.q[0]
		}
		if k, ok := sh.inbox[i].minKey(); ok && k.less(min) {
			min = k
		}
	}
	if min == horizonSentinel {
		sh.finished = true
		sh.cond.Broadcast()
		return
	}
	sh.epochEnd = min.now + sh.epochLen
	sh.gen++
	sh.cond.Broadcast()
}

// runWorker is one shard's scheduling loop: drain the inbox, run the shard
// up to the epoch horizon, park, and rendezvous to advance the epoch. The
// locked sections are deliberately free of code that can panic; the
// protocol work that can (runEpoch) runs unlocked, so the recovery path
// can always take mu.
func (sh *shardRuntime) runWorker(w *Simulator) {
	defer func() {
		if r := recover(); r != nil {
			sh.fail(fmt.Errorf("sim: shard %d: %v", w.shardIdx, r))
		}
	}()
	sh.mu.Lock()
	for {
		w.drainInbox()
		if sh.err != nil || sh.finished {
			sh.mu.Unlock()
			return
		}
		if len(w.runQ.q) > 0 && w.runQ.q[0].now < sh.epochEnd {
			end := sh.epochEnd
			sh.mu.Unlock()
			err := w.runEpoch(end)
			sh.mu.Lock()
			if err != nil && sh.err == nil {
				sh.err = err
				sh.cond.Broadcast()
			}
			continue
		}
		gen := sh.gen
		sh.parked++
		if sh.parked == sh.n {
			// Last to park: advance the horizon (or finish). advanceLocked
			// resets parked for the whole rendezvous — the still-waking
			// waiters must not be double-counted when this worker parks
			// again before they re-acquire mu.
			sh.advanceLocked()
			continue
		}
		for sh.err == nil && !sh.finished && gen == sh.gen && w.inboxEmpty() {
			sh.cond.Wait()
		}
		if gen == sh.gen {
			// Left the rendezvous without an epoch advance (inbox grant,
			// failure or finish): withdraw this worker's parked count. On a
			// generation change the advancer already reset it.
			sh.parked--
		}
	}
}

// drainInbox moves granted cores from the shard's inbox into its run
// queue. Caller holds sh.mu.
func (w *Simulator) drainInbox() {
	box := &w.sh.inbox[w.shardIdx]
	for {
		qc, ok := box.pop()
		if !ok {
			return
		}
		w.runQ.push(qc.now, qc.id)
	}
}

// inboxEmpty reports whether the worker's inbox is empty. Caller holds
// sh.mu.
func (w *Simulator) inboxEmpty() bool { return w.sh.inbox[w.shardIdx].size == 0 }

// runEpoch executes the worker's shard in local (time, id) order while the
// earliest core stays below the epoch horizon. It mirrors runGeneric
// operation for operation; synchronization operations and retirements can
// grant cores into the worker's own inbox, so the loop returns to the
// scheduling loop after each to keep the run queue's key set complete —
// with one worker this makes the pop order bit-identical to the generic
// engine.
func (w *Simulator) runEpoch(end mem.Cycle) error {
	sh := w.sh
	for len(w.runQ.q) > 0 {
		if w.runQ.q[0].now >= end || sh.aborted.Load() {
			return nil
		}
		id := w.runQ.top()
		c := &w.cores[id]
		a, ok := c.next()
		if !ok {
			w.shardRetire(c)
			return nil
		}
		if a.Gap > 0 {
			c.now += mem.Cycle(a.Gap)
			c.bd.Compute += float64(a.Gap)
		}
		switch a.Kind {
		case mem.Read, mem.Write:
			w.instrFetch(c, a.Gap)
			w.proto.DataAccess(c, a.Kind, a.Addr)
			w.drainPendingEvicts(c)
			w.runQ.replaceTop(c.now, int32(id))
		default:
			if err := w.shardSyncOp(c, a); err != nil {
				return err
			}
			return nil
		}
	}
	return nil
}

// withSync runs fn on the primary simulator under the scheduler lock; the
// deferred unlock keeps a panicking sync primitive from wedging siblings.
func (w *Simulator) withSync(fn func(prim *Simulator)) {
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.prim)
}

// shardRetire retires the shard's earliest core: its exit can complete a
// barrier, so the release runs on the primary under the scheduler lock.
func (w *Simulator) shardRetire(c *coreState) {
	w.runQ.popTop()
	w.withSync(func(prim *Simulator) {
		c.done = true
		prim.maybeReleaseBarrier()
	})
}

// shardSyncOp executes a non-data operation. The primitives mutate shared
// barrier/lock state and re-queue granted cores through enqueueRunnable,
// which routes them to the owning shard's inbox.
func (w *Simulator) shardSyncOp(c *coreState, a mem.Access) error {
	if a.Kind == mem.Barrier || a.Kind == mem.Lock {
		// Self-invalidating protocols shed state before the primitive runs
		// (see syncSelfInvalidator). The hook takes per-tile protocol locks,
		// so it must run before withSync acquires the scheduler lock.
		if si, ok := w.proto.(syncSelfInvalidator); ok {
			si.syncSelfInvalidate(c)
		}
	}
	switch a.Kind {
	case mem.Barrier:
		w.runQ.popTop()
		w.withSync(func(prim *Simulator) { prim.barrierArrive(c, a.Addr) })
	case mem.Lock:
		w.runQ.popTop() // lockAcquire re-queues the core when granted
		w.withSync(func(prim *Simulator) { prim.lockAcquire(c, uint64(a.Addr)) })
	case mem.Unlock:
		w.withSync(func(prim *Simulator) { prim.lockRelease(c, uint64(a.Addr)) })
		w.runQ.replaceTop(c.now, int32(c.id))
	default:
		return fmt.Errorf("sim: core %d emitted unknown op %v", c.id, a.Kind)
	}
	return nil
}

// shardCount returns the worker count the configuration may run with: the
// relaxed parallel engine is never used for the reference or
// forced-generic cores, under the functional checker, or with victim
// replication (whose replica paths are deliberately lock-free).
func (s *Simulator) shardCount() int {
	n := s.cfg.Shards
	if n <= 1 || s.reference || s.forceGeneric || s.cfg.CheckValues || s.cfg.VictimReplication {
		return 1
	}
	if n > s.cfg.Cores {
		n = s.cfg.Cores
	}
	return n
}

// runSharded executes the run queue with n shard workers. n == 1 is the
// deterministic degenerate case used by the differential tests.
func (s *Simulator) runSharded(n int) error {
	epochLen := mem.Cycle(s.cfg.EpochCycles)
	if epochLen == 0 {
		epochLen = defaultEpochCycles
	}
	sh := &shardRuntime{
		prim:     s,
		n:        n,
		cores:    s.cfg.Cores,
		homeMu:   make([]paddedMutex, s.cfg.Cores),
		l1Mu:     make([]paddedMutex, s.cfg.Cores),
		inbox:    make([]shardFIFO, n),
		workers:  make([]*Simulator, n),
		epochLen: epochLen,
		relaxed:  n > 1,
	}
	sh.cond = sync.NewCond(&sh.mu)

	// The primary carries the runtime pointer from here on: clones inherit
	// it, and the sync primitives executing on the primary route grants
	// through it.
	s.sh = sh
	defer func() { s.sh = nil }()

	counts := make([]int, n)
	for id := 0; id < s.cfg.Cores; id++ {
		counts[sh.shardOf(id)]++
	}
	for i := 0; i < n; i++ {
		sh.inbox[i].init(counts[i])
		sh.workers[i] = s.cloneForWorker(i)
	}
	for _, qc := range s.runQ.q {
		w := sh.workers[sh.shardOf(int(qc.id))]
		w.runQ.push(qc.now, qc.id)
	}
	s.runQ.q = s.runQ.q[:0]

	var wg sync.WaitGroup
	for _, w := range sh.workers {
		wg.Add(1)
		go func(w *Simulator) {
			defer wg.Done()
			sh.runWorker(w)
		}(w)
	}
	wg.Wait()

	for _, w := range sh.workers {
		s.mergeWorker(w)
	}
	return sh.err
}

// cloneForWorker builds one worker's view of the machine: a shallow copy
// sharing the tiles, cores, page table, locks and classifier pool, with
// private traffic counters, scratch buffers and run queue, and
// concurrency-safe handles onto the shared mesh links and DRAM queues.
func (s *Simulator) cloneForWorker(idx int) *Simulator {
	w := &Simulator{}
	*w = *s
	w.shardIdx = idx
	w.meter = energy.Meter{}
	w.invalHist = stats.UtilizationHistogram{}
	w.evictHist = stats.UtilizationHistogram{}
	w.promotions, w.demotions = 0, 0
	w.wordReads, w.wordWrites = 0, 0
	w.invalidations, w.bcastInvals = 0, 0
	w.selfInvals = 0
	w.replicaHits, w.replicaInserts, w.replicaEvictions = 0, 0, 0
	w.idScratch = nil
	w.bcastInval, w.bcastEvict = nil, nil
	w.pendEvict = nil
	w.runQ = coreQueue{}
	w.mesh = s.mesh.Clone()
	w.dram = s.dram.Clone()
	// The protocol is rebuilt bound to the worker so its counter writes hit
	// worker-private state; the adaptive factory sees the shared pool
	// pointer and keeps it.
	w.proto = newProtocol(w)
	return w
}

// mergeWorker folds a worker's private counters back into the primary.
func (s *Simulator) mergeWorker(w *Simulator) {
	s.meter.Add(w.meter)
	s.invalHist.Add(w.invalHist)
	s.evictHist.Add(w.evictHist)
	s.promotions += w.promotions
	s.demotions += w.demotions
	s.wordReads += w.wordReads
	s.wordWrites += w.wordWrites
	s.invalidations += w.invalidations
	s.bcastInvals += w.bcastInvals
	s.selfInvals += w.selfInvals
	s.replicaHits += w.replicaHits
	s.replicaInserts += w.replicaInserts
	s.replicaEvictions += w.replicaEvictions
	s.mesh.AddCounters(w.mesh)
	s.dram.AddCounters(w.dram)
	if wd, ok := w.proto.(*dragonProtocol); ok {
		if sd, ok := s.proto.(*dragonProtocol); ok {
			sd.updates += wd.updates
		}
	}
	if wh, ok := w.proto.(*hybridProtocol); ok {
		if sht, ok := s.proto.(*hybridProtocol); ok {
			sht.updates += wh.updates
		}
	}
}

// enqueueRunnable re-queues a core the synchronization primitives made
// runnable: directly onto the run queue in the sequential engines, or into
// the owning shard's inbox (waking its worker) in the sharded engine.
// Sharded callers hold sh.mu.
func (s *Simulator) enqueueRunnable(now mem.Cycle, id int32) {
	if s.sh == nil {
		s.runQ.push(now, id)
		return
	}
	s.sh.inbox[s.sh.shardOf(int(id))].push(queuedCore{now: now, id: id})
	s.sh.cond.Broadcast()
}

// Lock gates. All are no-ops in the sequential engines (sh == nil), so the
// protocol code is annotated with its locking discipline at zero cost to
// the default path.

func (s *Simulator) lockHome(home int) {
	if s.sh != nil {
		s.sh.homeMu[home].Lock()
	}
}

func (s *Simulator) unlockHome(home int) {
	if s.sh != nil {
		s.sh.homeMu[home].Unlock()
	}
}

func (s *Simulator) lockL1(id int) {
	if s.sh != nil {
		s.sh.l1Mu[id].Lock()
	}
}

func (s *Simulator) unlockL1(id int) {
	if s.sh != nil {
		s.sh.l1Mu[id].Unlock()
	}
}

// relaxed reports whether the tolerant multi-worker protocol paths are
// active. False for the sequential engines and the single-worker sharded
// engine, whose execution is bit-exact and must keep the strict panics.
func (s *Simulator) relaxed() bool { return s.sh != nil && s.sh.relaxed }

// setHistory records a miss-history transition for core id under its
// history lock.
func (s *Simulator) setHistory(id int, la mem.Addr, v uint8) {
	s.lockL1(id)
	s.cores[id].history.set(la, v)
	s.unlockL1(id)
}

// dataHome is the locked R-NUCA lookup: the placement's reclassification
// scratch is shared, so it is copied into worker-private storage before
// the page-table lock is released.
func (s *Simulator) dataHome(addr mem.Addr, requester int) (int, *nuca.Reclassification) {
	if s.sh == nil {
		return s.nuca.DataHome(addr, requester)
	}
	s.sh.nucaMu.Lock()
	home, recl := s.nuca.DataHome(addr, requester)
	if recl != nil {
		s.reclScratch = *recl
		recl = &s.reclScratch
	}
	s.sh.nucaMu.Unlock()
	return home, recl
}

// l1EvictNotify dispatches a displaced L1 victim's home-side notification.
// The sequential engines run it synchronously; the sharded engine defers
// it to drainPendingEvicts, because the insert site holds the granting
// home's lock and the victim's home may be any other tile (taking a second
// homeMu would admit lock-order cycles). Deferral is behavior-preserving
// for the single-worker engine: the reply time handed to the victim
// notification is computed before the insert, and nothing between the
// insert and the drain touches the victim's home-side state.
func (s *Simulator) l1EvictNotify(p Protocol, c *coreState, victim cache.Line, t mem.Cycle) {
	if s.sh == nil {
		p.L1Evict(c, victim, t)
		return
	}
	s.pendEvict = append(s.pendEvict, pendingEvict{victim: victim, t: t})
}

// drainPendingEvicts delivers deferred eviction notifications, each under
// its victim's home lock. L1Evict implementations must not take home locks
// internally — the drain provides the one they need.
func (s *Simulator) drainPendingEvicts(c *coreState) {
	if len(s.pendEvict) == 0 {
		return
	}
	for i := 0; i < len(s.pendEvict); i++ {
		pe := s.pendEvict[i]
		home := int(pe.victim.Home)
		s.lockHome(home)
		s.proto.L1Evict(c, pe.victim, pe.t)
		s.unlockHome(home)
	}
	s.pendEvict = s.pendEvict[:0]
}

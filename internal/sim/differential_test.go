package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"lacc/internal/coherence"
	"lacc/internal/mem"
	"lacc/internal/trace"
)

// The differential property test: randomized access programs — reads,
// writes, compute gaps, locks and barriers over a mix of shared and
// per-core pages — are replayed through the flat fast core (New) and the
// map-backed reference core (newReference). The two storage layouts must be
// behaviorally indistinguishable: every Result field, the golden and DRAM
// version stores, and the final directory state must match exactly, and
// both must pass the structural audit (which runs inside Run when
// CheckValues is set). The machine is shrunk until every protocol path is
// exercised: tiny caches force L1/L2 evictions and back-invalidations,
// ACKwise-2 overflows into broadcasts, cross-core touches trigger R-NUCA
// page moves, and the victim-replication variant stresses replica
// bookkeeping.

// diffConfig is the small machine shared by the differential runs.
func diffConfig() Config {
	cfg := Default()
	cfg.Cores = 4
	cfg.MeshWidth = 2
	cfg.MemControllers = 2
	cfg.L1ISizeKB, cfg.L1IWays = 1, 2
	cfg.L1DSizeKB, cfg.L1DWays = 1, 2
	cfg.L2SizeKB, cfg.L2Ways = 4, 4
	cfg.AckwisePointers = 2
	cfg.ClassifierK = 2
	cfg.CodeLines = 12
	cfg.CheckValues = true
	cfg.TrackUtilization = true
	return cfg
}

// buildRandomProgram emits one access slice per core: rounds of randomized
// reads/writes (with gaps and occasional well-nested lock/unlock critical
// sections) separated by global barriers every core participates in.
func buildRandomProgram(rng *rand.Rand, cores int) [][]mem.Access {
	const (
		rounds      = 6
		opsPerRound = 150
		sharedPages = 3
	)
	dataBase := mem.Addr(1) << 22
	pageAddr := func(page int) mem.Addr {
		return dataBase + mem.Addr(page)*mem.PageBytes
	}
	randWord := func(page int) mem.Addr {
		return pageAddr(page) + mem.Addr(rng.Intn(mem.PageBytes/mem.WordBytes))*mem.WordBytes
	}
	progs := make([][]mem.Access, cores)
	for r := 0; r < rounds; r++ {
		for c := 0; c < cores; c++ {
			n := opsPerRound/2 + rng.Intn(opsPerRound)
			for i := 0; i < n; i++ {
				// 70% shared pool, else the core's own page (first-touch
				// private, occasionally poached below to force page moves).
				page := rng.Intn(sharedPages)
				if rng.Intn(10) >= 7 {
					page = sharedPages + c
				}
				if rng.Intn(50) == 0 {
					page = sharedPages + rng.Intn(cores) // poach a private page
				}
				kind := mem.Read
				if rng.Intn(5) < 2 {
					kind = mem.Write
				}
				a := mem.Access{Kind: kind, Addr: randWord(page), Gap: uint32(rng.Intn(5))}
				if rng.Intn(20) == 0 {
					// Critical section: lock, two accesses, unlock.
					id := uint64(1 + rng.Intn(2))
					progs[c] = append(progs[c],
						mem.Access{Kind: mem.Lock, Addr: mem.Addr(id)},
						a,
						mem.Access{Kind: kind, Addr: randWord(page)},
						mem.Access{Kind: mem.Unlock, Addr: mem.Addr(id)})
					continue
				}
				progs[c] = append(progs[c], a)
			}
			progs[c] = append(progs[c], mem.Access{Kind: mem.Barrier, Addr: mem.Addr(9000 + r)})
		}
	}
	return progs
}

// runProgram executes prog on a fresh simulator of the requested layout.
func runProgram(t *testing.T, cfg Config, reference bool, prog [][]mem.Access) (*Simulator, *Result) {
	t.Helper()
	var s *Simulator
	var err error
	if reference {
		s, err = newReference(cfg)
	} else {
		s, err = New(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]trace.Stream, len(prog))
	for i := range prog {
		streams[i] = trace.FromSlice(prog[i])
	}
	res, err := s.Run(streams)
	if err != nil {
		t.Fatalf("reference=%v: %v", reference, err)
	}
	return s, res
}

// dirSnap is one directory entry's observable state.
type dirSnap struct {
	Tile  int
	LA    mem.Addr
	State coherence.State
	Owner int16
	Busy  mem.Cycle
	Count int
	Over  bool
	IDs   string // exact identity-list order: iteration order is behavior
}

func dirSnapshot(s *Simulator) []dirSnap {
	var out []dirSnap
	for i := range s.tiles {
		tile := i
		s.tiles[i].dir.forEach(func(la mem.Addr, e *dirEntry) {
			out = append(out, dirSnap{
				Tile:  tile,
				LA:    la,
				State: e.state,
				Owner: e.owner,
				Busy:  e.busyUntil,
				Count: e.sharers.Count(),
				Over:  e.sharers.Overflowed(),
				IDs:   fmt.Sprint(e.sharers.Identified()),
			})
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Tile != out[b].Tile {
			return out[a].Tile < out[b].Tile
		}
		return out[a].LA < out[b].LA
	})
	return out
}

func verSnapshot(v *verStore) map[mem.Addr]uint64 {
	out := map[mem.Addr]uint64{}
	v.forEach(func(la mem.Addr, val uint64) { out[la] = val })
	return out
}

func TestDifferentialFastVsReference(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"adaptive-ackwise2-limited2", func(c *Config) {}},
		{"adaptive-fullmap-complete", func(c *Config) {
			c.AckwisePointers = c.Cores
			c.ClassifierK = 0
		}},
		{"adaptive-timestamp", func(c *Config) { c.Protocol.UseTimestamp = true }},
		{"adaptive-victim-replication", func(c *Config) { c.VictimReplication = true }},
		{"mesi", func(c *Config) { c.ProtocolKind = ProtocolMESI }},
		{"dragon", func(c *Config) { c.ProtocolKind = ProtocolDragon }},
		{"dls", func(c *Config) { c.ProtocolKind = ProtocolDLS }},
		{"neat", func(c *Config) { c.ProtocolKind = ProtocolNeat }},
		{"hybrid", func(c *Config) { c.ProtocolKind = ProtocolHybrid }},
	}
	for _, v := range variants {
		for seed := int64(1); seed <= 3; seed++ {
			v, seed := v, seed
			t.Run(fmt.Sprintf("%s/seed%d", v.name, seed), func(t *testing.T) {
				t.Parallel()
				cfg := diffConfig()
				v.mut(&cfg)
				prog := buildRandomProgram(rand.New(rand.NewSource(seed)), cfg.Cores)

				fastSim, fastRes := runProgram(t, cfg, false, prog)
				refSim, refRes := runProgram(t, cfg, true, prog)

				if !reflect.DeepEqual(fastRes, refRes) {
					t.Errorf("results diverged:\nfast: %+v\nref:  %+v", fastRes, refRes)
				}
				if got, want := verSnapshot(&fastSim.golden), verSnapshot(&refSim.golden); !reflect.DeepEqual(got, want) {
					t.Errorf("golden store diverged: fast %d lines, ref %d lines", len(got), len(want))
				}
				if got, want := verSnapshot(&fastSim.dramVer), verSnapshot(&refSim.dramVer); !reflect.DeepEqual(got, want) {
					t.Errorf("DRAM version store diverged: fast %d lines, ref %d lines", len(got), len(want))
				}
				fastDir, refDir := dirSnapshot(fastSim), dirSnapshot(refSim)
				if !reflect.DeepEqual(fastDir, refDir) {
					n := len(fastDir)
					if len(refDir) < n {
						n = len(refDir)
					}
					for i := 0; i < n; i++ {
						if fastDir[i] != refDir[i] {
							t.Errorf("directory diverged at entry %d:\nfast: %+v\nref:  %+v",
								i, fastDir[i], refDir[i])
							break
						}
					}
					if len(fastDir) != len(refDir) {
						t.Errorf("directory sizes diverged: fast %d, ref %d", len(fastDir), len(refDir))
					}
				}
				// Both layouts already passed the in-run audit; re-run it on
				// the final states to pin the invariants explicitly.
				if err := fastSim.Audit(); err != nil {
					t.Errorf("fast core failed audit: %v", err)
				}
				if err := refSim.Audit(); err != nil {
					t.Errorf("reference core failed audit: %v", err)
				}
			})
		}
	}
}

// compareStates asserts two simulators that ran the same program are
// observably identical: every Result field, both version stores and the
// full directory state.
func compareStates(t *testing.T, label string, aSim *Simulator, aRes *Result, bSim *Simulator, bRes *Result) {
	t.Helper()
	if !reflect.DeepEqual(aRes, bRes) {
		t.Errorf("%s: results diverged:\n a: %+v\n b: %+v", label, aRes, bRes)
	}
	if got, want := verSnapshot(&aSim.golden), verSnapshot(&bSim.golden); !reflect.DeepEqual(got, want) {
		t.Errorf("%s: golden store diverged: %d vs %d lines", label, len(got), len(want))
	}
	if got, want := verSnapshot(&aSim.dramVer), verSnapshot(&bSim.dramVer); !reflect.DeepEqual(got, want) {
		t.Errorf("%s: DRAM version store diverged", label)
	}
	if got, want := dirSnapshot(aSim), dirSnapshot(bSim); !reflect.DeepEqual(got, want) {
		t.Errorf("%s: directory state diverged: %d vs %d entries", label, len(got), len(want))
	}
}

// TestResetReproducesFreshSimulator is the simulator-reuse equivalence
// property: running a program on a dirtied, Reset simulator must reproduce
// a fresh sim.New run bit for bit — for every protocol, including resets
// that cross protocol kinds and directory/classifier geometries (which
// force partial rebuilds) and repeated reuse of one instance. The
// experiment layer's worker pool rides entirely on this guarantee.
func TestResetReproducesFreshSimulator(t *testing.T) {
	protocols := []struct {
		name string
		mut  func(*Config)
	}{
		{"adaptive", func(c *Config) {}},
		{"adaptive-victim-replication", func(c *Config) { c.VictimReplication = true }},
		{"mesi", func(c *Config) { c.ProtocolKind = ProtocolMESI }},
		{"dragon", func(c *Config) { c.ProtocolKind = ProtocolDragon }},
		{"dls", func(c *Config) { c.ProtocolKind = ProtocolDLS }},
		{"neat", func(c *Config) { c.ProtocolKind = ProtocolNeat }},
		{"hybrid", func(c *Config) { c.ProtocolKind = ProtocolHybrid }},
	}
	for _, p := range protocols {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			cfg := diffConfig()
			p.mut(&cfg)
			prog := buildRandomProgram(rand.New(rand.NewSource(5)), cfg.Cores)
			dirty := buildRandomProgram(rand.New(rand.NewSource(6)), cfg.Cores)

			freshSim, freshRes := runProgram(t, cfg, false, prog)

			// Dirty a simulator with a different program, then Reset and
			// replay the reference program on it.
			reused, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := reused.Run(sliceStreams(dirty)); err != nil {
				t.Fatal(err)
			}
			if err := reused.Reset(cfg); err != nil {
				t.Fatal(err)
			}
			res, err := reused.Run(sliceStreams(prog))
			if err != nil {
				t.Fatal(err)
			}
			compareStates(t, "same-config reset", reused, res, freshSim, freshRes)

			// Cross-config reset: detour through a different protocol kind,
			// directory width and classifier shape (rebuilding those parts),
			// then return to cfg. Still bit-identical.
			detour := diffConfig()
			detour.ProtocolKind = ProtocolMESI
			detour.ClassifierK = 0
			if p.name == "mesi" {
				detour.ProtocolKind = ProtocolDragon
			}
			if err := reused.Reset(detour); err != nil {
				t.Fatal(err)
			}
			if _, err := reused.Run(sliceStreams(dirty)); err != nil {
				t.Fatal(err)
			}
			if err := reused.Reset(cfg); err != nil {
				t.Fatal(err)
			}
			res2, err := reused.Run(sliceStreams(prog))
			if err != nil {
				t.Fatal(err)
			}
			compareStates(t, "cross-config reset", reused, res2, freshSim, freshRes)

			// Third consecutive reuse of the same instance.
			if err := reused.Reset(cfg); err != nil {
				t.Fatal(err)
			}
			res3, err := reused.Run(sliceStreams(prog))
			if err != nil {
				t.Fatal(err)
			}
			compareStates(t, "repeated reset", reused, res3, freshSim, freshRes)
		})
	}
}

// TestResetAcrossGeometries checks Reset rebuilds when the machine itself
// changes (core count, mesh, caches), matching fresh construction.
func TestResetAcrossGeometries(t *testing.T) {
	small := diffConfig()
	big := diffConfig()
	big.Cores, big.MeshWidth, big.MemControllers = 8, 4, 4
	big.L1DSizeKB, big.L2SizeKB = 2, 8

	progSmall := buildRandomProgram(rand.New(rand.NewSource(9)), small.Cores)
	progBig := buildRandomProgram(rand.New(rand.NewSource(10)), big.Cores)

	freshSim, freshRes := runProgram(t, big, false, progBig)

	s, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(sliceStreams(progSmall)); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(big); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(sliceStreams(progBig))
	if err != nil {
		t.Fatal(err)
	}
	compareStates(t, "geometry reset", s, res, freshSim, freshRes)
}

// TestResetRejectsBadConfig pins the error path: a failed Reset reports
// the validation error.
func TestResetRejectsBadConfig(t *testing.T) {
	s, err := New(diffConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := diffConfig()
	bad.MeshWidth = 3 // does not divide 4 cores
	if err := s.Reset(bad); err == nil {
		t.Fatal("Reset accepted an invalid config")
	}
}

func sliceStreams(prog [][]mem.Access) []trace.Stream {
	streams := make([]trace.Stream, len(prog))
	for i := range prog {
		streams[i] = trace.FromSlice(prog[i])
	}
	return streams
}

// buildLockHeavyProgram emits a synchronization-dominated workload: short
// critical sections on a handful of contended locks around accesses to a
// single shared page, with barriers between rounds. Lock grants and
// barrier releases reshape the run queue mid-run, which is exactly the
// machinery that ends a horizon batch, so this program stresses the
// engine's batch-boundary handling rather than its fast path.
func buildLockHeavyProgram(rng *rand.Rand, cores int) [][]mem.Access {
	const rounds = 4
	dataBase := mem.Addr(1) << 23
	randWord := func() mem.Addr {
		return dataBase + mem.Addr(rng.Intn(mem.PageBytes/mem.WordBytes))*mem.WordBytes
	}
	progs := make([][]mem.Access, cores)
	for r := 0; r < rounds; r++ {
		for c := 0; c < cores; c++ {
			for i := 0; i < 40; i++ {
				id := uint64(1 + rng.Intn(3))
				kind := mem.Read
				if rng.Intn(2) == 0 {
					kind = mem.Write
				}
				progs[c] = append(progs[c],
					mem.Access{Kind: mem.Lock, Addr: mem.Addr(id)},
					mem.Access{Kind: kind, Addr: randWord(), Gap: uint32(rng.Intn(3))},
					mem.Access{Kind: mem.Unlock, Addr: mem.Addr(id)})
			}
			progs[c] = append(progs[c], mem.Access{Kind: mem.Barrier, Addr: mem.Addr(7000 + r)})
		}
	}
	return progs
}

// buildBarrierHeavyProgram alternates tiny access bursts with global
// barriers, so cores spend most of the run parking and releasing — the
// worst case for horizon batching (batches of length zero or one, heap
// reshaped constantly).
func buildBarrierHeavyProgram(rng *rand.Rand, cores int) [][]mem.Access {
	const rounds = 40
	dataBase := mem.Addr(1) << 24
	progs := make([][]mem.Access, cores)
	for r := 0; r < rounds; r++ {
		for c := 0; c < cores; c++ {
			n := 1 + rng.Intn(4)
			for i := 0; i < n; i++ {
				kind := mem.Read
				if rng.Intn(3) == 0 {
					kind = mem.Write
				}
				a := dataBase + mem.Addr(rng.Intn(4*mem.PageBytes/mem.WordBytes))*mem.WordBytes
				progs[c] = append(progs[c], mem.Access{Kind: kind, Addr: a, Gap: uint32(rng.Intn(6))})
			}
			progs[c] = append(progs[c], mem.Access{Kind: mem.Barrier, Addr: mem.Addr(8000 + r)})
		}
	}
	return progs
}

// runProgramGeneric executes prog on a fast-layout simulator pinned to the
// generic interface-dispatch loop (forceGeneric), the reference
// formulation the batched monomorphic engines must reproduce.
func runProgramGeneric(t *testing.T, cfg Config, prog [][]mem.Access) (*Simulator, *Result) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.forceGeneric = true
	res, err := s.Run(sliceStreams(prog))
	if err != nil {
		t.Fatalf("generic engine: %v", err)
	}
	return s, res
}

// TestEngineBatchedVsGeneric is the execution-engine equivalence property:
// for every protocol, machine geometry and workload shape, the
// horizon-batched monomorphic loops (engine.go) must reproduce the generic
// one-op-per-heap-touch interface-dispatch loop bit for bit — every Result
// field, both version stores and the final directory state. The generic
// loop is the reference implementation; the batched engine's claim is that
// retiring a run of the root core's accesses without re-keying is
// unobservable, and this test is that claim's proof over randomized mixed,
// lock-heavy and barrier-heavy programs.
func TestEngineBatchedVsGeneric(t *testing.T) {
	protocols := []struct {
		name string
		mut  func(*Config)
	}{
		{"adaptive", func(c *Config) {}},
		{"adaptive-timestamp", func(c *Config) { c.Protocol.UseTimestamp = true }},
		{"adaptive-victim-replication", func(c *Config) { c.VictimReplication = true }},
		{"mesi", func(c *Config) { c.ProtocolKind = ProtocolMESI }},
		{"dragon", func(c *Config) { c.ProtocolKind = ProtocolDragon }},
		{"dls", func(c *Config) { c.ProtocolKind = ProtocolDLS }},
		{"neat", func(c *Config) { c.ProtocolKind = ProtocolNeat }},
		{"hybrid", func(c *Config) { c.ProtocolKind = ProtocolHybrid }},
	}
	geometries := []struct {
		name string
		mut  func(*Config)
	}{
		{"4core-2x2", func(c *Config) {}},
		{"8core-4x2", func(c *Config) {
			c.Cores, c.MeshWidth, c.MemControllers = 8, 4, 4
		}},
		{"2core-2x1", func(c *Config) {
			c.Cores, c.MeshWidth, c.MemControllers = 2, 2, 2
		}},
	}
	programs := []struct {
		name  string
		build func(*rand.Rand, int) [][]mem.Access
	}{
		{"mixed", buildRandomProgram},
		{"lock-heavy", buildLockHeavyProgram},
		{"barrier-heavy", buildBarrierHeavyProgram},
	}
	for _, p := range protocols {
		for _, g := range geometries {
			for _, w := range programs {
				p, g, w := p, g, w
				t.Run(p.name+"/"+g.name+"/"+w.name, func(t *testing.T) {
					t.Parallel()
					cfg := diffConfig()
					g.mut(&cfg)
					p.mut(&cfg)
					prog := w.build(rand.New(rand.NewSource(11)), cfg.Cores)

					batchedSim, batchedRes := runProgram(t, cfg, false, prog)
					genericSim, genericRes := runProgramGeneric(t, cfg, prog)
					compareStates(t, "batched vs generic", batchedSim, batchedRes, genericSim, genericRes)
				})
			}
		}
	}
}

// TestCheckValuesNeutral pins that the golden-store functional checker is
// observationally pure: running with CheckValues off must produce the
// exact same Result as with it on, for every protocol. The experiment
// layer relies on this to disable the checker (and its per-store version
// bookkeeping) in benchmark runs.
func TestCheckValuesNeutral(t *testing.T) {
	protocols := []struct {
		name string
		mut  func(*Config)
	}{
		{"adaptive", func(c *Config) {}},
		{"adaptive-victim-replication", func(c *Config) { c.VictimReplication = true }},
		{"mesi", func(c *Config) { c.ProtocolKind = ProtocolMESI }},
		{"dragon", func(c *Config) { c.ProtocolKind = ProtocolDragon }},
		{"dls", func(c *Config) { c.ProtocolKind = ProtocolDLS }},
		{"neat", func(c *Config) { c.ProtocolKind = ProtocolNeat }},
		{"hybrid", func(c *Config) { c.ProtocolKind = ProtocolHybrid }},
	}
	for _, p := range protocols {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			cfg := diffConfig()
			p.mut(&cfg)
			prog := buildRandomProgram(rand.New(rand.NewSource(13)), cfg.Cores)

			cfg.CheckValues = true
			_, checked := runProgram(t, cfg, false, prog)
			cfg.CheckValues = false
			_, unchecked := runProgram(t, cfg, false, prog)
			if !reflect.DeepEqual(checked, unchecked) {
				t.Errorf("CheckValues changed the result:\n on:  %+v\n off: %+v", checked, unchecked)
			}
		})
	}
}

// TestDifferentialExercisesProtocolMachinery guards the differential test's
// coverage: the randomized program on the shrunken machine must actually
// drive the paths the flat core rewrote — evictions at both levels,
// invalidations, ACKwise broadcast overflow, page reclassifications and
// remote word accesses — otherwise the equivalence proof is vacuous.
func TestDifferentialExercisesProtocolMachinery(t *testing.T) {
	cfg := diffConfig()
	prog := buildRandomProgram(rand.New(rand.NewSource(1)), cfg.Cores)
	_, res := runProgram(t, cfg, false, prog)
	if res.Invalidations == 0 {
		t.Error("no invalidations exercised")
	}
	if res.BroadcastInvalidations == 0 {
		t.Error("no ACKwise overflow broadcasts exercised")
	}
	if res.Reclassifications == 0 {
		t.Error("no R-NUCA page reclassifications exercised")
	}
	if res.WordReads+res.WordWrites == 0 {
		t.Error("no remote word accesses exercised")
	}
	if res.L1D.TotalMisses() == 0 || res.DRAMReads == 0 {
		t.Error("no misses or DRAM traffic exercised")
	}
}

// Package network models the electrical 2-D mesh interconnect of Table 1:
// XY dimension-ordered routing, 2-cycle hop latency (1 router + 1 link),
// 64-bit flits, and a contention model that considers only link contention
// with infinite input buffers, exactly as the paper specifies.
//
// The mesh also supports broadcast: a message is replicated along an
// XY tree (east/west along the source row, then north/south down every
// column) so that all tiles are reached with a single injection, mirroring
// the broadcast support ACKwise relies on (Section 3.1).
package network

import (
	"fmt"
	"sync/atomic"

	"lacc/internal/mem"
)

// Direction indexes the four mesh output links of a router.
type Direction uint8

// Mesh link directions.
const (
	East Direction = iota
	West
	North
	South
	numDirections
)

// Config describes the mesh geometry and timing.
type Config struct {
	Width  int // tiles per row
	Height int // tiles per column
	// HopLatency is the per-hop head latency in cycles (Table 1: 2 = 1
	// router + 1 link).
	HopLatency int
}

// Mesh is a W×H mesh with per-directed-link next-free times. A Mesh built
// by New is not safe for concurrent use; the simulator serializes
// transactions. Clone returns handles that share the link-occupancy state
// through atomic read-max-write updates, so the sharded engine's workers
// observe each other's contention (see Clone).
type Mesh struct {
	cfg      Config
	linkFree []uint64    // [tile*4+dir] next-free cycle per directed link
	rowTime  []mem.Cycle // broadcast scratch: head arrival per column

	// concurrent switches link updates to atomic compare-and-swap loops.
	// Set only on clones; a sequential mesh keeps the plain loads/stores.
	concurrent bool

	// RouterFlits and LinkFlits count flit traversals for the energy model
	// (each flit is counted once per router and once per link it crosses).
	RouterFlits uint64
	LinkFlits   uint64
	// Messages counts injected messages (unicast or broadcast).
	Messages uint64
}

// New returns a mesh for the given configuration.
func New(cfg Config) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("network: bad mesh %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.HopLatency <= 0 {
		cfg.HopLatency = 2
	}
	n := cfg.Width * cfg.Height
	return &Mesh{
		cfg:      cfg,
		linkFree: make([]uint64, n*int(numDirections)),
		rowTime:  make([]mem.Cycle, cfg.Width),
	}
}

// Clone returns a handle onto the same mesh for one concurrent worker: the
// link next-free times are shared (every worker observes every other's
// contention) while the traffic counters and broadcast scratch are private,
// so workers accumulate counters without synchronization and the owner
// merges them afterwards with AddCounters. The clone performs link updates
// atomically; the original must stay quiescent while clones are live.
func (m *Mesh) Clone() *Mesh {
	return &Mesh{
		cfg:        m.cfg,
		linkFree:   m.linkFree,
		rowTime:    make([]mem.Cycle, m.cfg.Width),
		concurrent: true,
	}
}

// AddCounters folds a clone's private traffic counters into m.
func (m *Mesh) AddCounters(o *Mesh) {
	m.RouterFlits += o.RouterFlits
	m.LinkFlits += o.LinkFlits
	m.Messages += o.Messages
}

// Reset frees every link and zeroes the traffic counters, returning the
// mesh to its post-New state for the same geometry.
func (m *Mesh) Reset() {
	clear(m.linkFree)
	m.RouterFlits, m.LinkFlits, m.Messages = 0, 0, 0
}

// Matches reports whether the mesh was built for exactly cfg (after New's
// HopLatency defaulting), so callers can reuse it across runs.
func (m *Mesh) Matches(cfg Config) bool {
	if cfg.HopLatency <= 0 {
		cfg.HopLatency = 2
	}
	return m.cfg == cfg
}

// Tiles returns the number of tiles.
func (m *Mesh) Tiles() int { return m.cfg.Width * m.cfg.Height }

// XY returns tile's mesh coordinates.
func (m *Mesh) XY(tile int) (x, y int) { return tile % m.cfg.Width, tile / m.cfg.Width }

// TileAt returns the tile id at (x, y).
func (m *Mesh) TileAt(x, y int) int { return y*m.cfg.Width + x }

// Hops returns the Manhattan distance between two tiles.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// Diameter returns the mesh diameter in hops.
func (m *Mesh) Diameter() int { return m.cfg.Width + m.cfg.Height - 2 }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// occupy crosses one link, applying link contention: the head waits for the
// link to free, then occupies it for `flits` cycles. It returns the head's
// arrival time at the next router.
func (m *Mesh) occupy(tile int, d Direction, t mem.Cycle, flits int) mem.Cycle {
	m.LinkFlits += uint64(flits)
	m.RouterFlits += uint64(flits)
	return m.traverse(tile, d, t, flits)
}

// traverse is occupy without the flit accounting; Unicast batches the
// counter updates (flits x hops) into one pair of adds per message.
func (m *Mesh) traverse(tile int, d Direction, t mem.Cycle, flits int) mem.Cycle {
	link := tile*int(numDirections) + int(d)
	if m.concurrent {
		return m.traverseShared(link, t, flits)
	}
	if free := mem.Cycle(m.linkFree[link]); free > t {
		t = free
	}
	m.linkFree[link] = uint64(t + mem.Cycle(flits))
	return t + mem.Cycle(m.cfg.HopLatency)
}

// traverseShared is the clone-side link crossing: an atomic read-max-write
// on the shared next-free word. The CAS loop makes the wait-then-occupy
// update atomic against concurrent workers crossing the same link.
func (m *Mesh) traverseShared(link int, t mem.Cycle, flits int) mem.Cycle {
	p := &m.linkFree[link]
	for {
		cur := atomic.LoadUint64(p)
		head := t
		if free := mem.Cycle(cur); free > head {
			head = free
		}
		if atomic.CompareAndSwapUint64(p, cur, uint64(head+mem.Cycle(flits))) {
			return head + mem.Cycle(m.cfg.HopLatency)
		}
	}
}

// step advances the message head across one link (occupy plus the XY walk);
// broadcast uses it, while the unicast hot path tracks coordinates
// incrementally to avoid recomputing them per hop.
func (m *Mesh) step(tile int, d Direction, t mem.Cycle, flits int) (next int, out mem.Cycle) {
	t = m.occupy(tile, d, t, flits)
	x, y := m.XY(tile)
	switch d {
	case East:
		x++
	case West:
		x--
	case North:
		y--
	case South:
		y++
	}
	return m.TileAt(x, y), t
}

// Unicast routes a message of `flits` flits from src to dst using XY
// routing, departing at `depart`. It returns the cycle at which the full
// message (tail flit) has arrived at dst. A message to the local tile takes
// zero network time.
func (m *Mesh) Unicast(src, dst int, flits int, depart mem.Cycle) mem.Cycle {
	if flits <= 0 {
		panic("network: message needs at least one flit")
	}
	if src == dst {
		return depart
	}
	m.Messages++
	t := depart
	cur := src
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	hopFlits := uint64((abs(sx-dx) + abs(sy-dy)) * flits)
	m.LinkFlits += hopFlits
	m.RouterFlits += hopFlits
	for sx < dx { // X first
		t = m.traverse(cur, East, t, flits)
		sx++
		cur++
	}
	for sx > dx {
		t = m.traverse(cur, West, t, flits)
		sx--
		cur--
	}
	for sy < dy { // then Y
		t = m.traverse(cur, South, t, flits)
		sy++
		cur += m.cfg.Width
	}
	for sy > dy {
		t = m.traverse(cur, North, t, flits)
		sy--
		cur -= m.cfg.Width
	}
	// Tail flit arrives flits-1 cycles after the head.
	return t + mem.Cycle(flits-1)
}

// Broadcast injects a message of `flits` flits at src and replicates it
// along an XY tree so every tile receives exactly one copy. It returns the
// arrival cycle (tail flit) at every tile; the source's own entry is the
// departure time.
func (m *Mesh) Broadcast(src int, flits int, depart mem.Cycle) []mem.Cycle {
	return m.BroadcastInto(nil, src, flits, depart)
}

// BroadcastInto is Broadcast writing the arrival times into dst when it has
// capacity for one entry per tile (allocating otherwise), so hot callers
// can reuse one buffer across broadcasts. Every entry is overwritten.
func (m *Mesh) BroadcastInto(dst []mem.Cycle, src int, flits int, depart mem.Cycle) []mem.Cycle {
	if flits <= 0 {
		panic("network: message needs at least one flit")
	}
	m.Messages++
	var arrive []mem.Cycle
	if cap(dst) >= m.Tiles() {
		arrive = dst[:m.Tiles()]
	} else {
		arrive = make([]mem.Cycle, m.Tiles())
	}
	arrive[src] = depart

	sx, _ := m.XY(src)
	// Phase 1: spread along the source row.
	rowTime := m.rowTime // head arrival per column; fully overwritten below
	rowTime[sx] = depart
	cur, t := src, depart
	for x := sx; x < m.cfg.Width-1; x++ { // eastward
		cur, t = m.step(cur, East, t, flits)
		cx, _ := m.XY(cur)
		rowTime[cx] = t
	}
	cur, t = src, depart
	for x := sx; x > 0; x-- { // westward
		cur, t = m.step(cur, West, t, flits)
		cx, _ := m.XY(cur)
		rowTime[cx] = t
	}
	// Phase 2: from every tile of the source row, spread down each column.
	_, sy := m.XY(src)
	for x := 0; x < m.cfg.Width; x++ {
		base := m.TileAt(x, sy)
		arrive[base] = rowTime[x] + mem.Cycle(flits-1)
		cur, t = base, rowTime[x]
		for y := sy; y < m.cfg.Height-1; y++ { // southward
			cur, t = m.step(cur, South, t, flits)
			arrive[cur] = t + mem.Cycle(flits-1)
		}
		cur, t = base, rowTime[x]
		for y := sy; y > 0; y-- { // northward
			cur, t = m.step(cur, North, t, flits)
			arrive[cur] = t + mem.Cycle(flits-1)
		}
	}
	arrive[src] = depart
	return arrive
}

// UncontendedLatency returns the latency of a flits-long message over h hops
// with no contention; exposed for analytical checks and lock modelling.
func (m *Mesh) UncontendedLatency(h, flits int) mem.Cycle {
	if h == 0 {
		return 0
	}
	return mem.Cycle(h*m.cfg.HopLatency + flits - 1)
}

package network

import (
	"testing"
	"testing/quick"

	"lacc/internal/mem"
)

func newTestMesh() *Mesh { return New(Config{Width: 8, Height: 8, HopLatency: 2}) }

func TestGeometry(t *testing.T) {
	m := newTestMesh()
	if m.Tiles() != 64 {
		t.Fatalf("tiles = %d", m.Tiles())
	}
	if m.Diameter() != 14 {
		t.Fatalf("diameter = %d", m.Diameter())
	}
	x, y := m.XY(0)
	if x != 0 || y != 0 {
		t.Fatalf("XY(0) = %d,%d", x, y)
	}
	x, y = m.XY(63)
	if x != 7 || y != 7 {
		t.Fatalf("XY(63) = %d,%d", x, y)
	}
	if m.TileAt(7, 7) != 63 {
		t.Fatalf("TileAt(7,7) = %d", m.TileAt(7, 7))
	}
}

func TestHops(t *testing.T) {
	m := newTestMesh()
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 8, 1},
		{0, 9, 2},
		{0, 63, 14},
		{63, 0, 14},
		{7, 56, 14},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestUnicastLatencyNoContention(t *testing.T) {
	m := newTestMesh()
	// Table 1: hop = 2 cycles. 1-flit message over 1 hop: 2 cycles.
	if got := m.Unicast(0, 1, 1, 100); got != 102 {
		t.Fatalf("1 hop 1 flit arrive = %d, want 102", got)
	}
	// 9-flit (line) message over 14 hops: 14*2 + 8 = 36 cycles.
	m2 := newTestMesh()
	if got := m2.Unicast(0, 63, 9, 0); got != 36 {
		t.Fatalf("14 hop 9 flit arrive = %d, want 36", got)
	}
	// Local delivery takes no time.
	if got := m2.Unicast(5, 5, 9, 77); got != 77 {
		t.Fatalf("local arrive = %d, want 77", got)
	}
}

func TestUnicastMatchesUncontended(t *testing.T) {
	m := newTestMesh()
	for _, c := range []struct{ src, dst, flits int }{{0, 63, 9}, {3, 42, 2}, {10, 17, 1}} {
		fresh := newTestMesh()
		got := fresh.Unicast(c.src, c.dst, c.flits, 1000)
		want := 1000 + fresh.UncontendedLatency(m.Hops(c.src, c.dst), c.flits)
		if got != want {
			t.Errorf("Unicast(%d->%d,%d flits) = %d, want %d", c.src, c.dst, c.flits, got, want)
		}
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	m := newTestMesh()
	// Two 9-flit messages over the same link, same departure: the second
	// head must wait for the first message's 9 flit-cycles.
	a := m.Unicast(0, 1, 9, 0)
	b := m.Unicast(0, 1, 9, 0)
	if a != 10 { // 2 + 8
		t.Fatalf("first arrive = %d, want 10", a)
	}
	if b != 19 { // wait 9, then 2 + 8
		t.Fatalf("second arrive = %d, want 19", b)
	}
	// A message on a different link is unaffected.
	c := m.Unicast(8, 9, 1, 0)
	if c != 2 {
		t.Fatalf("independent link arrive = %d, want 2", c)
	}
}

func TestXYRoutingIsDeterministicPath(t *testing.T) {
	// Messages 0->9 (X then Y) and 1->8 must not share links under XY:
	// 0->9 uses link 0E then 1S; 1->8 uses 1W then 0S.
	m := newTestMesh()
	m.Unicast(0, 9, 9, 0)
	before := m.LinkFlits
	got := m.Unicast(1, 8, 1, 0)
	if got != 4 {
		t.Fatalf("1->8 arrive = %d, want 4 (no contention)", got)
	}
	if m.LinkFlits != before+2 {
		t.Fatalf("link flits delta = %d, want 2", m.LinkFlits-before)
	}
}

func TestFlitAccounting(t *testing.T) {
	m := newTestMesh()
	m.Unicast(0, 2, 3, 0) // 2 hops, 3 flits => 6 link-flits, 6 router-flits
	if m.LinkFlits != 6 || m.RouterFlits != 6 {
		t.Fatalf("flits = %d/%d, want 6/6", m.LinkFlits, m.RouterFlits)
	}
	if m.Messages != 1 {
		t.Fatalf("messages = %d", m.Messages)
	}
}

func TestBroadcastReachesAllTiles(t *testing.T) {
	m := newTestMesh()
	arrive := m.Broadcast(27, 1, 50)
	if len(arrive) != 64 {
		t.Fatalf("arrivals = %d", len(arrive))
	}
	if arrive[27] != 50 {
		t.Fatalf("source arrival = %d, want 50", arrive[27])
	}
	for tile, at := range arrive {
		if tile == 27 {
			continue
		}
		if at <= 50 {
			t.Errorf("tile %d arrival %d not after departure", tile, at)
		}
		// Arrival must be at least the uncontended latency away.
		min := 50 + m.UncontendedLatency(m.Hops(27, tile), 1)
		if at < min {
			t.Errorf("tile %d arrival %d before physical minimum %d", tile, at, min)
		}
	}
}

func TestBroadcastFlitAccounting(t *testing.T) {
	m := newTestMesh()
	m.Broadcast(0, 1, 0)
	// The broadcast tree spans all 64 tiles => exactly 63 link traversals.
	if m.LinkFlits != 63 {
		t.Fatalf("broadcast link flits = %d, want 63", m.LinkFlits)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero width did not panic")
		}
	}()
	New(Config{Width: 0, Height: 8})
}

func TestZeroFlitPanics(t *testing.T) {
	m := newTestMesh()
	defer func() {
		if recover() == nil {
			t.Fatal("Unicast with 0 flits did not panic")
		}
	}()
	m.Unicast(0, 1, 0, 0)
}

// Property: unicast arrival is never earlier than the uncontended latency,
// and arrivals on a shared mesh are monotone with repeated sends (the link
// only gets busier).
func TestUnicastProperties(t *testing.T) {
	f := func(pairs []uint16, flitSel []bool) bool {
		m := newTestMesh()
		last := map[[2]int]mem.Cycle{}
		for i, p := range pairs {
			src := int(p) % 64
			dst := int(p>>8) % 64
			flits := 1
			if i < len(flitSel) && flitSel[i] {
				flits = 9
			}
			got := m.Unicast(src, dst, flits, 0)
			min := m.UncontendedLatency(m.Hops(src, dst), flits)
			if src == dst {
				min = 0
			}
			if got < min {
				return false
			}
			key := [2]int{src, dst}
			if prev, ok := last[key]; ok && got < prev {
				return false // same route, later message cannot arrive earlier
			}
			last[key] = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: broadcast covers every tile exactly once with a spanning tree:
// link flit count for a b-flit broadcast is (tiles-1)*b.
func TestBroadcastTreeProperty(t *testing.T) {
	f := func(srcSel uint8, flitSel bool) bool {
		m := newTestMesh()
		flits := 1
		if flitSel {
			flits = 9
		}
		m.Broadcast(int(srcSel)%64, flits, 0)
		return m.LinkFlits == uint64(63*flits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

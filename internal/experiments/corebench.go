package experiments

import "lacc/internal/sim"

// Core-benchmark definitions shared by the repo's published go test
// benchmarks (bench_test.go: BenchmarkAckwiseVsFullmap and
// BenchmarkFig8And9Sweep) and cmd/lacc-bench's benchcore regression
// harness. Both sides run these bodies, so the committed BENCH_core.json
// allocs/op gate always measures exactly the configuration the benchmarks
// publish — an edit here moves both together, and neither can drift
// silently.

// CoreBenchOptions returns the reduced machine (16 cores, 4-wide mesh,
// 0.1 scale, seed 1) every tracked core benchmark runs on.
func CoreBenchOptions(benches ...string) Options {
	return Options{Cores: 16, MeshWidth: 4, Scale: 0.1, Seed: 1, Benchmarks: benches}
}

// CoreBenchAckwise runs one iteration of the tracked ACKwise4-vs-full-map
// comparison (radix).
func CoreBenchAckwise() (*AckwiseComparisonResult, error) {
	return AckwiseComparison(CoreBenchOptions("radix"), nil)
}

// CoreBenchPCTs is the PCT list of the tracked sweep.
var CoreBenchPCTs = []int{1, 4, 8}

// CoreBenchPCTSweep runs one iteration of the tracked PCT sweep
// (streamcluster + matmul over CoreBenchPCTs).
func CoreBenchPCTSweep() (*PCTSweep, error) {
	return RunPCTSweep(CoreBenchOptions("streamcluster", "matmul"), CoreBenchPCTs)
}

// CoreBenchMultiSweepPCTs are the three overlapping PCT lists of the
// tracked multi-experiment sweep, shaped like the real lacc-bench
// invocation where Figures 8, 10 and 11 share most of their PCT points:
// the second list is a subset of the first, the third adds two points.
var CoreBenchMultiSweepPCTs = [][]int{
	{1, 2, 4, 8},
	{1, 4, 8},
	{1, 2, 4, 8, 12},
}

// CoreBenchLargeMesh256Options returns the large-mesh machine the
// LargeMesh256 benchmark runs on: 256 cores on a 16x16 mesh — four times
// the paper's Table 1 core count — at 0.1 scale, seed 1.
func CoreBenchLargeMesh256Options() Options {
	return Options{
		Cores: 256, MeshWidth: 16, Scale: 0.1, Seed: 1,
		Benchmarks: []string{"streamcluster"},
	}
}

// CoreBenchLargeMesh256 runs one iteration of the tracked large-mesh
// scenario: streamcluster at 256 cores under the adaptive protocol and the
// full-map MESI baseline. Large meshes are where per-access engine costs
// compound — 16-deep run-queue levels, broadcast trees spanning 256 tiles,
// full-map sharer vectors 256 wide — so this benchmark gates the engine's
// scalability rather than its small-machine throughput.
func CoreBenchLargeMesh256() (*ProtocolComparisonResult, error) {
	return ProtocolComparison(CoreBenchLargeMesh256Options(),
		[]sim.ProtocolKind{sim.ProtocolAdaptive, sim.ProtocolMESI})
}

// CoreBenchLargeMesh256Sharded runs the LargeMesh256 scenario on the
// shard-parallel engine (4 shards of 64 tiles each). It gates the sharded
// engine's overhead rather than its speedup: on a single-CPU runner the
// four shard workers time-slice one core, so the gate's wide ns/op band
// covers both serialized and genuinely parallel hosts — the >= 2x speedup
// claim is only measurable with GOMAXPROCS >= 4 (see DESIGN.md, "Parallel
// execution").
func CoreBenchLargeMesh256Sharded() (*ProtocolComparisonResult, error) {
	o := CoreBenchLargeMesh256Options()
	o.Shards = 4
	return ProtocolComparison(o,
		[]sim.ProtocolKind{sim.ProtocolAdaptive, sim.ProtocolMESI})
}

// CoreBenchMultiSweep runs one iteration of the tracked multi-experiment
// sweep: three PCT sweeps over one session, exercising the whole
// work-avoidance stack — corpus reuse, cross-experiment result dedup and
// the Reset-backed simulator pool. This is the experiment-level benchmark
// the allocs/op regression gate tracks (see cmd/lacc-bench).
func CoreBenchMultiSweep() error {
	o := CoreBenchOptions("streamcluster", "matmul")
	o.Session = NewSession()
	for _, pcts := range CoreBenchMultiSweepPCTs {
		if _, err := RunPCTSweep(o, pcts); err != nil {
			return err
		}
	}
	return nil
}

package experiments

import "lacc/internal/sim"

// The cluster tier: a Session constructed with NewSessionWithTiers
// consults its peers between the durable store and the simulator. Peers
// are a cache below a cache below a cache — the same contract as the
// disk tier, one hop further out: every failure mode (no peers, network
// partitions, slow peers, damaged transfers) degrades to recomputation
// and is never surfaced to experiment callers. Single-flight holds
// across all three tiers because only the goroutine that claimed a
// fingerprint's entry consults them.

// loadPeer consults the cluster tier for k. The fetched record carries
// the same canonical-JSON encoding the disk tier stores, so a hit is
// warmed into the local store verbatim — the next restart (or flush)
// serves it from disk without another network hop, and the bytes served
// stay identical on every node.
func (s *Session) loadPeer(k runKey) (*sim.Result, bool) {
	if s.peers == nil {
		return nil, false
	}
	key := storeKey(k)
	val, ok := s.peers.Fetch(key)
	if !ok {
		return nil, false
	}
	res, err := decodeResult(val)
	if err != nil {
		// The transfer passed its checksum but does not parse — a peer
		// running an incompatible build (which the schema fingerprint
		// should prevent) or a store format drift. Recompute.
		s.notePeerError()
		s.logf("experiments: peer result for %s undecodable (%v); recomputing", k.bench, err)
		return nil, false
	}
	s.mu.Lock()
	s.peerHits++
	s.mu.Unlock()
	if s.store != nil {
		if err := s.store.Put(key, val); err != nil {
			s.noteDiskError()
			s.logf("experiments: warming peer result for %s to disk: %v", k.bench, err)
		} else {
			s.mu.Lock()
			s.diskWrites++
			s.mu.Unlock()
		}
	}
	return res, true
}

// notePeerError counts one absorbed cluster-tier failure.
func (s *Session) notePeerError() {
	s.mu.Lock()
	s.peerErrors++
	s.mu.Unlock()
}

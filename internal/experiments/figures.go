package experiments

import (
	"fmt"
	"io"

	"lacc/internal/report"
	"lacc/internal/sim"
	"lacc/internal/stats"
)

// Fig1And2Result holds the baseline invalidation and eviction utilization
// histograms of Figures 1 and 2.
type Fig1And2Result struct {
	Benches      []string
	Invalidation map[string]stats.UtilizationHistogram
	Eviction     map[string]stats.UtilizationHistogram
}

// Fig1And2 runs the baseline (PCT 1) and collects, per benchmark, the
// distribution of private-cache line utilization observed at invalidation
// (Figure 1) and eviction (Figure 2) time.
func Fig1And2(o Options) (*Fig1And2Result, error) {
	o = o.normalize()
	var jobs []job
	for _, bench := range o.Benchmarks {
		cfg := o.baseConfig()
		cfg.Protocol.PCT = 1 // baseline: everything is privately cached
		cfg.TrackUtilization = true
		jobs = append(jobs, job{bench: bench, variant: "base", cfg: cfg})
	}
	raw, err := o.runJobs(jobs)
	if err != nil {
		return nil, err
	}
	out := &Fig1And2Result{
		Benches:      o.Benchmarks,
		Invalidation: map[string]stats.UtilizationHistogram{},
		Eviction:     map[string]stats.UtilizationHistogram{},
	}
	for _, bench := range o.Benchmarks {
		r := raw[bench]["base"]
		out.Invalidation[bench] = r.InvalidationUtil
		out.Eviction[bench] = r.EvictionUtil
	}
	return out, nil
}

// Render prints both histograms as percentage breakdowns over the paper's
// utilization bins.
func (f *Fig1And2Result) Render(w io.Writer) error {
	for _, part := range []struct {
		title string
		data  map[string]stats.UtilizationHistogram
	}{
		{"Figure 1: invalidations breakdown vs utilization (%)", f.Invalidation},
		{"Figure 2: evictions breakdown vs utilization (%)", f.Eviction},
	} {
		t := report.NewTable(part.title,
			"benchmark", stats.BucketLabels[0], stats.BucketLabels[1],
			stats.BucketLabels[2], stats.BucketLabels[3], stats.BucketLabels[4], "samples")
		for _, bench := range f.Benches {
			h := part.data[bench]
			p := h.Percent()
			t.AddRowValues(labelOf(bench), p[0], p[1], p[2], p[3], p[4], h.Total())
		}
		if err := t.Write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RATVariant is one configuration of the Figure 12 sensitivity study.
type RATVariant struct {
	Name       string
	Timestamp  bool
	NRATLevels int
	RATMax     int
}

// Fig12Variants reproduces the x-axis of Figure 12: the Timestamp-based
// reference followed by RAT-level/threshold combinations (L = nRATlevels,
// T = RATmax).
var Fig12Variants = []RATVariant{
	{Name: "Timestamp", Timestamp: true},
	{Name: "L-1", NRATLevels: 1, RATMax: 16},
	{Name: "L-2,T-8", NRATLevels: 2, RATMax: 8},
	{Name: "L-2,T-16", NRATLevels: 2, RATMax: 16},
	{Name: "L-4,T-8", NRATLevels: 4, RATMax: 8},
	{Name: "L-4,T-16", NRATLevels: 4, RATMax: 16},
	{Name: "L-8,T-16", NRATLevels: 8, RATMax: 16},
}

// Fig12Result holds geometric-mean completion time and energy per variant,
// normalized to the Timestamp scheme.
type Fig12Result struct {
	Variants   []string
	Completion map[string]float64
	Energy     map[string]float64
}

// Fig12 runs the RAT sensitivity study at the default PCT.
func Fig12(o Options) (*Fig12Result, error) {
	o = o.normalize()
	var jobs []job
	for _, bench := range o.Benchmarks {
		for _, v := range Fig12Variants {
			cfg := o.baseConfig()
			cfg.Protocol.UseTimestamp = v.Timestamp
			if !v.Timestamp {
				cfg.Protocol.NRATLevels = v.NRATLevels
				cfg.Protocol.RATMax = v.RATMax
			}
			jobs = append(jobs, job{bench: bench, variant: v.Name, cfg: cfg})
		}
	}
	raw, err := o.runJobs(jobs)
	if err != nil {
		return nil, err
	}
	out := &Fig12Result{Completion: map[string]float64{}, Energy: map[string]float64{}}
	ref := Fig12Variants[0].Name
	for _, v := range Fig12Variants {
		out.Variants = append(out.Variants, v.Name)
		var times, energies []float64
		for _, bench := range o.Benchmarks {
			b := raw[bench][ref]
			r := raw[bench][v.Name]
			if bt := b.Time.Total(); bt > 0 {
				times = append(times, r.Time.Total()/bt)
			}
			if be := b.Energy.Total(); be > 0 {
				energies = append(energies, r.Energy.Total()/be)
			}
		}
		out.Completion[v.Name] = stats.GeoMean(times)
		out.Energy[v.Name] = stats.GeoMean(energies)
	}
	return out, nil
}

// Render prints the Figure 12 series.
func (f *Fig12Result) Render(w io.Writer) error {
	t := report.NewTable(
		"Figure 12: RAT sensitivity, normalized to the Timestamp classification",
		"variant", "completion", "energy")
	for _, v := range f.Variants {
		t.AddRowValues(v, f.Completion[v], f.Energy[v])
	}
	return t.Write(w)
}

// Fig13Ks are the Limited-k classifier sizes of Figure 13; the core count
// stands in for the Complete classifier.
func Fig13Ks(cores int) []int { return []int{1, 3, 5, 7, cores} }

// Fig13Result holds per-benchmark completion time and energy per k,
// normalized to the Complete classifier.
type Fig13Result struct {
	Ks         []int
	Benches    []string
	Completion map[string]map[int]float64
	Energy     map[string]map[int]float64
}

// Fig13 runs the Limited-k accuracy study at the default PCT.
func Fig13(o Options) (*Fig13Result, error) {
	o = o.normalize()
	ks := Fig13Ks(o.Cores)
	var jobs []job
	for _, bench := range o.Benchmarks {
		for _, k := range ks {
			cfg := o.baseConfig()
			cfg.ClassifierK = k
			jobs = append(jobs, job{bench: bench, variant: fmt.Sprintf("k%d", k), cfg: cfg})
		}
	}
	raw, err := o.runJobs(jobs)
	if err != nil {
		return nil, err
	}
	out := &Fig13Result{
		Ks: ks, Benches: o.Benchmarks,
		Completion: map[string]map[int]float64{},
		Energy:     map[string]map[int]float64{},
	}
	complete := fmt.Sprintf("k%d", o.Cores)
	for _, bench := range o.Benchmarks {
		base := raw[bench][complete]
		ct := map[int]float64{}
		en := map[int]float64{}
		for _, k := range ks {
			r := raw[bench][fmt.Sprintf("k%d", k)]
			if bt := base.Time.Total(); bt > 0 {
				ct[k] = r.Time.Total() / bt
			}
			if be := base.Energy.Total(); be > 0 {
				en[k] = r.Energy.Total() / be
			}
		}
		out.Completion[bench] = ct
		out.Energy[bench] = en
	}
	return out, nil
}

// Render prints the Figure 13 per-benchmark series.
func (f *Fig13Result) Render(w io.Writer) error {
	headers := []string{"benchmark"}
	for _, k := range f.Ks {
		headers = append(headers, fmt.Sprintf("k=%d", k))
	}
	for _, part := range []struct {
		title string
		data  map[string]map[int]float64
	}{
		{"Figure 13a: completion time, Limited-k normalized to Complete", f.Completion},
		{"Figure 13b: energy, Limited-k normalized to Complete", f.Energy},
	} {
		t := report.NewTable(part.title, headers...)
		for _, bench := range f.Benches {
			values := []any{labelOf(bench)}
			for _, k := range f.Ks {
				values = append(values, part.data[bench][k])
			}
			t.AddRowValues(values...)
		}
		if err := t.Write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Fig14Result holds the Adapt1-way over Adapt2-way ratios of Figure 14.
type Fig14Result struct {
	Benches       []string
	TimeRatio     map[string]float64
	EnergyRatio   map[string]float64
	GeomeanTime   float64
	GeomeanEnergy float64
}

// Fig14 compares the simpler one-way-transition protocol (Section 3.7)
// against the full two-way protocol at the default PCT.
func Fig14(o Options) (*Fig14Result, error) {
	o = o.normalize()
	var jobs []job
	for _, bench := range o.Benchmarks {
		twoWay := o.baseConfig()
		oneWay := o.baseConfig()
		oneWay.Protocol.OneWay = true
		jobs = append(jobs,
			job{bench: bench, variant: "2way", cfg: twoWay},
			job{bench: bench, variant: "1way", cfg: oneWay})
	}
	raw, err := o.runJobs(jobs)
	if err != nil {
		return nil, err
	}
	out := &Fig14Result{
		Benches:     o.Benchmarks,
		TimeRatio:   map[string]float64{},
		EnergyRatio: map[string]float64{},
	}
	var times, energies []float64
	for _, bench := range o.Benchmarks {
		two := raw[bench]["2way"]
		one := raw[bench]["1way"]
		if t := two.Time.Total(); t > 0 {
			out.TimeRatio[bench] = one.Time.Total() / t
			times = append(times, out.TimeRatio[bench])
		}
		if e := two.Energy.Total(); e > 0 {
			out.EnergyRatio[bench] = one.Energy.Total() / e
			energies = append(energies, out.EnergyRatio[bench])
		}
	}
	out.GeomeanTime = stats.GeoMean(times)
	out.GeomeanEnergy = stats.GeoMean(energies)
	return out, nil
}

// Render prints the Figure 14 ratios (higher = the one-way protocol is
// worse, i.e. two-way transitions matter).
func (f *Fig14Result) Render(w io.Writer) error {
	t := report.NewTable(
		"Figure 14: Adapt1-way / Adapt2-way ratio (paper geomeans: 1.34x time, 1.13x energy)",
		"benchmark", "completion-ratio", "energy-ratio")
	for _, bench := range f.Benches {
		t.AddRowValues(labelOf(bench), f.TimeRatio[bench], f.EnergyRatio[bench])
	}
	t.AddRowValues("GEOMEAN", f.GeomeanTime, f.GeomeanEnergy)
	return t.Write(w)
}

// AckwiseComparisonResult compares ACKwise-p directories (including the
// full-map special case) under the baseline protocol, reproducing the
// Section 5 prologue check and serving as the directory-pressure ablation.
type AckwiseComparisonResult struct {
	Pointers   []int
	Completion map[int]float64 // geomean, normalized to full-map
	Energy     map[int]float64
	Broadcasts map[int]uint64 // total broadcast invalidations
}

// AckwiseComparison sweeps the ACKwise pointer count. With no explicit
// pointer list it compares ACKwise4 against the full-map directory.
func AckwiseComparison(o Options, pointers []int) (*AckwiseComparisonResult, error) {
	o = o.normalize()
	if len(pointers) == 0 {
		pointers = []int{4, o.Cores}
	}
	var jobs []job
	for _, bench := range o.Benchmarks {
		for _, p := range pointers {
			cfg := o.baseConfig()
			cfg.AckwisePointers = p
			jobs = append(jobs, job{bench: bench, variant: fmt.Sprintf("p%d", p), cfg: cfg})
		}
	}
	raw, err := o.runJobs(jobs)
	if err != nil {
		return nil, err
	}
	out := &AckwiseComparisonResult{
		Pointers:   pointers,
		Completion: map[int]float64{},
		Energy:     map[int]float64{},
		Broadcasts: map[int]uint64{},
	}
	ref := fmt.Sprintf("p%d", pointers[len(pointers)-1])
	for _, p := range pointers {
		var times, energies []float64
		variant := fmt.Sprintf("p%d", p)
		for _, bench := range o.Benchmarks {
			base := raw[bench][ref]
			r := raw[bench][variant]
			if bt := base.Time.Total(); bt > 0 {
				times = append(times, r.Time.Total()/bt)
			}
			if be := base.Energy.Total(); be > 0 {
				energies = append(energies, r.Energy.Total()/be)
			}
			out.Broadcasts[p] += r.BroadcastInvalidations
		}
		out.Completion[p] = stats.GeoMean(times)
		out.Energy[p] = stats.GeoMean(energies)
	}
	return out, nil
}

// Render prints the ACKwise sweep.
func (a *AckwiseComparisonResult) Render(w io.Writer) error {
	t := report.NewTable(
		"ACKwise-p vs full-map (geomeans normalized to full-map; paper: ACKwise4 within ~1%)",
		"pointers", "completion", "energy", "broadcast-invals")
	for _, p := range a.Pointers {
		t.AddRowValues(p, a.Completion[p], a.Energy[p], a.Broadcasts[p])
	}
	return t.Write(w)
}

// Baseline returns one simulation of a single benchmark under cfg —
// a convenience used by tests and the CLI's single-run mode.
func Baseline(o Options, bench string, cfg sim.Config) (*sim.Result, error) {
	o = o.normalize()
	return o.simulate(job{bench: bench, variant: "single", cfg: cfg})
}

package experiments

import (
	"fmt"
	"io"
	"sort"

	"lacc/internal/report"
	"lacc/internal/sim"
	"lacc/internal/stats"
)

// Fig8PCTs are the private-caching-threshold values swept in Figures 8-10.
var Fig8PCTs = []int{1, 2, 3, 4, 5, 6, 7, 8}

// Fig10PCTs is the reduced sweep of Figure 10.
var Fig10PCTs = []int{1, 2, 3, 4, 6, 8}

// Fig11PCTs extends the sweep for the geometric-mean study of Figure 11.
var Fig11PCTs = []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 18, 20}

// PCTSweep holds one simulation per (benchmark, PCT): the shared data
// behind Figures 8, 9, 10 and 11.
type PCTSweep struct {
	PCTs    []int
	Benches []string
	// Results maps bench -> PCT -> result.
	Results map[string]map[int]*sim.Result
}

// RunPCTSweep simulates every selected benchmark at every PCT value.
func RunPCTSweep(o Options, pcts []int) (*PCTSweep, error) {
	o = o.normalize()
	if len(pcts) == 0 {
		pcts = Fig8PCTs
	}
	var jobs []job
	for _, bench := range o.Benchmarks {
		for _, pct := range pcts {
			cfg := o.baseConfig()
			cfg.Protocol.PCT = pct
			// RAT starts at PCT, so the ladder ceiling must keep up when
			// the sweep passes the default RATmax of 16 (Figure 11 sweeps
			// PCT to 20).
			if cfg.Protocol.RATMax < pct {
				cfg.Protocol.RATMax = pct
			}
			jobs = append(jobs, job{bench: bench, variant: fmt.Sprintf("pct%d", pct), cfg: cfg})
		}
	}
	raw, err := o.runJobs(jobs)
	if err != nil {
		return nil, err
	}
	sw := &PCTSweep{PCTs: pcts, Benches: o.Benchmarks, Results: map[string]map[int]*sim.Result{}}
	for bench, byVariant := range raw {
		m := make(map[int]*sim.Result, len(byVariant))
		for _, pct := range pcts {
			m[pct] = byVariant[fmt.Sprintf("pct%d", pct)]
		}
		sw.Results[bench] = m
	}
	return sw, nil
}

// at returns the result for (bench, pct), panicking on absent entries
// (which would indicate a bug in the sweep bookkeeping).
func (s *PCTSweep) at(bench string, pct int) *sim.Result {
	r := s.Results[bench][pct]
	if r == nil {
		panic(fmt.Sprintf("experiments: missing sweep point %s/pct%d", bench, pct))
	}
	return r
}

// baseline returns the PCT used as the normalization reference (the
// smallest swept value; 1 reproduces the paper).
func (s *PCTSweep) baseline() int {
	b := s.PCTs[0]
	for _, p := range s.PCTs {
		if p < b {
			b = p
		}
	}
	return b
}

// energyShares splits one run's energy into the Figure 8 components,
// normalized against the same benchmark's baseline total.
func energyShares(r, base *sim.Result) []float64 {
	t := base.Energy.Total()
	if t == 0 {
		return make([]float64, 6)
	}
	e := r.Energy
	return []float64{e.L1I / t, e.L1D / t, e.L2 / t, e.Directory / t, e.Router / t, e.Link / t}
}

// timeShares splits one run's completion-time breakdown into the Figure 9
// components, normalized against the benchmark's baseline total.
func timeShares(r, base *sim.Result) []float64 {
	t := base.Time.Total()
	if t == 0 {
		return make([]float64, 6)
	}
	b := r.Time
	return []float64{b.Compute / t, b.L1ToL2 / t, b.L2Waiting / t, b.L2Sharers / t, b.OffChip / t, b.Sync / t}
}

// RenderFig8 prints the Figure 8 energy breakdown: for every benchmark and
// PCT, the six energy components normalized to the benchmark's total at the
// baseline PCT, followed by the cross-benchmark average.
func (s *PCTSweep) RenderFig8(w io.Writer) error {
	t := report.NewTable(
		"Figure 8: dynamic energy breakdown vs PCT (normalized to PCT 1 total per benchmark)",
		"benchmark", "pct", "L1-I", "L1-D", "L2", "dir", "router", "link", "total")
	base := s.baseline()
	avg := make(map[int][]float64, len(s.PCTs))
	for _, bench := range s.Benches {
		for _, pct := range s.PCTs {
			shares := energyShares(s.at(bench, pct), s.at(bench, base))
			total := 0.0
			for _, v := range shares {
				total += v
			}
			t.AddRowValues(labelOf(bench), pct,
				shares[0], shares[1], shares[2], shares[3], shares[4], shares[5], total)
			if avg[pct] == nil {
				avg[pct] = make([]float64, 7)
			}
			for i, v := range shares {
				avg[pct][i] += v
			}
			avg[pct][6] += total
		}
	}
	n := float64(len(s.Benches))
	for _, pct := range s.PCTs {
		a := avg[pct]
		t.AddRowValues("AVERAGE", pct, a[0]/n, a[1]/n, a[2]/n, a[3]/n, a[4]/n, a[5]/n, a[6]/n)
	}
	return t.Write(w)
}

// RenderFig9 prints the Figure 9 completion-time breakdown, normalized like
// Figure 8.
func (s *PCTSweep) RenderFig9(w io.Writer) error {
	t := report.NewTable(
		"Figure 9: completion time breakdown vs PCT (normalized to PCT 1 total per benchmark)",
		"benchmark", "pct", "compute", "L1-L2", "L2-wait", "L2-sharers", "off-chip", "sync", "total")
	base := s.baseline()
	avg := make(map[int][]float64, len(s.PCTs))
	for _, bench := range s.Benches {
		for _, pct := range s.PCTs {
			shares := timeShares(s.at(bench, pct), s.at(bench, base))
			total := 0.0
			for _, v := range shares {
				total += v
			}
			t.AddRowValues(labelOf(bench), pct,
				shares[0], shares[1], shares[2], shares[3], shares[4], shares[5], total)
			if avg[pct] == nil {
				avg[pct] = make([]float64, 7)
			}
			for i, v := range shares {
				avg[pct][i] += v
			}
			avg[pct][6] += total
		}
	}
	n := float64(len(s.Benches))
	for _, pct := range s.PCTs {
		a := avg[pct]
		t.AddRowValues("AVERAGE", pct, a[0]/n, a[1]/n, a[2]/n, a[3]/n, a[4]/n, a[5]/n, a[6]/n)
	}
	return t.Write(w)
}

// RenderFig10 prints the Figure 10 L1-D miss-rate and miss-type breakdown.
func (s *PCTSweep) RenderFig10(w io.Writer) error {
	t := report.NewTable(
		"Figure 10: L1-D miss rate (%) and miss-type breakdown vs PCT",
		"benchmark", "pct", "cold", "capacity", "upgrade", "sharing", "word", "total%")
	for _, bench := range s.Benches {
		for _, pct := range s.PCTs {
			r := s.at(bench, pct)
			t.AddRowValues(labelOf(bench), pct,
				r.L1D.RateOf(stats.MissCold),
				r.L1D.RateOf(stats.MissCapacity),
				r.L1D.RateOf(stats.MissUpgrade),
				r.L1D.RateOf(stats.MissSharing),
				r.L1D.RateOf(stats.MissWord),
				r.L1D.Rate())
		}
	}
	return t.Write(w)
}

// Fig11Point is one PCT of the Figure 11 geometric-mean study.
type Fig11Point struct {
	PCT        int
	Completion float64 // geomean completion time, normalized to baseline
	Energy     float64 // geomean energy, normalized to baseline
}

// Fig11 reduces the sweep to the Figure 11 geometric means and reports the
// PCT selected the way Section 5.1.3 does (the completion-time/energy sweet
// spot).
type Fig11Result struct {
	Points []Fig11Point
	// BestPCT is the static threshold choice of Section 5.1.3: the valley
	// of completion + energy is typically flat (the paper reads "constant
	// completion time till a PCT of 4" off it), so the smallest PCT within
	// half a percent of the minimum is selected.
	BestPCT int
}

// Fig11 computes the geometric means over the sweep's benchmarks.
func (s *PCTSweep) Fig11() *Fig11Result {
	base := s.baseline()
	out := &Fig11Result{}
	for _, pct := range s.PCTs {
		var times, energies []float64
		for _, bench := range s.Benches {
			b := s.at(bench, base)
			r := s.at(bench, pct)
			if bt := b.Time.Total(); bt > 0 {
				times = append(times, r.Time.Total()/bt)
			}
			if be := b.Energy.Total(); be > 0 {
				energies = append(energies, r.Energy.Total()/be)
			}
		}
		p := Fig11Point{PCT: pct, Completion: stats.GeoMean(times), Energy: stats.GeoMean(energies)}
		out.Points = append(out.Points, p)
	}
	sort.Slice(out.Points, func(i, j int) bool { return out.Points[i].PCT < out.Points[j].PCT })
	minSum := 0.0
	for i, p := range out.Points {
		if sum := p.Completion + p.Energy; i == 0 || sum < minSum {
			minSum = sum
		}
	}
	for _, p := range out.Points {
		if p.Completion+p.Energy <= minSum*1.005 {
			out.BestPCT = p.PCT
			break
		}
	}
	return out
}

// Render prints the Figure 11 series plus the selected static PCT.
func (f *Fig11Result) Render(w io.Writer) error {
	t := report.NewTable(
		"Figure 11: geometric means vs PCT (normalized to PCT 1)",
		"pct", "completion", "energy")
	for _, p := range f.Points {
		t.AddRowValues(p.PCT, p.Completion, p.Energy)
	}
	if err := t.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "selected static PCT: %d (paper: 4; 15%% completion, 25%% energy improvement)\n", f.BestPCT)
	return err
}

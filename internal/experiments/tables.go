package experiments

import (
	"fmt"
	"io"

	"lacc/internal/core"
	"lacc/internal/mem"
	"lacc/internal/report"
	"lacc/internal/sim"
	"lacc/internal/workloads"
)

// RenderTable1 prints the architectural parameters (Table 1) of a machine
// configuration.
func RenderTable1(cfg sim.Config, w io.Writer) error {
	t := report.NewTable("Table 1: architectural parameters", "parameter", "value")
	add := func(k, v string) { t.AddRow(k, v) }
	add("Number of Cores", fmt.Sprintf("%d @ 1 GHz", cfg.Cores))
	add("Compute Pipeline per Core", "In-Order, Single-Issue")
	add("Physical Address Length", "48 bits")
	add("L1-I Cache per core", fmt.Sprintf("%d KB, %d-way Assoc., %d cycle", cfg.L1ISizeKB, cfg.L1IWays, cfg.L1ILatency))
	add("L1-D Cache per core", fmt.Sprintf("%d KB, %d-way Assoc., %d cycle", cfg.L1DSizeKB, cfg.L1DWays, cfg.L1DLatency))
	add("L2 Cache per core", fmt.Sprintf("%d KB, %d-way Assoc., %d cycle, Inclusive, R-NUCA", cfg.L2SizeKB, cfg.L2Ways, cfg.L2Latency))
	add("Cache Line Size", fmt.Sprintf("%d bytes", mem.LineBytes))
	add("Directory Protocol", fmt.Sprintf("Invalidation-based MESI, ACKwise%d", cfg.AckwisePointers))
	add("Num. of Memory Controllers", fmt.Sprint(cfg.MemControllers))
	add("DRAM Bandwidth", fmt.Sprintf("%.0f GBps per Controller", cfg.DRAMBytesPerCycle))
	add("DRAM Latency", fmt.Sprintf("%d ns", cfg.DRAMLatencyCycles))
	add("On-Chip Network", fmt.Sprintf("Electrical 2-D Mesh (%dx%d) with XY Routing", cfg.MeshWidth, cfg.Cores/cfg.MeshWidth))
	add("Hop Latency", fmt.Sprintf("%d cycles (1-router, 1-link)", cfg.HopLatency))
	add("Flit Width", "64 bits")
	add("Cache Line Length", "8 flits (512 bits)")
	add("Private Caching Threshold", fmt.Sprintf("PCT = %d", cfg.Protocol.PCT))
	add("Max Remote Access Threshold", fmt.Sprintf("RATmax = %d", cfg.Protocol.RATMax))
	add("Number of RAT Levels", fmt.Sprintf("nRATlevels = %d", cfg.Protocol.NRATLevels))
	classifier := fmt.Sprintf("Limited%d", cfg.ClassifierK)
	if cfg.ClassifierK <= 0 || cfg.ClassifierK >= cfg.Cores {
		classifier = "Complete"
	}
	add("Classifier", classifier)
	return t.Write(w)
}

// RenderTable2 prints the benchmark catalog (Table 2) with both the paper's
// problem sizes and this reproduction's scaled defaults.
func RenderTable2(w io.Writer) error {
	t := report.NewTable("Table 2: parallel benchmarks and problem sizes",
		"suite", "benchmark", "paper size", "reproduction size (scale=1)")
	for _, wl := range workloads.All() {
		t.AddRow(wl.Suite, wl.Name, wl.PaperSize, wl.DefaultSize)
	}
	return t.Write(w)
}

// StorageResult reproduces the Section 3.6 storage-overhead arithmetic.
type StorageResult struct {
	Cores      int
	DirEntries int // directory entries per core (one per L2 line)

	// Bits per directory entry.
	Limited3Bits int
	CompleteBits int
	AckwiseBits  int
	FullMapBits  int

	// Storage per core in KB.
	L1TagKB    float64 // utilization bits in the L1-I/L1-D tag arrays
	Limited3KB float64
	CompleteKB float64
	AckwiseKB  float64
	FullMapKB  float64

	// Overheads relative to the baseline ACKwise system, counting the L1-I,
	// L1-D and L2 data arrays as Section 3.6 does.
	Limited3OverheadPct float64
	CompleteOverheadPct float64

	// LimitedBeatsFullMap is the paper's headline claim: ACKwise4 +
	// Limited3 classifier needs less storage than a full-map directory.
	LimitedBeatsFullMap bool
}

// Storage computes the overhead numbers for a machine configuration.
func Storage(cfg sim.Config) StorageResult {
	p := cfg.Protocol
	entries := cfg.L2SizeKB * 1024 / mem.LineBytes
	idBits := bitsForCores(cfg.Cores)

	r := StorageResult{
		Cores:        cfg.Cores,
		DirEntries:   entries,
		Limited3Bits: core.StorageBits(cfg.Cores, 3, p),
		CompleteBits: core.StorageBits(cfg.Cores, 0, p),
		AckwiseBits:  cfg.AckwisePointers * idBits,
		FullMapBits:  cfg.Cores,
	}
	toKB := func(bitsPerEntry int) float64 {
		return float64(bitsPerEntry*entries) / 8 / 1024
	}
	r.Limited3KB = toKB(r.Limited3Bits)
	r.CompleteKB = toKB(r.CompleteBits)
	r.AckwiseKB = toKB(r.AckwiseBits)
	r.FullMapKB = toKB(r.FullMapBits)

	// 2-bit private utilization counters in every L1 tag (PCT up to 4).
	l1Lines := (cfg.L1ISizeKB + cfg.L1DSizeKB) * 1024 / mem.LineBytes
	r.L1TagKB = float64(2*l1Lines) / 8 / 1024

	cachesKB := float64(cfg.L1ISizeKB + cfg.L1DSizeKB + cfg.L2SizeKB)
	baselineKB := cachesKB + r.AckwiseKB
	r.Limited3OverheadPct = 100 * (r.Limited3KB + r.L1TagKB) / baselineKB
	r.CompleteOverheadPct = 100 * (r.CompleteKB + r.L1TagKB) / baselineKB
	r.LimitedBeatsFullMap = r.AckwiseKB+r.Limited3KB < r.FullMapKB
	return r
}

func bitsForCores(cores int) int {
	bits := 0
	for v := cores - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// Render prints the Section 3.6 numbers next to the paper's.
func (r StorageResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Section 3.6: storage overhead at %d cores (%d directory entries/core)", r.Cores, r.DirEntries),
		"structure", "bits/entry", "KB/core")
	t.AddRowValues("Limited3 classifier", r.Limited3Bits, r.Limited3KB)
	t.AddRowValues("Complete classifier", r.CompleteBits, r.CompleteKB)
	t.AddRowValues("ACKwise sharer pointers", r.AckwiseBits, r.AckwiseKB)
	t.AddRowValues("Full-map sharer bits", r.FullMapBits, r.FullMapKB)
	t.AddRowValues("L1 tag utilization bits", 2, r.L1TagKB)
	if err := t.Write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"Limited3 overhead vs baseline: %.1f%% (paper: 5.7%%)\n"+
			"Complete overhead vs baseline: %.1f%% (paper: 60%%)\n"+
			"ACKwise+Limited3 < full-map: %v (paper: true)\n",
		r.Limited3OverheadPct, r.CompleteOverheadPct, r.LimitedBeatsFullMap)
	return err
}

package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// quickOptions returns a small machine so cancellation tests finish fast.
func quickOptions(sess *Session) Options {
	return Options{
		Cores:       4,
		MeshWidth:   2,
		Scale:       0.05,
		Parallelism: 1,
		Benchmarks:  []string{"matmul"},
		Session:     sess,
	}
}

// TestContextCancellationAbandonsQueuedJobs cancels a sweep after its first
// simulation and asserts the worker pool abandons everything still queued:
// the sweep reports the context error, and the session retains only the
// simulations that actually ran (abandoned fingerprints are unpinned so a
// later batch can claim them).
func TestContextCancellationAbandonsQueuedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := NewSession()
	o := quickOptions(sess)
	o.Context = ctx

	var once sync.Once
	prev := testJobDone
	testJobDone = func() { once.Do(cancel) }
	defer func() { testJobDone = prev }()

	pcts := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := RunPCTSweep(o, pcts); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunPCTSweep error = %v, want context.Canceled", err)
	}
	st := sess.Stats()
	if st.Entries >= len(pcts) {
		t.Fatalf("session kept %d entries after cancellation, want fewer than %d (queued jobs abandoned)",
			st.Entries, len(pcts))
	}

	// The same sweep with a live context must succeed: abandoned
	// fingerprints were unpinned, so they are re-claimed and simulated now.
	testJobDone = prev
	o.Context = nil
	sw, err := RunPCTSweep(o, pcts)
	if err != nil {
		t.Fatalf("RunPCTSweep after cancellation: %v", err)
	}
	for _, pct := range pcts {
		if sw.Results["matmul"][pct] == nil {
			t.Fatalf("missing result for pct %d after retry", pct)
		}
	}
}

// TestContextAlreadyCanceled runs a sweep under a pre-canceled context: no
// simulation may execute at all.
func TestContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess := NewSession()
	o := quickOptions(sess)
	o.Context = ctx
	if _, err := RunPCTSweep(o, []int{1, 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunPCTSweep error = %v, want context.Canceled", err)
	}
	if st := sess.Stats(); st.Entries != 0 {
		t.Fatalf("session has %d entries after pre-canceled run, want 0", st.Entries)
	}
}

// TestProgressReporting asserts the Progress callback sees the batch total
// up front and a completion call per simulation, and that a fully cached
// batch reports a zero total.
func TestProgressReporting(t *testing.T) {
	sess := NewSession()
	o := quickOptions(sess)

	var mu sync.Mutex
	type call struct{ done, total int }
	var calls []call
	o.Progress = func(done, total int) {
		mu.Lock()
		calls = append(calls, call{done, total})
		mu.Unlock()
	}

	pcts := []int{1, 2, 3}
	if _, err := RunPCTSweep(o, pcts); err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(pcts)+1 {
		t.Fatalf("got %d progress calls, want %d (one initial + one per simulation)", len(calls), len(pcts)+1)
	}
	if calls[0] != (call{0, len(pcts)}) {
		t.Errorf("initial progress call = %+v, want {0 %d}", calls[0], len(pcts))
	}
	if last := calls[len(calls)-1]; last != (call{len(pcts), len(pcts)}) {
		t.Errorf("final progress call = %+v, want {%d %d}", last, len(pcts), len(pcts))
	}

	// A repeat of the same sweep is fully served from the session cache:
	// the batch runs zero simulations and Progress reports (0, 0).
	calls = nil
	if _, err := RunPCTSweep(o, pcts); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0] != (call{0, 0}) {
		t.Errorf("cached-batch progress calls = %+v, want exactly [{0 0}]", calls)
	}
}

// TestSessionStatsCountHitsAndCoalescing pins the SessionStats semantics
// the /v1/stats endpoint exposes: first batch misses, an identical repeat
// hits, and two concurrent batches over the same fingerprints coalesce.
func TestSessionStatsCountHitsAndCoalescing(t *testing.T) {
	sess := NewSession()
	o := quickOptions(sess)
	pcts := []int{1, 2}

	if _, err := RunPCTSweep(o, pcts); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Misses != 2 || st.Hits != 0 || st.Entries != 2 {
		t.Fatalf("after first sweep: %+v, want 2 misses, 0 hits, 2 entries", st)
	}

	if _, err := RunPCTSweep(o, pcts); err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.Misses != 2 || st.Hits != 2 {
		t.Fatalf("after repeat sweep: %+v, want 2 misses, 2 hits", st)
	}

	// Concurrent identical sweeps over a fresh fingerprint set: whichever
	// batch claims a fingerprint first simulates it; every other batch
	// either coalesces on the in-flight entry or hits the finished result.
	o2 := o
	o2.Scale = 0.06
	const batches = 4
	var wg sync.WaitGroup
	wg.Add(batches)
	for i := 0; i < batches; i++ {
		go func() {
			defer wg.Done()
			if _, err := RunPCTSweep(o2, pcts); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	prev := st
	st = sess.Stats()
	newMisses := st.Misses - prev.Misses
	newShared := (st.Hits + st.Coalesced) - (prev.Hits + prev.Coalesced)
	if newMisses != 2 {
		t.Errorf("concurrent batches simulated %d distinct jobs, want 2", newMisses)
	}
	if want := uint64((batches - 1) * 2); newShared != want {
		t.Errorf("concurrent batches shared %d claims, want %d", newShared, want)
	}
}

package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelRunnersStress drives the bounded-parallelism job runner with
// Parallelism > 1 through the two experiments the benchmark-regression
// harness tracks, including two experiments racing each other. Its real
// value is under the race detector (CI runs this package with -race): every
// simulation mutates its own Simulator, and the only shared state is the
// outcome channel, which this test forces into genuine concurrency.
func TestParallelRunnersStress(t *testing.T) {
	o := Options{
		Cores:       8,
		MeshWidth:   4,
		Scale:       0.05,
		Seed:        11,
		Benchmarks:  []string{"radix", "streamcluster"},
		Parallelism: 4,
	}

	var wg sync.WaitGroup
	wg.Add(2)
	var sweepErr, ackErr error
	var sweep *PCTSweep
	var ack *AckwiseComparisonResult
	go func() {
		defer wg.Done()
		sweep, sweepErr = RunPCTSweep(o, []int{1, 4})
	}()
	go func() {
		defer wg.Done()
		ack, ackErr = AckwiseComparison(o, nil)
	}()
	wg.Wait()

	if sweepErr != nil {
		t.Fatalf("RunPCTSweep: %v", sweepErr)
	}
	if ackErr != nil {
		t.Fatalf("AckwiseComparison: %v", ackErr)
	}
	if f := sweep.Fig11(); len(f.Points) != 2 {
		t.Fatalf("sweep returned %d PCT points, want 2", len(f.Points))
	}
	if len(ack.Pointers) != 2 {
		t.Fatalf("ackwise comparison returned %d pointer counts, want 2", len(ack.Pointers))
	}

	// Parallel execution must not perturb results: rerun serially and
	// compare the geomean completion ratios.
	serial := o
	serial.Parallelism = 1
	ack2, err := AckwiseComparison(serial, nil)
	if err != nil {
		t.Fatalf("serial AckwiseComparison: %v", err)
	}
	for _, p := range ack.Pointers {
		if ack.Completion[p] != ack2.Completion[p] {
			t.Errorf("parallelism changed results for p=%d: %v vs %v",
				p, ack.Completion[p], ack2.Completion[p])
		}
	}
}

// TestProgressCallbackLifetime pins the Options.Progress contract under
// real concurrency: callbacks arrive from worker goroutines while the
// batch runs — Parallelism 4, and in the second variant each simulation
// itself runs on the sharded engine (Shards 2) — but never after runJobs
// returns, and every (done, total) pair is coherent. CI runs this package
// with -race, which is where the lifetime guarantee actually gets
// exercised.
func TestProgressCallbackLifetime(t *testing.T) {
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var returned atomic.Bool
			var calls atomic.Int64
			o := Options{
				Cores:       8,
				MeshWidth:   4,
				Scale:       0.05,
				Seed:        13,
				Benchmarks:  []string{"radix", "matmul"},
				Parallelism: 4,
				Shards:      shards,
				Progress: func(done, total int) {
					if returned.Load() {
						t.Error("progress callback delivered after the experiment returned")
					}
					if done < 0 || done > total {
						t.Errorf("incoherent progress (%d, %d)", done, total)
					}
					calls.Add(1)
				},
			}
			if _, err := RunPCTSweep(o, []int{1, 4}); err != nil {
				t.Fatal(err)
			}
			returned.Store(true)
			if calls.Load() == 0 {
				t.Error("no progress callbacks observed")
			}
		})
	}
}

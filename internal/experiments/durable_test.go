package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"lacc/internal/store"
)

// durableOpts is a cheap sweep shape shared by the durable-tier tests.
func durableOpts(sess *Session) Options {
	return Options{
		Cores:       8,
		MeshWidth:   4,
		Scale:       0.05,
		Seed:        7,
		Benchmarks:  []string{"radix", "matmul"},
		Parallelism: 2,
		Session:     sess,
	}
}

// durablePCTs keeps the sweeps small: 2 benches x 2 PCTs = 4 simulations.
var durablePCTs = []int{1, 5}

// openStore opens a result store in a fresh directory for one test.
func openStore(t *testing.T, dir string, opt store.Options) *store.Store {
	t.Helper()
	opt.Dir = dir
	st, err := store.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestartWarmAndByteIdentical is the PR's differential proof in
// miniature: a sweep computed through a durable session, the same sweep
// served from disk by a *different* session over a *reopened* store
// (lacc-serve restarting), and the same sweep computed directly with no
// store at all must all marshal to identical bytes — and the disk-served
// run must execute zero simulations.
func TestRestartWarmAndByteIdentical(t *testing.T) {
	dir := t.TempDir()

	// First life: compute and write behind.
	st := openStore(t, dir, store.Options{})
	sess1 := NewSessionWithStore(st, t.Logf)
	r1, err := RunPCTSweep(durableOpts(sess1), durablePCTs)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sess1.Stats()
	if s1.Simulated != 4 || s1.DiskHits != 0 {
		t.Fatalf("cold run: %+v, want 4 simulated, 0 disk hits", s1)
	}
	if s1.DiskWrites != 4 {
		t.Fatalf("cold run wrote %d results behind, want 4", s1.DiskWrites)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: a restarted process — new store handle, new session,
	// cold memory, warm disk.
	st2 := openStore(t, dir, store.Options{})
	defer st2.Close()
	sess2 := NewSessionWithStore(st2, t.Logf)
	r2, err := RunPCTSweep(durableOpts(sess2), durablePCTs)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sess2.Stats()
	if s2.Simulated != 0 {
		t.Fatalf("restart-warm run simulated %d times, want 0 (%+v)", s2.Simulated, s2)
	}
	if s2.DiskHits != 4 {
		t.Fatalf("restart-warm run took %d disk hits, want 4 (%+v)", s2.DiskHits, s2)
	}

	// Control: the same sweep with no store anywhere near it.
	direct, err := RunPCTSweep(durableOpts(NewSession()), durablePCTs)
	if err != nil {
		t.Fatal(err)
	}

	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	jd, _ := json.Marshal(direct)
	if !bytes.Equal(j1, j2) {
		t.Fatal("disk-served sweep differs from the run that wrote it")
	}
	if !bytes.Equal(j2, jd) {
		t.Fatal("disk-served sweep differs from a direct computation")
	}
}

// TestSchemaChangeInvalidatesStoredResults pins the fingerprint's schema
// guard: records written under a different result schema must be
// invisible, not decoded into the wrong shape.
func TestSchemaChangeInvalidatesStoredResults(t *testing.T) {
	if !strings.Contains(resultSchema, "Result{") {
		t.Fatalf("reflected schema looks wrong: %q", resultSchema)
	}
	// Distinct fingerprint inputs must produce distinct keys.
	o := durableOpts(nil).normalize()
	base := runKey{bench: "radix", scale: o.Scale, seed: o.Seed, cfg: o.baseConfig()}
	other := base
	other.seed++
	if storeKey(base) == storeKey(other) {
		t.Fatal("seed change did not change the store key")
	}
	cfg := base
	cfg.cfg.Protocol.PCT++
	if storeKey(base) == storeKey(cfg) {
		t.Fatal("config change did not change the store key")
	}
}

// TestStoreFaultsNeverFailExperiments drives a durable session over a
// filesystem that rejects every write after open: the sweep must succeed
// by recomputation, with the failures visible only as counters.
func TestStoreFaultsNeverFailExperiments(t *testing.T) {
	var failing bool
	ffs := &store.FaultFS{Hook: func(op store.Op, path string) error {
		if failing && op == store.OpWrite {
			return errors.New("injected write error")
		}
		return nil
	}}
	st := openStore(t, t.TempDir(), store.Options{FS: ffs})
	defer st.Close()
	failing = true

	sess := NewSessionWithStore(st, t.Logf)
	if _, err := RunPCTSweep(durableOpts(sess), durablePCTs); err != nil {
		t.Fatalf("experiment failed because its cache did: %v", err)
	}
	s := sess.Stats()
	if s.Simulated != 4 {
		t.Fatalf("simulated %d, want 4 (%+v)", s.Simulated, s)
	}
	if s.DiskWrites != 0 || s.DiskErrors != 4 {
		t.Fatalf("want 0 writes and 4 absorbed errors, got %+v", s)
	}
}

// TestPanicInSimulationBecomesError pins the panic-isolation contract: a
// benchmark whose simulation panics fails its own batch with an error
// (the process survives), the fingerprint is unpinned for retry, and the
// same sweep succeeds once the fault clears.
func TestPanicInSimulationBecomesError(t *testing.T) {
	SetSimFault(func(bench string) {
		if bench == "radix" {
			panic("injected simulation panic")
		}
	})
	defer SetSimFault(nil)

	sess := NewSession()
	_, err := RunPCTSweep(durableOpts(sess), durablePCTs)
	if err == nil {
		t.Fatal("sweep over a panicking benchmark reported success")
	}
	if !strings.Contains(err.Error(), "panic in radix") {
		t.Fatalf("panic not surfaced as a typed error: %v", err)
	}

	// Clear the fault: the same session retries the poisoned fingerprints
	// instead of replaying the failure.
	SetSimFault(nil)
	if _, err := RunPCTSweep(durableOpts(sess), durablePCTs); err != nil {
		t.Fatalf("sweep after fault cleared: %v", err)
	}
}

package experiments

import (
	"io"

	"lacc/internal/report"
	"lacc/internal/stats"
)

// VictimReplicationResult compares the three cache management schemes the
// paper's Section 2.1 discusses on the same R-NUCA + ACKwise substrate:
//
//   - the unmanaged baseline (every miss installs a private line, PCT 1),
//   - Victim Replication (clean L1 victims replicated in the local L2
//     slice, irrespective of reuse — the paper's critique),
//   - the locality-aware adaptive protocol at PCT 4.
type VictimReplicationResult struct {
	Benches []string
	// Geomean ratios normalized to the baseline; lower is better.
	VRCompletion, VREnergy       float64
	AdaptCompletion, AdaptEnergy float64
	// ReplicaHitRate is VR's replica hits per L1-D miss (how often the
	// replicated victims were actually reused).
	ReplicaHitRate float64
}

// VictimReplication runs the three-way comparison.
func VictimReplication(o Options) (*VictimReplicationResult, error) {
	o = o.normalize()
	var jobs []job
	for _, bench := range o.Benchmarks {
		base := o.baseConfig()
		base.Protocol.PCT = 1

		vr := o.baseConfig()
		vr.Protocol.PCT = 1
		vr.VictimReplication = true

		adapt := o.baseConfig()
		adapt.Protocol.PCT = 4

		jobs = append(jobs,
			job{bench: bench, variant: "base", cfg: base},
			job{bench: bench, variant: "vr", cfg: vr},
			job{bench: bench, variant: "adapt", cfg: adapt})
	}
	raw, err := o.runJobs(jobs)
	if err != nil {
		return nil, err
	}
	out := &VictimReplicationResult{Benches: o.Benchmarks}
	var vrT, vrE, adT, adE []float64
	var hits, misses uint64
	for _, bench := range o.Benchmarks {
		b := raw[bench]["base"]
		v := raw[bench]["vr"]
		a := raw[bench]["adapt"]
		if bt := b.Time.Total(); bt > 0 {
			vrT = append(vrT, v.Time.Total()/bt)
			adT = append(adT, a.Time.Total()/bt)
		}
		if be := b.Energy.Total(); be > 0 {
			vrE = append(vrE, v.Energy.Total()/be)
			adE = append(adE, a.Energy.Total()/be)
		}
		hits += v.ReplicaHits
		misses += v.L1D.TotalMisses()
	}
	out.VRCompletion = stats.GeoMean(vrT)
	out.VREnergy = stats.GeoMean(vrE)
	out.AdaptCompletion = stats.GeoMean(adT)
	out.AdaptEnergy = stats.GeoMean(adE)
	if misses > 0 {
		out.ReplicaHitRate = float64(hits) / float64(misses)
	}
	return out, nil
}

// Render prints the three-way comparison.
func (r *VictimReplicationResult) Render(w io.Writer) error {
	t := report.NewTable(
		"Victim Replication vs locality-aware protocol (geomeans normalized to the unmanaged baseline)",
		"scheme", "completion", "energy")
	t.AddRowValues("baseline (PCT 1)", 1.0, 1.0)
	t.AddRowValues("victim replication", r.VRCompletion, r.VREnergy)
	t.AddRowValues("locality-aware (PCT 4)", r.AdaptCompletion, r.AdaptEnergy)
	if err := t.Write(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, "VR replica hits per L1-D miss: "+report.Cell(r.ReplicaHitRate)+"\n")
	return err
}

package experiments

import (
	"strings"
	"testing"
)

func TestStorageScalingReproducesPaperClaim(t *testing.T) {
	r := StorageScaling(nil)
	if len(r.CoreCounts) != 4 {
		t.Fatalf("default core counts = %v", r.CoreCounts)
	}
	// Section 3.6: Complete classifier costs 60% at 64 cores and "over 10x"
	// (1000%) at 1024 cores; Limited3's KB cost stays flat.
	if v := r.CompleteOverhead[64]; v < 55 || v > 65 {
		t.Errorf("Complete overhead at 64 cores = %.1f%%, paper: ~60%%", v)
	}
	// Paper: "over 10x at 1024 cores". Our denominator includes the ACKwise
	// pointers (20 KB at 1024 cores), landing at ~9.5x; against the caches
	// alone it is 10.1x. Accept the band around 10x.
	if v := r.CompleteOverhead[1024]; v < 900 {
		t.Errorf("Complete overhead at 1024 cores = %.1f%%, paper: over 10x", v)
	}
	if r.Limited3KB[64] != r.Limited3KB[256] {
		// The per-entry cost grows only with the core-ID width.
		if diff := r.Limited3KB[256] - r.Limited3KB[64]; diff < 0 || diff > 5 {
			t.Errorf("Limited3 KB grew implausibly: %v", r.Limited3KB)
		}
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1024") {
		t.Fatal("render missing the 1024-core row")
	}
}

func TestPerformanceScaling(t *testing.T) {
	o := Options{Scale: 0.1, Seed: 1, Benchmarks: []string{"streamcluster", "matmul"}}
	r, err := PerformanceScaling(o, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{4, 16} {
		if v := r.Completion[cores]; v <= 0 || v >= 1.2 {
			t.Errorf("%d cores: completion ratio %.3f out of range", cores, v)
		}
		if v := r.Energy[cores]; v >= 1 {
			t.Errorf("%d cores: adaptive energy ratio %.3f did not improve", cores, v)
		}
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cores") {
		t.Fatal("render missing header")
	}
}

func TestWidestDivisor(t *testing.T) {
	cases := map[int]int{1: 1, 4: 2, 16: 4, 36: 6, 64: 8, 100: 10, 12: 3, 7: 1}
	for n, want := range cases {
		if got := widestDivisor(n); got != want {
			t.Errorf("widestDivisor(%d) = %d, want %d", n, got, want)
		}
	}
}

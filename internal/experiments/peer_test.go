package experiments

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"lacc/internal/store"
)

// fakePeers is an in-memory PeerTier: the cluster client's contract
// without its network. Setting garbage serves bytes that cannot decode,
// modeling an incompatible peer the CRC check cannot catch.
type fakePeers struct {
	mu      sync.Mutex
	m       map[store.Key][]byte
	fetches int
	reps    int
	garbage bool
}

func newFakePeers() *fakePeers { return &fakePeers{m: map[store.Key][]byte{}} }

func (f *fakePeers) Fetch(key store.Key) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fetches++
	if f.garbage {
		return []byte("not json"), true
	}
	v, ok := f.m[key]
	return v, ok
}

func (f *fakePeers) Replicate(key store.Key, val []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reps++
	f.m[key] = append([]byte(nil), val...)
}

// TestPeerWarmJoinByteIdentical is the cold-replica contract at the
// session level: a node that computed a sweep replicates every result to
// the tier; a second, completely cold node (empty memory, empty disk)
// joining the same tier serves the identical sweep with zero simulations
// — every claim lands as a peer hit, and the fetched records are warmed
// into its local store for the next restart.
func TestPeerWarmJoinByteIdentical(t *testing.T) {
	peers := newFakePeers()

	sessA := NewSessionWithTiers(nil, peers, t.Logf)
	rA, err := RunPCTSweep(durableOpts(sessA), durablePCTs)
	if err != nil {
		t.Fatal(err)
	}
	if sa := sessA.Stats(); sa.Simulated != 4 || peers.reps != 4 {
		t.Fatalf("computing node: %+v with %d replications, want 4 simulated / 4 replicated", sa, peers.reps)
	}

	stB := openStore(t, t.TempDir(), store.Options{})
	defer stB.Close()
	sessB := NewSessionWithTiers(stB, peers, t.Logf)
	rB, err := RunPCTSweep(durableOpts(sessB), durablePCTs)
	if err != nil {
		t.Fatal(err)
	}
	sb := sessB.Stats()
	if sb.Simulated != 0 || sb.PeerHits != 4 {
		t.Fatalf("cold replica: %+v, want 0 simulated, 4 peer hits", sb)
	}
	if sb.DiskWrites != 4 {
		t.Fatalf("cold replica warmed %d results to disk, want 4 (%+v)", sb.DiskWrites, sb)
	}

	jA, _ := json.Marshal(rA)
	jB, _ := json.Marshal(rB)
	if !bytes.Equal(jA, jB) {
		t.Fatal("peer-served sweep differs from the node that computed it")
	}

	// Third life: restart the replica (new session, same store, peer tier
	// gone) — the warmed records serve the sweep from disk.
	sessC := NewSessionWithStore(stB, t.Logf)
	rC, err := RunPCTSweep(durableOpts(sessC), durablePCTs)
	if err != nil {
		t.Fatal(err)
	}
	if sc := sessC.Stats(); sc.Simulated != 0 || sc.DiskHits != 4 {
		t.Fatalf("restart after warm-join: %+v, want 0 simulated, 4 disk hits", sc)
	}
	jC, _ := json.Marshal(rC)
	if !bytes.Equal(jB, jC) {
		t.Fatal("disk-warmed sweep differs from the peer-served one")
	}
}

// TestDiskTierConsultedBeforePeers pins the tier order: a result already
// on local disk must never cost a network fetch.
func TestDiskTierConsultedBeforePeers(t *testing.T) {
	st := openStore(t, t.TempDir(), store.Options{})
	defer st.Close()
	if _, err := RunPCTSweep(durableOpts(NewSessionWithStore(st, t.Logf)), durablePCTs); err != nil {
		t.Fatal(err)
	}

	peers := newFakePeers()
	sess := NewSessionWithTiers(st, peers, t.Logf)
	if _, err := RunPCTSweep(durableOpts(sess), durablePCTs); err != nil {
		t.Fatal(err)
	}
	if s := sess.Stats(); s.DiskHits != 4 || s.PeerHits != 0 {
		t.Fatalf("stats %+v, want all 4 claims served from disk", s)
	}
	if peers.fetches != 0 {
		t.Fatalf("%d peer fetches for disk-resident results, want 0", peers.fetches)
	}
}

// TestUndecodablePeerResultRecomputes: a peer serving well-checksummed
// nonsense costs a counter and a recomputation, never a failed sweep.
func TestUndecodablePeerResultRecomputes(t *testing.T) {
	peers := newFakePeers()
	peers.garbage = true
	sess := NewSessionWithTiers(nil, peers, t.Logf)
	if _, err := RunPCTSweep(durableOpts(sess), durablePCTs); err != nil {
		t.Fatalf("sweep failed because the peer tier did: %v", err)
	}
	if s := sess.Stats(); s.Simulated != 4 || s.PeerErrors != 4 || s.PeerHits != 0 {
		t.Fatalf("stats %+v, want 4 simulated, 4 absorbed peer errors", s)
	}
}

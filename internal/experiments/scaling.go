package experiments

import (
	"fmt"
	"io"

	"lacc/internal/report"
	"lacc/internal/sim"
	"lacc/internal/stats"
)

// StorageScalingResult evaluates the Section 3.6 storage argument across
// core counts: the Complete classifier's overhead explodes with the number
// of cores ("over 10x at 1024 cores") while Limited3 stays constant.
type StorageScalingResult struct {
	CoreCounts []int
	// Per core count, KB per core and overhead (relative to the baseline
	// ACKwise4 system) for both classifiers.
	Limited3KB       map[int]float64
	CompleteKB       map[int]float64
	Limited3Overhead map[int]float64 // percent
	CompleteOverhead map[int]float64 // percent
}

// StorageScaling computes classifier storage for each core count using the
// Table 1 cache geometry.
func StorageScaling(coreCounts []int) *StorageScalingResult {
	if len(coreCounts) == 0 {
		coreCounts = []int{16, 64, 256, 1024}
	}
	out := &StorageScalingResult{
		CoreCounts:       coreCounts,
		Limited3KB:       map[int]float64{},
		CompleteKB:       map[int]float64{},
		Limited3Overhead: map[int]float64{},
		CompleteOverhead: map[int]float64{},
	}
	for _, cores := range coreCounts {
		cfg := sim.Default()
		cfg.Cores = cores
		r := Storage(cfg)
		out.Limited3KB[cores] = r.Limited3KB
		out.CompleteKB[cores] = r.CompleteKB
		out.Limited3Overhead[cores] = r.Limited3OverheadPct
		out.CompleteOverhead[cores] = r.CompleteOverheadPct
	}
	return out
}

// Render prints the storage-vs-cores table.
func (r *StorageScalingResult) Render(w io.Writer) error {
	t := report.NewTable(
		"Classifier storage vs core count (Section 3.6: Complete is 60% at 64 cores, >10x at 1024)",
		"cores", "Limited3 KB", "Complete KB", "Limited3 %", "Complete %")
	for _, c := range r.CoreCounts {
		t.AddRowValues(c, r.Limited3KB[c], r.CompleteKB[c],
			r.Limited3Overhead[c], r.CompleteOverhead[c])
	}
	return t.Write(w)
}

// PerformanceScalingResult holds the adaptive protocol's improvement over
// the PCT 1 baseline as the machine grows — an extension experiment: the
// paper argues the protocol matters more as on-chip distances grow.
type PerformanceScalingResult struct {
	CoreCounts []int
	Benches    []string
	// Geomean ratios (PCT4 / PCT1) per core count; lower is better.
	Completion map[int]float64
	Energy     map[int]float64
}

// DefaultScalingCores is the machine-size series PerformanceScaling runs
// when no explicit core counts are given.
var DefaultScalingCores = []int{16, 36, 64}

// PerformanceScaling runs baseline and adaptive configurations at each core
// count. Mesh width is the largest divisor <= sqrt(cores).
func PerformanceScaling(o Options, coreCounts []int) (*PerformanceScalingResult, error) {
	o = o.normalize()
	if len(coreCounts) == 0 {
		coreCounts = DefaultScalingCores
	}
	out := &PerformanceScalingResult{
		CoreCounts: coreCounts,
		Benches:    o.Benchmarks,
		Completion: map[int]float64{},
		Energy:     map[int]float64{},
	}
	for _, cores := range coreCounts {
		co := o
		co.Cores = cores
		co.MeshWidth = widestDivisor(cores)
		var jobs []job
		for _, bench := range co.Benchmarks {
			base := co.baseConfig()
			base.Protocol.PCT = 1
			adapt := co.baseConfig()
			adapt.Protocol.PCT = 4
			jobs = append(jobs,
				job{bench: bench, variant: "base", cfg: base},
				job{bench: bench, variant: "adapt", cfg: adapt})
		}
		raw, err := co.runJobs(jobs)
		if err != nil {
			return nil, fmt.Errorf("at %d cores: %w", cores, err)
		}
		var times, energies []float64
		for _, bench := range co.Benchmarks {
			b := raw[bench]["base"]
			a := raw[bench]["adapt"]
			if bt := b.Time.Total(); bt > 0 {
				times = append(times, a.Time.Total()/bt)
			}
			if be := b.Energy.Total(); be > 0 {
				energies = append(energies, a.Energy.Total()/be)
			}
		}
		out.Completion[cores] = stats.GeoMean(times)
		out.Energy[cores] = stats.GeoMean(energies)
	}
	return out, nil
}

// widestDivisor returns the largest divisor of n not exceeding sqrt(n),
// giving the squarest possible mesh.
func widestDivisor(n int) int {
	best := 1
	for w := 1; w*w <= n; w++ {
		if n%w == 0 {
			best = w
		}
	}
	return best
}

// Render prints the scaling series.
func (r *PerformanceScalingResult) Render(w io.Writer) error {
	t := report.NewTable(
		"Adaptive protocol improvement vs core count (PCT 4 normalized to PCT 1)",
		"cores", "completion", "energy")
	for _, c := range r.CoreCounts {
		t.AddRowValues(c, r.Completion[c], r.Energy[c])
	}
	return t.Write(w)
}

package experiments

import (
	"sync"

	"lacc/internal/sim"
	"lacc/internal/store"
)

// runKey fingerprints one simulation: the benchmark, the workload spec
// knobs that shape its trace (cores live inside cfg) and the complete
// machine configuration. sim.Config is a flat comparable struct, so two
// jobs with equal keys are guaranteed to produce identical results — the
// simulator is deterministic — and one run can serve both.
type runKey struct {
	bench string
	scale float64
	seed  uint64
	cfg   sim.Config
}

// runEntry is one memoized simulation. ready is closed once res/err are
// final; concurrent claimants of the same key wait on it instead of
// re-simulating.
type runEntry struct {
	ready chan struct{}
	res   *sim.Result
	err   error
}

// Session carries work-avoidance state across experiment calls: a result
// cache deduplicating identical (bench, cfg) jobs — Figures 8, 10 and 11
// share PCT points, and every experiment shares its baseline points with
// the others — and a pool of reusable Simulators whose arenas amortize
// across jobs. A Session is safe for concurrent use; experiments run
// without one get a private session per call (dedup within the call only).
//
// Results are memoized for the session's lifetime. Sessions are cheap:
// scope one per logical batch (a lacc-bench invocation, a benchmark
// iteration) rather than globally, so memory is bounded and measurements
// stay honest.
type Session struct {
	mu   sync.Mutex
	runs map[runKey]*runEntry

	// store, when non-nil, is the durable tier below the in-memory cache:
	// read-through before simulating, write-behind after publishing. See
	// durable.go.
	store *store.Store
	// peers, when non-nil, is the cluster tier below the durable one:
	// results other nodes already computed, fetched before simulating and
	// replicated to after. See peer.go.
	peers PeerTier
	logf  func(format string, args ...any)

	// Cache-effectiveness counters (see SessionStats).
	hits       uint64
	coalesced  uint64
	misses     uint64
	simulated  uint64
	diskHits   uint64
	diskWrites uint64
	diskErrors uint64
	peerHits   uint64
	peerErrors uint64
}

// PeerTier is the cluster tier a session consults below its durable
// store: a best-effort, remotely replicated result cache. Implemented by
// cluster.Cluster; defined here so the experiments package does not
// import the cluster machinery (or force it on library users).
//
// Both methods must be safe for concurrent use and must degrade rather
// than fail: Fetch reports a miss for every error condition (the caller
// simulates), and Replicate is fire-and-forget.
type PeerTier interface {
	// Fetch returns the stored bytes for key from whichever peer owns it,
	// or ok=false on miss, peer failure, or timeout. Returned bytes must
	// be integrity-checked by the implementation.
	Fetch(key store.Key) (val []byte, ok bool)
	// Replicate asynchronously offers key's bytes to the peers that own
	// it. It must not block the caller on network I/O.
	Replicate(key store.Key, val []byte)
}

// NewSession returns an empty session with no durable tier.
func NewSession() *Session {
	return NewSessionWithStore(nil, nil)
}

// NewSessionWithStore returns an empty session backed by st as its durable
// tier: fingerprints missing from memory are looked up on disk before
// simulating, and freshly simulated results are appended to the store
// after they are published to in-memory waiters. st may be nil (no durable
// tier — identical to NewSession). logf, when non-nil, receives one line
// per absorbed durable-tier failure; nil discards them.
//
// The session never owns the store: several sessions may share one store
// (lacc-serve's flush endpoint replaces the session but keeps the store,
// which is exactly the restart-warm semantics — memory cold, disk warm),
// and closing the store is the caller's job.
func NewSessionWithStore(st *store.Store, logf func(format string, args ...any)) *Session {
	return NewSessionWithTiers(st, nil, logf)
}

// NewSessionWithTiers returns an empty session backed by up to two lower
// tiers: st as the durable tier (as in NewSessionWithStore) and peers as
// the cluster tier below it. A fingerprint missing from memory is looked
// up on disk, then on the peers that own it, and only then simulated;
// fresh and peer-fetched results are written behind to the tiers above
// where they were found. Either tier may be nil.
//
// Like the store, the peer tier is never owned by the session: lacc-serve
// keeps one cluster client across session flushes and closes it at
// shutdown.
func NewSessionWithTiers(st *store.Store, peers PeerTier, logf func(format string, args ...any)) *Session {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Session{runs: map[runKey]*runEntry{}, store: st, peers: peers, logf: logf}
}

// Store returns the session's durable tier, nil when it has none.
func (s *Session) Store() *store.Store { return s.store }

// Peers returns the session's cluster tier, nil when it has none.
func (s *Session) Peers() PeerTier { return s.peers }

// SessionStats is a snapshot of a session's cache-effectiveness counters.
// All counts are claims, i.e. distinct fingerprints a batch resolved
// through the session (duplicates within one batch are folded before the
// session is consulted, so they appear in none of the counters).
type SessionStats struct {
	// Hits counts claims satisfied by an already-completed memoized result
	// (the sweep was served from the cache).
	Hits uint64 `json:"hits"`
	// Coalesced counts claims that joined a simulation still in flight:
	// two concurrent batches asked for the same fingerprint and the second
	// waited for the first instead of simulating again (single-flight).
	Coalesced uint64 `json:"coalesced"`
	// Misses counts claims that created a new entry, i.e. simulations this
	// session actually scheduled. Failed or abandoned runs are unpinned
	// and re-claimed on retry, so a fingerprint can miss more than once.
	Misses uint64 `json:"misses"`
	// Simulated counts simulations actually executed: claims that missed
	// both the memory and the disk tier. With a durable tier, Misses -
	// DiskHits = Simulated (modulo retries); a restart-warm server proves
	// itself by serving a repeated sweep with Simulated still zero.
	Simulated uint64 `json:"simulated"`
	// DiskHits counts claims satisfied by the durable tier (a stored
	// result decoded instead of simulating); DiskWrites counts results
	// appended to it. Both stay zero for sessions without a store.
	DiskHits   uint64 `json:"disk_hits"`
	DiskWrites uint64 `json:"disk_writes"`
	// DiskErrors counts absorbed durable-tier failures (undecodable
	// records, failed appends); each one degraded to recomputation or a
	// lost write-behind, never to a failed experiment.
	DiskErrors uint64 `json:"disk_errors"`
	// PeerHits counts claims satisfied by the cluster tier (a result
	// fetched from a peer instead of simulating); PeerErrors counts
	// absorbed cluster-tier failures (undecodable fetched records). Both
	// stay zero for sessions without a peer tier.
	PeerHits   uint64 `json:"peer_hits"`
	PeerErrors uint64 `json:"peer_errors"`
	// Entries is the number of results currently memoized (in flight or
	// complete).
	Entries int `json:"entries"`
}

// Stats returns a consistent snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{
		Hits:       s.hits,
		Coalesced:  s.coalesced,
		Misses:     s.misses,
		Simulated:  s.simulated,
		DiskHits:   s.diskHits,
		DiskWrites: s.diskWrites,
		DiskErrors: s.diskErrors,
		PeerHits:   s.peerHits,
		PeerErrors: s.peerErrors,
		Entries:    len(s.runs),
	}
}

// simPool recycles Simulators across jobs, sessions and experiment calls.
// Unlike result memoization (which is scoped to a Session so measurements
// stay honest), a pooled simulator carries no results — only allocated
// arenas — and Reset restores it to fresh-construction behavior bit for
// bit (sim's TestResetReproducesFreshSimulator), so sharing the pool
// process-wide is safe and removes the dominant allocation of short
// experiment batches: rebuilding every tile's tag arrays and directory
// tables. sync.Pool keeps the footprint GC-bounded.
var simPool = sync.Pool{}

// claim returns the entry for k, creating it if absent. claimed reports
// whether the caller now owns the entry and must run the simulation and
// close ready; otherwise another batch owns it and the caller just waits.
func (s *Session) claim(k runKey) (e *runEntry, claimed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.runs[k]; ok {
		select {
		case <-e.ready:
			s.hits++
		default:
			s.coalesced++
		}
		return e, false
	}
	s.misses++
	e = &runEntry{ready: make(chan struct{})}
	s.runs[k] = e
	return e, true
}

// forget drops k's entry so a later attempt can retry after a failure.
func (s *Session) forget(k runKey) {
	s.mu.Lock()
	delete(s.runs, k)
	s.mu.Unlock()
}

// getSim pops an idle pooled simulator, or returns nil when the pool is
// empty (the worker then constructs one for its first job).
func (s *Session) getSim() *sim.Simulator {
	x, _ := simPool.Get().(*sim.Simulator)
	return x
}

// putSim returns a simulator to the idle pool.
func (s *Session) putSim(x *sim.Simulator) {
	simPool.Put(x)
}

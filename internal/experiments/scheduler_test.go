package experiments

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lacc/internal/workloads"
)

// TestRunJobsBoundsGoroutines is the regression test for the unbounded
// spawn the old scheduler had: every job used to get its own goroutine
// immediately (plus one generator goroutine per core per job), so a
// 294-job sweep peaked at hundreds of live goroutines. The worker pool
// must keep the process at the pre-sweep count plus at most Parallelism
// workers (small slack for runtime helpers), measured mid-sweep from
// inside the workers.
func TestRunJobsBoundsGoroutines(t *testing.T) {
	const parallelism = 3
	o := Options{
		Cores:       8,
		MeshWidth:   4,
		Scale:       0.05,
		Seed:        31,
		Benchmarks:  []string{"radix", "streamcluster", "matmul"},
		Parallelism: parallelism,
	}
	base := runtime.NumGoroutine()
	var maxLive, jobs int64
	testJobDone = func() {
		atomic.AddInt64(&jobs, 1)
		n := int64(runtime.NumGoroutine())
		for {
			cur := atomic.LoadInt64(&maxLive)
			if n <= cur || atomic.CompareAndSwapInt64(&maxLive, cur, n) {
				break
			}
		}
	}
	defer func() { testJobDone = nil }()

	// 3 benches x 6 PCTs = 18 jobs, far above the worker bound.
	if _, err := RunPCTSweep(o, []int{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if jobs != 18 {
		t.Fatalf("observed %d jobs, want 18", jobs)
	}
	const slack = 4 // runtime/test helpers that may come and go
	if limit := int64(base + parallelism + slack); maxLive > limit {
		t.Fatalf("peak live goroutines %d exceeds bound %d (base %d + %d workers + %d slack)",
			maxLive, limit, base, parallelism, slack)
	}
}

// TestSessionDedupesAcrossExperiments pins the cross-experiment dedup
// contract: sweeps sharing a session re-simulate only the PCT points they
// don't have in common (the Fig8/Fig10/Fig11 situation), and shared points
// resolve to the very same *sim.Result.
func TestSessionDedupesAcrossExperiments(t *testing.T) {
	sess := NewSession()
	o := Options{
		Cores: 8, MeshWidth: 4, Scale: 0.05, Seed: 37,
		Benchmarks: []string{"radix", "streamcluster"},
		Session:    sess,
	}
	var jobs int64
	testJobDone = func() { atomic.AddInt64(&jobs, 1) }
	defer func() { testJobDone = nil }()

	sw1, err := RunPCTSweep(o, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if jobs != 6 {
		t.Fatalf("first sweep executed %d jobs, want 6", jobs)
	}
	sw2, err := RunPCTSweep(o, []int{1, 4, 8}) // only pct8 is new
	if err != nil {
		t.Fatal(err)
	}
	if jobs != 8 {
		t.Fatalf("after overlapping sweep %d jobs executed, want 8 (2 new)", jobs)
	}
	for _, bench := range o.Benchmarks {
		for _, pct := range []int{1, 4} {
			if sw1.Results[bench][pct] != sw2.Results[bench][pct] {
				t.Errorf("%s/pct%d: overlapping sweeps did not share the memoized result", bench, pct)
			}
		}
	}
	// A sessionless run must NOT reuse the memoized results.
	o.Session = nil
	sw3, err := RunPCTSweep(o, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if jobs != 12 {
		t.Fatalf("sessionless sweep executed %d total jobs, want 12", jobs)
	}
	// ...but must still agree numerically: reuse may not change results.
	for _, bench := range o.Benchmarks {
		a, b := sw1.Results[bench][4], sw3.Results[bench][4]
		if a.CompletionCycles != b.CompletionCycles || a.LinkFlits != b.LinkFlits ||
			a.Energy.Total() != b.Energy.Total() {
			t.Errorf("%s: memoized and fresh results diverged: %d/%d flits %d/%d",
				bench, a.CompletionCycles, b.CompletionCycles, a.LinkFlits, b.LinkFlits)
		}
	}
}

// TestIntraBatchDedup checks duplicate fingerprints inside one batch run
// once and fan out to every variant.
func TestIntraBatchDedup(t *testing.T) {
	o := testOptions("radix").normalize()
	var jobs int64
	testJobDone = func() { atomic.AddInt64(&jobs, 1) }
	defer func() { testJobDone = nil }()
	cfg := o.baseConfig()
	raw, err := o.runJobs([]job{
		{bench: "radix", variant: "a", cfg: cfg},
		{bench: "radix", variant: "b", cfg: cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if jobs != 1 {
		t.Fatalf("duplicate jobs executed %d simulations, want 1", jobs)
	}
	if raw["radix"]["a"] != raw["radix"]["b"] {
		t.Fatal("duplicate variants did not share one result")
	}
}

// TestSweepGeneratesEachTraceOnce is the acceptance-criteria counter
// check: a multi-experiment session generates each (bench, spec) trace
// exactly once, however many configuration variants replay it.
func TestSweepGeneratesEachTraceOnce(t *testing.T) {
	sess := NewSession()
	o := Options{
		Cores: 8, MeshWidth: 4, Scale: 0.05, Seed: 4242, // unique spec => cold corpus cache
		Benchmarks: []string{"radix", "streamcluster", "matmul"},
		Session:    sess,
	}
	before := workloads.CorpusBuilds()
	if _, err := RunPCTSweep(o, []int{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPCTSweep(o, []int{1, 4, 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig14(o); err != nil {
		t.Fatal(err)
	}
	if got := workloads.CorpusBuilds() - before; got != uint64(len(o.Benchmarks)) {
		t.Fatalf("three experiments built %d traces, want exactly %d (one per benchmark)",
			got, len(o.Benchmarks))
	}
}

// TestConcurrentBatchSurvivesForeignAbort checks that one batch's failure
// does not poison a concurrent healthy batch sharing the session: the
// healthy batch re-claims keys the failing batch aborted and completes.
func TestConcurrentBatchSurvivesForeignAbort(t *testing.T) {
	sess := NewSession()
	good := Options{
		Cores: 8, MeshWidth: 4, Scale: 0.05, Seed: 53,
		Benchmarks: []string{"radix", "streamcluster"},
		Session:    sess, Parallelism: 2,
	}
	bad := good
	bad.Benchmarks = []string{"radix", "no-such-bench", "streamcluster"}
	// Interleave failing and healthy batches over the same PCT points many
	// times; whichever claims a shared key first, the healthy runs must
	// always succeed.
	for i := 0; i < 10; i++ {
		var wg sync.WaitGroup
		wg.Add(2)
		var goodErr error
		go func() {
			defer wg.Done()
			_, goodErr = RunPCTSweep(good, []int{1, 4})
		}()
		go func() {
			defer wg.Done()
			_, _ = Fig14(bad.normalize()) // fails on the unknown benchmark
		}()
		wg.Wait()
		if goodErr != nil {
			t.Fatalf("round %d: healthy batch failed: %v", i, goodErr)
		}
	}
}

// TestAbortedBatchRetries checks failed batches don't poison the session:
// after an error the entries are forgotten, and nothing leaks into later
// successful runs.
func TestAbortedBatchRetries(t *testing.T) {
	sess := NewSession()
	o := testOptions("radix").normalize()
	o.Session = sess
	cfg := o.baseConfig()
	_, err := o.runJobs([]job{
		{bench: "no-such-bench", variant: "x", cfg: cfg},
		{bench: "radix", variant: "ok", cfg: cfg},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("err = %v, want unknown benchmark", err)
	}
	// The failing key must have been forgotten; a corrected batch runs.
	raw, err := o.runJobs([]job{{bench: "radix", variant: "ok", cfg: cfg}})
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if raw["radix"]["ok"] == nil {
		t.Fatal("retry returned no result")
	}
}

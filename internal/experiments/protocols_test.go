package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lacc/internal/sim"
)

func TestProtocolComparisonShape(t *testing.T) {
	p, err := ProtocolComparison(testOptions("streamcluster", "matmul"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Protocols) != 6 || p.Protocols[0] != sim.ProtocolMESI {
		t.Fatalf("default protocols = %v, want six-way MESI-first comparison", p.Protocols)
	}
	if len(p.Results) != 2 {
		t.Fatalf("covered %d benchmarks, want 2", len(p.Results))
	}
	for bench, byKind := range p.Results {
		for kind, r := range byKind {
			if r == nil || r.DataAccesses == 0 {
				t.Fatalf("%s/%s: empty result", bench, kind)
			}
			if r.Protocol != string(kind) {
				t.Fatalf("%s/%s: result tagged %q", bench, kind, r.Protocol)
			}
		}
		// The same workload build must produce the same access stream under
		// every protocol (only the protocol walk differs).
		n := byKind[sim.ProtocolMESI].DataAccesses
		for kind, r := range byKind {
			if r.DataAccesses != n {
				t.Fatalf("%s/%s: %d accesses vs MESI's %d", bench, kind, r.DataAccesses, n)
			}
		}
	}
	// The reference normalizes to exactly 1.
	for _, m := range []map[sim.ProtocolKind]float64{p.Completion, p.Energy, p.Traffic} {
		if m[sim.ProtocolMESI] != 1 {
			t.Fatalf("reference geomean = %v, want 1", m[sim.ProtocolMESI])
		}
	}
	// On this protocol-sensitive subset the adaptive protocol must beat the
	// MESI baseline on completion time (the paper's headline claim).
	if p.Completion[sim.ProtocolAdaptive] >= 1 {
		t.Fatalf("adaptive completion geomean = %.3f, want < 1 vs MESI",
			p.Completion[sim.ProtocolAdaptive])
	}
	// Each baseline's own headline signature, visible in the comparison:
	// DLS runs without a single invalidation (no directory, no private
	// copies — every access is a remote word access); Neat keeps MESI's
	// access mix while self-invalidating at synchronization points under
	// one-pointer metadata; the hybrid switches per line between MESI
	// invalidations and Dragon update pushes.
	for bench, byKind := range p.Results {
		dls := byKind[sim.ProtocolDLS]
		if dls.Invalidations != 0 || dls.WordReads+dls.WordWrites != dls.DataAccesses {
			t.Fatalf("%s/dls: invals=%d words=%d accesses=%d, want inval-free all-remote run",
				bench, dls.Invalidations, dls.WordReads+dls.WordWrites, dls.DataAccesses)
		}
		neat := byKind[sim.ProtocolNeat]
		if neat.SelfInvalidations == 0 {
			t.Fatalf("%s/neat: no self-invalidations recorded", bench)
		}
		if neat.WordReads+neat.WordWrites+neat.UpdateWrites != 0 {
			t.Fatalf("%s/neat: unexpected word/update traffic", bench)
		}
		hybrid := byKind[sim.ProtocolHybrid]
		if hybrid.UpdateWrites == 0 {
			t.Fatalf("%s/hybrid: no update pushes recorded", bench)
		}
	}

	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mesi", "dragon", "dls", "neat", "hybrid", "adaptive", "geomeans"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestProtocolComparisonExplicitKinds(t *testing.T) {
	p, err := ProtocolComparison(testOptions("streamcluster"),
		[]sim.ProtocolKind{sim.ProtocolAdaptive, sim.ProtocolDragon})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Protocols) != 2 || p.Protocols[0] != sim.ProtocolAdaptive {
		t.Fatalf("protocols = %v, want explicit [adaptive dragon]", p.Protocols)
	}
	if p.Completion[sim.ProtocolAdaptive] != 1 {
		t.Fatalf("reference (adaptive) geomean = %v, want 1", p.Completion[sim.ProtocolAdaptive])
	}
	if p.Results["streamcluster"][sim.ProtocolDragon].UpdateWrites == 0 {
		t.Fatal("dragon run recorded no update writes on streamcluster")
	}
}

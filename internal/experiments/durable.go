package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"

	"lacc/internal/sim"
	"lacc/internal/store"
)

// The durable tier: a Session constructed with NewSessionWithStore checks
// a crash-safe on-disk result store between its in-memory cache and the
// simulator (read-through) and appends every freshly simulated result to
// it after publication (write-behind). The store is a cache below a cache:
// all of its failure modes — open errors, torn segments, checksum
// mismatches, full disks — degrade to recomputation and are never
// surfaced to experiment callers.
//
// Single-flight is preserved across tiers because only the goroutine that
// claimed a fingerprint's entry consults the disk; everyone else waits on
// the entry exactly as before.

// fingerprint is the canonical-JSON identity hashed into a store key. It
// carries everything runKey carries plus two guards: a format tag (bump to
// orphan every existing record) and the reflected shape of sim.Result, so
// any change to the result schema — a new field, a renamed one, a type
// change — automatically invalidates stored records instead of decoding
// them into the wrong shape.
type fingerprint struct {
	Format string     `json:"format"`
	Bench  string     `json:"bench"`
	Scale  float64    `json:"scale"`
	Seed   uint64     `json:"seed"`
	Config sim.Config `json:"config"`
	Schema string     `json:"schema"`
}

// fingerprintFormat versions the key derivation itself.
const fingerprintFormat = "lacc-result-v1"

// resultSchema is the reflected shape of sim.Result, computed once.
var resultSchema = schemaOf(reflect.TypeOf(sim.Result{}))

// schemaOf renders a type's complete field structure as a deterministic
// string: struct field names and types in declaration order, recursively.
func schemaOf(t reflect.Type) string {
	switch t.Kind() {
	case reflect.Struct:
		var b strings.Builder
		b.WriteString(t.Name())
		b.WriteByte('{')
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			b.WriteString(f.Name)
			b.WriteByte(':')
			b.WriteString(schemaOf(f.Type))
			b.WriteByte(';')
		}
		b.WriteByte('}')
		return b.String()
	case reflect.Pointer, reflect.Slice, reflect.Array:
		return t.Kind().String() + "[" + schemaOf(t.Elem()) + "]"
	case reflect.Map:
		return "map[" + schemaOf(t.Key()) + "]" + schemaOf(t.Elem())
	default:
		return t.Kind().String()
	}
}

// storeKey derives k's content address: SHA-256 over the canonical JSON of
// its fingerprint.
func storeKey(k runKey) store.Key {
	b, err := json.Marshal(fingerprint{
		Format: fingerprintFormat,
		Bench:  k.bench,
		Scale:  k.scale,
		Seed:   k.seed,
		Config: k.cfg,
		Schema: resultSchema,
	})
	if err != nil {
		// sim.Config is a flat struct of scalars; marshaling cannot fail
		// unless the type itself grows something unmarshalable, which the
		// durable round-trip test would catch immediately.
		panic(fmt.Sprintf("experiments: fingerprint marshal: %v", err))
	}
	return store.Key(sha256.Sum256(b))
}

// encodeResult renders a result as canonical JSON — the same form
// lacc-serve's encoder produces (no HTML escaping, no indent), so bytes
// served from disk are byte-identical to bytes computed directly.
func encodeResult(r *sim.Result) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n")), nil
}

// decodeResult inverts encodeResult.
func decodeResult(b []byte) (*sim.Result, error) {
	r := new(sim.Result)
	if err := json.Unmarshal(b, r); err != nil {
		return nil, err
	}
	return r, nil
}

// loadStored consults the disk tier for k. Only the goroutine owning k's
// claimed entry calls this, so single-flight holds across tiers. Every
// failure — no store, miss, undecodable record — degrades to "not found"
// and the caller simulates.
func (s *Session) loadStored(k runKey) (*sim.Result, bool) {
	if s.store == nil {
		return nil, false
	}
	val, ok := s.store.Get(storeKey(k))
	if !ok {
		return nil, false
	}
	res, err := decodeResult(val)
	if err != nil {
		// The record passed its checksum but does not parse — only possible
		// across a schema change the fingerprint failed to capture. Recompute.
		s.noteDiskError()
		s.logf("experiments: stored result for %s undecodable (%v); recomputing", k.bench, err)
		return nil, false
	}
	s.mu.Lock()
	s.diskHits++
	s.mu.Unlock()
	return res, true
}

// storeResult writes a freshly simulated result behind to the lower
// tiers: appended to the disk tier and offered to the peers that own its
// key. Called after the in-memory entry is published, so waiters never
// block on disk or network I/O (peer replication is additionally
// asynchronous inside the cluster client). Errors are absorbed: a failed
// write costs future disk or peer hits for this fingerprint, nothing
// else.
func (s *Session) storeResult(k runKey, res *sim.Result) {
	if s.store == nil && s.peers == nil {
		return
	}
	b, err := encodeResult(res)
	if err != nil {
		s.noteDiskError()
		s.logf("experiments: encoding result for %s: %v", k.bench, err)
		return
	}
	key := storeKey(k)
	if s.store != nil {
		if err := s.store.Put(key, b); err != nil {
			s.noteDiskError()
			s.logf("experiments: persisting result for %s: %v", k.bench, err)
		} else {
			s.mu.Lock()
			s.diskWrites++
			s.mu.Unlock()
		}
	}
	if s.peers != nil {
		s.peers.Replicate(key, b)
	}
}

// noteDiskError counts one absorbed durable-tier failure.
func (s *Session) noteDiskError() {
	s.mu.Lock()
	s.diskErrors++
	s.mu.Unlock()
}

// noteSimulated counts one simulation actually executed (as opposed to
// served from memory or disk).
func (s *Session) noteSimulated() {
	s.mu.Lock()
	s.simulated++
	s.mu.Unlock()
}

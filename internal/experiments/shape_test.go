package experiments

// Shape tests: each test pins a behaviour the paper's evaluation depends
// on, at a reduced machine size so the suite stays fast. These are the
// regression harness for the workload kernels — if a kernel edit destroys
// its locality signature, the corresponding figure breaks here first.

import (
	"testing"

	"lacc/internal/sim"
	"lacc/internal/stats"
	"lacc/internal/workloads"
)

// shapeRun simulates one benchmark at one PCT on the reduced machine.
func shapeRun(t *testing.T, bench string, pct int) *sim.Result {
	t.Helper()
	cfg := sim.Default()
	cfg.Cores = 16
	cfg.MeshWidth = 4
	cfg.MemControllers = 2
	cfg.Protocol.PCT = pct
	if cfg.Protocol.RATMax < pct {
		cfg.Protocol.RATMax = pct
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.MustByName(bench)
	res, err := s.Run(w.Streams(workloads.Spec{Cores: 16, Scale: 0.25, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWaterSpAndSusanAreLowMiss pins the paper's low-miss group: water-sp
// and susan run at under 1% L1-D miss rate and their energy is
// L1-dominated (the paper reports ~0.2% and ~95% L1 energy; our scaled
// kernels and constant-based energy model land near 0.7% and ~75%). These
// two run at full problem scale — at reduced scale the cold misses have
// not yet amortized.
func TestWaterSpAndSusanAreLowMiss(t *testing.T) {
	cfg := sim.Default()
	cfg.Cores = 16
	cfg.MeshWidth = 4
	cfg.MemControllers = 2
	for _, bench := range []string{"water-sp", "susan"} {
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w := workloads.MustByName(bench)
		res, err := s.Run(w.Streams(workloads.Spec{Cores: 16, Scale: 1, Seed: 1}))
		if err != nil {
			t.Fatal(err)
		}
		if rate := res.L1DMissRate(); rate > 1.0 {
			t.Errorf("%s: miss rate %.2f%%, want < 1%%", bench, rate)
		}
		l1 := res.Energy.L1I + res.Energy.L1D
		if frac := l1 / res.Energy.Total(); frac < 0.70 {
			t.Errorf("%s: L1 energy fraction %.2f, want >= 0.70", bench, frac)
		}
	}
}

// TestCannealAndConcompAreHighMiss pins the other end of Figure 10: the
// graph/annealing benchmarks miss heavily under the baseline.
func TestCannealAndConcompAreHighMiss(t *testing.T) {
	for _, bench := range []string{"canneal", "concomp"} {
		res := shapeRun(t, bench, 1)
		if rate := res.L1DMissRate(); rate < 10 {
			t.Errorf("%s: miss rate %.2f%%, want >= 10%% (low-locality benchmark)", bench, rate)
		}
	}
}

// TestMatmulMissRateDropsAtPCT2 pins the Figure 10 matmul observation: the
// single-use B-column lines stop polluting the L1 once they are demoted,
// so the overall miss rate falls substantially from PCT 1 to PCT 2.
func TestMatmulMissRateDropsAtPCT2(t *testing.T) {
	base := shapeRun(t, "matmul", 1)
	adapt := shapeRun(t, "matmul", 2)
	if adapt.L1DMissRate() > 0.8*base.L1DMissRate() {
		t.Errorf("matmul miss rate %.2f%% -> %.2f%%: expected >= 20%% drop",
			base.L1DMissRate(), adapt.L1DMissRate())
	}
	if adapt.L1D.Misses[stats.MissWord] == 0 {
		t.Error("matmul at PCT 2 produced no word misses")
	}
}

// TestConcompConvertsCapacityToWord pins §5.1.2's concomp observation:
// capacity misses become an almost equal number of word misses (total miss
// rate roughly unchanged) yet completion improves.
func TestConcompConvertsCapacityToWord(t *testing.T) {
	base := shapeRun(t, "concomp", 1)
	adapt := shapeRun(t, "concomp", 4)
	baseCap := base.L1D.Misses[stats.MissCapacity] + base.L1D.Misses[stats.MissCold]
	adaptWord := adapt.L1D.Misses[stats.MissWord]
	if adaptWord == 0 {
		t.Fatal("no word misses at PCT 4")
	}
	// Word misses replace a large share of former capacity/cold misses.
	if float64(adaptWord) < 0.3*float64(baseCap) {
		t.Errorf("word misses %d vs baseline capacity+cold %d: conversion too weak",
			adaptWord, baseCap)
	}
	if adapt.CompletionCycles >= base.CompletionCycles {
		t.Errorf("concomp completion did not improve: %d -> %d",
			base.CompletionCycles, adapt.CompletionCycles)
	}
}

// TestStreamclusterInvalidationsCollapse pins the streamcluster mechanism:
// at PCT 4 the utilization-1 ping-pong writes become remote word writes,
// collapsing invalidation counts.
func TestStreamclusterInvalidationsCollapse(t *testing.T) {
	base := shapeRun(t, "streamcluster", 1)
	adapt := shapeRun(t, "streamcluster", 4)
	if adapt.Invalidations > base.Invalidations/2 {
		t.Errorf("invalidations %d -> %d: expected at least a 2x reduction",
			base.Invalidations, adapt.Invalidations)
	}
	if adapt.WordWrites == 0 {
		t.Error("no remote word writes at PCT 4")
	}
}

// TestBaselineInvalidationUtilizationIsLow pins Figure 1 for the sharing
// benchmarks: most invalidated lines saw fewer than 4 accesses.
func TestBaselineInvalidationUtilizationIsLow(t *testing.T) {
	for _, bench := range []string{"streamcluster", "canneal", "dijkstra-ss"} {
		res := shapeRun(t, bench, 1)
		h := res.InvalidationUtil
		if h.Total() == 0 {
			t.Fatalf("%s: no invalidations recorded", bench)
		}
		p := h.Percent()
		if low := p[0] + p[1]; low < 60 {
			t.Errorf("%s: %.1f%% of invalidations below utilization 4, want >= 60%%", bench, low)
		}
	}
}

// TestBodytrackOneWayPenalty pins the Figure 14 mechanism: bodytrack's
// refinement phase re-reads lines demoted during sampling, so the
// promotion-free protocol pays a visible completion-time penalty.
func TestBodytrackOneWayPenalty(t *testing.T) {
	cfg := sim.Default()
	cfg.Cores = 16
	cfg.MeshWidth = 4
	cfg.MemControllers = 2
	spec := workloads.Spec{Cores: 16, Scale: 0.25, Seed: 1}
	w := workloads.MustByName("bodytrack")

	runWith := func(oneWay bool) *sim.Result {
		c := cfg
		c.Protocol.OneWay = oneWay
		s, err := sim.New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(w.Streams(spec))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	two := runWith(false)
	one := runWith(true)
	ratio := float64(one.CompletionCycles) / float64(two.CompletionCycles)
	if ratio < 1.1 {
		t.Errorf("Adapt1-way/Adapt2-way completion ratio %.3f, want >= 1.1", ratio)
	}
	if two.Promotions == 0 {
		t.Error("two-way protocol never promoted on bodytrack")
	}
}

// TestEnergyOrderings pins the energy-model orderings the figures rely on
// (link > router in aggregate, directory negligible) on a representative
// benchmark.
func TestEnergyOrderings(t *testing.T) {
	res := shapeRun(t, "dijkstra-ss", 1)
	e := res.Energy
	if e.Link <= e.Router {
		t.Errorf("link energy (%.0f) not above router energy (%.0f) at 11 nm", e.Link, e.Router)
	}
	if e.Directory > 0.05*e.Total() {
		t.Errorf("directory energy fraction %.3f, want negligible (< 5%%)", e.Directory/e.Total())
	}
}

// TestWordMissesCheaperThanSharingMisses verifies the premise of the whole
// paper at the simulator level: on the sharing-heavy benchmark the average
// memory latency per access falls when sharing misses become word misses.
func TestWordMissesCheaperThanSharingMisses(t *testing.T) {
	base := shapeRun(t, "dijkstra-ss", 1)
	adapt := shapeRun(t, "dijkstra-ss", 4)
	memLat := func(r *sim.Result) float64 {
		return (r.Time.L1ToL2 + r.Time.L2Waiting + r.Time.L2Sharers + r.Time.OffChip) /
			float64(r.DataAccesses)
	}
	if memLat(adapt) >= memLat(base) {
		t.Errorf("average memory latency did not fall: %.2f -> %.2f cycles/access",
			memLat(base), memLat(adapt))
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment runs the required set of
// simulations — in parallel, since runs are independent — and returns a
// structured result with a Render method that prints rows comparable to the
// paper's artwork.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig1And2    — invalidation/eviction breakdown vs utilization (baseline)
//	PCTSweep    — shared runs behind Figures 8, 9, 10 and 11
//	Fig12       — remote-access-threshold (RAT) sensitivity vs Timestamp
//	Fig13       — Limited-k classifier accuracy vs the Complete classifier
//	Fig14       — Adapt1-way / Adapt2-way ratios
//	Table1      — architectural parameters
//	Table2      — benchmark catalog
//	Storage     — Section 3.6 storage-overhead arithmetic
//	AckwiseComparison — ACKwise4 vs full-map baseline check (Section 5 prologue)
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"lacc/internal/sim"
	"lacc/internal/workloads"
)

// Options selects the machine size, workload scale and benchmark subset for
// an experiment. The zero value means: the paper's 64-core machine, scale
// 1.0, all 21 benchmarks, one simulation per CPU in parallel.
type Options struct {
	// Cores and MeshWidth set the machine geometry (Table 1: 64 cores, 8x8).
	Cores     int
	MeshWidth int
	// Scale is the workload problem-size multiplier.
	Scale float64
	// Seed perturbs workload randomness.
	Seed uint64
	// Benchmarks restricts the run to a subset (nil = all registered).
	Benchmarks []string
	// Parallelism bounds concurrent simulations (<= 0: GOMAXPROCS).
	Parallelism int
	// Config customizes the base machine; nil uses sim.Default. PCT and
	// classifier fields are overridden per experiment as needed.
	Config *sim.Config
}

func (o Options) normalize() Options {
	if o.Cores <= 0 {
		o.Cores = 64
	}
	if o.MeshWidth <= 0 {
		switch {
		case o.Cores%8 == 0 && o.Cores >= 64:
			o.MeshWidth = 8
		case o.Cores%4 == 0:
			o.MeshWidth = 4
		default:
			o.MeshWidth = o.Cores
		}
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workloads.Names()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// baseConfig returns the machine configuration for this Options.
func (o Options) baseConfig() sim.Config {
	var cfg sim.Config
	if o.Config != nil {
		cfg = *o.Config
	} else {
		cfg = sim.Default()
	}
	cfg.Cores = o.Cores
	cfg.MeshWidth = o.MeshWidth
	if cfg.MemControllers > o.Cores {
		cfg.MemControllers = o.Cores
	}
	return cfg
}

// spec returns the workload build spec for this Options.
func (o Options) spec() workloads.Spec {
	return workloads.Spec{Cores: o.Cores, Scale: o.Scale, Seed: o.Seed}
}

// job is one simulation: a benchmark under a configuration variant.
type job struct {
	bench   string
	variant string
	cfg     sim.Config
}

// outcome pairs a job with its result.
type outcome struct {
	job job
	res *sim.Result
	err error
}

// runJobs executes all jobs with bounded parallelism and returns outcomes
// keyed by (bench, variant). The first simulation error aborts the batch.
func (o Options) runJobs(jobs []job) (map[string]map[string]*sim.Result, error) {
	results := make(chan outcome, len(jobs))
	sem := make(chan struct{}, o.Parallelism)
	var wg sync.WaitGroup
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := o.simulate(j)
			results <- outcome{job: j, res: res, err: err}
		}()
	}
	wg.Wait()
	close(results)

	out := make(map[string]map[string]*sim.Result, len(o.Benchmarks))
	for oc := range results {
		if oc.err != nil {
			return nil, fmt.Errorf("experiments: %s/%s: %w", oc.job.bench, oc.job.variant, oc.err)
		}
		m := out[oc.job.bench]
		if m == nil {
			m = make(map[string]*sim.Result)
			out[oc.job.bench] = m
		}
		m[oc.job.variant] = oc.res
	}
	return out, nil
}

// simulate runs one benchmark under one configuration.
func (o Options) simulate(j job) (*sim.Result, error) {
	w, ok := workloads.ByName(j.bench)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", j.bench)
	}
	s, err := sim.New(j.cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(w.Streams(o.spec()))
}

// labelOf returns the paper's figure label for a benchmark name.
func labelOf(name string) string {
	if w, ok := workloads.ByName(name); ok {
		return w.Label
	}
	return name
}

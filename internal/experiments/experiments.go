// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment runs the required set of
// simulations — in parallel, since runs are independent — and returns a
// structured result with a Render method that prints rows comparable to the
// paper's artwork.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig1And2    — invalidation/eviction breakdown vs utilization (baseline)
//	PCTSweep    — shared runs behind Figures 8, 9, 10 and 11
//	Fig12       — remote-access-threshold (RAT) sensitivity vs Timestamp
//	Fig13       — Limited-k classifier accuracy vs the Complete classifier
//	Fig14       — Adapt1-way / Adapt2-way ratios
//	Table1      — architectural parameters
//	Table2      — benchmark catalog
//	Storage     — Section 3.6 storage-overhead arithmetic
//	AckwiseComparison — ACKwise4 vs full-map baseline check (Section 5 prologue)
//
// Experiments are batch calls, but they are built to be served: a shared
// Session memoizes every simulation by fingerprint and coalesces
// concurrent identical work, Options.Context abandons queued jobs when
// the caller goes away, and Options.Progress streams completion counts —
// the mechanics internal/server exposes over HTTP as lacc-serve.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lacc/internal/sim"
	"lacc/internal/workloads"
)

// Options selects the machine size, workload scale and benchmark subset for
// an experiment. The zero value means: the paper's 64-core machine, scale
// 1.0, all 21 benchmarks, one simulation per CPU in parallel.
type Options struct {
	// Cores and MeshWidth set the machine geometry (Table 1: 64 cores, 8x8).
	Cores     int
	MeshWidth int
	// Scale is the workload problem-size multiplier.
	Scale float64
	// Seed perturbs workload randomness.
	Seed uint64
	// Benchmarks restricts the run to a subset (nil = all registered).
	Benchmarks []string
	// Parallelism bounds concurrent simulations (<= 0: GOMAXPROCS).
	Parallelism int
	// Shards selects the simulator's shard-parallel execution engine for
	// every job (sim.Config.Shards): 0 or 1 keeps the sequential engine,
	// larger values run each simulation on that many shard workers. Shards
	// is part of the job fingerprint, and sharded runs (> 1) are not
	// run-to-run deterministic — see the sim.Config.Shards contract — so
	// paper-figure experiments should leave it zero and let Parallelism
	// exploit the independence across simulations instead.
	Shards int
	// Config customizes the base machine; nil uses sim.Default. PCT and
	// classifier fields are overridden per experiment as needed.
	Config *sim.Config
	// Session, when set, shares the simulation-result cache and the
	// reusable-simulator pool across experiment calls, so identical
	// (benchmark, configuration) jobs — the PCT points Figures 8, 10 and
	// 11 have in common, every experiment's baseline runs — simulate once
	// per session instead of once per experiment. Nil runs the experiment
	// with a private session (dedup within the call only).
	Session *Session
	// Context, when non-nil, cancels the experiment: once Context is done,
	// worker goroutines abandon every job still queued (simulations already
	// executing run to completion — the simulator has no preemption points
	// — but no new one starts) and the experiment returns Context's error.
	// Abandoned fingerprints are unpinned from the session, so concurrent
	// or later batches re-claim and run them instead of inheriting the
	// cancellation. Nil means never canceled. lacc-serve threads each HTTP
	// request's context through here so a disconnected client stops paying
	// for its sweep.
	Context context.Context
	// Progress, when non-nil, observes the batch's simulation progress:
	// it is called once with (0, total) when a job batch starts — total is
	// the number of simulations the batch must actually run after session
	// dedup, so a fully cached batch reports (0, 0) — and then with the
	// running completion count after each simulation finishes. Completion
	// calls are made concurrently from worker goroutines; the callback
	// must be safe for concurrent use. Experiments that schedule several
	// batches (PerformanceScaling runs one per core count) restart the
	// count per batch.
	Progress func(done, total int)
}

// ctx returns the batch's cancellation context, never nil.
func (o Options) ctx() context.Context {
	if o.Context == nil {
		return context.Background()
	}
	return o.Context
}

func (o Options) normalize() Options {
	if o.Cores <= 0 {
		o.Cores = 64
	}
	if o.MeshWidth <= 0 {
		switch {
		case o.Cores%8 == 0 && o.Cores >= 64:
			o.MeshWidth = 8
		case o.Cores%4 == 0:
			o.MeshWidth = 4
		default:
			o.MeshWidth = o.Cores
		}
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workloads.Names()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// baseConfig returns the machine configuration for this Options. The
// golden-store functional checker is disabled unless the caller supplied
// an explicit Config: it is a test/debug aid whose versions never feed any
// Result field (sim's TestCheckValuesNeutral pins the bit-identity), and an
// experiment session runs thousands of simulations that would otherwise
// each pay a hash-table update per store plus a full end-of-run audit.
func (o Options) baseConfig() sim.Config {
	var cfg sim.Config
	if o.Config != nil {
		cfg = *o.Config
	} else {
		cfg = sim.Default()
		cfg.CheckValues = false
	}
	cfg.Cores = o.Cores
	cfg.MeshWidth = o.MeshWidth
	if cfg.MemControllers > o.Cores {
		cfg.MemControllers = o.Cores
	}
	if o.Shards > 0 {
		cfg.Shards = o.Shards
		if cfg.Shards > cfg.Cores {
			// Validate rejects Shards > Cores; clamp so one Options serves
			// sweeps over machine sizes smaller than the shard count.
			cfg.Shards = cfg.Cores
		}
	}
	return cfg
}

// BaseConfig returns the normalized machine configuration jobs of this
// Options run under, before per-experiment variant overrides (PCT,
// protocol kind, classifier size). lacc-serve builds per-request
// configurations through it so served jobs normalize into exactly the
// fingerprints direct experiment calls produce.
func (o Options) BaseConfig() sim.Config {
	return o.normalize().baseConfig()
}

// spec returns the workload build spec for this Options.
func (o Options) spec() workloads.Spec {
	return workloads.Spec{Cores: o.Cores, Scale: o.Scale, Seed: o.Seed}
}

// job is one simulation: a benchmark under a configuration variant.
type job struct {
	bench   string
	variant string
	cfg     sim.Config
}

// errAborted marks jobs skipped because an earlier job in the batch
// failed.
var errAborted = errors.New("aborted after earlier failure")

// testJobDone, when non-nil, is invoked by each worker after finishing a
// job. Tests use it to observe the scheduler mid-sweep (live goroutine
// counts, executed-job counts) without timing races.
var testJobDone func()

// simFault, when armed via SetSimFault, runs before every simulation with
// the job's benchmark name. Fault-injection tests use it to make chosen
// simulations panic or block, proving the recovery paths (resolve's
// recover, the server's panic middleware, deadline cancellation) against
// real in-flight work. The workloads registry is sealed, so this hook is
// the supported way to plant a misbehaving "benchmark".
var simFault atomic.Pointer[func(bench string)]

// SetSimFault arms (or, with nil, disarms) the simulation fault hook. Test
// use only; the hook is deliberately outside Options so it cannot perturb
// fingerprints.
func SetSimFault(f func(bench string)) {
	if f == nil {
		simFault.Store(nil)
		return
	}
	simFault.Store(&f)
}

// workItem is one claimed simulation a worker must perform.
type workItem struct {
	key   runKey
	entry *runEntry
	job   job
}

// runJobs executes all jobs with bounded parallelism and returns results
// keyed by (bench, variant). The first simulation error aborts the batch,
// as does cancellation of Options.Context (queued jobs are abandoned; the
// context's error is returned).
//
// Scheduling: jobs are first deduplicated against the session's result
// cache — identical (bench, spec, cfg) fingerprints simulate once, within
// the batch and across every experiment sharing the session. The surviving
// work runs on a pool of exactly min(Parallelism, jobs) worker goroutines;
// each worker owns one reusable Simulator (drawn from the session pool,
// Reset between jobs) and replays the benchmark's materialized corpus, so
// a sweep generates each trace once and allocates simulator state once per
// worker rather than once per job. Job order within a batch follows the
// caller's slice, which groups variants of one benchmark together —
// workers naturally replay a hot corpus.
func (o Options) runJobs(jobs []job) (map[string]map[string]*sim.Result, error) {
	sess := o.Session
	if sess == nil {
		sess = NewSession()
	}
	ctx := o.ctx()
	spec := o.spec()
	keyFor := func(j job) runKey {
		return runKey{bench: j.bench, scale: spec.Scale, seed: spec.Seed, cfg: j.cfg}
	}

	// Claim phase: one entry per distinct fingerprint; entries claimed by
	// this batch become work, entries owned elsewhere are awaited below.
	entries := make(map[runKey]*runEntry, len(jobs))
	var work []workItem
	for _, j := range jobs {
		k := keyFor(j)
		if _, seen := entries[k]; seen {
			continue
		}
		e, claimed := sess.claim(k)
		entries[k] = e
		if claimed {
			work = append(work, workItem{key: k, entry: e, job: j})
		}
	}
	if o.Progress != nil {
		o.Progress(0, len(work))
	}

	if len(work) > 0 {
		workers := o.Parallelism
		if workers > len(work) {
			workers = len(work)
		}
		if workers < 1 { // callers normalize, but never deadlock on a zero
			workers = 1
		}
		queue := make(chan workItem, len(work))
		for _, it := range work {
			queue <- it
		}
		close(queue)
		var failed atomic.Bool
		var done atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				worker := sess.getSim()
				for it := range queue {
					var fresh bool
					if failed.Load() || ctx.Err() != nil {
						it.entry.err = errAborted
					} else {
						fresh = o.resolve(sess, &worker, it.key, it.job, it.entry)
					}
					if it.entry.err != nil {
						failed.Store(true)
						// Unpin the key before publishing the failure, so
						// any batch (this one retrying later, or a
						// concurrent one waiting on an aborted entry) can
						// re-claim and run it instead of inheriting the
						// error.
						sess.forget(it.key)
					}
					close(it.entry.ready)
					// Write-behind after publication: waiters never block
					// on the durable tier's I/O.
					if fresh {
						sess.storeResult(it.key, it.entry.res)
					}
					if h := testJobDone; h != nil {
						h()
					}
					if o.Progress != nil {
						o.Progress(int(done.Add(1)), len(work))
					}
				}
				if worker != nil {
					sess.putSim(worker)
				}
			}()
		}
		wg.Wait()
	}

	claimed := make(map[runKey]bool, len(work))
	for _, it := range work {
		claimed[it.key] = true
	}

	// Collection phase: every variant resolves through its fingerprint's
	// entry (deduplicated variants share one *sim.Result).
	out := make(map[string]map[string]*sim.Result, len(o.Benchmarks))
	var firstErr error
	for _, j := range jobs {
		k := keyFor(j)
		e := entries[k]
		select {
		case <-e.ready:
		case <-ctx.Done():
			// The entry is owned by another batch still simulating; a
			// canceled caller stops waiting for it (the owner will publish
			// the result into the session for everyone else).
			return nil, ctx.Err()
		}
		// An abort from a DIFFERENT batch (its failure, not ours) must not
		// poison this batch: the aborting worker unpinned the key, so
		// re-claim and run it here, serially — this path is rare.
		for errors.Is(e.err, errAborted) && !claimed[k] && ctx.Err() == nil {
			ne, own := sess.claim(k)
			if own {
				worker := sess.getSim()
				fresh := o.resolve(sess, &worker, k, j, ne)
				if ne.err != nil {
					sess.forget(k)
				}
				if worker != nil {
					sess.putSim(worker)
				}
				close(ne.ready)
				if fresh {
					sess.storeResult(k, ne.res)
				}
				claimed[k] = true
			}
			select {
			case <-ne.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			e = ne
			entries[k] = e
		}
		if e.err != nil {
			// Report the root cause, not an abort marker, when both exist.
			if firstErr == nil || (errors.Is(firstErr, errAborted) && !errors.Is(e.err, errAborted)) {
				firstErr = fmt.Errorf("experiments: %s/%s: %w", j.bench, j.variant, e.err)
			}
			continue
		}
		m := out[j.bench]
		if m == nil {
			m = make(map[string]*sim.Result)
			out[j.bench] = m
		}
		m[j.variant] = e.res
	}
	if firstErr != nil {
		// A batch aborted by cancellation reports the context's error, not
		// the internal abort marker its entries carry.
		if err := ctx.Err(); err != nil && errors.Is(firstErr, errAborted) {
			return nil, err
		}
		// Failed and aborted keys were already unpinned by the workers, so
		// a later attempt retries them instead of replaying the error.
		return nil, firstErr
	}
	return out, nil
}

// resolve computes the result for a fingerprint this goroutine owns (it
// claimed the entry), consulting the session's durable tier before paying
// for a simulation. It reports whether a simulation actually ran — the
// caller write-behinds fresh results to disk after closing e.ready. The
// simulation is panic-isolated: a panicking workload generator or
// simulator becomes an error on the entry (and the possibly-corrupt
// worker simulator is discarded rather than pooled), so one poisoned job
// fails its batch instead of the process — lacc-serve turns that into a
// 500 for one request while every other request keeps running.
func (o Options) resolve(sess *Session, worker **sim.Simulator, k runKey, j job, e *runEntry) (fresh bool) {
	if res, ok := sess.loadStored(k); ok {
		e.res = res
		return false
	}
	if res, ok := sess.loadPeer(k); ok {
		e.res = res
		return false
	}
	sess.noteSimulated()
	e.res, e.err = o.runOneSafe(worker, j)
	return e.err == nil
}

// runOneSafe runs one simulation with panic recovery, counting it against
// the session and invoking the fault hook first when armed.
func (o Options) runOneSafe(worker **sim.Simulator, j job) (res *sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			// The simulator may have been abandoned mid-run; its state is
			// not trustworthy enough to Reset, let alone to pool.
			*worker = nil
			res, err = nil, fmt.Errorf("panic in %s simulation: %v", j.bench, p)
		}
	}()
	if f := simFault.Load(); f != nil {
		(*f)(j.bench)
	}
	return o.runOne(worker, j)
}

// runOne simulates one job on the worker's simulator, constructing it on
// first use and Reset-reusing it afterwards. The benchmark's trace comes
// from the process-wide corpus cache: generated once, replayed per job.
func (o Options) runOne(worker **sim.Simulator, j job) (*sim.Result, error) {
	w, ok := workloads.ByName(j.bench)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", j.bench)
	}
	src := w.Corpus(o.spec())
	if *worker == nil {
		s, err := sim.New(j.cfg)
		if err != nil {
			return nil, err
		}
		*worker = s
	} else if err := (*worker).Reset(j.cfg); err != nil {
		return nil, err
	}
	return (*worker).Run(src.Streams())
}

// simulate runs one benchmark under one configuration through the job
// scheduler (sharing the session cache and simulator pool).
func (o Options) simulate(j job) (*sim.Result, error) {
	raw, err := o.runJobs([]job{j})
	if err != nil {
		return nil, err
	}
	return raw[j.bench][j.variant], nil
}

// labelOf returns the paper's figure label for a benchmark name.
func labelOf(name string) string {
	if w, ok := workloads.ByName(name); ok {
		return w.Label
	}
	return name
}

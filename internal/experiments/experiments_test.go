package experiments

import (
	"math"
	"strings"
	"testing"

	"lacc/internal/sim"
)

// testOptions is a fast configuration: 16 cores, reduced problem sizes, a
// protocol-sensitive benchmark subset.
func testOptions(benches ...string) Options {
	if len(benches) == 0 {
		benches = []string{"streamcluster", "blackscholes", "matmul"}
	}
	return Options{Cores: 16, MeshWidth: 4, Scale: 0.15, Seed: 1, Benchmarks: benches}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Cores != 64 || o.MeshWidth != 8 {
		t.Fatalf("default geometry = %d/%d, want 64/8", o.Cores, o.MeshWidth)
	}
	if o.Scale != 1 || o.Parallelism <= 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if len(o.Benchmarks) != 21 {
		t.Fatalf("default benchmark set has %d entries, want 21", len(o.Benchmarks))
	}
	o2 := Options{Cores: 12}.normalize()
	if o2.MeshWidth != 4 {
		t.Fatalf("12 cores normalized to width %d, want 4", o2.MeshWidth)
	}
}

func TestRunJobsReportsUnknownBenchmark(t *testing.T) {
	o := testOptions("no-such-bench").normalize()
	_, err := o.runJobs([]job{{bench: "no-such-bench", variant: "x", cfg: o.baseConfig()}})
	if err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("err = %v, want unknown benchmark", err)
	}
}

func TestPCTSweepShape(t *testing.T) {
	sw, err := RunPCTSweep(testOptions(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Results) != 3 {
		t.Fatalf("sweep covered %d benchmarks, want 3", len(sw.Results))
	}
	for bench, byPCT := range sw.Results {
		for pct, r := range byPCT {
			if r == nil || r.DataAccesses == 0 {
				t.Fatalf("%s/pct%d: empty result", bench, pct)
			}
		}
		// The protocol-friendly subset must improve at PCT 4.
		base := byPCT[1].Energy.Total()
		adapt := byPCT[4].Energy.Total()
		if adapt >= base {
			t.Errorf("%s: energy at PCT 4 (%.0f) >= PCT 1 (%.0f)", bench, adapt, base)
		}
	}
	var sb strings.Builder
	if err := sw.RenderFig8(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "AVERAGE") {
		t.Fatal("Figure 8 output missing AVERAGE rows")
	}
	sb.Reset()
	if err := sw.RenderFig9(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "L2-wait") {
		t.Fatal("Figure 9 output missing breakdown columns")
	}
	sb.Reset()
	if err := sw.RenderFig10(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "word") {
		t.Fatal("Figure 10 output missing word-miss column")
	}
}

func TestFig11SelectsMidRangePCT(t *testing.T) {
	sw, err := RunPCTSweep(testOptions(), []int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	f := sw.Fig11()
	if len(f.Points) != 5 {
		t.Fatalf("%d points, want 5", len(f.Points))
	}
	// Normalization sanity: PCT 1 is the reference.
	if f.Points[0].PCT != 1 || math.Abs(f.Points[0].Completion-1) > 1e-9 || math.Abs(f.Points[0].Energy-1) > 1e-9 {
		t.Fatalf("baseline point not normalized: %+v", f.Points[0])
	}
	// The sweet spot must be an interior PCT (the paper picks 4): not the
	// baseline, and better than the baseline on both metrics.
	if f.BestPCT == 1 {
		t.Fatal("best PCT is the baseline; adaptation never helped")
	}
	for _, p := range f.Points {
		if p.PCT == f.BestPCT {
			if p.Completion >= 1 || p.Energy >= 1 {
				t.Fatalf("best PCT %d does not beat baseline: %+v", f.BestPCT, p)
			}
		}
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "selected static PCT") {
		t.Fatal("Figure 11 output missing the PCT selection line")
	}
}

func TestFig1And2Histograms(t *testing.T) {
	f, err := Fig1And2(testOptions("streamcluster", "blackscholes"))
	if err != nil {
		t.Fatal(err)
	}
	evict := f.Eviction["blackscholes"]
	if evict.Total() == 0 {
		t.Fatal("blackscholes recorded no evictions at baseline")
	}
	// Single-use streaming: evicted lines concentrate in the low buckets.
	p := evict.Percent()
	if p[0]+p[1] < 50 {
		t.Errorf("blackscholes low-utilization evictions = %.1f%%, want >= 50%%", p[0]+p[1])
	}
	inval := f.Invalidation["streamcluster"]
	if inval.Total() == 0 {
		t.Fatal("streamcluster recorded no invalidations at baseline")
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 1") || !strings.Contains(sb.String(), "Figure 2") {
		t.Fatal("render missing figure titles")
	}
}

func TestFig12VariantsCloseToTimestamp(t *testing.T) {
	f, err := Fig12(testOptions("streamcluster", "matmul"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Variants) != len(Fig12Variants) {
		t.Fatalf("%d variants, want %d", len(f.Variants), len(Fig12Variants))
	}
	if f.Completion["Timestamp"] != 1 || f.Energy["Timestamp"] != 1 {
		t.Fatalf("Timestamp reference not 1.0: %+v", f)
	}
	// The RAT approximation should stay within a modest band of the exact
	// Timestamp scheme (the paper's Figure 12 spans roughly 0.98-1.13).
	for _, v := range f.Variants {
		if f.Completion[v] < 0.7 || f.Completion[v] > 1.4 {
			t.Errorf("%s completion ratio %.3f outside sanity band", v, f.Completion[v])
		}
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "L-2,T-16") {
		t.Fatal("render missing variant labels")
	}
}

func TestFig13LimitedTracksComplete(t *testing.T) {
	f, err := Fig13(testOptions("streamcluster", "blackscholes"))
	if err != nil {
		t.Fatal(err)
	}
	ks := Fig13Ks(16)
	if len(f.Ks) != len(ks) {
		t.Fatalf("ks = %v, want %v", f.Ks, ks)
	}
	for _, bench := range f.Benches {
		if v := f.Completion[bench][16]; math.Abs(v-1) > 1e-9 {
			t.Fatalf("%s: Complete classifier not the reference (%.3f)", bench, v)
		}
		// Limited3 close to Complete (paper: within 3%; allow slack at the
		// reduced test scale).
		if v := f.Completion[bench][3]; v < 0.8 || v > 1.25 {
			t.Errorf("%s: Limited3 completion ratio %.3f far from Complete", bench, v)
		}
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "k=3") {
		t.Fatal("render missing k columns")
	}
}

func TestFig14OneWayIsWorse(t *testing.T) {
	f, err := Fig14(testOptions("streamcluster", "dijkstra-ss", "blackscholes"))
	if err != nil {
		t.Fatal(err)
	}
	if f.GeomeanTime < 1 {
		t.Errorf("Adapt1-way geomean completion ratio %.3f < 1; two-way should win", f.GeomeanTime)
	}
	if f.GeomeanEnergy < 0.95 {
		t.Errorf("Adapt1-way geomean energy ratio %.3f unexpectedly low", f.GeomeanEnergy)
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "GEOMEAN") {
		t.Fatal("render missing GEOMEAN row")
	}
}

func TestAckwiseComparisonNearFullMap(t *testing.T) {
	a, err := AckwiseComparison(testOptions("dijkstra-ss", "radix"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completion[16] != 1 {
		t.Fatalf("full-map reference = %.3f, want 1", a.Completion[16])
	}
	if v := a.Completion[4]; v < 0.9 || v > 1.1 {
		t.Errorf("ACKwise4 completion ratio %.3f, paper reports ~1%% difference", v)
	}
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "broadcast-invals") {
		t.Fatal("render missing broadcast column")
	}
}

func TestStorageMatchesPaperArithmetic(t *testing.T) {
	r := Storage(sim.Default())
	if r.Limited3Bits != 36 {
		t.Errorf("Limited3 bits/entry = %d, paper: 36", r.Limited3Bits)
	}
	if r.CompleteBits != 384 {
		t.Errorf("Complete bits/entry = %d, paper: 384", r.CompleteBits)
	}
	if r.AckwiseBits != 24 {
		t.Errorf("ACKwise4 bits/entry = %d, paper: 24", r.AckwiseBits)
	}
	if r.FullMapBits != 64 {
		t.Errorf("full-map bits/entry = %d, paper: 64", r.FullMapBits)
	}
	if r.Limited3KB != 18 {
		t.Errorf("Limited3 storage = %.2f KB/core, paper: 18 KB", r.Limited3KB)
	}
	if r.CompleteKB != 192 {
		t.Errorf("Complete storage = %.2f KB/core, paper: 192 KB", r.CompleteKB)
	}
	if r.AckwiseKB != 12 || r.FullMapKB != 32 {
		t.Errorf("directory storage = %.1f/%.1f KB, paper: 12/32 KB", r.AckwiseKB, r.FullMapKB)
	}
	if math.Abs(r.Limited3OverheadPct-5.7) > 0.2 {
		t.Errorf("Limited3 overhead = %.2f%%, paper: 5.7%%", r.Limited3OverheadPct)
	}
	if math.Abs(r.CompleteOverheadPct-60) > 2 {
		t.Errorf("Complete overhead = %.2f%%, paper: 60%%", r.CompleteOverheadPct)
	}
	if !r.LimitedBeatsFullMap {
		t.Error("ACKwise4+Limited3 should use less storage than full-map")
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "paper: 5.7%") {
		t.Fatal("render missing paper reference")
	}
}

func TestRenderTables(t *testing.T) {
	var sb strings.Builder
	if err := RenderTable1(sim.Default(), &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"64 @ 1 GHz", "ACKwise4", "PCT = 4", "Limited3"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	sb.Reset()
	if err := RenderTable2(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SPLASH-2", "PARSEC", "streamcluster", "1M Integers"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestBaselineSingleRun(t *testing.T) {
	o := testOptions("tsp")
	cfg := o.normalize().baseConfig()
	res, err := Baseline(o, "tsp", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataAccesses == 0 {
		t.Fatal("empty single run")
	}
}

func TestVictimReplicationComparison(t *testing.T) {
	r, err := VictimReplication(testOptions("matmul", "streamcluster"))
	if err != nil {
		t.Fatal(err)
	}
	// VR replicates usefully on matmul's shared column re-reads, but the
	// adaptive protocol should beat it (the paper's §2.1 argument).
	if r.AdaptEnergy >= 1 {
		t.Errorf("adaptive energy ratio %.3f did not improve on baseline", r.AdaptEnergy)
	}
	if r.AdaptEnergy >= r.VREnergy {
		t.Errorf("adaptive energy (%.3f) not below VR (%.3f)", r.AdaptEnergy, r.VREnergy)
	}
	if r.ReplicaHitRate <= 0 {
		t.Error("VR never hit a replica")
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "victim replication") {
		t.Fatal("render missing VR row")
	}
}

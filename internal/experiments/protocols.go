package experiments

import (
	"fmt"
	"io"

	"lacc/internal/report"
	"lacc/internal/sim"
	"lacc/internal/stats"
)

// ProtocolComparisonResult holds one simulation per (benchmark, coherence
// protocol): the side-by-side evaluation the paper's comparative claims
// rest on, extended with the Dragon write-update baseline. Results[bench]
// maps each protocol kind to its run.
type ProtocolComparisonResult struct {
	Benches   []string
	Protocols []sim.ProtocolKind
	Results   map[string]map[sim.ProtocolKind]*sim.Result

	// Geomeans normalized to the first protocol in Protocols (the
	// reference baseline, MESI by default).
	Completion map[sim.ProtocolKind]float64
	Energy     map[sim.ProtocolKind]float64
	Traffic    map[sim.ProtocolKind]float64 // link flits
}

// ProtocolComparison runs every selected benchmark under each coherence
// protocol. A nil kinds list compares every registered protocol: full-map
// MESI (the reference, always first), Dragon write-update, the
// directoryless shared-LLC DLS, the self-invalidating single-pointer
// Neat, the per-line MESI/Dragon hybrid and the locality-aware adaptive
// protocol.
func ProtocolComparison(o Options, kinds []sim.ProtocolKind) (*ProtocolComparisonResult, error) {
	o = o.normalize()
	if len(kinds) == 0 {
		kinds = []sim.ProtocolKind{
			sim.ProtocolMESI, sim.ProtocolDragon, sim.ProtocolDLS,
			sim.ProtocolNeat, sim.ProtocolHybrid, sim.ProtocolAdaptive,
		}
	}
	var jobs []job
	for _, bench := range o.Benchmarks {
		for _, kind := range kinds {
			cfg := o.baseConfig()
			cfg.ProtocolKind = kind
			jobs = append(jobs, job{bench: bench, variant: string(kind), cfg: cfg})
		}
	}
	raw, err := o.runJobs(jobs)
	if err != nil {
		return nil, err
	}

	out := &ProtocolComparisonResult{
		Benches:    o.Benchmarks,
		Protocols:  kinds,
		Results:    make(map[string]map[sim.ProtocolKind]*sim.Result, len(o.Benchmarks)),
		Completion: map[sim.ProtocolKind]float64{},
		Energy:     map[sim.ProtocolKind]float64{},
		Traffic:    map[sim.ProtocolKind]float64{},
	}
	for _, bench := range o.Benchmarks {
		m := make(map[sim.ProtocolKind]*sim.Result, len(kinds))
		for _, kind := range kinds {
			m[kind] = raw[bench][string(kind)]
		}
		out.Results[bench] = m
	}
	ref := string(kinds[0])
	for _, kind := range kinds {
		var times, energies, flits []float64
		for _, bench := range o.Benchmarks {
			base := raw[bench][ref]
			r := raw[bench][string(kind)]
			if bt := base.Time.Total(); bt > 0 {
				times = append(times, r.Time.Total()/bt)
			}
			if be := base.Energy.Total(); be > 0 {
				energies = append(energies, r.Energy.Total()/be)
			}
			if base.LinkFlits > 0 {
				flits = append(flits, float64(r.LinkFlits)/float64(base.LinkFlits))
			}
		}
		out.Completion[kind] = stats.GeoMean(times)
		out.Energy[kind] = stats.GeoMean(energies)
		out.Traffic[kind] = stats.GeoMean(flits)
	}
	return out, nil
}

// Render prints one row per (benchmark, protocol) with the raw evaluation
// metrics, then the geomeans normalized to the reference protocol.
func (p *ProtocolComparisonResult) Render(w io.Writer) error {
	t := report.NewTable(
		"protocol comparison: completion / energy / traffic per coherence protocol",
		"benchmark", "protocol", "completion", "energy-pJ", "link-flits",
		"miss-rate", "invals", "updates", "word-accesses")
	for _, bench := range p.Benches {
		for _, kind := range p.Protocols {
			r := p.Results[bench][kind]
			t.AddRowValues(labelOf(bench), string(kind),
				uint64(r.CompletionCycles), r.Energy.Total(), r.LinkFlits,
				fmt.Sprintf("%.2f%%", r.L1DMissRate()),
				r.Invalidations, r.UpdateWrites, r.WordReads+r.WordWrites)
		}
	}
	if err := t.Write(w); err != nil {
		return err
	}
	g := report.NewTable(
		fmt.Sprintf("geomeans normalized to %s", p.Protocols[0]),
		"protocol", "completion", "energy", "traffic")
	for _, kind := range p.Protocols {
		g.AddRowValues(string(kind), p.Completion[kind], p.Energy[kind], p.Traffic[kind])
	}
	return g.Write(w)
}

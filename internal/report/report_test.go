package report

import (
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	tb := NewTable("title", "name", "value")
	tb.AddRowValues("a", 1.5)
	tb.AddRowValues("longer-name", 10)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4+1 { // title + header + rule + 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "title" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header line = %q", lines[1])
	}
	if !strings.Contains(out, "1.500") {
		t.Fatalf("float not fixed-precision:\n%s", out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if got := len(tb.Rows[0]); got != 3 {
		t.Fatalf("row padded to %d cells, want 3", got)
	}
}

func TestCellFormats(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{1.25, "1.250"},
		{float32(2), "2.000"},
		{7, "7"},
		{"s", "s"},
		{uint64(9), "9"},
	}
	for _, c := range cases {
		if got := Cell(c.in); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteCSVQuotes(t *testing.T) {
	tb := NewTable("ignored", "h1", "h2")
	tb.AddRow(`with,comma`, `with"quote`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "ignored") {
		t.Fatal("CSV contains the title")
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "h1,h2\n") {
		t.Fatalf("header row wrong: %s", out)
	}
}

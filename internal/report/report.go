// Package report renders experiment results as aligned text tables or CSV.
// It is the output layer shared by the lacc-bench tool and the examples.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table with an optional title. Cells
// are strings; use the Add* helpers for formatted numbers.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of raw cells. Short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Cell formats a value for a table cell: floats get fixed precision,
// everything else uses the default format.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.3f", x)
	case float32:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprint(x)
	}
}

// AddRowValues appends a row, formatting each value with Cell.
func (t *Table) AddRowValues(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = Cell(v)
	}
	t.AddRow(cells...)
}

// widths returns the rendered width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Write renders the table as aligned text: first column left-aligned,
// remaining columns right-aligned (the usual layout for label + numbers).
func (t *Table) Write(w io.Writer) error {
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string (convenience for tests and logs).
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}

// WriteCSV renders the table as RFC-4180-ish CSV (quoting cells that need
// it). The title is omitted.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

package cache

import (
	"testing"

	"lacc/internal/mem"
)

// tiny returns a 4-line, 4-way (single set) cache for directed tests.
func tiny() *Cache { return New(4*mem.LineBytes, 4) }

func addr(i int) mem.Addr { return mem.Addr(i) * mem.LineBytes }

const replicaState uint8 = 99

func TestTryInsertUsesFreeWays(t *testing.T) {
	c := tiny()
	never := func(*Line) bool { return false }
	for i := 0; i < 4; i++ {
		l, _, evicted := c.TryInsert(addr(i), never)
		if l == nil || evicted {
			t.Fatalf("insert %d into free way failed (line=%v evicted=%v)", i, l, evicted)
		}
	}
	if c.CountValid() != 4 {
		t.Fatalf("CountValid = %d, want 4", c.CountValid())
	}
	// Set now full of unapprovable lines: insertion must be refused.
	if l, _, _ := c.TryInsert(addr(5), never); l != nil {
		t.Fatal("TryInsert displaced an unapprovable line")
	}
	if c.CountValid() != 4 {
		t.Fatal("refused insert mutated the set")
	}
}

func TestTryInsertEvictsOnlyApproved(t *testing.T) {
	c := tiny()
	for i := 0; i < 4; i++ {
		l, _, _ := c.Insert(addr(i))
		if i == 2 {
			l.State = replicaState
		}
		c.Touch(l, mem.Cycle(i))
	}
	l, victim, evicted := c.TryInsert(addr(7), func(w *Line) bool { return w.State == replicaState })
	if l == nil || !evicted {
		t.Fatalf("TryInsert did not evict the approved line (line=%v evicted=%v)", l, evicted)
	}
	if victim.Addr != addr(2) {
		t.Fatalf("victim %#x, want the replica at %#x", victim.Addr, addr(2))
	}
	if c.Probe(addr(7)) == nil {
		t.Fatal("inserted line not resident")
	}
}

func TestTryInsertPicksLRUAmongApproved(t *testing.T) {
	c := tiny()
	for i := 0; i < 4; i++ {
		l, _, _ := c.Insert(addr(i))
		l.State = replicaState
		c.Touch(l, mem.Cycle(i))
	}
	// Refresh line 0 so line 1 becomes LRU.
	c.Touch(c.Probe(addr(0)), 100)
	_, victim, _ := c.TryInsert(addr(9), func(w *Line) bool { return w.State == replicaState })
	if victim.Addr != addr(1) {
		t.Fatalf("victim %#x, want LRU replica %#x", victim.Addr, addr(1))
	}
}

func TestTryInsertPanicsOnResident(t *testing.T) {
	c := tiny()
	c.Insert(addr(3))
	defer func() {
		if recover() == nil {
			t.Fatal("TryInsert of a resident line did not panic")
		}
	}()
	c.TryInsert(addr(3), func(*Line) bool { return true })
}

func TestTryInsertCountsEvictions(t *testing.T) {
	c := tiny()
	for i := 0; i < 4; i++ {
		l, _, _ := c.Insert(addr(i))
		l.State = replicaState
	}
	before := c.Evictions
	c.TryInsert(addr(8), func(w *Line) bool { return w.State == replicaState })
	if c.Evictions != before+1 {
		t.Fatalf("Evictions = %d, want %d", c.Evictions, before+1)
	}
}

// Package cache implements the set-associative cache arrays used for the
// private L1 instruction/data caches and the shared L2 slices. Cache lines
// carry the tag extensions of the paper's Figure 5: a private utilization
// counter and a last-access timestamp, plus a data version used by the
// functional correctness checker.
//
// The package is purely structural: coherence states are opaque bytes owned
// by the protocol layer, and the replacement policy is LRU as assumed by the
// paper's Timestamp check discussion (Section 3.2).
package cache

import (
	"fmt"

	"lacc/internal/mem"
)

// Line is one cache line's tag-array entry. Fields are ordered
// widest-first so the struct packs into 48 bytes (56 with the original
// ordering); the tag arrays are the bulk of a simulator's memory, so
// padding here is multiplied by every way of every cache of every tile.
type Line struct {
	// Addr is the line-aligned address held by this way.
	Addr mem.Addr
	// LastAccess is the last-access timestamp of Figure 5, used by the
	// Timestamp-based classifier.
	LastAccess mem.Cycle
	// Version is the data version observed when the copy was made; the
	// simulator's checker compares it against the golden store.
	Version uint64

	lru uint64

	// Util is the private utilization counter of Figure 5: the number of
	// accesses since the line was brought into this cache.
	Util uint32
	// Home caches the tile the line's directory lives on, so evictions know
	// where to send the notification without re-running placement.
	Home  int16
	Valid bool
	Dirty bool
	// State is the coherence state, owned by the protocol layer; the cache
	// only distinguishes Valid from free ways.
	State uint8
}

// tagOf returns the packed-tag encoding of a line address: the address
// plus one. Line addresses are 48-bit and line-aligned, so the encoding
// never overflows, never collides with another line, and never produces
// zero — which makes the zero value of a tag word mean "free way". Fresh
// and Reset tag arrays are therefore plain zeroed memory, and occupancy is
// decided entirely by the tag array: the Line records behind free ways may
// hold stale bytes from a previous run and are never read.
func tagOf(la mem.Addr) mem.Addr { return la + 1 }

// tagFree marks a free way in the packed tag array (see tagOf).
const tagFree = mem.Addr(0)

// Cache is a set-associative cache with LRU replacement. The zero value is
// not usable; construct with New.
type Cache struct {
	sets  int
	ways  int
	lines []Line // sets*ways, row-major by set
	// tags packs each way's occupancy (tagOf(line) for held lines, tagFree
	// for free ways) into a contiguous array so the probe loop scans one
	// hardware cache line of tags instead of striding across full Line
	// records. The tag array is authoritative: every structural query
	// (probe, insert victim choice, timestamp checks, iteration) consults
	// it, so Reset only has to clear tags — the far larger Line array is
	// left dirty and re-initialized way by way as lines are inserted.
	tags []mem.Addr
	tick uint64

	// Evictions counts lines displaced by Insert.
	Evictions uint64
}

// New returns a cache with the given total size in bytes and associativity.
// Size must be a positive multiple of ways*64B and the resulting set count
// must be a power of two (all Table 1 configurations satisfy this).
func New(sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry size=%d ways=%d", sizeBytes, ways))
	}
	lines := sizeBytes / mem.LineBytes
	if lines%ways != 0 {
		panic(fmt.Sprintf("cache: size %dB not divisible into %d ways", sizeBytes, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	// Zeroed tags mean every way is free; the Line records need no
	// initialization at all (see the tags field comment).
	return &Cache{sets: sets, ways: ways, lines: make([]Line, sets*ways), tags: make([]mem.Addr, sets*ways)}
}

// Reset invalidates every line and zeroes the replacement clock and
// eviction counter, returning the cache to a state behaviorally identical
// to post-New without reallocating. Only the tag array is cleared: the
// stale Line records behind freed ways are unreachable (all queries gate
// on tags) and are overwritten on their next insertion.
func (c *Cache) Reset() {
	clear(c.tags)
	c.tick = 0
	c.Evictions = 0
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetOf returns the set index for an address.
func (c *Cache) SetOf(a mem.Addr) int {
	return int(mem.LineIndex(a)) & (c.sets - 1)
}

// Probe returns the line holding a's cache line, or nil on miss. It does not
// update replacement state; callers that consume the access should also call
// Touch.
func (c *Cache) Probe(a mem.Addr) *Line {
	key := tagOf(mem.LineOf(a))
	base := c.SetOf(a) * c.ways
	tags := c.tags[base : base+c.ways]
	for i, tag := range tags {
		if tag == key {
			return &c.lines[base+i]
		}
	}
	return nil
}

// Holds reports whether l — a line returned by this cache's Probe or
// Insert since the last Reset, or nil — still holds a's cache line,
// letting callers keep an MRU hint and skip the tag scan on repeated
// same-line accesses. Line pointers stay valid for the cache's lifetime
// (the backing array never relocates), so a stale hint is safe to
// validate: an invalidated way fails the Valid check and a reallocated way
// fails the address check. A line can occupy only one way (Insert panics
// on resident lines), so a validated hint is exactly the line Probe would
// return. Hints must not be carried across Reset, which frees ways without
// rewriting their Line records.
func (c *Cache) Holds(l *Line, a mem.Addr) bool {
	return l != nil && l.Valid && l.Addr == mem.LineOf(a)
}

// Touch marks l most-recently-used and stamps its last-access time.
func (c *Cache) Touch(l *Line, now mem.Cycle) {
	c.tick++
	l.lru = c.tick
	l.LastAccess = now
}

// Insert allocates a way for address a and returns the new line plus a copy
// of the victim if a valid line was displaced. The new line is returned
// zeroed except for Valid and Addr; the caller fills in state, utilization
// and version, and should Touch it. Inserting an address already present
// panics: the protocol layer must Probe first.
func (c *Cache) Insert(a mem.Addr) (l *Line, victim Line, evicted bool) {
	la := mem.LineOf(a)
	key := tagOf(la)
	base := c.SetOf(a) * c.ways
	var victimIdx = -1
	var victimLRU uint64 = ^uint64(0)
	for i := 0; i < c.ways; i++ {
		tag := c.tags[base+i]
		if tag == tagFree {
			victimIdx = i
			evicted = false
			goto place
		}
		if tag == key {
			panic(fmt.Sprintf("cache: Insert of resident line %#x", la))
		}
		if w := &c.lines[base+i]; w.lru < victimLRU {
			victimLRU = w.lru
			victimIdx = i
		}
	}
	victim = c.lines[base+victimIdx]
	evicted = true
	c.Evictions++
place:
	l = &c.lines[base+victimIdx]
	*l = Line{Valid: true, Addr: la}
	c.tags[base+victimIdx] = key
	return l, victim, evicted
}

// TryInsert allocates a way for address a like Insert, but will only evict
// a valid line if canEvict approves it (invalid ways need no approval). It
// returns nil when no acceptable way exists, leaving the set untouched.
// Used by victim replication, whose replicas must never displace home
// lines.
func (c *Cache) TryInsert(a mem.Addr, canEvict func(*Line) bool) (l *Line, victim Line, evicted bool) {
	la := mem.LineOf(a)
	key := tagOf(la)
	base := c.SetOf(a) * c.ways
	victimIdx := -1
	var victimLRU uint64 = ^uint64(0)
	for i := 0; i < c.ways; i++ {
		tag := c.tags[base+i]
		if tag == tagFree {
			l = &c.lines[base+i]
			*l = Line{Valid: true, Addr: la}
			c.tags[base+i] = key
			return l, Line{}, false
		}
		if tag == key {
			panic(fmt.Sprintf("cache: TryInsert of resident line %#x", la))
		}
		if w := &c.lines[base+i]; canEvict(w) && w.lru < victimLRU {
			victimLRU = w.lru
			victimIdx = i
		}
	}
	if victimIdx < 0 {
		return nil, Line{}, false
	}
	victim = c.lines[base+victimIdx]
	c.Evictions++
	l = &c.lines[base+victimIdx]
	*l = Line{Valid: true, Addr: la}
	c.tags[base+victimIdx] = key
	return l, victim, true
}

// Invalidate removes a's line if present and returns a copy of it.
func (c *Cache) Invalidate(a mem.Addr) (Line, bool) {
	key := tagOf(mem.LineOf(a))
	base := c.SetOf(a) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.tags[base+i] == key {
			l := &c.lines[base+i]
			old := *l
			*l = Line{}
			c.tags[base+i] = tagFree
			return old, true
		}
	}
	return Line{}, false
}

// HasInvalidWay reports whether the set for address a has a free way. The
// paper's RAT short-cut and Timestamp check both use this.
func (c *Cache) HasInvalidWay(a mem.Addr) bool {
	base := c.SetOf(a) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.tags[base+i] == tagFree {
			return true
		}
	}
	return false
}

// MinLastAccess returns the minimum last-access time among valid lines in
// a's set and whether the set is full. When the set has an invalid way the
// paper's Timestamp check passes trivially; callers should consult full.
func (c *Cache) MinLastAccess(a mem.Addr) (min mem.Cycle, full bool) {
	base := c.SetOf(a) * c.ways
	full = true
	min = ^mem.Cycle(0)
	for i := 0; i < c.ways; i++ {
		if c.tags[base+i] == tagFree {
			full = false
			continue
		}
		if l := &c.lines[base+i]; l.LastAccess < min {
			min = l.LastAccess
		}
	}
	if !full {
		min = 0
	}
	return min, full
}

// ForEach calls fn for every held line. Used by drain/flush paths and
// tests; fn must not insert or invalidate concurrently.
func (c *Cache) ForEach(fn func(*Line)) {
	for i, tag := range c.tags {
		if tag != tagFree {
			fn(&c.lines[i])
		}
	}
}

// CountValid returns the number of held lines (test helper and occupancy
// metric).
func (c *Cache) CountValid() int {
	n := 0
	for _, tag := range c.tags {
		if tag != tagFree {
			n++
		}
	}
	return n
}

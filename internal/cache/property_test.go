package cache

import (
	"testing"
	"testing/quick"

	"lacc/internal/mem"
)

// Property: after any sequence of inserts, every set holds at most `ways`
// valid lines, no address appears twice, and occupancy never exceeds
// capacity.
func TestInsertInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		c := New(8*64*4, 4) // 8 sets, 4 ways
		resident := map[mem.Addr]bool{}
		for _, r := range raw {
			a := mem.Addr(r) * mem.LineBytes
			if c.Probe(a) != nil {
				c.Touch(c.Probe(a), 1)
				continue
			}
			_, victim, ev := c.Insert(a)
			if ev {
				delete(resident, victim.Addr)
			}
			resident[mem.LineOf(a)] = true
		}
		if c.CountValid() != len(resident) {
			return false
		}
		// All tracked lines must probe successfully and vice versa.
		ok := true
		c.ForEach(func(l *Line) {
			if !resident[l.Addr] {
				ok = false
			}
		})
		for a := range resident {
			if c.Probe(a) == nil {
				ok = false
			}
		}
		return ok && c.CountValid() <= c.Sets()*c.Ways()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the LRU victim is always the least recently touched valid line
// in its set.
func TestLRUProperty(t *testing.T) {
	f := func(order []uint8) bool {
		c := New(1*64*4, 4) // one set, 4 ways
		var now mem.Cycle
		touched := map[mem.Addr]mem.Cycle{}
		for _, o := range order {
			a := mem.Addr(o%16) * 64
			now++
			if l := c.Probe(a); l != nil {
				c.Touch(l, now)
				touched[a] = now
				continue
			}
			l, victim, ev := c.Insert(a)
			if ev {
				// victim must have the minimum touch time among resident.
				vt := touched[victim.Addr]
				for ra, rt := range touched {
					if ra != victim.Addr && rt < vt {
						return false
					}
				}
				delete(touched, victim.Addr)
			}
			c.Touch(l, now)
			touched[a] = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MinLastAccess over a full set equals the true minimum of the
// touch times.
func TestMinLastAccessProperty(t *testing.T) {
	f := func(times [4]uint16) bool {
		c := New(1*64*4, 4)
		min := mem.Cycle(^uint64(0))
		for i, ti := range times {
			l, _, _ := c.Insert(mem.Addr(i) * 64)
			c.Touch(l, mem.Cycle(ti))
			if mem.Cycle(ti) < min {
				min = mem.Cycle(ti)
			}
		}
		got, full := c.MinLastAccess(0)
		return full && got == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

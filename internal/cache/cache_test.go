package cache

import (
	"testing"

	"lacc/internal/mem"
)

func TestGeometry(t *testing.T) {
	// Table 1 L1-D: 32 KB 4-way => 128 sets.
	c := New(32*1024, 4)
	if c.Sets() != 128 || c.Ways() != 4 {
		t.Fatalf("got %d sets %d ways", c.Sets(), c.Ways())
	}
	// Table 1 L2 slice: 256 KB 8-way => 512 sets.
	c2 := New(256*1024, 8)
	if c2.Sets() != 512 {
		t.Fatalf("L2 sets = %d", c2.Sets())
	}
	// Table 1 L1-I: 16 KB 4-way => 64 sets.
	c3 := New(16*1024, 4)
	if c3.Sets() != 64 {
		t.Fatalf("L1I sets = %d", c3.Sets())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []struct{ size, ways int }{
		{0, 4},          // zero size
		{1024, 0},       // zero ways
		{64 * 3, 2},     // lines not divisible by ways
		{64 * 3 * 2, 2}, // 3 sets: not a power of two
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.size, c.ways)
				}
			}()
			New(c.size, c.ways)
		}()
	}
}

func TestProbeInsertInvalidate(t *testing.T) {
	c := New(4*64*2, 2) // 4 sets, 2 ways
	a := mem.Addr(0x1000)
	if c.Probe(a) != nil {
		t.Fatal("probe of empty cache hit")
	}
	l, _, ev := c.Insert(a)
	if ev {
		t.Fatal("insert into empty set evicted")
	}
	if !l.Valid || l.Addr != mem.LineOf(a) {
		t.Fatalf("inserted line wrong: %+v", l)
	}
	if got := c.Probe(a + 63); got != l {
		t.Fatal("probe within same line missed")
	}
	if got := c.Probe(a + 64); got != nil {
		t.Fatal("probe of next line hit")
	}
	old, ok := c.Invalidate(a)
	if !ok || old.Addr != mem.LineOf(a) {
		t.Fatalf("invalidate: ok=%v line=%+v", ok, old)
	}
	if c.Probe(a) != nil {
		t.Fatal("line survived invalidation")
	}
	if _, ok := c.Invalidate(a); ok {
		t.Fatal("double invalidation succeeded")
	}
}

func TestInsertResidentPanics(t *testing.T) {
	c := New(2*64*2, 2)
	c.Insert(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert of resident line did not panic")
		}
	}()
	c.Insert(0)
}

func TestLRUVictimSelection(t *testing.T) {
	c := New(1*64*2, 2) // 1 set, 2 ways
	l0, _, _ := c.Insert(0x000)
	c.Touch(l0, 10)
	l1, _, _ := c.Insert(0x040)
	c.Touch(l1, 20)
	// Re-touch line 0 so line 1 becomes LRU.
	c.Touch(c.Probe(0x000), 30)
	_, victim, ev := c.Insert(0x080)
	if !ev {
		t.Fatal("expected eviction from full set")
	}
	if victim.Addr != 0x040 {
		t.Fatalf("victim = %#x, want 0x40 (LRU)", victim.Addr)
	}
	if c.Evictions != 1 {
		t.Fatalf("Evictions = %d", c.Evictions)
	}
}

func TestHasInvalidWayAndMinLastAccess(t *testing.T) {
	c := New(1*64*2, 2)
	if !c.HasInvalidWay(0) {
		t.Fatal("empty set must have invalid way")
	}
	min, full := c.MinLastAccess(0)
	if full || min != 0 {
		t.Fatalf("empty set: min=%d full=%v", min, full)
	}
	l0, _, _ := c.Insert(0x000)
	c.Touch(l0, 100)
	if !c.HasInvalidWay(0) {
		t.Fatal("half-full set must have invalid way")
	}
	l1, _, _ := c.Insert(0x040)
	c.Touch(l1, 50)
	if c.HasInvalidWay(0) {
		t.Fatal("full set reported invalid way")
	}
	min, full = c.MinLastAccess(0)
	if !full || min != 50 {
		t.Fatalf("full set: min=%d full=%v, want 50 true", min, full)
	}
}

func TestSetMapping(t *testing.T) {
	c := New(4*64*1, 1) // 4 sets, direct-mapped
	// Consecutive lines must map to consecutive sets.
	for i := 0; i < 8; i++ {
		a := mem.Addr(i * 64)
		if got, want := c.SetOf(a), i%4; got != want {
			t.Errorf("SetOf(%#x) = %d, want %d", a, got, want)
		}
	}
	// Same line, different byte offsets: same set.
	if c.SetOf(0x40) != c.SetOf(0x7f) {
		t.Error("offsets within a line map to different sets")
	}
}

func TestForEachAndCountValid(t *testing.T) {
	c := New(4*64*2, 2)
	addrs := []mem.Addr{0x000, 0x040, 0x080, 0x100}
	for _, a := range addrs {
		l, _, _ := c.Insert(a)
		l.Util = 7
	}
	if got := c.CountValid(); got != len(addrs) {
		t.Fatalf("CountValid = %d, want %d", got, len(addrs))
	}
	seen := map[mem.Addr]bool{}
	c.ForEach(func(l *Line) {
		seen[l.Addr] = true
		if l.Util != 7 {
			t.Errorf("line %#x lost Util", l.Addr)
		}
	})
	if len(seen) != len(addrs) {
		t.Fatalf("ForEach visited %d lines", len(seen))
	}
}

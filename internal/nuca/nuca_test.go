package nuca

import (
	"testing"
	"testing/quick"

	"lacc/internal/mem"
)

func TestFirstTouchPrivate(t *testing.T) {
	p := New(64, 8)
	home, recl := p.DataHome(0x1000, 5)
	if home != 5 || recl != nil {
		t.Fatalf("first touch: home=%d recl=%v", home, recl)
	}
	// Same core again: still private, still local.
	home, recl = p.DataHome(0x1040, 5)
	if home != 5 || recl != nil {
		t.Fatalf("re-touch: home=%d recl=%v", home, recl)
	}
	if p.PrivatePages != 1 || p.SharedPages != 0 {
		t.Fatalf("page counts: %d/%d", p.PrivatePages, p.SharedPages)
	}
}

func TestReclassificationOnSecondCore(t *testing.T) {
	p := New(64, 8)
	p.DataHome(0x1000, 5)
	home, recl := p.DataHome(0x1008, 9)
	if recl == nil {
		t.Fatal("expected reclassification")
	}
	if recl.Page != 0x1000 || recl.OldHome != 5 {
		t.Fatalf("recl = %+v", recl)
	}
	if home < 0 || home >= 64 {
		t.Fatalf("shared home %d out of range", home)
	}
	if p.PrivatePages != 0 || p.SharedPages != 1 || p.Reclassifications != 1 {
		t.Fatalf("counts: %d/%d/%d", p.PrivatePages, p.SharedPages, p.Reclassifications)
	}
	// Further accesses by anyone reclassify nothing and agree on the home.
	h2, recl2 := p.DataHome(0x1008, 5)
	if recl2 != nil || h2 != home {
		t.Fatalf("post-shared access: home=%d recl=%v", h2, recl2)
	}
}

func TestSharedHomeIsPerLine(t *testing.T) {
	p := New(64, 8)
	p.DataHome(0x0, 0)
	p.DataHome(0x8, 1) // reclassify page 0
	homes := map[int]bool{}
	for i := 0; i < 64; i++ {
		h, _ := p.DataHome(mem.Addr(i*64), 2)
		homes[h] = true
	}
	// Hash interleaving should spread 64 lines over many slices.
	if len(homes) < 24 {
		t.Fatalf("shared lines concentrated on %d slices", len(homes))
	}
}

func TestPeekDataHomeDoesNotReclassify(t *testing.T) {
	p := New(64, 8)
	p.DataHome(0x2000, 3)
	if h := p.PeekDataHome(0x2000, 7); h != 3 {
		t.Fatalf("peek home = %d, want owner 3", h)
	}
	if p.Reclassifications != 0 {
		t.Fatal("peek reclassified")
	}
	// Peek of a cold page assumes requester-local placement.
	if h := p.PeekDataHome(0x9000, 7); h != 7 {
		t.Fatalf("cold peek = %d, want 7", h)
	}
}

func TestClassOf(t *testing.T) {
	p := New(64, 8)
	if _, ok := p.ClassOf(0x5000); ok {
		t.Fatal("cold page reported classified")
	}
	p.DataHome(0x5000, 1)
	if c, ok := p.ClassOf(0x5000); !ok || c != PagePrivate {
		t.Fatalf("class = %v ok=%v", c, ok)
	}
	p.DataHome(0x5000, 2)
	if c, _ := p.ClassOf(0x5000); c != PageShared {
		t.Fatalf("class after sharing = %v", c)
	}
}

func TestInstrHomeStaysInCluster(t *testing.T) {
	p := New(64, 8)
	// Core 0's 2x2 cluster is tiles {0,1,8,9}.
	cluster := map[int]bool{0: true, 1: true, 8: true, 9: true}
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		h := p.InstrHome(mem.Addr(i*64), 0)
		if !cluster[h] {
			t.Fatalf("instr home %d outside cluster", h)
		}
		seen[h] = true
	}
	if len(seen) < 3 {
		t.Fatalf("rotational interleaving used only %d tiles", len(seen))
	}
	// Cores of the same cluster agree on the replica tile for a line.
	for _, c := range []int{0, 1, 8, 9} {
		if p.InstrHome(0x40, c) != p.InstrHome(0x40, 0) {
			t.Fatal("cluster members disagree on replica tile")
		}
	}
	// A different cluster uses its own tiles (per-cluster replication).
	h := p.InstrHome(0x40, 63) // cluster {54,55,62,63}
	if cluster[h] {
		t.Fatalf("remote cluster mapped into cluster 0 tile %d", h)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, c := range []struct{ tiles, w int }{{0, 8}, {64, 0}, {63, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.tiles, c.w)
				}
			}()
			New(c.tiles, c.w)
		}()
	}
}

// Property: DataHome is always in range, private pages stay at their owner
// until a second core appears, and classification counts stay consistent.
func TestPlacementProperties(t *testing.T) {
	f := func(ops []uint16) bool {
		p := New(16, 4)
		for _, op := range ops {
			core := int(op % 16)
			page := mem.Addr(op>>4) * mem.PageBytes
			home, _ := p.DataHome(page+mem.Addr(op%4096&^63), core)
			if home < 0 || home >= 16 {
				return false
			}
		}
		return p.PrivatePages+p.SharedPages == uint64(len(pagesOf(ops)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func pagesOf(ops []uint16) map[uint16]bool {
	m := map[uint16]bool{}
	for _, op := range ops {
		m[op>>4] = true
	}
	return m
}

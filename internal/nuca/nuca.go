// Package nuca implements Reactive-NUCA data placement (Hardavellas et al.,
// ISCA 2009) as used by the paper's baseline system (Section 3.1):
//
//   - private data is placed at the LLC slice of the requesting core,
//   - shared data is placed at a single slice selected by hashing the line
//     address across all slices,
//   - instructions are replicated at one slice per cluster of 4 cores using
//     rotational interleaving.
//
// Classification happens at OS page granularity by first touch: the first
// core to access a page owns it as private; the first access by any other
// core reclassifies the page as shared (the simulator then migrates the
// page's lines out of the old home slice).
package nuca

import (
	"fmt"

	"lacc/internal/flatmap"
	"lacc/internal/mem"
)

// PageClass is the R-NUCA page classification.
type PageClass uint8

// Page classes.
const (
	PagePrivate PageClass = iota
	PageShared
)

// Reclassification reports a private→shared page transition triggered by an
// access; the caller must flush the page's lines from the old home slice.
type Reclassification struct {
	Page    mem.Addr
	OldHome int
}

// Placement tracks page classifications and computes home slices.
type Placement struct {
	tiles    int
	meshW    int
	clusterW int
	clusterH int
	// pages maps pageKey → pageInfo. The DataHome lookup sits on every L1
	// miss, where the general-purpose map was measurable, so it uses the
	// shared open-addressed flat table.
	pages *flatmap.Table[pageInfo]

	// recl is the reclassification scratch returned by DataHome, valid
	// until the next call; reclassifications are handled synchronously by
	// the simulator, and reusing the value keeps the miss path
	// allocation-free.
	recl Reclassification

	// PrivatePages and SharedPages count current classifications;
	// Reclassifications counts private→shared transitions.
	PrivatePages      uint64
	SharedPages       uint64
	Reclassifications uint64
}

type pageInfo struct {
	class PageClass
	owner int16
}

// pageKey returns the non-zero flatmap key for a's page (flatmap reserves
// key 0 as the empty-slot sentinel).
func pageKey(a mem.Addr) uint64 { return uint64(a)>>mem.PageShift + 1 }

// New returns a placement policy for a meshW-wide mesh with `tiles` tiles.
// Instruction clusters are 2×2 (4 cores) per the paper; for meshes smaller
// than 2×2 the whole mesh forms one cluster.
func New(tiles, meshW int) *Placement {
	if tiles <= 0 || meshW <= 0 || tiles%meshW != 0 {
		panic(fmt.Sprintf("nuca: bad geometry tiles=%d meshW=%d", tiles, meshW))
	}
	cw, ch := 2, 2
	if meshW < 2 {
		cw = 1
	}
	if tiles/meshW < 2 {
		ch = 1
	}
	return &Placement{
		tiles: tiles, meshW: meshW,
		clusterW: cw, clusterH: ch,
		pages: flatmap.New[pageInfo](1024),
	}
}

// Reset forgets every page classification and zeroes the counters,
// returning the placement to its post-New state for the same geometry (the
// page table keeps its grown capacity).
func (p *Placement) Reset() {
	p.pages.Clear()
	p.recl = Reclassification{}
	p.PrivatePages, p.SharedPages, p.Reclassifications = 0, 0, 0
}

// Matches reports whether the placement was built for this geometry.
func (p *Placement) Matches(tiles, meshW int) bool {
	return p.tiles == tiles && p.meshW == meshW
}

// mix64 is a splitmix64-style finalizer giving a well-spread deterministic
// hash for address interleaving.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sharedHome returns the slice for a shared line (hash interleaving).
func (p *Placement) sharedHome(a mem.Addr) int {
	return int(mix64(mem.LineIndex(a)) % uint64(p.tiles))
}

// DataHome returns the home slice for a data access by `requester` and, when
// the access flips the page from private to shared, the reclassification the
// caller must act upon.
// The returned *Reclassification points at scratch storage reused by the
// next DataHome call; act on it before looking up another address.
func (p *Placement) DataHome(a mem.Addr, requester int) (home int, recl *Reclassification) {
	page := mem.PageOf(a)
	info, ok := p.pages.Get(pageKey(page))
	if !ok {
		*p.pages.Slot(pageKey(page)) = pageInfo{class: PagePrivate, owner: int16(requester)}
		p.PrivatePages++
		return requester, nil
	}
	switch info.class {
	case PagePrivate:
		if int(info.owner) == requester {
			return requester, nil
		}
		// First access by another core: reclassify to shared.
		*p.pages.Slot(pageKey(page)) = pageInfo{class: PageShared}
		p.PrivatePages--
		p.SharedPages++
		p.Reclassifications++
		p.recl = Reclassification{Page: page, OldHome: int(info.owner)}
		return p.sharedHome(a), &p.recl
	default:
		return p.sharedHome(a), nil
	}
}

// PeekDataHome returns the current home for a line without touching the
// page table (used for eviction notifications, which must not reclassify).
func (p *Placement) PeekDataHome(a mem.Addr, requester int) int {
	info, ok := p.pages.Get(pageKey(a))
	if !ok || info.class == PagePrivate {
		if ok {
			return int(info.owner)
		}
		return requester
	}
	return p.sharedHome(a)
}

// ClassOf returns the classification of a's page; cold pages default to
// private per first-touch.
func (p *Placement) ClassOf(a mem.Addr) (PageClass, bool) {
	info, ok := p.pages.Get(pageKey(a))
	return info.class, ok
}

// InstrHome returns the replica slice for an instruction line fetched by
// `requester`: the line is rotationally interleaved among the 4 tiles of
// the requester's cluster, so each cluster keeps its own replica.
func (p *Placement) InstrHome(a mem.Addr, requester int) int {
	x := requester % p.meshW
	y := requester / p.meshW
	baseX := (x / p.clusterW) * p.clusterW
	baseY := (y / p.clusterH) * p.clusterH
	n := p.clusterW * p.clusterH
	idx := int(mix64(mem.LineIndex(a)) % uint64(n))
	dx := idx % p.clusterW
	dy := idx / p.clusterW
	return (baseY+dy)*p.meshW + baseX + dx
}

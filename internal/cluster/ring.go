package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"

	"lacc/internal/store"
)

// The consistent-hash ring mapping result fingerprints onto owner peers.
//
// Every peer contributes ringVnodes virtual points, each at the SHA-256 of
// "addr#i" truncated to 64 bits; a key lands at the first point clockwise
// from the first 8 bytes of its fingerprint (itself a SHA-256, so already
// uniform), and its K owners are the first K *distinct* peers from there.
// Two properties matter and both are pinned by tests:
//
//   - Determinism: every node in the cluster derives the identical ring
//     from the identical -peers list, whatever order the list was typed
//     in on each node, so "who owns this key" needs no coordination.
//   - Stability: adding or removing one peer remaps only the keys that
//     peer's arcs cover (~1/N of the space), unlike hash-mod-N which
//     remaps almost everything — exactly the property that lets a cold
//     replica join a warm cluster and fetch its share instead of
//     invalidating everyone's.
type ring struct {
	points []ringPoint
	npeers int
}

// ringPoint is one virtual node: a position on the ring owned by a peer
// index.
type ringPoint struct {
	hash uint64
	peer int
}

// ringVnodes is the virtual-node count per peer: enough that the largest
// arc imbalance across a handful of peers stays small, cheap enough that
// ring construction is trivial.
const ringVnodes = 64

// newRing builds the ring over peers. The peer list is hashed
// order-independently (each point depends only on the address string), so
// every cluster node computes the same ring; callers index the returned
// owner positions into their own peer slice, which must be the sorted,
// deduplicated list used here.
func newRing(peers []string) *ring {
	r := &ring{
		points: make([]ringPoint, 0, len(peers)*ringVnodes),
		npeers: len(peers),
	}
	for i, addr := range peers {
		for v := 0; v < ringVnodes; v++ {
			sum := sha256.Sum256([]byte(addr + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{
				hash: binary.BigEndian.Uint64(sum[:8]),
				peer: i,
			})
		}
	}
	// Ties (a 64-bit collision between two peers' points) are next to
	// impossible, but the sort must still be total for determinism.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].peer < r.points[b].peer
	})
	return r
}

// keyHash places a fingerprint on the ring: the key is already a SHA-256,
// so its first 8 bytes are uniform.
func keyHash(key store.Key) uint64 {
	return binary.BigEndian.Uint64(key[:8])
}

// owners returns the indices of the first k distinct peers clockwise from
// h, in ring order (the fetch preference order). k is clamped to the peer
// count.
func (r *ring) owners(h uint64, k int) []int {
	if k > r.npeers {
		k = r.npeers
	}
	if k <= 0 || len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, k)
	seen := make([]bool, r.npeers)
	for n := 0; len(out) < k && n < len(r.points); n++ {
		pt := r.points[(start+n)%len(r.points)]
		if !seen[pt.peer] {
			seen[pt.peer] = true
			out = append(out, pt.peer)
		}
	}
	return out
}

package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"reflect"
	"testing"

	"lacc/internal/store"
)

// testKey derives a distinct fingerprint-shaped key for index i.
func testKey(i int) store.Key {
	return store.Key(sha256.Sum256(binary.BigEndian.AppendUint64(nil, uint64(i))))
}

// TestRingDeterministicAcrossOrder pins the property the cluster depends
// on for coordination-free placement: every node, whatever order its
// -peers flag listed the membership in, derives the identical owner set
// for every key. (New sorts the address list before building the ring;
// this test exercises the whole path.)
func TestRingDeterministicAcrossOrder(t *testing.T) {
	a, err := New(Config{Self: "h1:1", Peers: []string{"h1:1", "h2:2", "h3:3"}, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Self: "h3:3", Peers: []string{"h3:3", "h1:1", "h2:2"}, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 200; i++ {
		h := keyHash(testKey(i))
		oa := a.ring.owners(h, 2)
		ob := b.ring.owners(h, 2)
		// Indices are into the sorted peer slice, identical on both.
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("key %d: owners %v on node a, %v on node b", i, oa, ob)
		}
	}
}

// TestRingBalance asserts no peer owns a degenerate share of the space:
// with 64 virtual nodes per peer, each of 4 peers should be primary owner
// of a healthy fraction of 2000 keys.
func TestRingBalance(t *testing.T) {
	r := newRing([]string{"a:1", "b:1", "c:1", "d:1"})
	counts := make([]int, 4)
	const keys = 2000
	for i := 0; i < keys; i++ {
		counts[r.owners(keyHash(testKey(i)), 1)[0]]++
	}
	for p, n := range counts {
		if n < keys/10 {
			t.Errorf("peer %d is primary for only %d/%d keys; ring badly imbalanced %v", p, n, keys, counts)
		}
	}
}

// TestRingStabilityOnJoin pins the consistent-hashing property: adding a
// peer remaps roughly its fair share of primary ownership (~1/N), not the
// bulk of the keyspace as hash-mod-N would.
func TestRingStabilityOnJoin(t *testing.T) {
	before := newRing([]string{"a:1", "b:1", "c:1"})
	after := newRing([]string{"a:1", "b:1", "c:1", "d:1"})
	// Peer indices are positional; the sorted lists agree on a/b/c at
	// 0/1/2, with d appended at 3.
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		h := keyHash(testKey(i))
		ob, oa := before.owners(h, 1)[0], after.owners(h, 1)[0]
		if oa != ob {
			if oa != 3 {
				t.Fatalf("key %d moved from peer %d to %d, not to the joining peer", i, ob, oa)
			}
			moved++
		}
	}
	// Fair share is 1/4; allow generous slack but fail on mod-N-style
	// wholesale remapping.
	if moved > keys/2 {
		t.Errorf("%d/%d primaries moved on a 3->4 join; want roughly 1/4", moved, keys)
	}
	if moved == 0 {
		t.Error("no keys moved to the joining peer; ring ignores membership")
	}
}

// TestRingOwnersClamped covers the K >= N and empty edge cases.
func TestRingOwnersClamped(t *testing.T) {
	r := newRing([]string{"a:1", "b:1"})
	if got := r.owners(42, 5); len(got) != 2 {
		t.Errorf("owners with k>n returned %v, want both peers", got)
	}
	if got := r.owners(42, 0); got != nil {
		t.Errorf("owners with k=0 returned %v, want nil", got)
	}
}

// TestNewValidation pins the membership rules: self must be listed,
// duplicates and empties rejected.
func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Self: "a:1", Peers: nil},
		{Self: "", Peers: []string{"a:1"}},
		{Self: "x:9", Peers: []string{"a:1", "b:2"}},
		{Self: "a:1", Peers: []string{"a:1", "a:1"}},
		{Self: "a:1", Peers: []string{"a:1", ""}},
	}
	for i, cfg := range cases {
		if c, err := New(cfg); err == nil {
			c.Close()
			t.Errorf("case %d: New(%+v) succeeded, want error", i, cfg)
		}
	}
}

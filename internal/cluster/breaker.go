package cluster

import (
	"sync"
	"time"
)

// breakerState is one of the three classic circuit-breaker states.
type breakerState int

const (
	// stateClosed: the peer is believed healthy; every request may go.
	stateClosed breakerState = iota
	// stateOpen: the peer failed repeatedly; requests are skipped without
	// touching the network until the cooldown elapses.
	stateOpen
	// stateHalfOpen: the cooldown elapsed; exactly one probe request is in
	// flight deciding whether to close (probe succeeded) or re-open
	// (probe failed).
	stateHalfOpen
)

// String renders the state for health endpoints and logs.
func (s breakerState) String() string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-peer circuit breaker. A peer that fails `threshold`
// consecutive interactions stops being consulted at all — a dead peer must
// cost one connection timeout per breaker cycle, not one per request — and
// is re-admitted through single half-open probes after each cooldown.
//
// The caller's protocol: allow() before an interaction (false = skip the
// peer), then exactly one of success()/failure() with the outcome of the
// interaction allow admitted.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open dwell time before a half-open probe

	state    breakerState
	fails    int       // consecutive failures (resets on success)
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	opens    uint64    // lifetime closed/half-open -> open transitions
}

// allow reports whether an interaction with the peer may proceed at time
// now. In the open state it flips to half-open once the cooldown has
// elapsed and admits the single probe; concurrent callers during a probe
// are skipped.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = stateHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a successful interaction: whatever the state, the peer
// answered, so the breaker closes and the failure run resets.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = stateClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a failed interaction at time now. A failed half-open
// probe re-opens immediately (the peer is still sick); in the closed state
// the breaker opens once the consecutive-failure run reaches the
// threshold.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.state == stateHalfOpen || b.fails >= b.threshold {
		if b.state != stateOpen {
			b.opens++
		}
		b.state = stateOpen
		b.openedAt = now
	}
}

// snapshot returns the state for Stats without holding the lock longer
// than a read.
func (b *breaker) snapshot() (state string, fails int, opens uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.fails, b.opens
}

package cluster

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lacc/internal/store"
)

// stubPeer is a minimal in-process implementation of the peer wire
// contract (GET/PUT over CRC-framed bodies), so the client machinery —
// retries, breakers, budgets, checksum verification — is tested against
// the documented protocol without importing internal/server (which
// imports this package). The full two-node integration runs in
// internal/server's cluster tests.
type stubPeer struct {
	mu sync.Mutex
	m  map[store.Key][]byte
	ts *httptest.Server

	noStore bool // answer 404 to puts, like a peer without -store-dir
}

func newStubPeer(t *testing.T) *stubPeer {
	t.Helper()
	sp := &stubPeer{m: map[store.Key][]byte{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/peer/get/{key}", func(w http.ResponseWriter, r *http.Request) {
		k, ok := parseHexKey(r.PathValue("key"))
		if !ok {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		sp.mu.Lock()
		val, found := sp.m[k]
		sp.mu.Unlock()
		if !found {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(CRCHeader, CRC(val))
		w.Header().Set("Content-Type", "application/json")
		w.Write(val)
	})
	mux.HandleFunc("PUT /v1/peer/put/{key}", func(w http.ResponseWriter, r *http.Request) {
		k, ok := parseHexKey(r.PathValue("key"))
		if !ok {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		if sp.noStore {
			http.NotFound(w, r)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := VerifyCRC(body, r.Header.Get(CRCHeader)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sp.mu.Lock()
		sp.m[k] = body
		sp.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	sp.ts = httptest.NewServer(mux)
	t.Cleanup(sp.ts.Close)
	return sp
}

func (sp *stubPeer) addr() string { return strings.TrimPrefix(sp.ts.URL, "http://") }

func (sp *stubPeer) get(k store.Key) ([]byte, bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	v, ok := sp.m[k]
	return v, ok
}

func (sp *stubPeer) put(k store.Key, v []byte) {
	sp.mu.Lock()
	sp.m[k] = v
	sp.mu.Unlock()
}

func parseHexKey(s string) (store.Key, bool) {
	var k store.Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, false
	}
	copy(k[:], b)
	return k, true
}

// selfAddr is a placeholder own address for single-node-side tests; it is
// never dialed (self is excluded from fetch and replication targets).
const selfAddr = "self.invalid:1"

// deadAddr returns an address that refuses connections: a listener bound
// and immediately closed.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// fastCfg returns a Config tuned so failure paths resolve in
// milliseconds.
func fastCfg(self string, peers ...string) Config {
	return Config{
		Self:            self,
		Peers:           peers,
		Replicas:        len(peers),
		Budget:          2 * time.Second,
		AttemptTimeout:  300 * time.Millisecond,
		Retries:         2,
		BackoffBase:     time.Millisecond,
		BackoffMax:      5 * time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: time.Hour, // stay open for the test's duration
	}
}

// peerStatsOf returns the stats entry for addr.
func peerStatsOf(t *testing.T, c *Cluster, addr string) PeerStats {
	t.Helper()
	for _, p := range c.Stats().Peers {
		if p.Addr == addr {
			return p
		}
	}
	t.Fatalf("no stats entry for peer %s", addr)
	return PeerStats{}
}

// TestFetchAndReplicate is the happy path over the real wire contract:
// values stored on a peer are fetched CRC-verified, misses are
// authoritative, and write-behind replication lands on every remote
// owner.
func TestFetchAndReplicate(t *testing.T) {
	a, b := newStubPeer(t), newStubPeer(t)
	c, err := New(fastCfg(selfAddr, selfAddr, a.addr(), b.addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	k1, v1 := testKey(1), []byte(`{"result":1}`)
	a.put(k1, v1)
	b.put(k1, v1)
	got, ok := c.Fetch(k1)
	if !ok || string(got) != string(v1) {
		t.Fatalf("Fetch = %q, %v; want %q", got, ok, v1)
	}
	if _, ok := c.Fetch(testKey(2)); ok {
		t.Fatal("Fetch of an absent key reported a hit")
	}

	k3, v3 := testKey(3), []byte(`{"result":3}`)
	c.Replicate(k3, v3)
	c.FlushReplication()
	for name, sp := range map[string]*stubPeer{"a": a, "b": b} {
		if got, ok := sp.get(k3); !ok || string(got) != string(v3) {
			t.Errorf("peer %s after replication: %q, %v; want %q", name, got, ok, v3)
		}
	}
	st := c.Stats()
	if st.FetchHits != 1 || st.Fetches != 2 {
		t.Errorf("stats fetches=%d hits=%d, want 2/1", st.Fetches, st.FetchHits)
	}
	var replicated uint64
	for _, p := range st.Peers {
		replicated += p.Replicated
	}
	if replicated != 2 {
		t.Errorf("replicated %d values, want 2 (one per remote owner)", replicated)
	}
}

// TestFetchBudget pins the degradation contract's latency bound: with
// every peer black-holing requests (injected latency far beyond every
// timeout), Fetch returns a miss within the configured budget, not after
// attempts x peers x timeout.
func TestFetchBudget(t *testing.T) {
	cfg := fastCfg(selfAddr, selfAddr, "10.255.255.1:9", "10.255.255.2:9")
	cfg.Budget = 250 * time.Millisecond
	cfg.AttemptTimeout = 10 * time.Second // per-attempt alone would blow the budget
	cfg.Retries = 5
	cfg.Transport = &FaultTripper{Hook: func(*http.Request) *Fault {
		return &Fault{Latency: time.Minute}
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if _, ok := c.Fetch(testKey(7)); ok {
		t.Fatal("fetch from black-holed peers reported a hit")
	}
	if elapsed := time.Since(start); elapsed > cfg.Budget+500*time.Millisecond {
		t.Fatalf("fetch took %v, budget is %v", elapsed, cfg.Budget)
	}
}

// TestCorruptAndTruncatedBodiesAbsorbed injects payload damage and
// requires the CRC check to catch it: the fetch degrades to a miss (the
// caller simulates), never to damaged bytes.
func TestCorruptAndTruncatedBodiesAbsorbed(t *testing.T) {
	for _, mode := range []string{"corrupt", "truncate"} {
		t.Run(mode, func(t *testing.T) {
			sp := newStubPeer(t)
			k, v := testKey(11), []byte(`{"result":"a perfectly good value"}`)
			sp.put(k, v)
			cfg := fastCfg(selfAddr, selfAddr, sp.addr())
			cfg.Transport = &FaultTripper{Hook: func(*http.Request) *Fault {
				if mode == "corrupt" {
					return &Fault{CorruptBody: true}
				}
				return &Fault{TruncateBody: 5}
			}}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if got, ok := c.Fetch(k); ok {
				t.Fatalf("damaged transfer served as a hit: %q", got)
			}
			ps := peerStatsOf(t, c, sp.addr())
			if ps.Corrupt == 0 {
				t.Error("corrupt counter is zero after damaged transfers")
			}
			if ps.Errors == 0 {
				t.Error("peer error counter is zero after giving up")
			}
		})
	}
}

// TestBreakerOpensOnDeadPeer: a refused-connection peer fails fetches
// until its breaker opens; later fetches skip it without touching the
// network, and the tier reports itself degraded.
func TestBreakerOpensOnDeadPeer(t *testing.T) {
	dead := deadAddr(t)
	cfg := fastCfg(selfAddr, selfAddr, dead)
	cfg.Retries = 0
	cfg.BreakerFailures = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 5; i++ {
		if _, ok := c.Fetch(testKey(i)); ok {
			t.Fatal("fetch from a dead peer reported a hit")
		}
	}
	ps := peerStatsOf(t, c, dead)
	if ps.Breaker != "open" {
		t.Fatalf("dead peer breaker %q, want open (%+v)", ps.Breaker, ps)
	}
	if ps.Errors != 2 {
		t.Errorf("dead peer errors %d, want exactly the threshold 2 (breaker must stop the bleeding)", ps.Errors)
	}
	if ps.BreakerSkips != 3 {
		t.Errorf("breaker skips %d, want 3 (the remaining fetches)", ps.BreakerSkips)
	}
	if c.Healthy() {
		t.Error("cluster with an open breaker reports healthy")
	}
}

// TestBreakerHalfOpenRecovery drives the full lifecycle over the network
// with a fake clock: the breaker opens against a failing peer, a
// half-open probe after the cooldown finds it recovered, and the breaker
// closes.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	sp := newStubPeer(t)
	k, v := testKey(21), []byte(`{"ok":true}`)
	sp.put(k, v)

	var fail atomic.Bool
	fail.Store(true)
	var clock atomic.Int64 // seconds
	cfg := fastCfg(selfAddr, selfAddr, sp.addr())
	cfg.Retries = 0
	cfg.BreakerFailures = 2
	cfg.BreakerCooldown = 10 * time.Second
	cfg.Now = func() time.Time { return time.Unix(clock.Load(), 0) }
	cfg.Transport = &FaultTripper{Hook: func(*http.Request) *Fault {
		if fail.Load() {
			return &Fault{Err: errors.New("injected outage")}
		}
		return nil
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Outage: two failures open the breaker.
	c.Fetch(k)
	c.Fetch(k)
	if ps := peerStatsOf(t, c, sp.addr()); ps.Breaker != "open" {
		t.Fatalf("breaker %q after outage, want open", ps.Breaker)
	}
	// Inside the cooldown the peer is skipped even though it recovered.
	fail.Store(false)
	if _, ok := c.Fetch(k); ok {
		t.Fatal("hit served inside the cooldown; breaker not skipping")
	}
	// Past the cooldown, the next fetch is the half-open probe; it
	// succeeds and closes the breaker.
	clock.Store(11)
	got, ok := c.Fetch(k)
	if !ok || string(got) != string(v) {
		t.Fatalf("probe fetch = %q, %v; want recovery hit", got, ok)
	}
	if ps := peerStatsOf(t, c, sp.addr()); ps.Breaker != "closed" {
		t.Fatalf("breaker %q after successful probe, want closed", ps.Breaker)
	}
}

// TestChaosKilledAndFlappingPeers is the package-level chaos gate: one
// owner peer is dead (refused connections) and one is flapping (the
// first attempt for every key is black-holed at the transport; the
// retry gets through), while 8 goroutines fetch 50 keys each. The
// contract: 100% of fetches return the correct, CRC-verified bytes (the
// flapping peer's retries absorb the flaps), zero damaged values, and
// the dead peer's breaker ends open while the flapping peer's — whose
// failures are interleaved with successes — stays closed.
func TestChaosKilledAndFlappingPeers(t *testing.T) {
	warm := newStubPeer(t)
	dead := deadAddr(t)
	const keys = 50
	vals := make(map[int][]byte, keys)
	for i := 0; i < keys; i++ {
		vals[i] = []byte(fmt.Sprintf(`{"result":%d}`, i))
		warm.put(testKey(i), vals[i])
	}

	var seen sync.Map // URL -> first attempt already flapped
	warmHost := warm.addr()
	cfg := fastCfg(selfAddr, selfAddr, warmHost, dead)
	// The warm peer's failures are transient and interleaved with
	// successes; give its breaker margin so only a genuinely sustained
	// failure run would trip it. The dead peer fails every attempt, so it
	// blows through this threshold regardless.
	cfg.BreakerFailures = 8
	cfg.Transport = &FaultTripper{Hook: func(req *http.Request) *Fault {
		if req.URL.Host == warmHost {
			if _, loaded := seen.LoadOrStore(req.URL.String(), true); !loaded {
				return &Fault{Err: errors.New("injected flap")}
			}
		}
		return nil
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	var wrong atomic.Uint64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				got, ok := c.Fetch(testKey(i))
				if !ok || string(got) != string(vals[i]) {
					wrong.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d/%d fetches failed or returned wrong bytes under chaos", n, 8*keys)
	}
	if ps := peerStatsOf(t, c, dead); ps.Breaker != "open" {
		t.Errorf("dead peer breaker %q, want open", ps.Breaker)
	}
	if ps := peerStatsOf(t, c, warmHost); ps.Breaker != "closed" {
		t.Errorf("flapping peer breaker %q, want closed (failures interleaved with successes)", ps.Breaker)
	}
	if c.Healthy() {
		t.Error("cluster with a dead peer reports healthy")
	}
}

// TestReplicateToStorelessPeerAbsorbed: a 404 on put (a peer without a
// durable store) is absorbed as success — the peer is alive — so it
// neither counts as a replication error nor trips the breaker.
func TestReplicateToStorelessPeerAbsorbed(t *testing.T) {
	sp := newStubPeer(t)
	sp.noStore = true
	c, err := New(fastCfg(selfAddr, selfAddr, sp.addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Replicate(testKey(30), []byte(`{}`))
	c.FlushReplication()
	ps := peerStatsOf(t, c, sp.addr())
	if ps.ReplicationErrors != 0 || ps.Breaker != "closed" {
		t.Errorf("storeless peer: repErrs=%d breaker=%s, want 0/closed", ps.ReplicationErrors, ps.Breaker)
	}
}

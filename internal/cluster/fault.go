package cluster

import (
	"bytes"
	"io"
	"net/http"
	"time"
)

// FaultTripper is an http.RoundTripper that injects network failures
// between a Cluster and its peers — the network analogue of the store's
// FaultFS (and, before that, sim.Faults): every failure mode the cluster
// tier claims to absorb is exercised through here by an injected-fault
// test, under -race, rather than asserted in prose.
//
// Hook is consulted once per request with the outgoing request and
// returns the fault to inject, or nil to pass the request through
// untouched. Faults compose in order: latency first (canceled early if
// the request's context expires, exactly like a slow network), then a
// transport error, then response-body damage. Flapping peers, dead peers
// and slow peers are all Hook closures over a counter or an address set;
// see the cluster and server chaos tests for the idioms.
//
// A FaultTripper with a nil Hook is a transparent proxy. Safe for
// concurrent use if the Hook is.
type FaultTripper struct {
	// Base performs the real round trip; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Hook decides the fault for each request; nil injects nothing.
	Hook func(req *http.Request) *Fault
}

// Fault describes one injected network failure.
type Fault struct {
	// Latency delays the round trip; the request's context deadline still
	// applies during the delay, so an attempt timeout fires exactly as it
	// would against a slow peer.
	Latency time.Duration
	// Err, when non-nil, fails the round trip after the latency — a
	// refused connection, a reset, a black-holed packet.
	Err error
	// CorruptBody flips one bit in the middle of the response body,
	// modeling payload damage the CRC check must catch.
	CorruptBody bool
	// TruncateBody, when > 0, keeps only the first TruncateBody bytes of
	// the response body — a connection cut mid-transfer. (<= 0 disables.)
	TruncateBody int
}

// RoundTrip implements http.RoundTripper.
func (f *FaultTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	var fault *Fault
	if f.Hook != nil {
		fault = f.Hook(req)
	}
	if fault != nil && fault.Latency > 0 {
		t := time.NewTimer(fault.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if fault != nil && fault.Err != nil {
		return nil, fault.Err
	}
	base := f.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || fault == nil || (!fault.CorruptBody && fault.TruncateBody <= 0) {
		return resp, err
	}
	// Body damage: materialize, mutate, re-wrap. The client reads the
	// replacement reader directly, so a truncated body arrives short (and
	// fails CRC verification) rather than erroring at the transport.
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if fault.CorruptBody && len(body) > 0 {
		body[len(body)/2] ^= 0x40
	}
	if fault.TruncateBody > 0 && len(body) > fault.TruncateBody {
		body = body[:fault.TruncateBody]
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	return resp, nil
}

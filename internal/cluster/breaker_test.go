package cluster

import (
	"testing"
	"time"
)

// TestBreakerLifecycle walks the full closed -> open -> half-open ->
// closed state machine on a fake clock, including the single-probe
// admission rule and re-opening on a failed probe.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &breaker{threshold: 3, cooldown: 5 * time.Second}

	// Closed: everything admitted; failures below the threshold keep it
	// closed.
	for i := 0; i < 2; i++ {
		if !b.allow(now) {
			t.Fatalf("closed breaker refused interaction %d", i)
		}
		b.failure(now)
	}
	if state, fails, _ := b.snapshot(); state != "closed" || fails != 2 {
		t.Fatalf("after 2 failures: state %s fails %d, want closed/2", state, fails)
	}

	// Third consecutive failure opens it.
	if !b.allow(now) {
		t.Fatal("closed breaker refused the third interaction")
	}
	b.failure(now)
	if state, _, opens := b.snapshot(); state != "open" || opens != 1 {
		t.Fatalf("after threshold failures: state %s opens %d, want open/1", state, opens)
	}

	// Open: refused without touching the network until the cooldown.
	if b.allow(now.Add(4 * time.Second)) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	// Cooldown elapsed: exactly one half-open probe goes; concurrent
	// requests during the probe are still refused.
	probeTime := now.Add(6 * time.Second)
	if !b.allow(probeTime) {
		t.Fatal("breaker refused the half-open probe after the cooldown")
	}
	if state, _, _ := b.snapshot(); state != "half-open" {
		t.Fatalf("state during probe: %s, want half-open", state)
	}
	if b.allow(probeTime) {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// Failed probe: straight back to open, new cooldown from now.
	b.failure(probeTime)
	if state, _, opens := b.snapshot(); state != "open" || opens != 2 {
		t.Fatalf("after failed probe: state %s opens %d, want open/2", state, opens)
	}
	if b.allow(probeTime.Add(time.Second)) {
		t.Fatal("breaker admitted a request right after a failed probe")
	}

	// Second probe succeeds: closed, failure run reset, all admitted.
	probe2 := probeTime.Add(6 * time.Second)
	if !b.allow(probe2) {
		t.Fatal("breaker refused the second probe")
	}
	b.success()
	if state, fails, _ := b.snapshot(); state != "closed" || fails != 0 {
		t.Fatalf("after successful probe: state %s fails %d, want closed/0", state, fails)
	}
	if !b.allow(probe2) {
		t.Fatal("closed breaker refused a request after recovery")
	}

	// A success mid-run also resets the failure count.
	b.failure(probe2)
	b.failure(probe2)
	b.success()
	b.failure(probe2)
	if state, fails, _ := b.snapshot(); state != "closed" || fails != 1 {
		t.Fatalf("failure run across a success: state %s fails %d, want closed/1", state, fails)
	}
}

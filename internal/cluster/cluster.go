// Package cluster implements the peer result tier: a static list of
// lacc-serve nodes consistent-hashed on the durable store's SHA-256
// result fingerprints, so that on a local miss a node fetches the
// canonical-JSON result bytes from the key's owner peers before paying
// for a simulation, and write-behind replicates every fresh result to
// those owners. A cold replica joining a warm cluster therefore serves
// warm sweeps immediately — `simulated == 0` — without sharing a disk.
//
// Peers are an optimization tier exactly as the local disk is: the
// cluster absorbs and counts every failure — timeouts, refused
// connections, corrupt bodies, flapping peers — and falls through to
// simulation, never surfacing an error or unbounded latency to the
// caller. The machinery enforcing that contract is the point of this
// package:
//
//   - Per-attempt timeouts and a hard per-fetch Budget (a
//     context deadline spanning all owners and retries), so a sick
//     cluster can slow a local miss by at most Budget.
//   - Bounded retries with exponential backoff and jitter, so a
//     transient blip is ridden out without synchronized retry storms.
//   - A per-peer circuit breaker (closed/open/half-open with single
//     probe requests), so a dead peer costs one timeout per cooldown,
//     not one per request.
//   - CRC-32C verification of every transferred body (the same
//     Castagnoli checksum the on-disk segments use), so a truncated or
//     corrupted transfer is detected and discarded, never decoded.
//
// All of it is proven under injected failure: FaultTripper (fault.go) is
// an http.RoundTripper harness — the FaultFS pattern lifted to the
// network — and the package's -race tests drive warm-join, breaker
// lifecycle and kill-a-peer-mid-sweep chaos through it. See DESIGN.md,
// "Cluster serving".
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lacc/internal/store"
)

// Config parameterizes New. Self and Peers are required; every other
// field has a documented default.
type Config struct {
	// Self is this node's own address exactly as it appears in Peers; it
	// anchors ring ownership (self is never fetched from or replicated
	// to, but still owns its arcs so all nodes agree on placement).
	Self string
	// Peers is the static cluster membership, addresses as host:port.
	// Order is irrelevant — the ring is order-independent — and the list
	// must include Self.
	Peers []string

	// Replicas is K, the number of owner peers per key: fetches consult
	// the key's K owners in ring order, write-behind replicates to them.
	// Clamped to the peer count; <= 0 means 2.
	Replicas int

	// Budget bounds one Fetch's total wall clock across all owners,
	// attempts and backoffs — the degradation contract's "no client
	// request slows past a budget because the cluster is sick".
	// <= 0 means 2s.
	Budget time.Duration
	// AttemptTimeout bounds each individual peer HTTP attempt.
	// <= 0 means 500ms.
	AttemptTimeout time.Duration
	// Retries is the number of additional attempts per peer after the
	// first fails (a 404 miss is authoritative and never retried).
	// < 0 means 0; the default (when 0) is 2.
	Retries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts; each delay is jittered uniformly over [d/2, d] so
	// synchronized clients spread out. Defaults: 25ms base, 250ms max.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// BreakerFailures is the consecutive-failure run that opens a peer's
	// circuit breaker; BreakerCooldown is the open dwell time before a
	// half-open probe. Defaults: 3 failures, 5s cooldown.
	BreakerFailures int
	BreakerCooldown time.Duration

	// Transport performs the HTTP round trips; nil means
	// http.DefaultTransport. Tests inject faults by wrapping it
	// (FaultTripper).
	Transport http.RoundTripper
	// Logf, when non-nil, receives one line per absorbed peer failure.
	// Nil discards them.
	Logf func(format string, args ...any)
	// Now is the clock the breakers read; nil means time.Now. Tests
	// inject a fake clock to walk the breaker lifecycle deterministically.
	Now func() time.Time
}

// Defaults for the zero fields of Config.
const (
	defaultReplicas        = 2
	defaultBudget          = 2 * time.Second
	defaultAttemptTimeout  = 500 * time.Millisecond
	defaultRetries         = 2
	defaultBackoffBase     = 25 * time.Millisecond
	defaultBackoffMax      = 250 * time.Millisecond
	defaultBreakerFailures = 3
	defaultBreakerCooldown = 5 * time.Second

	// replicationQueue bounds pending write-behind replication jobs; a
	// full queue drops the job (counted) rather than blocking the
	// simulation worker that produced the result.
	replicationQueue = 256
	// replicationWorkers drain the queue concurrently.
	replicationWorkers = 2

	// maxValueBytes bounds one transferred result body, mirroring the
	// store's record limit: a corrupt Content-Length cannot make a fetch
	// attempt an absurd allocation.
	maxValueBytes = 16 << 20
)

// CRCHeader is the HTTP header carrying the hex CRC-32C (Castagnoli) of a
// peer-transfer body. Both peer endpoints require it: a GET response
// without a verifiable checksum is treated as corrupt, and a PUT without
// one is rejected, so damaged bytes never cross the wire undetected in
// either direction.
const CRCHeader = "X-Lacc-Crc32c"

// castagnoli is the CRC-32C table, the same polynomial the on-disk
// segment frames use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC returns the hex CRC-32C of body, the CRCHeader value for it.
func CRC(body []byte) string {
	return strconv.FormatUint(uint64(crc32.Checksum(body, castagnoli)), 16)
}

// VerifyCRC checks body against a CRCHeader value.
func VerifyCRC(body []byte, header string) error {
	if header == "" {
		return errors.New("missing " + CRCHeader + " header")
	}
	want, err := strconv.ParseUint(header, 16, 32)
	if err != nil {
		return fmt.Errorf("bad %s header %q", CRCHeader, header)
	}
	if got := crc32.Checksum(body, castagnoli); got != uint32(want) {
		return fmt.Errorf("body CRC %08x does not match header %08x", got, uint32(want))
	}
	return nil
}

// peer is one cluster member and its client-side health state.
type peer struct {
	addr string
	self bool
	br   breaker

	// Monotone per-peer counters (see PeerStats).
	attempts atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	errs     atomic.Uint64
	corrupt  atomic.Uint64
	skips    atomic.Uint64
	repOK    atomic.Uint64
	repErrs  atomic.Uint64
}

// Cluster is the peer tier. Construct with New; Close stops the
// replication workers. A Cluster is safe for concurrent use.
type Cluster struct {
	cfg    Config
	ring   *ring
	peers  []*peer // sorted by address, ring-index-aligned
	client *http.Client
	now    func() time.Time
	logf   func(format string, args ...any)

	// Write-behind replication: a bounded queue drained by background
	// workers, so simulation workers never block on peer I/O.
	repMu     sync.Mutex
	repClosed bool
	repCh     chan repJob
	repWG     sync.WaitGroup // pending jobs (for FlushReplication)
	workerWG  sync.WaitGroup

	fetches    atomic.Uint64
	fetchHits  atomic.Uint64
	repDropped atomic.Uint64
}

// repJob is one queued replication: a value bound for one owner peer.
type repJob struct {
	p   *peer
	key store.Key
	val []byte
}

// New validates cfg, builds the ring and starts the replication workers.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: empty peer list")
	}
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self is required")
	}
	addrs := make([]string, 0, len(cfg.Peers))
	seen := map[string]bool{}
	for _, a := range cfg.Peers {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, errors.New("cluster: empty peer address in list")
		}
		if seen[a] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", a)
		}
		seen[a] = true
		addrs = append(addrs, a)
	}
	if !seen[cfg.Self] {
		return nil, fmt.Errorf("cluster: Self %q is not in the peer list", cfg.Self)
	}
	// Sort so every node derives the identical peer indexing (and ring)
	// from the identical membership, however -peers was ordered.
	sort.Strings(addrs)

	if cfg.Replicas <= 0 {
		cfg.Replicas = defaultReplicas
	}
	if cfg.Replicas > len(addrs) {
		cfg.Replicas = len(addrs)
	}
	if cfg.Budget <= 0 {
		cfg.Budget = defaultBudget
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = defaultAttemptTimeout
	}
	if cfg.Retries == 0 {
		cfg.Retries = defaultRetries
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = defaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = defaultBackoffMax
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = defaultBreakerFailures
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = defaultBreakerCooldown
	}

	c := &Cluster{
		cfg:    cfg,
		ring:   newRing(addrs),
		client: &http.Client{Transport: cfg.Transport},
		now:    cfg.Now,
		logf:   cfg.Logf,
		repCh:  make(chan repJob, replicationQueue),
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	for _, a := range addrs {
		p := &peer{addr: a, self: a == cfg.Self}
		p.br.threshold = cfg.BreakerFailures
		p.br.cooldown = cfg.BreakerCooldown
		c.peers = append(c.peers, p)
	}
	c.workerWG.Add(replicationWorkers)
	for i := 0; i < replicationWorkers; i++ {
		go c.replicationWorker()
	}
	return c, nil
}

// Close stops the replication workers after draining queued jobs. Safe to
// call once, after no more Fetch/Replicate calls can occur (lacc-serve
// closes the cluster after the HTTP listener has drained, like the
// store).
func (c *Cluster) Close() {
	c.repMu.Lock()
	if !c.repClosed {
		c.repClosed = true
		close(c.repCh)
	}
	c.repMu.Unlock()
	c.workerWG.Wait()
}

// Fetch consults the key's owner peers for its canonical result bytes,
// absorbing every failure. It returns within Config.Budget regardless of
// cluster health: dead owners cost at most their breaker's probe
// cadence, slow owners their attempt timeouts, and the budget context
// caps the sum. The returned bytes are CRC-verified.
func (c *Cluster) Fetch(key store.Key) ([]byte, bool) {
	c.fetches.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Budget)
	defer cancel()
	for _, idx := range c.ring.owners(keyHash(key), c.cfg.Replicas) {
		p := c.peers[idx]
		if p.self {
			continue // the local store already missed
		}
		if ctx.Err() != nil {
			break // budget exhausted; simulate
		}
		if !p.br.allow(c.now()) {
			p.skips.Add(1)
			continue
		}
		val, found, err := c.fetchFrom(ctx, p, key)
		if err != nil {
			p.br.failure(c.now())
			p.errs.Add(1)
			c.logf("cluster: fetching %s from %s: %v", key, p.addr, err)
			continue
		}
		p.br.success()
		if found {
			p.hits.Add(1)
			c.fetchHits.Add(1)
			return val, true
		}
		p.misses.Add(1)
	}
	return nil, false
}

// fetchFrom runs the bounded retry loop against one peer. A 404 is an
// authoritative miss (found=false, nil error); transport errors, non-200
// statuses and CRC mismatches are retried with backoff until the attempt
// budget or the fetch budget runs out.
func (c *Cluster) fetchFrom(ctx context.Context, p *peer, key store.Key) (val []byte, found bool, err error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt); err != nil {
				break
			}
		}
		if ctx.Err() != nil {
			break
		}
		p.attempts.Add(1)
		val, found, lastErr = c.getOnce(ctx, p, key)
		if lastErr == nil {
			return val, found, nil
		}
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, false, lastErr
}

// getOnce performs one GET /v1/peer/get attempt under the attempt
// timeout, verifying the body checksum.
func (c *Cluster) getOnce(ctx context.Context, p *peer, key store.Key) ([]byte, bool, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet,
		"http://"+p.addr+"/v1/peer/get/"+key.String(), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxValueBytes+1))
	if err != nil {
		return nil, false, err
	}
	if len(body) > maxValueBytes {
		return nil, false, fmt.Errorf("body exceeds %d bytes", maxValueBytes)
	}
	if err := VerifyCRC(body, resp.Header.Get(CRCHeader)); err != nil {
		// A truncated or bit-flipped transfer; retrying is right (the
		// peer's copy re-verified its own CRC when read from disk).
		p.corrupt.Add(1)
		return nil, false, err
	}
	return body, true, nil
}

// Replicate enqueues write-behind replication of (key, val) to the key's
// owner peers. It never blocks: a full queue drops the job and counts it
// (a dropped replica costs future peer hits for this key on that owner,
// nothing else). FlushReplication waits for queued jobs; tests use it.
func (c *Cluster) Replicate(key store.Key, val []byte) {
	for _, idx := range c.ring.owners(keyHash(key), c.cfg.Replicas) {
		p := c.peers[idx]
		if p.self {
			continue // the session already wrote the local store
		}
		c.repMu.Lock()
		if c.repClosed {
			c.repMu.Unlock()
			c.repDropped.Add(1)
			continue
		}
		c.repWG.Add(1)
		select {
		case c.repCh <- repJob{p: p, key: key, val: val}:
		default:
			c.repWG.Done()
			c.repDropped.Add(1)
		}
		c.repMu.Unlock()
	}
}

// FlushReplication blocks until every replication job enqueued so far has
// been attempted (delivered, failed or skipped).
func (c *Cluster) FlushReplication() { c.repWG.Wait() }

// replicationWorker drains the write-behind queue.
func (c *Cluster) replicationWorker() {
	defer c.workerWG.Done()
	for job := range c.repCh {
		c.replicateTo(job.p, job.key, job.val)
		c.repWG.Done()
	}
}

// replicateTo pushes one value to one owner, through the same breaker,
// timeout and retry machinery as fetches. Failures are absorbed.
func (c *Cluster) replicateTo(p *peer, key store.Key, val []byte) {
	if !p.br.allow(c.now()) {
		p.skips.Add(1)
		p.repErrs.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Budget)
	defer cancel()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt); err != nil {
				break
			}
		}
		if ctx.Err() != nil {
			break
		}
		p.attempts.Add(1)
		lastErr = c.putOnce(ctx, p, key, val)
		if lastErr == nil {
			p.br.success()
			p.repOK.Add(1)
			return
		}
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	p.br.failure(c.now())
	p.repErrs.Add(1)
	c.logf("cluster: replicating %s to %s: %v", key, p.addr, lastErr)
}

// putOnce performs one PUT /v1/peer/put attempt. A 404 — the peer runs
// without a durable store and cannot accept replicas — is absorbed as
// success so it never trips the breaker of a live peer.
func (c *Cluster) putOnce(ctx context.Context, p *peer, key store.Key, val []byte) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPut,
		"http://"+p.addr+"/v1/peer/put/"+key.String(), bytes.NewReader(val))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(CRCHeader, CRC(val))
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusNotFound || (resp.StatusCode >= 200 && resp.StatusCode < 300) {
		return nil
	}
	return fmt.Errorf("status %d", resp.StatusCode)
}

// backoff sleeps the jittered exponential delay for the given retry
// attempt (1-based), returning early with the context's error if the
// budget expires first.
func (c *Cluster) backoff(ctx context.Context, attempt int) error {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	// Jitter uniformly over [d/2, d] so synchronized retriers spread out.
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PeerStats is one peer's client-side health and traffic snapshot.
type PeerStats struct {
	// Addr is the peer's address; Self marks this node's own entry.
	Addr string `json:"addr"`
	Self bool   `json:"self,omitempty"`
	// Breaker is the circuit state: "closed", "open" or "half-open".
	// ConsecutiveFailures is the current failure run; BreakerOpens counts
	// lifetime open transitions; BreakerSkips counts interactions skipped
	// because the breaker was open.
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	BreakerOpens        uint64 `json:"breaker_opens"`
	BreakerSkips        uint64 `json:"breaker_skips"`
	// Attempts counts HTTP attempts (fetch and replicate); Hits/Misses
	// split completed fetches; Errors counts peers given up on after
	// retries; Corrupt counts checksum-failed transfers.
	Attempts uint64 `json:"attempts"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Errors   uint64 `json:"errors"`
	Corrupt  uint64 `json:"corrupt"`
	// Replicated counts values delivered to this owner by write-behind;
	// ReplicationErrors counts deliveries abandoned after retries.
	Replicated        uint64 `json:"replicated"`
	ReplicationErrors uint64 `json:"replication_errors"`
}

// Stats is the cluster tier's observability snapshot, served under
// /v1/stats and (per-peer health) /v1/healthz.
type Stats struct {
	// Self is this node's address; Replicas is K, the owners per key.
	Self     string `json:"self"`
	Replicas int    `json:"replicas"`
	// Fetches counts Fetch calls (local misses consulting the cluster);
	// FetchHits counts those satisfied by a peer.
	Fetches   uint64 `json:"fetches"`
	FetchHits uint64 `json:"fetch_hits"`
	// ReplicationDropped counts write-behind jobs dropped on a full
	// queue.
	ReplicationDropped uint64 `json:"replication_dropped"`
	// Peers holds one entry per cluster member, self included, sorted by
	// address.
	Peers []PeerStats `json:"peers"`
}

// Stats returns a snapshot of the tier's counters and breaker states.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Self:               c.cfg.Self,
		Replicas:           c.cfg.Replicas,
		Fetches:            c.fetches.Load(),
		FetchHits:          c.fetchHits.Load(),
		ReplicationDropped: c.repDropped.Load(),
	}
	for _, p := range c.peers {
		state, fails, opens := p.br.snapshot()
		s.Peers = append(s.Peers, PeerStats{
			Addr:                p.addr,
			Self:                p.self,
			Breaker:             state,
			ConsecutiveFailures: fails,
			BreakerOpens:        opens,
			BreakerSkips:        p.skips.Load(),
			Attempts:            p.attempts.Load(),
			Hits:                p.hits.Load(),
			Misses:              p.misses.Load(),
			Errors:              p.errs.Load(),
			Corrupt:             p.corrupt.Load(),
			Replicated:          p.repOK.Load(),
			ReplicationErrors:   p.repErrs.Load(),
		})
	}
	return s
}

// Healthy reports whether every remote peer's breaker is closed — false
// means the tier is degraded (still serving, with simulation covering the
// losses).
func (c *Cluster) Healthy() bool {
	for _, p := range c.peers {
		if p.self {
			continue
		}
		if state, _, _ := p.br.snapshot(); state != "closed" {
			return false
		}
	}
	return true
}

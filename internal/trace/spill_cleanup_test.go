package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lacc/internal/mem"
)

// assertNoOrphans fails if any file survived in the spill directory.
func assertNoOrphans(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("orphan spill file left behind: %s", e.Name())
	}
}

// TestSpillWriteFailureRemovesFile pins the error-path cleanup contract
// of BuildSpilledCorpus: a disk write that fails mid-build (here: after
// the header and part of the first stream) must not leave a partial
// spill file behind — a long sweep that leaks one orphan per failed
// build slowly fills the spill volume.
func TestSpillWriteFailureRemovesFile(t *testing.T) {
	errDiskFull := errors.New("injected: disk full")
	writes := 0
	spillWriteFault = func() error {
		writes++
		if writes > 1 { // let the header through, fail the stream body
			return errDiskFull
		}
		return nil
	}
	defer func() { spillWriteFault = nil }()

	dir := t.TempDir()
	gens := []GenFunc{func(e *Emitter) {
		for i := 0; i < 3*chunkSize; i++ { // enough to force buffered flushes
			e.Read(mem.Addr(i * 8))
		}
	}}
	sc, err := BuildSpilledCorpus(gens, filepath.Join(dir, "spill.lacctrc"))
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("BuildSpilledCorpus error = %v (corpus %v), want the injected write fault", err, sc)
	}
	assertNoOrphans(t, dir)
}

// TestSpillGeneratorPanicRemovesFile covers the other abandonment path:
// a panicking generator (a workload bug) propagates to the caller, but
// the partial spill file is still removed on the way out.
func TestSpillGeneratorPanicRemovesFile(t *testing.T) {
	dir := t.TempDir()
	gens := []GenFunc{func(e *Emitter) {
		e.Read(0)
		panic("injected workload bug")
	}}
	func() {
		defer func() {
			if p := recover(); p == nil {
				t.Fatal("generator panic did not propagate")
			}
		}()
		BuildSpilledCorpus(gens, filepath.Join(dir, "spill.lacctrc"))
	}()
	assertNoOrphans(t, dir)
}

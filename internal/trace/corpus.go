package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"

	"lacc/internal/mem"
)

// A Corpus is a fully materialized set of per-core access sequences: each
// generator runs exactly once, synchronously on the calling goroutine, and
// its output is packed into shared arena blocks. Replay hands out cheap
// ChunkStream views over the arena — no goroutines, channels or per-access
// dynamic dispatch — so one generation pays for arbitrarily many
// simulations of the same (workload, spec).
//
// A Corpus is immutable after BuildCorpus returns and safe for concurrent
// replay: views carry their own cursors and never write the arena.

// corpusBlockSize is the arena block granularity in accesses (16 B each,
// so 1 MiB blocks): big enough that per-core sequences span few segments,
// small enough that a tiny workload doesn't hold a huge block.
const corpusBlockSize = 1 << 16

// Source is a replayable trace: anything that can hand out one fresh
// stream per core. Corpus (in-memory) and SpilledCorpus (on-disk) both
// implement it; the experiment layer replays Sources without caring where
// the accesses live.
type Source interface {
	// Cores returns the number of per-core streams.
	Cores() int
	// Streams returns fresh replay views, one per core, in core order.
	// Each call returns independent cursors over the same trace.
	Streams() []Stream
}

// Corpus holds materialized per-core access sequences in arena storage.
type Corpus struct {
	// seqs lists, per core, the contiguous arena segments that make up the
	// core's sequence in emission order.
	seqs   [][][]mem.Access
	counts []uint64
	total  uint64

	// Build state (nil once BuildCorpus returns): the active arena block,
	// the start of the current core's unsealed run within it, and the core
	// being built.
	block    []mem.Access
	runStart int
	cur      int
}

// BuildCorpus runs each generator to completion on the calling goroutine
// and returns the materialized corpus. Generator panics propagate (they
// indicate workload bugs, exactly as on the live path).
func BuildCorpus(gens []GenFunc) *Corpus {
	c := &Corpus{
		seqs:   make([][][]mem.Access, len(gens)),
		counts: make([]uint64, len(gens)),
	}
	bufp := chunkPool.Get().(*[]mem.Access)
	e := &Emitter{chunk: (*bufp)[:0], sink: c}
	for i, g := range gens {
		c.cur = i
		e.gap = 0
		g(e)
		e.flush()
		c.sealRun()
	}
	*bufp = e.chunk[:0]
	chunkPool.Put(bufp)
	c.block, c.runStart = nil, 0
	return c
}

// CorpusFromSlices packs already-materialized per-core access slices into
// a corpus (arena storage, replayable views). Used to re-materialize a
// spilled trace that turned out small enough for RAM-speed replay without
// re-running its generators, and by tests.
func CorpusFromSlices(seqs [][]mem.Access) *Corpus {
	c := &Corpus{
		seqs:   make([][][]mem.Access, len(seqs)),
		counts: make([]uint64, len(seqs)),
	}
	for i, accs := range seqs {
		c.cur = i
		c.append(accs)
		c.sealRun()
	}
	c.block, c.runStart = nil, 0
	return c
}

// flush implements emitterSink: the chunk is copied into arena storage and
// the buffer handed straight back for the next chunk.
func (c *Corpus) flush(chunk []mem.Access) []mem.Access {
	c.append(chunk)
	return chunk[:0]
}

// append copies accs into the arena, sealing segments at block boundaries.
func (c *Corpus) append(accs []mem.Access) {
	c.counts[c.cur] += uint64(len(accs))
	c.total += uint64(len(accs))
	for len(accs) > 0 {
		if len(c.block) == cap(c.block) { // full (or nil before first block)
			c.sealRun()
			c.block = make([]mem.Access, 0, corpusBlockSize)
			c.runStart = 0
		}
		n := cap(c.block) - len(c.block)
		if n > len(accs) {
			n = len(accs)
		}
		c.block = append(c.block, accs[:n]...)
		accs = accs[n:]
	}
}

// sealRun closes the current core's pending segment of the active block,
// so consecutive flushes coalesce into one segment per block.
func (c *Corpus) sealRun() {
	if len(c.block) == c.runStart {
		return
	}
	seg := c.block[c.runStart:len(c.block):len(c.block)]
	c.seqs[c.cur] = append(c.seqs[c.cur], seg)
	c.runStart = len(c.block)
}

// Cores implements Source.
func (c *Corpus) Cores() int { return len(c.seqs) }

// Accesses returns core's sequence length.
func (c *Corpus) Accesses(core int) uint64 { return c.counts[core] }

// Total returns the corpus size in accesses across all cores.
func (c *Corpus) Total() uint64 { return c.total }

// Stream returns a fresh replay view of core's sequence.
func (c *Corpus) Stream(core int) Stream {
	return &corpusStream{segs: c.seqs[core]}
}

// Streams implements Source.
func (c *Corpus) Streams() []Stream {
	out := make([]Stream, len(c.seqs))
	for i := range out {
		out[i] = c.Stream(i)
	}
	return out
}

// corpusStream replays one core's arena segments. It implements
// ChunkStream so the simulator consumes whole segments with a slice index.
type corpusStream struct {
	segs [][]mem.Access
	si   int
	idx  int
}

func (s *corpusStream) Next() (mem.Access, bool) {
	for s.si < len(s.segs) {
		seg := s.segs[s.si]
		if s.idx < len(seg) {
			a := seg[s.idx]
			s.idx++
			return a, true
		}
		s.si++
		s.idx = 0
	}
	return mem.Access{}, false
}

// NextChunk hands over the undelivered remainder of the current segment.
func (s *corpusStream) NextChunk() ([]mem.Access, bool) {
	for s.si < len(s.segs) {
		seg := s.segs[s.si]
		if s.idx < len(seg) {
			out := seg[s.idx:]
			s.si++
			s.idx = 0
			return out, true
		}
		s.si++
		s.idx = 0
	}
	return nil, false
}

func (s *corpusStream) Close() {}

// SpilledCorpus is a corpus written to disk in the binary trace format,
// with a per-core offset index so each core's stream decodes independently
// and incrementally — replay memory is one chunk buffer per core instead
// of the whole trace. Built with BuildSpilledCorpus (streaming, peak
// memory of one core's sequence — the path for traces that don't fit in
// RAM).
//
// All replay streams share one file descriptor (io.SectionReader per
// stream), so a machine-wide sweep costs one fd per spilled corpus, not
// one per core per concurrent run.
type SpilledCorpus struct {
	path    string
	counts  []uint64
	offsets []int64 // byte offset of each core's stream section
	total   uint64

	mu      sync.Mutex
	f       *os.File // lazily opened shared descriptor
	refs    int      // live streams reading through f
	removed bool     // Remove called; close f once refs drains to zero
}

// countingWriter tracks the bytes written through it so spill writers can
// index stream offsets.
type countingWriter struct {
	w io.Writer
	n int64
}

// spillWriteFault, when non-nil, is consulted before every spill-file
// write and may return an error to simulate a full or failing disk
// (tests of the error-path cleanup).
var spillWriteFault func() error

func (cw *countingWriter) Write(p []byte) (int, error) {
	if spillWriteFault != nil {
		if err := spillWriteFault(); err != nil {
			return 0, err
		}
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// BuildSpilledCorpus runs each generator once, streaming its output to
// path in the binary trace format (specified in docs/TRACE_FORMAT.md),
// and returns the on-disk handle. Unlike BuildCorpus+Spill, peak memory
// is one core's access sequence (plus the chunk buffer) rather than the
// whole trace: each core is buffered only long enough to learn its record
// count (the format prefixes every stream with it), encoded, and
// released. This is the builder for Scale values whose full trace would
// not fit in memory.
func BuildSpilledCorpus(gens []GenFunc, path string) (_ *SpilledCorpus, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	// Any abandoned build must take its partial spill file with it — encode
	// and close errors, but also generator panics, which propagate to the
	// caller (workload bugs, exactly as on the live path). A sweep that
	// leaks one orphan per failed build would slowly fill the spill volume.
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(path)
		}
	}()
	cw := &countingWriter{w: f}
	bw := bufio.NewWriter(cw)
	enc := streamEncoder{bw: bw}
	sc := &SpilledCorpus{
		path:    path,
		counts:  make([]uint64, len(gens)),
		offsets: make([]int64, len(gens)),
	}
	write := func() error {
		if err := enc.header(len(gens)); err != nil {
			return err
		}
		sink := &sliceSink{}
		bufp := chunkPool.Get().(*[]mem.Access)
		defer func() {
			*bufp = (*bufp)[:0]
			chunkPool.Put(bufp)
		}()
		e := &Emitter{chunk: (*bufp)[:0], sink: sink}
		for i, g := range gens {
			sink.accs = sink.accs[:0]
			e.gap = 0
			g(e)
			e.flush()
			// Flush so cw.n is exact at the stream boundary.
			if err := bw.Flush(); err != nil {
				return err
			}
			sc.offsets[i] = cw.n
			sc.counts[i] = uint64(len(sink.accs))
			sc.total += sc.counts[i]
			if err := enc.beginStream(sc.counts[i]); err != nil {
				return err
			}
			for j := range sink.accs {
				if err := enc.record(sink.accs[j]); err != nil {
					return err
				}
			}
		}
		return bw.Flush()
	}
	if err := write(); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	ok = true
	return sc, nil
}

// sliceSink accumulates one core's accesses in a reusable slice, handing
// the chunk buffer straight back to the Emitter.
type sliceSink struct {
	accs []mem.Access
}

func (s *sliceSink) flush(chunk []mem.Access) []mem.Access {
	s.accs = append(s.accs, chunk...)
	return chunk[:0]
}

// Cores implements Source.
func (sc *SpilledCorpus) Cores() int { return len(sc.offsets) }

// Accesses returns core's sequence length.
func (sc *SpilledCorpus) Accesses(core int) uint64 { return sc.counts[core] }

// Total returns the corpus size in accesses across all cores.
func (sc *SpilledCorpus) Total() uint64 { return sc.total }

// Path returns the spill file's location.
func (sc *SpilledCorpus) Path() string { return sc.path }

// Remove deletes the spill file and closes the shared descriptor once the
// last in-flight stream is closed. Streams handed out earlier keep working
// until then (the open descriptor survives the unlink on POSIX).
func (sc *SpilledCorpus) Remove() error {
	sc.mu.Lock()
	sc.removed = true
	if sc.refs == 0 && sc.f != nil {
		sc.f.Close()
		sc.f = nil
	}
	sc.mu.Unlock()
	return os.Remove(sc.path)
}

// acquire returns the lazily opened shared descriptor, counting the caller
// as a reader until release.
func (sc *SpilledCorpus) acquire() (*os.File, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.f == nil {
		f, err := os.Open(sc.path)
		if err != nil {
			return nil, err
		}
		sc.f = f
	}
	sc.refs++
	return sc.f, nil
}

// release drops one reader; the descriptor closes once a removed corpus
// has no readers left.
func (sc *SpilledCorpus) release() {
	sc.mu.Lock()
	sc.refs--
	if sc.removed && sc.refs == 0 && sc.f != nil {
		sc.f.Close()
		sc.f = nil
	}
	sc.mu.Unlock()
}

// Stream returns a fresh replay view of core's on-disk sequence. The spill
// file was written by this process; a decode or IO failure mid-replay
// indicates an unusable environment (truncated disk, concurrent deletion)
// and panics with context rather than silently ending the stream. Close
// the stream when done (the simulator does) so the shared descriptor can
// be released after Remove.
func (sc *SpilledCorpus) Stream(core int) Stream {
	f, err := sc.acquire()
	if err != nil {
		panic(fmt.Sprintf("trace: reopening spilled corpus: %v", err))
	}
	// A section per stream over the shared descriptor: SectionReader uses
	// ReadAt, so concurrent streams never perturb each other's position.
	sect := io.NewSectionReader(f, sc.offsets[core], 1<<62-sc.offsets[core])
	dec, err := newStreamDecoder(bufio.NewReader(sect), core)
	if err != nil {
		sc.release()
		panic(fmt.Sprintf("trace: spilled corpus %s: %v", sc.path, err))
	}
	return &fileStream{sc: sc, dec: dec}
}

// Streams implements Source.
func (sc *SpilledCorpus) Streams() []Stream {
	out := make([]Stream, len(sc.offsets))
	for i := range out {
		out[i] = sc.Stream(i)
	}
	return out
}

// fileStream incrementally decodes one core's stream from a spill file in
// chunkSize batches, implementing ChunkStream like the in-memory views.
// It reads through a SectionReader over the corpus's shared descriptor,
// held acquired until Close.
type fileStream struct {
	sc  *SpilledCorpus
	dec *streamDecoder
	buf []mem.Access
	idx int
}

// fill decodes the next batch into the reusable buffer.
func (s *fileStream) fill() bool {
	if s.dec == nil { // closed
		return false
	}
	if s.buf == nil {
		s.buf = make([]mem.Access, 0, chunkSize)
	}
	s.buf = s.buf[:0]
	s.idx = 0
	for len(s.buf) < chunkSize {
		a, ok, err := s.dec.next()
		if err != nil {
			panic(fmt.Sprintf("trace: replaying spilled corpus: %v", err))
		}
		if !ok {
			break
		}
		s.buf = append(s.buf, a)
	}
	return len(s.buf) > 0
}

func (s *fileStream) Next() (mem.Access, bool) {
	if s.idx >= len(s.buf) && !s.fill() {
		return mem.Access{}, false
	}
	a := s.buf[s.idx]
	s.idx++
	return a, true
}

// NextChunk hands over the undelivered remainder of the current batch.
func (s *fileStream) NextChunk() ([]mem.Access, bool) {
	if s.idx >= len(s.buf) && !s.fill() {
		return nil, false
	}
	out := s.buf[s.idx:]
	s.idx = len(s.buf)
	return out, true
}

func (s *fileStream) Close() {
	if s.dec == nil {
		return // already closed
	}
	s.buf, s.dec = nil, nil
	s.sc.release()
}

package trace

import (
	"testing"

	"lacc/internal/mem"
)

func TestStreamDeliversEmissionOrder(t *testing.T) {
	s := New(func(e *Emitter) {
		for i := 0; i < 10000; i++ {
			if i%3 == 0 {
				e.Write(mem.Addr(i * 8))
			} else {
				e.Read(mem.Addr(i * 8))
			}
		}
	})
	defer s.Close()
	for i := 0; i < 10000; i++ {
		a, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if a.Addr != mem.Addr(i*8) {
			t.Fatalf("access %d addr = %#x", i, a.Addr)
		}
		wantKind := mem.Read
		if i%3 == 0 {
			wantKind = mem.Write
		}
		if a.Kind != wantKind {
			t.Fatalf("access %d kind = %v, want %v", i, a.Kind, wantKind)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not end")
	}
}

func TestComputeGapsAttachToNextOp(t *testing.T) {
	s := New(func(e *Emitter) {
		e.Compute(10)
		e.Compute(5)
		e.Read(0x100)
		e.Write(0x200) // no gap
		e.Compute(7)
		e.Barrier(1)
	})
	defer s.Close()
	a, _ := s.Next()
	if a.Gap != 15 {
		t.Fatalf("first gap = %d, want 15", a.Gap)
	}
	b, _ := s.Next()
	if b.Gap != 0 {
		t.Fatalf("second gap = %d, want 0", b.Gap)
	}
	c, _ := s.Next()
	if c.Kind != mem.Barrier || c.Addr != 1 || c.Gap != 7 {
		t.Fatalf("barrier op = %+v", c)
	}
}

func TestNegativeComputeIgnored(t *testing.T) {
	s := New(func(e *Emitter) {
		e.Compute(-5)
		e.Read(0)
	})
	defer s.Close()
	a, _ := s.Next()
	if a.Gap != 0 {
		t.Fatalf("gap = %d", a.Gap)
	}
}

func TestSyncOps(t *testing.T) {
	s := New(func(e *Emitter) {
		e.Lock(3)
		e.Write(0x40)
		e.Unlock(3)
	})
	defer s.Close()
	ops := []mem.AccessKind{mem.Lock, mem.Write, mem.Unlock}
	for i, want := range ops {
		a, ok := s.Next()
		if !ok || a.Kind != want {
			t.Fatalf("op %d = %+v ok=%v, want kind %v", i, a, ok, want)
		}
	}
}

func TestCloseStopsBlockedGenerator(t *testing.T) {
	done := make(chan struct{})
	s := New(func(e *Emitter) {
		defer close(done)
		for i := 0; ; i++ { // infinite generator
			e.Read(mem.Addr(i))
		}
	})
	// Consume a little, then close; the goroutine must exit.
	for i := 0; i < 100; i++ {
		s.Next()
	}
	s.Close()
	<-done // hangs (test timeout) if abort fails
	// Close is idempotent.
	s.Close()
}

func TestFromSlice(t *testing.T) {
	accs := []mem.Access{
		{Kind: mem.Read, Addr: 1},
		{Kind: mem.Write, Addr: 2},
	}
	s := FromSlice(accs)
	defer s.Close()
	for i := range accs {
		a, ok := s.Next()
		if !ok || a != accs[i] {
			t.Fatalf("op %d = %+v ok=%v", i, a, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("slice stream did not end")
	}
}

func TestEmptyGenerator(t *testing.T) {
	s := New(func(e *Emitter) {})
	defer s.Close()
	if _, ok := s.Next(); ok {
		t.Fatal("empty generator produced an access")
	}
}

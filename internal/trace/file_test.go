package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"lacc/internal/mem"
)

func sampleStreams() [][]mem.Access {
	return [][]mem.Access{
		{
			{Kind: mem.Read, Addr: 1 << 22, Gap: 3},
			{Kind: mem.Write, Addr: 1<<22 + 8},
			{Kind: mem.Barrier, Addr: 1},
		},
		{
			{Kind: mem.Lock, Addr: 42, Gap: 100},
			{Kind: mem.Read, Addr: 1 << 30},
			{Kind: mem.Unlock, Addr: 42},
		},
		nil, // an idle core
	}
}

func TestFileRoundTrip(t *testing.T) {
	in := sampleStreams()
	var buf bytes.Buffer
	if err := WriteFile(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip changed core count: %d -> %d", len(in), len(out))
	}
	for c := range in {
		if len(out[c]) != len(in[c]) {
			t.Fatalf("core %d: %d -> %d accesses", c, len(in[c]), len(out[c]))
		}
		for i := range in[c] {
			if out[c][i] != in[c][i] {
				t.Fatalf("core %d access %d: %+v -> %+v", c, i, in[c][i], out[c][i])
			}
		}
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(kinds []byte, gaps []uint32, addrs []uint64) bool {
		n := len(kinds)
		if len(gaps) < n {
			n = len(gaps)
		}
		if len(addrs) < n {
			n = len(addrs)
		}
		accs := make([]mem.Access, n)
		for i := 0; i < n; i++ {
			accs[i] = mem.Access{
				Kind: mem.AccessKind(kinds[i] % 5),
				Gap:  gaps[i],
				Addr: mem.Addr(addrs[i] & (1<<48 - 1)), // 48-bit addresses
			}
		}
		var buf bytes.Buffer
		if err := WriteFile(&buf, [][]mem.Access{accs}); err != nil {
			return false
		}
		out, err := ReadFile(&buf)
		if err != nil || len(out) != 1 || len(out[0]) != n {
			return false
		}
		for i := range accs {
			if out[0][i] != accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOTMAGIC",
		Magic,                  // truncated after magic
		Magic + "\x01",         // core count but no stream
		Magic + "\x01\x01\x09", // invalid kind 9
	}
	for i, c := range cases {
		if _, err := ReadFile(strings.NewReader(c)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err = %v, want ErrBadTrace", i, err)
		}
	}
}

// TestReadFileRejectsTrailingBytes: a valid file followed by anything —
// even a single NUL — must fail, not decode cleanly. Silent acceptance
// masked concatenation and truncated-count corruption.
func TestReadFileRejectsTrailingBytes(t *testing.T) {
	var valid bytes.Buffer
	if err := WriteFile(&valid, sampleStreams()); err != nil {
		t.Fatal(err)
	}
	for name, tail := range map[string][]byte{
		"single NUL":         {0x00},
		"garbage":            []byte("xyz"),
		"concatenated trace": valid.Bytes(),
	} {
		data := append(append([]byte{}, valid.Bytes()...), tail...)
		if _, err := ReadFile(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: err = %v, want ErrBadTrace", name, err)
		}
	}
	if _, err := ReadFile(bytes.NewReader(valid.Bytes())); err != nil {
		t.Fatalf("unmodified file: %v", err)
	}
}

func TestReadFileRejectsHugeCoreCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x0f}) // uvarint ~4G cores
	if _, err := ReadFile(&buf); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", err)
	}
}

func TestRecordAndReplay(t *testing.T) {
	gens := []GenFunc{
		func(e *Emitter) {
			for i := 0; i < 100; i++ {
				e.Compute(2)
				e.Read(mem.Addr(1<<22 + i*8))
			}
		},
		func(e *Emitter) { e.Write(1 << 23) },
	}
	streams := make([]Stream, len(gens))
	for i, g := range gens {
		streams[i] = New(g)
	}
	recorded := Record(streams)
	if len(recorded[0]) != 100 || len(recorded[1]) != 1 {
		t.Fatalf("recorded %d/%d accesses", len(recorded[0]), len(recorded[1]))
	}
	if recorded[0][0].Gap != 2 {
		t.Fatalf("gap not preserved: %+v", recorded[0][0])
	}
	replay := FromSlices(recorded)
	a, ok := replay[0].Next()
	if !ok || a != recorded[0][0] {
		t.Fatalf("replay diverged: %+v vs %+v", a, recorded[0][0])
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<62 - 1, -(1 << 62)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}

func TestFileCompression(t *testing.T) {
	// Sequential array walks should encode far below the naive 17 bytes per
	// record.
	accs := make([]mem.Access, 10000)
	for i := range accs {
		accs[i] = mem.Access{Kind: mem.Read, Addr: mem.Addr(1<<22 + i*8), Gap: 1}
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, [][]mem.Access{accs}); err != nil {
		t.Fatal(err)
	}
	if perRec := float64(buf.Len()) / float64(len(accs)); perRec > 4 {
		t.Errorf("sequential walk encodes at %.1f bytes/record, want <= 4", perRec)
	}
}

// Package trace provides deterministic per-core memory access streams.
// Workload kernels are written as ordinary imperative code against an
// Emitter. Two delivery modes exist:
//
//   - live (New): each core's kernel runs in its own goroutine and delivers
//     accesses in fixed-size chunks over a channel, so traces are never
//     fully materialized;
//   - materialized (BuildCorpus): every kernel runs once, synchronously,
//     into chunked arena storage, and replay hands out cheap ChunkStream
//     views — the experiment layer's choice, since sweeps re-simulate the
//     same trace many times.
//
// Delivery order per stream is exactly emission order in both modes, so
// simulations are deterministic regardless of goroutine scheduling and
// bit-identical across modes.
package trace

import (
	"sync"

	"lacc/internal/mem"
)

// chunkSize balances channel traffic against buffering memory.
const chunkSize = 4096

// chunkPool recycles Emitter chunk buffers for sinks that retain buffer
// ownership (the corpus build path copies each chunk into arena storage and
// hands the buffer straight back, so one pooled buffer serves a whole
// corpus build — and concurrent builds don't contend on a shared buffer).
// The channel path cannot pool: flushed buffers are owned by the consumer.
var chunkPool = sync.Pool{
	New: func() any {
		buf := make([]mem.Access, 0, chunkSize)
		return &buf
	},
}

// Stream yields one core's access sequence.
type Stream interface {
	// Next returns the next access; ok is false once the stream ends.
	Next() (a mem.Access, ok bool)
	// Close releases generator resources. It is safe to call multiple
	// times and after exhaustion.
	Close()
}

// ChunkStream is an optional Stream refinement: NextChunk returns the next
// batch of accesses in delivery order, non-empty while ok. The returned
// slice shares the stream's backing storage and is valid until the
// following NextChunk or Next call. The simulator consumes chunks when
// available, replacing one dynamic dispatch (and 16-byte return copy) per
// access with a slice index.
type ChunkStream interface {
	Stream
	NextChunk() ([]mem.Access, bool)
}

// GenFunc emits one core's trace through the Emitter. Returning ends the
// stream.
type GenFunc func(e *Emitter)

// aborted signals generator shutdown via panic/recover, the only way to
// stop arbitrary kernel code blocked on a full channel.
type aborted struct{}

// emitterSink consumes full chunks from an Emitter. flush takes ownership
// of chunk and returns the buffer to fill next (which may be chunk itself,
// reset, when the sink copies the data out).
type emitterSink interface {
	flush(chunk []mem.Access) (next []mem.Access)
}

// Emitter collects accesses from a workload kernel. Compute gaps accumulate
// and attach to the next emitted operation.
type Emitter struct {
	chunk []mem.Access
	sink  emitterSink
	gap   uint32
}

// Compute records `cycles` of pipeline compute before the next operation.
func (e *Emitter) Compute(cycles int) {
	if cycles > 0 {
		e.gap += uint32(cycles)
	}
}

// Read emits a data read of the 64-bit word at a.
func (e *Emitter) Read(a mem.Addr) { e.emit(mem.Access{Kind: mem.Read, Addr: a, Gap: e.takeGap()}) }

// Write emits a data write of the 64-bit word at a.
func (e *Emitter) Write(a mem.Addr) { e.emit(mem.Access{Kind: mem.Write, Addr: a, Gap: e.takeGap()}) }

// Barrier emits a global barrier with identifier id; every core must emit
// the same sequence of barriers.
func (e *Emitter) Barrier(id uint64) {
	e.emit(mem.Access{Kind: mem.Barrier, Addr: mem.Addr(id), Gap: e.takeGap()})
}

// Lock emits an acquire of lock id.
func (e *Emitter) Lock(id uint64) {
	e.emit(mem.Access{Kind: mem.Lock, Addr: mem.Addr(id), Gap: e.takeGap()})
}

// Unlock emits a release of lock id.
func (e *Emitter) Unlock(id uint64) {
	e.emit(mem.Access{Kind: mem.Unlock, Addr: mem.Addr(id), Gap: e.takeGap()})
}

func (e *Emitter) takeGap() uint32 {
	g := e.gap
	e.gap = 0
	return g
}

func (e *Emitter) emit(a mem.Access) {
	e.chunk = append(e.chunk, a)
	if len(e.chunk) == chunkSize {
		e.flush()
	}
}

func (e *Emitter) flush() {
	if len(e.chunk) == 0 {
		return
	}
	e.chunk = e.sink.flush(e.chunk)
}

// chanSink delivers chunks over the generator goroutine's channel. The
// consumer owns flushed buffers, so every flush starts a fresh one.
type chanSink struct {
	out  chan []mem.Access
	quit chan struct{}
}

func (s *chanSink) flush(chunk []mem.Access) []mem.Access {
	select {
	case s.out <- chunk:
		return make([]mem.Access, 0, chunkSize)
	case <-s.quit:
		panic(aborted{})
	}
}

// chanStream adapts the generator goroutine's channel to the Stream
// interface.
type chanStream struct {
	ch     chan []mem.Access
	quit   chan struct{}
	cur    []mem.Access
	idx    int
	closed bool
}

// New starts gen in a goroutine and returns its stream.
func New(gen GenFunc) Stream {
	s := &chanStream{
		ch:   make(chan []mem.Access, 2),
		quit: make(chan struct{}),
	}
	e := &Emitter{
		chunk: make([]mem.Access, 0, chunkSize),
		sink:  &chanSink{out: s.ch, quit: s.quit},
	}
	go func() {
		defer close(s.ch)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(aborted); !ok {
					panic(r) // real kernel bug: propagate
				}
			}
		}()
		gen(e)
		e.flush()
	}()
	return s
}

func (s *chanStream) Next() (mem.Access, bool) {
	for s.idx >= len(s.cur) {
		chunk, ok := <-s.ch
		if !ok {
			return mem.Access{}, false
		}
		s.cur, s.idx = chunk, 0
	}
	a := s.cur[s.idx]
	s.idx++
	return a, true
}

// NextChunk implements ChunkStream: it hands over the undelivered remainder
// of the current chunk, or receives the next one.
func (s *chanStream) NextChunk() ([]mem.Access, bool) {
	for s.idx >= len(s.cur) {
		chunk, ok := <-s.ch
		if !ok {
			return nil, false
		}
		s.cur, s.idx = chunk, 0
	}
	c := s.cur[s.idx:]
	s.idx = len(s.cur)
	return c, true
}

func (s *chanStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	close(s.quit)
	// Drain so the generator goroutine observes quit or finishes.
	for range s.ch {
	}
}

// FromSlice returns a Stream over a pre-built access slice (test helper and
// public custom-trace entry point).
func FromSlice(accesses []mem.Access) Stream {
	return &sliceStream{accesses: accesses}
}

type sliceStream struct {
	accesses []mem.Access
	idx      int
}

func (s *sliceStream) Next() (mem.Access, bool) {
	if s.idx >= len(s.accesses) {
		return mem.Access{}, false
	}
	a := s.accesses[s.idx]
	s.idx++
	return a, true
}

// NextChunk implements ChunkStream: the whole remaining slice at once.
func (s *sliceStream) NextChunk() ([]mem.Access, bool) {
	if s.idx >= len(s.accesses) {
		return nil, false
	}
	c := s.accesses[s.idx:]
	s.idx = len(s.accesses)
	return c, true
}

func (s *sliceStream) Close() {}

package trace

import (
	"bytes"
	"errors"
	"testing"

	"lacc/internal/mem"
)

// FuzzParseTrace feeds arbitrary bytes to the trace-file parser. The
// contract under test: ReadFile either succeeds or returns an error
// wrapping ErrBadTrace — it must never panic, hang or allocate without
// bound — and anything it accepts must survive a write/read round trip
// unchanged (the parse is canonical).
func FuzzParseTrace(f *testing.F) {
	// Seed corpus: the valid encodings the unit tests exercise...
	var valid bytes.Buffer
	if err := WriteFile(&valid, sampleStreams()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var dense bytes.Buffer
	accs := make([]mem.Access, 64)
	for i := range accs {
		accs[i] = mem.Access{Kind: mem.Read, Addr: mem.Addr(1<<22 + i*8), Gap: uint32(i)}
	}
	if err := WriteFile(&dense, [][]mem.Access{accs, nil}); err != nil {
		f.Fatal(err)
	}
	f.Add(dense.Bytes())
	// ...and the malformed shapes from TestReadFileRejectsGarbage.
	f.Add([]byte{})
	f.Add([]byte("NOTMAGIC"))
	f.Add([]byte(Magic))
	f.Add([]byte(Magic + "\x01"))
	f.Add([]byte(Magic + "\x01\x01\x09"))
	f.Add(append([]byte(Magic), 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f))
	f.Add(append(append([]byte{}, valid.Bytes()...), 0x00)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		streams, err := ReadFile(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("ReadFile error does not wrap ErrBadTrace: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteFile(&buf, streams); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := ReadFile(&buf)
		if err != nil {
			t.Fatalf("re-parse of re-encoded trace failed: %v", err)
		}
		if len(again) != len(streams) {
			t.Fatalf("round trip changed core count: %d -> %d", len(streams), len(again))
		}
		for c := range streams {
			if len(again[c]) != len(streams[c]) {
				t.Fatalf("core %d: round trip changed length %d -> %d",
					c, len(streams[c]), len(again[c]))
			}
			for i := range streams[c] {
				if again[c][i] != streams[c][i] {
					t.Fatalf("core %d access %d: %+v -> %+v",
						c, i, streams[c][i], again[c][i])
				}
			}
		}
	})
}

// TestReadFileMalformedRecords is the regression companion to
// FuzzParseTrace: every way a record can be malformed — truncation at each
// field boundary, an invalid kind, an overflowing gap — must surface as an
// ErrBadTrace error, never a panic or a silent partial parse.
func TestReadFileMalformedRecords(t *testing.T) {
	var valid bytes.Buffer
	if err := WriteFile(&valid, sampleStreams()); err != nil {
		t.Fatal(err)
	}
	full := valid.Bytes()

	cases := map[string][]byte{
		// Truncate a valid file at every byte boundary inside the records.
		"kind only":             append(append([]byte{}, []byte(Magic)...), 0x01, 0x02, byte(mem.Read)),
		"missing addr":          append(append([]byte{}, []byte(Magic)...), 0x01, 0x01, byte(mem.Read), 0x03),
		"kind too big":          append(append([]byte{}, []byte(Magic)...), 0x01, 0x01, byte(mem.Unlock)+1, 0x00, 0x00),
		"gap overflows":         append(append([]byte{}, []byte(Magic)...), 0x01, 0x01, byte(mem.Read), 0xff, 0xff, 0xff, 0xff, 0xff, 0x1f, 0x00),
		"count without records": append(append([]byte{}, []byte(Magic)...), 0x01, 0x7f),
	}
	for i := len(Magic) + 1; i < len(full); i += 3 {
		cases[string(rune(i))] = full[:i]
	}
	for name, data := range cases {
		if _, err := ReadFile(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%q: err = %v, want ErrBadTrace", name, err)
		}
	}
}

package trace

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lacc/internal/mem"
)

// randomGens builds deterministic pseudo-random generators whose output
// crosses many chunk and arena-block boundaries.
func randomGens(cores, ops int, seed int64) []GenFunc {
	gens := make([]GenFunc, cores)
	for c := range gens {
		c := c
		gens[c] = func(e *Emitter) {
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for i := 0; i < ops; i++ {
				a := mem.Addr(rng.Intn(1<<20) * 8)
				switch rng.Intn(6) {
				case 0:
					e.Compute(rng.Intn(10))
					e.Write(a)
				case 1:
					e.Lock(uint64(1 + rng.Intn(3)))
					e.Read(a)
					e.Unlock(uint64(1 + rng.Intn(3)))
				default:
					e.Read(a)
				}
			}
		}
	}
	return gens
}

// drain collects a stream's full sequence via Next.
func drain(s Stream) []mem.Access {
	var out []mem.Access
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	s.Close()
	return out
}

// drainChunks collects a ChunkStream's full sequence via NextChunk.
func drainChunks(s Stream) []mem.Access {
	cs := s.(ChunkStream)
	var out []mem.Access
	for {
		c, ok := cs.NextChunk()
		if !ok {
			break
		}
		out = append(out, c...)
	}
	s.Close()
	return out
}

func equalSeqs(t *testing.T, name string, got, want []mem.Access) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d accesses, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: access %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

// TestCorpusMatchesLiveStreams is the mode-equivalence property at the
// trace layer: for the same generators, the materialized corpus and the
// live goroutine/channel pipeline must deliver identical sequences,
// through both the Next and NextChunk interfaces, across replays.
func TestCorpusMatchesLiveStreams(t *testing.T) {
	const cores, ops = 4, 9000 // >chunkSize ops per core, crosses blocks
	gens := randomGens(cores, ops, 42)
	corpus := BuildCorpus(gens)
	if corpus.Cores() != cores {
		t.Fatalf("Cores() = %d, want %d", corpus.Cores(), cores)
	}
	for c := 0; c < cores; c++ {
		live := drain(New(gens[c]))
		equalSeqs(t, "corpus vs live", drain(corpus.Stream(c)), live)
		equalSeqs(t, "corpus chunks vs live", drainChunks(corpus.Stream(c)), live)
		// Replay again: views must be independent cursors.
		equalSeqs(t, "second replay", drain(corpus.Stream(c)), live)
		if corpus.Accesses(c) != uint64(len(live)) {
			t.Fatalf("Accesses(%d) = %d, want %d", c, corpus.Accesses(c), len(live))
		}
	}
	var total uint64
	for c := 0; c < cores; c++ {
		total += corpus.Accesses(c)
	}
	if corpus.Total() != total {
		t.Fatalf("Total() = %d, want %d", corpus.Total(), total)
	}
}

// TestCorpusSegmentsCoalesce pins the arena layout property: a core's
// sequence occupies at most one segment per arena block (consecutive
// flushes coalesce), so replay touches long contiguous runs.
func TestCorpusSegmentsCoalesce(t *testing.T) {
	const ops = 3 * corpusBlockSize / 2
	gens := []GenFunc{func(e *Emitter) {
		for i := 0; i < ops; i++ {
			e.Read(mem.Addr(i * 8))
		}
	}}
	c := BuildCorpus(gens)
	maxSegs := int(c.Total()/corpusBlockSize) + 1
	if got := len(c.seqs[0]); got > maxSegs {
		t.Fatalf("core 0 fragmented into %d segments, want <= %d", got, maxSegs)
	}
}

func TestCorpusEmptyStream(t *testing.T) {
	c := BuildCorpus([]GenFunc{func(e *Emitter) {}})
	if a, ok := c.Stream(0).Next(); ok {
		t.Fatalf("empty corpus yielded %+v", a)
	}
	if _, ok := c.Stream(0).(ChunkStream).NextChunk(); ok {
		t.Fatal("empty corpus yielded a chunk")
	}
}

// TestSpilledCorpusRoundTrip checks the spill-to-disk path delivers
// bit-identical sequences via independent per-core decoders over the
// shared descriptor, agrees with the standard trace format, and releases
// the descriptor once removed and fully replayed.
func TestSpilledCorpusRoundTrip(t *testing.T) {
	const cores, ops = 3, 6000
	gens := randomGens(cores, ops, 7)
	corpus := BuildCorpus(gens)
	path := filepath.Join(t.TempDir(), "spill.lacctrc")
	sc, err := BuildSpilledCorpus(gens, path)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cores() != cores || sc.Total() != corpus.Total() {
		t.Fatalf("spilled shape %d/%d, want %d/%d", sc.Cores(), sc.Total(), cores, corpus.Total())
	}
	// Consume out of core order and interleaved, as the simulator does.
	streams := sc.Streams()
	for c := cores - 1; c >= 0; c-- {
		equalSeqs(t, "spilled vs corpus", drainChunks(streams[c]), drain(corpus.Stream(c)))
		if sc.Accesses(c) != corpus.Accesses(c) {
			t.Fatalf("spilled Accesses(%d) = %d, want %d", c, sc.Accesses(c), corpus.Accesses(c))
		}
	}
	// The spill file is the standard trace format: ReadFile must agree,
	// and CorpusFromSlices must rebuild an identical in-memory corpus.
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(fh)
	fh.Close()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := CorpusFromSlices(f)
	for c := 0; c < cores; c++ {
		equalSeqs(t, "ReadFile vs corpus", f[c], drain(corpus.Stream(c)))
		equalSeqs(t, "CorpusFromSlices vs corpus", drain(rebuilt.Stream(c)), drain(corpus.Stream(c)))
	}

	// Removal with a stream in flight: the reader keeps working (POSIX
	// unlink semantics on the shared descriptor), and the descriptor is
	// released when the last stream closes.
	inFlight := sc.Stream(0)
	if err := sc.Remove(); err != nil {
		t.Fatal(err)
	}
	equalSeqs(t, "replay after Remove", drain(inFlight), drain(corpus.Stream(0)))
	sc.mu.Lock()
	leaked := sc.f != nil || sc.refs != 0
	sc.mu.Unlock()
	if leaked {
		t.Fatal("shared descriptor not released after Remove + Close")
	}
}

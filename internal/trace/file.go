package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lacc/internal/mem"
)

// Binary trace file format. A file stores the access streams of all cores
// of one run so that simulations can be replayed without re-running the
// workload kernels, compared across protocol configurations, or inspected
// offline.
//
// Layout (all integers little-endian or uvarint):
//
//	header:  magic "LACCTRC1" | uvarint cores
//	stream:  uvarint count | count * record, repeated cores times in order
//	record:  1 byte kind | uvarint gap | uvarint addr-delta-zigzag
//
// Addresses are delta-encoded (zigzag) per stream: workload traces walk
// arrays, so deltas are small and the format compresses 10-byte records to
// 2-3 bytes on typical kernels.

// Magic identifies trace files (version 1).
const Magic = "LACCTRC1"

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// WriteFile encodes the per-core access slices to w.
func WriteFile(w io.Writer, streams [][]mem.Access) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(streams))); err != nil {
		return err
	}
	for _, accs := range streams {
		if err := putUvarint(uint64(len(accs))); err != nil {
			return err
		}
		var prev uint64
		for _, a := range accs {
			if err := bw.WriteByte(byte(a.Kind)); err != nil {
				return err
			}
			if err := putUvarint(uint64(a.Gap)); err != nil {
				return err
			}
			delta := int64(uint64(a.Addr) - prev)
			if err := putUvarint(zigzag(delta)); err != nil {
				return err
			}
			prev = uint64(a.Addr)
		}
	}
	return bw.Flush()
}

// ReadFile decodes a trace file into per-core access slices.
func ReadFile(r io.Reader) ([][]mem.Access, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	cores, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: core count: %v", ErrBadTrace, err)
	}
	const maxCores = 1 << 20
	if cores > maxCores {
		return nil, fmt.Errorf("%w: implausible core count %d", ErrBadTrace, cores)
	}
	out := make([][]mem.Access, cores)
	for c := range out {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: stream %d length: %v", ErrBadTrace, c, err)
		}
		accs := make([]mem.Access, 0, min64(count, 1<<20))
		var prev uint64
		for i := uint64(0); i < count; i++ {
			kind, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("%w: stream %d record %d: %v", ErrBadTrace, c, i, err)
			}
			if mem.AccessKind(kind) > mem.Unlock {
				return nil, fmt.Errorf("%w: stream %d record %d: kind %d", ErrBadTrace, c, i, kind)
			}
			gap, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: stream %d record %d gap: %v", ErrBadTrace, c, i, err)
			}
			if gap > 1<<32-1 {
				return nil, fmt.Errorf("%w: stream %d record %d: gap %d overflows", ErrBadTrace, c, i, gap)
			}
			zz, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: stream %d record %d addr: %v", ErrBadTrace, c, i, err)
			}
			prev += uint64(unzigzag(zz))
			accs = append(accs, mem.Access{
				Kind: mem.AccessKind(kind),
				Gap:  uint32(gap),
				Addr: mem.Addr(prev),
			})
		}
		out[c] = accs
	}
	return out, nil
}

// Record drains the given streams into memory (closing them) and returns
// the per-core access slices, ready for WriteFile.
func Record(streams []Stream) [][]mem.Access {
	out := make([][]mem.Access, len(streams))
	for i, s := range streams {
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			out[i] = append(out[i], a)
		}
		s.Close()
	}
	return out
}

// FromSlices wraps per-core access slices as replayable streams.
func FromSlices(accs [][]mem.Access) []Stream {
	streams := make([]Stream, len(accs))
	for i, a := range accs {
		streams[i] = FromSlice(a)
	}
	return streams
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

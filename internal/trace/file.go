package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lacc/internal/mem"
)

// Binary trace file format. A file stores the access streams of all cores
// of one run so that simulations can be replayed without re-running the
// workload kernels, compared across protocol configurations, or inspected
// offline. The same encoding backs spilled corpora (BuildSpilledCorpus),
// which add an in-memory per-core offset index over the stream sections.
//
// Layout (uvarint = unsigned LEB128 base-128 varint):
//
//	header:  magic "LACCTRC1" | uvarint cores
//	stream:  uvarint count | count * record, repeated cores times in order
//	record:  1 byte kind | uvarint gap | uvarint addr-delta-zigzag
//
// Addresses are delta-encoded (zigzag) per stream: workload traces walk
// arrays, so deltas are small and the format compresses 10-byte records to
// 2-3 bytes on typical kernels.
//
// docs/TRACE_FORMAT.md is the normative specification (field meanings,
// decoder validation rules, versioning policy); keep it in sync with any
// change here.

// Magic identifies trace files (version 1).
const Magic = "LACCTRC1"

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// WriteFile encodes the per-core access slices to w.
func WriteFile(w io.Writer, streams [][]mem.Access) error {
	bw := bufio.NewWriter(w)
	enc := streamEncoder{bw: bw}
	if err := enc.header(len(streams)); err != nil {
		return err
	}
	for _, accs := range streams {
		if err := enc.beginStream(uint64(len(accs))); err != nil {
			return err
		}
		for _, a := range accs {
			if err := enc.record(a); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// streamEncoder writes the binary trace format (shared by WriteFile and
// Corpus.Spill).
type streamEncoder struct {
	bw   *bufio.Writer
	buf  [binary.MaxVarintLen64]byte
	prev uint64
}

func (e *streamEncoder) uvarint(v uint64) error {
	n := binary.PutUvarint(e.buf[:], v)
	_, err := e.bw.Write(e.buf[:n])
	return err
}

func (e *streamEncoder) header(cores int) error {
	if _, err := e.bw.WriteString(Magic); err != nil {
		return err
	}
	return e.uvarint(uint64(cores))
}

// beginStream starts a new per-core stream of count records, resetting the
// delta-encoding base.
func (e *streamEncoder) beginStream(count uint64) error {
	e.prev = 0
	return e.uvarint(count)
}

func (e *streamEncoder) record(a mem.Access) error {
	if err := e.bw.WriteByte(byte(a.Kind)); err != nil {
		return err
	}
	if err := e.uvarint(uint64(a.Gap)); err != nil {
		return err
	}
	delta := int64(uint64(a.Addr) - e.prev)
	if err := e.uvarint(zigzag(delta)); err != nil {
		return err
	}
	e.prev = uint64(a.Addr)
	return nil
}

// ReadFile decodes a trace file into per-core access slices.
func ReadFile(r io.Reader) ([][]mem.Access, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	cores, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: core count: %v", ErrBadTrace, err)
	}
	const maxCores = 1 << 20
	if cores > maxCores {
		return nil, fmt.Errorf("%w: implausible core count %d", ErrBadTrace, cores)
	}
	out := make([][]mem.Access, cores)
	for c := range out {
		dec, err := newStreamDecoder(br, c)
		if err != nil {
			return nil, err
		}
		accs := make([]mem.Access, 0, min64(dec.remaining, 1<<20))
		for {
			a, ok, err := dec.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			accs = append(accs, a)
		}
		out[c] = accs
	}
	// A valid file is exactly header + cores stream sections: anything
	// after the last stream is corruption (a truncated count elsewhere, a
	// concatenated file, garbage) that silent acceptance would mask.
	if _, err := br.ReadByte(); err == nil {
		return nil, fmt.Errorf("%w: trailing bytes after final stream", ErrBadTrace)
	} else if err != io.EOF {
		return nil, fmt.Errorf("%w: after final stream: %v", ErrBadTrace, err)
	}
	return out, nil
}

// streamDecoder decodes one core's record sequence from a trace file,
// record by record, so callers can replay a stream without materializing
// it (the spilled-corpus replay path) or slurp it whole (ReadFile).
type streamDecoder struct {
	br        *bufio.Reader
	remaining uint64
	read      uint64
	prev      uint64
	stream    int // for error messages
}

// newStreamDecoder reads the stream's record count and positions the
// decoder at its first record.
func newStreamDecoder(br *bufio.Reader, stream int) (*streamDecoder, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: stream %d length: %v", ErrBadTrace, stream, err)
	}
	return &streamDecoder{br: br, remaining: count, stream: stream}, nil
}

// next decodes one record; ok is false once the stream is exhausted.
func (d *streamDecoder) next() (a mem.Access, ok bool, err error) {
	if d.remaining == 0 {
		return mem.Access{}, false, nil
	}
	i := d.read
	kind, err := d.br.ReadByte()
	if err != nil {
		return mem.Access{}, false, fmt.Errorf("%w: stream %d record %d: %v", ErrBadTrace, d.stream, i, err)
	}
	if mem.AccessKind(kind) > mem.Unlock {
		return mem.Access{}, false, fmt.Errorf("%w: stream %d record %d: kind %d", ErrBadTrace, d.stream, i, kind)
	}
	gap, err := binary.ReadUvarint(d.br)
	if err != nil {
		return mem.Access{}, false, fmt.Errorf("%w: stream %d record %d gap: %v", ErrBadTrace, d.stream, i, err)
	}
	if gap > 1<<32-1 {
		return mem.Access{}, false, fmt.Errorf("%w: stream %d record %d: gap %d overflows", ErrBadTrace, d.stream, i, gap)
	}
	zz, err := binary.ReadUvarint(d.br)
	if err != nil {
		return mem.Access{}, false, fmt.Errorf("%w: stream %d record %d addr: %v", ErrBadTrace, d.stream, i, err)
	}
	d.prev += uint64(unzigzag(zz))
	d.remaining--
	d.read++
	return mem.Access{Kind: mem.AccessKind(kind), Gap: uint32(gap), Addr: mem.Addr(d.prev)}, true, nil
}

// Record drains the given streams into memory (closing them) and returns
// the per-core access slices, ready for WriteFile.
func Record(streams []Stream) [][]mem.Access {
	out := make([][]mem.Access, len(streams))
	for i, s := range streams {
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			out[i] = append(out[i], a)
		}
		s.Close()
	}
	return out
}

// FromSlices wraps per-core access slices as replayable streams.
func FromSlices(accs [][]mem.Access) []Stream {
	streams := make([]Stream, len(accs))
	for i, a := range accs {
		streams[i] = FromSlice(a)
	}
	return streams
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

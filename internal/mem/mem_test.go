package mem

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		in, want Addr
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{4095, 4032},
		{4096, 4096},
	}
	for _, c := range cases {
		if got := LineOf(c.in); got != c.want {
			t.Errorf("LineOf(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPageOf(t *testing.T) {
	cases := []struct {
		in, want Addr
	}{
		{0, 0},
		{4095, 0},
		{4096, 4096},
		{8191, 4096},
	}
	for _, c := range cases {
		if got := PageOf(c.in); got != c.want {
			t.Errorf("PageOf(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestWordInLine(t *testing.T) {
	if got := WordInLine(0); got != 0 {
		t.Errorf("WordInLine(0) = %d", got)
	}
	if got := WordInLine(8); got != 1 {
		t.Errorf("WordInLine(8) = %d", got)
	}
	if got := WordInLine(63); got != 7 {
		t.Errorf("WordInLine(63) = %d", got)
	}
	if got := WordInLine(64); got != 0 {
		t.Errorf("WordInLine(64) = %d", got)
	}
}

func TestKindString(t *testing.T) {
	kinds := map[AccessKind]string{
		Read: "read", Write: "write", Barrier: "barrier",
		Lock: "lock", Unlock: "unlock", AccessKind(99): "kind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestIsData(t *testing.T) {
	if !Read.IsData() || !Write.IsData() {
		t.Error("Read/Write must be data accesses")
	}
	if Barrier.IsData() || Lock.IsData() || Unlock.IsData() {
		t.Error("sync ops must not be data accesses")
	}
}

// Property: LineOf is idempotent, monotone within a line, and word offsets
// stay in range.
func TestLineOfProperties(t *testing.T) {
	f := func(a Addr) bool {
		l := LineOf(a)
		if LineOf(l) != l {
			return false
		}
		if l > a || a-l >= LineBytes {
			return false
		}
		w := WordInLine(a)
		return w >= 0 && w < WordsPerLine
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a line never straddles a page.
func TestLineWithinPage(t *testing.T) {
	f := func(a Addr) bool {
		return PageOf(LineOf(a)) == PageOf(LineOf(a)+LineBytes-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

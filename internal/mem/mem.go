// Package mem defines the primitive address and access types shared by the
// cache hierarchy, coherence protocol and workload trace generators.
package mem

import "fmt"

// Addr is a 48-bit physical byte address (Table 1 of the paper).
type Addr uint64

// Memory geometry constants (Table 1: 64-byte cache lines, 4 KB pages).
const (
	LineBytes = 64
	LineShift = 6
	PageBytes = 4096
	PageShift = 12
	WordBytes = 8 // 64-bit words; one word = one flit payload
	WordShift = 3
	// WordsPerLine is the number of 64-bit words in a cache line.
	WordsPerLine = LineBytes / WordBytes
)

// LineOf returns the line-aligned base address of a.
func LineOf(a Addr) Addr { return a &^ (LineBytes - 1) }

// PageOf returns the page-aligned base address of a.
func PageOf(a Addr) Addr { return a &^ (PageBytes - 1) }

// LineIndex returns the line number (address / 64).
func LineIndex(a Addr) uint64 { return uint64(a) >> LineShift }

// LineKey returns a guaranteed-non-zero key for a's cache line (the line
// index plus one). The simulator's open-addressed line-metadata tables use
// zero as their empty-slot sentinel, so line keys must never collide with
// it; with 48-bit addresses the +1 cannot overflow.
func LineKey(a Addr) uint64 { return uint64(a)>>LineShift + 1 }

// WordInLine returns the word offset (0..7) of a within its cache line.
func WordInLine(a Addr) int { return int(a>>WordShift) & (WordsPerLine - 1) }

// AccessKind discriminates the operations a workload trace can contain.
type AccessKind uint8

// Trace operation kinds. Read/Write address data memory. Barrier, Lock and
// Unlock are synchronization operations whose Addr field carries the
// barrier/lock identifier rather than a memory address.
const (
	Read AccessKind = iota
	Write
	Barrier
	Lock
	Unlock
)

// String implements fmt.Stringer for diagnostics.
func (k AccessKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Barrier:
		return "barrier"
	case Lock:
		return "lock"
	case Unlock:
		return "unlock"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsData reports whether the operation addresses data memory.
func (k AccessKind) IsData() bool { return k == Read || k == Write }

// Access is one trace operation issued by a core. Gap is the number of
// compute cycles the core spends before issuing the operation; it models the
// in-order single-issue pipeline of Table 1.
type Access struct {
	Kind AccessKind
	Addr Addr
	Gap  uint32
}

// Cycle is a simulated clock value at 1 GHz (1 cycle == 1 ns).
type Cycle uint64

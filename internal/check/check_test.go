package check

import (
	"bytes"
	"strings"
	"testing"

	"lacc/internal/mem"
	"lacc/internal/sim"
	"lacc/internal/trace"
)

// shallow returns fast bounded options for kind: deep exhaustive runs are
// lacc-check's job (CI tier); tests keep the suite quick.
func shallow(kind sim.ProtocolKind, ackwise int) Options {
	return Options{
		Config:    Bound(kind, 2, ackwise),
		MaxDepth:  5,
		MaxStates: 1 << 14,
	}
}

// TestHealthyProtocolsBounded: no registered protocol violates SWMR or
// the data-value invariant within the shallow bound.
func TestHealthyProtocolsBounded(t *testing.T) {
	variants := []struct {
		name    string
		kind    sim.ProtocolKind
		ackwise int
	}{
		{"adaptive", sim.ProtocolAdaptive, 0},
		{"adaptive-ackwise1", sim.ProtocolAdaptive, 1},
		{"mesi", sim.ProtocolMESI, 0},
		{"dragon", sim.ProtocolDragon, 0},
		{"dls", sim.ProtocolDLS, 0},
		{"neat", sim.ProtocolNeat, 0},
		{"hybrid", sim.ProtocolHybrid, 0},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			rep, err := Run(shallow(v.kind, v.ackwise))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violation != nil {
				t.Fatalf("unexpected %s violation: %s\npath: %v",
					rep.Violation.Kind, rep.Violation.Detail, rep.Violation.Path)
			}
			if rep.States < 10 {
				t.Fatalf("suspiciously small state space: %d states", rep.States)
			}
			t.Logf("%s: %d states, %d transitions, depth %d, truncated=%v",
				rep.Protocol, rep.States, rep.Transitions, rep.Depth, rep.Truncated)
		})
	}
}

// requireViolation runs opts and asserts the checker finds a violation of
// the given kind whose counterexample trace fails when replayed with the
// seeded fault and passes on a healthy simulator — the full closed loop
// from model-level bug to execution-level regression test.
func requireViolation(t *testing.T, opts Options, wantKind string) *Violation {
	t.Helper()
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Violation
	if v == nil {
		t.Fatalf("seeded fault %+v found no violation (%d states, depth %d)",
			opts.Faults, rep.States, rep.Depth)
	}
	if v.Kind != wantKind {
		t.Fatalf("violation kind %q (%s), want %q", v.Kind, v.Detail, wantKind)
	}
	if len(v.Trace) != opts.Config.Cores {
		t.Fatalf("counterexample has %d streams for %d cores", len(v.Trace), opts.Config.Cores)
	}
	if v.ReplayFailure == "" {
		t.Fatalf("counterexample trace replayed clean under fault %+v\npath: %v",
			opts.Faults, v.Path)
	}
	if clean := Replay(opts.Config, sim.Faults{}, v.Trace); clean != "" {
		t.Fatalf("counterexample trace fails on a healthy simulator too: %s", clean)
	}
	return v
}

// TestDropInvalidationsSWMR: losing invalidation messages must surface as
// an SWMR violation, for the full-map baseline and both adaptive
// directory variants.
func TestDropInvalidationsSWMR(t *testing.T) {
	for _, v := range []struct {
		name    string
		kind    sim.ProtocolKind
		ackwise int
	}{
		{"mesi", sim.ProtocolMESI, 0},
		{"adaptive", sim.ProtocolAdaptive, 0},
		{"adaptive-ackwise1", sim.ProtocolAdaptive, 1},
		{"neat", sim.ProtocolNeat, 0},
	} {
		t.Run(v.name, func(t *testing.T) {
			opts := shallow(v.kind, v.ackwise)
			opts.Faults = sim.Faults{DropInvalidations: true}
			viol := requireViolation(t, opts, "swmr")
			t.Logf("%s: %s, replay: %s", viol.Kind, viol.Detail, viol.ReplayFailure)
		})
	}
}

// TestDropUpdatesDataValue: losing update pushes leaves the directory
// structurally intact but a sharer's copy stale — a pure data-value
// violation whose probe read makes the replay fail the inline version
// check. Dragon pushes updates to every sharer; hybrid pushes them to its
// private-mode sharers.
func TestDropUpdatesDataValue(t *testing.T) {
	for _, kind := range []sim.ProtocolKind{sim.ProtocolDragon, sim.ProtocolHybrid} {
		t.Run(string(kind), func(t *testing.T) {
			opts := shallow(kind, 0)
			opts.Faults = sim.Faults{DropUpdates: true}
			v := requireViolation(t, opts, "data-value")
			if !strings.Contains(v.ReplayFailure, "coherence violation") &&
				!strings.Contains(v.ReplayFailure, "audit") {
				t.Fatalf("replay failure does not look like a value check: %s", v.ReplayFailure)
			}
		})
	}
}

// TestDropWordWritesDataValue: losing DLS remote word writes at the home
// slice advances the golden store while the home L2 line — the single
// point of coherence — keeps its stale version, the directoryless
// analogue of a lost store.
func TestDropWordWritesDataValue(t *testing.T) {
	opts := shallow(sim.ProtocolDLS, 0)
	opts.Faults = sim.Faults{DropWordWrites: true}
	v := requireViolation(t, opts, "data-value")
	if !strings.Contains(v.ReplayFailure, "coherence violation") &&
		!strings.Contains(v.ReplayFailure, "audit") {
		t.Fatalf("replay failure does not look like a value check: %s", v.ReplayFailure)
	}
}

// TestCounterexampleSurvivesTraceFormat: a counterexample round-tripped
// through the binary trace format (WriteFile/ReadFile) still reproduces
// the failure — the property that makes checker output storable as a
// permanent regression trace.
func TestCounterexampleSurvivesTraceFormat(t *testing.T) {
	opts := shallow(sim.ProtocolMESI, 0)
	opts.Faults = sim.Faults{DropInvalidations: true}
	v := requireViolation(t, opts, "swmr")

	var buf bytes.Buffer
	if err := trace.WriteFile(&buf, v.Trace); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if failure := Replay(opts.Config, opts.Faults, decoded); failure == "" {
		t.Fatal("decoded counterexample replayed clean")
	}
}

// TestFindViolationSWMR: the invariant checker itself, on a hand-built
// snapshot with two writable copies.
func TestFindViolationSWMR(t *testing.T) {
	r := &runner{cores: 2}
	snap := []sim.LineSnapshot{{
		Addr:   0x100000,
		Golden: 1,
		Copies: []sim.CopySnapshot{
			{Core: 0, State: sim.CopyModified, Version: 1},
			{Core: 1, State: sim.CopyExclusive, Version: 1},
		},
	}}
	f := r.findViolation(snap)
	if f == nil || f.kind != "swmr" {
		t.Fatalf("want swmr finding, got %+v", f)
	}
}

// TestFindViolationDataValue: a stale shared copy is flagged with a probe
// read on the stale holder.
func TestFindViolationDataValue(t *testing.T) {
	r := &runner{cores: 2}
	snap := []sim.LineSnapshot{{
		Addr:   0x100040,
		Golden: 3,
		Copies: []sim.CopySnapshot{
			{Core: 0, State: sim.CopyShared, Version: 3},
			{Core: 1, State: sim.CopyShared, Version: 2},
		},
	}}
	f := r.findViolation(snap)
	if f == nil || f.kind != "data-value" {
		t.Fatalf("want data-value finding, got %+v", f)
	}
	if f.probe == nil || f.probe.Core != 1 || f.probe.Kind != mem.Read {
		t.Fatalf("want probe read on core 1, got %+v", f.probe)
	}
}

// TestRejectsTimestampConfig: timestamp-driven classification cannot be
// state-hashed; the checker must refuse it rather than explore unsoundly.
func TestRejectsTimestampConfig(t *testing.T) {
	opts := shallow(sim.ProtocolAdaptive, 0)
	opts.Config.Protocol.UseTimestamp = true
	if _, err := Run(opts); err == nil {
		t.Fatal("UseTimestamp config accepted")
	}
}

// TestShardedConfigBounded: a Config carrying Shards > 1 must pass
// verification unchanged. The checker's single-step drive requires the
// sequential engine, and CheckValues (mandatory here) already forces it
// (sim.Config.Shards documents the fallback), so the sharded machine's
// checked state space is identical to the sequential one — asserted by
// comparing the exhaustive run against an unsharded baseline.
func TestShardedConfigBounded(t *testing.T) {
	base := shallow(sim.ProtocolAdaptive, 0)
	sharded := base
	sharded.Config.Shards = sharded.Config.Cores
	sharded.Config.EpochCycles = 64

	baseRep, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	shRep, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if shRep.Violation != nil {
		t.Fatalf("sharded config violation: %s: %s",
			shRep.Violation.Kind, shRep.Violation.Detail)
	}
	if shRep.States != baseRep.States || shRep.Transitions != baseRep.Transitions {
		t.Fatalf("sharded config changed the checked state space: %d/%d states, %d/%d transitions",
			shRep.States, baseRep.States, shRep.Transitions, baseRep.Transitions)
	}
}

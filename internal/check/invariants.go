package check

// The checked invariants, evaluated over Machine.Snapshot states. These
// are the protocol-level properties (SWMR, data-value) from the
// coherence-verification literature; the structural directory/cache
// agreement checks live in Simulator.Audit and run alongside.

import (
	"fmt"
	"strings"

	"lacc/internal/coherence"
	"lacc/internal/mem"
	"lacc/internal/sim"
)

// findViolation checks SWMR and the data-value invariant on one snapshot
// and returns the first failure, or nil.
func (r *runner) findViolation(snap []sim.LineSnapshot) *finding {
	for i := range snap {
		ls := &snap[i]

		// SWMR: a writable (E/M) copy is exclusive of every other copy.
		writable := 0
		for _, c := range ls.Copies {
			if c.State == sim.CopyExclusive || c.State == sim.CopyModified {
				writable++
			}
		}
		if writable > 1 || (writable == 1 && len(ls.Copies) > 1) {
			return &finding{
				kind: "swmr",
				detail: fmt.Sprintf("line %#x: %d writable among %d copies (%s)",
					ls.Addr, writable, len(ls.Copies), describeCopies(ls)),
			}
		}

		// Data-value: every private copy (L1 or VR replica) is current.
		for _, c := range ls.Copies {
			if c.Version != ls.Golden {
				probe := Action{Core: c.Core, Kind: mem.Read, Addr: ls.Addr}
				return &finding{
					kind: "data-value",
					detail: fmt.Sprintf("line %#x: core %d holds %v copy version %d, golden %d",
						ls.Addr, c.Core, c.State, c.Version, ls.Golden),
					probe: &probe,
				}
			}
		}

		// Data-value at the home: an Uncached or Shared L2 line is the
		// authoritative copy and must be current. (Exclusive is exempt —
		// a silent E→M upgrade leaves the home stale until the owner is
		// fetched; the owner's copy was checked above.)
		if ls.Dir != nil && ls.L2 != nil &&
			(ls.Dir.State == coherence.Uncached || ls.Dir.State == coherence.SharedState) &&
			ls.L2.Version != ls.Golden {
			f := &finding{
				kind: "data-value",
				detail: fmt.Sprintf("line %#x: %v home L2 at tile %d version %d, golden %d",
					ls.Addr, ls.Dir.State, ls.L2.Home, ls.L2.Version, ls.Golden),
			}
			if c, ok := r.coreWithoutCopy(ls); ok {
				// A fill read from the stale L2 observes the violation.
				f.probe = &Action{Core: c, Kind: mem.Read, Addr: ls.Addr}
			}
			return f
		}

		// Data-value at a dirless home (DLS): with no directory state at
		// all, the home L2 line is the single point of coherence and must
		// always carry the latest committed version. Inert for directory
		// protocols, where a data L2 line always has a directory entry.
		if ls.Dir == nil && ls.L2 != nil && ls.L2.Version != ls.Golden {
			f := &finding{
				kind: "data-value",
				detail: fmt.Sprintf("line %#x: dirless home L2 at tile %d version %d, golden %d",
					ls.Addr, ls.L2.Home, ls.L2.Version, ls.Golden),
			}
			if c, ok := r.coreWithoutCopy(ls); ok {
				f.probe = &Action{Core: c, Kind: mem.Read, Addr: ls.Addr}
			}
			return f
		}

		// Data-value off chip: a line with no on-chip copy lives in DRAM.
		if ls.L2 == nil && len(ls.Copies) == 0 && ls.DRAM != ls.Golden {
			probe := Action{Core: 0, Kind: mem.Read, Addr: ls.Addr}
			return &finding{
				kind: "data-value",
				detail: fmt.Sprintf("line %#x: off-chip, DRAM version %d, golden %d",
					ls.Addr, ls.DRAM, ls.Golden),
				probe: &probe,
			}
		}
	}
	return nil
}

// coreWithoutCopy returns the lowest core not holding any copy of the
// line, whose read would fill from the (stale) home L2.
func (r *runner) coreWithoutCopy(ls *sim.LineSnapshot) (int, bool) {
	for c := 0; c < r.cores; c++ {
		held := false
		for _, cp := range ls.Copies {
			if cp.Core == c {
				held = true
				break
			}
		}
		if !held {
			return c, true
		}
	}
	return 0, false
}

func describeCopies(ls *sim.LineSnapshot) string {
	var b strings.Builder
	for i, c := range ls.Copies {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "c%d:%v", c.Core, c.State)
	}
	return b.String()
}

package check

// Counterexample encoding: a violating interleaving, re-expressed as the
// per-core trace streams of docs/TRACE_FORMAT.md so it replays through
// sim.Run and the differential harness.
//
// The engine selects the core whose (clock, id) key is globally
// smallest; an access's key is the completion time of its predecessor on
// the same core, and its Gap — applied after selection, before the
// transaction — advances the clock first, so a gap both positions the
// core's next key and sets the current transaction's simulated time. The
// encoder schedules global step j (1-based) into the key interval
// [j·S, j·S + S/2) for a spacing S far above any single-transaction
// latency: keys then occupy disjoint, ordered intervals and the engine's
// selection order equals the checker's interleaving exactly.
//
// Real accesses all carry gap 0. They must: the mesh links and DRAM
// controllers are next-free-time queues that assume transaction times
// never decrease in execution order, and a real access carrying the gap
// to its core's next interval would execute its transaction at that
// later time — booking shared resources ahead of other cores'
// intermediate steps and delaying them out of their intervals whenever
// two cores' next-pointers cross. With gap 0 a real transaction runs at
// its own key, so times are monotone in execution order and each step
// completes within one transaction latency.
//
// The gaps ride on padding reads of a per-core private line instead.
// Positioning pads — pure L1/L1-I hits touching no shared resource, so
// their late simulated times cannot interfere — are interposed before
// each core's first real access (a first access's key is 0 and cannot be
// moved by its own gap) and between each pair of consecutive real
// accesses of a core, each carrying the gap that lands the successor at
// its interval start. A pad hits only because warm-up pads first
// cold-miss the pad line and walk the instruction footprint into the
// L1-I at small times, far below the first real interval. Exhausted
// cores retire at their last completion and are never selected again.

import (
	"fmt"
	"math"

	"lacc/internal/mem"
	"lacc/internal/sim"
	"lacc/internal/trace"
)

// stepSpacing separates scheduled steps; transactions complete within a
// few thousand cycles (DRAM, page moves included), far below it.
const stepSpacing = 1 << 20

// padBase places the per-core padding lines: distinct private pages, far
// from both the checker's data lines and the instruction region.
const padBase mem.Addr = 1 << 30

// maxWarmProbes mirrors the simulator's per-operation instruction-probe
// cap: one warm-up read advances the L1-I walk by at most this many lines.
const maxWarmProbes = 8

func padAddr(coreID int) mem.Addr {
	return padBase + mem.Addr(coreID)*mem.PageBytes
}

// Counterexample renders path as per-core trace-format streams whose
// replay through sim.Run executes exactly path's interleaving. The final
// step may panic (that can be the violation itself); any earlier failure
// is an error.
func Counterexample(cfg sim.Config, f sim.Faults, path []Action) ([][]mem.Access, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("check: empty counterexample path")
	}
	m, err := sim.NewMachineWithFaults(cfg, f)
	if err != nil {
		return nil, err
	}
	cores := cfg.Cores

	// next[j] is the next path index on step j's core (-1 none); after
	// the backward pass, first[c] is core c's first step index.
	next := make([]int, len(path))
	first := make([]int, cores)
	for c := range first {
		first[c] = -1
	}
	for j := len(path) - 1; j >= 0; j-- {
		c := path[j].Core
		if c < 0 || c >= cores {
			return nil, fmt.Errorf("check: step %d on core %d of %d", j, c, cores)
		}
		next[j] = first[c]
		first[c] = j
	}

	streams := make([][]mem.Access, cores)
	step := func(a Action, gap uint32) (panicMsg string) {
		defer func() {
			if p := recover(); p != nil {
				panicMsg = fmt.Sprint(p)
			}
		}()
		m.Step(a.Core, a.Kind, a.Addr, gap)
		return ""
	}
	// target returns the key interval start of 0-based path index j.
	target := func(j int) uint64 { return uint64(j+1) * stepSpacing }

	// Padding reads, executed (and replayed) before every real step.
	pad := func(c int, gap uint32) error {
		streams[c] = append(streams[c], mem.Access{Kind: mem.Read, Addr: padAddr(c), Gap: gap})
		if msg := step(Action{Core: c, Kind: mem.Read, Addr: padAddr(c)}, gap); msg != "" {
			return fmt.Errorf("check: padding access on core %d panicked: %s", c, msg)
		}
		return nil
	}
	// Warm-up phase: fill each active core's pad line and code footprint at
	// small times, all far below the first real step's interval. The gap of
	// 64 compute cycles feeds instrFetch enough instructions for a full
	// 8-probe walk per read; ceil(CodeLines/8) reads cover the footprint
	// and flip the core to the warm (resource-free) fetch path.
	const warmupGap = 64
	warmupReads := (cfg.CodeLines + maxWarmProbes - 1) / maxWarmProbes
	for c := 0; c < cores; c++ {
		if first[c] < 0 {
			continue
		}
		for i := 0; i < warmupReads; i++ {
			if err := pad(c, warmupGap); err != nil {
				return nil, err
			}
		}
	}
	// Positioning phase: a pure L1/L1-I hit per active core whose gap lands
	// the core's first real access at its interval start.
	for c := 0; c < cores; c++ {
		if first[c] < 0 {
			continue
		}
		tgt := target(first[c])
		key := uint64(m.Clock(c))
		if key >= tgt || tgt-key > math.MaxUint32 {
			return nil, fmt.Errorf("check: core %d warm-up completion %d cannot reach target %d", c, key, tgt)
		}
		if err := pad(c, uint32(tgt-key)); err != nil {
			return nil, err
		}
		if lat := uint64(m.Clock(c)) - tgt; lat >= stepSpacing/2 {
			return nil, fmt.Errorf("check: core %d positioning latency %d cycles exceeds step spacing", c, lat)
		}
	}

	for j, a := range path {
		if key := uint64(m.Clock(a.Core)); key < target(j) || key >= target(j)+stepSpacing/2 {
			return nil, fmt.Errorf("check: step %d key %d outside its interval at %d", j, key, target(j))
		}
		streams[a.Core] = append(streams[a.Core], mem.Access{Kind: a.Kind, Addr: a.Addr})
		if msg := step(a, 0); msg != "" {
			if j != len(path)-1 {
				return nil, fmt.Errorf("check: step %d panicked mid-path: %s", j, msg)
			}
			break // the violating final step may panic; the trace is complete
		}
		if end := uint64(m.Clock(a.Core)); end >= target(j)+stepSpacing/2 {
			return nil, fmt.Errorf("check: step %d completion %d overruns its interval", j, end)
		}
		if nj := next[j]; nj >= 0 {
			tgt := target(nj)
			key := uint64(m.Clock(a.Core))
			if key >= tgt || tgt-key > math.MaxUint32 {
				return nil, fmt.Errorf("check: step %d completion %d cannot reach target %d", j, key, tgt)
			}
			if err := pad(a.Core, uint32(tgt-key)); err != nil {
				return nil, err
			}
			if lat := uint64(m.Clock(a.Core)) - tgt; lat >= stepSpacing/2 {
				return nil, fmt.Errorf("check: step %d positioning latency %d cycles exceeds step spacing", j, lat)
			}
		}
	}
	return streams, nil
}

// Replay runs the streams through a fresh simulator carrying the same
// faults and returns the failure it produces — an error's text or a
// recovered panic (the inline checkVersion and protocol assertions
// panic). Empty means the run was clean. A counterexample trace must
// fail here; the same trace on a fault-free simulator must not.
func Replay(cfg sim.Config, f sim.Faults, streams [][]mem.Access) (failure string) {
	defer func() {
		if p := recover(); p != nil {
			failure = fmt.Sprint(p)
		}
	}()
	s, err := sim.NewWithFaults(cfg, f)
	if err != nil {
		return err.Error()
	}
	if _, err := s.Run(trace.FromSlices(streams)); err != nil {
		return err.Error()
	}
	return ""
}

package check

// Canonical state encoding: the BFS visited-set key. Soundness rests on
// two arguments.
//
// Timing independence. With UseTimestamp off and the line alphabet small
// enough to rule out capacity evictions, no protocol decision reads a
// clock, an LRU position, a mesh or DRAM queue, or a busy window — those
// only shape latencies. Two states equal under this encoding therefore
// have identical transition behavior for every action, and the checker
// may explore with zero gaps while the counterexample trace replays with
// large ones.
//
// Value abstraction. Version numbers grow without bound, but the
// protocol only ever compares them for equality (checkVersion, the
// audit), never for order on any path reachable at this bound (the
// ordered merge in L2Evict's back-invalidation requires a capacity
// eviction). Renumbering each line's versions by first appearance —
// golden, DRAM, L2, then copies in core order — preserves all equality
// patterns, collapsing the infinite value space to a handful of
// ordinals. Utilization counters are compared only against thresholds
// (>= PCT for classification, >= RATThreshold <= RATMax for promotion;
// both after increment), so values at or above max(PCT, RATMax) are
// interchangeable and saturate there.
//
// Everything behaviorally relevant is included: page classification and
// private-page owner, home L2 presence/version/dirtiness, directory
// state, owner, identified sharers (sorted; Add order does not matter),
// overflow count, the classifier's tracked cores in slot order (slots
// only move free→used between resets, so slot order is determined by the
// tracked set's history and matters to the Limited-k replacement
// policy), and every private copy's state, dirtiness, version and
// saturated utilization.

import (
	"lacc/internal/sim"
)

func (r *runner) encode(snap []sim.LineSnapshot) string {
	b := make([]byte, 0, 64*len(snap))
	for i := range snap {
		ls := &snap[i]

		// Per-line version renumbering by first appearance.
		var seen [8]uint64
		nSeen := 0
		num := func(v uint64) byte {
			for j := 0; j < nSeen; j++ {
				if seen[j] == v {
					return byte(j)
				}
			}
			if nSeen < len(seen) {
				seen[nSeen] = v
				nSeen++
				return byte(nSeen - 1)
			}
			// More distinct versions than slots: fall back to the raw
			// value folded to a byte plus the overflow marker. Unreachable
			// at checker bounds (golden+DRAM+L2+copies <= 8 sources).
			return 0xff ^ byte(v)
		}

		b = append(b, num(ls.Golden), num(ls.DRAM))
		flags := byte(0)
		if ls.PageKnown {
			flags |= 1
		}
		if ls.PageShared {
			flags |= 2
		}
		b = append(b, flags, byte(ls.PageOwner+1))

		if ls.L2 != nil {
			b = append(b, 1, byte(ls.L2.Home), num(ls.L2.Version), bit(ls.L2.Dirty))
		} else {
			b = append(b, 0)
		}

		if d := ls.Dir; d != nil {
			b = append(b, 1, byte(d.Home), byte(d.State), byte(d.Owner+1),
				byte(d.Unknown), bit(d.Overflowed), byte(len(d.Sharers)))
			for _, s := range d.Sharers {
				b = append(b, byte(s))
			}
			b = append(b, byte(len(d.Classifier)))
			for _, sc := range d.Classifier {
				ru := int(sc.RemoteUtil)
				if ru > r.satCap {
					ru = r.satCap
				}
				b = append(b, byte(sc.Core), byte(sc.Mode),
					byte(ru), byte(ru>>8), sc.RATLevel, bit(sc.Active))
			}
		} else {
			b = append(b, 0)
		}

		b = append(b, byte(len(ls.Copies)))
		for _, c := range ls.Copies {
			u := int(c.Util)
			if u > r.satCap {
				u = r.satCap
			}
			b = append(b, byte(c.Core), byte(c.State), bit(c.Dirty),
				num(c.Version), byte(u), byte(u>>8))
		}
	}
	return string(b)
}

func bit(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// Package check is a bounded explicit-state model checker for the
// simulator's coherence protocols. The golden table and Simulator.Audit
// verify executions; check verifies state spaces: it drives a Protocol
// implementation through every interleaving of a small access alphabet
// (each core reading and writing each of a few lines) by breadth-first
// search, and at every reachable state asserts
//
//   - SWMR: at most one writable (E/M) private copy exists, and never
//     alongside any other copy;
//   - the data-value invariant: every readable copy carries the latest
//     committed version — L1 copies and VR replicas always, the home L2
//     line whenever the directory is Uncached or Shared (Exclusive is
//     exempt: a silent E→M upgrade leaves the home stale by design), and
//     DRAM whenever the line is entirely off chip;
//   - directory/cache structural agreement, via Simulator.Audit.
//
// Visited states are deduplicated by a canonical encoding (encode.go)
// that captures exactly the state the protocol's future behavior depends
// on, so the reachable graph is finite and the search exhausts it.
//
// A violation is reported with its interleaving and re-encoded as a
// trace-format program (trace.go) whose replay through sim.Run executes
// exactly that interleaving — every checker counterexample is
// immediately a failing execution-level regression test.
package check

import (
	"fmt"

	"lacc/internal/mem"
	"lacc/internal/sim"
)

// Action is one checker-scheduled access: Core performs Kind at Addr.
type Action struct {
	Core int
	Kind mem.AccessKind
	Addr mem.Addr
}

// String renders the action compactly ("c1 W 0x100040").
func (a Action) String() string {
	k := "R"
	if a.Kind == mem.Write {
		k = "W"
	}
	return fmt.Sprintf("c%d %s %#x", a.Core, k, a.Addr)
}

// Options configure a bounded run.
type Options struct {
	// Config is the machine under test; Bound builds the standard small
	// model. CheckValues must be on (the data-value invariant reads the
	// golden store) and Protocol.UseTimestamp off (timestamp-driven
	// classification depends on clock values, which the canonical
	// encoding deliberately omits).
	Config sim.Config

	// Faults seeds protocol defects; the self-test mode proves the
	// checker finds them. Zero for real verification runs.
	Faults sim.Faults

	// Lines is the data-line alphabet; nil selects two consecutive lines
	// of one page. The count must stay below the L1 associativity:
	// capacity evictions would make LRU order — omitted from the
	// encoding — behaviorally relevant.
	Lines []mem.Addr

	// MaxDepth bounds the interleaving length (default 12); MaxStates
	// bounds the visited set (default 1<<18). Hitting either marks the
	// report truncated.
	MaxDepth  int
	MaxStates int
}

// Report summarizes one bounded run.
type Report struct {
	Protocol    string
	States      int  // distinct canonical states visited
	Transitions int  // (state, action) pairs explored
	Depth       int  // longest interleaving explored
	Truncated   bool // a bound was hit before the graph closed
	Violation   *Violation
}

// Violation is one invariant failure with its reproduction path.
type Violation struct {
	Kind   string // "swmr", "data-value", "audit" or "panic"
	Detail string
	Path   []Action

	// Trace is the counterexample as per-core trace-format streams
	// (append a probe read after Path for data-value violations so the
	// stale value is observed): replaying them through sim.Run executes
	// exactly the violating interleaving.
	Trace [][]mem.Access

	// ReplayFailure is the failure Trace produced when replayed through
	// a simulator carrying the same faults (error text or recovered
	// panic). Empty means the replay unexpectedly ran clean.
	ReplayFailure string
}

// Bound returns the standard small-model configuration for kind: cores
// tiles in a cores×1 mesh with one memory controller, value checking on,
// utilization histograms off and the timestamp classifier variant
// disabled. ackwisePointers > 0 overrides the directory pointer count
// (1 forces the ACKwise overflow/broadcast paths at 2+ sharers); <= 0
// keeps the default, which is full-map at these core counts.
func Bound(kind sim.ProtocolKind, cores, ackwisePointers int) sim.Config {
	cfg := sim.Default()
	cfg.Cores = cores
	cfg.MeshWidth = cores
	cfg.MemControllers = 1
	cfg.ProtocolKind = kind
	if ackwisePointers > 0 {
		cfg.AckwisePointers = ackwisePointers
	}
	cfg.CheckValues = true
	cfg.TrackUtilization = false
	cfg.Protocol.UseTimestamp = false
	cfg.CodeLines = 4
	return cfg
}

func defaultLines() []mem.Addr { return []mem.Addr{0x100000, 0x100040} }

// finding is an invariant failure before it is packaged as a Violation.
// probe, when set, is a follow-up read that observes the stale value, so
// the counterexample trace also fails the simulator's inline checkVersion
// rather than only the end-of-run audit.
type finding struct {
	kind   string
	detail string
	probe  *Action
}

// runner holds the per-run exploration state.
type runner struct {
	m       *sim.Machine
	lines   []mem.Addr
	actions []Action
	cores   int
	satCap  int // counter saturation bound for the canonical encoding
}

// Run explores the bounded state graph and returns the report; a found
// violation stops the search.
func Run(opts Options) (*Report, error) {
	cfg := opts.Config
	if !cfg.CheckValues {
		return nil, fmt.Errorf("check: CheckValues must be enabled (the data-value invariant reads the golden store)")
	}
	if cfg.Protocol.UseTimestamp {
		return nil, fmt.Errorf("check: UseTimestamp classification is time-dependent; the canonical state encoding cannot capture it")
	}
	lines := opts.Lines
	if len(lines) == 0 {
		lines = defaultLines()
	}
	if len(lines) >= cfg.L1DWays {
		return nil, fmt.Errorf("check: %d lines with %d-way L1-D caches risks capacity evictions, which the encoding does not model", len(lines), cfg.L1DWays)
	}
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 18
	}

	m, err := sim.NewMachineWithFaults(cfg, opts.Faults)
	if err != nil {
		return nil, err
	}
	var actions []Action
	for c := 0; c < cfg.Cores; c++ {
		for _, a := range lines {
			la := mem.LineOf(a)
			actions = append(actions,
				Action{Core: c, Kind: mem.Read, Addr: la},
				Action{Core: c, Kind: mem.Write, Addr: la})
		}
	}
	if len(actions) > 255 {
		return nil, fmt.Errorf("check: alphabet of %d actions exceeds the path encoding", len(actions))
	}
	satCap := cfg.Protocol.RATMax
	if cfg.Protocol.PCT > satCap {
		satCap = cfg.Protocol.PCT
	}
	r := &runner{m: m, lines: lines, actions: actions, cores: cfg.Cores, satCap: satCap}
	rep := &Report{Protocol: m.Protocol()}

	snap := m.Snapshot(lines)
	if f := r.findViolation(snap); f != nil {
		// The initial state cannot violate anything; a failure here is a
		// checker bug, not a protocol bug.
		return nil, fmt.Errorf("check: initial state invalid: %s", f.detail)
	}
	visited := map[string]struct{}{r.encode(snap): {}}
	queue := [][]uint8{nil}
	for head := 0; head < len(queue); head++ {
		path := queue[head]
		if len(path) > rep.Depth {
			rep.Depth = len(path)
		}
		if len(path) >= maxDepth {
			rep.Truncated = true
			continue
		}
		for ai := range actions {
			if len(visited) >= maxStates {
				rep.Truncated = true
				rep.States = len(visited)
				return rep, nil
			}
			full := append(append(make([]uint8, 0, len(path)+1), path...), uint8(ai))
			fd, enc, err := r.explore(full)
			if err != nil {
				return nil, err
			}
			rep.Transitions++
			if fd != nil {
				v, verr := r.violation(cfg, opts.Faults, full, fd)
				if verr != nil {
					return nil, verr
				}
				rep.Violation = v
				rep.States = len(visited)
				if len(full) > rep.Depth {
					rep.Depth = len(full)
				}
				return rep, nil
			}
			if _, ok := visited[enc]; !ok {
				visited[enc] = struct{}{}
				queue = append(queue, full)
			}
		}
	}
	rep.States = len(visited)
	return rep, nil
}

// explore replays path on a reset machine and checks every invariant at
// its final state. The returned encoding is empty when a finding is.
// Only the last step may legitimately fail: every prefix was itself an
// explored, violation-free state.
func (r *runner) explore(path []uint8) (*finding, string, error) {
	if err := r.m.Reset(); err != nil {
		return nil, "", err
	}
	for i, ai := range path[:len(path)-1] {
		if msg := r.step(r.actions[ai]); msg != "" {
			return nil, "", fmt.Errorf("check: visited prefix re-panicked at step %d: %s", i, msg)
		}
	}
	if msg := r.step(r.actions[path[len(path)-1]]); msg != "" {
		return &finding{kind: "panic", detail: msg}, "", nil
	}
	snap := r.m.Snapshot(r.lines)
	if fd := r.findViolation(snap); fd != nil {
		return fd, "", nil
	}
	if err := r.m.Audit(); err != nil {
		return &finding{kind: "audit", detail: err.Error()}, "", nil
	}
	return nil, r.encode(snap), nil
}

// step executes one access, converting a simulator panic (checkVersion,
// protocol-state assertions) into a finding instead of crashing the
// search.
func (r *runner) step(a Action) (panicMsg string) {
	defer func() {
		if p := recover(); p != nil {
			panicMsg = fmt.Sprint(p)
		}
	}()
	r.m.Step(a.Core, a.Kind, a.Addr, 0)
	return ""
}

// violation packages a finding: the decoded path, the counterexample
// trace (with the probe read appended when one exists) and the outcome of
// replaying it.
func (r *runner) violation(cfg sim.Config, f sim.Faults, path []uint8, fd *finding) (*Violation, error) {
	v := &Violation{Kind: fd.kind, Detail: fd.detail}
	for _, ai := range path {
		v.Path = append(v.Path, r.actions[ai])
	}
	trPath := v.Path
	if fd.probe != nil {
		trPath = append(append(make([]Action, 0, len(v.Path)+1), v.Path...), *fd.probe)
	}
	tr, err := Counterexample(cfg, f, trPath)
	if err != nil {
		return nil, fmt.Errorf("%w (path %v)", err, trPath)
	}
	v.Trace = tr
	v.ReplayFailure = Replay(cfg, f, tr)
	return v, nil
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"lacc/internal/experiments"
	"lacc/internal/sim"
	"lacc/internal/workloads"
)

// Request is the JSON body accepted by /v1/run and every
// /v1/experiments/* endpoint. All fields are optional unless an
// endpoint's documentation says otherwise (docs/API.md); zero values mean
// the paper's defaults (64 cores, scale 1.0, seed 0, all 21 benchmarks,
// the Table 1 machine). Fields irrelevant to an endpoint are ignored by
// it but still part of the request identity for coalescing.
type Request struct {
	// Workload names the benchmark for /v1/run (required there).
	Workload string `json:"workload,omitempty"`

	// Cores and MeshWidth set the machine geometry; MeshWidth 0 picks the
	// squarest width for Cores, and an explicit width must divide Cores.
	Cores     int `json:"cores,omitempty"`
	MeshWidth int `json:"mesh_width,omitempty"`
	// Scale is the workload problem-size multiplier (0 = 1.0); it is
	// capped by the server's MaxScale.
	Scale float64 `json:"scale,omitempty"`
	// Seed perturbs workload randomness; any value is valid and becomes
	// part of the simulation fingerprint.
	Seed uint64 `json:"seed,omitempty"`
	// Benchmarks restricts experiments to a subset (nil = all 21).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Config overrides individual Table 1 machine parameters.
	Config *ConfigOverrides `json:"config,omitempty"`

	// PCTs is the /v1/experiments/pct-sweep sweep (nil = Figure 8's 1..8).
	PCTs []int `json:"pcts,omitempty"`
	// Protocols is the /v1/experiments/protocols kind list (nil = every
	// registered protocol: MESI, Dragon, DLS, Neat, hybrid, adaptive).
	Protocols []string `json:"protocols,omitempty"`
	// Pointers is the /v1/experiments/ackwise pointer sweep (nil = {4,
	// cores}).
	Pointers []int `json:"pointers,omitempty"`
	// CoreCounts is the /v1/experiments/scaling machine-size series (nil =
	// {16, 36, 64}) and the storage-scaling series.
	CoreCounts []int `json:"core_counts,omitempty"`
	// Figure selects the artifact for /v1/experiments/figures (required
	// there): fig1, fig2, fig11, fig12, fig13, fig14, storage or
	// storage-scaling.
	Figure string `json:"figure,omitempty"`
}

// ConfigOverrides overrides individual machine parameters on top of the
// Table 1 defaults. Pointer fields distinguish "absent" from an explicit
// zero; plain fields treat zero as absent.
type ConfigOverrides struct {
	// Protocol selects the coherence protocol: adaptive (default), mesi,
	// dragon, dls, neat or hybrid.
	Protocol string `json:"protocol,omitempty"`
	// PCT is the private caching threshold (Table 1 default: 4).
	PCT int `json:"pct,omitempty"`
	// RATMax is the remote access threshold ceiling (default: 16).
	RATMax int `json:"rat_max,omitempty"`
	// NRATLevels is the RAT ladder depth (default: 2).
	NRATLevels int `json:"n_rat_levels,omitempty"`
	// UseTimestamp selects the exact Timestamp classification mode.
	UseTimestamp *bool `json:"use_timestamp,omitempty"`
	// OneWay selects the Adapt1-way protocol variant (Section 3.7).
	OneWay *bool `json:"one_way,omitempty"`
	// ClassifierK sets the Limited-k classifier size; 0 via the pointer
	// means the Complete classifier (default: 3).
	ClassifierK *int `json:"classifier_k,omitempty"`
	// AckwisePointers is the ACKwise-p pointer count (default: 4); values
	// >= cores give a full-map directory.
	AckwisePointers int `json:"ackwise_pointers,omitempty"`
	// VictimReplication enables the Victim Replication baseline.
	VictimReplication *bool `json:"victim_replication,omitempty"`
	// Shards selects the simulator's shard-parallel execution engine
	// (sim.Config.Shards): 0 or 1 keeps the sequential engine; values > 1
	// run shard workers concurrently and are not run-to-run deterministic,
	// so responses for such requests are cached per value, not reproducible
	// bit-for-bit across server restarts.
	Shards int `json:"shards,omitempty"`
}

// apply folds the overrides into cfg.
func (ov *ConfigOverrides) apply(cfg *sim.Config) {
	if ov == nil {
		return
	}
	if ov.Protocol != "" {
		cfg.ProtocolKind = sim.ProtocolKind(ov.Protocol)
	}
	if ov.PCT != 0 {
		cfg.Protocol.PCT = ov.PCT
		if cfg.Protocol.RATMax < ov.PCT {
			cfg.Protocol.RATMax = ov.PCT
		}
	}
	if ov.RATMax != 0 {
		cfg.Protocol.RATMax = ov.RATMax
	}
	if ov.NRATLevels != 0 {
		cfg.Protocol.NRATLevels = ov.NRATLevels
	}
	if ov.UseTimestamp != nil {
		cfg.Protocol.UseTimestamp = *ov.UseTimestamp
	}
	if ov.OneWay != nil {
		cfg.Protocol.OneWay = *ov.OneWay
	}
	if ov.ClassifierK != nil {
		cfg.ClassifierK = *ov.ClassifierK
	}
	if ov.AckwisePointers != 0 {
		cfg.AckwisePointers = ov.AckwisePointers
	}
	if ov.VictimReplication != nil {
		cfg.VictimReplication = *ov.VictimReplication
	}
	if ov.Shards != 0 {
		cfg.Shards = ov.Shards
	}
}

// apiError is an error with an HTTP status. Every handler failure is one;
// anything else is reported as a 500. code, when non-empty, is a stable
// machine-readable discriminator rendered alongside the message ("timeout",
// "panic"), so clients branch on it instead of parsing English.
type apiError struct {
	status int
	code   string
	msg    string
}

// Error implements error.
func (e *apiError) Error() string { return e.msg }

// badRequest builds a 400 apiError.
func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// maxBodyBytes bounds request bodies; experiment requests are small.
const maxBodyBytes = 1 << 20

// decodeRequest reads and strictly decodes the JSON request body. An
// empty body is the empty request (all defaults); unknown fields are
// rejected so typos fail loudly instead of silently running the default
// experiment.
func decodeRequest(r *http.Request) (*Request, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, badRequest("reading request body: %v", err)
	}
	if len(body) > maxBodyBytes {
		return nil, &apiError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes)}
	}
	req := &Request{}
	if len(bytes.TrimSpace(body)) == 0 {
		req.normalize()
		return req, nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return nil, badRequest("decoding request: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after JSON request object")
	}
	req.normalize()
	return req, nil
}

// normalize folds the documented scalar defaults into the request, so
// (a) validation checks the values that will actually run — an omitted
// cores field means the paper's 64-core machine and must respect the
// server's MaxCores cap exactly like an explicit 64 — and (b) an omitted
// field and its spelled-out default produce the same canonical key and
// coalesce. List-valued fields keep nil as "the endpoint's default
// list"; they coalesce only when spelled identically.
func (q *Request) normalize() {
	if q.Cores == 0 {
		q.Cores = 64
	}
	if q.Scale == 0 {
		q.Scale = 1
	}
}

// canonicalKey returns the request's canonical identity for request-level
// coalescing: the JSON re-encoding of the decoded, normalized struct, so
// bodies that differ only in field order, whitespace or spelled-out
// scalar defaults (cores, scale) coalesce onto one execution. Lists
// (benchmarks, pcts, ...) must be spelled identically to coalesce.
func (q *Request) canonicalKey() string {
	b, err := json.Marshal(q)
	if err != nil {
		// Request structs contain only marshalable fields; unreachable.
		panic(fmt.Sprintf("server: canonicalKey: %v", err))
	}
	return string(b)
}

// knownFigures is the /v1/experiments/figures artifact set (execFigures
// implements each).
var knownFigures = map[string]bool{
	"fig1": true, "fig2": true, "fig1and2": true, "fig11": true,
	"fig12": true, "fig13": true, "fig14": true,
	"storage": true, "storage-scaling": true,
}

// validate checks the request against the endpoint's required fields,
// the server's caps and the simulator's configuration rules, returning a
// 400 apiError describing the first problem — before the request costs
// an admission slot or counts as an execution.
func (s *Server) validate(endpoint string, q *Request) error {
	switch endpoint {
	case "run":
		if q.Workload == "" {
			return badRequest("missing required field \"workload\"")
		}
	case "figures":
		if q.Figure == "" {
			return badRequest("missing required field \"figure\"")
		}
		if !knownFigures[q.Figure] {
			return badRequest("unknown figure %q (want fig1, fig2, fig11, fig12, fig13, fig14, storage or storage-scaling)", q.Figure)
		}
	}
	if q.Cores < 1 || q.Cores > s.cfg.MaxCores {
		return badRequest("cores %d out of range [1, %d] (omitted cores default to 64)", q.Cores, s.cfg.MaxCores)
	}
	if q.MeshWidth < 0 {
		return badRequest("mesh_width %d is negative", q.MeshWidth)
	}
	if q.Scale <= 0 || q.Scale > s.cfg.MaxScale {
		return badRequest("scale %g out of range (0, %g] (omitted scale defaults to 1)", q.Scale, s.cfg.MaxScale)
	}
	for _, b := range q.Benchmarks {
		if _, ok := workloads.ByName(b); !ok {
			return badRequest("unknown benchmark %q (see /v1/workloads)", b)
		}
	}
	if q.Workload != "" {
		if _, ok := workloads.ByName(q.Workload); !ok {
			return badRequest("unknown workload %q (see /v1/workloads)", q.Workload)
		}
	}
	if len(q.PCTs) > maxSweepPoints {
		return badRequest("pcts lists %d points, max %d", len(q.PCTs), maxSweepPoints)
	}
	for _, pct := range q.PCTs {
		if pct < 1 || pct > maxPCT {
			return badRequest("pct %d out of range [1, %d]", pct, maxPCT)
		}
	}
	for _, p := range q.Protocols {
		if !registeredProtocol(p) {
			return badRequest("unknown protocol %q (registered: %v)", p, sim.ProtocolKinds())
		}
	}
	if len(q.Pointers) > maxSweepPoints {
		return badRequest("pointers lists %d points, max %d", len(q.Pointers), maxSweepPoints)
	}
	for _, p := range q.Pointers {
		if p < 1 || p > s.cfg.MaxCores {
			return badRequest("ackwise pointer count %d out of range [1, %d]", p, s.cfg.MaxCores)
		}
	}
	if len(q.CoreCounts) > maxSweepPoints {
		return badRequest("core_counts lists %d points, max %d", len(q.CoreCounts), maxSweepPoints)
	}
	for _, c := range q.CoreCounts {
		if c < 1 || c > s.cfg.MaxCores {
			return badRequest("core count %d out of range [1, %d]", c, s.cfg.MaxCores)
		}
	}
	// The assembled machine configuration must satisfy the simulator's own
	// rules (mesh divisibility, positive cache geometry, registered
	// protocol, classifier parameters, ...).
	if err := s.requestConfig(q).Validate(); err != nil {
		return badRequest("invalid configuration: %v", err)
	}
	return nil
}

// Sweep-size and threshold caps, so one request cannot schedule an
// unbounded batch.
const (
	maxSweepPoints = 32
	maxPCT         = 128
)

// registeredProtocol reports whether name is a registered protocol kind.
func registeredProtocol(name string) bool {
	for _, k := range sim.ProtocolKinds() {
		if string(k) == name {
			return true
		}
	}
	return false
}

// requestOptions maps the request onto experiment options: geometry,
// spec, benchmark subset, the server's session/parallelism and the
// execution context. Config overrides, when present, are folded into an
// explicit base configuration — the result normalizes into exactly the
// fingerprints the equivalent direct experiments.Options produces.
func (s *Server) requestOptions(ctx context.Context, q *Request) experiments.Options {
	o := s.options(ctx)
	o.Cores = q.Cores
	o.MeshWidth = q.MeshWidth
	o.Scale = q.Scale
	o.Seed = q.Seed
	o.Benchmarks = q.Benchmarks
	if q.Config != nil {
		cfg := s.requestConfig(q)
		o.Config = &cfg
	}
	return o
}

// requestConfig assembles the request's full machine configuration: the
// experiment-layer base (Table 1 with the functional checker off) plus
// the request's overrides.
func (s *Server) requestConfig(q *Request) sim.Config {
	o := s.options(context.Background())
	o.Cores = q.Cores
	o.MeshWidth = q.MeshWidth
	cfg := o.BaseConfig()
	q.Config.apply(&cfg)
	return cfg
}

package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lacc/internal/experiments"
	"lacc/internal/server"
	"lacc/internal/store"
)

// sweepBody is the small sweep the durable-server tests replay: 2 benches
// x 2 PCTs = 4 simulations.
func sweepBody() string {
	return fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul","dfs"],"pcts":[1,4]}`, testCores, testScale)
}

// statsOf fetches and decodes /v1/stats.
func statsOf(t *testing.T, ts *httptest.Server) server.Stats {
	t.Helper()
	status, body := get(t, ts, "/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	var st server.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	return st
}

// TestRestartWarmServer is the tentpole's acceptance proof: a server is
// started over a store directory, computes a sweep, and is "restarted"
// (new store handle, new server, cold memory). The restarted server must
// answer the same sweep byte-identically with zero simulations — every
// result decoded from disk — and say so in its counters.
func TestRestartWarmServer(t *testing.T) {
	dir := t.TempDir()

	st1, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newTestServer(t, server.Config{MaxInFlight: 2, Parallelism: 2, Store: st1})
	status, body1 := post(t, ts1, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusOK {
		t.Fatalf("first life: %d %s", status, body1)
	}
	s1 := statsOf(t, ts1)
	if s1.Session.Simulated != 4 || s1.Session.DiskWrites != 4 {
		t.Fatalf("first life session: %+v, want 4 simulated and 4 written behind", s1.Session)
	}
	if s1.Store == nil || s1.Store.Entries != 4 {
		t.Fatalf("first life store stats: %+v, want 4 entries", s1.Store)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: everything rebuilt from the directory.
	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ts2 := newTestServer(t, server.Config{MaxInFlight: 2, Parallelism: 2, Store: st2})
	status, body2 := post(t, ts2, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusOK {
		t.Fatalf("second life: %d %s", status, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("restarted server served different bytes\nfirst:  %.200s\nsecond: %.200s", body1, body2)
	}
	s2 := statsOf(t, ts2)
	if s2.Session.Simulated != 0 {
		t.Fatalf("restarted server simulated %d times, want 0 (%+v)", s2.Session.Simulated, s2.Session)
	}
	if s2.Session.DiskHits != 4 {
		t.Fatalf("restarted server took %d disk hits, want 4 (%+v)", s2.Session.DiskHits, s2.Session)
	}

	// And the health endpoint reports the durable tier.
	status, hb := get(t, ts2, "/v1/healthz")
	if status != http.StatusOK || !bytes.Contains(hb, []byte(`"durable"`)) {
		t.Fatalf("healthz of a store-backed server: %d %s", status, hb)
	}
}

// TestHealthzWithoutStore pins the disabled mode for store-less servers.
func TestHealthzWithoutStore(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	status, body := get(t, ts, "/v1/healthz")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"disabled"`)) {
		t.Fatalf("healthz: %d %s", status, body)
	}
}

// TestFlushKeepsDiskWarm pins the flush semantics with a durable tier:
// flushing drops the in-memory cache but keeps the store, so a repeated
// sweep is served from disk — exactly restart-warm, without the restart.
func TestFlushKeepsDiskWarm(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := newTestServer(t, server.Config{MaxInFlight: 2, Parallelism: 2, Store: st})

	status, body1 := post(t, ts, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusOK {
		t.Fatalf("sweep: %d %s", status, body1)
	}
	if status, body := post(t, ts, "/v1/admin/flush", ""); status != http.StatusOK {
		t.Fatalf("flush: %d %s", status, body)
	}
	status, body2 := post(t, ts, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusOK {
		t.Fatalf("sweep after flush: %d %s", status, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("flushed server served different bytes from disk")
	}
	s := statsOf(t, ts)
	if s.Session.Simulated != 0 || s.Session.DiskHits != 4 {
		t.Fatalf("post-flush session %+v, want 0 simulated and 4 disk hits", s.Session)
	}
}

// TestPanicInExperimentReturns500 injects a panic into a running
// simulation and requires a canonical 500 JSON error — and a server that
// is still alive and serving afterwards.
func TestPanicInExperimentReturns500(t *testing.T) {
	experiments.SetSimFault(func(bench string) {
		if bench == "dfs" {
			panic("injected simulation panic")
		}
	})
	defer experiments.SetSimFault(nil)

	ts := newTestServer(t, server.Config{MaxInFlight: 2, Parallelism: 2})
	status, body := post(t, ts, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", status, body)
	}
	if !bytes.Contains(body, []byte("panic in dfs")) {
		t.Fatalf("panic not surfaced in the error body: %s", body)
	}

	// The process survived; an untouched benchmark still serves.
	experiments.SetSimFault(nil)
	status, body = post(t, ts, "/v1/run",
		fmt.Sprintf(`{"workload":"matmul","cores":%d,"scale":%g}`, testCores, testScale))
	if status != http.StatusOK {
		t.Fatalf("server not serving after a recovered panic: %d %s", status, body)
	}
}

// slowFault arms a simulation fault that sleeps long enough for a short
// MaxRunTime to expire mid-batch.
func slowFault(t *testing.T, d time.Duration) {
	t.Helper()
	experiments.SetSimFault(func(string) { time.Sleep(d) })
	t.Cleanup(func() { experiments.SetSimFault(nil) })
}

// TestMaxRunTimeJSON pins the deadline contract for plain clients: an
// over-budget sweep is canceled server-side and answered 503 with the
// stable "timeout" code.
func TestMaxRunTimeJSON(t *testing.T) {
	slowFault(t, 300*time.Millisecond)
	ts := newTestServer(t, server.Config{MaxInFlight: 2, Parallelism: 1,
		MaxRunTime: 30 * time.Millisecond})

	status, body := post(t, ts, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", status, body)
	}
	var e struct{ Error, Code string }
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("non-JSON error body %q: %v", body, err)
	}
	if e.Code != "timeout" {
		t.Fatalf("error code %q, want timeout (%s)", e.Code, body)
	}
	s := statsOf(t, ts)
	if s.Timeouts != 1 {
		t.Fatalf("timeouts counter %d, want 1", s.Timeouts)
	}
}

// TestMaxRunTimeSSE pins the same deadline for streaming clients: the
// stream ends with a terminal error event carrying the timeout code.
func TestMaxRunTimeSSE(t *testing.T) {
	slowFault(t, 300*time.Millisecond)
	ts := newTestServer(t, server.Config{MaxInFlight: 2, Parallelism: 1,
		MaxRunTime: 30 * time.Millisecond})

	resp, err := http.Post(ts.URL+"/v1/experiments/pct-sweep?stream=sse",
		"application/json", strings.NewReader(sweepBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := parseSSE(t, string(raw))
	if len(events) == 0 {
		t.Fatalf("no events in %q", raw)
	}
	last := events[len(events)-1]
	if last.name != "error" {
		t.Fatalf("final event %q, want error (%q)", last.name, raw)
	}
	var e struct{ Error, Code string }
	if err := json.Unmarshal([]byte(last.data), &e); err != nil {
		t.Fatalf("bad error payload %q: %v", last.data, err)
	}
	if e.Code != "timeout" {
		t.Fatalf("error code %q, want timeout (%s)", e.Code, last.data)
	}
}

package server_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"

	"lacc/internal/server"
	"lacc/internal/store"
)

// TestServerServesThroughDiskFaults drives the whole HTTP stack over a
// filesystem that rejects every write after the store opens: each
// request must still answer 200 (results recomputed instead of
// persisted), the absorbed failures must surface as disk_errors in
// /v1/stats, and /v1/healthz must flip the store's mode to "degraded"
// while the liveness status stays ok.
func TestServerServesThroughDiskFaults(t *testing.T) {
	var failing atomic.Bool
	ffs := &store.FaultFS{Hook: func(op store.Op, path string) error {
		if failing.Load() && op == store.OpWrite {
			return errors.New("injected write error")
		}
		return nil
	}}
	st, err := store.Open(store.Options{Dir: t.TempDir(), FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	failing.Store(true)

	ts := newTestServer(t, server.Config{MaxInFlight: 2, Parallelism: 2, Store: st})

	// Two sweeps: the first simulates and fails every write-behind, the
	// second is served from the session cache — neither may surface the
	// disk trouble.
	for i := 0; i < 2; i++ {
		if status, body := post(t, ts, "/v1/experiments/pct-sweep", sweepBody()); status != http.StatusOK {
			t.Fatalf("sweep %d over a failing disk: %d %s", i, status, body)
		}
	}

	s := statsOf(t, ts)
	if s.Session.Simulated != 4 || s.Session.DiskWrites != 0 {
		t.Fatalf("session %+v, want 4 simulated and 0 successful writes", s.Session)
	}
	if s.Session.DiskErrors != 4 {
		t.Fatalf("session absorbed %d disk errors, want 4 (%+v)", s.Session.DiskErrors, s.Session)
	}
	if s.Errors != 0 {
		t.Fatalf("%d client-visible errors from a failing disk, want 0", s.Errors)
	}

	status, body := get(t, ts, "/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: %d %s", status, body)
	}
	var h struct {
		Status string             `json:"status"`
		Store  server.StoreHealth `json:"store"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("liveness %q with a degraded store, want ok", h.Status)
	}
	if h.Store.Mode != "degraded" {
		t.Errorf("store mode %q after absorbed write faults, want degraded", h.Store.Mode)
	}
}

package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// decodeBody runs a raw body through the real decode path.
func decodeBody(t *testing.T, body string) *Request {
	t.Helper()
	r := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
	q, err := decodeRequest(r)
	if err != nil {
		t.Fatalf("decodeRequest(%q): %v", body, err)
	}
	return q
}

// TestCanonicalKeyNormalizesScalarDefaults pins the coalescing contract:
// an omitted scalar and its spelled-out default produce the same key;
// differing list spellings do not.
func TestCanonicalKeyNormalizesScalarDefaults(t *testing.T) {
	base := decodeBody(t, `{"workload":"matmul"}`)
	for _, body := range []string{
		`{"workload":"matmul","cores":64}`,
		`{"workload":"matmul","scale":1}`,
		`{"scale":1.0,"cores":64,"workload":"matmul","seed":0}`,
		"  {\n\"workload\": \"matmul\"\n}  ",
	} {
		if got := decodeBody(t, body).canonicalKey(); got != base.canonicalKey() {
			t.Errorf("key(%s) = %q, want the omitted-defaults key %q", body, got, base.canonicalKey())
		}
	}
	if got := decodeBody(t, `{"workload":"matmul","cores":32}`).canonicalKey(); got == base.canonicalKey() {
		t.Error("a non-default cores value must not coalesce with the default")
	}
}

// TestCapsApplyToOmittedDefaults pins the admission-cap contract: caps
// bound the values that actually run, so an omitted cores/scale (the
// 64-core, scale-1.0 defaults) is rejected by a server capped below
// them.
func TestCapsApplyToOmittedDefaults(t *testing.T) {
	s := New(Config{MaxCores: 16, MaxScale: 0.5})
	for _, tc := range []struct{ name, body string }{
		{"omitted cores over cap", `{"workload":"matmul","scale":0.1}`},
		{"omitted scale over cap", `{"workload":"matmul","cores":16}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(tc.body)))
			if rec.Code != http.StatusBadRequest {
				t.Errorf("status %d, want 400: %s", rec.Code, rec.Body)
			}
		})
	}
	// Within caps, the same omitted fields are fine.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run",
		strings.NewReader(`{"workload":"matmul","cores":4,"scale":0.05}`)))
	if rec.Code != http.StatusOK {
		t.Errorf("capped-but-valid run: status %d: %s", rec.Code, rec.Body)
	}

	// The scaling endpoint's default series must respect the cap too.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/experiments/scaling",
		strings.NewReader(`{"scale":0.05,"benchmarks":["matmul"]}`)))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("default scaling series on capped server: status %d, want 400: %s", rec.Code, rec.Body)
	}
}

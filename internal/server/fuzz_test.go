package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lacc/internal/sim"
)

// FuzzProtocolOverrideParsing feeds arbitrary protocol-kind strings
// through the config-override path: the JSON decode must never panic, and
// the assembled machine configuration must validate exactly when the
// string names a registered protocol (or is empty, which keeps the
// adaptive default). This pins the registry as the single gatekeeper —
// no protocol name reaches a simulator without passing it.
func FuzzProtocolOverrideParsing(f *testing.F) {
	for _, k := range sim.ProtocolKinds() {
		f.Add(string(k))
	}
	f.Add("")
	f.Add("moesi")
	f.Add("ADAPTIVE")
	f.Add("dragon ")
	f.Add("mesi\x00")
	f.Add("自适应")
	f.Fuzz(func(t *testing.T, name string) {
		body, err := json.Marshal(map[string]any{
			"workload": "matmul",
			"config":   map[string]any{"protocol": name},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(string(body)))
		q, err := decodeRequest(r)
		if err != nil {
			// The decode layer only rejects malformed JSON; json.Marshal
			// produced well-formed JSON, so any string must decode.
			t.Fatalf("decodeRequest rejected %q: %v", name, err)
		}

		cfg := sim.Default()
		q.Config.apply(&cfg)
		verr := cfg.Validate()
		if name == "" || registeredProtocol(name) {
			if verr != nil {
				t.Fatalf("registered protocol %q failed validation: %v", name, verr)
			}
		} else if verr == nil {
			t.Fatalf("unregistered protocol %q passed validation", name)
		}
	})
}

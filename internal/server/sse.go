package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Server-sent-events progress streaming for long sweeps. A client that
// asks for an experiment with Accept: text/event-stream (or ?stream=sse)
// receives, instead of one JSON body at the end:
//
//	event: progress
//	data: {"done":0,"total":168}
//	...
//	event: result
//	data: {...the same canonical JSON object...}
//
// with one progress event per completed simulation, and a terminal
// "result" event (or an "error" event carrying {"error": "..."}). The
// progress total is the number of simulations the request actually runs
// after the session cache is consulted, so a fully cached sweep streams
// {"done":0,"total":0} straight into its result.
//
// SSE requests are admitted like any other execution but bypass
// request-level coalescing (each stream observes its own progress);
// their simulations still coalesce with all concurrent work through the
// session.

// wantsSSE reports whether the request asked for a progress stream: the
// ?stream=sse override, or an Accept header whose media ranges include
// text/event-stream with a non-zero quality. Parsing is deliberately
// minimal — split ranges on commas, parameters on semicolons — but a
// substring match would misread "text/event-stream;q=0", which RFC 9110
// defines as "explicitly not acceptable".
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "sse" {
		return true
	}
	for _, rng := range strings.Split(r.Header.Get("Accept"), ",") {
		parts := strings.Split(rng, ";")
		if !strings.EqualFold(strings.TrimSpace(parts[0]), "text/event-stream") {
			continue
		}
		q := 1.0
		for _, p := range parts[1:] {
			if v, ok := strings.CutPrefix(strings.ToLower(strings.TrimSpace(p)), "q="); ok {
				if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
					q = f
				}
			}
		}
		return q > 0
	}
	return false
}

// sseWriter serializes event emission onto one response stream; the
// experiment layer invokes progress callbacks from concurrent worker
// goroutines.
type sseWriter struct {
	mu sync.Mutex
	w  http.ResponseWriter
	f  http.Flusher

	// Progress high-water mark, so concurrently delivered completion
	// callbacks (worker A increments to 4, worker B to 5, B reaches the
	// writer first) never emit a stream that jumps backwards. A change of
	// total starts a new batch and resets the mark.
	lastDone  int
	lastTotal int
	haveProg  bool
}

// event emits one named event with a JSON payload.
func (sw *sseWriter) event(name string, payload any) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.emit(name, payload)
}

// emit writes one event; callers hold mu. An unmarshalable payload —
// unreachable for the fixed payload types emitted today, but load-bearing
// if one ever grows a float NaN or similar — degrades to a best-effort
// error event rather than silently dropping the event and leaving the
// client waiting on a stream that looks healthy.
func (sw *sseWriter) emit(name string, payload any) {
	body, err := json.Marshal(payload)
	if err != nil {
		// Marshal of map[string]string cannot itself fail.
		body, _ = json.Marshal(map[string]string{
			"error": fmt.Sprintf("encoding %s event: %v", name, err),
		})
		name = "error"
	}
	fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", name, body)
	if sw.f != nil {
		sw.f.Flush()
	}
}

// comment emits one SSE comment line (": text") — invisible to event
// parsers, but traffic on the wire, which is all a proxy or client
// keepalive timer needs during a long simulation gap.
func (sw *sseWriter) comment(text string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	fmt.Fprintf(sw.w, ": %s\n\n", text)
	if sw.f != nil {
		sw.f.Flush()
	}
}

// progress emits a monotone progress event, dropping reordered stale
// completions.
func (sw *sseWriter) progress(done, total int) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.haveProg && total == sw.lastTotal && done <= sw.lastDone {
		return
	}
	sw.haveProg = true
	sw.lastDone, sw.lastTotal = done, total
	sw.emit("progress", sseProgress{Done: done, Total: total})
}

// sseProgress is the payload of one progress event.
type sseProgress struct {
	// Done counts finished simulations of this request's current batch;
	// Total is the batch's simulation count after cache dedup.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// serveSSE runs one experiment while streaming progress events, ending
// with a result or error event. Admission happens before the response
// status is committed, so a saturated server still answers 429 (and a
// disconnected client waiting in the queue just goes away); only
// failures after admission arrive as error events on the 200 stream.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, q *Request, exec execFunc) {
	if err := s.acquire(r.Context()); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()

	// Dispatch rejects non-Flusher response writers before routing here
	// (experimentHandler), so the assertion cannot fail.
	flusher := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	// No Connection header: it is a hop-by-hop field that HTTP/2 (RFC
	// 9113 §8.2.2) forbids outright, and Go's HTTP/1.1 server keeps the
	// connection alive by default anyway.
	w.WriteHeader(http.StatusOK)
	sw := &sseWriter{w: w, f: flusher}
	s.stats.sseStreams.Add(1)

	// Heartbeat: comment lines at the configured cadence keep idle-timeout
	// middleboxes from cutting a stream whose next progress event is a
	// long simulation away. The goroutine is joined before this handler
	// returns — this defer is registered after the watcher's, so it runs
	// first — because a write after ServeHTTP returns is a use of a dead
	// ResponseWriter.
	if hb := s.cfg.SSEHeartbeat; hb > 0 {
		quit := make(chan struct{})
		beatDone := make(chan struct{})
		go func() {
			defer close(beatDone)
			t := time.NewTicker(hb)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					sw.comment("ping")
				case <-quit:
					return
				}
			}
		}()
		defer func() { close(quit); <-beatDone }()
	}

	// The execution context ends when the client disconnects or the server
	// drains (Drain), so shutdown is never held hostage by a long sweep.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-s.draining():
			cancel()
		case <-watchDone:
		}
	}()
	// Synchronous pre-check: a server already draining terminates the
	// stream immediately (and deterministically) instead of racing the
	// watcher goroutine against a fast experiment.
	select {
	case <-s.draining():
		cancel()
	default:
	}

	progress := sw.progress
	resp, err := s.executeAdmitted(ctx, q, exec, "", progress)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing to report
		}
		if ctx.Err() != nil {
			// Server draining with the client still connected: terminate
			// the stream with an explicit final event rather than a silent
			// connection close mid-progress.
			sw.event("error", map[string]string{"error": "server shutting down"})
			return
		}
		s.stats.errors.Add(1)
		sw.event("error", errorPayload(err))
		return
	}
	// The result event carries the identical canonical JSON object a
	// plain request would have received as its body.
	sw.mu.Lock()
	defer sw.mu.Unlock()
	fmt.Fprintf(w, "event: result\ndata: %s\n\n", compactLine(resp.body))
	if flusher != nil {
		flusher.Flush()
	}
}

// compactLine strips the canonical encoding's trailing newline so the
// JSON object stays on one SSE data line (canonical JSON contains no
// interior newlines).
func compactLine(b []byte) []byte {
	for len(b) > 0 && b[len(b)-1] == '\n' {
		b = b[:len(b)-1]
	}
	return b
}

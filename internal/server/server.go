// Package server implements lacc-serve: a long-running HTTP/JSON service
// exposing the whole experiment surface of the lacc library on top of one
// process-wide experiments.Session.
//
// The paper's central results are sweep-shaped comparisons — PCT sweeps,
// adaptive vs. full-map MESI vs. Dragon — which is exactly the query
// pattern a long-lived, cache-backed service answers orders of magnitude
// faster than repeated batch invocations: every CLI run pays full corpus
// generation and simulator warm-up, while the service shares both across
// all callers and memoizes every simulation result by its (benchmark,
// scale, seed, configuration) fingerprint.
//
// Three mechanisms shape the service (see DESIGN.md, "Serving
// experiments", and docs/API.md for the endpoint reference):
//
//   - Result caching. All requests run through one experiments.Session,
//     so a simulation executes at most once per server lifetime no matter
//     how many requests, sweeps or figure variants need it.
//   - Single-flight coalescing. Concurrent identical requests collapse
//     into one execution at two levels: byte-identical request bodies
//     share one handler execution (and one encoded response), and
//     distinct requests whose sweeps overlap share the in-flight
//     simulations themselves through the session.
//   - Bounded admission. At most MaxInFlight experiment executions run
//     concurrently; up to MaxQueue more wait their turn, and everything
//     beyond that is rejected immediately with 429 so overload degrades
//     predictably instead of collapsing the process.
//
// Request contexts propagate all the way into the experiment worker pool:
// when a client disconnects, the simulations still queued for its request
// are abandoned (in-flight ones complete into the shared cache). A
// request coalesced across several clients is canceled only when the last
// interested client disconnects.
package server

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lacc/internal/cluster"
	"lacc/internal/experiments"
	"lacc/internal/store"
)

// Config parameterizes the service. The zero value serves with sensible
// defaults: a fresh session, GOMAXPROCS simulation parallelism, 2
// concurrent experiment executions, a 64-deep admission queue and the
// validation caps of defaultMaxCores/defaultMaxScale.
type Config struct {
	// Session is the process-wide result cache and simulator pool every
	// request runs through. Nil creates a fresh one.
	Session *experiments.Session

	// MaxInFlight bounds concurrently executing experiment requests (each
	// of which runs up to Parallelism simulations). <= 0 means 2.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; a request
	// arriving with the queue full is rejected with 429 Too Many Requests.
	// <= 0 means 64.
	MaxQueue int
	// Parallelism bounds concurrent simulations per experiment execution
	// (experiments.Options.Parallelism). <= 0 means GOMAXPROCS.
	Parallelism int

	// MaxCores caps the per-request machine size accepted by validation
	// (simulation memory grows with cores). <= 0 means 256.
	MaxCores int
	// MaxScale caps the per-request problem-size multiplier (trace length
	// and corpus memory grow with scale). <= 0 means 8.
	MaxScale float64

	// Store, when non-nil, is the crash-safe durable result tier: the
	// default session is built over it (read-through before simulating,
	// write-behind after), admin flushes replace the session but keep the
	// store, and /v1/stats and /v1/healthz report its health. The server
	// never closes the store; the owning process does, after
	// http.Server.Shutdown. Ignored when an explicit Session is supplied
	// (attach the store to that session instead).
	Store *store.Store
	// Cluster, when non-nil, is the peer result tier: the default session
	// consults it below the durable store (fetch from the key's owners
	// before simulating, replicate fresh results behind), the peer
	// endpoints serve this node's store to other members, and /v1/stats
	// and /v1/healthz report per-peer breaker state. Like the store, the
	// cluster client is owned by the process, not the server: close it
	// after the HTTP listener has drained. Ignored when an explicit
	// Session is supplied (build that session over the cluster instead).
	Cluster *cluster.Cluster
	// SSEHeartbeat is the idle-keepalive cadence of progress streams: a
	// comment line (": ping") is written at this interval so proxies and
	// clients never mistake a long simulation gap for a dead connection.
	// 0 means 15s; < 0 disables heartbeats.
	SSEHeartbeat time.Duration
	// MaxRunTime bounds one experiment execution's wall clock after
	// admission: an execution exceeding it is canceled through the
	// experiment layer's context and answered with 503 and error code
	// "timeout", so one oversized sweep cannot pin an execution slot
	// forever. <= 0 means unlimited.
	MaxRunTime time.Duration
	// Logf, when non-nil, receives one line per absorbed durable-tier
	// failure and recovered panic. Nil discards them.
	Logf func(format string, args ...any)
}

// Defaults for the zero Config.
const (
	defaultMaxInFlight  = 2
	defaultMaxQueue     = 64
	defaultMaxCores     = 256
	defaultMaxScale     = 8.0
	defaultSSEHeartbeat = 15 * time.Second
)

// normalize applies the documented defaults.
func (c Config) normalize() Config {
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Session == nil {
		// The typed-nil guard matters: assigning a nil *cluster.Cluster to
		// the PeerTier interface directly would make the session dial a
		// tier that isn't there.
		var peers experiments.PeerTier
		if c.Cluster != nil {
			peers = c.Cluster
		}
		c.Session = experiments.NewSessionWithTiers(c.Store, peers, c.Logf)
	}
	if c.SSEHeartbeat == 0 {
		c.SSEHeartbeat = defaultSSEHeartbeat
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = defaultMaxInFlight
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = defaultMaxQueue
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxCores <= 0 {
		c.MaxCores = defaultMaxCores
	}
	if c.MaxScale <= 0 {
		c.MaxScale = defaultMaxScale
	}
	return c
}

// Server is the lacc-serve HTTP handler. Construct with New; a Server is
// safe for concurrent use and serves until its process exits (it holds no
// resources needing explicit shutdown beyond the http.Server wrapping it).
type Server struct {
	cfg Config
	mux *http.ServeMux

	// session is swapped atomically by the admin flush endpoint; batches
	// in flight keep the session they started with.
	session atomic.Pointer[experiments.Session]

	// sem holds one token per concurrently executing experiment request
	// (admission control); queued counts requests waiting for a token.
	sem    chan struct{}
	queued atomic.Int64

	// single coalesces byte-identical in-flight request bodies.
	single singleflight

	// drain is closed by Drain when the process begins shutting down;
	// in-flight SSE streams observe it and end with a terminal event.
	drain     chan struct{}
	drainOnce sync.Once

	stats serverStats
}

// Drain begins shutdown: in-flight SSE streams are canceled and close
// with a terminal error event instead of holding their connections until
// the experiment completes. Call it before http.Server.Shutdown, whose
// connection drain would otherwise wait on arbitrarily long streams.
// Safe to call multiple times; plain JSON requests are unaffected (they
// finish and count toward Shutdown's drain as usual).
func (s *Server) Drain() { s.drainOnce.Do(func() { close(s.drain) }) }

// draining returns the channel closed when shutdown begins.
func (s *Server) draining() <-chan struct{} { return s.drain }

// serverStats aggregates the monotonic counters behind /v1/stats.
type serverStats struct {
	requests      atomic.Uint64 // API requests routed to a handler
	rejected      atomic.Uint64 // 429 admission rejections
	errors        atomic.Uint64 // 4xx/5xx responses other than 429
	coalesced     atomic.Uint64 // requests joined onto an identical in-flight one
	executed      atomic.Uint64 // experiment executions actually performed
	inFlight      atomic.Int64  // executions holding an admission token now
	peakInFlight  atomic.Int64  // high-water mark of inFlight
	flushes       atomic.Uint64 // admin cache flushes
	sseStreams    atomic.Uint64 // progress streams served
	canceledByCtx atomic.Uint64 // executions abandoned by client disconnect
	timeouts      atomic.Uint64 // executions canceled by MaxRunTime
	panics        atomic.Uint64 // handler panics recovered into 500s
	peerGets      atomic.Uint64 // peer fetches served from the local store
	peerPuts      atomic.Uint64 // replicas accepted into the local store

	// execMeanNanos is an EWMA (α = 1/4) of completed execution wall
	// clock, feeding the Retry-After estimate on 429 responses.
	execMeanNanos atomic.Int64
}

// noteExecDuration folds one completed execution's wall clock into the
// EWMA. Lock-free: racing updates may each fold against the same old
// mean, which only costs a little smoothing accuracy.
func (st *serverStats) noteExecDuration(d time.Duration) {
	for {
		old := st.execMeanNanos.Load()
		next := int64(d)
		if old != 0 {
			next = old - old/4 + int64(d)/4
		}
		if st.execMeanNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds estimates when a rejected client should try again:
// the requests ahead of it (every queue slot plus itself), paced by the
// recent mean execution time across MaxInFlight lanes, clamped to
// [1s, 5min]. With no executions observed yet the estimate is the floor.
func (s *Server) retryAfterSeconds() int {
	mean := time.Duration(s.stats.execMeanNanos.Load())
	if mean <= 0 {
		return 1
	}
	ahead := s.queued.Load() + 1
	wait := time.Duration(ahead) * mean / time.Duration(s.cfg.MaxInFlight)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// New builds the service handler for cfg.
func New(cfg Config) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		drain: make(chan struct{}),
	}
	s.session.Store(cfg.Session)
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// ServeHTTP implements http.Handler. It is also the outermost panic
// barrier: a panic escaping any handler is recovered into a canonical 500
// JSON error instead of net/http's default (which kills the connection
// with an empty reply and a stack on stderr). Deeper layers have their own
// barriers — executeAdmitted recovers executor panics so single-flight
// waiters still get an answer, and the experiment worker pool recovers
// simulation panics per job — so this one only catches panics in routing,
// decoding and response writing.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			s.stats.panics.Add(1)
			s.cfg.Logf("server: panic serving %s %s: %v", r.Method, r.URL.Path, p)
			// If the handler already committed its response this write is a
			// no-op on the status line; the connection still dies cleanly.
			s.writeError(w, &apiError{status: http.StatusInternalServerError,
				code: "panic", msg: "internal error (handler panicked)"})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// errBusy is returned by acquire when the admission queue is full.
var errBusy = &apiError{status: http.StatusTooManyRequests,
	msg: "server saturated: all execution slots busy and the admission queue is full"}

// acquire blocks until the request may execute (an admission token is
// free), the admission queue overflows (errBusy) or ctx is canceled. The
// caller must release() after the execution when acquire returns nil.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		s.noteInFlight()
		return nil
	default:
	}
	// No free slot: join the bounded wait queue. The CAS loop keeps the
	// queued gauge within MaxQueue at every instant — /v1/stats documents
	// queued <= max_queue as an invariant — rejecting arrivals that find
	// the queue full.
	for {
		n := s.queued.Load()
		if n >= int64(s.cfg.MaxQueue) {
			s.stats.rejected.Add(1)
			return errBusy
		}
		if s.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		s.noteInFlight()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// noteInFlight bumps the in-flight gauge and its high-water mark.
func (s *Server) noteInFlight() {
	n := s.stats.inFlight.Add(1)
	for {
		peak := s.stats.peakInFlight.Load()
		if n <= peak || s.stats.peakInFlight.CompareAndSwap(peak, n) {
			return
		}
	}
}

// release returns an admission token.
func (s *Server) release() {
	s.stats.inFlight.Add(-1)
	<-s.sem
}

// options assembles the experiment options for one execution: the shared
// session, the server's parallelism bound and the execution's context.
func (s *Server) options(ctx context.Context) experiments.Options {
	return experiments.Options{
		Parallelism: s.cfg.Parallelism,
		Session:     s.session.Load(),
		Context:     ctx,
	}
}

// singleflight coalesces concurrent executions keyed by the canonical
// request body: the first request (the leader) executes and every
// byte-identical concurrent request waits for — and shares — its encoded
// response. The call's execution context is detached from any one client
// and canceled only when every joined client has disconnected, so a
// leader's disconnect never kills the work for the others.
//
// Entries live only while in flight: once the leader completes, the key is
// forgotten, and later identical requests re-execute (cheaply — their
// simulations hit the session cache).
type singleflight struct {
	mu    sync.Mutex
	calls map[string]*sfCall
}

// sfCall is one in-flight coalesced execution.
type sfCall struct {
	done   chan struct{}      // closed once resp/err are final
	cancel context.CancelFunc // cancels the execution context
	refs   int                // joined clients still interested
	dead   bool               // every client left; the execution is doomed

	resp *response
	err  error
}

// join returns the in-flight call for key, or creates one (leading=true)
// whose execution context is the returned ctx. Either way the caller is
// counted as interested until leave. A dead call — every earlier client
// disconnected, so its execution is unwinding with a cancellation it
// would be wrong for a fresh client to inherit — is replaced, not
// joined.
func (sf *singleflight) join(key string) (c *sfCall, ctx context.Context, leading bool) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if c, ok := sf.calls[key]; ok && !c.dead {
		c.refs++
		return c, nil, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	c = &sfCall{done: make(chan struct{}), cancel: cancel, refs: 1}
	if sf.calls == nil {
		sf.calls = map[string]*sfCall{}
	}
	sf.calls[key] = c
	return c, ctx, true
}

// leave drops one interested client; the last one out marks the call
// dead and cancels the execution.
func (sf *singleflight) leave(c *sfCall) {
	sf.mu.Lock()
	c.refs--
	last := c.refs == 0
	if last {
		c.dead = true
	}
	sf.mu.Unlock()
	if last {
		c.cancel()
	}
}

// finish publishes the result and retires the key so future requests
// re-execute against the (now warm) session cache. A dead call may have
// been replaced under its key already; only the current occupant is
// removed.
func (sf *singleflight) finish(key string, c *sfCall, resp *response, err error) {
	sf.mu.Lock()
	if sf.calls[key] == c {
		delete(sf.calls, key)
	}
	sf.mu.Unlock()
	c.resp, c.err = resp, err
	close(c.done)
}

package server

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWantsSSE pins the Accept parsing down to media-range granularity:
// an explicit q=0 means "not acceptable" (RFC 9110 §12.4.2), and a
// substring match must not be fooled by lookalike tokens.
func TestWantsSSE(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"application/json", false},
		{"*/*", false},
		{"text/event-stream", true},
		{"TEXT/Event-Stream", true},
		{"  text/event-stream  ", true},
		{"application/json, text/event-stream", true},
		{"text/event-stream; q=0.5", true},
		{"text/event-stream;q=1.000", true},
		{"text/event-stream; q=0", false},
		{"text/event-stream;q=0.0, application/json", false},
		{"text/event-stream; Q=0.000", false},
		{"text/event-stream-extended", false},
		{"application/json;profile=text/event-stream", false},
	}
	for _, c := range cases {
		r := httptest.NewRequest("POST", "/v1/experiments/pct-sweep", nil)
		if c.accept != "" {
			r.Header.Set("Accept", c.accept)
		}
		if got := wantsSSE(r); got != c.want {
			t.Errorf("Accept %q: wantsSSE = %v, want %v", c.accept, got, c.want)
		}
	}

	r := httptest.NewRequest("POST", "/v1/experiments/pct-sweep?stream=sse", nil)
	r.Header.Set("Accept", "application/json")
	if !wantsSSE(r) {
		t.Error("?stream=sse override ignored")
	}
}

// TestEmitMarshalFailure: an unmarshalable payload must surface as a
// best-effort error event on the stream, not vanish.
func TestEmitMarshalFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &sseWriter{w: rec}
	sw.event("progress", map[string]float64{"rate": math.NaN()})

	body := rec.Body.String()
	if !strings.HasPrefix(body, "event: error\n") {
		t.Fatalf("degraded event is not an error event: %q", body)
	}
	if !strings.Contains(body, "encoding progress event") {
		t.Errorf("error payload does not name the failed event: %q", body)
	}
	if !strings.HasSuffix(body, "\n\n") {
		t.Errorf("event not terminated by a blank line: %q", body)
	}

	// And a healthy payload still emits normally.
	rec = httptest.NewRecorder()
	sw = &sseWriter{w: rec}
	sw.event("progress", sseProgress{Done: 1, Total: 2})
	if got := rec.Body.String(); got != "event: progress\ndata: {\"done\":1,\"total\":2}\n\n" {
		t.Errorf("healthy emit = %q", got)
	}
}

package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lacc/internal/experiments"
)

// TestServeHTTPPanicBarrier drives a panic through the outermost barrier:
// a handler that panics before any experiment machinery is involved must
// come back as a canonical 500 JSON error with the "panic" code, and the
// counter must record it.
func TestServeHTTPPanicBarrier(t *testing.T) {
	s := New(Config{})
	s.mux.HandleFunc("GET /v1/test-panic", func(http.ResponseWriter, *http.Request) {
		panic("handler boom")
	})

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/test-panic", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, `"code":"panic"`) {
		t.Fatalf("body %q lacks the panic code", body)
	}
	if got := s.stats.panics.Load(); got != 1 {
		t.Fatalf("panics counter %d, want 1", got)
	}

	// The barrier recovered; the next request is served normally.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after recovered panic: %d", rec.Code)
	}
}

// TestExecuteAdmittedPanicBarrier pins the mid-level barrier: an executor
// that panics becomes an apiError (so single-flight still publishes an
// outcome to coalesced waiters) rather than unwinding through the
// handler.
func TestExecuteAdmittedPanicBarrier(t *testing.T) {
	s := New(Config{})
	q := &Request{Cores: 4, Scale: 0.05}
	boom := func(context.Context, *Server, *Request, experiments.Options) (any, error) {
		panic("executor boom")
	}
	_, err := s.executeAdmitted(context.Background(), q, boom, "", nil)
	if err == nil {
		t.Fatal("panicking executor reported success")
	}
	var ae *apiError
	if !errors.As(err, &ae) || ae.code != "panic" || ae.status != http.StatusInternalServerError {
		t.Fatalf("panic surfaced as %#v, want a 500 apiError with code panic", err)
	}
	if got := s.stats.panics.Load(); got != 1 {
		t.Fatalf("panics counter %d, want 1", got)
	}
}

package server

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"lacc/internal/cluster"
	"lacc/internal/store"
)

// The server side of the peer protocol: two endpoints exposing this
// node's durable store to other cluster members, bodies CRC-framed in
// both directions (cluster.CRCHeader). They are deliberately dumb — a
// keyed byte store over HTTP — so every robustness decision (retries,
// breakers, budgets) lives in the client tier where it is testable with
// injected faults. The endpoints are served even when Config.Cluster is
// nil: membership is the fetching node's concern, and a node addressed
// by a stale peer list merely answers 404s.

// maxPeerValueBytes bounds one accepted replica body, mirroring the
// cluster client's transfer cap.
const maxPeerValueBytes = 16 << 20

// peerKey parses the {key} path segment (the hex form of a store key).
func peerKey(r *http.Request) (store.Key, bool) {
	var k store.Key
	b, err := hex.DecodeString(r.PathValue("key"))
	if err != nil || len(b) != len(k) {
		return k, false
	}
	copy(k[:], b)
	return k, true
}

// writePeerError answers a peer-protocol request with a JSON error.
// Peer misses and malformed peer traffic are kept out of the client
// error counter — they are cluster traffic, tallied by the peer
// counters, not failed API requests.
func writePeerError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(append(body, '\n'))
}

// handlePeerGet serves one stored result's canonical bytes to a fetching
// peer. 404 is the authoritative miss (no store configured, or the key
// is absent); the body travels under its CRC-32C so the fetcher can
// reject damaged transfers.
func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	key, ok := peerKey(r)
	if !ok {
		writePeerError(w, http.StatusBadRequest, "malformed key %q (want %d hex bytes)", r.PathValue("key"), len(key))
		return
	}
	st := s.session.Load().Store()
	if st == nil {
		writePeerError(w, http.StatusNotFound, "no durable store on this node")
		return
	}
	val, ok := st.Get(key)
	if !ok {
		writePeerError(w, http.StatusNotFound, "not found")
		return
	}
	s.stats.peerGets.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cluster.CRCHeader, cluster.CRC(val))
	w.Write(val)
}

// handlePeerPut accepts one replicated result into the local store. The
// body must verify against its CRC header — a replica damaged in flight
// is rejected, never persisted — and store failures are absorbed into a
// 500 the replicating peer retries; its write-behind is best-effort
// either way. 404 tells storeless nodes apart from failing ones.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	key, ok := peerKey(r)
	if !ok {
		writePeerError(w, http.StatusBadRequest, "malformed key %q (want %d hex bytes)", r.PathValue("key"), len(key))
		return
	}
	st := s.session.Load().Store()
	if st == nil {
		writePeerError(w, http.StatusNotFound, "no durable store on this node")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPeerValueBytes+1))
	if err != nil {
		writePeerError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxPeerValueBytes {
		writePeerError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxPeerValueBytes)
		return
	}
	if err := cluster.VerifyCRC(body, r.Header.Get(cluster.CRCHeader)); err != nil {
		writePeerError(w, http.StatusBadRequest, "replica rejected: %v", err)
		return
	}
	if err := st.Put(key, body); err != nil {
		writePeerError(w, http.StatusInternalServerError, "storing replica: %v", err)
		return
	}
	s.stats.peerPuts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// ClusterHealth is the peer-tier section of /v1/healthz.
type ClusterHealth struct {
	// Mode is "disabled" (single-node), "ok" (every remote peer's breaker
	// closed) or "degraded" (at least one peer unreachable or suspect —
	// the node keeps serving, with simulation covering the lost hits).
	Mode string `json:"mode"`
	// Self is this node's own address in the membership.
	Self string `json:"self,omitempty"`
	// Peers carries each member's breaker state and traffic counters.
	Peers []cluster.PeerStats `json:"peers,omitempty"`
}

// clusterHealth snapshots the peer tier.
func (s *Server) clusterHealth() ClusterHealth {
	c := s.cfg.Cluster
	if c == nil {
		return ClusterHealth{Mode: "disabled"}
	}
	mode := "ok"
	if !c.Healthy() {
		mode = "degraded"
	}
	st := c.Stats()
	return ClusterHealth{Mode: mode, Self: st.Self, Peers: st.Peers}
}

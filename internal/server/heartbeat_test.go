package server_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"lacc/internal/server"
)

// TestSSEHeartbeatInterleavesWithProgress pins the stream-keepalive
// contract: with execution slowed well past the heartbeat cadence, the
// raw SSE body carries comment pings between the progress events — so a
// proxy idle timer always sees traffic — and the events themselves are
// untouched by the interleaving.
func TestSSEHeartbeatInterleavesWithProgress(t *testing.T) {
	slowFault(t, 150*time.Millisecond)
	ts := newTestServer(t, server.Config{
		MaxInFlight:  2,
		Parallelism:  1, // serialize the 4 simulations: ≥600ms of gaps
		SSEHeartbeat: 25 * time.Millisecond,
	})

	resp, err := http.Post(ts.URL+"/v1/experiments/pct-sweep?stream=sse",
		"application/json", strings.NewReader(sweepBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	if n := strings.Count(body, ": ping"); n < 2 {
		t.Errorf("stream carried %d heartbeats over ~600ms at a 25ms cadence, want at least 2\n%s", n, body)
	}
	if !strings.Contains(body, "event: progress") || !strings.Contains(body, "event: result") {
		t.Fatalf("heartbeats displaced the real events:\n%s", body)
	}
	// Heartbeats are comments: strip them and the stream must parse as
	// the usual event sequence ending in a result.
	var events []string
	for _, block := range strings.Split(body, "\n\n") {
		if block == "" || strings.HasPrefix(block, ": ") {
			continue
		}
		events = append(events, strings.SplitN(block, "\n", 2)[0])
	}
	if len(events) == 0 || events[len(events)-1] != "event: result" {
		t.Fatalf("stream without heartbeats does not end in a result event: %v", events)
	}
}

// TestSSEHeartbeatDisabled: a negative cadence turns heartbeats off
// entirely.
func TestSSEHeartbeatDisabled(t *testing.T) {
	slowFault(t, 100*time.Millisecond)
	ts := newTestServer(t, server.Config{SSEHeartbeat: -1})
	resp, err := http.Post(ts.URL+"/v1/experiments/pct-sweep?stream=sse",
		"application/json", strings.NewReader(sweepBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), ": ping") {
		t.Fatalf("disabled heartbeat still pinged:\n%s", raw)
	}
}

package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRetryAfterOn429 pins the Retry-After contract deterministically
// through the admission state machine: a saturated server's 429 carries
// a Retry-After estimate in whole seconds — the floor with no execution
// history, and (requests ahead × recent mean execution time ÷ execution
// lanes) once the EWMA has data.
func TestRetryAfterOn429(t *testing.T) {
	s := New(Config{MaxInFlight: 2, MaxQueue: 1})
	ctx := context.Background()

	// Saturate: both slots held, the one queue slot occupied by a parked
	// waiter.
	for i := 0; i < 2; i++ {
		if err := s.acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	waiterCtx, stopWaiter := context.WithCancel(ctx)
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		s.acquire(waiterCtx)
	}()
	for s.queued.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	defer func() { stopWaiter(); <-waiterDone }()

	reject := func() *http.Response {
		t.Helper()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/experiments/pct-sweep",
			strings.NewReader(`{"cores":4,"scale":0.05,"benchmarks":["matmul"],"pcts":[1]}`))
		s.ServeHTTP(rec, req)
		resp := rec.Result()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
		}
		return resp
	}

	// No executions observed yet: the floor estimate.
	if got := reject().Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After with no execution history = %q, want \"1\"", got)
	}

	// With a 4s mean, one queued request and this one make 2 ahead across
	// 2 lanes: 2 × 4s ÷ 2 = 4 seconds.
	s.stats.noteExecDuration(4 * time.Second)
	if got := reject().Header.Get("Retry-After"); got != "4" {
		t.Errorf("Retry-After with 4s mean = %q, want \"4\"", got)
	}

	// The estimate is clamped: even an absurd mean advises at most 5
	// minutes.
	s.stats.execMeanNanos.Store(int64(2 * time.Hour))
	if got := reject().Header.Get("Retry-After"); got != "300" {
		t.Errorf("Retry-After clamp = %q, want \"300\"", got)
	}

	// Errors other than 429 carry no Retry-After.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(`{"workload":"nope"}`)))
	if resp := rec.Result(); resp.StatusCode == http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "" {
		t.Errorf("non-429 error: status %d Retry-After %q, want no header", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	s.release()
	s.release()
}

// TestExecMeanEWMA sanity-checks the estimator's folding: it starts at
// the first sample and moves a quarter of the way toward each new one.
func TestExecMeanEWMA(t *testing.T) {
	var st serverStats
	st.noteExecDuration(time.Second)
	if got := time.Duration(st.execMeanNanos.Load()); got != time.Second {
		t.Fatalf("first sample: mean %v, want 1s", got)
	}
	st.noteExecDuration(5 * time.Second)
	if got := time.Duration(st.execMeanNanos.Load()); got != 2*time.Second {
		t.Fatalf("after 1s,5s samples: mean %v, want 2s", got)
	}
}

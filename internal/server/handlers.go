package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"lacc/internal/cluster"
	"lacc/internal/experiments"
	"lacc/internal/sim"
	"lacc/internal/store"
	"lacc/internal/workloads"
)

// routes wires the endpoint table. Method-qualified patterns (Go 1.22
// ServeMux) give free 405s on wrong methods.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/admin/flush", s.handleFlush)
	s.mux.HandleFunc("GET /v1/peer/get/{key}", s.handlePeerGet)
	s.mux.HandleFunc("PUT /v1/peer/put/{key}", s.handlePeerPut)
	for name, exec := range executors {
		pattern := "POST /v1/experiments/" + name
		if name == "run" {
			pattern = "POST /v1/run"
		}
		s.mux.HandleFunc(pattern, s.experimentHandler(name, exec))
	}
}

// execFunc executes one experiment request and returns the result object
// to encode. o carries the session, context and (for SSE) the progress
// callback; implementations must thread it into every experiment call.
type execFunc func(ctx context.Context, s *Server, q *Request, o experiments.Options) (any, error)

// executors maps endpoint names to executions. "run" is special-cased to
// the /v1/run pattern by routes.
var executors = map[string]execFunc{
	"run":       execRun,
	"pct-sweep": execPCTSweep,
	"protocols": execProtocols,
	"ackwise":   execAckwise,
	"victim":    execVictim,
	"scaling":   execScaling,
	"figures":   execFigures,
}

// execRun simulates one workload under one configuration (validate
// guarantees Workload is set and known).
func execRun(ctx context.Context, s *Server, q *Request, o experiments.Options) (any, error) {
	return experiments.Baseline(o, q.Workload, s.requestConfig(q))
}

// execPCTSweep runs the Figures 8-11 sweep grid.
func execPCTSweep(ctx context.Context, s *Server, q *Request, o experiments.Options) (any, error) {
	return experiments.RunPCTSweep(o, q.PCTs)
}

// execProtocols runs the cross-protocol comparison.
func execProtocols(ctx context.Context, s *Server, q *Request, o experiments.Options) (any, error) {
	var kinds []sim.ProtocolKind
	for _, p := range q.Protocols {
		kinds = append(kinds, sim.ProtocolKind(p))
	}
	return experiments.ProtocolComparison(o, kinds)
}

// execAckwise runs the ACKwise-p pointer sweep.
func execAckwise(ctx context.Context, s *Server, q *Request, o experiments.Options) (any, error) {
	return experiments.AckwiseComparison(o, q.Pointers)
}

// execVictim runs the victim-replication three-way comparison.
func execVictim(ctx context.Context, s *Server, q *Request, o experiments.Options) (any, error) {
	return experiments.VictimReplication(o)
}

// execScaling runs the machine-size scaling study. The default series
// must respect the server's machine-size cap exactly like explicit
// core_counts (which validate() already bounds).
func execScaling(ctx context.Context, s *Server, q *Request, o experiments.Options) (any, error) {
	counts := q.CoreCounts
	if len(counts) == 0 {
		counts = experiments.DefaultScalingCores
		for _, c := range counts {
			if c > s.cfg.MaxCores {
				return nil, badRequest("default core_counts %v exceed this server's max cores %d; pass core_counts explicitly", counts, s.cfg.MaxCores)
			}
		}
	}
	return experiments.PerformanceScaling(o, counts)
}

// execFigures regenerates one paper artifact by name.
func execFigures(ctx context.Context, s *Server, q *Request, o experiments.Options) (any, error) {
	switch q.Figure {
	case "fig1", "fig2", "fig1and2":
		return experiments.Fig1And2(o)
	case "fig11":
		sw, err := experiments.RunPCTSweep(o, experiments.Fig11PCTs)
		if err != nil {
			return nil, err
		}
		return sw.Fig11(), nil
	case "fig12":
		return experiments.Fig12(o)
	case "fig13":
		return experiments.Fig13(o)
	case "fig14":
		return experiments.Fig14(o)
	case "storage":
		return experiments.Storage(s.requestConfig(q)), nil
	case "storage-scaling":
		return experiments.StorageScaling(q.CoreCounts), nil
	default:
		// validate() admits only knownFigures; keep a hard failure so the
		// two sets cannot drift silently.
		return nil, fmt.Errorf("figure %q passed validation but has no executor", q.Figure)
	}
}

// experimentHandler adapts an execFunc into the full request lifecycle:
// decode, validate, single-flight coalescing (or SSE streaming), bounded
// admission, execution, canonical encoding.
func (s *Server) experimentHandler(name string, exec execFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		q, err := decodeRequest(r)
		if err == nil {
			err = s.validate(name, q)
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
		format := r.URL.Query().Get("format")
		if format != "" && format != "json" && format != "text" {
			s.writeError(w, badRequest("unknown format %q (want json or text)", format))
			return
		}
		if wantsSSE(r) {
			if format == "text" {
				s.writeError(w, badRequest("format=text cannot be combined with SSE streaming (the result event is JSON)"))
				return
			}
			if _, ok := w.(http.Flusher); !ok {
				// Without a Flusher every event would sit in the server's
				// write buffer until the handler returned — a "stream"
				// delivered all at once, after the experiment finished. Fail
				// the upgrade before committing the SSE content type so the
				// client gets a plain JSON error instead of a silent hang.
				s.writeError(w, &apiError{status: http.StatusInternalServerError,
					msg: "streaming unsupported: the connection's response writer cannot flush (retry without SSE)"})
				return
			}
			s.serveSSE(w, r, q, exec)
			return
		}

		key := name + "\x00" + format + "\x00" + q.canonicalKey()
		c, ctx, leading := s.single.join(key)
		if !leading {
			s.stats.coalesced.Add(1)
			select {
			case <-c.done:
				s.single.leave(c)
				s.writeCall(w, c)
			case <-r.Context().Done():
				// Client gone before the shared execution finished; give
				// up our interest (the last one out cancels the work).
				s.single.leave(c)
			}
			return
		}

		// Leader: if the client disconnects mid-execution, hand interest
		// management to the watcher so surviving coalesced clients keep
		// the execution alive.
		stop := context.AfterFunc(r.Context(), func() { s.single.leave(c) })
		resp, err := s.execute(ctx, q, exec, format, nil)
		s.single.finish(key, c, resp, err)
		if stop() {
			s.single.leave(c)
		}
		s.writeCall(w, c)
	}
}

// execute admits and runs one experiment execution, encoding its
// response. progress, when non-nil, receives the experiment layer's
// progress callbacks (SSE).
func (s *Server) execute(ctx context.Context, q *Request, exec execFunc, format string, progress func(done, total int)) (*response, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	return s.executeAdmitted(ctx, q, exec, format, progress)
}

// errRunTimeout is the typed error for executions canceled by
// Config.MaxRunTime: 503 (the request was valid; this server's budget was
// not enough) with a stable "timeout" code. It doubles as the timeout
// context's cancellation cause, which is how the deadline is told apart
// from an ordinary client disconnect.
var errRunTimeout = &apiError{status: http.StatusServiceUnavailable, code: "timeout",
	msg: "experiment exceeded the server's max run time and was canceled"}

// executeAdmitted is execute's body once an admission token is held (the
// SSE path acquires before committing its response status, so a
// saturated server can still answer 429). It applies the server's
// per-execution deadline and recovers executor panics into errors — the
// recovery must happen at this level, below single-flight, so a panicked
// leader still publishes an outcome to its coalesced waiters instead of
// leaving them blocked on a call that will never finish.
func (s *Server) executeAdmitted(ctx context.Context, q *Request, exec execFunc, format string, progress func(done, total int)) (resp *response, err error) {
	s.stats.executed.Add(1)
	if s.cfg.MaxRunTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.cfg.MaxRunTime, errRunTimeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			s.stats.panics.Add(1)
			s.cfg.Logf("server: panic executing experiment: %v", p)
			resp, err = nil, &apiError{status: http.StatusInternalServerError,
				code: "panic", msg: fmt.Sprintf("internal error (experiment execution panicked: %v)", p)}
		}
	}()
	start := time.Now()
	defer func() { s.stats.noteExecDuration(time.Since(start)) }()
	o := s.requestOptions(ctx, q)
	o.Progress = progress
	v, err := exec(ctx, s, q, o)
	if err != nil {
		if ctx.Err() != nil {
			if errors.Is(context.Cause(ctx), errRunTimeout) {
				s.stats.timeouts.Add(1)
				return nil, errRunTimeout
			}
			s.stats.canceledByCtx.Add(1)
		}
		return nil, err
	}
	if format == "text" {
		return renderText(v)
	}
	body, err := EncodeCanonical(v)
	if err != nil {
		return nil, fmt.Errorf("encoding response: %w", err)
	}
	return &response{status: http.StatusOK, contentType: "application/json", body: body}, nil
}

// renderText renders a result through its paper-table Render method.
func renderText(v any) (*response, error) {
	rend, ok := v.(interface{ Render(io.Writer) error })
	if !ok {
		return nil, badRequest("format=text is not supported for this result type")
	}
	var sb strings.Builder
	if err := rend.Render(&sb); err != nil {
		return nil, fmt.Errorf("rendering: %w", err)
	}
	return &response{status: http.StatusOK, contentType: "text/plain; charset=utf-8",
		body: []byte(sb.String())}, nil
}

// response is one encoded handler result.
type response struct {
	status      int
	contentType string
	body        []byte
}

// writeCall writes a finished single-flight call's outcome.
func (s *Server) writeCall(w http.ResponseWriter, c *sfCall) {
	if c.err != nil {
		s.writeError(w, c.err)
		return
	}
	w.Header().Set("Content-Type", c.resp.contentType)
	w.WriteHeader(c.resp.status)
	w.Write(c.resp.body)
}

// writeError maps an error to its HTTP response. Cancellation produces
// 499 (client closed request; the nginx convention) — normally unseen,
// since the client is gone.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		status = ae.status
	} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		status = 499
	}
	if status == http.StatusTooManyRequests {
		// rejected is its own counter; tell the client when a slot is
		// plausibly free instead of leaving it to guess a retry cadence.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	} else {
		s.stats.errors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(errorPayload(err))
	w.Write(append(body, '\n'))
}

// errorPayload is the canonical error body, shared by plain JSON responses
// and terminal SSE error events: always an "error" message, plus a stable
// "code" when the error carries one (timeout, panic).
func errorPayload(err error) map[string]string {
	p := map[string]string{"error": err.Error()}
	var ae *apiError
	if errors.As(err, &ae) && ae.code != "" {
		p["code"] = ae.code
	}
	return p
}

// StoreHealth is the durable-tier section of /v1/healthz.
type StoreHealth struct {
	// Mode is "disabled" (no store configured), "durable" (store healthy)
	// or "degraded" (the store absorbed failures — quarantined segments,
	// I/O errors, checksum mismatches — and the affected results recompute
	// on demand; the server keeps serving either way).
	Mode string `json:"mode"`
	// Segments, Bytes and Entries describe the current footprint.
	Segments int   `json:"segments,omitempty"`
	Bytes    int64 `json:"bytes,omitempty"`
	Entries  int   `json:"entries,omitempty"`
	// Quarantined counts segments set aside by recovery; LastRecovery is
	// the last Open scan's one-line outcome.
	Quarantined  uint64 `json:"quarantined,omitempty"`
	LastRecovery string `json:"last_recovery,omitempty"`
}

// storeHealth snapshots the current session's durable tier.
func (s *Server) storeHealth() StoreHealth {
	st := s.session.Load().Store()
	if st == nil {
		return StoreHealth{Mode: "disabled"}
	}
	mode := "durable"
	if !st.Healthy() {
		mode = "degraded"
	}
	sst := st.Stats()
	return StoreHealth{
		Mode:         mode,
		Segments:     sst.Segments,
		Bytes:        sst.Bytes,
		Entries:      sst.Entries,
		Quarantined:  sst.Quarantined,
		LastRecovery: sst.LastRecovery,
	}
}

// handleHealthz reports liveness plus each optimization tier's mode.
// Neither a degraded store nor a degraded cluster fails the health check
// — the server serves through both by recomputing — but the modes flip
// to "degraded" so operators see which peers are down and which breakers
// are open.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"store":   s.storeHealth(),
		"cluster": s.clusterHealth(),
	})
}

// WorkloadInfo is one /v1/workloads catalog entry (Table 2).
type WorkloadInfo struct {
	// Name is the canonical identifier accepted in workload/benchmark
	// request fields.
	Name string `json:"name"`
	// Label is the display label used in the paper's figures.
	Label string `json:"label"`
	// Suite is the benchmark suite (SPLASH-2, PARSEC, ...).
	Suite string `json:"suite"`
	// PaperSize is the problem size the paper evaluated.
	PaperSize string `json:"paper_size"`
	// DefaultSize is this reproduction's problem size at scale 1.0.
	DefaultSize string `json:"default_size"`
}

// handleWorkloads serves the benchmark catalog.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	all := workloads.All()
	out := make([]WorkloadInfo, len(all))
	for i, wl := range all {
		out[i] = WorkloadInfo{
			Name:        wl.Name,
			Label:       wl.Label,
			Suite:       wl.Suite,
			PaperSize:   wl.PaperSize,
			DefaultSize: wl.DefaultSize,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// Stats is the /v1/stats response: the server's request/admission
// counters plus the underlying session's cache effectiveness.
type Stats struct {
	// Requests counts API requests routed to any handler.
	Requests uint64 `json:"requests"`
	// CoalescedRequests counts requests that joined a byte-identical
	// in-flight execution instead of executing themselves.
	CoalescedRequests uint64 `json:"coalesced_requests"`
	// Executed counts experiment executions actually performed.
	Executed uint64 `json:"executed"`
	// Rejected counts 429 admission rejections.
	Rejected uint64 `json:"rejected"`
	// Errors counts non-429 error responses.
	Errors uint64 `json:"errors"`
	// CanceledByClient counts executions abandoned because every
	// interested client disconnected.
	CanceledByClient uint64 `json:"canceled_by_client"`
	// SSEStreams counts progress streams served.
	SSEStreams uint64 `json:"sse_streams"`
	// Flushes counts admin cache flushes.
	Flushes uint64 `json:"flushes"`
	// Timeouts counts executions canceled by the server's MaxRunTime
	// budget (each answered 503 with code "timeout").
	Timeouts uint64 `json:"timeouts"`
	// Panics counts handler or executor panics recovered into 500s; any
	// nonzero value is a bug worth a report, but none of them killed the
	// process.
	Panics uint64 `json:"panics"`

	// InFlight is the number of executions holding an admission slot now;
	// PeakInFlight is its lifetime high-water mark and never exceeds
	// MaxInFlight. Queued is the number of requests currently waiting for
	// a slot (at most MaxQueue).
	InFlight     int64 `json:"in_flight"`
	PeakInFlight int64 `json:"peak_in_flight"`
	Queued       int64 `json:"queued"`
	// MaxInFlight and MaxQueue echo the admission configuration.
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`

	// Session is the shared result cache's hit/coalesce/miss snapshot.
	Session experiments.SessionStats `json:"session"`
	// Store is the durable result store's full snapshot (segments, bytes,
	// hits, recovery outcome); nil when serving without one.
	Store *store.Stats `json:"store,omitempty"`
	// Cluster is the peer tier's snapshot (per-peer traffic and breaker
	// state); nil when serving without one. PeerGets and PeerPuts count
	// this node's side of the peer protocol: fetches it answered from its
	// local store and replicas it accepted into it.
	Cluster  *cluster.Stats `json:"cluster,omitempty"`
	PeerGets uint64         `json:"peer_gets,omitempty"`
	PeerPuts uint64         `json:"peer_puts,omitempty"`
	// CorpusBuilds counts workload trace generations process-wide (each
	// distinct (benchmark, cores, scale, seed) builds once).
	CorpusBuilds uint64 `json:"corpus_builds"`
}

// snapshotStats collects the current Stats.
func (s *Server) snapshotStats() Stats {
	var storeStats *store.Stats
	if st := s.session.Load().Store(); st != nil {
		sst := st.Stats()
		storeStats = &sst
	}
	var clusterStats *cluster.Stats
	if s.cfg.Cluster != nil {
		cst := s.cfg.Cluster.Stats()
		clusterStats = &cst
	}
	return Stats{
		Requests:          s.stats.requests.Load(),
		CoalescedRequests: s.stats.coalesced.Load(),
		Executed:          s.stats.executed.Load(),
		Rejected:          s.stats.rejected.Load(),
		Errors:            s.stats.errors.Load(),
		CanceledByClient:  s.stats.canceledByCtx.Load(),
		SSEStreams:        s.stats.sseStreams.Load(),
		Flushes:           s.stats.flushes.Load(),
		Timeouts:          s.stats.timeouts.Load(),
		Panics:            s.stats.panics.Load(),
		InFlight:          s.stats.inFlight.Load(),
		PeakInFlight:      s.stats.peakInFlight.Load(),
		Queued:            s.queued.Load(),
		MaxInFlight:       s.cfg.MaxInFlight,
		MaxQueue:          s.cfg.MaxQueue,
		Session:           s.session.Load().Stats(),
		Store:             storeStats,
		Cluster:           clusterStats,
		PeerGets:          s.stats.peerGets.Load(),
		PeerPuts:          s.stats.peerPuts.Load(),
		CorpusBuilds:      workloads.CorpusBuilds(),
	}
}

// handleStats serves the observability counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	writeJSON(w, http.StatusOK, s.snapshotStats())
}

// handleFlush drops the session result cache (in-flight batches keep the
// session they started with) and the process-wide corpus cache, bounding
// memory on a long-lived server. The lower tiers are deliberately kept:
// the replacement session attaches to the same store and the same peer
// cluster, so a flush leaves the server exactly restart-warm — memory
// cold, disk and peers hot — and repeating a flushed sweep re-decodes
// results instead of re-simulating them. The response reports the stats
// snapshot taken just before the flush.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	before := s.snapshotStats()
	old := s.session.Load()
	s.session.Store(experiments.NewSessionWithTiers(old.Store(), old.Peers(), s.cfg.Logf))
	workloads.FlushCorpora()
	s.stats.flushes.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"flushed": true, "before": before})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := EncodeCanonical(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lacc"
	"lacc/internal/server"
)

// testMachine is the small request every test uses: 4 cores so sweeps
// finish in milliseconds.
const (
	testCores = 4
	testScale = 0.05
)

// newTestServer builds a handler with tight, test-friendly bounds.
func newTestServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(cfg))
	t.Cleanup(ts.Close)
	return ts
}

// post sends body to path and returns the response status and body.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, b
}

// get fetches path and returns the response status and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, b
}

// mustCanonical encodes v exactly as the service does.
func mustCanonical(t *testing.T, v any) []byte {
	t.Helper()
	b, err := server.EncodeCanonical(v)
	if err != nil {
		t.Fatalf("EncodeCanonical: %v", err)
	}
	return b
}

// TestServedMatchesDirect is the service's core contract: for a PCT
// sweep, a protocol comparison and a single workload run, the served
// response body is byte-identical to the direct lacc API call's result
// pushed through the same canonical JSON encoding.
func TestServedMatchesDirect(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxInFlight: 4, Parallelism: 2})
	opts := lacc.ExperimentOptions{
		Cores:      testCores,
		Scale:      testScale,
		Benchmarks: []string{"matmul", "dfs"},
	}

	t.Run("pct-sweep", func(t *testing.T) {
		status, body := post(t, ts, "/v1/experiments/pct-sweep",
			fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul","dfs"],"pcts":[1,2,4]}`, testCores, testScale))
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		direct, err := lacc.ExperimentPCTSweep(opts, []int{1, 2, 4})
		if err != nil {
			t.Fatal(err)
		}
		if want := mustCanonical(t, direct); !bytes.Equal(body, want) {
			t.Errorf("served PCT sweep differs from direct call\nserved: %.200s\ndirect: %.200s", body, want)
		}
	})

	t.Run("protocols", func(t *testing.T) {
		status, body := post(t, ts, "/v1/experiments/protocols",
			fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul","dfs"]}`, testCores, testScale))
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		direct, err := lacc.ExperimentProtocolComparison(opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if want := mustCanonical(t, direct); !bytes.Equal(body, want) {
			t.Errorf("served protocol comparison differs from direct call\nserved: %.200s\ndirect: %.200s", body, want)
		}
		// The default comparison covers every registered protocol; the
		// served body must name all six.
		kinds := lacc.ProtocolKinds()
		if len(kinds) != 6 {
			t.Errorf("registered protocols = %v, want 6", kinds)
		}
		for _, kind := range kinds {
			if !bytes.Contains(body, []byte(`"`+string(kind)+`"`)) {
				t.Errorf("served protocol comparison missing %q", kind)
			}
		}
	})

	t.Run("run", func(t *testing.T) {
		status, body := post(t, ts, "/v1/run",
			fmt.Sprintf(`{"workload":"matmul","cores":%d,"scale":%g}`, testCores, testScale))
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		// The direct equivalent: the same machine through the plain
		// library entry point (live generator streams, no session) — the
		// served result must match bit for bit.
		cfg := lacc.ExperimentOptions{Cores: testCores}.BaseConfig()
		direct, err := lacc.RunWorkload(cfg, "matmul", testScale, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := mustCanonical(t, direct); !bytes.Equal(body, want) {
			t.Errorf("served run differs from direct lacc.RunWorkload\nserved: %.200s\ndirect: %.200s", body, want)
		}
	})

	t.Run("run-with-overrides", func(t *testing.T) {
		status, body := post(t, ts, "/v1/run",
			fmt.Sprintf(`{"workload":"matmul","cores":%d,"scale":%g,"config":{"protocol":"mesi"}}`, testCores, testScale))
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		cfg := lacc.ExperimentOptions{Cores: testCores}.BaseConfig()
		cfg.ProtocolKind = lacc.ProtocolMESI
		direct, err := lacc.RunWorkload(cfg, "matmul", testScale, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := mustCanonical(t, direct); !bytes.Equal(body, want) {
			t.Errorf("served MESI run differs from direct call\nserved: %.200s\ndirect: %.200s", body, want)
		}
	})
}

// TestConcurrentCoalescingAndAdmission is the -race stress test: 64
// concurrent overlapping requests (four distinct bodies) against a
// 3-slot server. It asserts every request succeeds with the identical
// body per request class, that duplicate in-flight work was coalesced
// (request-level or session-level), and that the admission bound was
// never exceeded (peak_in_flight via /v1/stats).
func TestConcurrentCoalescingAndAdmission(t *testing.T) {
	const (
		maxInFlight = 3
		clients     = 64
	)
	ts := newTestServer(t, server.Config{MaxInFlight: maxInFlight, MaxQueue: 64, Parallelism: 2})

	type reqClass struct{ path, body string }
	classes := []reqClass{
		{"/v1/experiments/pct-sweep", fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul"],"pcts":[1,2]}`, testCores, testScale)},
		{"/v1/experiments/pct-sweep", fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul"],"pcts":[2,3]}`, testCores, testScale)},
		{"/v1/experiments/protocols", fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["dfs"]}`, testCores, testScale)},
		{"/v1/run", fmt.Sprintf(`{"workload":"matmul","cores":%d,"scale":%g}`, testCores, testScale)},
	}

	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			cl := classes[i%len(classes)]
			status, body := post(t, ts, cl.path, cl.body)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Identical requests must have received identical bytes.
	for i := range bodies {
		if j := i % len(classes); !bytes.Equal(bodies[i], bodies[j]) {
			t.Errorf("clients %d and %d sent identical requests but got different bodies", i, j)
		}
	}

	status, body := get(t, ts, "/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d: %s", status, body)
	}
	var st server.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if st.PeakInFlight > maxInFlight {
		t.Errorf("peak_in_flight = %d exceeds the admission bound %d", st.PeakInFlight, maxInFlight)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("idle server reports in_flight=%d queued=%d, want 0/0", st.InFlight, st.Queued)
	}
	// 64 requests over 4 distinct bodies: duplicates must have been
	// deduplicated somewhere — joined onto an in-flight identical request,
	// or served from the session cache — never re-simulated. Misses counts
	// simulations scheduled; the four classes need at most 2+2+6+1 = 11
	// (the six-way protocol comparison dominates).
	if st.CoalescedRequests+st.Session.Hits+st.Session.Coalesced == 0 {
		t.Errorf("no coalescing observed across %d overlapping requests: %+v", clients, st)
	}
	if st.Session.Misses > 11 {
		t.Errorf("session scheduled %d simulations, want <= 11 distinct", st.Session.Misses)
	}
	if st.Rejected != 0 {
		t.Errorf("rejected = %d with a %d-deep queue, want 0", st.Rejected, 64)
	}
	if st.Executed == 0 || st.Executed+st.CoalescedRequests < clients {
		t.Errorf("executed (%d) + coalesced (%d) < clients (%d)", st.Executed, st.CoalescedRequests, clients)
	}
}

// TestEndpointsAndValidation covers the small endpoints and the 400
// surface.
func TestEndpointsAndValidation(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxInFlight: 2, MaxCores: 64, MaxScale: 2})

	if status, body := get(t, ts, "/v1/healthz"); status != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Errorf("healthz: %d %s", status, body)
	}

	status, body := get(t, ts, "/v1/workloads")
	if status != http.StatusOK {
		t.Fatalf("workloads: %d %s", status, body)
	}
	var catalog []server.WorkloadInfo
	if err := json.Unmarshal(body, &catalog); err != nil {
		t.Fatalf("decoding workloads: %v", err)
	}
	if len(catalog) != len(lacc.Workloads()) {
		t.Errorf("catalog lists %d workloads, want %d", len(catalog), len(lacc.Workloads()))
	}

	for _, tc := range []struct {
		name, path, body string
		wantStatus       int
	}{
		{"unknown workload", "/v1/run", `{"workload":"nope"}`, 400},
		{"missing workload", "/v1/run", `{}`, 400},
		{"unknown field", "/v1/run", `{"workload":"matmul","tpyo":1}`, 400},
		{"cores over cap", "/v1/run", `{"workload":"matmul","cores":128}`, 400},
		{"scale over cap", "/v1/run", `{"workload":"matmul","scale":3}`, 400},
		{"bad mesh", "/v1/run", `{"workload":"matmul","cores":8,"mesh_width":3}`, 400},
		{"bad pct", "/v1/experiments/pct-sweep", `{"pcts":[0]}`, 400},
		{"bad protocol", "/v1/experiments/protocols", `{"protocols":["moesi"]}`, 400},
		{"bad figure", "/v1/experiments/figures", `{"figure":"fig99"}`, 400},
		{"missing figure", "/v1/experiments/figures", `{}`, 400},
		{"bad benchmark", "/v1/experiments/victim", `{"benchmarks":["nope"]}`, 400},
		{"bad override protocol", "/v1/run", `{"workload":"matmul","config":{"protocol":"nope"}}`, 400},
		{"victim replication under mesi", "/v1/run", `{"workload":"matmul","config":{"protocol":"mesi","victim_replication":true}}`, 400},
		{"bad format", "/v1/run?format=txet", `{"workload":"matmul"}`, 400},
		{"text format with SSE", "/v1/run?format=text&stream=sse", `{"workload":"matmul"}`, 400},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts, tc.path, tc.body)
			if status != tc.wantStatus {
				t.Errorf("%s %s: status %d (want %d): %s", tc.path, tc.body, status, tc.wantStatus, body)
			}
			if !bytes.Contains(body, []byte(`"error"`)) {
				t.Errorf("error response carries no error field: %s", body)
			}
		})
	}

	if status, body := post(t, ts, "/v1/experiments/figures",
		fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul"],"figure":"fig14"}`, testCores, testScale)); status != http.StatusOK {
		t.Errorf("figures fig14: %d %s", status, body)
	}
	if status, body := post(t, ts, "/v1/experiments/figures", `{"figure":"storage"}`); status != http.StatusOK || !bytes.Contains(body, []byte("Limited3KB")) {
		t.Errorf("figures storage: %d %.120s", status, body)
	}

	// format=text renders the paper-style table.
	status, body = post(t, ts, "/v1/experiments/protocols?format=text",
		fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul"]}`, testCores, testScale))
	if status != http.StatusOK || !bytes.Contains(body, []byte("geomeans normalized")) {
		t.Errorf("format=text: %d %.120s", status, body)
	}
}

// TestAdminFlush asserts the flush endpoint resets the session cache: a
// repeated sweep after a flush re-simulates (misses again) instead of
// hitting.
func TestAdminFlush(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxInFlight: 2, Parallelism: 2})
	body := fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul"],"pcts":[1,2]}`, testCores, testScale)

	if status, b := post(t, ts, "/v1/experiments/pct-sweep", body); status != http.StatusOK {
		t.Fatalf("first sweep: %d %s", status, b)
	}
	if status, b := post(t, ts, "/v1/admin/flush", ""); status != http.StatusOK {
		t.Fatalf("flush: %d %s", status, b)
	}
	if status, b := post(t, ts, "/v1/experiments/pct-sweep", body); status != http.StatusOK {
		t.Fatalf("post-flush sweep: %d %s", status, b)
	}
	_, b := get(t, ts, "/v1/stats")
	var st server.Stats
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Session.Misses != 2 || st.Session.Hits != 0 {
		t.Errorf("post-flush session = %+v, want 2 fresh misses, 0 hits", st.Session)
	}
	if st.Flushes != 1 {
		t.Errorf("flushes = %d, want 1", st.Flushes)
	}
}

// TestSSEProgressStream asserts the stream shape: at least one progress
// event with a coherent total, then a result event whose payload equals
// the plain JSON response for the same request.
func TestSSEProgressStream(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxInFlight: 2, Parallelism: 2})
	body := fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul"],"pcts":[1,2,3]}`, testCores, testScale)

	resp, err := http.Post(ts.URL+"/v1/experiments/pct-sweep?stream=sse", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	// Connection is hop-by-hop and forbidden in HTTP/2 responses; the
	// handler must not set it.
	if c := resp.Header.Get("Connection"); c != "" {
		t.Errorf("Connection header %q set on SSE response", c)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := parseSSE(t, string(raw))
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least a progress and a result: %q", len(events), raw)
	}
	var sawProgress bool
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Errorf("interior event %q, want progress", ev.name)
		}
		var p struct{ Done, Total int }
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Errorf("bad progress payload %q: %v", ev.data, err)
		}
		if p.Total != 3 {
			t.Errorf("progress total = %d, want 3 simulations", p.Total)
		}
		sawProgress = true
	}
	if !sawProgress {
		t.Error("no progress events")
	}
	last := events[len(events)-1]
	if last.name != "result" {
		t.Fatalf("final event %q, want result", last.name)
	}

	// The result payload must equal the plain (non-SSE) response body.
	status, plain := post(t, ts, "/v1/experiments/pct-sweep", body)
	if status != http.StatusOK {
		t.Fatalf("plain request: %d %s", status, plain)
	}
	if got := strings.TrimRight(last.data, "\n"); got != strings.TrimRight(string(plain), "\n") {
		t.Errorf("SSE result differs from plain response\nsse:   %.200s\nplain: %.200s", got, plain)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct{ name, data string }

// parseSSE splits a raw event-stream body into events.
func parseSSE(t *testing.T, raw string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, block := range strings.Split(raw, "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			}
		}
		if ev.name == "" && ev.data == "" {
			t.Fatalf("unparseable SSE block %q", block)
		}
		out = append(out, ev)
	}
	return out
}

// TestClientDisconnect cancels a request mid-flight and asserts the
// server stays healthy and the same request completes afterwards.
func TestClientDisconnect(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxInFlight: 1, Parallelism: 1})
	body := fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul","dfs"],"pcts":[1,2,3,4]}`, testCores, testScale)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/experiments/pct-sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	<-done

	// The abandoned fingerprints were unpinned; the retry must succeed
	// and produce the complete sweep.
	status, b := post(t, ts, "/v1/experiments/pct-sweep", body)
	if status != http.StatusOK {
		t.Fatalf("retry after disconnect: %d %s", status, b)
	}
	var sweep struct{ PCTs []int }
	if err := json.Unmarshal(b, &sweep); err != nil {
		t.Fatal(err)
	}
	if len(sweep.PCTs) != 4 {
		t.Errorf("retry sweep has %d PCTs, want 4", len(sweep.PCTs))
	}
}

// noFlush hides the ResponseRecorder's Flush method, modeling a
// middleware-wrapped writer that cannot stream.
type noFlush struct{ http.ResponseWriter }

// TestSSERejectsNonFlusher: a response writer without http.Flusher must
// fail the stream upgrade at dispatch with a plain JSON error — before
// the SSE content type is committed and before the experiment runs — not
// serve a "stream" that sits in the write buffer until completion.
func TestSSERejectsNonFlusher(t *testing.T) {
	h := server.New(server.Config{MaxInFlight: 1, Parallelism: 1})
	body := fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul"],"pcts":[1]}`, testCores, testScale)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost,
		"/v1/experiments/pct-sweep?stream=sse", strings.NewReader(body))
	h.ServeHTTP(noFlush{rec}, req)

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	if got := rec.Body.String(); !strings.Contains(got, "streaming unsupported") {
		t.Errorf("error body %q does not name the streaming failure", got)
	}
	if strings.Contains(rec.Body.String(), "event:") {
		t.Errorf("rejected upgrade still emitted SSE events: %q", rec.Body.String())
	}

	// The same writer with Flush present streams normally.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost,
		"/v1/experiments/pct-sweep?stream=sse", strings.NewReader(body))
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("flushing writer got Content-Type %q, want text/event-stream", ct)
	}
}

// TestDrainEndsSSEWithFinalEvent: once Drain is called, an SSE request is
// still answered on a committed 200 stream but terminates with an
// explicit error event naming the shutdown, instead of hanging until the
// experiment completes or the connection is torn down silently.
func TestDrainEndsSSEWithFinalEvent(t *testing.T) {
	h := server.New(server.Config{MaxInFlight: 1, Parallelism: 1})
	ts := httptest.NewServer(h)
	defer ts.Close()
	h.Drain()
	h.Drain() // idempotent

	body := fmt.Sprintf(`{"cores":%d,"scale":%g,"benchmarks":["matmul"],"pcts":[1,2,3,4]}`, testCores, testScale)
	resp, err := http.Post(ts.URL+"/v1/experiments/pct-sweep?stream=sse",
		"application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (SSE commits before execution)", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := parseSSE(t, string(raw))
	if len(events) == 0 {
		t.Fatal("draining server closed the stream with no terminal event")
	}
	last := events[len(events)-1]
	if last.name != "error" || !strings.Contains(last.data, "shutting down") {
		t.Fatalf("terminal event = %q %q, want an error naming the shutdown", last.name, last.data)
	}
}

// TestShardsOverride: the shards config field reaches the simulator —
// valid values run, and the simulator's own limits surface as 400s.
func TestShardsOverride(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxInFlight: 2, Parallelism: 1})

	body := fmt.Sprintf(`{"workload":"matmul","cores":%d,"scale":%g,"config":{"shards":2}}`, testCores, testScale)
	status, b := post(t, ts, "/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("shards=2 run: %d %s", status, b)
	}
	var res struct{ DataAccesses uint64 }
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatal(err)
	}
	if res.DataAccesses == 0 {
		t.Error("sharded run reported zero data accesses")
	}

	for _, bad := range []struct{ shards int }{{testCores + 1}, {-1}} {
		body := fmt.Sprintf(`{"workload":"matmul","cores":%d,"scale":%g,"config":{"shards":%d}}`,
			testCores, testScale, bad.shards)
		status, b := post(t, ts, "/v1/run", body)
		if status != http.StatusBadRequest {
			t.Errorf("shards=%d: status %d (%s), want 400", bad.shards, status, b)
		}
	}
}

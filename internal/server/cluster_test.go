package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lacc/internal/cluster"
	"lacc/internal/server"
	"lacc/internal/store"
)

// The multi-node tests run real lacc-serve handlers on real listeners —
// peer traffic crosses actual TCP connections — with the cluster
// clients' robustness knobs tightened so failure paths resolve in
// milliseconds.

// listen binds a loopback listener whose address peers will dial.
func listen(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// clusterConfig returns fast-failing cluster settings for one node.
func clusterConfig(self string, peers []string, transport http.RoundTripper) cluster.Config {
	return cluster.Config{
		Self:            self,
		Peers:           peers,
		Replicas:        len(peers),
		Budget:          5 * time.Second,
		AttemptTimeout:  time.Second,
		Retries:         2,
		BackoffBase:     time.Millisecond,
		BackoffMax:      5 * time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: time.Hour, // an opened breaker stays visibly open
		Transport:       transport,
	}
}

// startNode serves one cluster member on l. st may be nil (a storeless
// node: it fetches from peers but answers 404 to their gets and puts).
func startNode(t *testing.T, l net.Listener, st *store.Store, cl *cluster.Cluster) *httptest.Server {
	t.Helper()
	ts := &httptest.Server{
		Listener: l,
		Config: &http.Server{Handler: server.New(server.Config{
			MaxInFlight: 2,
			Parallelism: 2,
			Store:       st,
			Cluster:     cl,
		})},
	}
	ts.Start()
	t.Cleanup(ts.Close)
	return ts
}

// healthzOf fetches and decodes /v1/healthz.
func healthzOf(t *testing.T, ts *httptest.Server) struct {
	Status  string               `json:"status"`
	Cluster server.ClusterHealth `json:"cluster"`
} {
	t.Helper()
	status, body := get(t, ts, "/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: %d %s", status, body)
	}
	var h struct {
		Status  string               `json:"status"`
		Cluster server.ClusterHealth `json:"cluster"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	return h
}

// breakerOf returns peer addr's breaker state in h.
func breakerOf(t *testing.T, peers []cluster.PeerStats, addr string) string {
	t.Helper()
	for _, p := range peers {
		if p.Addr == addr {
			return p.Breaker
		}
	}
	t.Fatalf("no healthz entry for peer %s in %+v", addr, peers)
	return ""
}

// TestClusterWarmJoinServesWithoutSimulating is the cold-replica
// acceptance test over real HTTP: node A computes a sweep; node B (own
// empty store) and node C (no store at all) then serve the identical
// sweep byte for byte with zero simulations — B from the replicas A's
// write-behind delivered, C by fetching from the key owners on demand.
func TestClusterWarmJoinServesWithoutSimulating(t *testing.T) {
	lA, lB, lC := listen(t), listen(t), listen(t)
	members := []string{lA.Addr().String(), lB.Addr().String(), lC.Addr().String()}

	stA, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	stB, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()

	clusters := make([]*cluster.Cluster, 3)
	for i, self := range members {
		cl, err := cluster.New(clusterConfig(self, members, nil))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clusters[i] = cl
	}
	tsA := startNode(t, lA, stA, clusters[0])
	tsB := startNode(t, lB, stB, clusters[1])
	tsC := startNode(t, lC, nil, clusters[2])

	// Node A computes the sweep (its peer fetches all miss — the cluster
	// is empty) and write-behind replicates every result.
	status, bodyA := post(t, tsA, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusOK {
		t.Fatalf("warm node: %d %s", status, bodyA)
	}
	sA := statsOf(t, tsA)
	if sA.Session.Simulated != 4 || sA.Cluster == nil || sA.Cluster.FetchHits != 0 {
		t.Fatalf("warm node stats: session %+v cluster %+v, want 4 simulated and no fetch hits", sA.Session, sA.Cluster)
	}
	clusters[0].FlushReplication()

	// Node B: every claim is served by the replicas already in its store.
	status, bodyB := post(t, tsB, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusOK {
		t.Fatalf("replica node: %d %s", status, bodyB)
	}
	sB := statsOf(t, tsB)
	if sB.Session.Simulated != 0 {
		t.Fatalf("replica node simulated %d times, want 0 (%+v)", sB.Session.Simulated, sB.Session)
	}
	if sB.Session.DiskHits != 4 || sB.PeerPuts != 4 {
		t.Fatalf("replica node: %+v with %d accepted replicas, want 4 disk hits over 4 replicas", sB.Session, sB.PeerPuts)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("replica-served sweep is not byte-identical to the computing node's")
	}

	// Node C has no disk: every claim is a live peer fetch.
	status, bodyC := post(t, tsC, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusOK {
		t.Fatalf("storeless node: %d %s", status, bodyC)
	}
	sC := statsOf(t, tsC)
	if sC.Session.Simulated != 0 || sC.Session.PeerHits != 4 {
		t.Fatalf("storeless node: %+v, want 0 simulated, 4 peer hits", sC.Session)
	}
	if !bytes.Equal(bodyA, bodyC) {
		t.Fatal("peer-fetched sweep is not byte-identical to the computing node's")
	}
	if sAg, sBg := statsOf(t, tsA).PeerGets, statsOf(t, tsB).PeerGets; sAg+sBg != 4 {
		t.Errorf("owners served %d+%d peer gets, want 4 total", sAg, sBg)
	}

	// A healthy cluster reports so on every node.
	for name, ts := range map[string]*httptest.Server{"a": tsA, "b": tsB, "c": tsC} {
		if h := healthzOf(t, ts); h.Status != "ok" || h.Cluster.Mode != "ok" {
			t.Errorf("node %s healthz: status %q cluster %q, want ok/ok", name, h.Status, h.Cluster.Mode)
		}
	}
}

// TestClusterChaosKilledAndFlappingPeer is the chaos contract end to
// end: node B serves client sweeps while its only peer first flaps
// (every key's first fetch attempt is black-holed) and is then killed
// outright. Every client request must answer 200 — flaps absorbed by
// retries, the dead peer absorbed by falling back to simulation — with
// byte-identical bodies where the result was ever served before, and the
// outage visible only in /v1/healthz (cluster "degraded", breaker
// "open").
func TestClusterChaosKilledAndFlappingPeer(t *testing.T) {
	lA, lB := listen(t), listen(t)
	addrA := lA.Addr().String()
	members := []string{addrA, lB.Addr().String()}

	stA, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()

	clA, err := cluster.New(clusterConfig(members[0], members, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()

	// B's view of A flaps: the first attempt for every distinct URL
	// fails, the retry goes through.
	var seen sync.Map
	flappy := &cluster.FaultTripper{Hook: func(req *http.Request) *cluster.Fault {
		if req.URL.Host != addrA {
			return nil
		}
		if _, loaded := seen.LoadOrStore(req.URL.String(), true); !loaded {
			return &cluster.Fault{Err: errors.New("injected flap")}
		}
		return nil
	}}
	clB, err := cluster.New(clusterConfig(members[1], members, flappy))
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()

	tsA := startNode(t, lA, stA, clA)
	tsB := startNode(t, lB, nil, clB)

	// Warm A, then serve the same sweep from B through the flapping
	// network: retries must absorb every flap.
	status, bodyA := post(t, tsA, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusOK {
		t.Fatalf("warming A: %d %s", status, bodyA)
	}
	status, bodyB := post(t, tsB, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusOK {
		t.Fatalf("B through flaps: %d %s", status, bodyB)
	}
	sB := statsOf(t, tsB)
	if sB.Session.Simulated != 0 || sB.Session.PeerHits != 4 {
		t.Fatalf("B through flaps: %+v, want 0 simulated, 4 peer hits", sB.Session)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("sweep fetched through a flapping peer is not byte-identical")
	}

	// Kill A. A new sweep on B must still answer 200 — simulation covers
	// the dead tier — and the repeated failures open A's breaker.
	tsA.Close()
	newSweep := strings.Replace(sweepBody(), "[1,4]", "[2,8]", 1)
	status, body := post(t, tsB, "/v1/experiments/pct-sweep", newSweep)
	if status != http.StatusOK {
		t.Fatalf("B after killing its peer: %d %s", status, body)
	}
	sB = statsOf(t, tsB)
	if sB.Session.Simulated != 4 {
		t.Fatalf("B after peer death simulated %d, want 4 (%+v)", sB.Session.Simulated, sB.Session)
	}
	if sB.Errors != 0 || sB.Rejected != 0 {
		t.Fatalf("client-visible failures after peer death: %d errors, %d rejections, want none", sB.Errors, sB.Rejected)
	}
	h := healthzOf(t, tsB)
	if h.Status != "ok" {
		t.Errorf("B's liveness %q after peer death, want ok (the node itself is fine)", h.Status)
	}
	if h.Cluster.Mode != "degraded" {
		t.Errorf("B's cluster mode %q after peer death, want degraded", h.Cluster.Mode)
	}
	if br := breakerOf(t, h.Cluster.Peers, addrA); br != "open" {
		t.Errorf("dead peer's breaker %q, want open", br)
	}

	// The warm results survive the outage: the first sweep still answers
	// from B's session, byte-identically, with the cluster down.
	status, again := post(t, tsB, "/v1/experiments/pct-sweep", sweepBody())
	if status != http.StatusOK || !bytes.Equal(again, bodyB) {
		t.Fatalf("warm sweep after peer death: %d, identical=%v", status, bytes.Equal(again, bodyB))
	}
}

// TestPeerEndpoints pins the server side of the peer wire contract:
// hex-keyed gets and puts, CRC framing in both directions, 404 as the
// authoritative miss, and damaged replicas rejected before they reach
// the store.
func TestPeerEndpoints(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := newTestServer(t, server.Config{Store: st})
	key := strings.Repeat("ab", 32)
	val := []byte(`{"result":42}`)

	put := func(base, path string, body []byte, crc string) (int, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, base+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if crc != "" {
			req.Header.Set(cluster.CRCHeader, crc)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	if status, body := get(t, ts, "/v1/peer/get/nothex"); status != http.StatusBadRequest {
		t.Errorf("get with malformed key: %d %s, want 400", status, body)
	}
	if status, body := get(t, ts, "/v1/peer/get/"+key); status != http.StatusNotFound {
		t.Errorf("get of an absent key: %d %s, want 404", status, body)
	}
	if status, body := put(ts.URL, "/v1/peer/put/"+key, val, ""); status != http.StatusBadRequest {
		t.Errorf("put without checksum: %d %s, want 400", status, body)
	}
	if status, body := put(ts.URL, "/v1/peer/put/"+key, val, cluster.CRC([]byte("other bytes"))); status != http.StatusBadRequest {
		t.Errorf("put with wrong checksum: %d %s, want 400", status, body)
	}
	if status, body := put(ts.URL, "/v1/peer/put/"+key, val, cluster.CRC(val)); status != http.StatusNoContent {
		t.Fatalf("valid put: %d %s, want 204", status, body)
	}

	resp, err := http.Get(ts.URL + "/v1/peer/get/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, val) {
		t.Fatalf("get after put: %d %q, want the stored bytes", resp.StatusCode, got)
	}
	if err := cluster.VerifyCRC(got, resp.Header.Get(cluster.CRCHeader)); err != nil {
		t.Fatalf("get response checksum: %v", err)
	}

	s := statsOf(t, ts)
	if s.PeerGets != 1 || s.PeerPuts != 1 {
		t.Errorf("peer counters gets=%d puts=%d, want 1/1", s.PeerGets, s.PeerPuts)
	}

	// A storeless node answers 404 to the whole protocol: gets have
	// nothing to serve, and replicas have nowhere to land (the
	// replicating peer absorbs the 404 without penalizing the node).
	bare := newTestServer(t, server.Config{})
	if status, _ := get(t, bare, "/v1/peer/get/"+key); status != http.StatusNotFound {
		t.Errorf("storeless get: %d, want 404", status)
	}
	if status, body := put(bare.URL, "/v1/peer/put/"+key, val, cluster.CRC(val)); status != http.StatusNotFound {
		t.Errorf("storeless put: %d %s, want 404", status, body)
	}
}

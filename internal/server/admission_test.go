package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAcquireEnforcesQueueBound pins the admission state machine
// deterministically: with every execution slot held and the wait queue
// full, the next acquire is rejected with 429 immediately; once a slot
// frees, a queued waiter gets it.
func TestAcquireEnforcesQueueBound(t *testing.T) {
	s := New(Config{MaxInFlight: 2, MaxQueue: 1})
	ctx := context.Background()

	// Fill both slots.
	for i := 0; i < 2; i++ {
		if err := s.acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := s.stats.inFlight.Load(); got != 2 {
		t.Fatalf("inFlight = %d, want 2", got)
	}

	// One waiter fits in the queue.
	waiterIn := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		waiterIn <- s.acquire(ctx)
	}()
	// Wait until the waiter is queued so the next acquire sees a full
	// queue deterministically.
	for s.queued.Load() != 1 {
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next request is rejected, not enqueued.
	err := s.acquire(ctx)
	var ae *apiError
	if !errors.As(err, &ae) || ae.status != http.StatusTooManyRequests {
		t.Fatalf("acquire with full queue = %v, want 429 apiError", err)
	}
	if got := s.stats.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	// Freeing a slot admits the queued waiter.
	s.release()
	if err := <-waiterIn; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	wg.Wait()
	if got := s.queued.Load(); got != 0 {
		t.Errorf("queued = %d after admission, want 0", got)
	}
	if got := s.stats.peakInFlight.Load(); got != 2 {
		t.Errorf("peakInFlight = %d, want 2 (bound never exceeded)", got)
	}

	// Refill the queue with a cancelable waiter so the server is fully
	// saturated again (both slots held, queue full).
	cctx, cancel := context.WithCancel(context.Background())
	werr := make(chan error, 1)
	go func() { werr <- s.acquire(cctx) }()
	for s.queued.Load() != 1 {
		time.Sleep(time.Millisecond)
	}

	// A saturated server answers an SSE request with a plain 429 before
	// any stream is opened (admission precedes the response status).
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/run?stream=sse",
		strings.NewReader(`{"workload":"matmul"}`))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("SSE request on saturated server: status %d, want 429 (body %q)", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("SSE 429 Content-Type = %q, want application/json", ct)
	}

	// A canceled waiter leaves the queue without a slot.
	cancel()
	if err := <-werr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: %v, want context.Canceled", err)
	}
	s.release()
	s.release()
	if got := s.stats.inFlight.Load(); got != 0 {
		t.Errorf("inFlight = %d after releases, want 0", got)
	}
}

package server

import (
	"bytes"
	"encoding/json"
)

// EncodeCanonical returns the canonical JSON encoding every service
// response uses: encoding/json (struct fields in declaration order, map
// keys sorted — the package guarantee that makes the encoding
// deterministic), HTML escaping off, no indentation, one trailing
// newline.
//
// Canonical means reproducible: the same result value always encodes to
// the same bytes, so TestServedMatchesDirect can assert a served response
// is byte-identical to the direct library call's result pushed through
// this same function, and coalesced requests can share one encoded body.
func EncodeCanonical(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

package coherence

import "math/bits"

// BitSet is a fixed-capacity bitmap over small non-negative integers (core
// ids), stored as 64-bit words. It is the flat full-map sharer
// representation of the simulator core: membership tests, population counts
// and iteration are branch-light word operations instead of pointer-chasing
// list walks. A BitSet never grows; construct it with NewBitSet (or wrap an
// existing word slice) with capacity for the largest id it must hold.
type BitSet []uint64

// NewBitSet returns a BitSet able to hold ids in [0, n).
func NewBitSet(n int) BitSet {
	return make(BitSet, (n+63)/64)
}

// Cap returns the number of ids the set can hold.
func (b BitSet) Cap() int { return len(b) * 64 }

// Add sets bit i. Adding an already-set bit is a no-op.
func (b BitSet) Add(i int) { b[i>>6] |= 1 << uint(i&63) }

// Remove clears bit i. Removing an unset bit is a no-op.
func (b BitSet) Remove(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Test reports whether bit i is set.
func (b BitSet) Test(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of set bits (population count).
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (b BitSet) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clear resets every bit.
func (b BitSet) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// ForEach calls fn for every set bit in ascending order.
func (b BitSet) ForEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			fn(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1 // drop the lowest set bit
		}
	}
}

package coherence

import (
	"testing"
	"testing/quick"
)

func TestStateString(t *testing.T) {
	want := map[State]string{
		Uncached: "U", SharedState: "S", ExclusiveState: "E",
		ModifiedState: "M", State(9): "State(9)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("State(%d).String() = %q, want %q", uint8(s), s.String(), str)
		}
	}
}

func TestNewSharerSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharerSet(0) did not panic")
		}
	}()
	NewSharerSet(0)
}

func TestSharerSetBasics(t *testing.T) {
	s := NewSharerSet(4)
	if s.Count() != 0 || s.Overflowed() {
		t.Fatal("fresh set not empty")
	}
	for i := 0; i < 4; i++ {
		s.Add(i)
	}
	if s.Count() != 4 || s.Overflowed() {
		t.Fatalf("count=%d overflow=%v", s.Count(), s.Overflowed())
	}
	for i := 0; i < 4; i++ {
		if !s.Contains(i) {
			t.Errorf("missing sharer %d", i)
		}
	}
	s.Remove(2)
	if s.Count() != 3 || s.Contains(2) {
		t.Fatal("remove failed")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("clear failed")
	}
}

func TestSharerSetOverflow(t *testing.T) {
	// ACKwise4 behaviour: 5th sharer drops identity, count still exact.
	s := NewSharerSet(4)
	for i := 0; i < 6; i++ {
		s.Add(i)
	}
	if s.Count() != 6 {
		t.Fatalf("count = %d, want 6", s.Count())
	}
	if !s.Overflowed() {
		t.Fatal("expected overflow")
	}
	if len(s.Identified()) != 4 {
		t.Fatalf("identified = %d, want 4", len(s.Identified()))
	}
	// Unidentified sharers are "maybe" sharers.
	if !s.MaybeSharer(5) || !s.MaybeSharer(63) {
		t.Fatal("overflowed set must treat any core as possible sharer")
	}
	// Removing an identified sharer keeps overflow (2 unknown remain).
	s.Remove(0)
	if s.Count() != 5 || !s.Overflowed() {
		t.Fatalf("after remove: count=%d overflow=%v", s.Count(), s.Overflowed())
	}
	// Removing unidentified sharers drains the unknown count.
	s.Remove(4)
	s.Remove(5)
	if s.Count() != 3 || s.Overflowed() {
		t.Fatalf("after draining unknowns: count=%d overflow=%v", s.Count(), s.Overflowed())
	}
}

func TestRemoveNonSharerPanics(t *testing.T) {
	s := NewSharerSet(2)
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Remove of non-sharer did not panic")
		}
	}()
	s.Remove(7)
}

func TestAddDuplicatePanics(t *testing.T) {
	s := NewSharerSet(2)
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	s.Add(1)
}

func TestFullMapNeverOverflows(t *testing.T) {
	s := NewSharerSet(64)
	for i := 0; i < 64; i++ {
		s.Add(i)
	}
	if s.Overflowed() {
		t.Fatal("full-map set overflowed")
	}
	if s.Count() != 64 {
		t.Fatalf("count = %d", s.Count())
	}
}

// Property: Count always equals adds minus removes, regardless of pointer
// pressure; a set fully drained is empty and non-overflowed.
func TestSharerSetCountProperty(t *testing.T) {
	f := func(cores []uint8, p uint8) bool {
		if p == 0 {
			p = 1
		}
		s := NewSharerSet(int(p%8) + 1)
		members := map[int]bool{}
		order := []int{}
		for _, c := range cores {
			id := int(c % 32)
			if members[id] {
				continue
			}
			members[id] = true
			order = append(order, id)
			s.Add(id)
		}
		if s.Count() != len(order) {
			return false
		}
		for _, id := range order {
			s.Remove(id)
		}
		return s.Count() == 0 && !s.Overflowed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package coherence

import (
	"math/rand"
	"testing"
)

// TestBitSetExhaustiveSmall checks Add/Remove/Test/Count against a boolean
// reference model for every id over all insertion orders of small sets.
func TestBitSetExhaustiveSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 63, 64, 65, 127, 128, 130} {
		b := NewBitSet(n)
		if b.Cap() < n {
			t.Fatalf("NewBitSet(%d).Cap() = %d", n, b.Cap())
		}
		ref := make([]bool, n)
		// Add every id, verifying incremental state after each step.
		for i := 0; i < n; i++ {
			b.Add(i)
			ref[i] = true
			checkBitSet(t, b, ref)
		}
		// Double-add is a no-op.
		for i := 0; i < n; i++ {
			b.Add(i)
			checkBitSet(t, b, ref)
		}
		// Remove in a different order than insertion.
		for i := n - 1; i >= 0; i-- {
			b.Remove(i)
			ref[i] = false
			checkBitSet(t, b, ref)
		}
		if b.Any() {
			t.Fatalf("n=%d: empty set reports Any", n)
		}
	}
}

func checkBitSet(t *testing.T, b BitSet, ref []bool) {
	t.Helper()
	count := 0
	for i, want := range ref {
		if got := b.Test(i); got != want {
			t.Fatalf("Test(%d) = %v, want %v", i, got, want)
		}
		if want {
			count++
		}
	}
	if got := b.Count(); got != count {
		t.Fatalf("Count() = %d, want %d", got, count)
	}
	if got := b.Any(); got != (count > 0) {
		t.Fatalf("Any() = %v with count %d", got, count)
	}
	var visited []int
	b.ForEach(func(i int) { visited = append(visited, i) })
	if len(visited) != count {
		t.Fatalf("ForEach visited %d ids, want %d", len(visited), count)
	}
	prev := -1
	for _, i := range visited {
		if i <= prev {
			t.Fatalf("ForEach not ascending: %v", visited)
		}
		prev = i
		if !ref[i] {
			t.Fatalf("ForEach visited unset id %d", i)
		}
	}
}

func TestBitSetClear(t *testing.T) {
	b := NewBitSet(130)
	for _, i := range []int{0, 63, 64, 100, 129} {
		b.Add(i)
	}
	b.Clear()
	if b.Any() || b.Count() != 0 {
		t.Fatalf("Clear left bits set: count=%d", b.Count())
	}
	b.ForEach(func(i int) { t.Fatalf("ForEach visited %d after Clear", i) })
}

// TestBitSetRandomized drives a larger random add/remove sequence against
// the map-based reference model.
func TestBitSetRandomized(t *testing.T) {
	const n = 320
	rng := rand.New(rand.NewSource(42))
	b := NewBitSet(n)
	ref := make([]bool, n)
	for step := 0; step < 20000; step++ {
		i := rng.Intn(n)
		if rng.Intn(2) == 0 {
			b.Add(i)
			ref[i] = true
		} else {
			b.Remove(i)
			ref[i] = false
		}
		if step%1000 == 0 {
			checkBitSet(t, b, ref)
		}
	}
	checkBitSet(t, b, ref)
}

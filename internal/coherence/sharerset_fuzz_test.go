package coherence

import (
	"bytes"
	"fmt"
	"testing"
)

// applyOp drives one decoded operation against both sharer-set
// implementations and checks they agree on every observable. Returning
// false means the operation was a semantically invalid input (Add of an
// existing sharer / Remove of a non-sharer), which both implementations
// reject identically by panicking; the fuzz driver skips those.
func applyOp(t *testing.T, fast *SharerSet, ref *ListSharerSet, op byte, core int) {
	t.Helper()
	switch op % 3 {
	case 0: // Add
		if fast.Contains(core) != ref.Contains(core) {
			t.Fatalf("Contains(%d) diverged before Add: fast=%v ref=%v",
				core, fast.Contains(core), ref.Contains(core))
		}
		if fast.Contains(core) {
			return // Add of an existing sharer is a protocol-layer bug, not an input
		}
		fast.Add(core)
		ref.Add(core)
	case 1: // Remove
		if fast.Count() == 0 {
			return
		}
		if !fast.Contains(core) && !fast.Overflowed() {
			return // Remove of a non-sharer panics by contract
		}
		fast.Remove(core)
		ref.Remove(core)
	case 2: // Clear
		fast.Clear()
		ref.Clear()
	}
}

// checkAgreement compares every observable of the two implementations,
// including the exact identity-list order: the simulator's mesh contention
// model makes sharer iteration order part of deterministic behavior, so the
// bitmap-accelerated set must reproduce the legacy swap-removal order
// exactly, not just the same membership.
func checkAgreement(t *testing.T, fast *SharerSet, ref *ListSharerSet, cores int) {
	t.Helper()
	if fast.Count() != ref.Count() {
		t.Fatalf("Count: fast=%d ref=%d", fast.Count(), ref.Count())
	}
	if fast.Overflowed() != ref.Overflowed() {
		t.Fatalf("Overflowed: fast=%v ref=%v", fast.Overflowed(), ref.Overflowed())
	}
	if fast.Pointers() != ref.Pointers() {
		t.Fatalf("Pointers: fast=%d ref=%d", fast.Pointers(), ref.Pointers())
	}
	fi, ri := fast.Identified(), ref.Identified()
	if fmt.Sprint(fi) != fmt.Sprint(ri) {
		t.Fatalf("Identified order diverged: fast=%v ref=%v", fi, ri)
	}
	for c := 0; c < cores; c++ {
		if fast.Contains(c) != ref.Contains(c) {
			t.Fatalf("Contains(%d): fast=%v ref=%v", c, fast.Contains(c), ref.Contains(c))
		}
		if fast.MaybeSharer(c) != ref.MaybeSharer(c) {
			t.Fatalf("MaybeSharer(%d): fast=%v ref=%v", c, fast.MaybeSharer(c), ref.MaybeSharer(c))
		}
	}
}

// FuzzSharerSetVsList cross-checks the bitmap-accelerated SharerSet against
// the legacy []int16 ListSharerSet on arbitrary operation sequences, over
// several pointer counts including full-map and a machine larger than the
// inline bitmap (cores > 256).
func FuzzSharerSetVsList(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 0, 3, 2, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 1, 0, 1, 5})
	f.Add(bytes.Repeat([]byte{0, 7}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, geom := range []struct{ p, cores int }{
			{1, 8}, {4, 16}, {16, 16}, {4, 300}, {300, 300},
		} {
			fast := NewSharerSet(geom.p)
			ref := NewListSharerSet(geom.p)
			for i := 0; i+1 < len(data); i += 2 {
				core := int(data[i+1]) % geom.cores
				applyOp(t, &fast, &ref, data[i], core)
				checkAgreement(t, &fast, &ref, geom.cores)
			}
		}
	})
}

// TestSharerSetBackedMatchesSelfAllocated checks the arena-backed
// constructor and Rebind behave identically to the self-allocating one.
func TestSharerSetBackedMatchesSelfAllocated(t *testing.T) {
	const p = 4
	backing := make([]int16, p)
	a := NewSharerSet(p)
	b := NewSharerSetBacked(p, backing)
	for _, c := range []int{3, 9, 1, 7, 11} { // 5th overflows
		a.Add(c)
		b.Add(c)
	}
	a.Remove(9)
	b.Remove(9)
	// Rebind relocates the identity storage, preserving contents.
	b.Rebind(make([]int16, p))
	if fmt.Sprint(a.Identified()) != fmt.Sprint(b.Identified()) ||
		a.Count() != b.Count() || a.Overflowed() != b.Overflowed() {
		t.Fatalf("backed set diverged: a=%v/%d b=%v/%d",
			a.Identified(), a.Count(), b.Identified(), b.Count())
	}
}

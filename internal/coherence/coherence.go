// Package coherence provides the MESI state machine vocabulary and the
// ACKwise-p limited-directory sharer tracking of Kurian et al. (PACT 2010),
// which the paper uses as its baseline directory protocol (Section 3.1).
//
// A SharerSet tracks up to p sharer identities exactly; once the sharer
// count exceeds p the additional identities are dropped and only the count
// is maintained. An exclusive request must then broadcast the invalidation
// but needs acknowledgements only from the actual sharers (the count).
// A full-map directory is the special case p >= number of cores.
package coherence

import "fmt"

// State is a cache line's directory-visible coherence state.
type State uint8

// MESI directory states. Uncached means no private L1 copy exists (the data
// may still be resident in the shared L2). Exclusive covers a clean owner
// copy (E) which may silently transition to Modified in the owner's L1.
const (
	Uncached State = iota
	SharedState
	ExclusiveState
	ModifiedState
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Uncached:
		return "U"
	case SharedState:
		return "S"
	case ExclusiveState:
		return "E"
	case ModifiedState:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// SharerSet is an ACKwise-p sharer list: at most p identified sharers plus a
// count of unidentified ones. The zero value is unusable; construct with
// NewSharerSet.
type SharerSet struct {
	ids     []int16
	unknown int32
	p       int
}

// NewSharerSet returns a sharer set with p hardware pointers. For a full-map
// directory pass p = number of cores.
func NewSharerSet(p int) SharerSet {
	if p <= 0 {
		panic("coherence: sharer set needs at least one pointer")
	}
	return SharerSet{ids: make([]int16, 0, p), p: p}
}

// Pointers returns the number of hardware pointers p.
func (s *SharerSet) Pointers() int { return s.p }

// Add records core as a sharer. The protocol layer must only add cores that
// are not already sharers (an L1 miss implies no copy). When all p pointers
// are in use the identity is dropped and only the count grows.
func (s *SharerSet) Add(core int) {
	if s.Contains(core) {
		panic(fmt.Sprintf("coherence: Add of existing sharer %d", core))
	}
	if len(s.ids) < s.p {
		s.ids = append(s.ids, int16(core))
		return
	}
	s.unknown++
}

// Remove drops core from the set (e.g., on an L1 eviction notification). If
// the core was not an identified sharer it must be one of the unidentified
// ones, so the count is decremented.
func (s *SharerSet) Remove(core int) {
	for i, id := range s.ids {
		if id == int16(core) {
			s.ids[i] = s.ids[len(s.ids)-1]
			s.ids = s.ids[:len(s.ids)-1]
			return
		}
	}
	if s.unknown > 0 {
		s.unknown--
		return
	}
	panic(fmt.Sprintf("coherence: Remove of non-sharer %d", core))
}

// Contains reports whether core is an identified sharer. With overflow the
// answer for unidentified sharers is unknown; callers needing membership
// must consult MaybeSharer.
func (s *SharerSet) Contains(core int) bool {
	for _, id := range s.ids {
		if id == int16(core) {
			return true
		}
	}
	return false
}

// MaybeSharer reports whether core could be a sharer (true for any core once
// the set has overflowed).
func (s *SharerSet) MaybeSharer(core int) bool {
	return s.unknown > 0 || s.Contains(core)
}

// Count returns the exact number of sharers (identified + unidentified).
// ACKwise always tracks the count so that broadcast invalidations can wait
// for exactly this many acknowledgements.
func (s *SharerSet) Count() int { return len(s.ids) + int(s.unknown) }

// Overflowed reports whether identities have been dropped; an exclusive
// request must broadcast rather than multicast.
func (s *SharerSet) Overflowed() bool { return s.unknown > 0 }

// Identified returns the identified sharer IDs (shared backing array; do not
// mutate).
func (s *SharerSet) Identified() []int16 { return s.ids }

// Clear empties the set (after a full invalidation completes).
func (s *SharerSet) Clear() {
	s.ids = s.ids[:0]
	s.unknown = 0
}

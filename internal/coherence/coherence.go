// Package coherence provides the MESI state machine vocabulary and the
// ACKwise-p limited-directory sharer tracking of Kurian et al. (PACT 2010),
// which the paper uses as its baseline directory protocol (Section 3.1).
//
// A SharerSet tracks up to p sharer identities exactly; once the sharer
// count exceeds p the additional identities are dropped and only the count
// is maintained. An exclusive request must then broadcast the invalidation
// but needs acknowledgements only from the actual sharers (the count).
// A full-map directory is the special case p >= number of cores.
package coherence

import "fmt"

// State is a cache line's directory-visible coherence state.
type State uint8

// MESI directory states. Uncached means no private L1 copy exists (the data
// may still be resident in the shared L2). Exclusive covers a clean owner
// copy (E) which may silently transition to Modified in the owner's L1.
const (
	Uncached State = iota
	SharedState
	ExclusiveState
	ModifiedState
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Uncached:
		return "U"
	case SharedState:
		return "S"
	case ExclusiveState:
		return "E"
	case ModifiedState:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Inline membership-bitmap geometry: core ids below bitmapCores get O(1)
// Contains/Add via the bitmap; larger ids fall back to scanning the identity
// list (correct for any machine size, fast for every configuration the
// paper evaluates).
const (
	bitmapWords = 4
	bitmapCores = bitmapWords * 64
)

// SharerSet is an ACKwise-p sharer list: at most p identified sharers plus a
// count of unidentified ones. The zero value is unusable; construct with
// NewSharerSet (self-allocating) or NewSharerSetBacked (caller-provided
// identity storage, used by the simulator's arena-backed flat directory).
//
// The identity list preserves insertion order with swap-removal, exactly
// like the legacy ListSharerSet: the simulator's mesh contention model is
// order-sensitive, so sharer iteration order is part of the simulation's
// deterministic behavior and must not change with the representation. An
// inline bitmap (ids < 256) accelerates membership tests to O(1); for a
// full-map directory (p >= cores) that turns the per-access Add/Contains
// path from an O(cores) scan into a word operation.
type SharerSet struct {
	ids     []int16             // insertion-ordered identified sharers, cap p
	bits    [bitmapWords]uint64 // membership bitmap of identified ids < bitmapCores
	unknown int32
	p       int32
}

// NewSharerSet returns a sharer set with p hardware pointers. For a full-map
// directory pass p = number of cores.
func NewSharerSet(p int) SharerSet {
	if p <= 0 {
		panic("coherence: sharer set needs at least one pointer")
	}
	return SharerSet{ids: make([]int16, 0, p), p: int32(p)}
}

// NewSharerSetBacked returns a sharer set with p hardware pointers whose
// identity list lives in backing (cap(backing) must be at least p). The
// simulator's flat directory hands out arena slices here so directory
// entries allocate nothing.
func NewSharerSetBacked(p int, backing []int16) SharerSet {
	if p <= 0 {
		panic("coherence: sharer set needs at least one pointer")
	}
	if cap(backing) < p {
		panic(fmt.Sprintf("coherence: backing capacity %d below %d pointers", cap(backing), p))
	}
	return SharerSet{ids: backing[:0], p: int32(p)}
}

// Rebind moves the identity list into backing (cap(backing) must be at
// least p), preserving contents. The flat directory uses it when a table
// grow relocates an entry to a new arena slot.
func (s *SharerSet) Rebind(backing []int16) {
	if cap(backing) < int(s.p) {
		panic(fmt.Sprintf("coherence: backing capacity %d below %d pointers", cap(backing), s.p))
	}
	n := len(s.ids)
	nb := backing[:n]
	copy(nb, s.ids)
	s.ids = nb
}

// Pointers returns the number of hardware pointers p.
func (s *SharerSet) Pointers() int { return int(s.p) }

// Add records core as a sharer. The protocol layer must only add cores that
// are not already sharers (an L1 miss implies no copy). When all p pointers
// are in use the identity is dropped and only the count grows.
func (s *SharerSet) Add(core int) {
	if s.Contains(core) {
		panic(fmt.Sprintf("coherence: Add of existing sharer %d", core))
	}
	if len(s.ids) < int(s.p) {
		s.ids = append(s.ids, int16(core))
		if core < bitmapCores {
			BitSet(s.bits[:]).Add(core)
		}
		return
	}
	s.unknown++
}

// Remove drops core from the set (e.g., on an L1 eviction notification). If
// the core was not an identified sharer it must be one of the unidentified
// ones, so the count is decremented.
func (s *SharerSet) Remove(core int) {
	if s.Contains(core) {
		for i, id := range s.ids {
			if id == int16(core) {
				s.ids[i] = s.ids[len(s.ids)-1]
				s.ids = s.ids[:len(s.ids)-1]
				break
			}
		}
		if core < bitmapCores {
			BitSet(s.bits[:]).Remove(core)
		}
		return
	}
	if s.unknown > 0 {
		s.unknown--
		return
	}
	panic(fmt.Sprintf("coherence: Remove of non-sharer %d", core))
}

// Contains reports whether core is an identified sharer. With overflow the
// answer for unidentified sharers is unknown; callers needing membership
// must consult MaybeSharer.
func (s *SharerSet) Contains(core int) bool {
	if core >= 0 && core < bitmapCores {
		return BitSet(s.bits[:]).Test(core)
	}
	for _, id := range s.ids {
		if id == int16(core) {
			return true
		}
	}
	return false
}

// MaybeSharer reports whether core could be a sharer (true for any core once
// the set has overflowed).
func (s *SharerSet) MaybeSharer(core int) bool {
	return s.unknown > 0 || s.Contains(core)
}

// Count returns the exact number of sharers (identified + unidentified).
// ACKwise always tracks the count so that broadcast invalidations can wait
// for exactly this many acknowledgements.
func (s *SharerSet) Count() int { return len(s.ids) + int(s.unknown) }

// Overflowed reports whether identities have been dropped; an exclusive
// request must broadcast rather than multicast.
func (s *SharerSet) Overflowed() bool { return s.unknown > 0 }

// Identified returns the identified sharer IDs (shared backing array; do not
// mutate).
func (s *SharerSet) Identified() []int16 { return s.ids }

// Clear empties the set (after a full invalidation completes).
func (s *SharerSet) Clear() {
	s.ids = s.ids[:0]
	BitSet(s.bits[:]).Clear()
	s.unknown = 0
}

// ListSharerSet is the legacy slice-scanning sharer set: a plain []int16
// identity list with linear membership tests. It is retained as the simple
// reference implementation that the bitmap-accelerated SharerSet is
// fuzz-checked against (see sharerset_fuzz_test.go); the simulator itself
// uses SharerSet.
type ListSharerSet struct {
	ids     []int16
	unknown int32
	p       int
}

// NewListSharerSet returns a legacy sharer set with p hardware pointers.
func NewListSharerSet(p int) ListSharerSet {
	if p <= 0 {
		panic("coherence: sharer set needs at least one pointer")
	}
	return ListSharerSet{ids: make([]int16, 0, p), p: p}
}

// Pointers returns the number of hardware pointers p.
func (s *ListSharerSet) Pointers() int { return s.p }

// Add records core as a sharer, dropping the identity once all p pointers
// are in use.
func (s *ListSharerSet) Add(core int) {
	if s.Contains(core) {
		panic(fmt.Sprintf("coherence: Add of existing sharer %d", core))
	}
	if len(s.ids) < s.p {
		s.ids = append(s.ids, int16(core))
		return
	}
	s.unknown++
}

// Remove drops core from the set.
func (s *ListSharerSet) Remove(core int) {
	for i, id := range s.ids {
		if id == int16(core) {
			s.ids[i] = s.ids[len(s.ids)-1]
			s.ids = s.ids[:len(s.ids)-1]
			return
		}
	}
	if s.unknown > 0 {
		s.unknown--
		return
	}
	panic(fmt.Sprintf("coherence: Remove of non-sharer %d", core))
}

// Contains reports whether core is an identified sharer.
func (s *ListSharerSet) Contains(core int) bool {
	for _, id := range s.ids {
		if id == int16(core) {
			return true
		}
	}
	return false
}

// MaybeSharer reports whether core could be a sharer.
func (s *ListSharerSet) MaybeSharer(core int) bool {
	return s.unknown > 0 || s.Contains(core)
}

// Count returns the exact number of sharers.
func (s *ListSharerSet) Count() int { return len(s.ids) + int(s.unknown) }

// Overflowed reports whether identities have been dropped.
func (s *ListSharerSet) Overflowed() bool { return s.unknown > 0 }

// Identified returns the identified sharer IDs.
func (s *ListSharerSet) Identified() []int16 { return s.ids }

// Clear empties the set.
func (s *ListSharerSet) Clear() {
	s.ids = s.ids[:0]
	s.unknown = 0
}

package flatmap

import (
	"math/rand"
	"testing"
)

// TestTableAgainstMap drives a random insert/update/lookup sequence
// against a Go map reference model across several value shapes.
func TestTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	table := New[uint64](8) // tiny start forces many grows
	ref := map[uint64]uint64{}
	for step := 0; step < 50000; step++ {
		key := uint64(1 + rng.Intn(4096))
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			*table.Slot(key) = v
			ref[key] = v
		} else {
			got, ok := table.Get(key)
			want, wantOK := ref[key]
			if ok != wantOK || got != want {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", key, got, ok, want, wantOK)
			}
		}
	}
	if table.Len() != len(ref) {
		t.Fatalf("Len() = %d, want %d", table.Len(), len(ref))
	}
	visited := map[uint64]uint64{}
	table.ForEach(func(k uint64, v uint64) { visited[k] = v })
	if len(visited) != len(ref) {
		t.Fatalf("ForEach visited %d keys, want %d", len(visited), len(ref))
	}
	for k, v := range ref {
		if visited[k] != v {
			t.Fatalf("ForEach saw %d=%d, want %d", k, visited[k], v)
		}
	}
}

// TestSlotInsertsZero pins the insert-if-absent contract: Slot on a new
// key materializes a zero value that Get then reports as present.
func TestSlotInsertsZero(t *testing.T) {
	table := New[int16](8)
	p := table.Slot(42)
	if *p != 0 {
		t.Fatalf("fresh slot = %d, want 0", *p)
	}
	if _, ok := table.Get(42); !ok {
		t.Fatal("key absent after Slot")
	}
	*p = -7
	if v, _ := table.Get(42); v != -7 {
		t.Fatalf("Get = %d, want -7", v)
	}
}

// TestCapacityRounding pins the power-of-two rounding of New.
func TestCapacityRounding(t *testing.T) {
	for _, c := range []int{0, 1, 7, 8, 9, 1000} {
		table := New[uint8](c)
		n := len(table.slots)
		if n&(n-1) != 0 || n < 8 || n < c {
			t.Fatalf("New(%d) allocated %d slots", c, n)
		}
	}
}

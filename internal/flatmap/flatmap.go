// Package flatmap provides the open-addressed uint64-keyed hash table
// shared by the simulator's flat line-metadata stores (per-core history,
// golden/DRAM version tables) and R-NUCA's page table. It exists so the
// probing, insertion and growth logic lives exactly once: the callers'
// previous hand-rolled copies had already drifted into two different
// index-derivation conventions.
//
// Layout and conventions:
//   - linear probing over a power-of-two slot array, grown at 3/4 load;
//   - fibonacci hashing (high bits of key * 2^64/φ) for near-sequential
//     keys such as line and page indexes;
//   - key 0 is the empty-slot sentinel — callers key by index+1 (see
//     mem.LineKey) so real keys are never zero;
//   - key and value share a slot, so a lookup touches one cache line;
//   - no deletion (none of the backed stores ever remove entries).
package flatmap

import "math/bits"

type slot[V any] struct {
	key uint64
	val V
}

// Table is an open-addressed uint64 → V hash table. The zero value is not
// usable; construct with New.
type Table[V any] struct {
	slots []slot[V]
	mask  uint64
	shift uint
	live  int
}

// New returns a table with the given initial capacity (rounded up to a
// power of two, minimum 8).
func New[V any](capacity int) *Table[V] {
	t := &Table[V]{}
	n := 8
	for n < capacity {
		n *= 2
	}
	t.alloc(n)
	return t
}

func (t *Table[V]) alloc(capacity int) {
	t.slots = make([]slot[V], capacity)
	t.mask = uint64(capacity - 1)
	t.shift = uint(64 - bits.TrailingZeros(uint(capacity)))
	t.live = 0
}

func (t *Table[V]) idx(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> t.shift
}

// Len returns the number of stored keys.
func (t *Table[V]) Len() int { return t.live }

// Get returns key's value and whether it is present. Key must be non-zero.
func (t *Table[V]) Get(key uint64) (V, bool) {
	i := t.idx(key)
	for {
		s := &t.slots[i]
		switch s.key {
		case key:
			return s.val, true
		case 0:
			var zero V
			return zero, false
		}
		i = (i + 1) & t.mask
	}
}

// Slot returns a pointer to key's value, inserting a zero value if absent.
// The pointer is valid until the next Slot call (which may grow the
// table). Key must be non-zero.
func (t *Table[V]) Slot(key uint64) *V {
	if (t.live+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	i := t.idx(key)
	for {
		s := &t.slots[i]
		switch s.key {
		case key:
			return &s.val
		case 0:
			s.key = key
			t.live++
			return &s.val
		}
		i = (i + 1) & t.mask
	}
}

func (t *Table[V]) grow() {
	old := t.slots
	t.alloc(len(old) * 2)
	for i := range old {
		if old[i].key == 0 {
			continue
		}
		j := t.idx(old[i].key)
		for t.slots[j].key != 0 {
			j = (j + 1) & t.mask
		}
		t.slots[j] = old[i]
		t.live++
	}
}

// Clear removes every stored key, keeping the grown capacity so a reused
// table re-fills without re-growing. Lookups and insertion behave exactly
// as on a fresh table. Clearing an already-empty table is free, so
// unconditional clears of rarely-used stores (e.g. the version stores with
// the functional checker off) cost nothing.
func (t *Table[V]) Clear() {
	if t.live == 0 {
		return
	}
	clear(t.slots)
	t.live = 0
}

// ForEach visits every stored (key, value) pair in unspecified order.
func (t *Table[V]) ForEach(fn func(key uint64, v V)) {
	for i := range t.slots {
		if key := t.slots[i].key; key != 0 {
			fn(key, t.slots[i].val)
		}
	}
}
